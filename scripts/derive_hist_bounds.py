#!/usr/bin/env python3
"""Derive the shared latency-histogram bucket bounds from measured data.

Reads validation-report JSONs (the committed benchmark baselines under
bench/baselines/) and prints a C++ initializer for
`defaultLatencyBoundsMicros()` in src/support/Telemetry.cpp:

    python3 scripts/derive_hist_bounds.py bench/baselines/*.json

Method: pool every per-function `us` sample together with the module-level
`wall_us`/`validation_us` samples, take evenly spaced quantiles of each of
the two populations (function-level latencies and whole-job latencies live
three decades apart, so one quantile sweep over the pool would spend all
its resolution on the bigger population), snap each quantile up to a
human-readable grid ({1, 1.5, 2, 2.5, 3, 4, 5, 7.5} x 10^k), and append
fixed headroom bounds above the observed maximum so regressions land in a
real bucket instead of +Inf.

Every layer shares one bound layout — that is what lets the fleet roll-up
merge same-name histograms bucket-for-bucket — so the output is baked into
defaultLatencyBoundsMicros(), never computed per binary. Stdlib only.
"""

import json
import sys

GRID_MANTISSAS = (1.0, 1.5, 2.0, 2.5, 3.0, 4.0, 5.0, 7.5)

# Headroom above the measured maximum: a slow job under contention, a
# pathological suite, and the "something is wedged" bucket.
HEADROOM_US = (1_000_000, 2_500_000, 10_000_000, 60_000_000)

# Quantiles per population. The low end is anchored at the 5th percentile
# so the first bucket is informative, the top at the 95th so the maximum
# is covered by the headroom bounds instead of a data-chasing bound.
QUANTILES = (0.05, 0.25, 0.50, 0.75, 0.90, 0.95)


def snap_up(value):
    """Smallest grid point >= value."""
    if value <= 0:
        return 1
    scale = 1
    while True:
        for m in GRID_MANTISSAS:
            candidate = m * scale
            if candidate >= value and candidate == int(candidate):
                return int(candidate)
        scale *= 10


def quantile(sorted_vals, q):
    """Nearest-rank quantile (deterministic, no interpolation)."""
    if not sorted_vals:
        return None
    idx = min(len(sorted_vals) - 1, max(0, round(q * (len(sorted_vals) - 1))))
    return sorted_vals[idx]


def collect(paths):
    fn_us, job_us = [], []
    for path in paths:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
        for key in ("wall_us", "validation_us"):
            v = doc.get(key)
            if isinstance(v, int) and v > 0:
                job_us.append(v)
        for fn in doc.get("functions", []):
            v = fn.get("us")
            if isinstance(v, int) and v > 0:
                fn_us.append(v)
    return sorted(fn_us), sorted(job_us)


def bridge(bounds, max_ratio=10):
    """No bucket spans more than a decade: the measured distribution is
    bimodal (sub-ms functions, hundreds-of-ms jobs) and a drifting latency
    should climb through buckets, not vanish into one three-decade bin."""
    out = [bounds[0]]
    for b in bounds[1:]:
        while b > out[-1] * max_ratio:
            out.append(snap_up(out[-1] * max_ratio))
        out.append(b)
    return sorted(set(out))


def derive(fn_us, job_us):
    bounds = set()
    for population in (fn_us, job_us):
        for q in QUANTILES:
            v = quantile(population, q)
            if v is not None:
                bounds.add(snap_up(v))
    bounds.update(HEADROOM_US)
    return bridge(sorted(bounds))


def main(argv):
    if len(argv) < 2:
        sys.stderr.write(__doc__)
        return 2
    fn_us, job_us = collect(argv[1:])
    if not fn_us and not job_us:
        sys.stderr.write("no latency samples found in the given reports\n")
        return 1
    bounds = derive(fn_us, job_us)
    print("// %d function samples, %d job samples from %d report(s)"
          % (len(fn_us), len(job_us), len(argv) - 1))
    print("std::vector<uint64_t> defaultLatencyBoundsMicros() {")
    body = ", ".join(str(b) for b in bounds)
    print("  return {%s};" % body)
    print("}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
