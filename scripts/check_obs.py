#!/usr/bin/env python3
"""check_obs.py - validate the observability output formats. Stdlib only.

Two subcommands, both exiting nonzero with a pointed message on the first
violation:

  check_obs.py trace FILE
      FILE must be Chrome trace-event JSON as chrome://tracing and Perfetto
      accept it: a top-level object with a "traceEvents" list; every event
      carries name/cat/ph/ts/pid/tid with the right types; complete events
      (ph == "X") also carry a non-negative integer "dur". Requires at
      least one event (a suite run that traced nothing is a wiring bug).

  check_obs.py prom FILE
      FILE must be Prometheus text exposition format: every non-comment
      line is `name{labels} value`; every sample family is announced by a
      single # TYPE line appearing before its samples; histogram families
      emit cumulative _bucket series ending in le="+Inf", plus _sum and
      _count, with bucket counts non-decreasing and the +Inf bucket equal
      to _count. Requires at least one llvmmd_-prefixed sample.

Used by scripts/check.sh --obs and the CI observability job.
"""

import json
import re
import sys


def fail(msg):
    print("check_obs: FAIL: %s" % msg, file=sys.stderr)
    sys.exit(1)


def check_trace(path):
    with open(path, "rb") as f:
        try:
            doc = json.load(f)
        except ValueError as e:
            fail("%s: not valid JSON: %s" % (path, e))
    if not isinstance(doc, dict):
        fail("%s: top level must be an object" % path)
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("%s: missing traceEvents list" % path)
    if not events:
        fail("%s: traceEvents is empty (tracing produced no spans)" % path)
    for i, ev in enumerate(events):
        where = "%s: traceEvents[%d]" % (path, i)
        if not isinstance(ev, dict):
            fail("%s: event is not an object" % where)
        for key, want in (("name", str), ("cat", str), ("ph", str)):
            if not isinstance(ev.get(key), want):
                fail("%s: missing or mistyped %r" % (where, key))
        for key in ("ts", "pid", "tid"):
            v = ev.get(key)
            if not isinstance(v, int) or isinstance(v, bool):
                fail("%s: %r must be an integer" % (where, key))
        if ev["ph"] == "X":
            dur = ev.get("dur")
            if not isinstance(dur, int) or isinstance(dur, bool) or dur < 0:
                fail("%s: complete event needs non-negative integer 'dur'"
                     % where)
    print("check_obs: trace OK — %d event(s) in %s" % (len(events), path))


# `name{labels} value` — labels optional, value is prometheus float text
# (digits, inf, or scientific notation; our emitters only write integers).
SAMPLE_RE = re.compile(
    r'^([a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(\{[^}]*\})?'
    r' ([0-9]+(?:\.[0-9]+)?(?:[eE][+-]?[0-9]+)?|\+Inf|NaN)$')
TYPE_RE = re.compile(r'^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) '
                     r'(counter|gauge|histogram|summary|untyped)$')
HELP_RE = re.compile(r'^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) .+$')
LE_RE = re.compile(r'le="([^"]*)"')


def labels_minus_le(labels):
    """Canonical non-le label set: '{a="1",b="2"}' with le dropped, sorted;
    "" when nothing remains. Series values never contain commas here."""
    inner = labels.strip("{}")
    parts = sorted(p for p in inner.split(",")
                   if p and not p.startswith("le="))
    return "{%s}" % ",".join(parts) if parts else ""


def family_of(name):
    """Map a sample name to its announced family (strip histogram suffixes)."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[:-len(suffix)]
    return name


def check_prom(path):
    with open(path, "r") as f:
        text = f.read()
    if text and not text.endswith("\n"):
        fail("%s: missing trailing newline" % path)

    types = {}      # family -> type string
    samples = []    # (name, labels-or-"", value, lineno)
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line:
            continue
        where = "%s:%d" % (path, lineno)
        if line.startswith("# TYPE "):
            m = TYPE_RE.match(line)
            if not m:
                fail("%s: malformed TYPE line: %r" % (where, line))
            if m.group(1) in types:
                fail("%s: duplicate TYPE for %s (families must be grouped)"
                     % (where, m.group(1)))
            types[m.group(1)] = m.group(2)
            continue
        if line.startswith("# HELP "):
            if not HELP_RE.match(line):
                fail("%s: malformed HELP line: %r" % (where, line))
            continue
        if line.startswith("#"):
            continue  # free-form comment
        m = SAMPLE_RE.match(line)
        if not m:
            fail("%s: malformed sample line: %r" % (where, line))
        name, labels, value = m.group(1), m.group(2) or "", m.group(3)
        fam = family_of(name)
        base_known = fam in types
        if not base_known and name not in types:
            fail("%s: sample %s has no preceding # TYPE" % (where, name))
        samples.append((name, labels, value, lineno))

    llvmmd = [s for s in samples if s[0].startswith("llvmmd_")]
    if not llvmmd:
        fail("%s: no llvmmd_-prefixed samples" % path)

    # Histogram consistency: per (family, non-le label set) the cumulative
    # buckets must be non-decreasing, end in le="+Inf", and match _count.
    for fam, ftype in sorted(types.items()):
        if ftype != "histogram":
            continue
        series = {}  # other-labels -> {"buckets": [(le, v)], "count": v}
        for name, labels, value, lineno in samples:
            if family_of(name) != fam:
                continue
            rest = labels_minus_le(labels)
            entry = series.setdefault(rest, {"buckets": [], "count": None})
            if name.endswith("_bucket"):
                le = LE_RE.search(labels)
                if not le:
                    fail("%s:%d: %s_bucket without an le label"
                         % (path, lineno, fam))
                entry["buckets"].append((le.group(1), int(float(value))))
            elif name.endswith("_count"):
                entry["count"] = int(float(value))
        for rest, entry in series.items():
            tag = "%s%s" % (fam, rest)
            buckets = entry["buckets"]
            if not buckets:
                fail("%s: histogram %s has no buckets" % (path, tag))
            if buckets[-1][0] != "+Inf":
                fail("%s: histogram %s does not end in le=\"+Inf\""
                     % (path, tag))
            prev = 0
            for le, v in buckets:
                if v < prev:
                    fail("%s: histogram %s bucket le=%r not cumulative "
                         "(%d < %d)" % (path, tag, le, v, prev))
                prev = v
            if entry["count"] is None:
                fail("%s: histogram %s missing _count" % (path, tag))
            if buckets[-1][1] != entry["count"]:
                fail("%s: histogram %s +Inf bucket %d != _count %d"
                     % (path, tag, buckets[-1][1], entry["count"]))

    print("check_obs: prom OK — %d sample(s), %d llvmmd family(ies) in %s"
          % (len(samples),
             len({family_of(s[0]) for s in llvmmd}), path))


def main(argv):
    if len(argv) != 3 or argv[1] not in ("trace", "prom"):
        print("usage: check_obs.py {trace|prom} FILE", file=sys.stderr)
        return 2
    if argv[1] == "trace":
        check_trace(argv[2])
    else:
        check_prom(argv[2])
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
