#!/usr/bin/env python3
"""check_obs.py - validate the observability output formats. Stdlib only.

Three subcommands, all exiting nonzero with a pointed message on the
first violation:

  check_obs.py trace FILE [--single-trace-id] [--min-pids N]
      FILE must be Chrome trace-event JSON as chrome://tracing and Perfetto
      accept it: a top-level object with a "traceEvents" list; every event
      carries name/cat/ph/ts/pid/tid with the right types; complete events
      (ph == "X") also carry a non-negative integer "dur". Requires at
      least one event (a suite run that traced nothing is a wiring bug).
      --single-trace-id additionally requires that at least one event
      carries args.trace_id and that all such events agree on one value —
      the merged-fleet-flame invariant. --min-pids N requires the traced
      events (all events, if none carry a trace id) to span at least N
      distinct pids: a fleet trace that never left the router's process
      means span propagation is broken.

  check_obs.py prom FILE
      FILE must be Prometheus text exposition format: every non-comment
      line is `name{labels} value`; every sample family is announced by a
      single # TYPE line appearing before its samples; histogram families
      emit cumulative _bucket series ending in le="+Inf", plus _sum and
      _count, with bucket counts non-decreasing and the +Inf bucket equal
      to _count. Requires at least one llvmmd_-prefixed sample.

  check_obs.py http URL
      GETs URL (http:// only) exactly as a Prometheus scraper would — no
      validate_client, no framed protocol — and requires a 200 status, the
      exposition Content-Type (text/plain; version=0.0.4), and a body that
      passes the same checks as `prom`.

Used by scripts/check.sh --obs and the CI observability job.
"""

import argparse
import http.client
import json
import re
import sys
import urllib.parse


def fail(msg):
    print("check_obs: FAIL: %s" % msg, file=sys.stderr)
    sys.exit(1)


def check_trace(path, single_trace_id=False, min_pids=0):
    with open(path, "rb") as f:
        try:
            doc = json.load(f)
        except ValueError as e:
            fail("%s: not valid JSON: %s" % (path, e))
    if not isinstance(doc, dict):
        fail("%s: top level must be an object" % path)
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("%s: missing traceEvents list" % path)
    if not events:
        fail("%s: traceEvents is empty (tracing produced no spans)" % path)
    for i, ev in enumerate(events):
        where = "%s: traceEvents[%d]" % (path, i)
        if not isinstance(ev, dict):
            fail("%s: event is not an object" % where)
        for key, want in (("name", str), ("cat", str), ("ph", str)):
            if not isinstance(ev.get(key), want):
                fail("%s: missing or mistyped %r" % (where, key))
        for key in ("ts", "pid", "tid"):
            v = ev.get(key)
            if not isinstance(v, int) or isinstance(v, bool):
                fail("%s: %r must be an integer" % (where, key))
        if ev["ph"] == "X":
            dur = ev.get("dur")
            if not isinstance(dur, int) or isinstance(dur, bool) or dur < 0:
                fail("%s: complete event needs non-negative integer 'dur'"
                     % where)

    traced = [ev for ev in events
              if isinstance(ev.get("args"), dict)
              and "trace_id" in ev["args"]]
    if single_trace_id:
        ids = {ev["args"]["trace_id"] for ev in traced}
        if not ids:
            fail("%s: no event carries args.trace_id (id propagation "
                 "is broken)" % path)
        if len(ids) != 1:
            fail("%s: %d distinct trace ids in one merged trace: %s"
                 % (path, len(ids), ", ".join(sorted(ids))))
    if min_pids:
        pids = {ev["pid"] for ev in (traced or events)}
        if len(pids) < min_pids:
            fail("%s: trace spans %d pid(s), expected >= %d (worker spans "
                 "never reached the merge)" % (path, len(pids), min_pids))

    print("check_obs: trace OK — %d event(s), %d traced, %d pid(s) in %s"
          % (len(events), len(traced),
             len({ev["pid"] for ev in events}), path))


# `name{labels} value` — labels optional, value is prometheus float text
# (digits, inf, or scientific notation; our emitters only write integers).
SAMPLE_RE = re.compile(
    r'^([a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(\{[^}]*\})?'
    r' ([0-9]+(?:\.[0-9]+)?(?:[eE][+-]?[0-9]+)?|\+Inf|NaN)$')
TYPE_RE = re.compile(r'^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) '
                     r'(counter|gauge|histogram|summary|untyped)$')
HELP_RE = re.compile(r'^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) .+$')
LE_RE = re.compile(r'le="([^"]*)"')

EXPOSITION_CONTENT_TYPE = "text/plain; version=0.0.4"


def labels_minus_le(labels):
    """Canonical non-le label set: '{a="1",b="2"}' with le dropped, sorted;
    "" when nothing remains. Series values never contain commas here."""
    inner = labels.strip("{}")
    parts = sorted(p for p in inner.split(",")
                   if p and not p.startswith("le="))
    return "{%s}" % ",".join(parts) if parts else ""


def family_of(name):
    """Map a sample name to its announced family (strip histogram suffixes)."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[:-len(suffix)]
    return name


def check_prom_text(text, where_label):
    if text and not text.endswith("\n"):
        fail("%s: missing trailing newline" % where_label)

    types = {}      # family -> type string
    samples = []    # (name, labels-or-"", value, lineno)
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line:
            continue
        where = "%s:%d" % (where_label, lineno)
        if line.startswith("# TYPE "):
            m = TYPE_RE.match(line)
            if not m:
                fail("%s: malformed TYPE line: %r" % (where, line))
            if m.group(1) in types:
                fail("%s: duplicate TYPE for %s (families must be grouped)"
                     % (where, m.group(1)))
            types[m.group(1)] = m.group(2)
            continue
        if line.startswith("# HELP "):
            if not HELP_RE.match(line):
                fail("%s: malformed HELP line: %r" % (where, line))
            continue
        if line.startswith("#"):
            continue  # free-form comment
        m = SAMPLE_RE.match(line)
        if not m:
            fail("%s: malformed sample line: %r" % (where, line))
        name, labels, value = m.group(1), m.group(2) or "", m.group(3)
        fam = family_of(name)
        base_known = fam in types
        if not base_known and name not in types:
            fail("%s: sample %s has no preceding # TYPE" % (where, name))
        samples.append((name, labels, value, lineno))

    llvmmd = [s for s in samples if s[0].startswith("llvmmd_")]
    if not llvmmd:
        fail("%s: no llvmmd_-prefixed samples" % where_label)

    # Histogram consistency: per (family, non-le label set) the cumulative
    # buckets must be non-decreasing, end in le="+Inf", and match _count.
    for fam, ftype in sorted(types.items()):
        if ftype != "histogram":
            continue
        series = {}  # other-labels -> {"buckets": [(le, v)], "count": v}
        for name, labels, value, lineno in samples:
            if family_of(name) != fam:
                continue
            rest = labels_minus_le(labels)
            entry = series.setdefault(rest, {"buckets": [], "count": None})
            if name.endswith("_bucket"):
                le = LE_RE.search(labels)
                if not le:
                    fail("%s:%d: %s_bucket without an le label"
                         % (where_label, lineno, fam))
                entry["buckets"].append((le.group(1), int(float(value))))
            elif name.endswith("_count"):
                entry["count"] = int(float(value))
        for rest, entry in series.items():
            tag = "%s%s" % (fam, rest)
            buckets = entry["buckets"]
            if not buckets:
                fail("%s: histogram %s has no buckets" % (where_label, tag))
            if buckets[-1][0] != "+Inf":
                fail("%s: histogram %s does not end in le=\"+Inf\""
                     % (where_label, tag))
            prev = 0
            for le, v in buckets:
                if v < prev:
                    fail("%s: histogram %s bucket le=%r not cumulative "
                         "(%d < %d)" % (where_label, tag, le, v, prev))
                prev = v
            if entry["count"] is None:
                fail("%s: histogram %s missing _count" % (where_label, tag))
            if buckets[-1][1] != entry["count"]:
                fail("%s: histogram %s +Inf bucket %d != _count %d"
                     % (where_label, tag, buckets[-1][1], entry["count"]))

    print("check_obs: prom OK — %d sample(s), %d llvmmd family(ies) in %s"
          % (len(samples),
             len({family_of(s[0]) for s in llvmmd}), where_label))


def check_prom(path):
    with open(path, "r") as f:
        check_prom_text(f.read(), path)


def check_http(url):
    u = urllib.parse.urlsplit(url)
    if u.scheme != "http" or not u.hostname:
        fail("%s: need an http://HOST:PORT/... URL" % url)
    path = u.path or "/"
    if u.query:
        path += "?" + u.query
    try:
        conn = http.client.HTTPConnection(u.hostname, u.port or 80,
                                          timeout=10)
        conn.request("GET", path)
        resp = conn.getresponse()
        body = resp.read().decode("utf-8", errors="replace")
    except OSError as e:
        fail("%s: request failed: %s" % (url, e))
    if resp.status != 200:
        fail("%s: HTTP %d %s (want 200 OK)"
             % (url, resp.status, resp.reason))
    ctype = resp.getheader("Content-Type", "")
    if not ctype.startswith(EXPOSITION_CONTENT_TYPE):
        fail("%s: Content-Type %r does not announce the exposition format "
             "(%r)" % (url, ctype, EXPOSITION_CONTENT_TYPE))
    print("check_obs: http OK — 200, Content-Type %r from %s" % (ctype, url))
    check_prom_text(body, url)


def main(argv):
    parser = argparse.ArgumentParser(
        prog="check_obs.py",
        description="validate observability output formats (stdlib only)")
    sub = parser.add_subparsers(dest="cmd", required=True)
    t = sub.add_parser("trace", help="Chrome trace-event JSON file")
    t.add_argument("file")
    t.add_argument("--single-trace-id", action="store_true",
                   help="all traced events must share one args.trace_id")
    t.add_argument("--min-pids", type=int, default=0, metavar="N",
                   help="traced events must span at least N distinct pids")
    pr = sub.add_parser("prom", help="Prometheus text exposition file")
    pr.add_argument("file")
    h = sub.add_parser("http", help="GET a /metrics URL and validate it")
    h.add_argument("url")
    args = parser.parse_args(argv[1:])

    if args.cmd == "trace":
        check_trace(args.file, args.single_trace_id, args.min_pids)
    elif args.cmd == "prom":
        check_prom(args.file)
    else:
        check_http(args.url)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
