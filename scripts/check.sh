#!/usr/bin/env bash
# check.sh - CI entry point: tier-1 verify plus a fig4 smoke run.
#
# Usage: scripts/check.sh [build-dir]
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build}"

# Tier-1 verify (see ROADMAP.md).
cmake -B "$BUILD_DIR" -S "$REPO_ROOT"
cmake --build "$BUILD_DIR" -j
(cd "$BUILD_DIR" && ctest --output-on-failure -j)

# Figure 4 in the smoke configuration (3 programs at 1/4 scale), on the
# validation engine.
"$BUILD_DIR/fig4_pipeline" --smoke

# Engine determinism spot check: the JSON report must not depend on the
# thread count. batch_validate exits 2 when some optimizations could not be
# proven — expected on this profile; only exit 1 (usage/IO error) is fatal.
run_bv() {
  local rc=0
  "$BUILD_DIR/batch_validate" "$@" || rc=$?
  [ "$rc" -eq 0 ] || [ "$rc" -eq 2 ]
}
run_bv --profile sqlite --threads 1 --quiet --json "$BUILD_DIR/check_t1.json"
run_bv --profile sqlite --threads 8 --quiet --json "$BUILD_DIR/check_t8.json"
cmp "$BUILD_DIR/check_t1.json" "$BUILD_DIR/check_t8.json"

echo "check.sh: OK"
