#!/usr/bin/env bash
# check.sh - CI entry point: tier-1 verify plus a fig4 smoke run.
#
# Usage: scripts/check.sh [--tsan|--asan|--warm|--triage|--serve|--fleet|--llvm|--bench|--obs] [build-dir]
#
#   (default)  tier-1 build + ctest, fig4 smoke, engine determinism checks
#   --tsan     ThreadSanitizer build (CMake preset "tsan") running the
#              engine + concurrent-interning + triage + server tests — the
#              same job CI runs
#   --asan     AddressSanitizer+UBSan build (preset "asan") running the
#              full test suite — ditto
#   --warm     local reproduction of the CI warm-cache job: two suite runs
#              against a temp verdict store; the second must replay 100% of
#              verdicts (batch_validate --expect-warm exits 3 otherwise)
#   --triage   local reproduction of the CI triage job: the bug-injected
#              corpus must agree with the interpreter (bug_detector exits
#              nonzero on any validator/triage disagreement), triage JSON
#              must be byte-identical across thread counts, and the
#              restricted-rule-mask run must classify at least one alarm
#              suspected-false-alarm with a named rule gap
#   --serve    local reproduction of the CI serve job: start the daemon,
#              run the client suite twice (the second pass must replay 100%
#              warm), restart the daemon on its checkpointed store and
#              require a fully warm replay byte-identical to the batch
#              path, then assert a clean shutdown with no leaked store lock
#   --llvm     local reproduction of the CI llvm-ingest job: validate the
#              frozen .ll fixture pair (clang -O0 vs opt output) through the
#              batch, server, and fleet front doors and byte-compare the
#              three suite JSON reports; when clang AND opt are on PATH,
#              additionally regenerate the pair from the fixtures' C source
#              and revalidate the fresh output
#   --bench    local reproduction of the CI perf-trajectory gate: Release
#              build (CMake preset "release"), run bench/scaling, compare
#              its BENCH_scaling.json against the committed seed baseline
#              in bench/baselines/ with bench_compare.py (throughput must
#              be at least 1.0x the seed)
#   --obs      local reproduction of the CI observability job: the suite
#              JSON must be byte-identical with tracing on and off and
#              across 1/2/8 threads (telemetry must never leak into
#              reports); the emitted trace must validate as Chrome
#              trace-event JSON (scripts/check_obs.py); a live server's
#              /metrics scrape and a two-worker fleet's roll-up must both
#              validate as Prometheus text exposition, the roll-up carrying
#              per-worker labels; both daemons must also answer a real
#              HTTP GET on --http-metrics with the same exposition (no
#              validate_client involved); a traced fleet job must merge
#              into one flame — a single trace id spanning at least two
#              pids; store_tool --stats must render the per-shard
#              occupancy of the fleet's checkpointed store
#   --fleet    local reproduction of the CI fleet job: start the router with
#              two supervised workers, run the client suite twice (second
#              pass 100% warm), kill -9 a worker mid-suite and require the
#              job to complete with at most one requeue, restart the fleet
#              on the merged store and require a warm replay byte-identical
#              to the batch path, exercising store_tool on the shards
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

MODE=default
case "${1:-}" in
--tsan)
  MODE=tsan
  shift
  ;;
--asan)
  MODE=asan
  shift
  ;;
--warm)
  MODE=warm
  shift
  ;;
--triage)
  MODE=triage
  shift
  ;;
--serve)
  MODE=serve
  shift
  ;;
--fleet)
  MODE=fleet
  shift
  ;;
--llvm)
  MODE=llvm
  shift
  ;;
--bench)
  MODE=bench
  shift
  ;;
--obs)
  MODE=obs
  shift
  ;;
esac

if [ "$MODE" = tsan ] || [ "$MODE" = asan ]; then
  # Sanitizer modes are backed by CMakePresets.json so local runs match the
  # CI sanitizer jobs exactly. Presets resolve relative to the source dir.
  cd "$REPO_ROOT"
  cmake --preset "$MODE"
  cmake --build --preset "$MODE" -j "$(nproc)"
  ctest --preset "$MODE" -j "$(nproc)"
  echo "check.sh ($MODE): OK"
  exit 0
fi

if [ "$MODE" = bench ]; then
  # The CI perf-trajectory gate, locally: Release build (preset "release",
  # so numbers are comparable to CI's), run the scaling benchmarks — the
  # gated metric is the engine report's wall clock, so the microbenchmark
  # min-time can stay short — then hold the emitted BENCH_scaling.json to
  # at least 1.0x the committed seed baseline's batch throughput. The seed
  # was recorded before the arena allocator landed, so a healthy tree
  # clears the bar with headroom.
  cd "$REPO_ROOT"
  cmake --preset release
  cmake --build --preset release -j "$(nproc)" --target scaling
  (cd build-release && ./scaling --benchmark_min_time=0.01)
  python3 scripts/bench_compare.py bench/baselines/BENCH_scaling.json \
    build-release/BENCH_scaling.json --max-regression 0
  echo "check.sh (bench): OK — throughput at least 1.0x the seed baseline"
  exit 0
fi

BUILD_DIR="${1:-$REPO_ROOT/build}"

if [ "$MODE" = warm ]; then
  # The CI warm-cache invariant, locally: a first suite run populates a
  # fresh verdict store; a second run of the same suite must replay every
  # verdict from it (PR 2's determinism guarantee made fingerprints
  # byte-stable across processes, so anything less than 100% is a bug).
  # batch_validate exits 2 when some optimizations could not be proven
  # (expected on these profiles) and 3 when --expect-warm saw a
  # from-scratch validation.
  cmake -B "$BUILD_DIR" -S "$REPO_ROOT"
  cmake --build "$BUILD_DIR" -j "$(nproc)" --target batch_validate
  STORE="$(mktemp -d)/warm.vstore"
  trap 'rm -rf "$(dirname "$STORE")"' EXIT
  run_warm() {
    local rc=0
    "$BUILD_DIR/batch_validate" --suite sqlite,hmmer,sjeng \
      --cache "$STORE" "$@" || rc=$?
    [ "$rc" -eq 0 ] || [ "$rc" -eq 2 ]
  }
  run_warm --quiet
  run_warm --expect-warm
  echo "check.sh (warm): OK — second run replayed 100% of verdicts"
  exit 0
fi

if [ "$MODE" = serve ]; then
  # The CI serve job, locally. Four invariants:
  #  1. A second client against a live daemon replays 100% of verdicts and
  #     triage results (validate_client --expect-warm exits 3 otherwise).
  #  2. A daemon *restarted* on its checkpointed store serves a fully warm
  #     replay whose suite JSON is byte-identical to batch_validate over
  #     the same store — the serving layer adds no bytes and loses none.
  #  3. The daemon exits 0 on a client Shutdown frame (graceful drain).
  #  4. No leaked store lock or temp files: after shutdown the advisory
  #     lock is free and no write-temp files remain.
  cmake -B "$BUILD_DIR" -S "$REPO_ROOT"
  cmake --build "$BUILD_DIR" -j "$(nproc)" \
    --target validate_server validate_client batch_validate
  DIR="$(mktemp -d)"
  DAEMON=""
  trap '[ -n "$DAEMON" ] && kill "$DAEMON" 2>/dev/null; rm -rf "$DIR"' EXIT
  STORE="$DIR/serve.vstore"
  SOCK="$DIR/serve.sock"

  run_client() {
    # 2 = some optimizations unprovable (expected on these profiles);
    # 3 = --expect-warm violated, which IS a failure here.
    local rc=0
    "$BUILD_DIR/validate_client" --connect "$SOCK" "$@" || rc=$?
    [ "$rc" -eq 0 ] || [ "$rc" -eq 2 ]
  }

  start_daemon() {
    "$BUILD_DIR/validate_server" --listen "$SOCK" --cache "$STORE" \
      --triage --quiet &
    DAEMON=$!
    for _ in $(seq 1 100); do
      [ -S "$SOCK" ] && return 0
      sleep 0.1
    done
    echo "daemon did not come up" >&2
    return 1
  }

  start_daemon
  run_client --suite sqlite,hmmer --quiet --json "$DIR/first.json"
  run_client --suite sqlite,hmmer --quiet --expect-warm
  run_client --shutdown --quiet
  wait "$DAEMON"

  # Warm restart: the checkpointed store must make the new daemon serve a
  # 100% warm replay, byte-identical to the batch path over the same store.
  start_daemon
  run_client --suite sqlite,hmmer --quiet --expect-warm \
    --json "$DIR/served_warm.json"
  run_client --shutdown --quiet
  wait "$DAEMON"

  cp "$STORE" "$DIR/batch.vstore"
  rc=0
  "$BUILD_DIR/batch_validate" --suite sqlite,hmmer --triage \
    --cache "$DIR/batch.vstore" --expect-warm --quiet \
    --json "$DIR/batch_warm.json" || rc=$?
  [ "$rc" -eq 0 ] || [ "$rc" -eq 2 ]
  cmp "$DIR/served_warm.json" "$DIR/batch_warm.json"

  # Clean shutdown: the advisory lock must be free and no atomic-save temp
  # files may survive the daemon.
  if command -v flock > /dev/null 2>&1; then
    flock -n "$STORE.lock" true
  fi
  if ls "$STORE".tmp.* > /dev/null 2>&1; then
    echo "leaked verdict-store temp file" >&2
    exit 1
  fi
  echo "check.sh (serve): OK — warm replay over the wire, byte-identical" \
    "to the batch path, clean shutdown"
  exit 0
fi

if [ "$MODE" = obs ]; then
  # The CI observability job, locally. Six invariants:
  #  1. Telemetry never leaks into reports: suite JSON is byte-identical
  #     with --trace on and off, and across 1/2/8 threads.
  #  2. The emitted trace validates as Chrome trace-event JSON with at
  #     least one span (scripts/check_obs.py trace).
  #  3. A live daemon's /metrics scrape validates as Prometheus text
  #     exposition (scripts/check_obs.py prom) and carries server- and
  #     engine-layer families; the fleet roll-up likewise, with
  #     per-worker labels on the relabeled worker samples.
  #  4. Both daemons answer a plain HTTP GET on --http-metrics with the
  #     same exposition — scraped with a raw socket (check_obs.py http),
  #     no validate_client, the way Prometheus actually arrives. The
  #     server's HTTP body must be byte-identical to the protocol scrape.
  #  5. A traced fleet job merges into one flame: the router-written
  #     trace holds a single trace id whose spans cover at least two
  #     pids (router dispatch + worker engine phases), and the traced
  #     run's suite JSON is byte-identical to the batch front door.
  #  6. store_tool --stats renders the per-shard occupancy of the fleet's
  #     checkpointed store.
  cmake -B "$BUILD_DIR" -S "$REPO_ROOT"
  cmake --build "$BUILD_DIR" -j "$(nproc)" \
    --target batch_validate validate_server validate_client validate_fleet \
    store_tool
  DIR="$(mktemp -d)"
  DAEMON=""
  trap '[ -n "$DAEMON" ] && kill "$DAEMON" 2>/dev/null; rm -rf "$DIR"' EXIT

  run_bv() {
    # 2 = some optimizations unprovable (expected on these profiles).
    local rc=0
    "$BUILD_DIR/batch_validate" --suite sqlite,hmmer --quiet "$@" || rc=$?
    [ "$rc" -eq 0 ] || [ "$rc" -eq 2 ]
  }
  run_bv --threads 1 --json "$DIR/t1.json"
  run_bv --threads 2 --json "$DIR/t2.json" --trace "$DIR/t2.trace.json"
  run_bv --threads 8 --json "$DIR/t8.json" --trace "$DIR/t8.trace.json"
  cmp "$DIR/t1.json" "$DIR/t2.json"
  cmp "$DIR/t1.json" "$DIR/t8.json"
  python3 "$REPO_ROOT/scripts/check_obs.py" trace "$DIR/t2.trace.json"
  python3 "$REPO_ROOT/scripts/check_obs.py" trace "$DIR/t8.trace.json"

  run_client() {
    local rc=0
    "$BUILD_DIR/validate_client" --connect "$@" || rc=$?
    [ "$rc" -eq 0 ] || [ "$rc" -eq 2 ]
  }
  wait_sock() {
    for _ in $(seq 1 100); do
      [ -S "$1" ] && return 0
      sleep 0.1
    done
    echo "$2 did not come up" >&2
    return 1
  }
  wait_http() {
    # The startup banner's "  http: HOST:PORT" line carries the ephemeral
    # port (the daemons bind --http-metrics ...:0 and fflush the banner).
    for _ in $(seq 1 100); do
      ADDR="$(awk '/^  http: / { print $2; exit }' "$1")"
      [ -n "$ADDR" ] && { echo "$ADDR"; return 0; }
      sleep 0.1
    done
    echo "http banner did not appear in $1" >&2
    return 1
  }

  # A daemon that has served a suite must expose both its own layer and
  # the engine's counters at /metrics, in valid exposition format —
  # identically over the framed protocol and over plain HTTP.
  "$BUILD_DIR/validate_server" --listen "$DIR/s.sock" \
    --http-metrics 127.0.0.1:0 > "$DIR/server.log" &
  DAEMON=$!
  wait_sock "$DIR/s.sock" "daemon"
  SRV_HTTP="$(wait_http "$DIR/server.log")"
  run_client "$DIR/s.sock" --suite sqlite,hmmer --quiet --json "$DIR/srv.json"
  run_client "$DIR/s.sock" --metrics --quiet > "$DIR/server.prom"
  python3 "$REPO_ROOT/scripts/check_obs.py" http "http://$SRV_HTTP/metrics"
  python3 - "$SRV_HTTP" "$DIR/server.http.prom" << 'EOF'
import sys, urllib.request
body = urllib.request.urlopen("http://%s/metrics" % sys.argv[1]).read()
open(sys.argv[2], "wb").write(body)
EOF
  run_client "$DIR/s.sock" --shutdown --quiet
  wait "$DAEMON"
  python3 "$REPO_ROOT/scripts/check_obs.py" prom "$DIR/server.prom"
  grep -q '^llvmmd_server_jobs_completed_total ' "$DIR/server.prom"
  grep -q '^llvmmd_server_queue_wait_us_count ' "$DIR/server.prom"
  grep -q '^llvmmd_engine_pairs_validated_total ' "$DIR/server.prom"
  # The transport must not change the bytes: HTTP scrape == protocol
  # scrape (both taken after the suite, with the daemon idle).
  cmp "$DIR/server.prom" "$DIR/server.http.prom"

  # The fleet roll-up: router-level families plus every worker's samples
  # relabeled with worker="N", still one valid exposition document —
  # also answering over HTTP while jobs could be in flight.
  "$BUILD_DIR/validate_fleet" --listen "$DIR/f.sock" --workers 2 \
    --cache "$DIR/f.vstore" --http-metrics 127.0.0.1:0 > "$DIR/fleet.log" &
  DAEMON=$!
  wait_sock "$DIR/f.sock" "fleet"
  FLT_HTTP="$(wait_http "$DIR/fleet.log")"
  run_client "$DIR/f.sock" --suite sqlite,hmmer --quiet --json "$DIR/flt.json"
  run_client "$DIR/f.sock" --metrics --quiet > "$DIR/fleet.prom"
  python3 "$REPO_ROOT/scripts/check_obs.py" http "http://$FLT_HTTP/metrics"
  run_client "$DIR/f.sock" --shutdown --quiet
  wait "$DAEMON"
  DAEMON=""
  python3 "$REPO_ROOT/scripts/check_obs.py" prom "$DIR/fleet.prom"
  grep -q '^llvmmd_fleet_worker_up{worker="0"} 1' "$DIR/fleet.prom"
  grep -q '^llvmmd_fleet_jobs_completed_total ' "$DIR/fleet.prom"
  grep -q '^llvmmd_server_jobs_completed_total{worker=' "$DIR/fleet.prom"

  # The merged flame: a traced single-job fleet run must produce a trace
  # with exactly one trace id spanning at least two pids, and the traced
  # run's report must be byte-identical to the batch front door over the
  # same module (tracing is invisible in reports).
  "$BUILD_DIR/validate_fleet" --listen "$DIR/t.sock" --workers 2 \
    --trace "$DIR/fleet.trace.json" > "$DIR/traced.log" &
  DAEMON=$!
  wait_sock "$DIR/t.sock" "traced fleet"
  run_client "$DIR/t.sock" --suite hmmer --quiet --json "$DIR/traced.json"
  run_client "$DIR/t.sock" --shutdown --quiet
  wait "$DAEMON"
  DAEMON=""
  python3 "$REPO_ROOT/scripts/check_obs.py" trace "$DIR/fleet.trace.json" \
    --single-trace-id --min-pids 2
  rc=0
  "$BUILD_DIR/batch_validate" --suite hmmer --quiet \
    --json "$DIR/hmmer_batch.json" || rc=$?
  [ "$rc" -eq 0 ] || [ "$rc" -eq 2 ]
  cmp "$DIR/traced.json" "$DIR/hmmer_batch.json"

  # The drain checkpointed the merged store; --stats must render its
  # per-shard occupancy (and exit 0: every shard healthy).
  "$BUILD_DIR/store_tool" --stats "$DIR/f.vstore" | grep -q 'shard 0:'

  echo "check.sh (obs): OK — reports byte-identical with telemetry on/off" \
    "and across thread counts, trace and /metrics validated over the" \
    "protocol and over HTTP, one trace id across processes"
  exit 0
fi

if [ "$MODE" = fleet ]; then
  # The CI fleet job, locally. Five invariants:
  #  1. The fleet is indistinguishable from a single daemon at the socket:
  #     the client suite runs against the router unchanged, and a second
  #     pass replays 100% warm (validate_client --expect-warm exits 3
  #     otherwise) from the sticky worker's shard.
  #  2. kill -9 on a worker mid-suite costs only the in-flight attempt:
  #     the job completes via the supervised restart with at most one
  #     requeue, and the fleet keeps serving.
  #  3. A fleet *restarted* on the merged base store serves a fully warm
  #     replay whose suite JSON is byte-identical to batch_validate over
  #     the same store — two process boundaries add no bytes, lose none.
  #  4. The router exits 0 on a client Shutdown frame (drain, worker
  #     checkpoint, shard merge).
  #  5. store_tool can inspect the surviving shards and union them offline
  #     into a loadable store; no leaked lock or write-temp files remain.
  cmake -B "$BUILD_DIR" -S "$REPO_ROOT"
  cmake --build "$BUILD_DIR" -j "$(nproc)" \
    --target validate_fleet validate_server validate_client batch_validate \
    store_tool
  DIR="$(mktemp -d)"
  ROUTER=""
  trap '[ -n "$ROUTER" ] && kill "$ROUTER" 2>/dev/null; rm -rf "$DIR"' EXIT
  STORE="$DIR/fleet.vstore"
  SOCK="$DIR/fleet.sock"

  run_client() {
    # 2 = some optimizations unprovable (expected on these profiles);
    # 3 = --expect-warm violated, which IS a failure here.
    local rc=0
    "$BUILD_DIR/validate_client" --connect "$SOCK" "$@" || rc=$?
    [ "$rc" -eq 0 ] || [ "$rc" -eq 2 ]
  }

  start_fleet() {
    # Not --quiet: the startup banner carries the worker pids the kill
    # test needs.
    "$BUILD_DIR/validate_fleet" --listen "$SOCK" --workers 2 \
      --cache "$STORE" --triage > "$DIR/fleet.log" &
    ROUTER=$!
    for _ in $(seq 1 100); do
      [ -S "$SOCK" ] && return 0
      sleep 0.1
    done
    echo "fleet did not come up" >&2
    cat "$DIR/fleet.log" >&2
    return 1
  }

  start_fleet
  run_client --suite sqlite,hmmer --quiet --json "$DIR/first.json"
  run_client --suite sqlite,hmmer --quiet --expect-warm

  # Crash recovery over the wire: a distinct (cold) suite sticks to the
  # second worker; kill -9 it mid-run. The client must still complete the
  # job (restart + requeue are invisible at the socket), and the router
  # stats must show at most one requeue. If validation finished before the
  # kill landed, the check degrades to "the fleet survives losing an idle
  # worker" — the deterministic mid-flight version lives in FleetTest.
  W1_PID="$(awk '/worker 1:/ { print $4 }' "$DIR/fleet.log")"
  [ -n "$W1_PID" ]
  run_client --suite sqlite,hmmer,sjeng --quiet --json "$DIR/kill.json" &
  KILL_CLIENT=$!
  sleep 0.5
  kill -9 "$W1_PID" 2> /dev/null || true
  wait "$KILL_CLIENT"
  run_client --stats --quiet > "$DIR/stats.json"
  REQUEUED="$(grep -o '"requeued": [0-9]*' "$DIR/stats.json" | grep -o '[0-9]*')"
  if [ "${REQUEUED:-0}" -gt 1 ]; then
    echo "worker kill cost $REQUEUED requeues (expected at most 1)" >&2
    exit 1
  fi

  run_client --shutdown --quiet
  wait "$ROUTER"

  # The drain merged the shards into the base store; store_tool must agree
  # they are loadable, and an offline union of the shards alone must also
  # produce a loadable, non-empty store (the crashed-fleet salvage path).
  "$BUILD_DIR/store_tool" --dump "$STORE" "$STORE.shard0" "$STORE.shard1"
  "$BUILD_DIR/store_tool" --merge "$STORE.shard0,$STORE.shard1" \
    -o "$DIR/offline.vstore"
  "$BUILD_DIR/store_tool" --dump "$DIR/offline.vstore" | grep -q 'verdicts [1-9]'

  # Warm restart: the merged store must make the new fleet serve a 100%
  # warm replay, byte-identical to the batch path over the same store.
  start_fleet
  run_client --suite sqlite,hmmer --quiet --expect-warm \
    --json "$DIR/served_warm.json"
  run_client --shutdown --quiet
  wait "$ROUTER"

  cp "$STORE" "$DIR/batch.vstore"
  rc=0
  "$BUILD_DIR/batch_validate" --suite sqlite,hmmer --triage \
    --cache "$DIR/batch.vstore" --expect-warm --quiet \
    --json "$DIR/batch_warm.json" || rc=$?
  [ "$rc" -eq 0 ] || [ "$rc" -eq 2 ]
  cmp "$DIR/served_warm.json" "$DIR/batch_warm.json"

  # Clean shutdown: the advisory lock must be free and no atomic-save temp
  # files may survive the fleet (base store or shards).
  if command -v flock > /dev/null 2>&1; then
    flock -n "$STORE.lock" true
  fi
  if ls "$STORE".tmp.* "$STORE".shard*.tmp.* > /dev/null 2>&1; then
    echo "leaked verdict-store temp file" >&2
    exit 1
  fi
  echo "check.sh (fleet): OK — warm replay through the router, worker" \
    "kill survived, byte-identical to the batch path, clean shutdown"
  exit 0
fi

if [ "$MODE" = llvm ]; then
  # The CI llvm-ingest job, locally. Three invariants:
  #  1. The frozen .ll fixture pair (clang -O0 vs opt output) imports and
  #     validates through the batch front door: every transformed function
  #     validates (exit 0), and the one function outside the importer's
  #     subset (to_int, fptosi) is rejected *per function* with its named
  #     reason — present in the JSON — never sinking its module.
  #  2. The same specs submitted through the server front door produce
  #     byte-identical suite JSON: the unified ModuleLoader means one load
  #     path behind every front door.
  #  3. Same through the fleet router — two process boundaries add no
  #     bytes and lose none.
  #  When clang AND opt are both on PATH the pair is regenerated from the
  #  fixtures' C source and the fresh output revalidated: current compiler
  #  output must still import, still validate, and still reject to_int by
  #  name. Frozen fixtures keep the job deterministic everywhere else.
  cmake -B "$BUILD_DIR" -S "$REPO_ROOT"
  cmake --build "$BUILD_DIR" -j "$(nproc)" \
    --target batch_validate validate_server validate_client validate_fleet
  DIR="$(mktemp -d)"
  DAEMON=""
  trap '[ -n "$DAEMON" ] && kill "$DAEMON" 2>/dev/null; rm -rf "$DIR"' EXIT
  FIX="$REPO_ROOT/tests/fixtures/llvm"
  PAIR=("$FIX/kernels_O0.ll" "$FIX/kernels_opt.ll")

  "$BUILD_DIR/batch_validate" "${PAIR[@]}" --quiet --json "$DIR/batch.json"
  grep -q '"unsupported_functions": 2' "$DIR/batch.json"
  grep -q '"name": "to_int"' "$DIR/batch.json"
  grep -q '"reason": "unsupported-instruction"' "$DIR/batch.json"

  wait_sock() {
    for _ in $(seq 1 100); do
      [ -S "$1" ] && return 0
      sleep 0.1
    done
    echo "$2 did not come up" >&2
    return 1
  }

  "$BUILD_DIR/validate_server" --listen "$DIR/s.sock" --quiet &
  DAEMON=$!
  wait_sock "$DIR/s.sock" "daemon"
  "$BUILD_DIR/validate_client" --connect "$DIR/s.sock" "${PAIR[@]}" \
    --quiet --json "$DIR/server.json"
  "$BUILD_DIR/validate_client" --connect "$DIR/s.sock" --shutdown --quiet
  wait "$DAEMON"
  cmp "$DIR/batch.json" "$DIR/server.json"

  "$BUILD_DIR/validate_fleet" --listen "$DIR/f.sock" --workers 2 --quiet &
  DAEMON=$!
  wait_sock "$DIR/f.sock" "fleet"
  "$BUILD_DIR/validate_client" --connect "$DIR/f.sock" "${PAIR[@]}" \
    --quiet --json "$DIR/fleet.json"
  "$BUILD_DIR/validate_client" --connect "$DIR/f.sock" --shutdown --quiet
  wait "$DAEMON"
  DAEMON=""
  cmp "$DIR/batch.json" "$DIR/fleet.json"

  REGEN=" (regeneration skipped: clang/opt not on PATH)"
  if command -v clang > /dev/null 2>&1 && command -v opt > /dev/null 2>&1; then
    # Match the frozen fixtures' shape: -O0 without optnone so opt can
    # work, mem2reg'd into SSA form, then a conservative scalar pipeline
    # for the "optimized" side. Per-function rejects of constructs newer
    # compilers emit are fine; a module-level import failure is not.
    clang -S -emit-llvm -O0 -Xclang -disable-O0-optnone \
      -o "$DIR/fresh_base.ll" "$FIX/kernels.c"
    opt -S -passes=mem2reg "$DIR/fresh_base.ll" -o "$DIR/fresh_O0.ll"
    opt -S -passes=mem2reg,sccp,adce,simplifycfg "$DIR/fresh_base.ll" \
      -o "$DIR/fresh_opt.ll"
    rc=0
    "$BUILD_DIR/batch_validate" "$DIR/fresh_O0.ll" "$DIR/fresh_opt.ll" \
      --quiet --json "$DIR/fresh.json" || rc=$?
    [ "$rc" -eq 0 ] || [ "$rc" -eq 2 ]
    grep -q '"name": "to_int"' "$DIR/fresh.json"
    grep -q '"reason": "unsupported-instruction"' "$DIR/fresh.json"
    REGEN=" and regenerated clang/opt output revalidated"
  fi
  echo "check.sh (llvm): OK — fixture pair byte-identical through batch," \
    "server and fleet$REGEN"
  exit 0
fi

if [ "$MODE" = triage ]; then
  # The CI triage job, locally. Three invariants:
  #  1. On the bug-injected corpus the validator/triage never disagrees
  #     with the reference interpreter: no accepted pair diverges, and no
  #     rejected pair the probe can distinguish lacks a triage witness
  #     (bug_detector exits 1 on either).
  #  2. Triage reports are a pure function of the input: --triage JSON is
  #     byte-identical across thread counts.
  #  3. Under the deliberately restricted paper rule mask (the default —
  #     no libc/float/global extension rules) at least one suite alarm is
  #     classified suspected-false-alarm with a named missing rule.
  cmake -B "$BUILD_DIR" -S "$REPO_ROOT"
  cmake --build "$BUILD_DIR" -j "$(nproc)" --target batch_validate bug_detector
  "$BUILD_DIR/bug_detector" 32

  run_triage() {
    local rc=0
    "$BUILD_DIR/batch_validate" --profile sqlite --triage "$@" || rc=$?
    [ "$rc" -eq 0 ] || [ "$rc" -eq 2 ]
  }
  run_triage --threads 1 --quiet --json "$BUILD_DIR/triage_t1.json"
  run_triage --threads 8 --quiet --json "$BUILD_DIR/triage_t8.json"
  cmp "$BUILD_DIR/triage_t1.json" "$BUILD_DIR/triage_t8.json"

  grep -q '"classification": "suspected-false-alarm"' "$BUILD_DIR/triage_t1.json"
  grep -q '"missing_rule": "[a-z-]*"' "$BUILD_DIR/triage_t1.json"
  echo "check.sh (triage): OK — corpus witnessed, reports thread-count" \
    "independent, rule gap attributed"
  exit 0
fi

# Tier-1 verify (see ROADMAP.md).
cmake -B "$BUILD_DIR" -S "$REPO_ROOT"
cmake --build "$BUILD_DIR" -j
(cd "$BUILD_DIR" && ctest --output-on-failure -j)

# Figure 4 in the smoke configuration (3 programs at 1/4 scale), on the
# validation engine.
"$BUILD_DIR/fig4_pipeline" --smoke

# Engine determinism spot check: the JSON report must not depend on the
# thread count. batch_validate exits 2 when some optimizations could not be
# proven — expected on this profile; only exit 1 (usage/IO error) is fatal.
run_bv() {
  local rc=0
  "$BUILD_DIR/batch_validate" "$@" || rc=$?
  [ "$rc" -eq 0 ] || [ "$rc" -eq 2 ]
}
run_bv --profile sqlite --threads 1 --quiet --json "$BUILD_DIR/check_t1.json"
run_bv --profile sqlite --threads 8 --quiet --json "$BUILD_DIR/check_t8.json"
cmp "$BUILD_DIR/check_t1.json" "$BUILD_DIR/check_t8.json"

# Same for suite mode: multiple modules sharded over one pool must emit
# byte-identical per-module and roll-up JSON at any thread count.
run_bv --suite sqlite,hmmer --threads 1 --quiet --json "$BUILD_DIR/check_s1.json"
run_bv --suite sqlite,hmmer --threads 8 --quiet --json "$BUILD_DIR/check_s8.json"
cmp "$BUILD_DIR/check_s1.json" "$BUILD_DIR/check_s8.json"

echo "check.sh: OK"
