#!/usr/bin/env python3
"""Compare two BENCH_scaling.json engine reports and fail on regression.

Usage: bench_compare.py BASELINE.json CURRENT.json [--max-regression 0.25]

BENCH_scaling.json is the validation engine's JSON report with timing
(schema llvmmd-validation-report-v1, emitted by bench/scaling.cpp). The
guarded metric is end-to-end validation throughput: validated functions per
second of engine wall time. Exits 1 when the current throughput is more
than --max-regression below the baseline; a faster run never fails.

CI gates twice: against the previous run's BENCH_scaling artifact (the
trajectory) and against the committed seed baseline in bench/baselines/.
A missing baseline file is an explicit clean pass, loudly logged — the
very first run of a fresh trajectory has nothing to compare against, and
silently exiting would look identical to a forgotten gate.
"""

import argparse
import json
import os
import sys


def throughput(path):
    with open(path) as f:
        report = json.load(f)
    schema = report.get("schema", "")
    if not schema.startswith("llvmmd-validation-report"):
        sys.exit(f"error: {path}: unexpected schema {schema!r}")
    wall_us = report.get("wall_us", 0)
    validated = report.get("summary", {}).get("validated", 0)
    if wall_us <= 0 or validated <= 0:
        sys.exit(f"error: {path}: no timing data (wall_us={wall_us}, "
                 f"validated={validated}); was it emitted with timing?")
    return validated / (wall_us / 1e6), validated, wall_us


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--max-regression", type=float, default=0.25,
                    help="fractional throughput drop that fails (default .25)")
    args = ap.parse_args()

    if not os.path.exists(args.baseline):
        # First run of a trajectory: nothing to regress against. Pass, but
        # say so explicitly — a silent exit is indistinguishable from a
        # gate that never ran.
        print(f"notice: no baseline at {args.baseline}; first run of this "
              f"trajectory — clean pass, no regression gate applied")
        throughput(args.current)  # still validate the current report
        print("OK (no baseline)")
        return 0

    base_tp, base_n, base_us = throughput(args.baseline)
    cur_tp, cur_n, cur_us = throughput(args.current)

    delta = (cur_tp - base_tp) / base_tp
    print(f"baseline: {base_n} validated in {base_us / 1000.0:.2f} ms "
          f"({base_tp:.1f} fn/s)")
    print(f"current:  {cur_n} validated in {cur_us / 1000.0:.2f} ms "
          f"({cur_tp:.1f} fn/s)")
    print(f"throughput delta: {delta:+.1%} "
          f"(gate: -{args.max_regression:.0%})")

    if base_n != cur_n:
        # Workload drift (different profile or validator coverage) makes the
        # ratio meaningless; flag it instead of comparing apples to oranges.
        print("warning: validated-function counts differ; "
              "treating as workload change, not a regression")
        return 0
    if delta < -args.max_regression:
        print(f"FAIL: throughput regressed more than "
              f"{args.max_regression:.0%}")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
