//===- GraphBuilderTest.cpp - Gated SSA + symbolic evaluation tests -----------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "gated/GatedSSA.h"
#include "vg/GraphBuilder.h"

#include <gtest/gtest.h>

using namespace llvmmd;
using namespace llvmmd::testutil;

namespace {

struct BuildFixture : ::testing::Test {
  Context Ctx;

  BuildResult build(ValueGraph &G, const char *Src,
                    const char *Name = "f") {
    auto M = parseOrDie(Ctx, Src);
    Keep.push_back(std::move(M));
    return buildValueGraph(G, *Keep.back()->getFunction(Name));
  }

  std::vector<std::unique_ptr<Module>> Keep;
};

} // namespace

TEST_F(BuildFixture, PaperBasicBlockExampleShares) {
  // §3.1: both B1 and B2 in one graph; the node for 'a' is shared, and the
  // graphs differ before normalization.
  ValueGraph G;
  BuildResult B1 = build(G, R"(
define i32 @f(i32 %a) {
entry:
  %x1 = add i32 3, 3
  %x2 = mul i32 %a, %x1
  %x3 = add i32 %x2, %x2
  ret i32 %x3
}
)");
  size_t NodesAfterFirst = G.size();
  BuildResult B2 = build(G, R"(
define i32 @f(i32 %a) {
entry:
  %y1 = mul i32 %a, 6
  %y2 = shl i32 %y1, 1
  ret i32 %y2
}
)");
  ASSERT_TRUE(B1.Supported);
  ASSERT_TRUE(B2.Supported);
  EXPECT_NE(G.find(B1.Ret), G.find(B2.Ret));
  // The second function reuses shared leaves: it must add fewer nodes than
  // a fresh graph would.
  EXPECT_LT(G.size() - NodesAfterFirst, NodesAfterFirst);
}

TEST_F(BuildFixture, IdenticalFunctionsShareEverything) {
  const char *Src = R"(
define i32 @f(i32 %a, i32 %b) {
entry:
  %c = icmp slt i32 %a, %b
  br i1 %c, label %t, label %e
t:
  %x = add i32 %a, 1
  br label %j
e:
  %y = mul i32 %b, 2
  br label %j
j:
  %p = phi i32 [ %x, %t ], [ %y, %e ]
  ret i32 %p
}
)";
  ValueGraph G;
  BuildResult A = build(G, Src);
  BuildResult B = build(G, Src);
  ASSERT_TRUE(A.Supported && B.Supported);
  EXPECT_EQ(G.find(A.Ret), G.find(B.Ret))
      << "identical functions must be O(1)-equal by hash-consing";
}

TEST_F(BuildFixture, LoopsBecomeMuEta) {
  ValueGraph G;
  BuildResult R = build(G, R"(
define i32 @f(i32 %n) {
entry:
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %i2, %b ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %b, label %x
b:
  %i2 = add i32 %i, 1
  br label %h
x:
  ret i32 %i
}
)");
  ASSERT_TRUE(R.Supported);
  std::string Dump = G.dump({R.Ret});
  EXPECT_NE(Dump.find("mu"), std::string::npos);
  EXPECT_NE(Dump.find("eta"), std::string::npos);
}

TEST_F(BuildFixture, MemoryIsThreadedMonadically) {
  // §3.1 side effects: two allocas get distinct identities through memory
  // threading; the load reads through the store chain.
  ValueGraph G;
  BuildResult R = build(G, R"(
define i32 @f(i32 %x, i32 %y) {
entry:
  %p1 = alloca i32
  %p2 = alloca i32
  store i32 %x, ptr %p1
  store i32 %y, ptr %p2
  %z = load i32, ptr %p1
  ret i32 %z
}
)");
  ASSERT_TRUE(R.Supported);
  std::string Dump = G.dump({R.Ret});
  EXPECT_NE(Dump.find("alloc"), std::string::npos);
  EXPECT_NE(Dump.find("store"), std::string::npos);
  EXPECT_NE(Dump.find("load"), std::string::npos);
}

TEST_F(BuildFixture, ReadNoneCallsArePure) {
  // abs() takes no memory operand: two calls on the same argument become
  // one node even across the two functions.
  ValueGraph G;
  const char *Src = R"(
declare i32 @abs(i32) readnone
define i32 @f(i32 %a) {
entry:
  %v = call i32 @abs(i32 %a)
  ret i32 %v
}
)";
  BuildResult A = build(G, Src);
  BuildResult B = build(G, Src);
  ASSERT_TRUE(A.Supported && B.Supported);
  EXPECT_EQ(G.find(A.Ret), G.find(B.Ret));
}

TEST_F(BuildFixture, WritingCallsClobberMemory) {
  ValueGraph G;
  BuildResult R = build(G, R"(
declare void @w(ptr)
define i32 @f(ptr %p) {
entry:
  store i32 1, ptr %p
  call void @w(ptr %p)
  %v = load i32, ptr %p
  ret i32 %v
}
)");
  ASSERT_TRUE(R.Supported);
  std::string Dump = G.dump({R.Ret});
  EXPECT_NE(Dump.find("callmem"), std::string::npos);
}

TEST_F(BuildFixture, RejectsIrreducible) {
  ValueGraph G;
  BuildResult R = build(G, R"(
define void @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  br label %b
b:
  br i1 %c, label %a, label %x
x:
  ret void
}
)");
  EXPECT_FALSE(R.Supported);
  EXPECT_NE(R.Reason.find("irreducible"), std::string::npos);
}

TEST_F(BuildFixture, RejectsMultipleReturns) {
  ValueGraph G;
  BuildResult R = build(G, R"(
define i32 @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  ret i32 1
b:
  ret i32 2
}
)");
  EXPECT_FALSE(R.Supported);
  EXPECT_NE(R.Reason.find("return"), std::string::npos);
}

TEST_F(BuildFixture, GatedPhiConditionsDistinguishBranchPolarity) {
  // §3.2: swapping branch targets with the same condition changes gates.
  ValueGraph G;
  BuildResult A = build(G, R"(
define i32 @f(i32 %a, i32 %b) {
entry:
  %c = icmp slt i32 %a, %b
  br i1 %c, label %t, label %e
t:
  br label %j
e:
  br label %j
j:
  %p = phi i32 [ 1, %t ], [ 2, %e ]
  ret i32 %p
}
)");
  BuildResult B = build(G, R"(
define i32 @f(i32 %a, i32 %b) {
entry:
  %c = icmp slt i32 %a, %b
  br i1 %c, label %t, label %e
t:
  br label %j
e:
  br label %j
j:
  %p = phi i32 [ 2, %t ], [ 1, %e ]
  ret i32 %p
}
)");
  ASSERT_TRUE(A.Supported && B.Supported);
  EXPECT_NE(G.find(A.Ret), G.find(B.Ret))
      << "a φ is not referentially transparent without its gates";
}

TEST(GatedSSATest, EdgeGatesAreConditions) {
  Context Ctx;
  auto M = testutil::parseOrDie(Ctx, R"(
define i32 @f(i32 %a, i32 %b) {
entry:
  %c = icmp slt i32 %a, %b
  br i1 %c, label %t, label %e
t:
  br label %j
e:
  br label %j
j:
  %p = phi i32 [ 1, %t ], [ 2, %e ]
  ret i32 %p
}
)");
  Function *F = M->getFunction("f");
  GatingAnalysis GA(*F);
  ASSERT_TRUE(GA.isSupported());
  BasicBlock *T = nullptr, *E = nullptr, *J = nullptr;
  for (const auto &BB : F->blocks()) {
    if (BB->getName() == "t")
      T = BB;
    if (BB->getName() == "e")
      E = BB;
    if (BB->getName() == "j")
      J = BB;
  }
  const GateExpr *GT = GA.getEdgeGate(T, J);
  const GateExpr *GE = GA.getEdgeGate(E, J);
  // Through-t gate is the raw condition; through-e its negation.
  EXPECT_EQ(GT->K, GateExpr::Kind::Cond);
  EXPECT_EQ(GE->K, GateExpr::Kind::Not);
}

TEST(GatedSSATest, StayConditionPolarity) {
  Context Ctx;
  auto M = testutil::parseOrDie(Ctx, R"(
define i32 @f(i32 %n) {
entry:
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %i2, %b ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %b, label %x
b:
  %i2 = add i32 %i, 1
  br label %h
x:
  ret i32 %i
}
)");
  Function *F = M->getFunction("f");
  GatingAnalysis GA(*F);
  ASSERT_TRUE(GA.isSupported());
  DominatorTree DT(*F);
  LoopInfo LI(*F, DT);
  Loop *L = LI.getTopLevelLoops().front();
  auto [Exiting, Exit] = GA.getPrimaryExitEdge(*L);
  ASSERT_NE(Exiting, nullptr);
  const GateExpr *Stay = GA.getStayCondition(*L, Exiting, Exit);
  // Staying in the loop means the branch condition held (fig. 2's η(b,x)).
  EXPECT_EQ(Stay->K, GateExpr::Kind::Cond);
}
