//===- FoldingTest.cpp - Folding helpers vs the interpreter ---------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
// The compile-time folding in ir/Folding.h is used by the optimizer *and*
// the validator; if it ever disagreed with the runtime semantics, either
// the optimizer would miscompile or the validator would accept
// miscompiles. These property sweeps pin the three against each other.
//
//===----------------------------------------------------------------------===//

#include "ir/Folding.h"

#include "ir/Interpreter.h"
#include "ir/Module.h"
#include "ir/Parser.h"
#include "support/Hashing.h"

#include <gtest/gtest.h>

using namespace llvmmd;

TEST(Folding, BasicArithmetic) {
  EXPECT_EQ(foldIntBinary(Opcode::Add, 3, 3, 32), 6);
  EXPECT_EQ(foldIntBinary(Opcode::Mul, 3, 2, 32), 6);
  EXPECT_EQ(foldIntBinary(Opcode::Sub, 3, 2, 32), 1);
  // The paper's §4 family: add 3 2 ↓ 5, mul 3 2 ↓ 6, sub 3 2 ↓ 1.
  EXPECT_EQ(foldIntBinary(Opcode::Add, 3, 2, 32), 5);
}

TEST(Folding, WidthWrapping) {
  EXPECT_EQ(foldIntBinary(Opcode::Add, 127, 1, 8), -128);
  EXPECT_EQ(foldIntBinary(Opcode::Mul, 16, 16, 8), 0);
  EXPECT_EQ(foldIntBinary(Opcode::Shl, 1, 7, 8), -128);
}

TEST(Folding, UndefinedCasesNeverFold) {
  EXPECT_FALSE(foldIntBinary(Opcode::SDiv, 1, 0, 32).has_value());
  EXPECT_FALSE(foldIntBinary(Opcode::UDiv, 1, 0, 32).has_value());
  EXPECT_FALSE(foldIntBinary(Opcode::SRem, 1, 0, 32).has_value());
  int64_t Min32 = signExtend(int64_t(1) << 31, 32);
  EXPECT_FALSE(foldIntBinary(Opcode::SDiv, Min32, -1, 32).has_value());
  EXPECT_FALSE(foldIntBinary(Opcode::Shl, 1, 32, 32).has_value());
  EXPECT_FALSE(foldIntBinary(Opcode::LShr, 1, 64, 64).has_value());
}

TEST(Folding, UnsignedViews) {
  // -1 as u8 is 255.
  EXPECT_EQ(foldIntBinary(Opcode::UDiv, -1, 2, 8), 127);
  EXPECT_EQ(foldIntBinary(Opcode::LShr, -1, 1, 8), 127);
  EXPECT_EQ(foldIntBinary(Opcode::AShr, -1, 1, 8), -1);
  EXPECT_TRUE(foldICmp(ICmpPred::UGT, -1, 1, 8));
  EXPECT_FALSE(foldICmp(ICmpPred::SGT, -1, 1, 8));
}

TEST(Folding, Casts) {
  EXPECT_EQ(foldCast(Opcode::Trunc, 300, 32, 8), 44);
  EXPECT_EQ(foldCast(Opcode::SExt, -1, 8, 32), -1);
  EXPECT_EQ(foldCast(Opcode::ZExt, -1, 8, 32), 255);
}

namespace {

/// One sweep instance: (opcode, width).
using FoldCase = std::tuple<Opcode, unsigned>;

class FoldingVsInterpreter : public ::testing::TestWithParam<FoldCase> {};

} // namespace

TEST_P(FoldingVsInterpreter, AgreesOnRandomInputs) {
  auto [Op, Bits] = GetParam();
  Context Ctx;
  Type *Ty = Ctx.getIntTy(Bits);
  // Build `define iN @f(iN a, iN b) { %r = <op> iN %a, %b; ret iN %r }`
  Module M(Ctx);
  Function *F = M.createFunction(Ctx.getFunctionTy(Ty, {Ty, Ty}), "f");
  BasicBlock *BB = F->createBlock("entry");
  auto *I = F->bodyArena().create<BinaryOperator>(Op, F->getArg(0), F->getArg(1));
  BB->append(I);
  BB->append(F->bodyArena().create<ReturnInst>(I, Ctx.getVoidTy()));

  Interpreter Interp(M);
  SplitMixRng Rng(hashCombine(static_cast<uint64_t>(Op), Bits));
  for (int Trial = 0; Trial < 200; ++Trial) {
    int64_t A = signExtend(static_cast<int64_t>(Rng.next()), Bits);
    int64_t B = signExtend(static_cast<int64_t>(Rng.next()), Bits);
    if (Trial < 20)
      B = signExtend(Trial - 10, Bits); // cover small/edge divisors
    auto Folded = foldIntBinary(Op, A, B, Bits);
    ExecResult R =
        Interp.run(*F, {RtValue::makeInt(A), RtValue::makeInt(B)});
    if (!Folded) {
      // The fold refused: the interpreter must trap on the same inputs.
      EXPECT_EQ(R.Status, ExecStatus::Trap)
          << getOpcodeName(Op) << " " << A << ", " << B;
      continue;
    }
    ASSERT_EQ(R.Status, ExecStatus::OK)
        << getOpcodeName(Op) << " " << A << ", " << B << ": " << R.Detail;
    EXPECT_EQ(R.Value.Int, *Folded)
        << getOpcodeName(Op) << " " << A << ", " << B;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOpsAndWidths, FoldingVsInterpreter,
    ::testing::Combine(
        ::testing::Values(Opcode::Add, Opcode::Sub, Opcode::Mul,
                          Opcode::SDiv, Opcode::UDiv, Opcode::SRem,
                          Opcode::URem, Opcode::Shl, Opcode::LShr,
                          Opcode::AShr, Opcode::And, Opcode::Or,
                          Opcode::Xor),
        ::testing::Values(8u, 16u, 32u, 64u)));

namespace {

class ICmpVsInterpreter : public ::testing::TestWithParam<ICmpPred> {};

} // namespace

TEST_P(ICmpVsInterpreter, AgreesOnRandomInputs) {
  ICmpPred Pred = GetParam();
  Context Ctx;
  Type *Ty = Ctx.getInt32Ty();
  Module M(Ctx);
  Function *F =
      M.createFunction(Ctx.getFunctionTy(Ctx.getInt1Ty(), {Ty, Ty}), "f");
  BasicBlock *BB = F->createBlock("entry");
  auto *I = F->bodyArena().create<ICmpInst>(Pred, F->getArg(0), F->getArg(1), Ctx.getInt1Ty());
  BB->append(I);
  BB->append(F->bodyArena().create<ReturnInst>(I, Ctx.getVoidTy()));

  Interpreter Interp(M);
  SplitMixRng Rng(static_cast<uint64_t>(Pred) + 99);
  for (int Trial = 0; Trial < 200; ++Trial) {
    int64_t A = signExtend(static_cast<int64_t>(Rng.next()), 32);
    int64_t B = Trial % 3 ? signExtend(static_cast<int64_t>(Rng.next()), 32)
                          : A; // exercise equality often
    ExecResult R =
        Interp.run(*F, {RtValue::makeInt(A), RtValue::makeInt(B)});
    ASSERT_EQ(R.Status, ExecStatus::OK);
    EXPECT_EQ(R.Value.Int != 0, foldICmp(Pred, A, B, 32))
        << getPredName(Pred) << " " << A << ", " << B;
  }
}

INSTANTIATE_TEST_SUITE_P(AllPreds, ICmpVsInterpreter,
                         ::testing::Values(ICmpPred::EQ, ICmpPred::NE,
                                           ICmpPred::SLT, ICmpPred::SLE,
                                           ICmpPred::SGT, ICmpPred::SGE,
                                           ICmpPred::ULT, ICmpPred::ULE,
                                           ICmpPred::UGT, ICmpPred::UGE));

TEST(Folding, SwapAndInvertLawsHoldSemantically) {
  // swapPred: P(a,b) == swap(P)(b,a); invertPred: P(a,b) == !inv(P)(a,b).
  SplitMixRng Rng(7);
  for (ICmpPred P :
       {ICmpPred::EQ, ICmpPred::NE, ICmpPred::SLT, ICmpPred::SLE,
        ICmpPred::SGT, ICmpPred::SGE, ICmpPred::ULT, ICmpPred::ULE,
        ICmpPred::UGT, ICmpPred::UGE}) {
    for (int T = 0; T < 100; ++T) {
      int64_t A = signExtend(static_cast<int64_t>(Rng.next()), 16);
      int64_t B = T % 4 ? signExtend(static_cast<int64_t>(Rng.next()), 16)
                        : A;
      EXPECT_EQ(foldICmp(P, A, B, 16), foldICmp(swapPred(P), B, A, 16));
      EXPECT_EQ(foldICmp(P, A, B, 16), !foldICmp(invertPred(P), A, B, 16));
    }
  }
}
