//===- ParserPrinterTest.cpp - Textual IR round-trip tests --------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "ir/IRBuilder.h"
#include "workload/Generator.h"

#include <gtest/gtest.h>

using namespace llvmmd;
using namespace llvmmd::testutil;

TEST(Parser, SimpleFunction) {
  Context Ctx;
  auto M = parseOrDie(Ctx, R"(
define i32 @f(i32 %a, i32 %b) {
entry:
  %x = add i32 %a, %b
  %c = icmp slt i32 %x, 10
  %s = select i1 %c, i32 %a, i32 %b
  ret i32 %s
}
)");
  Function *F = M->getFunction("f");
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->getNumArgs(), 2u);
  EXPECT_EQ(F->getNumBlocks(), 1u);
  EXPECT_EQ(F->getInstructionCount(), 4u);
  expectVerified(*M);
}

TEST(Parser, AllInstructionKinds) {
  Context Ctx;
  auto M = parseOrDie(Ctx, R"(
declare i64 @strlen(ptr) readonly
declare i32 @abs(i32) readnone
@g = global i32 41
@k = constant float 2.5

define i32 @f(i32 %a, float %f, ptr %p) {
entry:
  %b = sub i32 %a, 1
  %c = mul i32 %b, %b
  %d = sdiv i32 %c, 3
  %e = and i32 %d, 255
  %s = shl i32 %e, 2
  %t = lshr i32 %s, 1
  %u = ashr i32 %t, 1
  %v = xor i32 %u, -1
  %w = or i32 %v, 7
  %r = urem i32 %w, 13
  %q = udiv i32 %r, 2
  %fa = fadd float %f, 1.5
  %fm = fmul float %fa, 2.0
  %fc = fcmp ogt float %fm, 0.5
  %z = zext i1 %fc to i32
  %sx = sext i32 %z to i64
  %tr = trunc i64 %sx to i8
  %zz = zext i8 %tr to i32
  %al = alloca i32, i64 4
  %gp = getelementptr i32, ptr %al, i64 2
  store i32 %zz, ptr %gp
  %ld = load i32, ptr %gp
  %len = call i64 @strlen(ptr %p)
  %l32 = trunc i64 %len to i32
  %ab = call i32 @abs(i32 %l32)
  %gv = load i32, ptr @g
  %cmp = icmp ult i32 %ld, %gv
  br i1 %cmp, label %one, label %two
one:
  br label %done
two:
  br label %done
done:
  %ph = phi i32 [ %ab, %one ], [ %gv, %two ]
  ret i32 %ph
}
)");
  expectVerified(*M);
  EXPECT_EQ(M->getFunction("strlen")->getMemoryEffect(),
            MemoryEffect::ReadOnly);
  EXPECT_EQ(M->getFunction("abs")->getMemoryEffect(),
            MemoryEffect::ReadNone);
  EXPECT_TRUE(M->getGlobal("k")->isConstantGlobal());
  EXPECT_FALSE(M->getGlobal("g")->isConstantGlobal());
}

TEST(Parser, ForwardReferences) {
  // Blocks and values may be referenced before their definitions (phi
  // back-edges, or simply blocks printed out of order).
  Context Ctx;
  auto M = parseOrDie(Ctx, R"(
define i32 @f(i32 %n) {
entry:
  br label %header
header:
  %i = phi i32 [ 0, %entry ], [ %next, %body ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %body, label %out
body:
  %next = add i32 %i, 1
  br label %header
out:
  ret i32 %i
}
)");
  expectVerified(*M);
}

TEST(Parser, Errors) {
  Context Ctx;
  EXPECT_FALSE(parseModule(Ctx, "define i32 @f( {"));
  EXPECT_FALSE(parseModule(Ctx, "define i32 @f() {\nentry:\n ret i32 %x\n}"));
  EXPECT_FALSE(parseModule(Ctx, "define wat @f() {\nentry:\n ret void\n}"));
  EXPECT_FALSE(
      parseModule(Ctx, "define i32 @f() {\nentry:\n %x = frob i32 1, 2\n}"));
  // Type mismatch on resolved forward reference.
  EXPECT_FALSE(parseModule(Ctx, R"(
define i32 @f() {
entry:
  br label %next
next:
  %p = phi i32 [ %v, %entry ]
  %v.0 = add i32 1, 2
  ret i32 %p
}
)"));
  // Duplicate definitions.
  EXPECT_FALSE(parseModule(Ctx, R"(
define i32 @f(i32 %a) {
entry:
  %x = add i32 %a, 1
  %x = add i32 %a, 2
  ret i32 %x
}
)"));
}

TEST(Printer, RoundTripStable) {
  Context Ctx;
  const char *Src = R"(
@g = global i32 7
define i32 @f(i32 %a) {
entry:
  %x = add i32 %a, -3
  %c = icmp eq i32 %x, 0
  br i1 %c, label %t, label %e
t:
  %l = load i32, ptr @g
  br label %j
e:
  store i32 %x, ptr @g
  br label %j
j:
  %p = phi i32 [ %l, %t ], [ 0, %e ]
  ret i32 %p
}
)";
  auto M1 = parseOrDie(Ctx, Src);
  std::string P1 = printModule(*M1);
  auto M2 = parseOrDie(Ctx, P1);
  std::string P2 = printModule(*M2);
  EXPECT_EQ(P1, P2) << "printer output must be a fixpoint under re-parsing";
}

TEST(Printer, FloatsRoundTrip) {
  Context Ctx;
  auto M1 = parseOrDie(Ctx, R"(
define float @f() {
entry:
  %a = fadd float 0.1, 1e-9
  %b = fmul float %a, -123456789.25
  ret float %b
}
)");
  std::string P1 = printModule(*M1);
  auto M2 = parseOrDie(Ctx, P1);
  EXPECT_EQ(P1, printModule(*M2));
}

TEST(Printer, UnnamedValuesGetStableNames) {
  Context Ctx;
  Module M(Ctx);
  Type *I32 = Ctx.getInt32Ty();
  Function *F = M.createFunction(Ctx.getFunctionTy(I32, {I32}), "f");
  IRBuilder B(Ctx);
  B.setInsertPoint(F->createBlock(""));
  Value *X = B.createAdd(F->getArg(0), Ctx.getInt32(1));
  Value *Y = B.createMul(X, X);
  B.createRet(Y);
  std::string Text = printFunction(*F);
  // Unnamed values are numbered; the output must re-parse.
  auto M2 = parseOrDie(Ctx, Text);
  expectVerified(*M2);
}

class WorkloadRoundTrip : public ::testing::TestWithParam<const char *> {};

TEST_P(WorkloadRoundTrip, PrintParsePrintFixpoint) {
  Context Ctx;
  BenchmarkProfile P = getProfile(GetParam());
  P.FunctionCount = std::min(P.FunctionCount, 6u);
  auto M = generateBenchmark(Ctx, P);
  expectVerified(*M);
  std::string P1 = printModule(*M);
  auto M2 = parseOrDie(Ctx, P1);
  expectVerified(*M2);
  EXPECT_EQ(P1, printModule(*M2));
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, WorkloadRoundTrip,
                         ::testing::Values("sqlite", "bzip2", "gcc", "lbm",
                                           "perlbench", "sjeng", "milc",
                                           "hmmer", "mcf", "h264ref",
                                           "libquantum", "sphinx"));
