//===- ServerTest.cpp - Validation service daemon tests -----------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
// Protocol robustness (truncated/oversized/garbage frames, handshake
// digest mismatches, disconnects mid-job), admission control, and the
// serving invariants: responses are byte-identical across server thread
// counts and to the batch engine's reports for the same inputs, a second
// client replays 100% warm, and a daemon restarted on its checkpointed
// store replays verdicts *and* triage results without recomputing
// anything.
//
// Servers listen on unix-domain sockets under the test temp dir; raw
// protocol abuse uses ServerClient::sendRaw and hand-rolled sockets.
//
//===----------------------------------------------------------------------===//

#include "server/ServerClient.h"
#include "server/ValidationServer.h"

#include "driver/Report.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include "opt/Pass.h"
#include "support/Hashing.h"
#include "support/Telemetry.h"
#include "workload/Generator.h"
#include "workload/Profiles.h"

#include "TestUtil.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <netinet/in.h>
#include <sstream>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>

using namespace llvmmd;

namespace {

/// Fresh socket path + optional store path under the test temp dir;
/// removed on destruction.
class ServeDir {
public:
  explicit ServeDir(const std::string &Tag)
      : Sock(::testing::TempDir() + "/llvmmd-" + Tag + ".sock"),
        Store(::testing::TempDir() + "/llvmmd-" + Tag + ".vstore") {
    std::remove(Sock.c_str());
    std::remove(Store.c_str());
  }
  ~ServeDir() {
    std::remove(Sock.c_str());
    std::remove(Store.c_str());
    std::remove((Store + ".lock").c_str());
  }
  const std::string Sock, Store;
};

ServerConfig smallServerConfig(const ServeDir &D, unsigned Threads = 1,
                               bool Triage = true, bool WithStore = false) {
  ServerConfig C;
  C.UnixPath = D.Sock;
  C.Engine.Threads = Threads;
  C.Engine.Triage.Enabled = Triage;
  if (WithStore)
    C.Engine.CachePath = D.Store;
  return C;
}

SubmitPayload sqliteSubmission(unsigned Functions = 16) {
  SubmitPayload Req;
  SubmitModule M;
  M.Source = SubmitProfile;
  M.Name = "sqlite";
  M.FnCount = Functions;
  Req.Modules.push_back(std::move(M));
  return Req;
}

/// Drives one submission to completion. Returns false on any transport
/// error; collects the streamed function frames, the final suite JSON and
/// the JobDone stats.
bool runJob(ServerClient &Client, const SubmitPayload &Req,
            std::string *SuiteJson, JobDonePayload *Done,
            std::vector<FunctionPayload> *Functions = nullptr,
            std::vector<std::string> *ModuleJsons = nullptr) {
  if (!Client.submit(Req))
    return false;
  for (;;) {
    ServerClient::Event E;
    if (!Client.nextEvent(E))
      return false;
    switch (E.K) {
    case ServerClient::Event::Kind::Function:
      if (Functions)
        Functions->push_back(std::move(E.Function));
      break;
    case ServerClient::Event::Kind::ModuleReport:
      if (ModuleJsons)
        ModuleJsons->push_back(std::move(E.Module.Json));
      break;
    case ServerClient::Event::Kind::SuiteReport:
      if (SuiteJson)
        *SuiteJson = std::move(E.SuiteJson);
      break;
    case ServerClient::Event::Kind::JobDone:
      if (Done)
        *Done = E.Done;
      return true;
    case ServerClient::Event::Kind::Error:
      return false;
    }
  }
}

/// Connect + handshake against a default-rules server.
bool attach(ServerClient &Client, const std::string &Sock,
            std::string *Error = nullptr) {
  RuleConfig Rules;
  return Client.connectUnix(Sock, Error) &&
         Client.handshake(verdictStoreConfigDigest(Rules), nullptr, Error);
}

/// Minimal HTTP/1.1 GET against 127.0.0.1:\p Port — deliberately not the
/// ServerClient (the whole point of the HTTP endpoint is that a plain
/// scraper needs none of our code). Fills the status line, the
/// Content-Type header value, and the body.
bool httpGet(int Port, const std::string &Path, std::string *StatusLine,
             std::string *ContentType, std::string *Body) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return false;
  sockaddr_in Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(static_cast<uint16_t>(Port));
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    ::close(Fd);
    return false;
  }
  std::string Req =
      "GET " + Path + " HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n";
  size_t Sent = 0;
  while (Sent < Req.size()) {
    ssize_t N = ::send(Fd, Req.data() + Sent, Req.size() - Sent, 0);
    if (N <= 0) {
      ::close(Fd);
      return false;
    }
    Sent += static_cast<size_t>(N);
  }
  std::string Resp;
  char Buf[4096];
  for (;;) {
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    if (N < 0) {
      ::close(Fd);
      return false;
    }
    if (N == 0)
      break;
    Resp.append(Buf, static_cast<size_t>(N));
  }
  ::close(Fd);
  size_t HeaderEnd = Resp.find("\r\n\r\n");
  if (HeaderEnd == std::string::npos)
    return false;
  std::string Headers = Resp.substr(0, HeaderEnd);
  if (Body)
    *Body = Resp.substr(HeaderEnd + 4);
  size_t LineEnd = Headers.find("\r\n");
  if (StatusLine)
    *StatusLine = Headers.substr(0, LineEnd);
  if (ContentType) {
    ContentType->clear();
    size_t CT = Headers.find("Content-Type: ");
    if (CT != std::string::npos) {
      size_t End = Headers.find("\r\n", CT);
      size_t Start = CT + std::strlen("Content-Type: ");
      *ContentType = Headers.substr(Start, End - Start);
    }
  }
  return true;
}

/// What the batch engine would produce for the same submission and cache
/// state: one engine.run per module, assembled into the suite shape the
/// server streams.
std::string batchSuiteJSON(const EngineConfig &EC,
                           const std::vector<const Module *> &Mods) {
  ValidationEngine Engine(EC);
  SuiteReport SR;
  SR.Pipeline = getPaperPipeline();
  SR.RuleMask = EC.Rules.Mask;
  SR.Stepwise = EC.Granularity == ValidationGranularity::PerPass;
  SR.Threads = Engine.getThreadCount();
  for (const Module *M : Mods)
    SR.Modules.push_back(Engine.run(*M, getPaperPipeline()).Report);
  return suiteToJSON(SR);
}

} // namespace

//===----------------------------------------------------------------------===//
// Handshake
//===----------------------------------------------------------------------===//

TEST(ServerTest, HandshakeRejectsConfigDigestMismatch) {
  ServeDir D("digest");
  ValidationServer Server(smallServerConfig(D));
  ASSERT_TRUE(Server.start());

  // A client configured for the extended rules must be refused — serving
  // it verdicts proven under the paper rules would be silently wrong.
  ServerClient Bad;
  ASSERT_TRUE(Bad.connectUnix(D.Sock));
  RuleConfig Extended;
  Extended.Mask = RS_All;
  std::string Error;
  EXPECT_FALSE(
      Bad.handshake(verdictStoreConfigDigest(Extended), nullptr, &Error));
  EXPECT_NE(Error.find("digest"), std::string::npos) << Error;

  // The rejection is per-connection: a correctly-configured client works.
  ServerClient Good;
  EXPECT_TRUE(attach(Good, D.Sock));
  EXPECT_TRUE(Good.ping());
  EXPECT_EQ(Server.counters().HandshakesRejected, 1u);
  Server.stop();
}

TEST(ServerTest, HandshakeRejectsProtocolVersionMismatch) {
  ServeDir D("version");
  ValidationServer Server(smallServerConfig(D));
  ASSERT_TRUE(Server.start());

  ServerClient Client;
  ASSERT_TRUE(Client.connectUnix(D.Sock));
  HelloPayload H;
  H.Version = ServerProtocolVersion + 1;
  H.ConfigDigest = Server.configDigest();
  ASSERT_TRUE(Client.sendRaw(FrameType::Hello, encodeHello(H)));
  Frame F;
  ASSERT_EQ(readFrame(Client.fd(), F, DefaultMaxFrameBytes), ReadStatus::Ok);
  ASSERT_EQ(F.Type, FrameType::Error);
  ErrorPayload E;
  ASSERT_TRUE(decodeError(F.Payload, E));
  EXPECT_EQ(E.Code, ErrorCode::Handshake);
  Server.stop();
}

//===----------------------------------------------------------------------===//
// Frame robustness: nothing a client sends may take the daemon down
//===----------------------------------------------------------------------===//

TEST(ServerTest, GarbageFrameClosesOnlyThatConnection) {
  ServeDir D("garbage");
  ValidationServer Server(smallServerConfig(D));
  ASSERT_TRUE(Server.start());

  // A frame with a plausible header but an unknown type and junk payload.
  ServerClient Raw;
  ASSERT_TRUE(Raw.connectUnix(D.Sock));
  ASSERT_TRUE(Raw.sendRaw(static_cast<FrameType>(0xEE), "\x01\x02garbage"));
  Frame F;
  // Server answers with a protocol error (it has not seen Hello) and
  // closes; either the error frame or a straight EOF is acceptable.
  ReadStatus RS = readFrame(Raw.fd(), F, DefaultMaxFrameBytes);
  if (RS == ReadStatus::Ok)
    EXPECT_EQ(F.Type, FrameType::Error);

  ServerClient Good;
  EXPECT_TRUE(attach(Good, D.Sock));
  EXPECT_TRUE(Good.ping());
  Server.stop();
}

TEST(ServerTest, OversizedFrameIsRejectedBeforeItsPayload) {
  ServeDir D("oversized");
  ServerConfig C = smallServerConfig(D);
  C.MaxFrameBytes = 4096;
  ValidationServer Server(C);
  ASSERT_TRUE(Server.start());

  // Hand-write a header claiming a payload far past the server's limit;
  // the server must reject on the header alone (we never send the body).
  ServerClient Raw;
  ASSERT_TRUE(Raw.connectUnix(D.Sock));
  std::string Header;
  appendU32LE(Header, 64u << 20);
  Header.push_back(static_cast<char>(FrameType::Hello));
  ASSERT_EQ(::send(Raw.fd(), Header.data(), Header.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(Header.size()));
  Frame F;
  ReadStatus RS = readFrame(Raw.fd(), F, DefaultMaxFrameBytes);
  ASSERT_EQ(RS, ReadStatus::Ok);
  ASSERT_EQ(F.Type, FrameType::Error);
  ErrorPayload E;
  ASSERT_TRUE(decodeError(F.Payload, E));
  EXPECT_EQ(E.Code, ErrorCode::Protocol);
  EXPECT_NE(E.Message.find("size"), std::string::npos);

  ServerClient Good;
  EXPECT_TRUE(attach(Good, D.Sock));
  EXPECT_TRUE(Good.ping());
  EXPECT_GE(Server.counters().ProtocolErrors, 1u);
  Server.stop();
}

TEST(ServerTest, TruncatedFrameIsACleanDisconnect) {
  ServeDir D("truncated");
  ValidationServer Server(smallServerConfig(D));
  ASSERT_TRUE(Server.start());

  // Half a header, then hang up.
  {
    ServerClient Raw;
    ASSERT_TRUE(Raw.connectUnix(D.Sock));
    ASSERT_EQ(::send(Raw.fd(), "\x08\x00", 2, MSG_NOSIGNAL), 2);
    Raw.close();
  }
  // A full header promising more payload than ever arrives.
  {
    ServerClient Raw;
    ASSERT_TRUE(Raw.connectUnix(D.Sock));
    std::string Header;
    appendU32LE(Header, 100);
    Header.push_back(static_cast<char>(FrameType::Hello));
    ASSERT_EQ(::send(Raw.fd(), Header.data(), Header.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(Header.size()));
    Raw.close();
  }

  ServerClient Good;
  EXPECT_TRUE(attach(Good, D.Sock));
  EXPECT_TRUE(Good.ping());
  Server.stop();
}

TEST(ServerTest, UnknownProfileIsABadSubmitNotADisconnect) {
  ServeDir D("badsubmit");
  ValidationServer Server(smallServerConfig(D));
  ASSERT_TRUE(Server.start());

  ServerClient Client;
  ASSERT_TRUE(attach(Client, D.Sock));
  SubmitPayload Req;
  SubmitModule M;
  M.Source = SubmitProfile;
  M.Name = "not-a-benchmark";
  Req.Modules.push_back(std::move(M));
  ASSERT_TRUE(Client.submit(Req));
  ServerClient::Event E;
  ASSERT_TRUE(Client.nextEvent(E));
  ASSERT_EQ(E.K, ServerClient::Event::Kind::Error);
  EXPECT_EQ(E.Error.Code, ErrorCode::BadSubmit);

  // The connection survives a bad submission; a good one completes.
  std::string Json;
  JobDonePayload Done;
  EXPECT_TRUE(runJob(Client, sqliteSubmission(6), &Json, &Done));
  EXPECT_EQ(Server.counters().JobsErrored, 1u);
  Server.stop();
}

//===----------------------------------------------------------------------===//
// Serving invariants
//===----------------------------------------------------------------------===//

TEST(ServerTest, StreamedFunctionsMatchTheFinalReportAndTheBatchEngine) {
  ServeDir D("stream");
  ValidationServer Server(smallServerConfig(D));
  ASSERT_TRUE(Server.start());

  ServerClient Client;
  ASSERT_TRUE(attach(Client, D.Sock));
  std::string SuiteJson;
  JobDonePayload Done;
  std::vector<FunctionPayload> Streamed;
  std::vector<std::string> ModuleJsons;
  ASSERT_TRUE(runJob(Client, sqliteSubmission(), &SuiteJson, &Done, &Streamed,
                     &ModuleJsons));
  Server.stop();

  // Every streamed frame's JSON appears verbatim inside the module report
  // and the final suite report: a client acting on streamed verdicts acts
  // on exactly what the report will say.
  ASSERT_EQ(ModuleJsons.size(), 1u);
  ASSERT_FALSE(Streamed.empty());
  for (const FunctionPayload &F : Streamed) {
    EXPECT_NE(ModuleJsons[0].find(F.Json), std::string::npos) << F.Json;
    EXPECT_NE(SuiteJson.find(F.Json), std::string::npos);
  }

  // And the final report is byte-identical to the batch engine over the
  // same generated module.
  Context Ctx;
  BenchmarkProfile P = getProfile("sqlite");
  P.FunctionCount = 16;
  auto M = generateBenchmark(Ctx, P);
  EngineConfig EC;
  EC.Threads = 1;
  EC.Triage.Enabled = true;
  EXPECT_EQ(SuiteJson, batchSuiteJSON(EC, {M.get()}));
}

TEST(ServerTest, ResponsesAreByteIdenticalAcrossServerThreadCounts) {
  // The engine guarantees thread-count-independent reports; the serving
  // layer must not break that. Each thread count gets a fresh server and
  // two sequential clients; responses must be byte-identical across
  // thread counts position by position (first submissions cold, second
  // submissions replaying).
  std::vector<std::string> FirstJsons, SecondJsons;
  for (unsigned Threads : {1u, 2u, 8u}) {
    ServeDir D("threads" + std::to_string(Threads));
    ValidationServer Server(smallServerConfig(D, Threads));
    ASSERT_TRUE(Server.start());

    ServerClient A;
    ASSERT_TRUE(attach(A, D.Sock));
    std::string JsonA;
    JobDonePayload DoneA;
    ASSERT_TRUE(runJob(A, sqliteSubmission(), &JsonA, &DoneA));
    EXPECT_GT(DoneA.Misses, 0u);

    ServerClient B;
    ASSERT_TRUE(attach(B, D.Sock));
    std::string JsonB;
    JobDonePayload DoneB;
    ASSERT_TRUE(runJob(B, sqliteSubmission(), &JsonB, &DoneB));
    // The second client replays everything the first proved — verdicts
    // and triage results.
    EXPECT_EQ(DoneB.Misses, 0u);
    EXPECT_EQ(DoneB.TriageMisses, 0u);
    EXPECT_EQ(DoneB.Hits, DoneA.Hits + DoneA.Misses);

    FirstJsons.push_back(std::move(JsonA));
    SecondJsons.push_back(std::move(JsonB));
    Server.stop();
  }
  EXPECT_EQ(FirstJsons[0], FirstJsons[1]);
  EXPECT_EQ(FirstJsons[0], FirstJsons[2]);
  EXPECT_EQ(SecondJsons[0], SecondJsons[1]);
  EXPECT_EQ(SecondJsons[0], SecondJsons[2]);
}

TEST(ServerTest, RestartedServerReplaysVerdictsAndTriageWarm) {
  ServeDir D("restart");
  std::string ColdJson;
  {
    ValidationServer Server(
        smallServerConfig(D, 1, /*Triage=*/true, /*WithStore=*/true));
    ASSERT_TRUE(Server.start());
    ServerClient Client;
    ASSERT_TRUE(attach(Client, D.Sock));
    JobDonePayload Done;
    ASSERT_TRUE(runJob(Client, sqliteSubmission(), &ColdJson, &Done));
    EXPECT_GT(Done.Misses, 0u);
    EXPECT_GT(Done.TriageMisses, 0u) << "profile must provoke alarms";
    Server.stop();
  }
  {
    // The restarted daemon loads the checkpointed store: 100% warm replay
    // of verdicts *and* triage, and the bytes match the batch engine
    // warm-loading the same store.
    ValidationServer Server(
        smallServerConfig(D, 1, /*Triage=*/true, /*WithStore=*/true));
    ASSERT_TRUE(Server.start());
    ServerClient Client;
    ASSERT_TRUE(attach(Client, D.Sock));
    std::string WarmJson;
    JobDonePayload Done;
    ASSERT_TRUE(runJob(Client, sqliteSubmission(), &WarmJson, &Done));
    EXPECT_EQ(Done.Misses, 0u) << "verdict replay below 100% after restart";
    EXPECT_EQ(Done.TriageMisses, 0u)
        << "triage replay below 100% after restart";
    EXPECT_GT(Done.WarmHits, 0u);
    Server.stop();

    Context Ctx;
    BenchmarkProfile P = getProfile("sqlite");
    P.FunctionCount = 16;
    auto M = generateBenchmark(Ctx, P);
    EngineConfig EC;
    EC.Threads = 1;
    EC.Triage.Enabled = true;
    EC.CachePath = D.Store;
    EC.CacheSave = false;
    EXPECT_EQ(WarmJson, batchSuiteJSON(EC, {M.get()}));
  }
}

TEST(ServerTest, ClientDisconnectMidJobDoesNotKillTheJobOrTheServer) {
  ServeDir D("disconnect");
  ValidationServer Server(smallServerConfig(D));
  ASSERT_TRUE(Server.start());

  // Submit, then vanish before a single response frame is consumed.
  {
    ServerClient Ghost;
    ASSERT_TRUE(attach(Ghost, D.Sock));
    ASSERT_TRUE(Ghost.submit(sqliteSubmission()));
    Ghost.close();
  }

  // The abandoned job still runs to completion and warms the cache: a
  // second client submitting the same suite replays it entirely.
  ServerClient Client;
  ASSERT_TRUE(attach(Client, D.Sock));
  std::string Json;
  JobDonePayload Done;
  ASSERT_TRUE(runJob(Client, sqliteSubmission(), &Json, &Done));
  EXPECT_EQ(Done.Misses, 0u)
      << "the disconnected client's job must still warm the shared cache";
  EXPECT_EQ(Server.counters().JobsCompleted, 2u);
  Server.stop();
}

TEST(ServerTest, AdmissionControlRejectsBeyondTheQueueBound) {
  ServeDir D("admission");
  ServerConfig C = smallServerConfig(D, 1, /*Triage=*/false);
  C.MaxQueuedJobs = 1;
  ValidationServer Server(C);
  ASSERT_TRUE(Server.start());
  // Paused executor: admitted jobs stay queued, so the bound is exercised
  // deterministically.
  Server.setPaused(true);

  ServerClient A, B;
  ASSERT_TRUE(attach(A, D.Sock));
  ASSERT_TRUE(attach(B, D.Sock));
  ASSERT_TRUE(A.submit(sqliteSubmission(4)));

  // The queue is full; B must be rejected immediately, not queued behind
  // an unbounded backlog.
  std::string Error;
  EXPECT_FALSE(B.submit(sqliteSubmission(4), nullptr, &Error));
  EXPECT_NE(Error.find("queue full"), std::string::npos) << Error;

  Server.setPaused(false);
  // A's job now runs to completion.
  std::string Json;
  JobDonePayload Done;
  bool GotDone = false;
  for (;;) {
    ServerClient::Event E;
    ASSERT_TRUE(A.nextEvent(E));
    if (E.K == ServerClient::Event::Kind::JobDone) {
      GotDone = true;
      break;
    }
    if (E.K == ServerClient::Event::Kind::Error)
      break;
  }
  EXPECT_TRUE(GotDone);
  EXPECT_EQ(Server.counters().JobsRejected, 1u);
  Server.stop();
}

TEST(ServerTest, InlineIRSubmissionValidatesLikeTheBatchEngine) {
  // Round-trip a generated module through the printer and submit it as
  // inline IR — the path a compiler toolchain embedding the client uses.
  Context Ctx;
  BenchmarkProfile P = getProfile("hmmer");
  P.FunctionCount = 6;
  auto M = generateBenchmark(Ctx, P);
  std::string Ir = printModule(*M);

  ServeDir D("inline");
  ValidationServer Server(smallServerConfig(D));
  ASSERT_TRUE(Server.start());
  ServerClient Client;
  ASSERT_TRUE(attach(Client, D.Sock));

  SubmitPayload Req;
  SubmitModule SM;
  SM.Source = SubmitInlineAuto;
  SM.Name = "inline-test";
  SM.Text = Ir;
  Req.Modules.push_back(std::move(SM));

  std::string Json;
  JobDonePayload Done;
  ASSERT_TRUE(runJob(Client, Req, &Json, &Done));
  Server.stop();

  EXPECT_FALSE(Json.empty());
  EXPECT_NE(Json.find("\"llvmmd-suite-report-v1\""), std::string::npos);
  EXPECT_GT(Done.Misses + Done.Hits + Done.SkippedIdentical, 0u);
}

TEST(ServerTest, StatsAndPing) {
  ServeDir D("stats");
  ValidationServer Server(smallServerConfig(D));
  ASSERT_TRUE(Server.start());
  ServerClient Client;
  ASSERT_TRUE(attach(Client, D.Sock));
  EXPECT_TRUE(Client.ping());

  std::string Json;
  JobDonePayload Done;
  ASSERT_TRUE(runJob(Client, sqliteSubmission(6), &Json, &Done));

  std::string Stats;
  ASSERT_TRUE(Client.stats(&Stats));
  EXPECT_NE(Stats.find("\"llvmmd-server-stats-v1\""), std::string::npos);
  EXPECT_NE(Stats.find("\"completed\": 1"), std::string::npos) << Stats;
  Server.stop();
}

TEST(ServerTest, MetricsScrapeIsPrometheusExposition) {
  ServeDir D("metrics");
  ValidationServer Server(smallServerConfig(D));
  ASSERT_TRUE(Server.start());
  ServerClient Client;
  ASSERT_TRUE(attach(Client, D.Sock));

  std::string Json;
  JobDonePayload Done;
  ASSERT_TRUE(runJob(Client, sqliteSubmission(6), &Json, &Done));

  std::string Text;
  ASSERT_TRUE(Client.metrics(&Text));
  // Well-formed exposition: HELP/TYPE headers, and the server families the
  // job just exercised. Counters are process-global, so assert >= 1 rather
  // than == 1 (other tests in this binary may have run jobs already).
  EXPECT_NE(Text.find("# HELP llvmmd_server_jobs_completed_total"),
            std::string::npos)
      << Text;
  EXPECT_NE(Text.find("# TYPE llvmmd_server_jobs_completed_total counter"),
            std::string::npos);
  EXPECT_NE(Text.find("# TYPE llvmmd_server_job_us histogram"),
            std::string::npos);
  EXPECT_NE(Text.find("llvmmd_server_job_us_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(Text.find("llvmmd_server_queue_depth 0"), std::string::npos);
  EXPECT_NE(Text.find("llvmmd_server_queue_wait_us_count"),
            std::string::npos);
  // The engine families ride in the same registry.
  EXPECT_NE(Text.find("llvmmd_engine_pairs_validated_total"),
            std::string::npos);
  // Every line is a comment or `name[{labels}] value`.
  std::istringstream Lines(Text);
  std::string Line;
  while (std::getline(Lines, Line)) {
    ASSERT_FALSE(Line.empty());
    if (Line[0] == '#')
      continue;
    size_t Space = Line.rfind(' ');
    ASSERT_NE(Space, std::string::npos) << Line;
    EXPECT_NE(Line.substr(0, Space).find("llvmmd_"), std::string::npos)
        << Line;
  }

  // The /stats JSON carries the queue-wait aggregate next to job_us.
  std::string Stats;
  ASSERT_TRUE(Client.stats(&Stats));
  EXPECT_NE(Stats.find("\"queue_wait_us\""), std::string::npos) << Stats;
  Server.stop();
}

TEST(ServerTest, HttpMetricsScrapeIsByteIdenticalToProtocolScrape) {
  ServeDir D("http");
  ServerConfig C = smallServerConfig(D);
  C.HttpMetrics = "127.0.0.1:0"; // ephemeral: the test reads the bound port
  ValidationServer Server(std::move(C));
  ASSERT_TRUE(Server.start());
  ASSERT_GT(Server.boundHttpPort(), 0);

  ServerClient Client;
  ASSERT_TRUE(attach(Client, D.Sock));
  std::string Json;
  JobDonePayload Done;
  ASSERT_TRUE(runJob(Client, sqliteSubmission(6), &Json, &Done));

  // Same renderer behind both transports; the server is idle between the
  // two scrapes, so the bytes must match exactly.
  std::string FrameText;
  ASSERT_TRUE(Client.metrics(&FrameText));
  std::string Status, ContentType, Body;
  ASSERT_TRUE(httpGet(Server.boundHttpPort(), "/metrics", &Status,
                      &ContentType, &Body));
  EXPECT_EQ(Status, "HTTP/1.1 200 OK");
  EXPECT_EQ(ContentType, PrometheusContentType);
  EXPECT_EQ(Body, FrameText);

  ASSERT_TRUE(httpGet(Server.boundHttpPort(), "/healthz", &Status, nullptr,
                      &Body));
  EXPECT_EQ(Status, "HTTP/1.1 200 OK");
  EXPECT_EQ(Body, "ok\n");

  // Unknown paths miss cleanly; query strings are stripped before match.
  ASSERT_TRUE(httpGet(Server.boundHttpPort(), "/nope", &Status, nullptr,
                      nullptr));
  EXPECT_EQ(Status, "HTTP/1.1 404 Not Found");
  ASSERT_TRUE(httpGet(Server.boundHttpPort(), "/metrics?format=raw", &Status,
                      nullptr, &Body));
  EXPECT_EQ(Status, "HTTP/1.1 200 OK");

  Server.stop();
}

TEST(ServerTest, TraceExtensionIsOptionalTrailingAndRoundTrips) {
  // Untraced payloads encode byte-identically to the pre-extension wire
  // format: the trace fields only exist on the wire when set.
  SubmitPayload Plain = sqliteSubmission(4);
  SubmitPayload Traced = sqliteSubmission(4);
  Traced.TraceId = 0xabcdef0123456789ull;
  std::string PlainBytes = encodeSubmit(Plain);
  std::string TracedBytes = encodeSubmit(Traced);
  EXPECT_EQ(TracedBytes.size(), PlainBytes.size() + 8);
  EXPECT_EQ(TracedBytes.compare(0, PlainBytes.size(), PlainBytes), 0);

  SubmitPayload Out;
  ASSERT_TRUE(decodeSubmit(PlainBytes, Out));
  EXPECT_EQ(Out.TraceId, 0u);
  ASSERT_TRUE(decodeSubmit(TracedBytes, Out));
  EXPECT_EQ(Out.TraceId, Traced.TraceId);

  JobDonePayload D;
  D.JobId = 7;
  D.Hits = 4;
  std::string LegacyDone = encodeJobDone(D);
  D.TraceId = Traced.TraceId;
  D.TraceBlob = "opaque span bytes";
  std::string TracedDone = encodeJobDone(D);
  EXPECT_GT(TracedDone.size(), LegacyDone.size());

  JobDonePayload DOut;
  ASSERT_TRUE(decodeJobDone(LegacyDone, DOut));
  EXPECT_EQ(DOut.TraceId, 0u);
  EXPECT_TRUE(DOut.TraceBlob.empty());
  ASSERT_TRUE(decodeJobDone(TracedDone, DOut));
  EXPECT_EQ(DOut.TraceId, D.TraceId);
  EXPECT_EQ(DOut.TraceBlob, D.TraceBlob);

  // A traced frame with its blob torn off is a decode error, not a
  // silently-mangled payload.
  EXPECT_FALSE(decodeJobDone(TracedDone.substr(0, TracedDone.size() - 4), DOut));
}

TEST(ServerTest, ShutdownFrameDrainsAndStops) {
  ServeDir D("shutdown");
  ValidationServer Server(smallServerConfig(D));
  ASSERT_TRUE(Server.start());
  ServerClient Client;
  ASSERT_TRUE(attach(Client, D.Sock));
  std::string Json;
  JobDonePayload Done;
  ASSERT_TRUE(runJob(Client, sqliteSubmission(6), &Json, &Done));
  EXPECT_TRUE(Client.requestShutdown());
  // wait() completes the stop the frame requested.
  Server.wait();
  EXPECT_TRUE(Server.isStopped());
  // Submissions after shutdown are refused (the listener is gone).
  ServerClient Late;
  EXPECT_FALSE(Late.connectUnix(D.Sock));
}

//===----------------------------------------------------------------------===//
// Connect retry (fleet dispatchers ride out worker restarts with this)
//===----------------------------------------------------------------------===//

TEST(ServerTest, RetryBackoffScheduleIsDeterministic) {
  ServerClient::RetryPolicy P;
  P.BaseDelayMs = 10;
  P.MaxDelayMs = 1000;
  // Exponential doubling from the base...
  EXPECT_EQ(ServerClient::retryDelayMs(P, 0), 10u);
  EXPECT_EQ(ServerClient::retryDelayMs(P, 1), 20u);
  EXPECT_EQ(ServerClient::retryDelayMs(P, 2), 40u);
  EXPECT_EQ(ServerClient::retryDelayMs(P, 3), 80u);
  EXPECT_EQ(ServerClient::retryDelayMs(P, 6), 640u);
  // ...saturating at the cap instead of overflowing the shift.
  EXPECT_EQ(ServerClient::retryDelayMs(P, 7), 1000u);
  EXPECT_EQ(ServerClient::retryDelayMs(P, 31), 1000u);
  EXPECT_EQ(ServerClient::retryDelayMs(P, 200), 1000u);

  ServerClient::RetryPolicy Tight;
  Tight.BaseDelayMs = 0;
  Tight.MaxDelayMs = 0;
  EXPECT_EQ(ServerClient::retryDelayMs(Tight, 5), 0u);
}

TEST(ServerTest, ConnectRetriesUntilTheSocketAppears) {
  ServeDir D("retry");

  // Bind the daemon only after a delay: the default fail-fast client must
  // error immediately, while a retrying client (the fleet's dispatcher
  // behavior) connects once the socket shows up.
  ServerClient FailFast;
  EXPECT_FALSE(FailFast.connectUnix(D.Sock));

  ValidationServer Server(smallServerConfig(D, 1, /*Triage=*/false));
  std::thread Late([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    ASSERT_TRUE(Server.start());
  });

  ServerClient Patient;
  Patient.Retry.Retries = 30;
  Patient.Retry.BaseDelayMs = 20;
  Patient.Retry.MaxDelayMs = 100;
  std::string Error;
  EXPECT_TRUE(Patient.connectUnix(D.Sock, &Error)) << Error;
  EXPECT_TRUE(Patient.handshake(
      verdictStoreConfigDigest(RuleConfig{}), nullptr, &Error))
      << Error;
  EXPECT_TRUE(Patient.ping());

  Late.join();
  Server.stop();
}

TEST(ServerTest, WorkerHelloReportsTheServersOwnPid) {
  ServeDir D("workerhello");
  ServerConfig SC = smallServerConfig(D, 1, /*Triage=*/false,
                                      /*WithStore=*/true);
  ValidationServer Server(std::move(SC));
  ASSERT_TRUE(Server.start());

  ServerClient Client;
  ASSERT_TRUE(attach(Client, D.Sock));
  WorkerHelloPayload WH;
  WH.RouterId = 42;
  WH.WorkerIndex = 3;
  WH.Generation = 7;
  WorkerHelloOkPayload Ok;
  std::string Error;
  ASSERT_TRUE(Client.workerHello(WH, &Ok, &Error)) << Error;
  // The pid is the identity check the fleet's stale-socket defense rests
  // on; the store path tells the router which shard this worker persists.
  EXPECT_EQ(Ok.Pid, static_cast<uint64_t>(::getpid()));
  EXPECT_EQ(Ok.StorePath, D.Store);
  Server.stop();
}
