//===- ArenaTest.cpp - Bump-arena allocation layer tests ------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
// The arena underpins the whole IR memory model: every instruction, block,
// function, argument, global, interned constant and value-graph node lives
// in one. These tests pin down the allocator contract (alignment, LIFO
// destructor order, slab recycling on reset) and the IR-level consequences
// (clone-into-arena equivalence, dropBody/re-clone reuse, per-module
// isolation when eight threads mutate their own modules concurrently).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "ir/Cloning.h"
#include "support/Arena.h"
#include "workload/Generator.h"
#include "workload/Profiles.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <map>
#include <thread>
#include <vector>

using namespace llvmmd;
using namespace llvmmd::testutil;

namespace {

const char *SampleIR = R"(
@g = global i32 10
declare i64 @strlen(ptr) readonly
define i32 @f(i32 %a, i32 %b) {
entry:
  %v = load i32, ptr @g
  %c = icmp slt i32 %a, %b
  br i1 %c, label %then, label %join
then:
  %s = add i32 %v, %a
  store i32 %s, ptr @g
  br label %join
join:
  %p = phi i32 [ %v, %entry ], [ %s, %then ]
  ret i32 %p
}
)";

} // namespace

//===----------------------------------------------------------------------===//
// Allocator contract
//===----------------------------------------------------------------------===//

TEST(ArenaTest, AllocationsRespectAlignment) {
  Arena A;
  // Interleave odd sizes with every alignment the IR classes could demand;
  // each pointer must honor its own alignment regardless of what came
  // before it.
  for (size_t Align : {size_t(1), size_t(2), size_t(4), size_t(8), size_t(16),
                       size_t(32), size_t(64)}) {
    for (size_t Size : {size_t(1), size_t(3), size_t(17), size_t(256)}) {
      void *P = A.allocate(Size, Align);
      ASSERT_NE(P, nullptr);
      EXPECT_EQ(reinterpret_cast<uintptr_t>(P) % Align, 0u)
          << "size " << Size << " align " << Align;
      // The byte range is writable and really ours.
      std::memset(P, 0xab, Size);
    }
  }
  EXPECT_GT(A.bytesAllocated(), 0u);
  EXPECT_GE(A.bytesReserved(), A.bytesAllocated());
}

TEST(ArenaTest, OversizedAllocationsWork) {
  Arena A(64); // tiny first slab: everything below is "oversized"
  void *P = A.allocate(1 << 20, 16);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(P) % 16, 0u);
  std::memset(P, 0, 1 << 20);
  // A later small allocation still succeeds (the bump slab is intact).
  void *Q = A.allocate(8, 8);
  ASSERT_NE(Q, nullptr);
}

namespace {
struct OrderRecorder {
  explicit OrderRecorder(std::vector<int> *Log, int Id) : Log(Log), Id(Id) {}
  ~OrderRecorder() { Log->push_back(Id); }
  std::vector<int> *Log;
  int Id;
};
} // namespace

TEST(ArenaTest, DestructorsRunLIFO) {
  std::vector<int> Log;
  {
    Arena A;
    for (int I = 0; I < 5; ++I)
      A.create<OrderRecorder>(&Log, I);
  }
  // LIFO matters for the IR: a Function registered after its Arguments is
  // destroyed before them, so ~Function may still touch them.
  EXPECT_EQ(Log, (std::vector<int>{4, 3, 2, 1, 0}));
}

TEST(ArenaTest, ResetRunsDestructorsAndRecyclesOneSlab) {
  std::vector<int> Log;
  Arena A(256);
  for (int I = 0; I < 100; ++I)
    A.create<OrderRecorder>(&Log, I);
  ASSERT_GT(A.numSlabs(), 1u) << "test needs multiple slabs to be meaningful";
  size_t ReservedBefore = A.bytesReserved();

  A.reset();
  EXPECT_EQ(Log.size(), 100u);
  EXPECT_EQ(Log.front(), 99) << "reset must destroy LIFO too";
  EXPECT_EQ(A.bytesAllocated(), 0u);
  EXPECT_EQ(A.numSlabs(), 1u) << "reset keeps exactly the largest slab";
  EXPECT_LE(A.bytesReserved(), ReservedBefore);
  EXPECT_GT(A.bytesReserved(), 0u);

  // The recycled slab serves the next generation without growing: this is
  // the warm-memory property dropBody/re-clone relies on.
  size_t ReservedAfterReset = A.bytesReserved();
  for (int I = 0; I < 8; ++I)
    A.create<OrderRecorder>(&Log, I);
  EXPECT_EQ(A.bytesReserved(), ReservedAfterReset);
}

//===----------------------------------------------------------------------===//
// IR-level consequences
//===----------------------------------------------------------------------===//

TEST(ArenaTest, CloneIntoArenaIsEquivalent) {
  Context Ctx;
  auto M = parseOrDie(Ctx, SampleIR);
  auto Clone = cloneModule(*M);
  expectVerified(*Clone);
  EXPECT_EQ(printModule(*M), printModule(*Clone));

  // Single-instruction clones land in whatever arena the caller passes and
  // copy every field.
  Arena Scratch;
  Function *F = M->getFunction("f");
  for (BasicBlock *BB : F->blocks())
    for (Instruction *I : *BB) {
      Instruction *C = cloneInstruction(I, Scratch);
      EXPECT_EQ(C->getOpcode(), I->getOpcode());
      EXPECT_EQ(C->getType(), I->getType());
      EXPECT_EQ(C->getNumOperands(), I->getNumOperands());
    }
  EXPECT_GT(Scratch.bytesAllocated(), 0u);
}

TEST(ArenaTest, DropBodyAndRecloneReusesTheSlab) {
  Context Ctx;
  auto M = parseOrDie(Ctx, SampleIR);
  auto Pristine = cloneModule(*M);
  Function *F = M->getFunction("f");
  std::string Expected = printModule(*M);

  // The engine's snapshot/revert cycle: drop the body, re-clone it from the
  // pristine copy. The text must round-trip every time and, after the first
  // cycle primes the slab, the body arena must stop growing.
  F->dropBody();
  EXPECT_TRUE(F->isDeclaration());
  std::map<const Value *, Value *> VMap;
  cloneFunctionBody(*Pristine->getFunction("f"), *F, VMap);
  remapModuleReferences(*F, *M);
  size_t WarmReserved = F->bodyArena().bytesReserved();
  EXPECT_EQ(printModule(*M), Expected);

  for (int Cycle = 0; Cycle < 10; ++Cycle) {
    F->dropBody();
    std::map<const Value *, Value *> CycleMap;
    cloneFunctionBody(*Pristine->getFunction("f"), *F, CycleMap);
    remapModuleReferences(*F, *M);
    EXPECT_EQ(printModule(*M), Expected) << "cycle " << Cycle;
    EXPECT_EQ(F->bodyArena().bytesReserved(), WarmReserved)
        << "body arena grew on cycle " << Cycle;
  }
  expectVerified(*M);
}

TEST(ArenaTest, EightThreadsMutateTheirOwnModulesInIsolation) {
  // One shared Context (its intern arena is lock-protected), eight threads
  // each owning a module: the per-function body arenas and per-module
  // object arenas must never bleed into each other. Run the full
  // build/clone/drop/re-clone churn concurrently and check every thread's
  // module still prints and verifies exactly like a single-threaded one.
  Context Ctx;
  std::string Expected;
  {
    auto Ref = parseOrDie(Ctx, SampleIR);
    Expected = printModule(*Ref);
  }

  constexpr unsigned Threads = 8;
  std::vector<std::string> Failures(Threads);
  std::vector<std::thread> Pool;
  for (unsigned T = 0; T < Threads; ++T)
    Pool.emplace_back([&, T] {
      for (int Round = 0; Round < 20; ++Round) {
        ParseResult R = parseModule(Ctx, SampleIR);
        if (!R) {
          Failures[T] = "parse failed: " + R.Error;
          return;
        }
        auto Clone = cloneModule(*R.M);
        Function *F = Clone->getFunction("f");
        F->dropBody();
        std::map<const Value *, Value *> VMap;
        cloneFunctionBody(*R.M->getFunction("f"), *F, VMap);
        remapModuleReferences(*F, *Clone);
        if (printModule(*Clone) != Expected) {
          Failures[T] = "round " + std::to_string(Round) +
                        ": clone diverged after re-clone";
          return;
        }
        std::vector<std::string> Errors;
        if (!verifyModule(*Clone, Errors)) {
          Failures[T] = "round " + std::to_string(Round) + ": verify failed";
          return;
        }
      }
    });
  for (std::thread &Th : Pool)
    Th.join();
  for (unsigned T = 0; T < Threads; ++T)
    EXPECT_TRUE(Failures[T].empty()) << "thread " << T << ": " << Failures[T];
}

TEST(ArenaTest, ModuleTeardownIsSafeAfterHeavyChurn) {
  // Generate a realistic module, optimize nothing, just destroy it: the
  // single-free teardown path must handle interleaved functions, globals,
  // and bodies of very different sizes. (ASan would flag any double-free
  // or use-after-free here.)
  Context Ctx;
  BenchmarkProfile P = getProfile("sqlite");
  P.FunctionCount = 12;
  auto M = generateBenchmark(Ctx, P);
  size_t Dropped = 0;
  for (Function *F : M->definedFunctions()) {
    if (++Dropped % 2 == 0)
      F->dropBody(); // half the bodies die early, half at module teardown
  }
  M.reset();
  SUCCEED();
}
