//===- LocalTest.cpp - Local optimization utility tests -------------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "ir/IRBuilder.h"
#include "opt/Local.h"

#include <gtest/gtest.h>

using namespace llvmmd;
using namespace llvmmd::testutil;

namespace {

struct LocalFixture : ::testing::Test {
  Context Ctx;
  Module M{Ctx};
  Function *F = nullptr;
  BasicBlock *BB = nullptr;
  IRBuilder B{Ctx};

  void SetUp() override {
    Type *I32 = Ctx.getInt32Ty();
    F = M.createFunction(Ctx.getFunctionTy(I32, {I32, I32}), "f");
    BB = F->createBlock("entry");
    B.setInsertPoint(BB);
  }
};

} // namespace

TEST_F(LocalFixture, ConstantFoldBinary) {
  auto *I = cast<Instruction>(B.createAdd(Ctx.getInt32(20), Ctx.getInt32(22)));
  Constant *C = constantFoldInstruction(I, Ctx);
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(cast<ConstantInt>(C)->getSExtValue(), 42);
}

TEST_F(LocalFixture, ConstantFoldRefusesDivByZero) {
  auto *I = cast<Instruction>(
      B.createBinary(Opcode::SDiv, Ctx.getInt32(1), Ctx.getInt32(0)));
  EXPECT_EQ(constantFoldInstruction(I, Ctx), nullptr);
}

TEST_F(LocalFixture, ConstantFoldComparisonAndSelect) {
  auto *Cmp = cast<Instruction>(
      B.createICmp(ICmpPred::SLT, Ctx.getInt32(3), Ctx.getInt32(5)));
  Constant *C = constantFoldInstruction(Cmp, Ctx);
  ASSERT_NE(C, nullptr);
  EXPECT_TRUE(cast<ConstantInt>(C)->isTrue());

  auto *Sel = cast<Instruction>(
      B.createSelect(Ctx.getTrue(), Ctx.getInt32(7), Ctx.getInt32(9)));
  Constant *SC = constantFoldInstruction(Sel, Ctx);
  ASSERT_NE(SC, nullptr);
  EXPECT_EQ(cast<ConstantInt>(SC)->getSExtValue(), 7);
}

TEST_F(LocalFixture, SimplifyIdentities) {
  Value *A = F->getArg(0);
  EXPECT_EQ(simplifyInstruction(
                cast<Instruction>(B.createAdd(A, Ctx.getInt32(0))), Ctx),
            A);
  EXPECT_EQ(simplifyInstruction(
                cast<Instruction>(B.createMul(A, Ctx.getInt32(1))), Ctx),
            A);
  Value *Zero = simplifyInstruction(
      cast<Instruction>(B.createMul(A, Ctx.getInt32(0))), Ctx);
  EXPECT_EQ(cast<ConstantInt>(Zero)->getSExtValue(), 0);
  EXPECT_EQ(simplifyInstruction(cast<Instruction>(B.createAnd(A, A)), Ctx),
            A);
  Value *X0 = simplifyInstruction(cast<Instruction>(B.createXor(A, A)), Ctx);
  EXPECT_EQ(cast<ConstantInt>(X0)->getSExtValue(), 0);
  Value *T = simplifyInstruction(
      cast<Instruction>(B.createICmp(ICmpPred::SLE, A, A)), Ctx);
  EXPECT_TRUE(cast<ConstantInt>(T)->isTrue());
}

TEST_F(LocalFixture, SimplifyPhiWithCommonValue) {
  BasicBlock *J = F->createBlock("j");
  IRBuilder B2(Ctx);
  B2.setInsertPoint(J);
  PhiNode *P = B2.createPhi(Ctx.getInt32Ty());
  P->addIncoming(F->getArg(0), BB);
  P->addIncoming(F->getArg(0), BB); // artificial, same value both ways
  EXPECT_EQ(simplifyInstruction(P, Ctx), F->getArg(0));
  // Self-references through back edges are ignored.
  PhiNode *P2 = B2.createPhi(Ctx.getInt32Ty());
  P2->addIncoming(F->getArg(1), BB);
  P2->addIncoming(P2, J);
  EXPECT_EQ(simplifyInstruction(P2, Ctx), F->getArg(1));
}

TEST_F(LocalFixture, TriviallyDeadClassification) {
  Value *Dead = B.createAdd(F->getArg(0), Ctx.getInt32(1));
  EXPECT_TRUE(isTriviallyDead(cast<Instruction>(Dead)));
  Value *P = B.createAlloca(Ctx.getInt32Ty());
  Instruction *St = B.createStore(F->getArg(0), P);
  EXPECT_FALSE(isTriviallyDead(St));
  B.createRet(F->getArg(0));
  EXPECT_FALSE(isTriviallyDead(BB->getTerminator()));
}

TEST_F(LocalFixture, RemoveDeadInstructionsIsTransitive) {
  Value *A = B.createAdd(F->getArg(0), Ctx.getInt32(1), "a");
  Value *C = B.createMul(A, Ctx.getInt32(3), "b");
  (void)C;
  B.createRet(F->getArg(0));
  EXPECT_EQ(removeDeadInstructions(*F), 2u);
  EXPECT_EQ(F->getInstructionCount(), 1u);
}

TEST(LocalUtils, RemoveUnreachableBlocks) {
  Context Ctx;
  auto M = parseOrDie(Ctx, R"(
define i32 @f(i32 %a) {
entry:
  ret i32 %a
island:
  %x = add i32 %a, 1
  br label %island2
island2:
  %p = phi i32 [ %x, %island ]
  br label %island
}
)");
  Function *F = M->getFunction("f");
  EXPECT_EQ(removeUnreachableBlocks(*F), 2u);
  EXPECT_EQ(F->getNumBlocks(), 1u);
  expectVerified(*M);
}

TEST(LocalUtils, FoldSingleEntryPhis) {
  Context Ctx;
  auto M = parseOrDie(Ctx, R"(
define i32 @f(i32 %a) {
entry:
  br label %next
next:
  %p = phi i32 [ %a, %entry ]
  %r = add i32 %p, 1
  ret i32 %r
}
)");
  Function *F = M->getFunction("f");
  EXPECT_EQ(foldSingleEntryPhis(*F), 1u);
  expectVerified(*M);
  for (const auto &BB : F->blocks())
    EXPECT_TRUE(BB->phis().empty());
}
