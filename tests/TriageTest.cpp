//===- TriageTest.cpp - Alarm triage subsystem tests ---------------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
// The triage contract, enforced:
//  * every BugInjector mutation family, injected into a function whose
//    sites of that family are all observable, earns a concrete interpreter
//    witness — over 120 seeds per family;
//  * validated pairs never get a witness (triage does not even run);
//  * runs that trap are skipped, never witnesses (inconclusive pairs);
//  * the reducer's output is minimal (no single removable cut remains),
//    still failing, and deterministic;
//  * rule-gap attribution names the checked missing rule family;
//  * triage reports are byte-identical across 1/2/8 engine threads.
//
//===----------------------------------------------------------------------===//

#include "driver/ValidationEngine.h"
#include "ir/Cloning.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include "opt/BugInjector.h"
#include "opt/Pass.h"
#include "triage/DifferentialTester.h"
#include "triage/Reducer.h"
#include "triage/RuleGapAttributor.h"
#include "triage/Triage.h"
#include "validator/Validator.h"
#include "workload/Generator.h"

#include "TestUtil.h"

using namespace llvmmd;
using testutil::parseOrDie;

namespace {

/// Triage options for the witness sweeps: corpus only, no reduction (the
/// reducer has its own tests).
TriageOptions witnessOnly() {
  TriageOptions O;
  O.Enabled = true;
  O.MaxInputs = 48;
  O.ReduceBudget = 0;
  return O;
}

TriageResult triageOf(const Module &MA, const Module &MB, const char *Fn,
                      const TriageOptions &Opts, unsigned Mask = RS_All) {
  RuleConfig Rules;
  Rules.Mask = Mask;
  Rules.M = &MA;
  TriagePair P{&MA, MA.getFunction(Fn), &MB, MB.getFunction(Fn)};
  return triagePair(P, Rules, Opts);
}

} // namespace

//===----------------------------------------------------------------------===//
// Witnesses for every mutation family
//===----------------------------------------------------------------------===//

// One crafted function per family: every injection site of that family is
// observable through the return value or a global, so a witness MUST be
// found for any seed.
struct FamilyCase {
  const char *Family;
  const char *Source;
};

const FamilyCase FamilyCases[] = {
    {"pred-flip", R"(
define i32 @f(i32 %a, i32 %b) {
entry:
  %c = icmp slt i32 %a, %b
  %z = zext i1 %c to i32
  ret i32 %z
}
)"},
    {"const-bump", R"(
define i32 @f(i32 %a) {
entry:
  %x = add i32 %a, 7
  ret i32 %x
}
)"},
    {"operand-swap", R"(
define i32 @f(i32 %a, i32 %b) {
entry:
  %x = sub i32 %a, %b
  ret i32 %x
}
)"},
    {"store-drop", R"(
@g = global i32 11
define i32 @f(i32 %a) {
entry:
  store i32 %a, ptr @g
  %v = load i32, ptr @g
  ret i32 %v
}
)"},
    {"branch-swap", R"(
define i32 @f(i32 %a) {
entry:
  %c = icmp sgt i32 %a, 0
  br i1 %c, label %t, label %e
t:
  br label %j
e:
  br label %j
j:
  %p = phi i32 [ 1, %t ], [ 2, %e ]
  ret i32 %p
}
)"},
    // Two distinct GEPs to the same slot: shifting either one decouples
    // the store from the load.
    {"gep-shift", R"(
define i32 @f(i32 %a) {
entry:
  %p = alloca i32, i64 4
  %q0 = getelementptr i32, ptr %p, i64 0
  %q1 = getelementptr i32, ptr %p, i64 0
  store i32 %a, ptr %q0
  %v = load i32, ptr %q1
  ret i32 %v
}
)"},
    // (1e16 + 1) + 2 = 1e16+2 but 1e16 + (1 + 2) = 1e16+4 in double.
    {"fp-reassoc", R"(
define float @f() {
entry:
  %s = fadd float 10000000000000000.0, 1.0
  %t = fadd float %s, 2.0
  ret float %t
}
)"},
};

class FamilyWitness : public ::testing::TestWithParam<FamilyCase> {};

TEST_P(FamilyWitness, EveryInjectionOver120SeedsYieldsAConcreteWitness) {
  const FamilyCase &FC = GetParam();
  Context Ctx;
  auto M = parseOrDie(Ctx, FC.Source);
  unsigned Injected = 0;
  for (uint64_t Seed = 0; Seed < 120; ++Seed) {
    auto Mutant = cloneModule(*M);
    std::string Desc = injectBug(*Mutant->getFunction("f"), Seed, FC.Family);
    ASSERT_FALSE(Desc.empty()) << FC.Family << " seed " << Seed;
    ASSERT_EQ(Desc.rfind(std::string(FC.Family) + ":", 0), 0u)
        << "description must start with the family name: " << Desc;
    ++Injected;
    TriageResult T = triageOf(*M, *Mutant, "f", witnessOnly());
    EXPECT_EQ(T.Classification, TriageClassification::MiscompileWitnessed)
        << FC.Family << " seed " << Seed << ": '" << Desc
        << "' got no witness (" << T.InputsTried << " tried, "
        << T.InputsSkipped << " skipped)";
    EXPECT_FALSE(T.WitnessDivergence.empty());
  }
  EXPECT_EQ(Injected, 120u);
}

INSTANTIATE_TEST_SUITE_P(Families, FamilyWitness,
                         ::testing::ValuesIn(FamilyCases),
                         [](const ::testing::TestParamInfo<FamilyCase> &I) {
                           std::string Name = I.param.Family;
                           for (char &C : Name)
                             if (C == '-')
                               C = '_';
                           return Name;
                         });

TEST(BugInjector, FamilyFilterAndRegistry) {
  Context Ctx;
  auto M = parseOrDie(Ctx, FamilyCases[0].Source);
  // Unknown family: no candidates, no mutation.
  auto Mutant = cloneModule(*M);
  EXPECT_EQ(injectBug(*Mutant->getFunction("f"), 1, "no-such-family"), "");
  // Every registered family name round-trips through the filter on a
  // function that has a site for it.
  EXPECT_EQ(getBugFamilies().size(), 7u);
  for (const FamilyCase &FC : FamilyCases) {
    Context C2;
    auto M2 = parseOrDie(C2, FC.Source);
    std::string Desc = injectBug(*M2->getFunction("f"), 3, FC.Family);
    EXPECT_EQ(Desc.rfind(std::string(FC.Family) + ":", 0), 0u) << Desc;
  }
}

// The reassociation divergence the fp-reassoc case relies on is real
// double arithmetic, not an assumption.
TEST(Triage, FpReassocDivergenceIsRepresentable) {
  volatile double A = 1e16, B = 1.0, C = 2.0;
  EXPECT_NE((A + B) + C, A + (B + C));
}

//===----------------------------------------------------------------------===//
// Validated pairs never get a witness
//===----------------------------------------------------------------------===//

TEST(Triage, ValidatedPairsAreNeverTriaged) {
  Context Ctx;
  BenchmarkProfile P = getProfile("sqlite");
  P.FunctionCount = 24;
  auto M = generateBenchmark(Ctx, P);
  EngineConfig C;
  C.Rules.Mask = RS_All;
  C.Triage = witnessOnly();
  ValidationEngine Engine(C);
  EngineRun Run = Engine.run(*M, getPaperPipeline());
  unsigned Checked = 0;
  for (const FunctionReportEntry &E : Run.Report.Functions) {
    if (E.Validated || !E.Transformed) {
      EXPECT_EQ(E.Triage.Classification, TriageClassification::NotRun)
          << E.Name;
      EXPECT_TRUE(E.Triage.WitnessInputs.empty()) << E.Name;
      ++Checked;
    }
  }
  EXPECT_GT(Checked, 0u);
  EXPECT_EQ(Run.Report.witnessed(), 0u);
}

TEST(Triage, IdenticalPairHasNoWitnessOnTheFullCorpus) {
  Context Ctx;
  BenchmarkProfile P = getProfile("hmmer");
  P.FunctionCount = 8;
  auto M = generateBenchmark(Ctx, P);
  auto Clone = cloneModule(*M);
  DifferentialTester DT(*M, *Clone);
  for (Function *F : M->definedFunctions()) {
    DiffOutcome O = DT.test(*F, *Clone->getFunction(F->getName()), 64);
    EXPECT_FALSE(O.HasWitness) << F->getName();
  }
}

//===----------------------------------------------------------------------===//
// Skip rule: traps are never witnesses
//===----------------------------------------------------------------------===//

TEST(Triage, AlwaysTrappingPairIsInconclusive) {
  Context Ctx;
  auto MA = parseOrDie(Ctx, R"(
define i32 @f(i32 %a) {
entry:
  %x = sdiv i32 %a, 0
  ret i32 %x
}
)");
  auto MB = parseOrDie(Ctx, R"(
define i32 @f(i32 %a) {
entry:
  ret i32 5
}
)");
  // The validator rejects the pair, but every original-side run traps, so
  // no input is usable and triage must say so rather than claim a witness.
  TriageResult T = triageOf(*MA, *MB, "f", witnessOnly());
  EXPECT_EQ(T.Classification, TriageClassification::Inconclusive);
  EXPECT_EQ(T.InputsTried, 0u);
  EXPECT_GT(T.InputsSkipped, 0u);
  EXPECT_TRUE(T.WitnessInputs.empty());
}

//===----------------------------------------------------------------------===//
// Reducer: minimality, class preservation, determinism
//===----------------------------------------------------------------------===//

namespace {

// A false alarm under RS_Paper (load of a constant global vs the folded
// constant — needs RS_GlobalFold) buried in removable junk on both sides.
const char *FalseAlarmOrig = R"(
@gc = constant i32 37
define i32 @f(i32 %a, i32 %b) {
entry:
  %j1 = add i32 %a, %b
  %j2 = mul i32 %j1, 3
  %j3 = xor i32 %j2, %a
  %c = icmp slt i32 %j3, %b
  br i1 %c, label %t, label %j
t:
  br label %j
j:
  %v = load i32, ptr @gc
  %r = add i32 %v, 0
  ret i32 %r
}
)";

const char *FalseAlarmOpt = R"(
@gc = constant i32 37
define i32 @f(i32 %a, i32 %b) {
entry:
  %j1 = add i32 %a, %b
  %j2 = mul i32 %j1, 3
  ret i32 37
}
)";

ReducedPair reduceFalseAlarm(Context &Ctx, std::unique_ptr<Module> &MA,
                             std::unique_ptr<Module> &MB) {
  MA = parseOrDie(Ctx, FalseAlarmOrig);
  MB = parseOrDie(Ctx, FalseAlarmOpt);
  RuleConfig Rules; // RS_Paper: no global folding -> false alarm
  Rules.M = MA.get();
  TriagePair P{MA.get(), MA->getFunction("f"), MB.get(), MB->getFunction("f")};
  return reducePair(P, Rules, /*Budget=*/128, /*StepBudget=*/1u << 20,
                    /*Witness=*/nullptr);
}

} // namespace

TEST(Reducer, FalseAlarmShrinksToMinimalStillFailingPair) {
  Context Ctx;
  std::unique_ptr<Module> MA, MB;
  ReducedPair R = reduceFalseAlarm(Ctx, MA, MB);
  ASSERT_TRUE(R.Ran);
  EXPECT_TRUE(R.Minimal);
  // All junk gone: the original keeps only the load chain, the optimized
  // side only its return.
  EXPECT_LT(R.A->getInstructionCount(), 5u);
  EXPECT_LT(R.B->getInstructionCount(), 2u);
  // Still the same alarm under the same rules...
  RuleConfig Rules;
  Rules.M = R.MA.get();
  ValidationResult V = validatePair(*R.A, *R.B, Rules);
  EXPECT_FALSE(V.Validated);
  EXPECT_FALSE(V.Unsupported);
  // ...and still behaviorally equivalent (a false alarm did not reduce
  // into a real divergence).
  DifferentialTester DT(*R.MA, *R.MB);
  EXPECT_FALSE(DT.test(*R.A, *R.B, 48).HasWitness);
}

TEST(Reducer, FixpointIsOneMinimal) {
  // Re-reducing the reduced pair must change nothing: no single removable
  // cut remains.
  Context Ctx;
  std::unique_ptr<Module> MA, MB;
  ReducedPair R1 = reduceFalseAlarm(Ctx, MA, MB);
  ASSERT_TRUE(R1.Ran);
  RuleConfig Rules;
  Rules.M = R1.MA.get();
  TriagePair Again{R1.MA.get(), R1.A, R1.MB.get(), R1.B};
  ReducedPair R2 = reducePair(Again, Rules, 128, 1u << 20, nullptr);
  ASSERT_TRUE(R2.Ran);
  EXPECT_EQ(R2.A->getInstructionCount(), R1.A->getInstructionCount());
  EXPECT_EQ(R2.B->getInstructionCount(), R1.B->getInstructionCount());
  EXPECT_EQ(printFunction(*R2.A), printFunction(*R1.A));
  EXPECT_EQ(printFunction(*R2.B), printFunction(*R1.B));
}

TEST(Reducer, DeterministicAcrossRuns) {
  Context Ctx1, Ctx2;
  std::unique_ptr<Module> MA1, MB1, MA2, MB2;
  ReducedPair R1 = reduceFalseAlarm(Ctx1, MA1, MB1);
  ReducedPair R2 = reduceFalseAlarm(Ctx2, MA2, MB2);
  ASSERT_TRUE(R1.Ran);
  ASSERT_TRUE(R2.Ran);
  EXPECT_EQ(R1.Validations, R2.Validations);
  EXPECT_EQ(printFunction(*R1.A), printFunction(*R2.A));
  EXPECT_EQ(printFunction(*R1.B), printFunction(*R2.B));
}

TEST(Reducer, WitnessedPairStaysWitnessedThroughReduction) {
  Context Ctx;
  auto MA = parseOrDie(Ctx, R"(
define i32 @f(i32 %a, i32 %b) {
entry:
  %j1 = add i32 %a, %b
  %j2 = mul i32 %j1, 3
  %x = add i32 %a, 1
  ret i32 %x
}
)");
  auto MB = parseOrDie(Ctx, R"(
define i32 @f(i32 %a, i32 %b) {
entry:
  %j1 = add i32 %a, %b
  %x = add i32 %a, 2
  ret i32 %x
}
)");
  TriageOptions O;
  O.Enabled = true;
  O.MaxInputs = 48;
  O.ReduceBudget = 128;
  TriageResult T = triageOf(*MA, *MB, "f", O);
  ASSERT_EQ(T.Classification, TriageClassification::MiscompileWitnessed);
  ASSERT_TRUE(T.Reduced);
  EXPECT_TRUE(T.ReduceMinimal);
  // The junk is gone but the miscompile (a+1 vs a+2) must survive.
  EXPECT_LE(T.OrigInstsAfter, 2u);
  EXPECT_LE(T.OptInstsAfter, 2u);
  EXPECT_FALSE(T.ReducedOrig.empty());
  EXPECT_FALSE(T.ReducedOpt.empty());
}

//===----------------------------------------------------------------------===//
// Rule-gap attribution
//===----------------------------------------------------------------------===//

TEST(RuleGap, NamesTheCheckedMissingFamily) {
  Context Ctx;
  auto MA = parseOrDie(Ctx, FalseAlarmOrig);
  auto MB = parseOrDie(Ctx, FalseAlarmOpt);
  RuleConfig Rules; // RS_Paper
  Rules.M = MA.get();
  RuleGapOutcome Gap =
      attributeRuleGap(*MA->getFunction("f"), *MB->getFunction("f"), Rules);
  ASSERT_TRUE(Gap.Ran);
  EXPECT_EQ(Gap.MissingRule, "global-fold");
  EXPECT_EQ(Gap.MissingRuleMask, unsigned(RS_GlobalFold));
  // The structural diff pinpoints the stuck spot: a load of the constant
  // global on one side against the folded constant on the other.
  EXPECT_TRUE(Gap.Diverged);
  EXPECT_NE(Gap.NodeA.find("load"), std::string::npos) << Gap.NodeA;
  EXPECT_NE(Gap.NodeB.find("const(37)"), std::string::npos) << Gap.NodeB;
}

TEST(RuleGap, EndToEndThroughTriagePair) {
  Context Ctx;
  auto MA = parseOrDie(Ctx, FalseAlarmOrig);
  auto MB = parseOrDie(Ctx, FalseAlarmOpt);
  TriageOptions O;
  O.Enabled = true;
  O.MaxInputs = 32;
  O.ReduceBudget = 128;
  TriageResult T = triageOf(*MA, *MB, "f", O, /*Mask=*/RS_Paper);
  EXPECT_EQ(T.Classification, TriageClassification::SuspectedFalseAlarm);
  EXPECT_TRUE(T.GapRan);
  EXPECT_EQ(T.MissingRule, "global-fold");
}

//===----------------------------------------------------------------------===//
// Engine integration: determinism across thread counts
//===----------------------------------------------------------------------===//

namespace {

/// A bug-injected corpus: a generated module and a mutated clone of it.
std::pair<std::unique_ptr<Module>, std::unique_ptr<Module>>
injectedCorpus(Context &Ctx, unsigned Functions) {
  BenchmarkProfile P = getProfile("hmmer");
  P.FunctionCount = Functions;
  auto M = generateBenchmark(Ctx, P);
  auto Mutant = cloneModule(*M);
  uint64_t Seed = 0x7a5;
  for (Function *F : Mutant->definedFunctions())
    injectBug(*F, Seed++);
  return {std::move(M), std::move(Mutant)};
}

} // namespace

TEST(Triage, EngineReportsByteIdenticalAcross1_2_8Threads) {
  std::string Baseline;
  for (unsigned Threads : {1u, 2u, 8u}) {
    Context Ctx;
    auto [M, Mutant] = injectedCorpus(Ctx, 20);
    EngineConfig C;
    C.Threads = Threads;
    C.Rules.Mask = RS_All;
    C.Triage.Enabled = true;
    C.Triage.MaxInputs = 32;
    C.Triage.ReduceBudget = 48;
    ValidationEngine Engine(C);
    ValidationReport R = Engine.validateModules(*M, *Mutant);
    // The corpus must actually exercise triage for the comparison to mean
    // anything.
    EXPECT_GT(R.witnessed() + R.suspectedFalseAlarms(), 0u);
    std::string Json = reportToJSON(R);
    EXPECT_NE(Json.find("\"triage\": {"), std::string::npos);
    if (Baseline.empty())
      Baseline = Json;
    else
      EXPECT_EQ(Baseline, Json) << "thread count " << Threads
                                << " changed the triage report";
  }
}

TEST(Triage, EveryRejectedPairOfTheInjectedCorpusIsClassified) {
  Context Ctx;
  auto [M, Mutant] = injectedCorpus(Ctx, 24);
  EngineConfig C;
  C.Rules.Mask = RS_All;
  C.Triage = witnessOnly();
  ValidationEngine Engine(C);
  ValidationReport R = Engine.validateModules(*M, *Mutant);
  DifferentialTester Probe(*M, *Mutant);
  unsigned Rejected = 0;
  for (const FunctionReportEntry &E : R.Functions) {
    if (!E.Transformed || E.Validated)
      continue;
    ++Rejected;
    EXPECT_NE(E.Triage.Classification, TriageClassification::NotRun)
        << E.Name;
    // Agreement with a direct probe: the triage corpus contains the probe
    // corpus, so a probe witness implies a triage witness.
    DiffOutcome O = Probe.test(*M->getFunction(E.Name),
                               *Mutant->getFunction(E.Name), 48);
    if (O.HasWitness)
      EXPECT_EQ(E.Triage.Classification,
                TriageClassification::MiscompileWitnessed)
          << E.Name << ": probe diverges but triage found no witness";
  }
  EXPECT_GT(Rejected, 0u);
}

TEST(Triage, RestrictedRuleMaskYieldsAttributedSuiteFalseAlarms) {
  // The acceptance scenario: a deliberately restricted rule mask on a
  // workload with extension-rule features produces suspected false alarms
  // and at least one carries a named rule-gap attribution.
  Context Ctx;
  auto M = generateBenchmark(Ctx, getProfile("sqlite"));
  EngineConfig C;
  C.Rules.Mask = RS_Paper; // libc/float/global extensions off
  C.Triage.Enabled = true;
  C.Triage.MaxInputs = 48;
  C.Triage.ReduceBudget = 128;
  ValidationEngine Engine(C);
  EngineRun Run = Engine.run(*M, getPaperPipeline());
  EXPECT_EQ(Run.Report.witnessed(), 0u)
      << "a real optimizer pipeline must not produce miscompile witnesses";
  ASSERT_GT(Run.Report.suspectedFalseAlarms(), 0u);
  unsigned Attributed = 0;
  for (const FunctionReportEntry &E : Run.Report.Functions)
    if (E.Triage.Classification == TriageClassification::SuspectedFalseAlarm &&
        (!E.Triage.MissingRule.empty() || E.Triage.ClosedByAllRules))
      ++Attributed;
  EXPECT_GT(Attributed, 0u);
}
