/* Reference source for the frozen .ll fixture pair in this directory.
 *
 * kernels_O0.ll is (the supported subset of) what
 *
 *   clang -O0 -S -emit-llvm kernels.c -o - | opt -S -passes=mem2reg
 *
 * produces for this file; kernels_opt.ll is the same module after a
 * conservative cleanup pass pipeline (constant folding, value renaming,
 * redundant-load elimination) — every function remains observably
 * equivalent. Both files are frozen: tests and scripts/check.sh validate
 * them byte-for-byte without needing a clang on PATH. When clang/opt are
 * available, `scripts/check.sh --llvm` additionally regenerates an O0
 * module from this source and validates it from scratch.
 *
 * `to_int` is deliberately outside the importer's subset (fptosi): both
 * fixtures must import with exactly one per-function rejection, proving
 * that one unsupported construct does not poison the rest of the module.
 */

typedef unsigned long size_t;
extern size_t strlen(const char *s);

int g_count = 0;
int g_table[8] = {1, 2, 3, 4, 5, 6, 7, 8};
double g_scale = 1.5;

/* Saturating 32-bit add performed in 64-bit arithmetic. */
int saturating_add(int a, int b) {
  long s = (long)a + (long)b;
  if (s > 2147483647L)
    return 2147483647;
  if (s < -2147483648L)
    return (int)-2147483648L;
  return (int)s;
}

/* Loop + global array indexing (gep), wrap-around mask. */
int sum_table(int n) {
  int acc = 0;
  for (int i = 0; i < n; ++i)
    acc += g_table[i & 7];
  return acc;
}

/* Switch dispatch (lowered to a compare chain by the importer). */
int classify(int c) {
  switch (c) {
  case 0:
    return 10;
  case 1:
    return 20;
  case 7:
    return 70;
  default:
    return -1;
  }
}

/* Float arithmetic against a global, plus a select. */
double scale_mix(double x, double y) {
  double r = x * g_scale + 0.5;
  return r > y ? r : y;
}

/* Libc call + truncating cast + global update. */
int count_len(const char *s) {
  int n = (int)strlen(s);
  g_count = g_count + n;
  return n;
}

/* Loop-invariant global load plus foldable constant arithmetic: the paper
 * pipeline (sccp, licm, gvn) actually transforms this one, so the fixture
 * suite exercises real validations, not just imports. */
int fold_and_hoist(int n) {
  int acc = 0;
  int four = (1 + 1) * 2;
  for (int i = 0; i < n; ++i)
    acc += g_count + four;
  return acc;
}

/* OUTSIDE the supported subset: fptosi. Present in both .ll fixtures so
 * the per-function rejection path is exercised end to end. */
int to_int(double x) { return (int)x; }
