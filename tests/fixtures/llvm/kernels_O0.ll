; ModuleID = 'kernels.c'
source_filename = "kernels.c"
target datalayout = "e-m:e-p270:32:32-p271:32:32-p272:64:64-i64:64-f80:128-n8:16:32:64-S128"
target triple = "x86_64-unknown-linux-gnu"

@g_count = dso_local global i32 0, align 4
@g_table = dso_local global [8 x i32] [i32 1, i32 2, i32 3, i32 4, i32 5, i32 6, i32 7, i32 8], align 16
@g_scale = dso_local global double 1.500000e+00, align 8

; Function Attrs: noinline nounwind optnone uwtable
define dso_local i32 @saturating_add(i32 noundef %a, i32 noundef %b) #0 {
entry:
  %conv = sext i32 %a to i64
  %conv1 = sext i32 %b to i64
  %add = add nsw i64 %conv, %conv1
  %cmp = icmp sgt i64 %add, 2147483647
  br i1 %cmp, label %if.then, label %if.end

if.then:                                          ; preds = %entry
  br label %return

if.end:                                           ; preds = %entry
  %cmp2 = icmp slt i64 %add, -2147483648
  br i1 %cmp2, label %if.then3, label %if.end4

if.then3:                                         ; preds = %if.end
  br label %return

if.end4:                                          ; preds = %if.end
  %conv5 = trunc i64 %add to i32
  br label %return

return:                                           ; preds = %if.end4, %if.then3, %if.then
  %retval.0 = phi i32 [ 2147483647, %if.then ], [ -2147483648, %if.then3 ], [ %conv5, %if.end4 ]
  ret i32 %retval.0
}

; Function Attrs: noinline nounwind optnone uwtable
define dso_local i32 @sum_table(i32 noundef %n) #0 {
entry:
  br label %for.cond

for.cond:                                         ; preds = %for.body, %entry
  %i.0 = phi i32 [ 0, %entry ], [ %inc, %for.body ]
  %acc.0 = phi i32 [ 0, %entry ], [ %add, %for.body ]
  %cmp = icmp slt i32 %i.0, %n
  br i1 %cmp, label %for.body, label %for.end

for.body:                                         ; preds = %for.cond
  %and = and i32 %i.0, 7
  %idxprom = sext i32 %and to i64
  %arrayidx = getelementptr inbounds [8 x i32], ptr @g_table, i64 0, i64 %idxprom
  %0 = load i32, ptr %arrayidx, align 4
  %add = add nsw i32 %acc.0, %0
  %inc = add nsw i32 %i.0, 1
  br label %for.cond

for.end:                                          ; preds = %for.cond
  ret i32 %acc.0
}

; Function Attrs: noinline nounwind optnone uwtable
define dso_local i32 @classify(i32 noundef %c) #0 {
entry:
  switch i32 %c, label %sw.default [
    i32 0, label %sw.bb
    i32 1, label %sw.bb1
    i32 7, label %sw.bb2
  ]

sw.bb:                                            ; preds = %entry
  br label %return

sw.bb1:                                           ; preds = %entry
  br label %return

sw.bb2:                                           ; preds = %entry
  br label %return

sw.default:                                       ; preds = %entry
  br label %return

return:                                           ; preds = %sw.default, %sw.bb2, %sw.bb1, %sw.bb
  %retval.0 = phi i32 [ -1, %sw.default ], [ 70, %sw.bb2 ], [ 20, %sw.bb1 ], [ 10, %sw.bb ]
  ret i32 %retval.0
}

; Function Attrs: noinline nounwind optnone uwtable
define dso_local double @scale_mix(double noundef %x, double noundef %y) #0 {
entry:
  %0 = load double, ptr @g_scale, align 8
  %mul = fmul double %x, %0
  %add = fadd double %mul, 5.000000e-01
  %cmp = fcmp ogt double %add, %y
  br i1 %cmp, label %cond.true, label %cond.false

cond.true:                                        ; preds = %entry
  br label %cond.end

cond.false:                                       ; preds = %entry
  br label %cond.end

cond.end:                                         ; preds = %cond.false, %cond.true
  %cond = phi double [ %add, %cond.true ], [ %y, %cond.false ]
  ret double %cond
}

; Function Attrs: noinline nounwind optnone uwtable
define dso_local i32 @count_len(ptr noundef %s) #0 {
entry:
  %call = call i64 @strlen(ptr noundef %s) #2
  %conv = trunc i64 %call to i32
  %0 = load i32, ptr @g_count, align 4
  %add = add nsw i32 %0, %conv
  store i32 %add, ptr @g_count, align 4
  ret i32 %conv
}

; Function Attrs: noinline nounwind optnone uwtable
define dso_local i32 @fold_and_hoist(i32 noundef %n) #0 {
entry:
  %two = add nsw i32 1, 1
  %four = mul nsw i32 %two, 2
  br label %for.cond

for.cond:                                         ; preds = %for.body, %entry
  %i.0 = phi i32 [ 0, %entry ], [ %inc, %for.body ]
  %acc.0 = phi i32 [ 0, %entry ], [ %add2, %for.body ]
  %cmp = icmp slt i32 %i.0, %n
  br i1 %cmp, label %for.body, label %for.end

for.body:                                         ; preds = %for.cond
  %0 = load i32, ptr @g_count, align 4
  %add1 = add nsw i32 %0, %four
  %add2 = add nsw i32 %acc.0, %add1
  %inc = add nsw i32 %i.0, 1
  br label %for.cond

for.end:                                          ; preds = %for.cond
  ret i32 %acc.0
}

; Function Attrs: noinline nounwind optnone uwtable
define dso_local i32 @to_int(double noundef %x) #0 {
entry:
  %conv = fptosi double %x to i32
  ret i32 %conv
}

; Function Attrs: nounwind willreturn memory(read)
declare i64 @strlen(ptr noundef) #1

attributes #0 = { noinline nounwind optnone uwtable "frame-pointer"="all" "no-trapping-math"="true" "stack-protector-buffer-size"="8" "target-cpu"="x86-64" }
attributes #1 = { nounwind willreturn memory(read) "no-trapping-math"="true" "target-cpu"="x86-64" }
attributes #2 = { nounwind willreturn memory(read) }

!llvm.module.flags = !{!0, !1}
!llvm.ident = !{!2}

!0 = !{i32 1, !"wchar_size", i32 4}
!1 = !{i32 8, !"PIC Level", i32 2}
!2 = !{!"clang version 18.1.3"}
