; ModuleID = 'kernels.c'
; kernels_O0.ll after a conservative cleanup pipeline: trampoline blocks
; threaded, branches folded to selects where legal, values renamed, index
; extensions narrowed to zext nneg. Every function remains observably
; equivalent to its kernels_O0.ll counterpart; to_int is still outside the
; importer's subset.
source_filename = "kernels.c"
target datalayout = "e-m:e-p270:32:32-p271:32:32-p272:64:64-i64:64-f80:128-n8:16:32:64-S128"
target triple = "x86_64-unknown-linux-gnu"

@g_count = dso_local local_unnamed_addr global i32 0, align 4
@g_table = dso_local local_unnamed_addr global [8 x i32] [i32 1, i32 2, i32 3, i32 4, i32 5, i32 6, i32 7, i32 8], align 16
@g_scale = dso_local local_unnamed_addr global double 1.500000e+00, align 8

; Function Attrs: nounwind uwtable
define dso_local i32 @saturating_add(i32 noundef %a, i32 noundef %b) local_unnamed_addr #0 {
entry:
  %sa = sext i32 %a to i64
  %sb = sext i32 %b to i64
  %sum = add nsw i64 %sa, %sb
  %hi = icmp sgt i64 %sum, 2147483647
  br i1 %hi, label %return, label %lo.check

lo.check:                                         ; preds = %entry
  %lo = icmp slt i64 %sum, -2147483648
  br i1 %lo, label %return, label %mid

mid:                                              ; preds = %lo.check
  %t = trunc i64 %sum to i32
  br label %return

return:                                           ; preds = %mid, %lo.check, %entry
  %r = phi i32 [ 2147483647, %entry ], [ -2147483648, %lo.check ], [ %t, %mid ]
  ret i32 %r
}

; Function Attrs: nounwind uwtable
define dso_local i32 @sum_table(i32 noundef %n) local_unnamed_addr #0 {
entry:
  br label %loop

loop:                                             ; preds = %body, %entry
  %i = phi i32 [ 0, %entry ], [ %i.next, %body ]
  %acc = phi i32 [ 0, %entry ], [ %acc.next, %body ]
  %exit.cond = icmp slt i32 %i, %n
  br i1 %exit.cond, label %body, label %done

body:                                             ; preds = %loop
  %masked = and i32 %i, 7
  %idx = zext nneg i32 %masked to i64
  %slot = getelementptr inbounds [8 x i32], ptr @g_table, i64 0, i64 %idx
  %v = load i32, ptr %slot, align 4
  %acc.next = add nsw i32 %acc, %v
  %i.next = add nuw nsw i32 %i, 1
  br label %loop

done:                                             ; preds = %loop
  ret i32 %acc
}

; Function Attrs: nounwind uwtable
define dso_local i32 @classify(i32 noundef %c) local_unnamed_addr #0 {
entry:
  switch i32 %c, label %return [
    i32 0, label %is0
    i32 1, label %is1
    i32 7, label %is7
  ]

is0:                                              ; preds = %entry
  br label %return

is1:                                              ; preds = %entry
  br label %return

is7:                                              ; preds = %entry
  br label %return

return:                                           ; preds = %is7, %is1, %is0, %entry
  %r = phi i32 [ -1, %entry ], [ 70, %is7 ], [ 20, %is1 ], [ 10, %is0 ]
  ret i32 %r
}

; Function Attrs: nounwind uwtable
define dso_local double @scale_mix(double noundef %x, double noundef %y) local_unnamed_addr #0 {
entry:
  %scale = load double, ptr @g_scale, align 8
  %scaled = fmul double %x, %scale
  %r = fadd double %scaled, 5.000000e-01
  %bigger = fcmp ogt double %r, %y
  %pick = select i1 %bigger, double %r, double %y
  ret double %pick
}

; Function Attrs: nounwind uwtable
define dso_local i32 @count_len(ptr noundef %s) local_unnamed_addr #0 {
entry:
  %len = tail call i64 @strlen(ptr noundef %s) #2
  %len32 = trunc i64 %len to i32
  %old = load i32, ptr @g_count, align 4
  %new = add nsw i32 %old, %len32
  store i32 %new, ptr @g_count, align 4
  ret i32 %len32
}

; Function Attrs: nounwind uwtable
define dso_local i32 @fold_and_hoist(i32 noundef %n) local_unnamed_addr #0 {
entry:
  %g = load i32, ptr @g_count, align 4
  %step = add nsw i32 %g, 4
  br label %loop

loop:                                             ; preds = %body, %entry
  %i = phi i32 [ 0, %entry ], [ %i.next, %body ]
  %acc = phi i32 [ 0, %entry ], [ %acc.next, %body ]
  %exit.cond = icmp slt i32 %i, %n
  br i1 %exit.cond, label %body, label %done

body:                                             ; preds = %loop
  %acc.next = add nsw i32 %acc, %step
  %i.next = add nuw nsw i32 %i, 1
  br label %loop

done:                                             ; preds = %loop
  ret i32 %acc
}

; Function Attrs: nounwind uwtable
define dso_local i32 @to_int(double noundef %x) local_unnamed_addr #0 {
entry:
  %conv = fptosi double %x to i32
  ret i32 %conv
}

; Function Attrs: nounwind willreturn memory(read)
declare i64 @strlen(ptr noundef) local_unnamed_addr #1

attributes #0 = { nounwind uwtable "frame-pointer"="all" "no-trapping-math"="true" "stack-protector-buffer-size"="8" "target-cpu"="x86-64" }
attributes #1 = { nounwind willreturn memory(read) "no-trapping-math"="true" "target-cpu"="x86-64" }
attributes #2 = { nounwind willreturn memory(read) }

!llvm.module.flags = !{!0, !1}
!llvm.ident = !{!2}

!0 = !{i32 1, !"wchar_size", i32 4}
!1 = !{i32 8, !"PIC Level", i32 2}
!2 = !{!"clang version 18.1.3"}
