//===- PassTest.cpp - Optimizer pass tests --------------------------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"
#include "ir/Cloning.h"
#include "ir/Interpreter.h"
#include "opt/BugInjector.h"
#include "opt/Local.h"
#include "opt/Pass.h"

#include <gtest/gtest.h>

using namespace llvmmd;
using namespace llvmmd::testutil;

namespace {

/// Runs a pass on the single function of \p Src; returns the optimized,
/// verified module and whether the pass reported a change.
struct PassRun {
  Context Ctx;
  std::unique_ptr<Module> Orig;
  std::unique_ptr<Module> Opt;
  bool Changed = false;
  Function *F = nullptr;

  PassRun(const char *Src, const std::string &Pipeline) {
    ParseResult R = parseModule(Ctx, Src);
    EXPECT_TRUE(static_cast<bool>(R)) << R.Error;
    Orig = std::move(R.M);
    Opt = cloneModule(*Orig);
    PassManager PM;
    EXPECT_TRUE(PM.parsePipeline(Pipeline));
    F = Opt->definedFunctions().front();
    Changed = PM.run(*F);
    expectVerified(*Opt);
  }

  /// Differential check on integer arguments.
  void expectSameBehavior(std::vector<std::vector<RtValue>> ArgSets) {
    Function *FI = Orig->definedFunctions().front();
    Interpreter IA(*Orig), IB(*Opt);
    for (auto &Args : ArgSets) {
      ExecResult RA = IA.run(*FI, Args);
      ExecResult RB = IB.run(*F, Args);
      ASSERT_EQ(RA.Status, ExecStatus::OK) << RA.Detail;
      ASSERT_EQ(RB.Status, ExecStatus::OK) << RB.Detail;
      EXPECT_TRUE(RA.Value == RB.Value);
      EXPECT_EQ(IA.globalMemory(), IB.globalMemory());
    }
  }

  size_t instCount() const { return F->getInstructionCount(); }
};

std::vector<std::vector<RtValue>> intArgs1() {
  return {{RtValue::makeInt(0)},
          {RtValue::makeInt(7)},
          {RtValue::makeInt(-3)},
          {RtValue::makeInt(100)}};
}

} // namespace

//===----------------------------------------------------------------------===//
// SCCP
//===----------------------------------------------------------------------===//

TEST(SCCP, FoldsConstantChain) {
  PassRun R(R"(
define i32 @f(i32 %a) {
entry:
  %x = add i32 2, 3
  %y = mul i32 %x, 4
  %r = add i32 %y, %a
  ret i32 %r
}
)",
            "sccp");
  EXPECT_TRUE(R.Changed);
  R.expectSameBehavior(intArgs1());
  EXPECT_EQ(R.instCount(), 2u); // add + ret
}

TEST(SCCP, ResolvesConstantBranchesAndPhis) {
  // The paper's §4 GVN+SCCP example shape: the whole thing folds to 1.
  PassRun R(R"(
define i32 @f(i32 %a) {
entry:
  %c = icmp slt i32 3, 5
  br i1 %c, label %t, label %e
t:
  br label %j
e:
  br label %j
j:
  %x = phi i32 [ 1, %t ], [ 2, %e ]
  ret i32 %x
}
)",
            "sccp");
  EXPECT_TRUE(R.Changed);
  R.expectSameBehavior(intArgs1());
  // The false edge is gone; the return value folded to the constant 1.
  // (SCCP leaves straight-line block chains; simplifycfg merges them.)
  for (const auto &BB : R.F->blocks())
    if (auto *Ret = dyn_cast_or_null<ReturnInst>(BB->getTerminator()))
      EXPECT_EQ(cast<ConstantInt>(Ret->getReturnValue())->getSExtValue(), 1);
  EXPECT_LE(R.F->getNumBlocks(), 3u);
}

TEST(SCCP, PropagatesThroughPhis) {
  PassRun R(R"(
define i32 @f(i1 %c) {
entry:
  br i1 %c, label %t, label %e
t:
  br label %j
e:
  br label %j
j:
  %x = phi i32 [ 4, %t ], [ 4, %e ]
  %y = add i32 %x, 1
  ret i32 %y
}
)",
            "sccp");
  EXPECT_TRUE(R.Changed);
  Interpreter I(*R.Opt);
  auto Res = I.run(*R.F, {RtValue::makeInt(1)});
  EXPECT_EQ(Res.Value.Int, 5);
}

TEST(SCCP, KeepsOverdefinedAlone) {
  PassRun R(R"(
define i32 @f(i32 %a) {
entry:
  %x = add i32 %a, 1
  ret i32 %x
}
)",
            "sccp");
  EXPECT_FALSE(R.Changed);
}

//===----------------------------------------------------------------------===//
// GVN
//===----------------------------------------------------------------------===//

TEST(GVN, EliminatesCommonSubexpressions) {
  PassRun R(R"(
define i32 @f(i32 %a, i32 %b) {
entry:
  %x = add i32 %a, %b
  %y = add i32 %a, %b
  %z = add i32 %x, %y
  ret i32 %z
}
)",
            "gvn");
  EXPECT_TRUE(R.Changed);
  EXPECT_EQ(R.instCount(), 3u); // one add + the doubling + ret
}

TEST(GVN, CommutativeAndSwappedComparisons) {
  PassRun R(R"(
define i1 @f(i32 %a, i32 %b) {
entry:
  %x = icmp slt i32 %a, %b
  %y = icmp sgt i32 %b, %a
  %r = and i1 %x, %y
  ret i1 %r
}
)",
            "gvn");
  EXPECT_TRUE(R.Changed);
  // and x x simplifies away too; only the compare and ret remain.
  EXPECT_EQ(R.instCount(), 2u);
}

TEST(GVN, ForwardsStoreToLoad) {
  PassRun R(R"(
define i32 @f(i32 %v) {
entry:
  %p = alloca i32
  store i32 %v, ptr %p
  %x = load i32, ptr %p
  ret i32 %x
}
)",
            "gvn");
  EXPECT_TRUE(R.Changed);
  R.expectSameBehavior(intArgs1());
  // The load is gone.
  for (Instruction *I : *R.F->getEntryBlock())
    EXPECT_NE(I->getOpcode(), Opcode::Load);
}

TEST(GVN, LoadJumpsOverNoAliasStore) {
  PassRun R(R"(
define i32 @f(i32 %v) {
entry:
  %p = alloca i32
  %q = alloca i32
  store i32 %v, ptr %p
  store i32 99, ptr %q
  %x = load i32, ptr %p
  ret i32 %x
}
)",
            "gvn");
  EXPECT_TRUE(R.Changed);
  R.expectSameBehavior(intArgs1());
}

TEST(GVN, RespectsMayAliasStores) {
  PassRun R(R"(
define i32 @f(ptr %p, ptr %q, i32 %v) {
entry:
  store i32 %v, ptr %p
  store i32 99, ptr %q
  %x = load i32, ptr %p
  ret i32 %x
}
)",
            "gvn");
  // p and q may alias: the load must stay.
  bool HasLoad = false;
  for (Instruction *I : *R.F->getEntryBlock())
    HasLoad |= I->getOpcode() == Opcode::Load;
  EXPECT_TRUE(HasLoad);
}

TEST(GVN, MergesEquivalentPhis) {
  PassRun R(R"(
define i32 @f(i1 %c, i32 %a, i32 %b) {
entry:
  br i1 %c, label %t, label %e
t:
  br label %j
e:
  br label %j
j:
  %x = phi i32 [ %a, %t ], [ %b, %e ]
  %y = phi i32 [ %a, %t ], [ %b, %e ]
  %s = add i32 %x, %y
  ret i32 %s
}
)",
            "gvn");
  EXPECT_TRUE(R.Changed);
  EXPECT_EQ(R.F->blocks().back()->phis().size(), 1u);
}

TEST(GVN, FoldsConstantGlobalLoad) {
  PassRun R(R"(
@c = constant i32 1234
define i32 @f() {
entry:
  %x = load i32, ptr @c
  ret i32 %x
}
)",
            "gvn");
  EXPECT_TRUE(R.Changed);
  auto *Ret = cast<ReturnInst>(R.F->getEntryBlock()->getTerminator());
  EXPECT_EQ(cast<ConstantInt>(Ret->getReturnValue())->getSExtValue(), 1234);
}

TEST(GVN, MemsetForwardsFillByte) {
  PassRun R(R"(
declare void @memset(ptr, i32, i64)
define i8 @f() {
entry:
  %p = alloca i8, i64 8
  call void @memset(ptr %p, i32 65, i64 8)
  %q = getelementptr i8, ptr %p, i64 3
  %x = load i8, ptr %q
  ret i8 %x
}
)",
            "gvn");
  EXPECT_TRUE(R.Changed);
  auto *Ret = cast<ReturnInst>(R.F->blocks().back()->getTerminator());
  EXPECT_EQ(cast<ConstantInt>(Ret->getReturnValue())->getSExtValue(), 65);
}

//===----------------------------------------------------------------------===//
// ADCE
//===----------------------------------------------------------------------===//

TEST(ADCE, RemovesDeadCode) {
  PassRun R(R"(
define i32 @f(i32 %a) {
entry:
  %dead1 = mul i32 %a, 17
  %dead2 = add i32 %dead1, 4
  %live = add i32 %a, 1
  ret i32 %live
}
)",
            "adce");
  EXPECT_TRUE(R.Changed);
  EXPECT_EQ(R.instCount(), 2u);
  R.expectSameBehavior(intArgs1());
}

TEST(ADCE, RemovesDeadPhiCycles) {
  PassRun R(R"(
define i32 @f(i32 %n) {
entry:
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %i2, %b ]
  %dead = phi i32 [ 1, %entry ], [ %dead2, %b ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %b, label %x
b:
  %dead2 = add i32 %dead, 3
  %i2 = add i32 %i, 1
  br label %h
x:
  ret i32 %i
}
)",
            "adce");
  EXPECT_TRUE(R.Changed);
  R.expectSameBehavior(intArgs1());
  for (const auto &BB : R.F->blocks())
    for (Instruction *I : *BB)
      EXPECT_EQ(I->getName().find("dead"), std::string::npos);
}

TEST(ADCE, KeepsStoresAndCalls) {
  PassRun R(R"(
declare void @effect(i32)
@g = global i32 0
define void @f(i32 %a) {
entry:
  store i32 %a, ptr @g
  call void @effect(i32 %a)
  ret void
}
)",
            "adce");
  EXPECT_FALSE(R.Changed);
  EXPECT_EQ(R.instCount(), 3u);
}

TEST(ADCE, RemovesUnusedReadOnlyCall) {
  PassRun R(R"(
declare i64 @strlen(ptr) readonly
define i32 @f(ptr %s) {
entry:
  %unused = call i64 @strlen(ptr %s)
  ret i32 5
}
)",
            "adce");
  EXPECT_TRUE(R.Changed);
  EXPECT_EQ(R.instCount(), 1u);
}

//===----------------------------------------------------------------------===//
// LICM
//===----------------------------------------------------------------------===//

TEST(LICM, HoistsInvariantArithmetic) {
  PassRun R(R"(
define i32 @f(i32 %n, i32 %a) {
entry:
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %i2, %b ]
  %s = phi i32 [ 0, %entry ], [ %s2, %b ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %b, label %x
b:
  %inv = mul i32 %a, 7
  %s2 = add i32 %s, %inv
  %i2 = add i32 %i, 1
  br label %h
x:
  ret i32 %s
}
)",
            "licm");
  EXPECT_TRUE(R.Changed);
  R.expectSameBehavior({{RtValue::makeInt(0), RtValue::makeInt(3)},
                        {RtValue::makeInt(4), RtValue::makeInt(-2)}});
  // The multiply now lives outside the loop body.
  bool MulInBody = false;
  for (const auto &BB : R.F->blocks())
    if (BB->getName() == "b")
      for (Instruction *I : *BB)
        MulInBody |= I->getOpcode() == Opcode::Mul;
  EXPECT_FALSE(MulInBody);
}

TEST(LICM, DoesNotHoistVaryingValues) {
  PassRun R(R"(
define i32 @f(i32 %n) {
entry:
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %i2, %b ]
  %s = phi i32 [ 0, %entry ], [ %s2, %b ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %b, label %x
b:
  %sq = mul i32 %i, %i
  %s2 = add i32 %s, %sq
  %i2 = add i32 %i, 1
  br label %h
x:
  ret i32 %s
}
)",
            "licm");
  R.expectSameBehavior(intArgs1());
  bool MulInBody = false;
  for (const auto &BB : R.F->blocks())
    if (BB->getName() == "b")
      for (Instruction *I : *BB)
        MulInBody |= I->getOpcode() == Opcode::Mul;
  EXPECT_TRUE(MulInBody);
}

TEST(LICM, HoistsReadOnlyCallFromWritingLoop) {
  // The paper's strlen scenario: the loop stores to a local array that
  // cannot alias the string, so LLVM-style libc knowledge hoists strlen.
  PassRun R(R"(
declare i64 @strlen(ptr) readonly
define i32 @f(i32 %n, ptr %s) {
entry:
  %arr = alloca i32, i64 8
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %i2, %b ]
  %acc = phi i32 [ 0, %entry ], [ %a2, %b ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %b, label %x
b:
  %len = call i64 @strlen(ptr %s)
  %l32 = trunc i64 %len to i32
  %a2 = add i32 %acc, %l32
  store i32 %a2, ptr %arr
  %i2 = add i32 %i, 1
  br label %h
x:
  ret i32 %acc
}
)",
            "licm");
  EXPECT_TRUE(R.Changed);
  bool CallInBody = false;
  for (const auto &BB : R.F->blocks())
    if (BB->getName() == "b")
      for (Instruction *I : *BB)
        CallInBody |= I->getOpcode() == Opcode::Call;
  EXPECT_FALSE(CallInBody);
}

TEST(LICM, CreatesPreheaderWhenNeeded) {
  PassRun R(R"(
define i32 @f(i1 %c, i32 %n, i32 %a) {
entry:
  br i1 %c, label %h, label %other
other:
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ 0, %other ], [ %i2, %h2 ]
  %s = phi i32 [ 1, %entry ], [ 2, %other ], [ %s2, %h2 ]
  %cc = icmp slt i32 %i, %n
  br i1 %cc, label %h2, label %x
h2:
  %inv = add i32 %a, 5
  %s2 = xor i32 %s, %inv
  %i2 = add i32 %i, 1
  br label %h
x:
  ret i32 %s
}
)",
            "licm");
  EXPECT_TRUE(R.Changed);
  expectVerified(*R.Opt);
  R.expectSameBehavior({{RtValue::makeInt(1), RtValue::makeInt(3),
                         RtValue::makeInt(9)},
                        {RtValue::makeInt(0), RtValue::makeInt(2),
                         RtValue::makeInt(-1)}});
}

//===----------------------------------------------------------------------===//
// Loop deletion
//===----------------------------------------------------------------------===//

TEST(LoopDeletion, RemovesEffectFreeUnusedLoop) {
  PassRun R(R"(
define i32 @f(i32 %n, i32 %a) {
entry:
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %i2, %b ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %b, label %x
b:
  %i2 = add i32 %i, 1
  br label %h
x:
  ret i32 %a
}
)",
            "loop-deletion");
  EXPECT_TRUE(R.Changed);
  R.expectSameBehavior({{RtValue::makeInt(3), RtValue::makeInt(7)}});
  // No loop remains.
  DominatorTree DT(*R.F);
  LoopInfo LI(*R.F, DT);
  EXPECT_TRUE(LI.getTopLevelLoops().empty());
}

TEST(LoopDeletion, KeepsLoopsWithStores) {
  PassRun R(R"(
@g = global i32 0
define i32 @f(i32 %n) {
entry:
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %i2, %b ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %b, label %x
b:
  store i32 %i, ptr @g
  %i2 = add i32 %i, 1
  br label %h
x:
  ret i32 0
}
)",
            "loop-deletion");
  EXPECT_FALSE(R.Changed);
}

TEST(LoopDeletion, KeepsLoopsWhoseResultIsUsed) {
  PassRun R(R"(
define i32 @f(i32 %n) {
entry:
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %i2, %b ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %b, label %x
b:
  %i2 = add i32 %i, 1
  br label %h
x:
  ret i32 %i
}
)",
            "loop-deletion");
  EXPECT_FALSE(R.Changed);
  R.expectSameBehavior(intArgs1());
}

//===----------------------------------------------------------------------===//
// Loop unswitching
//===----------------------------------------------------------------------===//

TEST(LoopUnswitch, DuplicatesLoopOnInvariantBranch) {
  PassRun R(R"(
define i32 @f(i32 %n, i1 %p) {
entry:
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %i2, %l ]
  %s = phi i32 [ 0, %entry ], [ %s2, %l ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %b, label %x
b:
  br i1 %p, label %bt, label %be
bt:
  %vt = add i32 %s, %i
  br label %j
be:
  %ve = sub i32 %s, %i
  br label %j
j:
  %s2 = phi i32 [ %vt, %bt ], [ %ve, %be ]
  br label %l
l:
  %i2 = add i32 %i, 1
  br label %h
x:
  ret i32 %s
}
)",
            "loop-unswitch");
  EXPECT_TRUE(R.Changed);
  expectVerified(*R.Opt);
  R.expectSameBehavior({{RtValue::makeInt(5), RtValue::makeInt(1)},
                        {RtValue::makeInt(5), RtValue::makeInt(0)},
                        {RtValue::makeInt(0), RtValue::makeInt(1)}});
  // The invariant branch no longer sits inside either loop version.
  DominatorTree DT(*R.F);
  LoopInfo LI(*R.F, DT);
  for (Loop *L : LI.getLoopsInnermostFirst())
    for (BasicBlock *BB : L->getBlocks()) {
      auto *Br = dyn_cast_or_null<BranchInst>(BB->getTerminator());
      if (!Br || !Br->isConditional())
        continue;
      EXPECT_FALSE(Br->getCondition() == R.F->getArg(1))
          << "invariant branch still inside a loop";
    }
}

TEST(LoopUnswitch, LeavesVariantBranchesAlone) {
  PassRun R(R"(
define i32 @f(i32 %n) {
entry:
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %i2, %l ]
  %s = phi i32 [ 0, %entry ], [ %s2, %l ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %b, label %x
b:
  %odd = and i32 %i, 1
  %isodd = icmp ne i32 %odd, 0
  br i1 %isodd, label %bt, label %be
bt:
  %vt = add i32 %s, %i
  br label %j
be:
  %ve = sub i32 %s, 1
  br label %j
j:
  %s2 = phi i32 [ %vt, %bt ], [ %ve, %be ]
  br label %l
l:
  %i2 = add i32 %i, 1
  br label %h
x:
  ret i32 %s
}
)",
            "loop-unswitch");
  EXPECT_FALSE(R.Changed);
}

//===----------------------------------------------------------------------===//
// DSE
//===----------------------------------------------------------------------===//

TEST(DSE, RemovesOverwrittenStore) {
  PassRun R(R"(
@g = global i32 0
define void @f(i32 %a, i32 %b) {
entry:
  store i32 %a, ptr @g
  store i32 %b, ptr @g
  ret void
}
)",
            "dse");
  EXPECT_TRUE(R.Changed);
  EXPECT_EQ(R.instCount(), 2u);
  R.expectSameBehavior({{RtValue::makeInt(1), RtValue::makeInt(2)}});
}

TEST(DSE, KeepsStoreReadInBetween) {
  PassRun R(R"(
@g = global i32 0
define i32 @f(i32 %a, i32 %b) {
entry:
  store i32 %a, ptr @g
  %v = load i32, ptr @g
  store i32 %b, ptr @g
  ret i32 %v
}
)",
            "dse");
  EXPECT_FALSE(R.Changed);
}

TEST(DSE, RemovesStoresToNeverLoadedAlloca) {
  PassRun R(R"(
define i32 @f(i32 %a) {
entry:
  %p = alloca i32
  store i32 %a, ptr %p
  ret i32 %a
}
)",
            "dse");
  EXPECT_TRUE(R.Changed);
  for (Instruction *I : *R.F->getEntryBlock())
    EXPECT_NE(I->getOpcode(), Opcode::Store);
}

TEST(DSE, RespectsMayAliasReaders) {
  PassRun R(R"(
declare i32 @reader(ptr)
define i32 @f(i32 %a) {
entry:
  %p = alloca i32
  store i32 %a, ptr %p
  %r = call i32 @reader(ptr %p)
  store i32 0, ptr %p
  ret i32 %r
}
)",
            "dse");
  // The first store is observed by the escaped call.
  unsigned Stores = 0;
  for (Instruction *I : *R.F->getEntryBlock())
    Stores += I->getOpcode() == Opcode::Store;
  EXPECT_EQ(Stores, 2u);
}

//===----------------------------------------------------------------------===//
// InstCombine / SimplifyCFG
//===----------------------------------------------------------------------===//

TEST(InstCombine, CanonicalizesLikeLLVM) {
  PassRun R(R"(
define i32 @f(i32 %a) {
entry:
  %dbl = add i32 %a, %a
  %m8 = mul i32 %a, 8
  %sub = add i32 %a, -5
  %cmp = icmp sgt i32 10, %a
  %z = zext i1 %cmp to i32
  %t1 = add i32 %dbl, %m8
  %t2 = add i32 %t1, %sub
  %t3 = add i32 %t2, %z
  ret i32 %t3
}
)",
            "instcombine");
  EXPECT_TRUE(R.Changed);
  R.expectSameBehavior(intArgs1());
  unsigned Shls = 0, Subs = 0;
  for (Instruction *I : *R.F->getEntryBlock()) {
    Shls += I->getOpcode() == Opcode::Shl;
    Subs += I->getOpcode() == Opcode::Sub;
    if (auto *Cmp = dyn_cast<ICmpInst>(I))
      EXPECT_FALSE(isa<ConstantInt>(Cmp->getLHS()))
          << "constant should move to the RHS";
  }
  EXPECT_EQ(Shls, 2u); // a+a and a*8
  EXPECT_EQ(Subs, 1u); // a + (-5)
}

TEST(SimplifyCFG, FoldsConstantBranchesAndMergesChains) {
  PassRun R(R"(
define i32 @f(i32 %a) {
entry:
  br i1 true, label %live, label %dead
live:
  %x = add i32 %a, 1
  br label %tail
dead:
  br label %tail
tail:
  %p = phi i32 [ %x, %live ], [ 0, %dead ]
  ret i32 %p
}
)",
            "simplifycfg");
  EXPECT_TRUE(R.Changed);
  R.expectSameBehavior(intArgs1());
  EXPECT_EQ(R.F->getNumBlocks(), 1u);
}

//===----------------------------------------------------------------------===//
// PassManager and bug injector
//===----------------------------------------------------------------------===//

TEST(PassManagerTest, ParsePipeline) {
  PassManager PM;
  EXPECT_TRUE(PM.parsePipeline(getPaperPipeline()));
  EXPECT_EQ(PM.size(), 7u);
  PassManager Bad;
  EXPECT_FALSE(Bad.parsePipeline("adce,frobnicate"));
  EXPECT_EQ(Bad.size(), 0u);
}

TEST(BugInjectorTest, ChangesBehavior) {
  Context Ctx;
  auto M = parseOrDie(Ctx, R"(
define i32 @f(i32 %a, i32 %b) {
entry:
  %c = icmp slt i32 %a, %b
  %s = select i1 %c, i32 %a, i32 %b
  %d = sub i32 %s, %b
  ret i32 %d
}
)");
  auto Mutant = cloneModule(*M);
  std::string Desc = injectBug(*Mutant->getFunction("f"), 42);
  EXPECT_FALSE(Desc.empty());
  expectVerified(*Mutant);
  // At least one input should differ.
  Interpreter IA(*M), IB(*Mutant);
  bool Differs = false;
  for (int A = -3; A <= 3; ++A)
    for (int B = -3; B <= 3; ++B) {
      auto RA = IA.run(*M->getFunction("f"),
                       {RtValue::makeInt(A), RtValue::makeInt(B)});
      auto RB = IB.run(*Mutant->getFunction("f"),
                       {RtValue::makeInt(A), RtValue::makeInt(B)});
      if (RA.Status == ExecStatus::OK && RB.Status == ExecStatus::OK &&
          !(RA.Value == RB.Value))
        Differs = true;
    }
  EXPECT_TRUE(Differs) << "mutation '" << Desc << "' was a no-op";
}

TEST(GVN, NoCSEAcrossSiblingBranches) {
  // The expression is computed in both arms of a diamond; neither arm
  // dominates the other, so dominator-scoped GVN must NOT merge them
  // (that would break dominance). The join φ is the legal meeting point.
  PassRun R(R"(
define i32 @f(i1 %c, i32 %a, i32 %b) {
entry:
  br i1 %c, label %t, label %e
t:
  %x = add i32 %a, %b
  br label %j
e:
  %y = add i32 %a, %b
  br label %j
j:
  %p = phi i32 [ %x, %t ], [ %y, %e ]
  ret i32 %p
}
)",
            "gvn");
  expectVerified(*R.Opt);
  unsigned Adds = 0;
  for (const auto &BB : R.F->blocks())
    for (Instruction *I : *BB)
      Adds += I->getOpcode() == Opcode::Add;
  EXPECT_EQ(Adds, 2u) << "sibling CSE would violate dominance";
  R.expectSameBehavior({{RtValue::makeInt(1), RtValue::makeInt(2),
                         RtValue::makeInt(3)},
                        {RtValue::makeInt(0), RtValue::makeInt(2),
                         RtValue::makeInt(3)}});
}

TEST(GVN, ScopedTableUnwindsAcrossBranches) {
  // An expression available in one arm must not leak into the other arm's
  // scope (classic scoped-hash-table bug).
  PassRun R(R"(
define i32 @f(i1 %c, i32 %a) {
entry:
  br i1 %c, label %t, label %e
t:
  %x = mul i32 %a, 7
  br label %j
e:
  %y = mul i32 %a, 7
  %z = add i32 %y, 1
  br label %j
j:
  %p = phi i32 [ %x, %t ], [ %z, %e ]
  ret i32 %p
}
)",
            "gvn");
  expectVerified(*R.Opt);
  R.expectSameBehavior({{RtValue::makeInt(1), RtValue::makeInt(5)},
                        {RtValue::makeInt(0), RtValue::makeInt(5)}});
}

TEST(GVN, CSEsDominatingExpressionIntoBothArms) {
  PassRun R(R"(
define i32 @f(i1 %c, i32 %a) {
entry:
  %x = mul i32 %a, 7
  br i1 %c, label %t, label %e
t:
  %y = mul i32 %a, 7
  br label %j
e:
  %z = mul i32 %a, 7
  br label %j
j:
  %p = phi i32 [ %y, %t ], [ %z, %e ]
  %r = add i32 %p, %x
  ret i32 %r
}
)",
            "gvn");
  EXPECT_TRUE(R.Changed);
  unsigned Muls = 0;
  for (const auto &BB : R.F->blocks())
    for (Instruction *I : *BB)
      Muls += I->getOpcode() == Opcode::Mul;
  EXPECT_EQ(Muls, 1u) << "the entry-block def dominates both arms";
  R.expectSameBehavior({{RtValue::makeInt(1), RtValue::makeInt(4)}});
}
