//===- FleetTest.cpp - Sharded validation fleet tests -------------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
// The fleet invariants, end to end over real worker processes (a stock
// `validate_server` binary next to this test in the build tree):
//
//  * a suite served by the router is byte-identical to the batch engine's
//    report at any worker count;
//  * identical concurrent submissions share one engine run, and a
//    Subscribe joins a running job's stream with nothing missing;
//  * a `kill -9`'d worker costs exactly the jobs in flight on it — each is
//    requeued once onto the restarted worker (or failed with WorkerLost
//    once the attempt budget is spent), and the fleet itself keeps serving;
//  * a fleet restarted on its merged store replays 100% warm.
//
// The JobTable's bookkeeping (replay buffers, truncation, requeue frame
// skipping, attempt budgets, sticky affinity) is unit-tested directly — no
// processes — at the bottom of the file.
//
//===----------------------------------------------------------------------===//

#include "fleet/FleetRouter.h"
#include "fleet/JobTable.h"

#include "driver/Report.h"
#include "driver/ValidationEngine.h"
#include "driver/VerdictStore.h"
#include "opt/Pass.h"
#include "support/Trace.h"
#include "workload/Generator.h"
#include "workload/Profiles.h"

#include "TestUtil.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <thread>

#ifndef _WIN32
#include <unistd.h>
#endif

using namespace llvmmd;

namespace {

/// Fresh socket/store paths under the test temp dir, removed on
/// destruction (worker sockets and store shards included).
class FleetDir {
public:
  explicit FleetDir(const std::string &Tag)
      : Sock(::testing::TempDir() + "/llvmmd-fleet-" + Tag + ".sock"),
        Store(::testing::TempDir() + "/llvmmd-fleet-" + Tag + ".vstore") {
    cleanup();
  }
  ~FleetDir() { cleanup(); }

  void cleanup() {
    std::remove(Sock.c_str());
    std::remove(Store.c_str());
    std::remove((Store + ".lock").c_str());
    for (unsigned I = 0; I < 8; ++I) {
      std::remove((Sock + ".w" + std::to_string(I)).c_str());
      std::string Shard = VerdictStore::shardPath(Store, I);
      std::remove(Shard.c_str());
      std::remove((Shard + ".lock").c_str());
    }
  }

  const std::string Sock, Store;
};

/// ctest runs with the build tree as its working directory, where the
/// worker binary lives.
constexpr const char *WorkerBinary = "./validate_server";

FleetConfig smallFleetConfig(const FleetDir &D, unsigned Workers,
                             bool WithStore = false, bool Triage = false) {
  FleetConfig C;
  C.UnixPath = D.Sock;
  C.Workers = Workers;
  C.WorkerBinary = WorkerBinary;
  C.WorkerThreads = 1;
  C.Triage = Triage;
  if (WithStore)
    C.StorePath = D.Store;
  return C;
}

SubmitPayload profileSubmission(const std::string &Name, unsigned Functions) {
  SubmitPayload Req;
  SubmitModule M;
  M.Source = SubmitProfile;
  M.Name = Name;
  M.FnCount = Functions;
  Req.Modules.push_back(std::move(M));
  return Req;
}

/// Connect + handshake against a default-rules fleet.
bool attach(ServerClient &Client, const std::string &Sock,
            std::string *Error = nullptr) {
  RuleConfig Rules;
  return Client.connectUnix(Sock, Error) &&
         Client.handshake(verdictStoreConfigDigest(Rules), nullptr, Error);
}

/// Consumes response events until JobDone (true) or an Error event /
/// transport failure (false). Collects the suite JSON, the JobDone stats,
/// and optionally every streamed event for sequence comparison.
bool drainJob(ServerClient &Client, std::string *SuiteJson,
              JobDonePayload *Done, ErrorPayload *JobError = nullptr,
              std::vector<std::string> *Sequence = nullptr) {
  for (;;) {
    ServerClient::Event E;
    if (!Client.nextEvent(E))
      return false;
    switch (E.K) {
    case ServerClient::Event::Kind::Function:
      if (Sequence)
        Sequence->push_back("fn:" + E.Function.Json);
      break;
    case ServerClient::Event::Kind::ModuleReport:
      if (Sequence)
        Sequence->push_back("mod:" + E.Module.Json);
      break;
    case ServerClient::Event::Kind::SuiteReport:
      if (SuiteJson)
        *SuiteJson = E.SuiteJson;
      if (Sequence)
        Sequence->push_back("suite:" + E.SuiteJson);
      break;
    case ServerClient::Event::Kind::JobDone:
      if (Done)
        *Done = E.Done;
      return true;
    case ServerClient::Event::Kind::Error:
      if (JobError)
        *JobError = E.Error;
      return false;
    }
  }
}

bool runJob(ServerClient &Client, const SubmitPayload &Req,
            std::string *SuiteJson, JobDonePayload *Done = nullptr) {
  if (!Client.submit(Req))
    return false;
  return drainJob(Client, SuiteJson, Done);
}

/// What the batch engine emits for the same submission and cache state.
std::string batchSuiteJSON(const std::vector<SubmitModule> &Mods) {
  Context Ctx;
  EngineConfig EC;
  EC.Threads = 1;
  ValidationEngine Engine(EC);
  SuiteReport SR;
  SR.Pipeline = getPaperPipeline();
  SR.RuleMask = EC.Rules.Mask;
  SR.Stepwise = false;
  SR.Threads = Engine.getThreadCount();
  for (const SubmitModule &M : Mods) {
    BenchmarkProfile P = getProfile(M.Name);
    if (M.FnCount)
      P.FunctionCount = M.FnCount;
    auto Mod = generateBenchmark(Ctx, P);
    SR.Modules.push_back(Engine.run(*Mod, getPaperPipeline()).Report);
  }
  return suiteToJSON(SR);
}

/// Polls \p Pred every 20ms until it holds or \p TimeoutMs elapses.
bool eventually(const std::function<bool()> &Pred, unsigned TimeoutMs = 30000) {
  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(TimeoutMs);
  while (std::chrono::steady_clock::now() < Deadline) {
    if (Pred())
      return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return Pred();
}

} // namespace

//===----------------------------------------------------------------------===//
// Byte-identity and handshake
//===----------------------------------------------------------------------===//

TEST(FleetTest, SuiteByteIdenticalToBatchAcrossWorkerCounts) {
  // The fleet adds process boundaries, sharding, and a router in the
  // middle — and no bytes: any worker count serves the exact batch report.
  std::string Expected =
      batchSuiteJSON(profileSubmission("sqlite", 10).Modules);
  for (unsigned Workers : {1u, 2u, 4u}) {
    FleetDir D("bytes" + std::to_string(Workers));
    FleetRouter Router(smallFleetConfig(D, Workers));
    std::string Error;
    ASSERT_TRUE(Router.start(&Error)) << Error;

    ServerClient Client;
    ASSERT_TRUE(attach(Client, D.Sock));
    std::string Suite;
    ASSERT_TRUE(runJob(Client, profileSubmission("sqlite", 10), &Suite));
    EXPECT_EQ(Suite, Expected) << "at " << Workers << " workers";
    Router.stop();
  }
}

TEST(FleetTest, HandshakeRejectsConfigDigestMismatch) {
  FleetDir D("digest");
  FleetRouter Router(smallFleetConfig(D, 1));
  std::string Error;
  ASSERT_TRUE(Router.start(&Error)) << Error;

  // The router gates the digest itself: a mismatched client is refused at
  // the front door, before any worker sees the submission.
  ServerClient Bad;
  ASSERT_TRUE(Bad.connectUnix(D.Sock));
  RuleConfig Extended;
  Extended.Mask = RS_All;
  std::string Err;
  EXPECT_FALSE(
      Bad.handshake(verdictStoreConfigDigest(Extended), nullptr, &Err));
  EXPECT_NE(Err.find("digest"), std::string::npos) << Err;

  ServerClient Good;
  EXPECT_TRUE(attach(Good, D.Sock));
  EXPECT_TRUE(Good.ping());
  EXPECT_EQ(Router.counters().HandshakesRejected, 1u);
  Router.stop();
}

//===----------------------------------------------------------------------===//
// Dedup and subscribe
//===----------------------------------------------------------------------===//

TEST(FleetTest, DuplicateConcurrentSubmissionsRunEngineOnce) {
  FleetDir D("dedup");
  FleetRouter Router(smallFleetConfig(D, 1));
  std::string Error;
  ASSERT_TRUE(Router.start(&Error)) << Error;

  // Occupy the only worker with a long job so the next submission is
  // deterministically still queued (= live in the table) when its
  // duplicate arrives.
  ServerClient Busy;
  ASSERT_TRUE(attach(Busy, D.Sock));
  ASSERT_TRUE(Busy.submit(profileSubmission("sqlite", 24)));

  SubmitPayload Shared = profileSubmission("hmmer", 8);
  ServerClient First;
  ASSERT_TRUE(attach(First, D.Sock));
  AcceptedPayload FirstAcc;
  bool FirstDedup = true;
  ASSERT_TRUE(First.submit(Shared, &FirstAcc, nullptr, &FirstDedup));
  EXPECT_FALSE(FirstDedup);

  ServerClient Second;
  ASSERT_TRUE(attach(Second, D.Sock));
  AcceptedPayload SecondAcc;
  bool SecondDedup = false;
  ASSERT_TRUE(Second.submit(Shared, &SecondAcc, nullptr, &SecondDedup));
  EXPECT_TRUE(SecondDedup);
  EXPECT_EQ(SecondAcc.JobId, FirstAcc.JobId);

  // Both subscribers get the complete stream, byte for byte.
  std::string SuiteA, SuiteB;
  JobDonePayload DoneA, DoneB;
  std::vector<std::string> SeqA, SeqB;
  EXPECT_TRUE(drainJob(First, &SuiteA, &DoneA, nullptr, &SeqA));
  EXPECT_TRUE(drainJob(Second, &SuiteB, &DoneB, nullptr, &SeqB));
  EXPECT_EQ(SeqA, SeqB);
  EXPECT_EQ(DoneA.JobId, DoneB.JobId);
  EXPECT_EQ(SuiteA, batchSuiteJSON(Shared.Modules));

  EXPECT_TRUE(drainJob(Busy, nullptr, nullptr));
  // Two Submits of the shared payload, one engine run.
  FleetCounters C = Router.counters();
  EXPECT_EQ(C.JobsDeduplicated, 1u);
  EXPECT_EQ(C.JobsSubmitted, 2u); // the busy job + the shared job
  EXPECT_EQ(Router.tableStats().Deduplicated, 1u);
  Router.stop();
}

TEST(FleetTest, SubscribeJoinsRunningJobWithFullStream) {
  FleetDir D("subscribe");
  FleetRouter Router(smallFleetConfig(D, 1));
  std::string Error;
  ASSERT_TRUE(Router.start(&Error)) << Error;

  ServerClient Busy;
  ASSERT_TRUE(attach(Busy, D.Sock));
  ASSERT_TRUE(Busy.submit(profileSubmission("sqlite", 24)));

  ServerClient Submitter;
  ASSERT_TRUE(attach(Submitter, D.Sock));
  AcceptedPayload Acc;
  ASSERT_TRUE(Submitter.submit(profileSubmission("hmmer", 8), &Acc));

  // Attach by id while the job is in flight (queued behind the busy one).
  ServerClient Watcher;
  ASSERT_TRUE(attach(Watcher, D.Sock));
  JobIdPayload Info;
  ASSERT_TRUE(Watcher.subscribe(Acc.JobId, &Info));
  EXPECT_EQ(Info.JobId, Acc.JobId);

  std::string SuiteA, SuiteB;
  JobDonePayload DoneA, DoneB;
  std::vector<std::string> SeqA, SeqB;
  EXPECT_TRUE(drainJob(Submitter, &SuiteA, &DoneA, nullptr, &SeqA));
  EXPECT_TRUE(drainJob(Watcher, &SuiteB, &DoneB, nullptr, &SeqB));
  EXPECT_EQ(SeqA, SeqB);
  EXPECT_FALSE(SuiteB.empty());

  EXPECT_TRUE(drainJob(Busy, nullptr, nullptr));
  EXPECT_EQ(Router.counters().Subscribes, 1u);
  Router.stop();
}

TEST(FleetTest, SubscribeUnknownJobIsRefused) {
  FleetDir D("unknown");
  FleetRouter Router(smallFleetConfig(D, 1));
  std::string Error;
  ASSERT_TRUE(Router.start(&Error)) << Error;

  ServerClient Client;
  ASSERT_TRUE(attach(Client, D.Sock));
  std::string Err;
  EXPECT_FALSE(Client.subscribe(999, nullptr, &Err));
  EXPECT_NE(Err.find("not running"), std::string::npos) << Err;
  // The connection survives the refusal.
  EXPECT_TRUE(Client.ping());
  EXPECT_EQ(Router.counters().UnknownJobErrors, 1u);
  Router.stop();
}

TEST(FleetTest, DisconnectedSubscriberDoesNotAffectTheOther) {
  FleetDir D("unsub");
  FleetRouter Router(smallFleetConfig(D, 1));
  std::string Error;
  ASSERT_TRUE(Router.start(&Error)) << Error;

  ServerClient Busy;
  ASSERT_TRUE(attach(Busy, D.Sock));
  ASSERT_TRUE(Busy.submit(profileSubmission("sqlite", 24)));

  SubmitPayload Shared = profileSubmission("hmmer", 8);
  ServerClient Stayer;
  ASSERT_TRUE(attach(Stayer, D.Sock));
  ASSERT_TRUE(Stayer.submit(Shared));

  ServerClient Leaver;
  ASSERT_TRUE(attach(Leaver, D.Sock));
  bool Dedup = false;
  ASSERT_TRUE(Leaver.submit(Shared, nullptr, nullptr, &Dedup));
  EXPECT_TRUE(Dedup);
  Leaver.close(); // gone before a single response frame

  std::string Suite;
  JobDonePayload Done;
  EXPECT_TRUE(drainJob(Stayer, &Suite, &Done));
  EXPECT_EQ(Suite, batchSuiteJSON(Shared.Modules));
  EXPECT_TRUE(drainJob(Busy, nullptr, nullptr));
  Router.stop();
}

//===----------------------------------------------------------------------===//
// Crash recovery
//===----------------------------------------------------------------------===//

TEST(FleetTest, KilledWorkerJobRequeuedAndCompleted) {
  FleetDir D("kill");
  FleetRouter Router(smallFleetConfig(D, 1));
  std::string Error;
  ASSERT_TRUE(Router.start(&Error)) << Error;

  ServerClient Client;
  ASSERT_TRUE(attach(Client, D.Sock));
  ASSERT_TRUE(Client.submit(profileSubmission("sqlite", 32)));

  // kill -9 the worker as soon as the job is dispatched to it. The
  // monitor reaps and respawns; the dispatcher reconnects and requeues.
  ASSERT_TRUE(eventually(
      [&] { return Router.counters().JobsDispatched >= 1; }));
  ASSERT_TRUE(Router.workers()->killWorker(0));

  std::string Suite;
  JobDonePayload Done;
  EXPECT_TRUE(drainJob(Client, &Suite, &Done));
  // The re-run is byte-identical (engine determinism), so the client sees
  // a complete, correct stream despite the crash in the middle of it.
  EXPECT_EQ(Suite, batchSuiteJSON(profileSubmission("sqlite", 32).Modules));

  FleetCounters C = Router.counters();
  EXPECT_EQ(C.JobsCompleted, 1u);
  EXPECT_LE(C.JobsRequeued, 1u); // the crash costs at most the job in flight
  EXPECT_EQ(C.JobsFailed, 0u);
  EXPECT_GE(Router.workerRestarts() + C.JobsRequeued, 1u);
  Router.stop();
}

TEST(FleetTest, AttemptBudgetExhaustionFailsJobWithWorkerLost) {
  FleetDir D("budget");
  FleetConfig FC = smallFleetConfig(D, 1);
  FC.MaxJobAttempts = 1; // no requeue: the first lost attempt is fatal
  FleetRouter Router(std::move(FC));
  std::string Error;
  ASSERT_TRUE(Router.start(&Error)) << Error;

  ServerClient Client;
  ASSERT_TRUE(attach(Client, D.Sock));
  ASSERT_TRUE(Client.submit(profileSubmission("sqlite", 256)));
  // Kill only once response frames are streaming: a worker lost *before*
  // the submit goes through costs no attempt (the dispatcher's link
  // retry rides out the restart) — the budget is only spent on a stream
  // that dies mid-flight.
  ASSERT_TRUE(eventually(
      [&] { return Router.tableStats().FramesFanned >= 1; }));
  ASSERT_TRUE(Router.workers()->killWorker(0));

  ErrorPayload E;
  EXPECT_FALSE(drainJob(Client, nullptr, nullptr, &E));
  EXPECT_EQ(E.Code, ErrorCode::WorkerLost);
  EXPECT_TRUE(eventually([&] { return Router.counters().JobsFailed == 1; }));
  EXPECT_EQ(Router.counters().JobsRequeued, 0u);

  // The fleet outlives the failure: the restarted worker serves the next
  // submission normally.
  ServerClient Retry;
  ASSERT_TRUE(attach(Retry, D.Sock));
  std::string Suite;
  EXPECT_TRUE(runJob(Retry, profileSubmission("hmmer", 6), &Suite));
  EXPECT_FALSE(Suite.empty());
  Router.stop();
}

TEST(FleetTest, IdleWorkerRestartedAfterKill) {
  FleetDir D("restart");
  FleetRouter Router(smallFleetConfig(D, 2));
  std::string Error;
  ASSERT_TRUE(Router.start(&Error)) << Error;

  WorkerManager *WM = Router.workers();
  pid_t OldPid = WM->pid(1);
  uint64_t OldGen = WM->generation(1);
  ASSERT_GT(OldPid, 0);
  ASSERT_TRUE(WM->killWorker(1));

  // The monitor reaps the corpse and respawns on the same socket with a
  // bumped generation.
  ASSERT_TRUE(eventually([&] {
    return WM->restarts() >= 1 && WM->pid(1) > 0 && WM->pid(1) != OldPid &&
           WM->generation(1) > OldGen;
  }));

  ServerClient Client;
  ASSERT_TRUE(attach(Client, D.Sock));
  std::string Suite;
  EXPECT_TRUE(runJob(Client, profileSubmission("hmmer", 6), &Suite));
  EXPECT_FALSE(Suite.empty());
  Router.stop();
}

//===----------------------------------------------------------------------===//
// Fleet-wide metrics roll-up
//===----------------------------------------------------------------------===//

TEST(FleetTest, MetricsRollUpAggregatesWorkersAndShowsRespawns) {
  FleetDir D("metrics");
  FleetRouter Router(smallFleetConfig(D, 2));
  std::string Error;
  ASSERT_TRUE(Router.start(&Error)) << Error;

  ServerClient Client;
  ASSERT_TRUE(attach(Client, D.Sock));
  std::string Suite;
  ASSERT_TRUE(runJob(Client, profileSubmission("sqlite", 8), &Suite));

  // Kill the idle worker and wait for the monitor to respawn it, so the
  // scrape that follows must show the restart.
  WorkerManager *WM = Router.workers();
  pid_t OldPid = WM->pid(1);
  ASSERT_TRUE(WM->killWorker(1));
  ASSERT_TRUE(eventually(
      [&] { return WM->restarts() >= 1 && WM->pid(1) > 0 &&
                   WM->pid(1) != OldPid; }));

  // Scrape until the respawned worker answers (its listen can lag the
  // monitor's respawn by a beat; a not-yet-up worker reports worker_up 0,
  // which is correct but not what this test is about).
  std::string Text;
  ASSERT_TRUE(eventually([&] {
    return Client.metrics(&Text) &&
           Text.find("llvmmd_fleet_worker_up{worker=\"1\"} 1") !=
               std::string::npos;
  })) << Text;
  // The router's own families: jobs routed, and the respawn the kill
  // caused.
  EXPECT_NE(Text.find("# TYPE llvmmd_fleet_jobs_completed_total counter"),
            std::string::npos)
      << Text;
  EXPECT_NE(Text.find("llvmmd_fleet_jobs_completed_total 1"),
            std::string::npos);
  // Anchor at line start: the bare find would hit the # HELP line.
  size_t RestartPos = Text.find("\nllvmmd_fleet_worker_restarts_total ");
  ASSERT_NE(RestartPos, std::string::npos);
  uint64_t Restarts = std::strtoull(
      Text.c_str() + RestartPos +
          std::strlen("\nllvmmd_fleet_worker_restarts_total "),
      nullptr, 10);
  EXPECT_GE(Restarts, 1u);

  // Per-worker liveness and the workers' own scrapes merged in, each
  // sample re-labeled with its worker — one TYPE group per family even
  // with two workers exporting the same names.
  EXPECT_NE(Text.find("llvmmd_fleet_worker_up{worker=\"0\"} 1"),
            std::string::npos);
  EXPECT_NE(Text.find("llvmmd_server_jobs_completed_total{worker=\"0\"}"),
            std::string::npos);
  EXPECT_NE(Text.find("llvmmd_server_jobs_completed_total{worker=\"1\"}"),
            std::string::npos);
  size_t FirstType =
      Text.find("# TYPE llvmmd_server_jobs_completed_total counter");
  ASSERT_NE(FirstType, std::string::npos);
  EXPECT_EQ(
      Text.find("# TYPE llvmmd_server_jobs_completed_total counter",
                FirstType + 1),
      std::string::npos)
      << "same-name worker families must merge into one TYPE group";
  Router.stop();
}

TEST(FleetTest, ConcurrentScrapesCoalesceOntoOneSweep) {
  FleetDir D("coalesce");
  FleetRouter Router(smallFleetConfig(D, 2));
  std::string Error;
  ASSERT_TRUE(Router.start(&Error)) << Error;

  // Prime the cache, then race a burst of scrapes inside the TTL: they
  // must all be served by at most one additional sweep (zero if the
  // primer's is still fresh), not one sweep each.
  std::string Primer = Router.metricsText();
  ASSERT_NE(Primer.find("llvmmd_fleet_metrics_sweeps_total"),
            std::string::npos)
      << Primer;
  uint64_t Before = Router.counters().MetricsSweeps;

  constexpr unsigned Scrapers = 8;
  std::vector<std::string> Texts(Scrapers);
  std::vector<std::thread> Threads;
  for (unsigned I = 0; I < Scrapers; ++I)
    Threads.emplace_back([&, I] { Texts[I] = Router.metricsText(); });
  for (std::thread &T : Threads)
    T.join();
  uint64_t After = Router.counters().MetricsSweeps;
  EXPECT_LE(After - Before, 1u)
      << Scrapers << " concurrent scrapes cost " << (After - Before)
      << " sweeps";
  for (const std::string &T : Texts)
    EXPECT_NE(T.find("llvmmd_fleet_workers"), std::string::npos);
  Router.stop();
}

//===----------------------------------------------------------------------===//
// Distributed tracing
//===----------------------------------------------------------------------===//

namespace {

/// Tracing is process-global; every enable must pair with a disable on
/// every exit path or later tests in this binary pay for it.
struct TraceGuard {
  TraceGuard() { traceEnable(); }
  ~TraceGuard() { traceDisable(); }
};

/// Distinct `args.trace_id` values in a Chrome trace JSON.
std::set<std::string> traceIdsIn(const std::string &Json) {
  std::set<std::string> Ids;
  size_t Pos = 0;
  while ((Pos = Json.find("\"trace_id\": \"", Pos)) != std::string::npos) {
    Pos += std::strlen("\"trace_id\": \"");
    Ids.insert(Json.substr(Pos, Json.find('"', Pos) - Pos));
  }
  return Ids;
}

/// Distinct pids among events that carry a trace id. Each event renders
/// `"pid": N` before its args, so scan back from every trace_id hit.
std::set<std::string> tracedPidsIn(const std::string &Json) {
  std::set<std::string> Pids;
  size_t Pos = 0;
  while ((Pos = Json.find("\"trace_id\":", Pos)) != std::string::npos) {
    size_t PidKey = Json.rfind("\"pid\": ", Pos);
    if (PidKey != std::string::npos) {
      PidKey += std::strlen("\"pid\": ");
      Pids.insert(Json.substr(PidKey, Json.find(',', PidKey) - PidKey));
    }
    ++Pos;
  }
  return Pids;
}

} // namespace

TEST(FleetTest, TracedFleetJobMergesOneFlameAcrossPids) {
  FleetDir D("trace");
  FleetRouter Router(smallFleetConfig(D, 1));
  std::string Error;
  ASSERT_TRUE(Router.start(&Error)) << Error;

  // Tracing on in the router's process = the fleet's front door mints a
  // trace id per admitted job; the worker self-enables when it sees it
  // and ships its spans home on JobDone.
  TraceGuard G;
  ServerClient Client;
  ASSERT_TRUE(attach(Client, D.Sock));
  std::string Suite;
  JobDonePayload Done;
  ASSERT_TRUE(runJob(Client, profileSubmission("hmmer", 6), &Suite, &Done));

  // The trace id rode JobDone back to the subscriber; the blob did not
  // (it is the router's to merge, not the client's to re-parse).
  EXPECT_NE(Done.TraceId, 0u);
  EXPECT_TRUE(Done.TraceBlob.empty());

  // Byte-identity holds with propagation enabled end to end.
  EXPECT_EQ(Suite, batchSuiteJSON(profileSubmission("hmmer", 6).Modules));

  Router.stop();
  std::string Json = traceToJSON();
  // One flame: a single trace id spanning at least two processes (router
  // dispatch + worker engine), with the phases nested under it.
  std::set<std::string> Ids = traceIdsIn(Json);
  EXPECT_EQ(Ids.size(), 1u) << Json;
  EXPECT_GE(tracedPidsIn(Json).size(), 2u)
      << "expected router and worker pids in one trace:\n"
      << Json;
  EXPECT_NE(Json.find("\"name\": \"dispatch\""), std::string::npos);
  EXPECT_NE(Json.find("\"name\": \"job\""), std::string::npos);
  EXPECT_NE(Json.find("\"name\": \"queue_wait\""), std::string::npos);
  EXPECT_NE(Json.find("\"name\": \"validate\""), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Warm restart
//===----------------------------------------------------------------------===//

TEST(FleetTest, RestartedFleetReplaysEverythingWarm) {
  FleetDir D("warm");
  SubmitPayload Req = profileSubmission("sqlite", 10);
  std::string ColdSuite;

  {
    FleetRouter Router(
        smallFleetConfig(D, 2, /*WithStore=*/true, /*Triage=*/true));
    std::string Error;
    ASSERT_TRUE(Router.start(&Error)) << Error;
    ServerClient Client;
    ASSERT_TRUE(attach(Client, D.Sock));
    JobDonePayload Done;
    ASSERT_TRUE(runJob(Client, Req, &ColdSuite, &Done));
    EXPECT_GT(Done.Misses, 0u); // genuinely cold
    Router.stop();              // workers checkpoint; shards merge
  }

  VerdictStore::HeaderInfo Base = VerdictStore::peekHeader(D.Store);
  ASSERT_TRUE(Base.ok()) << Base.Message;
  EXPECT_GT(Base.VerdictEntries, 0u);

  {
    FleetRouter Router(
        smallFleetConfig(D, 2, /*WithStore=*/true, /*Triage=*/true));
    std::string Error;
    ASSERT_TRUE(Router.start(&Error)) << Error;
    ServerClient Client;
    ASSERT_TRUE(attach(Client, D.Sock));
    std::string WarmSuite;
    JobDonePayload Done;
    ASSERT_TRUE(runJob(Client, Req, &WarmSuite, &Done));
    // 100% warm: no verdict and no triage result computed from scratch —
    // and the replayed report carries the same verdict bytes.
    EXPECT_EQ(Done.Misses, 0u);
    EXPECT_EQ(Done.TriageMisses, 0u);
    EXPECT_GT(Done.Hits + Done.WarmHits + Done.SkippedIdentical, 0u);
    Router.stop();
  }
}

//===----------------------------------------------------------------------===//
// JobTable bookkeeping (no processes)
//===----------------------------------------------------------------------===//

namespace {

struct CaptureSink {
  JobTable::SinkPtr S;
  std::vector<std::pair<FrameType, std::string>> Frames;
  bool Fail = false;

  CaptureSink() : S(std::make_shared<JobTable::Sink>()) {
    S->Write = [this](FrameType T, const std::string &P) {
      if (Fail)
        return false;
      Frames.emplace_back(T, P);
      return true;
    };
  }
};

SubmitPayload inlineSubmission(const std::string &Name) {
  SubmitPayload Req;
  SubmitModule M;
  M.Source = SubmitProfile;
  M.Name = Name;
  M.FnCount = 4;
  Req.Modules.push_back(M);
  return Req;
}

} // namespace

TEST(FleetTest, JobTableDedupReplaysBufferedFrames) {
  JobTable::Config C;
  C.Workers = 2;
  JobTable T(C);

  CaptureSink A;
  auto R1 = T.submit(inlineSubmission("sqlite"), A.S,
                     [](uint64_t, bool Created, uint32_t) {
                       EXPECT_TRUE(Created);
                     });
  ASSERT_TRUE(R1.Created);

  T.beginAttempt(R1.J);
  T.deliver(R1.J, FrameType::Function, "f1");
  T.deliver(R1.J, FrameType::Function, "f2");

  // The duplicate joins mid-stream: the reply says two frames were
  // replayed, and the sink holds exactly the stream so far.
  CaptureSink B;
  uint32_t Replayed = 0;
  auto R2 = T.submit(inlineSubmission("sqlite"), B.S,
                     [&](uint64_t Id, bool Created, uint32_t N) {
                       EXPECT_FALSE(Created);
                       EXPECT_EQ(Id, R1.J->Id);
                       Replayed = N;
                     });
  EXPECT_FALSE(R2.Created);
  EXPECT_EQ(Replayed, 2u);
  ASSERT_EQ(B.Frames.size(), 2u);
  EXPECT_EQ(B.Frames[1].second, "f2");

  // A different submission is NOT deduplicated.
  CaptureSink Other;
  auto R3 = T.submit(inlineSubmission("hmmer"), Other.S,
                     [](uint64_t, bool, uint32_t) {});
  EXPECT_TRUE(R3.Created);

  T.deliver(R1.J, FrameType::SuiteReport, "s");
  JobDonePayload Done;
  T.complete(R1.J, Done);
  ASSERT_EQ(A.Frames.size(), 4u);
  ASSERT_EQ(B.Frames.size(), 4u);
  EXPECT_EQ(A.Frames.back().first, FrameType::JobDone);
  JobDonePayload DoneOut;
  ASSERT_TRUE(decodeJobDone(A.Frames.back().second, DoneOut));
  EXPECT_EQ(DoneOut.JobId, R1.J->Id); // rewritten to the router's id
  EXPECT_EQ(T.liveJobs(), 1u);        // only the hmmer job remains
  EXPECT_EQ(T.stats().Deduplicated, 1u);
}

TEST(FleetTest, JobTableTruncatedReplayRefusesAttachAndRedupes) {
  JobTable::Config C;
  C.ReplayBufferBytes = 24; // tiny: the second frame blows the window
  JobTable T(C);

  CaptureSink A;
  auto R = T.submit(inlineSubmission("sqlite"), A.S,
                    [](uint64_t, bool, uint32_t) {});
  T.beginAttempt(R.J);
  T.deliver(R.J, FrameType::Function, "0123456789");
  T.deliver(R.J, FrameType::Function, "0123456789"); // past the cap
  EXPECT_EQ(T.stats().ReplayTruncations, 1u);
  // The live subscriber still streams...
  EXPECT_EQ(A.Frames.size(), 2u);

  // ...but nothing can attach anymore: the replay would have a hole.
  CaptureSink B;
  std::string Err;
  EXPECT_EQ(T.subscribeJob(R.J->Id, B.S, [](uint64_t, bool, uint32_t) {},
                           &Err),
            nullptr);
  EXPECT_NE(Err.find("replay window"), std::string::npos) << Err;

  // A duplicate Submit gets a fresh job instead of a holey stream.
  CaptureSink C2;
  auto R2 = T.submit(inlineSubmission("sqlite"), C2.S,
                     [](uint64_t, bool, uint32_t) {});
  EXPECT_TRUE(R2.Created);
  EXPECT_NE(R2.J->Id, R.J->Id);
  // Same key, same sticky worker.
  EXPECT_EQ(R2.J->WorkerIndex, R.J->WorkerIndex);

  // The old job's finish must not evict the new job's key mapping.
  JobDonePayload Done;
  T.complete(R.J, Done);
  CaptureSink D2;
  auto R3 = T.submit(inlineSubmission("sqlite"), D2.S,
                     [](uint64_t, bool, uint32_t) {});
  EXPECT_FALSE(R3.Created);
  EXPECT_EQ(R3.J->Id, R2.J->Id);
}

TEST(FleetTest, JobTableRequeueSkipsAlreadyDeliveredFrames) {
  JobTable T(JobTable::Config{});
  CaptureSink A;
  auto R = T.submit(inlineSubmission("sqlite"), A.S,
                    [](uint64_t, bool, uint32_t) {});

  // Attempt 1 streams two frames, then the worker dies.
  T.beginAttempt(R.J);
  T.deliver(R.J, FrameType::Function, "f1");
  T.deliver(R.J, FrameType::Function, "f2");
  ASSERT_TRUE(T.requeueOrFail(R.J));

  // Attempt 2 re-produces the stream from the start (determinism); the
  // subscriber must see f1/f2 exactly once and f3 for the first time.
  T.beginAttempt(R.J);
  T.deliver(R.J, FrameType::Function, "f1");
  T.deliver(R.J, FrameType::Function, "f2");
  T.deliver(R.J, FrameType::Function, "f3");
  JobDonePayload Done;
  T.complete(R.J, Done);

  ASSERT_EQ(A.Frames.size(), 4u); // f1, f2, f3, JobDone
  EXPECT_EQ(A.Frames[0].second, "f1");
  EXPECT_EQ(A.Frames[1].second, "f2");
  EXPECT_EQ(A.Frames[2].second, "f3");
  EXPECT_EQ(A.Frames[3].first, FrameType::JobDone);
}

TEST(FleetTest, JobTableAttemptBudgetFailsJobWithWorkerLost) {
  JobTable::Config C;
  C.MaxJobAttempts = 2;
  JobTable T(C);
  CaptureSink A;
  auto R = T.submit(inlineSubmission("sqlite"), A.S,
                    [](uint64_t, bool, uint32_t) {});

  T.beginAttempt(R.J);
  EXPECT_TRUE(T.requeueOrFail(R.J)); // one requeue left
  T.beginAttempt(R.J);
  EXPECT_FALSE(T.requeueOrFail(R.J)); // budget spent: job failed

  ASSERT_EQ(A.Frames.size(), 1u);
  EXPECT_EQ(A.Frames[0].first, FrameType::Error);
  ErrorPayload E;
  ASSERT_TRUE(decodeError(A.Frames[0].second, E));
  EXPECT_EQ(E.Code, ErrorCode::WorkerLost);
  EXPECT_EQ(T.liveJobs(), 0u);
}

TEST(FleetTest, JobTableStickyAffinitySpreadsDistinctKeys) {
  JobTable::Config C;
  C.Workers = 4;
  JobTable T(C);

  auto WorkerOf = [&](const std::string &Name) {
    CaptureSink S;
    auto R = T.submit(inlineSubmission(Name), S.S,
                      [](uint64_t, bool, uint32_t) {});
    JobDonePayload Done;
    unsigned W = R.J->WorkerIndex;
    T.complete(R.J, Done); // finished: the next same-key submit re-creates
    return W;
  };

  unsigned A = WorkerOf("a"), B = WorkerOf("b"), C1 = WorkerOf("c"),
           D = WorkerOf("d");
  // Distinct keys take distinct round-robin slots...
  EXPECT_EQ((A + 1) % 4, B);
  EXPECT_EQ((B + 1) % 4, C1);
  EXPECT_EQ((C1 + 1) % 4, D);
  // ...and a key that comes back lands on the worker it warmed, even
  // though its first job is long gone.
  EXPECT_EQ(WorkerOf("a"), A);
  EXPECT_EQ(WorkerOf("c"), C1);
}
