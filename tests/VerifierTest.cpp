//===- VerifierTest.cpp - IR verifier tests ------------------------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "ir/IRBuilder.h"

#include <gtest/gtest.h>

using namespace llvmmd;
using namespace llvmmd::testutil;

namespace {

std::vector<std::string> verify(Function *F) {
  std::vector<std::string> Errors;
  verifyFunction(*F, Errors);
  return Errors;
}

} // namespace

TEST(Verifier, AcceptsWellFormed) {
  Context Ctx;
  auto M = parseOrDie(Ctx, R"(
define i32 @f(i32 %a) {
entry:
  %c = icmp sgt i32 %a, 0
  br i1 %c, label %t, label %e
t:
  br label %j
e:
  br label %j
j:
  %p = phi i32 [ 1, %t ], [ 2, %e ]
  ret i32 %p
}
)");
  expectVerified(*M);
}

TEST(Verifier, MissingTerminator) {
  Context Ctx;
  Module M(Ctx);
  Function *F =
      M.createFunction(Ctx.getFunctionTy(Ctx.getVoidTy(), {}), "f");
  IRBuilder B(Ctx);
  B.setInsertPoint(F->createBlock("entry"));
  B.createAlloca(Ctx.getInt32Ty());
  auto Errors = verify(F);
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("terminator"), std::string::npos);
}

TEST(Verifier, EmptyBlock) {
  Context Ctx;
  Module M(Ctx);
  Function *F =
      M.createFunction(Ctx.getFunctionTy(Ctx.getVoidTy(), {}), "f");
  F->createBlock("entry");
  EXPECT_FALSE(verify(F).empty());
}

TEST(Verifier, PhiMismatchesPredecessors) {
  Context Ctx;
  Module M(Ctx);
  Type *I32 = Ctx.getInt32Ty();
  Function *F = M.createFunction(Ctx.getFunctionTy(I32, {}), "f");
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Next = F->createBlock("next");
  IRBuilder B(Ctx);
  B.setInsertPoint(Entry);
  B.createBr(Next);
  B.setInsertPoint(Next);
  PhiNode *P = B.createPhi(I32, "p");
  // Wrong: no entry for the single predecessor.
  B.createRet(P);
  auto Errors = verify(F);
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("phi"), std::string::npos);
}

TEST(Verifier, UseBeforeDefInBlock) {
  Context Ctx;
  Module M(Ctx);
  Type *I32 = Ctx.getInt32Ty();
  Function *F = M.createFunction(Ctx.getFunctionTy(I32, {I32}), "f");
  BasicBlock *Entry = F->createBlock("entry");
  IRBuilder B(Ctx);
  B.setInsertPoint(Entry);
  Value *X = B.createAdd(F->getArg(0), Ctx.getInt32(1), "x");
  Value *Y = B.createAdd(X, Ctx.getInt32(2), "y");
  B.createRet(Y);
  // Manually move y before x to break dominance within the block.
  auto *YI = cast<Instruction>(Y);
  Entry->remove(YI);
  Entry->insert(Entry->begin(), YI);
  auto Errors = verify(F);
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("use before def"), std::string::npos);
}

TEST(Verifier, UseNotDominatedAcrossBlocks) {
  Context Ctx;
  auto R = parseModule(Ctx, R"(
define i32 @f(i1 %c) {
entry:
  br i1 %c, label %t, label %e
t:
  %x = add i32 1, 2
  br label %j
e:
  br label %j
j:
  ret i32 %x
}
)");
  ASSERT_TRUE(static_cast<bool>(R));
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyModule(*R.M, Errors));
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("dominate"), std::string::npos);
}

TEST(Verifier, ReturnTypeMismatch) {
  Context Ctx;
  auto R = parseModule(Ctx, R"(
define i32 @f() {
entry:
  ret void
}
)");
  ASSERT_TRUE(static_cast<bool>(R));
  std::vector<std::string> Errors;
  EXPECT_FALSE(verifyModule(*R.M, Errors));
}

TEST(Verifier, PhiIncomingDominatesEdge) {
  // The incoming value must dominate the *edge* (i.e. the predecessor),
  // not the phi's block. Loop back edges are the canonical legal case.
  Context Ctx;
  auto M = parseOrDie(Ctx, R"(
define i32 @f(i32 %n) {
entry:
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %inc, %h2 ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %h2, label %x
h2:
  %inc = add i32 %i, 1
  br label %h
x:
  ret i32 %i
}
)");
  expectVerified(*M);
}
