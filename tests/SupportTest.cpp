//===- SupportTest.cpp - Casting and hashing unit tests ----------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//

#include "support/Casting.h"
#include "support/Hashing.h"

#include "ir/Context.h"
#include "ir/Instruction.h"

#include <gtest/gtest.h>

using namespace llvmmd;

TEST(Casting, IsaAndDynCast) {
  Context Ctx;
  Value *C = Ctx.getInt32(42);
  EXPECT_TRUE(isa<ConstantInt>(C));
  EXPECT_TRUE(isa<Constant>(C));
  EXPECT_FALSE(isa<ConstantFP>(C));
  EXPECT_NE(dyn_cast<ConstantInt>(C), nullptr);
  EXPECT_EQ(dyn_cast<ConstantFP>(C), nullptr);
  EXPECT_EQ(cast<ConstantInt>(C)->getSExtValue(), 42);
}

TEST(Casting, VariadicIsa) {
  Context Ctx;
  Value *C = Ctx.getFloat(1.5);
  bool Either = isa<ConstantInt, ConstantFP>(C);
  EXPECT_TRUE(Either);
  bool Neither = isa<ConstantPointerNull, UndefValue>(C);
  EXPECT_FALSE(Neither);
}

TEST(Casting, DynCastOrNull) {
  Value *Null = nullptr;
  EXPECT_EQ(dyn_cast_or_null<ConstantInt>(Null), nullptr);
}

TEST(Hashing, BytesDeterministic) {
  const char Data[] = "value-graph";
  EXPECT_EQ(hashBytes(Data, sizeof(Data)), hashBytes(Data, sizeof(Data)));
  EXPECT_NE(hashBytes(Data, 4), hashBytes(Data, 5));
}

TEST(Hashing, CombineOrderSensitive) {
  uint64_t A = hashCombine(hashCombine(0, 1), 2);
  uint64_t B = hashCombine(hashCombine(0, 2), 1);
  EXPECT_NE(A, B);
}

TEST(Rng, DeterministicStreams) {
  SplitMixRng A(123), B(123), C(124);
  for (int I = 0; I < 100; ++I) {
    uint64_t VA = A.next();
    EXPECT_EQ(VA, B.next());
    (void)C.next();
  }
  SplitMixRng A2(123), C2(124);
  EXPECT_NE(A2.next(), C2.next());
}

TEST(Rng, RangeBounds) {
  SplitMixRng R(7);
  for (int I = 0; I < 1000; ++I) {
    int64_t V = R.range(-5, 5);
    EXPECT_GE(V, -5);
    EXPECT_LE(V, 5);
    EXPECT_LT(R.below(10), 10u);
  }
}

TEST(SignExtend, Canonicalization) {
  EXPECT_EQ(signExtend(0xFF, 8), -1);
  EXPECT_EQ(signExtend(0x7F, 8), 127);
  EXPECT_EQ(signExtend(0x80, 8), -128);
  EXPECT_EQ(signExtend(-1, 64), -1);
  EXPECT_EQ(zeroExtend(-1, 8), 0xFFu);
  EXPECT_EQ(zeroExtend(-1, 32), 0xFFFFFFFFu);
}
