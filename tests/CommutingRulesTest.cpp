//===- CommutingRulesTest.cpp - η push-down and unswitch distribution -----------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
// The "commuting" rule set of Figure 6's last configuration: pushing η
// nodes toward their μ nodes, distributing η over pure structure, letting
// readonly calls and loads see through loop memory, and the γ-out-of-μ
// distribution that validates loop unswitching.
//
//===----------------------------------------------------------------------===//

#include "normalize/Normalizer.h"

#include "ir/Context.h"

#include <gtest/gtest.h>

using namespace llvmmd;

namespace {

struct CommuteFixture : ::testing::Test {
  Context Ctx;
  ValueGraph G;
  Type *I32 = Ctx.getInt32Ty();
  Type *I1 = Ctx.getInt1Ty();

  NodeId normalize(std::vector<NodeId> Roots, unsigned Mask) {
    RuleConfig C;
    C.Mask = Mask;
    normalizeGraph(G, Roots, C);
    return G.find(Roots.front());
  }

  /// μ(init, μ+step) — a simple induction stream.
  NodeId makeCounter(NodeId Init, NodeId Step) {
    NodeId Mu = G.makeMu(I32);
    G.setMuOperands(Mu, Init, G.getOp(Opcode::Add, I32, {Mu, Step}));
    return Mu;
  }
};

} // namespace

TEST_F(CommuteFixture, EtaDistributesOverOps) {
  // η(c, μ1 + μ2) must become η(c,μ1) + η(c,μ2): the hoisted form.
  NodeId C = G.getParam(0, I1);
  NodeId Mu1 = makeCounter(G.getConstInt(I32, 0), G.getConstInt(I32, 1));
  NodeId Mu2 = makeCounter(G.getConstInt(I32, 5), G.getConstInt(I32, 2));
  NodeId Sum = G.getOp(Opcode::Add, I32, {Mu1, Mu2});
  NodeId Eta = G.getEta(I32, C, Sum);
  // The already-hoisted twin, as the optimized function would produce it.
  NodeId Twin = G.getOp(Opcode::Add, I32,
                        {G.getEta(I32, C, Mu1), G.getEta(I32, C, Mu2)});
  normalize({Eta, Twin}, RS_Paper);
  EXPECT_EQ(G.find(Eta), G.find(Twin));
}

TEST_F(CommuteFixture, EtaOverLoadDistributes) {
  NodeId C = G.getParam(0, I1);
  NodeId P = G.getParam(1, Ctx.getPtrTy());
  NodeId MemMu = G.makeMu(nullptr);
  NodeId St = G.getStore(G.getParam(2, I32), P, MemMu);
  G.setMuOperands(MemMu, G.getInitialMem(), St);
  NodeId Ld = G.getLoad(I32, P, MemMu);
  NodeId Eta = G.getEta(I32, C, Ld);
  NodeId Twin = G.getLoad(I32, G.getEta(Ctx.getPtrTy(), C, P),
                          G.getEta(nullptr, C, MemMu));
  normalize({Eta, Twin}, RS_Paper);
  EXPECT_EQ(G.find(Eta), G.find(Twin));
}

TEST_F(CommuteFixture, LoadSeesThroughLoopWithDisjointStores) {
  // load(g, μ_mem) where the loop only stores to a non-escaping local:
  // the load reads the loop's initial memory (mirrors LICM).
  NodeId Mem0 = G.getInitialMem();
  NodeId One = G.getConstInt(Ctx.getInt64Ty(), 1);
  NodeId Local = G.getAlloc(One, Mem0, 4);
  NodeId MemA = G.getAllocMem(Local);
  NodeId Glob = G.getGlobal("g", false, Ctx.getPtrTy());
  NodeId MemMu = G.makeMu(nullptr);
  NodeId St = G.getStore(G.getParam(0, I32), Local, MemMu);
  G.setMuOperands(MemMu, MemA, St);
  NodeId Ld = G.getLoad(I32, Glob, MemMu);
  NodeId Hoisted = G.getLoad(I32, Glob, MemA);
  EXPECT_NE(G.find(Ld), G.find(Hoisted));
  normalize({Ld, Hoisted}, RS_Paper);
  EXPECT_EQ(G.find(Ld), G.find(Hoisted));
}

TEST_F(CommuteFixture, LoadBlockedByAliasingStoreInLoop) {
  NodeId Mem0 = G.getInitialMem();
  NodeId Glob = G.getGlobal("g", false, Ctx.getPtrTy());
  NodeId MemMu = G.makeMu(nullptr);
  NodeId St = G.getStore(G.getParam(0, I32), Glob, MemMu);
  G.setMuOperands(MemMu, Mem0, St);
  NodeId Ld = G.getLoad(I32, Glob, MemMu);
  normalize({Ld}, RS_Paper);
  // The store targets the loaded location: no hoisting.
  EXPECT_EQ(G.node(G.find(Ld)).Kind, NodeKind::Load);
  EXPECT_EQ(G.node(G.operand(G.find(Ld), 1)).Kind, NodeKind::Mu);
}

TEST_F(CommuteFixture, ReadOnlyCallSeesThroughLoop) {
  // strlen(p, μ_mem) with only local stores in the loop: with RS_Libc the
  // call reads the initial memory (validating LICM's strlen hoist);
  // without it, the alarm stays — the paper's Figure 7 story.
  NodeId Mem0 = G.getInitialMem();
  NodeId One = G.getConstInt(Ctx.getInt64Ty(), 1);
  NodeId Local = G.getAlloc(One, Mem0, 4);
  NodeId MemA = G.getAllocMem(Local);
  NodeId P = G.getParam(0, Ctx.getPtrTy());
  NodeId MemMu = G.makeMu(nullptr);
  NodeId St = G.getStore(G.getParam(1, I32), Local, MemMu);
  G.setMuOperands(MemMu, MemA, St);
  NodeId Call = G.getCall("strlen", MemoryEffect::ReadOnly,
                          Ctx.getInt64Ty(), {P, MemMu});
  NodeId Hoisted = G.getCall("strlen", MemoryEffect::ReadOnly,
                             Ctx.getInt64Ty(), {P, MemA});
  NodeId CallRoot = Call, HoistedRoot = Hoisted;
  normalize({CallRoot, HoistedRoot}, RS_Paper);
  EXPECT_NE(G.find(Call), G.find(Hoisted)) << "needs libc knowledge";
  normalize({CallRoot, HoistedRoot}, RS_Paper | RS_Libc);
  EXPECT_EQ(G.find(Call), G.find(Hoisted));
}

TEST_F(CommuteFixture, UnswitchDistributesInvariantGamma) {
  // fi: η(e, μ(0, γ(c, μ+1, μ-1)))  — branch inside the loop.
  // fo: γ(c, η(e_t, μ_t(0, μ_t+1)), ¬c, η(e_f, μ_f(0, μ_f-1))).
  NodeId C = G.getParam(0, I1);
  NodeId NotC = G.getOp(Opcode::Xor, I1, {C, G.getConstBool(I1, true)});
  NodeId Zero = G.getConstInt(I32, 0);
  NodeId One = G.getConstInt(I32, 1);
  NodeId N = G.getParam(1, I32);

  // Original: one loop with the γ inside.
  NodeId Mu = G.makeMu(I32);
  NodeId Inc = G.getOp(Opcode::Add, I32, {Mu, One});
  NodeId Dec = G.getOp(Opcode::Sub, I32, {Mu, One});
  G.setMuOperands(Mu, Zero, G.getGamma(I32, {{C, Inc}, {NotC, Dec}}));
  NodeId Guard = G.getOp(Opcode::ICmp, I1, {Mu, N},
                         static_cast<uint8_t>(ICmpPred::SLT));
  NodeId Fi = G.getEta(I32, Guard, Mu);

  // Optimized: two specialized loops under the invariant condition.
  NodeId MuT = G.makeMu(I32);
  G.setMuOperands(MuT, Zero, G.getOp(Opcode::Add, I32, {MuT, One}));
  NodeId GuardT = G.getOp(Opcode::ICmp, I1, {MuT, N},
                          static_cast<uint8_t>(ICmpPred::SLT));
  NodeId MuF = G.makeMu(I32);
  G.setMuOperands(MuF, Zero, G.getOp(Opcode::Sub, I32, {MuF, One}));
  NodeId GuardF = G.getOp(Opcode::ICmp, I1, {MuF, N},
                          static_cast<uint8_t>(ICmpPred::SLT));
  NodeId Fo = G.getGamma(I32, {{C, G.getEta(I32, GuardT, MuT)},
                               {NotC, G.getEta(I32, GuardF, MuF)}});

  EXPECT_NE(G.find(Fi), G.find(Fo));
  normalize({Fi, Fo}, RS_Paper);
  EXPECT_EQ(G.find(Fi), G.find(Fo))
      << "the unswitch distribution rule must reconcile the two shapes";
}

TEST_F(CommuteFixture, UnswitchLeavesVariantGammasAlone) {
  // A γ whose condition depends on the loop must not be distributed.
  NodeId Zero = G.getConstInt(I32, 0);
  NodeId One = G.getConstInt(I32, 1);
  NodeId Mu = G.makeMu(I32);
  NodeId Odd = G.getOp(Opcode::ICmp, I1, {Mu, Zero},
                       static_cast<uint8_t>(ICmpPred::SGT));
  NodeId NotOdd = G.getOp(Opcode::Xor, I1, {Odd, G.getConstBool(I1, true)});
  NodeId Inc = G.getOp(Opcode::Add, I32, {Mu, One});
  NodeId Dec = G.getOp(Opcode::Sub, I32, {Mu, One});
  G.setMuOperands(Mu, Zero, G.getGamma(I32, {{Odd, Inc}, {NotOdd, Dec}}));
  NodeId Guard = G.getOp(Opcode::ICmp, I1, {Mu, G.getParam(0, I32)},
                         static_cast<uint8_t>(ICmpPred::SLT));
  NodeId Fi = G.getEta(I32, Guard, Mu);
  normalize({Fi}, RS_Paper);
  // Still an η over a μ (possibly reorganized, but not a γ at the top).
  EXPECT_NE(G.node(G.find(Fi)).Kind, NodeKind::Gamma);
}

TEST_F(CommuteFixture, CommutingIsOptIn) {
  // Without RS_Commuting the unswitched shapes stay apart.
  NodeId C = G.getParam(0, I1);
  NodeId NotC = G.getOp(Opcode::Xor, I1, {C, G.getConstBool(I1, true)});
  NodeId Zero = G.getConstInt(I32, 0);
  NodeId One = G.getConstInt(I32, 1);
  NodeId Mu = G.makeMu(I32);
  NodeId Inc = G.getOp(Opcode::Add, I32, {Mu, One});
  NodeId Dec = G.getOp(Opcode::Sub, I32, {Mu, One});
  G.setMuOperands(Mu, Zero, G.getGamma(I32, {{C, Inc}, {NotC, Dec}}));
  NodeId Guard = G.getOp(Opcode::ICmp, I1, {Mu, G.getParam(1, I32)},
                         static_cast<uint8_t>(ICmpPred::SLT));
  NodeId Fi = G.getEta(I32, Guard, Mu);
  NodeId MuT = G.makeMu(I32);
  G.setMuOperands(MuT, Zero, G.getOp(Opcode::Add, I32, {MuT, One}));
  NodeId GuardT = G.getOp(Opcode::ICmp, I1, {MuT, G.getParam(1, I32)},
                          static_cast<uint8_t>(ICmpPred::SLT));
  NodeId MuF = G.makeMu(I32);
  G.setMuOperands(MuF, Zero, G.getOp(Opcode::Sub, I32, {MuF, One}));
  NodeId GuardF = G.getOp(Opcode::ICmp, I1, {MuF, G.getParam(1, I32)},
                          static_cast<uint8_t>(ICmpPred::SLT));
  NodeId Fo = G.getGamma(I32, {{C, G.getEta(I32, GuardT, MuT)},
                               {NotC, G.getEta(I32, GuardF, MuF)}});
  unsigned NoCommute = RS_Paper & ~RS_Commuting;
  normalize({Fi, Fo}, NoCommute);
  EXPECT_NE(G.find(Fi), G.find(Fo));
}
