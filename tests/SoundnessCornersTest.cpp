//===- SoundnessCornersTest.cpp - Corner cases that keep the system honest ------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
// Each test here pins a behavior whose *failure* would be a silent
// soundness bug — in the optimizer (miscompile) or in the validator
// (accepting a miscompile). Several were candidate bugs during
// development; they stay as regression armor.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "ir/Cloning.h"
#include "ir/Interpreter.h"
#include "opt/Pass.h"
#include "validator/Validator.h"

#include <gtest/gtest.h>

using namespace llvmmd;
using namespace llvmmd::testutil;

namespace {

ValidationResult validateSrc(Context &Ctx, const char *A, const char *B,
                             unsigned Mask = RS_All) {
  auto MA = parseOrDie(Ctx, A);
  auto MB = parseOrDie(Ctx, B);
  RuleConfig C;
  C.Mask = Mask;
  C.M = MA.get();
  auto R = validatePair(*MA->definedFunctions().front(),
                        *MB->definedFunctions().front(), C);
  // Modules die here; the result is value-only.
  return R;
}

} // namespace

//===----------------------------------------------------------------------===//
// Validator: memory orderings
//===----------------------------------------------------------------------===//

TEST(MemorySoundness, RejectsReorderedMayAliasStores) {
  Context Ctx;
  auto R = validateSrc(Ctx, R"(
define void @f(ptr %p, ptr %q, i32 %a, i32 %b) {
entry:
  store i32 %a, ptr %p
  store i32 %b, ptr %q
  ret void
}
)",
                       R"(
define void @f(ptr %p, ptr %q, i32 %a, i32 %b) {
entry:
  store i32 %b, ptr %q
  store i32 %a, ptr %p
  ret void
}
)");
  EXPECT_FALSE(R.Validated)
      << "p and q may alias: store order is observable";
}

TEST(MemorySoundness, AcceptsReorderedNoAliasStores) {
  Context Ctx;
  auto R = validateSrc(Ctx, R"(
@g = global i32 0
@h = global i32 0
define void @f(i32 %a, i32 %b) {
entry:
  store i32 %a, ptr @g
  store i32 %b, ptr @h
  ret void
}
)",
                       R"(
@g = global i32 0
@h = global i32 0
define void @f(i32 %a, i32 %b) {
entry:
  store i32 %b, ptr @h
  store i32 %a, ptr @g
  ret void
}
)");
  EXPECT_TRUE(R.Validated)
      << "distinct globals cannot alias: reordering is invisible";
}

TEST(MemorySoundness, RejectsNarrowedStore) {
  Context Ctx;
  auto R = validateSrc(Ctx, R"(
@g = global i32 0
define void @f(i32 %a) {
entry:
  store i32 %a, ptr @g
  ret void
}
)",
                       R"(
@g = global i32 0
define void @f(i32 %a) {
entry:
  %t = trunc i32 %a to i8
  store i8 %t, ptr @g
  ret void
}
)");
  EXPECT_FALSE(R.Validated) << "narrowing a store changes memory";
}

TEST(MemorySoundness, RejectsLoadMovedAboveAliasingStore) {
  Context Ctx;
  auto R = validateSrc(Ctx, R"(
define i32 @f(ptr %p, ptr %q) {
entry:
  store i32 7, ptr %q
  %v = load i32, ptr %p
  ret i32 %v
}
)",
                       R"(
define i32 @f(ptr %p, ptr %q) {
entry:
  %v = load i32, ptr %p
  store i32 7, ptr %q
  ret i32 %v
}
)");
  EXPECT_FALSE(R.Validated)
      << "the load may observe the store when p aliases q";
}

TEST(MemorySoundness, GammaSelectedPointerIsNotNoAlias) {
  // A store through φ(t1, t2) may hit t2; forwarding a load of t2 over it
  // would be unsound. The validator must keep the alarm when the selected
  // pointer genuinely varies.
  Context Ctx;
  auto R = validateSrc(Ctx, R"(
define i32 @f(i1 %c, i32 %m) {
entry:
  %t1 = alloca i32
  %t2 = alloca i32
  store i32 %m, ptr %t2
  br i1 %c, label %a, label %b
a:
  br label %j
b:
  br label %j
j:
  %t = phi ptr [ %t1, %a ], [ %t2, %b ]
  store i32 42, ptr %t
  %v = load i32, ptr %t2
  ret i32 %v
}
)",
                       R"(
define i32 @f(i1 %c, i32 %m) {
entry:
  ret i32 %m
}
)");
  EXPECT_FALSE(R.Validated)
      << "when c is false the function returns 42, not %m";
}

TEST(MemorySoundness, EscapedAllocaStoresAreObservable) {
  Context Ctx;
  auto R = validateSrc(Ctx, R"(
declare void @sink(ptr)
define void @f(i32 %a) {
entry:
  %p = alloca i32
  store i32 %a, ptr %p
  call void @sink(ptr %p)
  ret void
}
)",
                       R"(
declare void @sink(ptr)
define void @f(i32 %a) {
entry:
  %p = alloca i32
  call void @sink(ptr %p)
  ret void
}
)");
  EXPECT_FALSE(R.Validated) << "sink() can read the stored value";
}

//===----------------------------------------------------------------------===//
// Validator: loops
//===----------------------------------------------------------------------===//

TEST(LoopSoundness, RejectsChangedTripCount) {
  Context Ctx;
  const char *Template = R"(
define i32 @f(i32 %n) {
entry:
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %i2, %b ]
  %s = phi i32 [ 0, %entry ], [ %s2, %b ]
  %c = icmp BOUND i32 %i, %n
  br i1 %c, label %b, label %x
b:
  %s2 = add i32 %s, %i
  %i2 = add i32 %i, 1
  br label %h
x:
  ret i32 %s
}
)";
  std::string A = Template, B = Template;
  A.replace(A.find("BOUND"), 5, "slt");
  B.replace(B.find("BOUND"), 5, "sle");
  auto R = validateSrc(Ctx, A.c_str(), B.c_str());
  EXPECT_FALSE(R.Validated) << "one extra iteration must be caught";
}

TEST(LoopSoundness, RejectsChangedInitialValue) {
  Context Ctx;
  auto R = validateSrc(Ctx, R"(
define i32 @f(i32 %n) {
entry:
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %i2, %b ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %b, label %x
b:
  %i2 = add i32 %i, 1
  br label %h
x:
  ret i32 %i
}
)",
                       R"(
define i32 @f(i32 %n) {
entry:
  br label %h
h:
  %i = phi i32 [ 1, %entry ], [ %i2, %b ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %b, label %x
b:
  %i2 = add i32 %i, 1
  br label %h
x:
  ret i32 %i
}
)");
  EXPECT_FALSE(R.Validated);
}

TEST(LoopSoundness, AcceptsRenamedBlocksAndRegisters) {
  // Pure alpha-renaming must always validate, instantly.
  Context Ctx;
  auto R = validateSrc(Ctx, R"(
define i32 @f(i32 %n) {
entry:
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %i2, %b ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %b, label %x
b:
  %i2 = add i32 %i, 1
  br label %h
x:
  ret i32 %i
}
)",
                       R"(
define i32 @f(i32 %limit) {
start:
  br label %header
header:
  %iv = phi i32 [ 0, %start ], [ %ivnext, %latch ]
  %cond = icmp slt i32 %iv, %limit
  br i1 %cond, label %latch, label %done
latch:
  %ivnext = add i32 %iv, 1
  br label %header
done:
  ret i32 %iv
}
)");
  EXPECT_TRUE(R.Validated);
}

//===----------------------------------------------------------------------===//
// Optimizer: cases that must NOT fire
//===----------------------------------------------------------------------===//

namespace {

/// Runs one pass and interprets before/after on the given args.
void expectNoBehaviorChange(const char *Src, const char *Pipeline,
                            std::vector<std::vector<RtValue>> ArgSets) {
  Context Ctx;
  auto M = parseOrDie(Ctx, Src);
  auto Opt = cloneModule(*M);
  PassManager PM;
  ASSERT_TRUE(PM.parsePipeline(Pipeline));
  Function *FO = Opt->definedFunctions().front();
  PM.run(*FO);
  expectVerified(*Opt);
  Interpreter IA(*M), IB(*Opt);
  for (auto &Args : ArgSets) {
    ExecResult RA = IA.run(*M->definedFunctions().front(), Args);
    ExecResult RB = IB.run(*FO, Args);
    ASSERT_EQ(RA.Status, RB.Status);
    if (RA.Status != ExecStatus::OK)
      continue;
    EXPECT_TRUE(RA.Value == RB.Value);
    EXPECT_EQ(IA.globalMemory(), IB.globalMemory());
  }
}

} // namespace

TEST(OptimizerSoundness, LICMDoesNotSpeculateDivision) {
  // Hoisting %q out of the loop would trap when n == 0 (loop never runs
  // and d == 0); LICM must refuse to speculate a variable division.
  expectNoBehaviorChange(R"(
define i32 @f(i32 %n, i32 %d) {
entry:
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %i2, %b ]
  %s = phi i32 [ 0, %entry ], [ %s2, %b ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %b, label %x
b:
  %q = sdiv i32 100, %d
  %s2 = add i32 %s, %q
  %i2 = add i32 %i, 1
  br label %h
x:
  ret i32 %s
}
)",
                         "licm",
                         {{RtValue::makeInt(0), RtValue::makeInt(0)},
                          {RtValue::makeInt(3), RtValue::makeInt(2)}});
}

TEST(OptimizerSoundness, DSEKeepsStoreReadByCall) {
  expectNoBehaviorChange(R"(
@g = global i32 0
declare i64 @strlen(ptr) readonly
define i64 @f(ptr %s, i32 %a) {
entry:
  store i32 %a, ptr @g
  %l = call i64 @strlen(ptr %s)
  store i32 0, ptr @g
  ret i64 %l
}
)",
                         "dse", {});
}

TEST(OptimizerSoundness, GVNLoadForwardingRespectsCalls) {
  Context Ctx;
  auto M = parseOrDie(Ctx, R"(
declare void @mutate(ptr)
define i32 @f(ptr %p, i32 %v) {
entry:
  store i32 %v, ptr %p
  call void @mutate(ptr %p)
  %x = load i32, ptr %p
  ret i32 %x
}
)");
  auto Opt = cloneModule(*M);
  PassManager PM;
  ASSERT_TRUE(PM.parsePipeline("gvn"));
  Function *FO = Opt->definedFunctions().front();
  PM.run(*FO);
  bool HasLoad = false;
  for (const auto &BB : FO->blocks())
    for (Instruction *I : *BB)
      HasLoad |= I->getOpcode() == Opcode::Load;
  EXPECT_TRUE(HasLoad) << "the call may overwrite *p: no forwarding";
}

TEST(OptimizerSoundness, SCCPKeepsTrapDivisionUnfolded) {
  Context Ctx;
  auto M = parseOrDie(Ctx, R"(
define i32 @f() {
entry:
  %x = sdiv i32 1, 0
  ret i32 %x
}
)");
  auto Opt = cloneModule(*M);
  PassManager PM;
  ASSERT_TRUE(PM.parsePipeline("sccp"));
  Function *FO = Opt->definedFunctions().front();
  PM.run(*FO);
  bool HasDiv = false;
  for (const auto &BB : FO->blocks())
    for (Instruction *I : *BB)
      HasDiv |= I->getOpcode() == Opcode::SDiv;
  EXPECT_TRUE(HasDiv) << "folding 1/0 would erase the trap";
}

//===----------------------------------------------------------------------===//
// Validator: typing discipline
//===----------------------------------------------------------------------===//

TEST(TypeSoundness, SameValueDifferentWidthIsNotEqual) {
  Context Ctx;
  auto R = validateSrc(Ctx, R"(
define i32 @f(i32 %a) {
entry:
  %x = and i32 %a, 255
  ret i32 %x
}
)",
                       R"(
define i32 @f(i32 %a) {
entry:
  %t = trunc i32 %a to i8
  %z = zext i8 %t to i32
  %x = and i32 %z, 65535
  ret i32 %x
}
)");
  // Semantically equal, but structurally distinct beyond the rule set:
  // the validator may reject (false alarm) but must never crash or
  // mis-merge nodes of different types. Either verdict is acceptable;
  // the point of this test is type-safe behavior under width mixing.
  (void)R;
  SUCCEED();
}

TEST(TypeSoundness, RejectsWidthChangedArithmetic) {
  Context Ctx;
  auto R = validateSrc(Ctx, R"(
define i32 @f(i32 %a) {
entry:
  %x = mul i32 %a, 200
  %t = trunc i32 %x to i8
  %z = sext i8 %t to i32
  ret i32 %z
}
)",
                       R"(
define i32 @f(i32 %a) {
entry:
  %x = mul i32 %a, 200
  ret i32 %x
}
)");
  EXPECT_FALSE(R.Validated) << "dropping the trunc/sext changes results";
}
