//===- LLVMFrontendTest.cpp - .ll-subset importer + ModuleLoader tests ----===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
//
// Covers the `.ll` ingest frontend and the unified ModuleLoader API:
//   - accepted-subset round-trips (import -> print -> reparse -> verify)
//   - every named reject-reason class
//   - per-function isolation (one bad function never sinks the module)
//   - spec grammar / format sniffing of ModuleLoader
//   - the frozen fixture pair end to end through the ValidationEngine,
//     with unsupported accounting present in the JSON report
//
//===----------------------------------------------------------------------===//

#include "driver/ModuleLoader.h"
#include "driver/ValidationEngine.h"
#include "frontend/llvm/LLFrontend.h"
#include "ir/Context.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include "opt/Pass.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace llvmmd;
using testutil::expectVerified;

namespace {

std::string fixturePath(const char *Name) {
  return std::string(LLVMMD_SOURCE_DIR) + "/tests/fixtures/llvm/" + Name;
}

std::string readFileOrDie(const std::string &Path) {
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "cannot open " << Path;
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

/// Imports, expecting module-level success and zero per-function rejects.
std::unique_ptr<Module> importOrDie(Context &Ctx, const std::string &Text) {
  LLImportResult R = importLLModule(Ctx, Text);
  EXPECT_TRUE(static_cast<bool>(R)) << "import error: " << R.Error;
  for (const LLFunctionReject &Rej : R.Rejected)
    ADD_FAILURE() << "unexpected reject: " << Rej.Function << ": "
                  << Rej.Reason << " (" << Rej.Detail << ")";
  return std::move(R.M);
}

/// Full round-trip: import the .ll text, verify, print to mini-IR syntax,
/// reparse with the native parser, verify again.
void roundTrip(const std::string &LL) {
  Context Ctx;
  std::unique_ptr<Module> M = importOrDie(Ctx, LL);
  ASSERT_TRUE(M);
  expectVerified(*M);
  std::string Printed = printModule(*M);
  Context Ctx2;
  std::unique_ptr<Module> M2 = testutil::parseOrDie(Ctx2, Printed);
  ASSERT_TRUE(M2);
  expectVerified(*M2);
  EXPECT_EQ(Printed, printModule(*M2));
}

/// Imports text expected to produce exactly one rejected function with the
/// given reason class; the rest of the module must still be intact.
LLFunctionReject expectSingleReject(const std::string &LL,
                                    const char *Reason) {
  Context Ctx;
  LLImportResult R = importLLModule(Ctx, LL);
  EXPECT_TRUE(static_cast<bool>(R)) << "module-level error: " << R.Error;
  EXPECT_EQ(R.Rejected.size(), 1u);
  if (R.Rejected.empty())
    return LLFunctionReject{};
  EXPECT_EQ(R.Rejected[0].Reason, Reason)
      << "detail: " << R.Rejected[0].Detail;
  // A function rejected for its *body* survives as a declaration; one
  // rejected for its *signature* cannot be represented at all (callers
  // reject with unsupported-callee instead).
  if (R.M) {
    if (Function *F = R.M->getFunction(R.Rejected[0].Function))
      EXPECT_TRUE(F->isDeclaration());
  }
  return R.Rejected[0];
}

//===----------------------------------------------------------------------===//
// Accepted subset round-trips
//===----------------------------------------------------------------------===//

TEST(LLVMFrontendTest, RoundTripIntArithmetic) {
  roundTrip(R"(
define i32 @arith(i32 %a, i32 %b) {
entry:
  %s = add nsw i32 %a, %b
  %d = sub i32 %s, 7
  %m = mul nuw i32 %d, %a
  %q = sdiv i32 %m, %b
  %r = srem i32 %q, 13
  %sh = shl i32 %r, 2
  %lr = lshr exact i32 %sh, 1
  %ar = ashr i32 %lr, 1
  %an = and i32 %ar, 255
  %o = or i32 %an, 16
  %x = xor i32 %o, %a
  ret i32 %x
}
)");
}

TEST(LLVMFrontendTest, RoundTripFloatOpsAndCasts) {
  roundTrip(R"(
define double @f(double %x, double %y, i32 %n) {
entry:
  %a = fadd double %x, %y
  %s = fsub double %a, 1.5
  %m = fmul fast double %s, %x
  %d = fdiv double %m, %y
  %neg = fneg double %d
  %w = sext i32 %n to i64
  %t = trunc i64 %w to i8
  %z = zext i8 %t to i32
  %c = icmp sgt i32 %z, 0
  %sel = select i1 %c, double %neg, double %y
  ret double %sel
}
)");
}

TEST(LLVMFrontendTest, RoundTripControlFlowPhiAndCmp) {
  roundTrip(R"(
define i32 @max(i32 %a, i32 %b) {
entry:
  %c = icmp sgt i32 %a, %b
  br i1 %c, label %left, label %right
left:
  br label %join
right:
  br label %join
join:
  %r = phi i32 [ %a, %left ], [ %b, %right ]
  ret i32 %r
}
)");
}

TEST(LLVMFrontendTest, RoundTripMemoryGlobalsAndGEP) {
  roundTrip(R"(
@counter = global i32 41, align 4
@table = global [4 x i32] [i32 10, i32 20, i32 30, i32 40]

define i32 @mem(i64 %i) {
entry:
  %p = alloca i32, align 4
  store i32 5, ptr %p
  %v = load i32, ptr %p, align 4
  %g = load i32, ptr @counter
  %slot = getelementptr inbounds [4 x i32], ptr @table, i64 0, i64 %i
  %tv = load i32, ptr %slot
  %s = add i32 %v, %g
  %t = add i32 %s, %tv
  ret i32 %t
}
)");
}

TEST(LLVMFrontendTest, RoundTripCallToKnownDeclaration) {
  roundTrip(R"(
declare i64 @strlen(ptr noundef)

define i64 @len2(ptr %a, ptr %b) {
entry:
  %la = call i64 @strlen(ptr noundef %a)
  %lb = tail call i64 @strlen(ptr %b)
  %s = add i64 %la, %lb
  ret i64 %s
}
)");
}

TEST(LLVMFrontendTest, SwitchLowersToBranchChain) {
  Context Ctx;
  std::unique_ptr<Module> M = importOrDie(Ctx, R"(
define i32 @classify(i32 %c) {
entry:
  switch i32 %c, label %dflt [
    i32 0, label %a
    i32 1, label %b
  ]
a:
  br label %out
b:
  br label %out
dflt:
  br label %out
out:
  %r = phi i32 [ 10, %a ], [ 20, %b ], [ -1, %dflt ]
  ret i32 %r
}
)");
  ASSERT_TRUE(M);
  expectVerified(*M);
  // The printed module must contain no `switch` — only br/condbr.
  std::string Printed = printModule(*M);
  EXPECT_EQ(Printed.find("switch"), std::string::npos);
  Context Ctx2;
  std::unique_ptr<Module> M2 = testutil::parseOrDie(Ctx2, Printed);
  expectVerified(*M2);
}

TEST(LLVMFrontendTest, ForwardReferencesResolve) {
  // %v is used in a phi before its textual definition.
  roundTrip(R"(
define i32 @fwd(i32 %n) {
entry:
  br label %loop
loop:
  %i = phi i32 [ 0, %entry ], [ %next, %loop ]
  %next = add i32 %i, 1
  %done = icmp sge i32 %next, %n
  br i1 %done, label %out, label %loop
out:
  ret i32 %i
}
)");
}

TEST(LLVMFrontendTest, RealWorldNoiseIsTolerated) {
  Context Ctx;
  std::unique_ptr<Module> M = importOrDie(Ctx, R"(
; ModuleID = 'noise.c'
source_filename = "noise.c"
target datalayout = "e-m:e-i64:64-f80:128-n8:16:32:64-S128"
target triple = "x86_64-unknown-linux-gnu"

@g = dso_local local_unnamed_addr global i32 0, align 4

; Function Attrs: nounwind uwtable
define dso_local i32 @noisy(i32 noundef %a) local_unnamed_addr #0 {
entry:
  %v = load i32, ptr @g, align 4, !tbaa !5
  %s = add nsw i32 %v, %a
  ret i32 %s
}

attributes #0 = { nounwind uwtable "target-cpu"="x86-64" }

!llvm.module.flags = !{!0}
!0 = !{i32 1, !"wchar_size", i32 4}
!5 = !{!6, !6, i64 0}
!6 = !{!"int", !7, i64 0}
!7 = !{!"omnipotent char", !8, i64 0}
!8 = !{!"Simple C/C++ TBAA"}
)");
  ASSERT_TRUE(M);
  expectVerified(*M);
  Function *F = M->getFunction("noisy");
  ASSERT_NE(F, nullptr);
  EXPECT_FALSE(F->isDeclaration());
}

//===----------------------------------------------------------------------===//
// Reject-reason classes — one test per class
//===----------------------------------------------------------------------===//

TEST(LLVMFrontendTest, RejectVectorType) {
  expectSingleReject(R"(
define <4 x i32> @v(<4 x i32> %a) {
entry:
  ret <4 x i32> %a
}
)",
                     llreject::VectorType);
}

TEST(LLVMFrontendTest, RejectAggregateType) {
  expectSingleReject(R"(
define i32 @s({ i32, i32 } %p) {
entry:
  ret i32 0
}
)",
                     llreject::AggregateType);
}

TEST(LLVMFrontendTest, RejectUnsupportedType) {
  LLFunctionReject R = expectSingleReject(R"(
define half @h(half %x) {
entry:
  ret half %x
}
)",
                                          llreject::UnsupportedType);
  EXPECT_NE(R.Detail.find("half"), std::string::npos);
}

TEST(LLVMFrontendTest, RejectUnsupportedInstruction) {
  LLFunctionReject R = expectSingleReject(R"(
define i32 @c(double %x) {
entry:
  %v = fptosi double %x to i32
  ret i32 %v
}
)",
                                          llreject::UnsupportedInstruction);
  EXPECT_NE(R.Detail.find("fptosi"), std::string::npos);
}

TEST(LLVMFrontendTest, RejectUnsupportedPredicate) {
  // Unordered fcmp predicates are outside the subset.
  expectSingleReject(R"(
define i1 @u(double %a, double %b) {
entry:
  %c = fcmp uno double %a, %b
  ret i1 %c
}
)",
                     llreject::UnsupportedPredicate);
}

TEST(LLVMFrontendTest, RejectMultiIndexGEP) {
  expectSingleReject(R"(
define ptr @g(ptr %p, i64 %i, i64 %j) {
entry:
  %q = getelementptr i32, ptr %p, i64 %i, i64 %j
  ret ptr %q
}
)",
                     llreject::MultiIndexGEP);
}

TEST(LLVMFrontendTest, RejectIndirectCall) {
  expectSingleReject(R"(
define i32 @ind(ptr %fp) {
entry:
  %r = call i32 %fp(i32 1)
  ret i32 %r
}
)",
                     llreject::IndirectCall);
}

TEST(LLVMFrontendTest, RejectVarargsCall) {
  expectSingleReject(R"(
declare i32 @printf(ptr, ...)

define void @p(ptr %fmt) {
entry:
  %r = call i32 (ptr, ...) @printf(ptr %fmt)
  ret void
}
)",
                     llreject::VarargsCall);
}

TEST(LLVMFrontendTest, RejectUnsupportedCallee) {
  LLFunctionReject R = expectSingleReject(R"(
define i32 @caller(i32 %x) {
entry:
  %r = call i32 @no_such_fn(i32 %x)
  ret i32 %r
}
)",
                                          llreject::UnsupportedCallee);
  EXPECT_NE(R.Detail.find("no_such_fn"), std::string::npos);
}

TEST(LLVMFrontendTest, RejectUnsupportedConstant) {
  // A constant expression operand is outside the subset.
  expectSingleReject(R"(
@g = global [4 x i32] zeroinitializer

define i32 @ce() {
entry:
  %v = load i32, ptr getelementptr inbounds ([4 x i32], ptr @g, i64 0, i64 2)
  ret i32 %v
}
)",
                     llreject::UnsupportedConstant);
}

TEST(LLVMFrontendTest, RejectSyntaxErrorPerFunction) {
  // Garbage inside one function body rejects that function, not the module.
  expectSingleReject(R"(
define i32 @bad(i32 %a) {
entry:
  %v = frobnicate i32 %a
  ret i32 %v
}
)",
                     llreject::SyntaxError);
}

TEST(LLVMFrontendTest, ModuleLevelErrorHasLineInfo) {
  Context Ctx;
  LLImportResult R = importLLModule(Ctx, "define i32 @f(\n@@@garbage@@@\n");
  EXPECT_FALSE(static_cast<bool>(R));
  EXPECT_FALSE(R.Error.empty());
  EXPECT_GT(R.ErrorLine, 0u);
}

//===----------------------------------------------------------------------===//
// Per-function isolation
//===----------------------------------------------------------------------===//

TEST(LLVMFrontendTest, OneBadFunctionDoesNotSinkTheModule) {
  Context Ctx;
  LLImportResult R = importLLModule(Ctx, R"(
define i32 @good1(i32 %a) {
entry:
  %v = add i32 %a, 1
  ret i32 %v
}

define i32 @bad(double %x) {
entry:
  %v = fptosi double %x to i32
  ret i32 %v
}

define i32 @good2(i32 %a) {
entry:
  %v = mul i32 %a, 3
  ret i32 %v
}
)");
  ASSERT_TRUE(static_cast<bool>(R)) << R.Error;
  ASSERT_EQ(R.Rejected.size(), 1u);
  EXPECT_EQ(R.Rejected[0].Function, "bad");
  EXPECT_EQ(R.Rejected[0].Reason, llreject::UnsupportedInstruction);

  Function *G1 = R.M->getFunction("good1");
  Function *G2 = R.M->getFunction("good2");
  Function *B = R.M->getFunction("bad");
  ASSERT_TRUE(G1 && G2 && B);
  EXPECT_FALSE(G1->isDeclaration());
  EXPECT_FALSE(G2->isDeclaration());
  EXPECT_TRUE(B->isDeclaration());
  expectVerified(*R.M);

  // And the engine produces verdicts for exactly the two good functions.
  EngineConfig Cfg;
  Cfg.Threads = 1;
  ValidationEngine Engine(Cfg);
  EngineRun Run = Engine.run(*R.M, getPaperPipeline());
  EXPECT_EQ(Run.Report.total(), 2u);
}

TEST(LLVMFrontendTest, CallToRejectedFunctionStaysWellFormed) {
  // A rejected function survives as a declaration precisely so that later
  // callers still import: its rejection is isolated, not contagious.
  Context Ctx;
  LLImportResult R = importLLModule(Ctx, R"(
define i32 @bad(double %x) {
entry:
  %v = fptosi double %x to i32
  ret i32 %v
}

define i32 @caller(double %x) {
entry:
  %v = call i32 @bad(double %x)
  ret i32 %v
}
)");
  ASSERT_TRUE(static_cast<bool>(R)) << R.Error;
  ASSERT_EQ(R.Rejected.size(), 1u);
  EXPECT_EQ(R.Rejected[0].Function, "bad");
  Function *Caller = R.M->getFunction("caller");
  ASSERT_NE(Caller, nullptr);
  EXPECT_FALSE(Caller->isDeclaration());
  expectVerified(*R.M);
}

//===----------------------------------------------------------------------===//
// Format sniffing + ModuleLoader spec grammar
//===----------------------------------------------------------------------===//

TEST(LLVMFrontendTest, FormatSniffing) {
  // Sniffing keys on noise real clang/opt output always carries and the
  // mini-IR printer never emits — not on the (shared) instruction syntax.
  EXPECT_EQ(detectModuleFormat("target triple = \"x86_64\"\n"),
            ModuleFormat::LLVMIR);
  EXPECT_EQ(detectModuleFormat("define dso_local i32 @f(i32 noundef %a) "
                               "{\nentry:\n  ret i32 %a\n}\n"),
            ModuleFormat::LLVMIR);
  EXPECT_EQ(
      detectModuleFormat("  %v = load i32, ptr @g, align 4\n"),
      ModuleFormat::LLVMIR);
  // Marker-free define syntax is the shared subset: treated as mini-IR.
  EXPECT_EQ(detectModuleFormat(
                "define i32 @f(i32 %a) {\nentry:\n  ret i32 %a\n}\n"),
            ModuleFormat::MiniIR);
  // What the mini printer emits must always sniff as mini.
  Context Ctx;
  std::unique_ptr<Module> M = testutil::parseOrDie(Ctx, R"(
define i32 @f(i32 %a) {
entry:
  %v = add i32 %a, 1
  ret i32 %v
}
)");
  std::string Mini = printModule(*M);
  EXPECT_EQ(detectModuleFormat(Mini), ModuleFormat::MiniIR);
  EXPECT_FALSE(looksLikeLLVMIR(Mini));
  // Both fixtures sniff as real LLVM IR.
  EXPECT_TRUE(looksLikeLLVMIR(readFileOrDie(fixturePath("kernels_O0.ll"))));
  EXPECT_TRUE(looksLikeLLVMIR(readFileOrDie(fixturePath("kernels_opt.ll"))));
}

TEST(LLVMFrontendTest, SpecGrammarParsing) {
  ModuleSpec S1 = parseModuleSpec("tests/x.ll");
  EXPECT_EQ(S1.From, ModuleSpec::Source::File);
  EXPECT_EQ(S1.Value, "tests/x.ll");

  ModuleSpec S2 = parseModuleSpec("-");
  EXPECT_EQ(S2.From, ModuleSpec::Source::Stdin);

  ModuleSpec S3 = parseModuleSpec("profile:gcc");
  EXPECT_EQ(S3.From, ModuleSpec::Source::Profile);
  EXPECT_EQ(S3.Value, "gcc");
}

TEST(LLVMFrontendTest, LoaderAutoDetectsBothFormats) {
  Context Ctx;
  ModuleSpec LL;
  LL.From = ModuleSpec::Source::Inline;
  LL.Value = "define dso_local i32 @f(i32 noundef %a) {\nentry:\n  %v = add "
             "nsw i32 %a, 1\n  ret i32 %v\n}\n";
  LoadResult R1 = loadModule(Ctx, LL);
  ASSERT_TRUE(static_cast<bool>(R1)) << R1.Error;
  ASSERT_EQ(R1.Modules.size(), 1u);
  EXPECT_EQ(R1.Modules[0].Format, ModuleFormat::LLVMIR);

  ModuleSpec Mini;
  Mini.From = ModuleSpec::Source::Inline;
  Mini.Value = "define i32 @g(i32 %a) {\nentry:\n  %v = add i32 %a, 1\n  "
               "ret i32 %v\n}\n";
  LoadResult R2 = loadModule(Ctx, Mini);
  ASSERT_TRUE(static_cast<bool>(R2)) << R2.Error;
  EXPECT_EQ(R2.Modules[0].Format, ModuleFormat::MiniIR);

  ModuleSpec Prof = parseModuleSpec("profile:gcc");
  Prof.ProfileFnCount = 4;
  LoadResult R3 = loadModule(Ctx, Prof);
  ASSERT_TRUE(static_cast<bool>(R3)) << R3.Error;
  EXPECT_EQ(R3.Modules[0].Format, ModuleFormat::MiniIR);
  EXPECT_TRUE(R3.Modules[0].Unsupported.empty());
}

TEST(LLVMFrontendTest, LoaderErrorsCarryLineDiagnostics) {
  Context Ctx;
  ModuleSpec Bad;
  Bad.From = ModuleSpec::Source::Inline;
  Bad.Value = "target triple = \"x\"\ndefine i32 @f(\n@@@\n";
  Bad.Name = "bad.ll";
  LoadResult R = loadModule(Ctx, Bad);
  EXPECT_FALSE(static_cast<bool>(R));
  EXPECT_NE(R.Error.find("bad.ll"), std::string::npos);
  EXPECT_NE(R.Error.find("line"), std::string::npos);
  EXPECT_GT(R.ErrorLine, 0u);

  LoadResult R2 = loadModule(Ctx, parseModuleSpec("profile:nonexistent"));
  EXPECT_FALSE(static_cast<bool>(R2));

  LoadResult R3 =
      loadModule(Ctx, parseModuleSpec("/no/such/dir/missing.ll"));
  EXPECT_FALSE(static_cast<bool>(R3));
  EXPECT_NE(R3.Error.find("missing.ll"), std::string::npos);
}

TEST(LLVMFrontendTest, LoaderStopsAtFirstError) {
  Context Ctx;
  std::vector<ModuleSpec> Specs;
  ModuleSpec Good;
  Good.From = ModuleSpec::Source::Inline;
  Good.Value = "define i32 @ok() {\nentry:\n  ret i32 1\n}\n";
  Specs.push_back(Good);
  Specs.push_back(parseModuleSpec("profile:nonexistent"));
  Specs.push_back(Good);
  LoadResult R = loadModules(Ctx, Specs);
  EXPECT_FALSE(static_cast<bool>(R));
  EXPECT_EQ(R.Modules.size(), 1u);
}

//===----------------------------------------------------------------------===//
// Frozen fixture pair end to end
//===----------------------------------------------------------------------===//

TEST(LLVMFrontendTest, FixturePairValidatesEndToEnd) {
  Context Ctx;
  std::vector<ModuleSpec> Specs = {
      parseModuleSpec(fixturePath("kernels_O0.ll")),
      parseModuleSpec(fixturePath("kernels_opt.ll")),
  };
  LoadResult Loaded = loadModules(Ctx, Specs);
  ASSERT_TRUE(static_cast<bool>(Loaded)) << Loaded.Error;
  ASSERT_EQ(Loaded.Modules.size(), 2u);

  // Both fixtures carry exactly one function outside the subset: to_int.
  for (const LoadedModule &LM : Loaded.Modules) {
    EXPECT_EQ(LM.Format, ModuleFormat::LLVMIR);
    ASSERT_EQ(LM.Unsupported.size(), 1u);
    EXPECT_EQ(LM.Unsupported[0].Function, "to_int");
    EXPECT_EQ(LM.Unsupported[0].Reason, llreject::UnsupportedInstruction);
    expectVerified(*LM.M);
  }

  EngineConfig Cfg;
  Cfg.Threads = 1;
  ValidationEngine Engine(Cfg);
  std::vector<const Module *> Ptrs;
  for (const LoadedModule &LM : Loaded.Modules)
    Ptrs.push_back(LM.M.get());
  SuiteRun Run = Engine.runSuite(Ptrs, getPaperPipeline());
  ASSERT_EQ(Run.Report.Modules.size(), 2u);
  for (size_t I = 0; I < Run.Report.Modules.size(); ++I)
    attachUnsupported(Run.Report.Modules[I], Loaded.Modules[I]);

  // Every transformed pair must validate; nothing reverts.
  EXPECT_EQ(Run.Report.validated(), Run.Report.transformed());
  EXPECT_GT(Run.Report.transformed(), 0u);
  EXPECT_EQ(Run.Report.reverted(), 0u);
  // Six importable functions per module.
  for (const ValidationReport &MR : Run.Report.Modules)
    EXPECT_EQ(MR.total(), 6u);

  // Unsupported accounting lands in all three emitters.
  EXPECT_EQ(Run.Report.unsupportedFunctions(), 2u);
  std::string JSON = suiteToJSON(Run.Report);
  EXPECT_NE(JSON.find("\"unsupported_functions\": 1"), std::string::npos);
  EXPECT_NE(JSON.find("\"unsupported_functions\": 2"), std::string::npos);
  EXPECT_NE(JSON.find("\"reason\": \"unsupported-instruction\""),
            std::string::npos);
  std::string Text = suiteToText(Run.Report);
  EXPECT_NE(Text.find("2 function(s) rejected by the ingest frontend"),
            std::string::npos);
  std::string CSV = suiteToCSV(Run.Report);
  EXPECT_NE(CSV.find("unsupported_reason"), std::string::npos);
  EXPECT_NE(CSV.find("unsupported-instruction"), std::string::npos);
}

TEST(LLVMFrontendTest, FixtureRoundTripsThroughPrinter) {
  // The O0 fixture (minus its known to_int reject) must survive
  // import -> print -> native reparse -> verify.
  Context Ctx;
  LLImportResult R =
      importLLModule(Ctx, readFileOrDie(fixturePath("kernels_O0.ll")));
  ASSERT_TRUE(static_cast<bool>(R)) << R.Error;
  ASSERT_EQ(R.Rejected.size(), 1u);
  EXPECT_EQ(R.Rejected[0].Function, "to_int");
  expectVerified(*R.M);
  std::string Printed = printModule(*R.M);
  Context Ctx2;
  std::unique_ptr<Module> M2 = testutil::parseOrDie(Ctx2, Printed);
  expectVerified(*M2);
  EXPECT_EQ(Printed, printModule(*M2));
}

} // namespace
