//===- VerdictStoreTest.cpp - Persistent verdict store tests -----------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
// Robustness of the on-disk verdict store (round-trip, truncation, wrong
// magic/version, config-digest mismatch, concurrent-shard merge) and its
// integration with the ValidationEngine: a second engine loading the store
// produced by a first must replay 100% of verdicts without validating
// anything from scratch, and a mismatched store must be rejected and
// rebuilt, never misused.
//
//===----------------------------------------------------------------------===//

#include "driver/ValidationEngine.h"
#include "driver/VerdictStore.h"
#include "opt/Pass.h"
#include "support/Hashing.h"
#include "workload/Generator.h"
#include "workload/Profiles.h"

#include "TestUtil.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <thread>

using namespace llvmmd;

namespace {

/// A unique path under the test's temp dir, removed on destruction.
class TempFile {
public:
  explicit TempFile(const std::string &Name)
      : Path(::testing::TempDir() + "/" + Name) {
    std::remove(Path.c_str());
  }
  ~TempFile() { std::remove(Path.c_str()); }
  const std::string &path() const { return Path; }

private:
  std::string Path;
};

ValidationResult makeResult(bool Validated, uint64_t Rewrites,
                            const std::string &Reason = "") {
  ValidationResult R;
  R.Validated = Validated;
  R.Rewrites = Rewrites;
  R.GraphNodes = Rewrites * 3 + 1;
  R.LiveNodes = Rewrites + 1;
  R.SharingMerges = Rewrites / 2;
  R.Iterations = 2;
  R.Microseconds = 123;
  R.Reason = Reason;
  R.EqualOnConstruction = Rewrites == 0;
  R.Unsupported = !Validated && !Reason.empty();
  return R;
}

VerdictMap makeMap(unsigned N, uint64_t Salt = 0) {
  VerdictMap M;
  for (unsigned I = 0; I < N; ++I) {
    VerdictKey K{0x1000 + I + Salt, 0x2000 + I + Salt, 0xc0};
    M.emplace(K, makeResult(I % 3 != 0, I, I % 3 ? "" : "alarm " +
                                                            std::to_string(I)));
  }
  return M;
}

void writeBytes(const std::string &Path, const std::string &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(Out.write(Bytes.data(), Bytes.size()));
}

BenchmarkProfile smallProfile() {
  BenchmarkProfile P = getProfile("sqlite");
  P.FunctionCount = 10;
  return P;
}

} // namespace

//===----------------------------------------------------------------------===//
// Round trip
//===----------------------------------------------------------------------===//

TEST(VerdictStoreTest, RoundTripPreservesEveryField) {
  TempFile F("roundtrip.vstore");
  VerdictMap Saved = makeMap(17);
  std::string Err;
  EXPECT_EQ(VerdictStore::save(F.path(), 0xd1, Saved, &Err), Saved.size())
      << Err;

  VerdictMap Loaded;
  VerdictStore::LoadResult LR = VerdictStore::load(F.path(), 0xd1, Loaded);
  ASSERT_EQ(LR.Status, VerdictStore::LoadStatus::Loaded) << LR.Message;
  EXPECT_EQ(LR.EntriesInFile, Saved.size());
  EXPECT_EQ(LR.EntriesMerged, Saved.size());
  ASSERT_EQ(Loaded.size(), Saved.size());
  for (const auto &[K, R] : Saved) {
    auto It = Loaded.find(K);
    ASSERT_NE(It, Loaded.end());
    EXPECT_EQ(It->second.Validated, R.Validated);
    EXPECT_EQ(It->second.Unsupported, R.Unsupported);
    EXPECT_EQ(It->second.EqualOnConstruction, R.EqualOnConstruction);
    EXPECT_EQ(It->second.Reason, R.Reason);
    EXPECT_EQ(It->second.Rewrites, R.Rewrites);
    EXPECT_EQ(It->second.GraphNodes, R.GraphNodes);
    EXPECT_EQ(It->second.LiveNodes, R.LiveNodes);
    EXPECT_EQ(It->second.SharingMerges, R.SharingMerges);
    EXPECT_EQ(It->second.Iterations, R.Iterations);
    EXPECT_EQ(It->second.Microseconds, R.Microseconds);
  }
}

TEST(VerdictStoreTest, SerializationIsDeterministic) {
  // Same map, two hash tables with different insertion order: identical
  // bytes, so stores diff cleanly and CI cache keys are stable.
  VerdictMap A = makeMap(32);
  VerdictMap B;
  std::vector<std::pair<VerdictKey, ValidationResult>> Entries(A.begin(),
                                                               A.end());
  for (auto It = Entries.rbegin(); It != Entries.rend(); ++It)
    B.emplace(It->first, It->second);
  EXPECT_EQ(VerdictStore::serialize(0xd1, A), VerdictStore::serialize(0xd1, B));
}

TEST(VerdictStoreTest, MissingFileIsNoFileNotError) {
  VerdictMap Map;
  VerdictStore::LoadResult LR =
      VerdictStore::load(::testing::TempDir() + "/does-not-exist.vstore", 0,
                         Map);
  EXPECT_EQ(LR.Status, VerdictStore::LoadStatus::NoFile);
  EXPECT_TRUE(Map.empty());
}

//===----------------------------------------------------------------------===//
// Rejection: truncation, magic, version, config digest
//===----------------------------------------------------------------------===//

TEST(VerdictStoreTest, TruncatedFileIsRejectedWholesale) {
  TempFile F("truncated.vstore");
  std::string Bytes = VerdictStore::serialize(0xd1, makeMap(9));
  // Every possible truncation point: header, mid-entry, mid-reason. None
  // may load, and none may leave partial entries in the map.
  for (size_t Keep : {size_t(0), size_t(7), size_t(39), Bytes.size() / 2,
                      Bytes.size() - 1}) {
    writeBytes(F.path(), Bytes.substr(0, Keep));
    VerdictMap Map;
    VerdictStore::LoadResult LR = VerdictStore::load(F.path(), 0xd1, Map);
    EXPECT_NE(LR.Status, VerdictStore::LoadStatus::Loaded) << "kept " << Keep;
    EXPECT_TRUE(Map.empty()) << "partial merge after truncation at " << Keep;
  }
}

TEST(VerdictStoreTest, TrailingGarbageIsCorrupt) {
  TempFile F("trailing.vstore");
  writeBytes(F.path(), VerdictStore::serialize(0xd1, makeMap(3)) + "junk");
  VerdictMap Map;
  EXPECT_EQ(VerdictStore::load(F.path(), 0xd1, Map).Status,
            VerdictStore::LoadStatus::Corrupt);
}

TEST(VerdictStoreTest, WrongMagicIsRejected) {
  TempFile F("magic.vstore");
  writeBytes(F.path(), "definitely not a verdict store, but long enough "
                       "to hold a whole header worth of bytes.");
  VerdictMap Map;
  VerdictStore::LoadResult LR = VerdictStore::load(F.path(), 0xd1, Map);
  EXPECT_EQ(LR.Status, VerdictStore::LoadStatus::BadMagic);
  EXPECT_TRUE(Map.empty());
}

TEST(VerdictStoreTest, WrongFormatVersionIsRejected) {
  TempFile F("version.vstore");
  std::string Bytes = VerdictStore::serialize(0xd1, makeMap(3));
  // The u32 format version sits right after the u64 magic.
  Bytes[8] = static_cast<char>(VerdictStore::FormatVersion + 1);
  writeBytes(F.path(), Bytes);
  VerdictMap Map;
  VerdictStore::LoadResult LR = VerdictStore::load(F.path(), 0xd1, Map);
  EXPECT_EQ(LR.Status, VerdictStore::LoadStatus::BadVersion);
  EXPECT_TRUE(Map.empty());
}

TEST(VerdictStoreTest, MismatchedConfigDigestIsRejected) {
  TempFile F("digest.vstore");
  ASSERT_NE(VerdictStore::save(F.path(), 0xd1, makeMap(5)), ~0ull);
  VerdictMap Map;
  VerdictStore::LoadResult LR = VerdictStore::load(F.path(), 0xd2, Map);
  EXPECT_EQ(LR.Status, VerdictStore::LoadStatus::ConfigMismatch);
  EXPECT_TRUE(Map.empty());
}

TEST(VerdictStoreTest, BitFlipInPayloadIsCorrupt) {
  TempFile F("bitflip.vstore");
  std::string Bytes = VerdictStore::serialize(0xd1, makeMap(5));
  Bytes[Bytes.size() - 3] ^= 0x40;
  writeBytes(F.path(), Bytes);
  VerdictMap Map;
  EXPECT_EQ(VerdictStore::load(F.path(), 0xd1, Map).Status,
            VerdictStore::LoadStatus::Corrupt);
}

//===----------------------------------------------------------------------===//
// Merge semantics
//===----------------------------------------------------------------------===//

TEST(VerdictStoreTest, LoadMergesWithoutClobberingMemory) {
  TempFile F("merge-load.vstore");
  VerdictMap OnDisk = makeMap(4);
  ASSERT_NE(VerdictStore::save(F.path(), 0xd1, OnDisk), ~0ull);

  // The in-memory map already holds one of the keys with a different
  // verdict; load must keep the in-memory one and add only the others.
  VerdictMap Map;
  VerdictKey Shared = OnDisk.begin()->first;
  Map.emplace(Shared, makeResult(true, 999));
  VerdictStore::LoadResult LR = VerdictStore::load(F.path(), 0xd1, Map);
  ASSERT_TRUE(LR.loaded());
  EXPECT_EQ(LR.EntriesMerged, OnDisk.size() - 1);
  EXPECT_EQ(Map.size(), OnDisk.size());
  EXPECT_EQ(Map.at(Shared).Rewrites, 999u);
}

TEST(VerdictStoreTest, ConcurrentShardsSavingTheSamePathMerge) {
  TempFile F("merge-save.vstore");
  // Two engines (shards) proved disjoint verdicts and save to one path in
  // some order; the store must end up with the union, and for the one
  // contested key the last writer wins.
  VerdictMap ShardA = makeMap(6, /*Salt=*/0);
  VerdictMap ShardB = makeMap(6, /*Salt=*/100);
  VerdictKey Contested{0xbeef, 0xf00d, 0xc0};
  ShardA.emplace(Contested, makeResult(true, 1));
  ShardB.emplace(Contested, makeResult(true, 2));

  ASSERT_NE(VerdictStore::save(F.path(), 0xd1, ShardA), ~0ull);
  // B's save reports the merged size, not just its own entries.
  EXPECT_EQ(VerdictStore::save(F.path(), 0xd1, ShardB),
            ShardA.size() + ShardB.size() - 1);

  VerdictMap Loaded;
  ASSERT_TRUE(VerdictStore::load(F.path(), 0xd1, Loaded).loaded());
  EXPECT_EQ(Loaded.size(), ShardA.size() + ShardB.size() - 1);
  for (const auto &[K, R] : ShardA)
    if (!(K == Contested))
      EXPECT_EQ(Loaded.at(K).Rewrites, R.Rewrites);
  for (const auto &[K, R] : ShardB)
    EXPECT_EQ(Loaded.at(K).Rewrites, R.Rewrites);
  EXPECT_EQ(Loaded.at(Contested).Rewrites, 2u) << "last writer must win";
}

TEST(VerdictStoreTest, SaveOverMismatchedStoreRebuildsIt) {
  TempFile F("rebuild.vstore");
  ASSERT_NE(VerdictStore::save(F.path(), 0xd1, makeMap(8)), ~0ull);
  // A save under a different digest must not merge the incompatible
  // entries — it atomically replaces the store.
  VerdictMap Fresh = makeMap(2, /*Salt=*/500);
  EXPECT_EQ(VerdictStore::save(F.path(), 0xd2, Fresh), Fresh.size());
  VerdictMap Loaded;
  ASSERT_TRUE(VerdictStore::load(F.path(), 0xd2, Loaded).loaded());
  EXPECT_EQ(Loaded.size(), Fresh.size());
}

//===----------------------------------------------------------------------===//
// Engine integration: cross-process warm replay
//===----------------------------------------------------------------------===//

TEST(VerdictStoreTest, SecondEngineReplaysEverythingFromTheStore) {
  TempFile F("engine.vstore");
  ValidationReport First, Second;
  uint64_t ExpectedHits = 0;

  {
    // "Process" 1: cold run, saves on report.
    Context Ctx;
    auto M = generateBenchmark(Ctx, smallProfile());
    EngineConfig C;
    C.CachePath = F.path();
    ValidationEngine Engine(C);
    EXPECT_EQ(Engine.cacheStats().StoreLoaded, 0u);
    First = Engine.run(*M, getPaperPipeline()).Report;
    EXPECT_GT(Engine.cacheStats().Misses, 0u);
    EXPECT_EQ(Engine.cacheStats().WarmHits, 0u);
    EXPECT_EQ(Engine.cacheStats().StoreSaved, Engine.cacheStats().Entries);
    EXPECT_EQ(First.warmHits(), 0u);
    ExpectedHits = Engine.cacheStats().Misses;
  }
  {
    // "Process" 2: fresh Context and engine, same input; every verdict must
    // replay warm — the acceptance criterion's 100% replay rate.
    Context Ctx;
    auto M = generateBenchmark(Ctx, smallProfile());
    EngineConfig C;
    C.CachePath = F.path();
    ValidationEngine Engine(C);
    EXPECT_EQ(Engine.cacheStats().StoreLoaded, ExpectedHits);
    Second = Engine.run(*M, getPaperPipeline()).Report;
    EXPECT_EQ(Engine.cacheStats().Misses, 0u) << "replay rate below 100%";
    // Every hit this process saw came from the store (in-batch duplicates
    // also resolve against the warm cache entry on a fully-warm run).
    EXPECT_GE(Engine.cacheStats().Hits, ExpectedHits);
    EXPECT_EQ(Engine.cacheStats().WarmHits, Engine.cacheStats().Hits);
    EXPECT_EQ(Second.warmHits(), Second.cacheHits());
    EXPECT_EQ(Second.warmHits(),
              Second.transformed() - Second.skippedIdentical());
  }

  // Verdicts and statistics are identical across processes; only the
  // replay-provenance flags (cache_hit/warm_hit) may differ.
  ASSERT_EQ(First.Functions.size(), Second.Functions.size());
  for (size_t I = 0; I < First.Functions.size(); ++I) {
    const FunctionReportEntry &A = First.Functions[I];
    const FunctionReportEntry &B = Second.Functions[I];
    EXPECT_EQ(A.Name, B.Name);
    EXPECT_EQ(A.FingerprintOrig, B.FingerprintOrig) << A.Name;
    EXPECT_EQ(A.FingerprintOpt, B.FingerprintOpt) << A.Name;
    EXPECT_EQ(A.Validated, B.Validated) << A.Name;
    EXPECT_EQ(A.Result.Rewrites, B.Result.Rewrites) << A.Name;
    EXPECT_EQ(A.Result.GraphNodes, B.Result.GraphNodes) << A.Name;
    EXPECT_EQ(A.Result.SharingMerges, B.Result.SharingMerges) << A.Name;
    EXPECT_EQ(A.Result.Reason, B.Result.Reason) << A.Name;
  }
}

TEST(VerdictStoreTest, EngineRejectsAndRebuildsMismatchedStore) {
  TempFile F("engine-mismatch.vstore");
  {
    Context Ctx;
    auto M = generateBenchmark(Ctx, smallProfile());
    EngineConfig C;
    C.CachePath = F.path();
    ValidationEngine Engine(C);
    Engine.run(*M, getPaperPipeline());
    ASSERT_GT(Engine.cacheStats().StoreSaved, 0u);
  }
  {
    // Different fixpoint budget => different store config digest. The store
    // must be rejected on load (not replayed!) and rebuilt on save.
    Context Ctx;
    auto M = generateBenchmark(Ctx, smallProfile());
    EngineConfig C;
    C.CachePath = F.path();
    C.Rules.MaxIterations = 16;
    ValidationEngine Engine(C);
    EXPECT_EQ(Engine.cacheStats().StoreLoaded, 0u);
    Engine.run(*M, getPaperPipeline());
    EXPECT_GT(Engine.cacheStats().Misses, 0u);
    EXPECT_EQ(Engine.cacheStats().WarmHits, 0u);
  }
  {
    // And the rebuilt store now serves the new configuration warm.
    Context Ctx;
    auto M = generateBenchmark(Ctx, smallProfile());
    EngineConfig C;
    C.CachePath = F.path();
    C.Rules.MaxIterations = 16;
    ValidationEngine Engine(C);
    EXPECT_GT(Engine.cacheStats().StoreLoaded, 0u);
    Engine.run(*M, getPaperPipeline());
    EXPECT_EQ(Engine.cacheStats().Misses, 0u);
  }
}

TEST(VerdictStoreTest, CacheLoadOffStartsColdAndCacheSaveOffWritesNothing) {
  TempFile F("engine-flags.vstore");
  {
    Context Ctx;
    auto M = generateBenchmark(Ctx, smallProfile());
    EngineConfig C;
    C.CachePath = F.path();
    C.CacheSave = false;
    ValidationEngine Engine(C);
    Engine.run(*M, getPaperPipeline());
  }
  EXPECT_FALSE(std::ifstream(F.path()).good()) << "CacheSave=false wrote";
  {
    Context Ctx;
    auto M = generateBenchmark(Ctx, smallProfile());
    EngineConfig C;
    C.CachePath = F.path();
    ValidationEngine Engine(C);
    Engine.run(*M, getPaperPipeline());
  }
  {
    Context Ctx;
    auto M = generateBenchmark(Ctx, smallProfile());
    EngineConfig C;
    C.CachePath = F.path();
    C.CacheLoad = false;
    ValidationEngine Engine(C);
    Engine.run(*M, getPaperPipeline());
    EXPECT_EQ(Engine.cacheStats().StoreLoaded, 0u);
    EXPECT_GT(Engine.cacheStats().Misses, 0u) << "CacheLoad=false replayed";
  }
}

TEST(VerdictStoreTest, SuiteRunsShareTheStoreAcrossProcesses) {
  TempFile F("suite.vstore");
  auto MakeModules = [](Context &Ctx, std::vector<std::unique_ptr<Module>> &Own)
      -> std::vector<const Module *> {
    Own.push_back(generateBenchmark(Ctx, smallProfile()));
    BenchmarkProfile P2 = getProfile("hmmer");
    P2.FunctionCount = 6;
    Own.push_back(generateBenchmark(Ctx, P2));
    return {Own[0].get(), Own[1].get()};
  };
  std::string FirstJson;
  {
    Context Ctx;
    std::vector<std::unique_ptr<Module>> Own;
    EngineConfig C;
    C.CachePath = F.path();
    ValidationEngine Engine(C);
    SuiteRun Run = Engine.runSuite(MakeModules(Ctx, Own), getPaperPipeline());
    FirstJson = suiteToJSON(Run.Report);
    EXPECT_GT(Engine.cacheStats().Misses, 0u);
  }
  {
    Context Ctx;
    std::vector<std::unique_ptr<Module>> Own;
    EngineConfig C;
    C.CachePath = F.path();
    ValidationEngine Engine(C);
    SuiteRun Run = Engine.runSuite(MakeModules(Ctx, Own), getPaperPipeline());
    EXPECT_EQ(Engine.cacheStats().Misses, 0u) << "suite replay below 100%";
    EXPECT_EQ(Run.Report.warmHits(), Run.Report.cacheHits());
    EXPECT_EQ(Run.Report.warmHits(),
              Run.Report.transformed() - Run.Report.skippedIdentical());
  }
}

//===----------------------------------------------------------------------===//
// Fleet-shard API: threaded union, header inspection, offline merge
//===----------------------------------------------------------------------===//

TEST(VerdictStoreTest, ManyThreadsSavingOnePathUnionLosslessly) {
  TempFile F("threads.vstore");
  // The fleet's failure mode: K workers checkpointing to one path at once.
  // Each thread owns a disjoint key range plus a contested shared range;
  // the advisory lock + merge-on-save must union every disjoint entry
  // (losing one means a future run re-proves a verdict it already had) and
  // resolve each contested key to SOME writer's value, never a torn one.
  constexpr unsigned K = 8;
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < K; ++T)
    Threads.emplace_back([&, T] {
      VerdictMap Mine = makeMap(12, /*Salt=*/T * 1000);
      for (unsigned I = 0; I < 4; ++I) {
        VerdictKey Shared{0x777700 + I, 0x888800 + I, 0xc0};
        Mine.emplace(Shared, makeResult(true, /*Rewrites=*/T + 1));
      }
      EXPECT_NE(VerdictStore::save(F.path(), 0xd1, Mine), ~0ull);
    });
  for (std::thread &T : Threads)
    T.join();

  VerdictMap Loaded;
  ASSERT_TRUE(VerdictStore::load(F.path(), 0xd1, Loaded).loaded());
  EXPECT_EQ(Loaded.size(), K * 12 + 4);
  for (unsigned T = 0; T < K; ++T)
    for (const auto &[Key, R] : makeMap(12, T * 1000))
      EXPECT_EQ(Loaded.at(Key).Rewrites, R.Rewrites);
  for (unsigned I = 0; I < 4; ++I) {
    VerdictKey Shared{0x777700 + I, 0x888800 + I, 0xc0};
    uint64_t Got = Loaded.at(Shared).Rewrites;
    EXPECT_GE(Got, 1u);
    EXPECT_LE(Got, K);
  }
}

TEST(VerdictStoreTest, PeekHeaderReportsWithoutReplaying) {
  TempFile F("peek.vstore");
  VerdictMap M = makeMap(9);
  ASSERT_NE(VerdictStore::save(F.path(), 0xabcd, M), ~0ull);

  VerdictStore::HeaderInfo HI = VerdictStore::peekHeader(F.path());
  ASSERT_TRUE(HI.ok()) << HI.Message;
  EXPECT_EQ(HI.Version, VerdictStore::FormatVersion);
  EXPECT_EQ(HI.ConfigDigest, 0xabcdu);
  EXPECT_EQ(HI.VerdictEntries, M.size());
  EXPECT_EQ(HI.TriageEntries, 0u);
  EXPECT_GT(HI.FileBytes, 0u);

  // Inspection is still honest about damage: a flipped payload byte is
  // Corrupt (the checksum is verified), and a missing file is NoFile.
  std::ifstream In(F.path(), std::ios::binary);
  std::string Bytes((std::istreambuf_iterator<char>(In)),
                    std::istreambuf_iterator<char>());
  In.close();
  Bytes[Bytes.size() - 3] ^= 0x40;
  writeBytes(F.path(), Bytes);
  EXPECT_EQ(VerdictStore::peekHeader(F.path()).Status,
            VerdictStore::LoadStatus::Corrupt);

  EXPECT_EQ(VerdictStore::peekHeader(F.path() + ".nope").Status,
            VerdictStore::LoadStatus::NoFile);
}

//===----------------------------------------------------------------------===//
// v3 sharded layout: index round-trip, lazy mapped lookups, v2 fallback
//===----------------------------------------------------------------------===//

namespace {

/// A map large enough to force multiple shards, spread over \p Modules
/// distinct Config values (one per "module").
VerdictMap makeMultiModuleMap(unsigned Modules, unsigned PerModule) {
  VerdictMap M;
  for (unsigned Mod = 0; Mod < Modules; ++Mod)
    for (unsigned I = 0; I < PerModule; ++I) {
      VerdictKey K{0x1000 + I, 0x2000 + I, 0xc000 + Mod * 0x9e37};
      M.emplace(K, makeResult(I % 2 == 0, I, I % 2 ? "" : "r"));
    }
  return M;
}

/// Serializes a map in the retired v2 flat layout, byte-for-byte what the
/// old writer produced, so the fallback reader has a real artifact to chew
/// on without keeping binary fixtures in the tree.
std::string serializeV2(uint64_t ConfigDigest, const VerdictMap &Map) {
  auto Append64 = [](std::string &S, uint64_t V) {
    for (int I = 0; I < 8; ++I)
      S.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
  };
  auto Append32 = [](std::string &S, uint32_t V) {
    for (int I = 0; I < 4; ++I)
      S.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
  };
  std::vector<const VerdictMap::value_type *> Entries;
  for (const auto &KV : Map)
    Entries.push_back(&KV);
  std::sort(Entries.begin(), Entries.end(), [](const auto *A, const auto *B) {
    if (A->first.FpA != B->first.FpA)
      return A->first.FpA < B->first.FpA;
    if (A->first.FpB != B->first.FpB)
      return A->first.FpB < B->first.FpB;
    return A->first.Config < B->first.Config;
  });
  std::string Payload;
  for (const auto *KV : Entries) {
    const VerdictKey &K = KV->first;
    const ValidationResult &R = KV->second;
    Append64(Payload, K.FpA);
    Append64(Payload, K.FpB);
    Append64(Payload, K.Config);
    uint8_t Flags = (R.Validated ? 1 : 0) | (R.Unsupported ? 2 : 0) |
                    (R.EqualOnConstruction ? 4 : 0);
    Payload.push_back(static_cast<char>(Flags));
    Append64(Payload, R.GraphNodes);
    Append64(Payload, R.LiveNodes);
    Append64(Payload, R.Rewrites);
    Append64(Payload, R.SharingMerges);
    Append64(Payload, R.Iterations);
    Append64(Payload, R.Microseconds);
    Append32(Payload, static_cast<uint32_t>(R.Reason.size()));
    Payload += R.Reason;
  }
  Append64(Payload, 0); // empty triage section
  std::string Out;
  Append64(Out, 0x0152545356444d4cULL); // store magic
  Append32(Out, 2);                     // the retired version
  Append32(Out, 0);                     // v2 reserved field
  Append64(Out, ConfigDigest);
  Append64(Out, static_cast<uint64_t>(Entries.size()));
  Append64(Out, hashBytes(Payload.data(), Payload.size()));
  Out += Payload;
  return Out;
}

} // namespace

TEST(VerdictStoreTest, ShardedLayoutRoundTripsAndReportsShards) {
  TempFile F("sharded.vstore");
  // 40 modules x 20 entries = 800 entries: multiple shards by construction.
  VerdictMap Big = makeMultiModuleMap(40, 20);
  ASSERT_NE(VerdictStore::save(F.path(), 0xd1, Big), ~0ull);

  VerdictStore::HeaderInfo HI = VerdictStore::peekHeader(F.path());
  ASSERT_TRUE(HI.ok()) << HI.Message;
  EXPECT_EQ(HI.Version, 3u);
  EXPECT_GT(HI.ShardCount, 1u) << "800 entries must split into shards";
  EXPECT_EQ(HI.VerdictEntries, Big.size());

  // Shard payloads start on page boundaries: the file is strictly larger
  // than the raw entry bytes but every entry still round-trips.
  VerdictMap Loaded;
  VerdictStore::LoadResult LR = VerdictStore::load(F.path(), 0xd1, Loaded);
  ASSERT_TRUE(LR.loaded()) << LR.Message;
  ASSERT_EQ(Loaded.size(), Big.size());
  for (const auto &[K, R] : Big) {
    auto It = Loaded.find(K);
    ASSERT_NE(It, Loaded.end());
    EXPECT_EQ(It->second.Rewrites, R.Rewrites);
    EXPECT_EQ(It->second.Reason, R.Reason);
  }
}

TEST(VerdictStoreTest, MappedLookupTouchesOnlyTheKeysShard) {
  TempFile F("mapped.vstore");
  VerdictMap Big = makeMultiModuleMap(40, 20);
  ASSERT_NE(VerdictStore::save(F.path(), 0xd1, Big), ~0ull);

  VerdictStore::LoadResult LR;
  auto Mapped = MappedVerdictStore::open(F.path(), 0xd1, &LR);
  ASSERT_NE(Mapped, nullptr) << LR.Message;
  ASSERT_GT(Mapped->numShards(), 1u);
  EXPECT_EQ(Mapped->shardsMaterialized(), 0u) << "open must not parse shards";
  EXPECT_EQ(Mapped->verdictEntriesInFile(), Big.size());

  // Probing one module's keys materializes exactly one shard...
  VerdictKey First = Big.begin()->first;
  const ValidationResult *R = Mapped->lookup(First);
  ASSERT_NE(R, nullptr);
  EXPECT_EQ(R->Rewrites, Big.at(First).Rewrites);
  EXPECT_EQ(Mapped->shardsMaterialized(), 1u);
  VerdictKey SameModule = First;
  SameModule.FpA ^= 0xdead; // same Config => same shard, missing key
  EXPECT_EQ(Mapped->lookup(SameModule), nullptr);
  EXPECT_EQ(Mapped->shardsMaterialized(), 1u);

  // ...and a full sweep finds everything without a single wrong answer.
  for (const auto &[K, Want] : Big) {
    const ValidationResult *Got = Mapped->lookup(K);
    ASSERT_NE(Got, nullptr);
    EXPECT_EQ(Got->Rewrites, Want.Rewrites);
  }
  EXPECT_LE(Mapped->shardsMaterialized(), Mapped->numShards());

  // Digest gating matches load(): a mismatched open fails cleanly.
  EXPECT_EQ(MappedVerdictStore::open(F.path(), 0xd2, &LR), nullptr);
  EXPECT_EQ(LR.Status, VerdictStore::LoadStatus::ConfigMismatch);
}

TEST(VerdictStoreTest, MappedStoreNeverServesFromACorruptShard) {
  TempFile F("mapped-corrupt.vstore");
  VerdictMap Big = makeMultiModuleMap(40, 20);
  std::string Bytes = VerdictStore::serialize(0xd1, Big);
  // Flip one byte in the last shard's payload (the file ends inside it).
  Bytes[Bytes.size() - 3] ^= 0x40;
  writeBytes(F.path(), Bytes);

  // load() rejects the whole file...
  VerdictMap Map;
  EXPECT_EQ(VerdictStore::load(F.path(), 0xd1, Map).Status,
            VerdictStore::LoadStatus::Corrupt);

  // ...while the mapped view still opens (the index is intact) and serves
  // healthy shards, but every lookup landing in the damaged shard misses
  // rather than returning a possibly-torn verdict.
  VerdictStore::LoadResult LR;
  auto Mapped = MappedVerdictStore::open(F.path(), 0xd1, &LR);
  ASSERT_NE(Mapped, nullptr) << LR.Message;
  unsigned Hits = 0, Misses = 0;
  for (const auto &[K, Want] : Big) {
    const ValidationResult *Got = Mapped->lookup(K);
    if (!Got) {
      ++Misses;
      continue;
    }
    ++Hits;
    EXPECT_EQ(Got->Rewrites, Want.Rewrites);
  }
  EXPECT_GT(Hits, 0u) << "healthy shards must still serve";
  EXPECT_GT(Misses, 0u) << "the corrupt shard must refuse to serve";
}

TEST(VerdictStoreTest, LegacyV2StoresStillLoadAndUpgradeOnSave) {
  TempFile F("legacy.vstore");
  VerdictMap Old = makeMap(11);
  writeBytes(F.path(), serializeV2(0xd1, Old));

  // The v2 reader path: full round-trip, header inspection, mapped view.
  VerdictMap Loaded;
  VerdictStore::LoadResult LR = VerdictStore::load(F.path(), 0xd1, Loaded);
  ASSERT_TRUE(LR.loaded()) << LR.Message;
  ASSERT_EQ(Loaded.size(), Old.size());
  for (const auto &[K, R] : Old)
    EXPECT_EQ(Loaded.at(K).Rewrites, R.Rewrites);

  VerdictStore::HeaderInfo HI = VerdictStore::peekHeader(F.path());
  ASSERT_TRUE(HI.ok()) << HI.Message;
  EXPECT_EQ(HI.Version, 2u);
  EXPECT_EQ(HI.ShardCount, 0u);
  EXPECT_EQ(HI.VerdictEntries, Old.size());

  auto Mapped = MappedVerdictStore::open(F.path(), 0xd1, &LR);
  ASSERT_NE(Mapped, nullptr) << LR.Message;
  EXPECT_EQ(Mapped->lookup(Old.begin()->first)->Rewrites,
            Old.at(Old.begin()->first).Rewrites);

  // A config-mismatched v2 store is still rejected, not replayed.
  VerdictMap Denied;
  EXPECT_EQ(VerdictStore::load(F.path(), 0xd2, Denied).Status,
            VerdictStore::LoadStatus::ConfigMismatch);

  // Saving over it merges the old entries and rewrites the file as v3.
  VerdictMap Fresh = makeMap(3, /*Salt=*/7000);
  EXPECT_EQ(VerdictStore::save(F.path(), 0xd1, Fresh),
            Old.size() + Fresh.size());
  HI = VerdictStore::peekHeader(F.path());
  ASSERT_TRUE(HI.ok()) << HI.Message;
  EXPECT_EQ(HI.Version, VerdictStore::FormatVersion);
  EXPECT_GE(HI.ShardCount, 1u);
  EXPECT_EQ(HI.VerdictEntries, Old.size() + Fresh.size());
}

TEST(VerdictStoreTest, ShardPathNamingIsStable) {
  // Offline tools (store_tool) and the fleet must agree on this forever.
  EXPECT_EQ(VerdictStore::shardPath("/x/base.vstore", 0),
            "/x/base.vstore.shard0");
  EXPECT_EQ(VerdictStore::shardPath("rel", 12), "rel.shard12");
}

TEST(VerdictStoreTest, MergePathsUnionsAndRejectsMismatchedInputs) {
  TempFile A("merge-a.vstore"), B("merge-b.vstore"), C("merge-c.vstore");
  TempFile Out("merge-out.vstore"), Out2("merge-out2.vstore");
  VerdictMap MA = makeMap(5, 0), MB = makeMap(5, 9000);
  VerdictKey Contested{0xbeef, 0xf00d, 0xc0};
  MA.emplace(Contested, makeResult(true, 11));
  MB.emplace(Contested, makeResult(true, 22));
  ASSERT_NE(VerdictStore::save(A.path(), 0xd1, MA), ~0ull);
  ASSERT_NE(VerdictStore::save(B.path(), 0xd1, MB), ~0ull);
  ASSERT_NE(VerdictStore::save(C.path(), 0xd2, makeMap(3, 50)), ~0ull);

  // Union with earlier-inputs-win on the contested key; a missing input is
  // an empty shard, not an error (a cold fleet worker never wrote one).
  std::string Err;
  EXPECT_EQ(VerdictStore::mergePaths(
                {A.path(), B.path(), A.path() + ".gone"}, Out.path(), 0xd1,
                &Err),
            MA.size() + MB.size() - 1)
      << Err;
  VerdictMap Loaded;
  ASSERT_TRUE(VerdictStore::load(Out.path(), 0xd1, Loaded).loaded());
  EXPECT_EQ(Loaded.at(Contested).Rewrites, 11u) << "earlier input must win";

  // A digest-mismatched input poisons the whole merge: verdicts proven
  // under different rules must never union.
  EXPECT_EQ(VerdictStore::mergePaths({A.path(), C.path()}, Out2.path(), 0xd1,
                                     &Err),
            ~0ull);
  EXPECT_FALSE(Err.empty());
  EXPECT_EQ(VerdictStore::peekHeader(Out2.path()).Status,
            VerdictStore::LoadStatus::NoFile)
      << "a failed merge must not write a partial store";
}
