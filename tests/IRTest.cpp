//===- IRTest.cpp - Core IR data structure tests ------------------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "ir/Module.h"

#include <gtest/gtest.h>

using namespace llvmmd;

TEST(Types, Interning) {
  Context Ctx;
  EXPECT_EQ(Ctx.getInt32Ty(), Ctx.getIntTy(32));
  EXPECT_NE(Ctx.getInt32Ty(), Ctx.getInt64Ty());
  EXPECT_EQ(Ctx.getPtrTy(), Ctx.getPtrTy());
  EXPECT_TRUE(Ctx.getInt1Ty()->isBool());
  EXPECT_EQ(Ctx.getInt32Ty()->getName(), "i32");
  EXPECT_EQ(Ctx.getInt32Ty()->getStoreSize(), 4u);
  EXPECT_EQ(Ctx.getInt1Ty()->getStoreSize(), 1u);
  EXPECT_EQ(Ctx.getFloatTy()->getStoreSize(), 8u);
}

TEST(Types, FunctionTypeInterning) {
  Context Ctx;
  FunctionType *A = Ctx.getFunctionTy(Ctx.getInt32Ty(), {Ctx.getInt32Ty()});
  FunctionType *B = Ctx.getFunctionTy(Ctx.getInt32Ty(), {Ctx.getInt32Ty()});
  FunctionType *C = Ctx.getFunctionTy(Ctx.getInt32Ty(), {Ctx.getInt64Ty()});
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
}

TEST(Constants, IntInterningAndCanonicalization) {
  Context Ctx;
  EXPECT_EQ(Ctx.getInt32(7), Ctx.getInt32(7));
  EXPECT_NE(Ctx.getInt32(7), Ctx.getInt64(7));
  // Values canonicalize by sign extension from the width.
  ConstantInt *A = Ctx.getInt(Ctx.getInt8Ty(), 0xFF);
  EXPECT_EQ(A->getSExtValue(), -1);
  EXPECT_EQ(A->getZExtValue(), 0xFFu);
  EXPECT_EQ(A, Ctx.getInt(Ctx.getInt8Ty(), -1));
}

TEST(Constants, Predicates) {
  Context Ctx;
  EXPECT_TRUE(Ctx.getInt32(0)->isZero());
  EXPECT_TRUE(Ctx.getInt32(1)->isOne());
  EXPECT_TRUE(Ctx.getTrue()->isTrue());
  EXPECT_TRUE(Ctx.getFalse()->isFalse());
  EXPECT_TRUE(Ctx.getInt32(64)->isPowerOf2());
  EXPECT_FALSE(Ctx.getInt32(65)->isPowerOf2());
  EXPECT_FALSE(Ctx.getInt32(0)->isPowerOf2());
}

TEST(Constants, FloatAndSpecials) {
  Context Ctx;
  EXPECT_EQ(Ctx.getFloat(2.5), Ctx.getFloat(2.5));
  EXPECT_NE(Ctx.getFloat(2.5), Ctx.getFloat(2.25));
  EXPECT_EQ(Ctx.getNullPtr(), Ctx.getNullPtr());
  EXPECT_EQ(Ctx.getUndef(Ctx.getInt32Ty()), Ctx.getUndef(Ctx.getInt32Ty()));
  EXPECT_NE(Ctx.getUndef(Ctx.getInt32Ty()), Ctx.getUndef(Ctx.getInt64Ty()));
}

namespace {

/// Builds `f(a, b) { x = a + b; y = x * a; ret y }` for use-list tests.
struct SimpleFunc {
  Context Ctx;
  std::unique_ptr<Module> M;
  Function *F;
  Value *X, *Y;

  SimpleFunc() {
    M = std::make_unique<Module>(Ctx);
    Type *I32 = Ctx.getInt32Ty();
    F = M->createFunction(Ctx.getFunctionTy(I32, {I32, I32}), "f");
    IRBuilder B(Ctx);
    B.setInsertPoint(F->createBlock("entry"));
    X = B.createAdd(F->getArg(0), F->getArg(1), "x");
    Y = B.createMul(X, F->getArg(0), "y");
    B.createRet(Y);
  }
};

} // namespace

TEST(UseLists, TrackUses) {
  SimpleFunc S;
  EXPECT_EQ(S.X->getNumUses(), 1u);
  EXPECT_TRUE(S.X->hasOneUse());
  // arg0 is used by both the add and the mul.
  EXPECT_EQ(S.F->getArg(0)->getNumUses(), 2u);
  EXPECT_EQ(S.Y->getNumUses(), 1u); // the return
}

TEST(UseLists, ReplaceAllUsesWith) {
  SimpleFunc S;
  Value *C = S.Ctx.getInt32(5);
  S.X->replaceAllUsesWith(C);
  EXPECT_TRUE(S.X->use_empty());
  auto *Mul = cast<Instruction>(S.Y);
  EXPECT_EQ(Mul->getOperand(0), C);
}

TEST(UseLists, SetOperandMaintainsLists) {
  SimpleFunc S;
  auto *Mul = cast<Instruction>(S.Y);
  size_t ArgUses = S.F->getArg(0)->getNumUses();
  Mul->setOperand(1, S.F->getArg(1));
  EXPECT_EQ(S.F->getArg(0)->getNumUses(), ArgUses - 1);
}

TEST(Instructions, OpcodeClassification) {
  EXPECT_TRUE(isIntBinaryOp(Opcode::Add));
  EXPECT_TRUE(isFloatBinaryOp(Opcode::FMul));
  EXPECT_FALSE(isIntBinaryOp(Opcode::FMul));
  EXPECT_TRUE(isCommutativeOp(Opcode::Mul));
  EXPECT_FALSE(isCommutativeOp(Opcode::Sub));
  EXPECT_TRUE(isTerminatorOp(Opcode::Ret));
  EXPECT_TRUE(isCastOp(Opcode::SExt));
}

TEST(Instructions, PredHelpers) {
  EXPECT_EQ(swapPred(ICmpPred::SLT), ICmpPred::SGT);
  EXPECT_EQ(swapPred(ICmpPred::EQ), ICmpPred::EQ);
  EXPECT_EQ(invertPred(ICmpPred::SLT), ICmpPred::SGE);
  EXPECT_EQ(invertPred(ICmpPred::NE), ICmpPred::EQ);
  for (auto P : {ICmpPred::EQ, ICmpPred::NE, ICmpPred::SLT, ICmpPred::SLE,
                 ICmpPred::SGT, ICmpPred::SGE, ICmpPred::ULT, ICmpPred::ULE,
                 ICmpPred::UGT, ICmpPred::UGE}) {
    EXPECT_EQ(swapPred(swapPred(P)), P);
    EXPECT_EQ(invertPred(invertPred(P)), P);
  }
}

TEST(Instructions, SideEffectQueries) {
  SimpleFunc S;
  IRBuilder B(S.Ctx);
  Function *F2 = S.M->createFunction(
      S.Ctx.getFunctionTy(S.Ctx.getVoidTy(), {S.Ctx.getPtrTy()}), "w");
  B.setInsertPoint(S.F->getEntryBlock());
  // Build detached checks through fresh instructions in a scratch block.
  Function *RO = S.M->createFunction(
      S.Ctx.getFunctionTy(S.Ctx.getInt32Ty(), {}), "ro");
  RO->setMemoryEffect(MemoryEffect::ReadOnly);
  Function *RN = S.M->createFunction(
      S.Ctx.getFunctionTy(S.Ctx.getInt32Ty(), {}), "rn");
  RN->setMemoryEffect(MemoryEffect::ReadNone);
  BasicBlock *BB = S.F->createBlock("scratch");
  B.setInsertPoint(BB);
  Value *P = B.createAlloca(S.Ctx.getInt32Ty());
  Instruction *St = B.createStore(S.Ctx.getInt32(1), P);
  Value *Ld = B.createLoad(S.Ctx.getInt32Ty(), P);
  Value *CW = B.createCall(F2, {P});
  Value *CR = B.createCall(RO, {}, "cr");
  Value *CN = B.createCall(RN, {}, "cn");
  EXPECT_TRUE(St->hasSideEffects());
  EXPECT_TRUE(cast<Instruction>(Ld)->mayReadMemory());
  EXPECT_FALSE(cast<Instruction>(Ld)->mayWriteMemory());
  EXPECT_TRUE(cast<Instruction>(CW)->hasSideEffects());
  EXPECT_FALSE(cast<Instruction>(CR)->mayWriteMemory());
  EXPECT_TRUE(cast<Instruction>(CR)->mayReadMemory());
  EXPECT_FALSE(cast<Instruction>(CN)->mayReadMemory());
}

TEST(BasicBlocks, SuccessorsAndPredecessors) {
  Context Ctx;
  Module M(Ctx);
  Type *I32 = Ctx.getInt32Ty();
  Function *F = M.createFunction(
      Ctx.getFunctionTy(I32, {Ctx.getInt1Ty()}), "f");
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *T = F->createBlock("t");
  BasicBlock *E = F->createBlock("e");
  IRBuilder B(Ctx);
  B.setInsertPoint(Entry);
  B.createCondBr(F->getArg(0), T, E);
  B.setInsertPoint(T);
  B.createRet(Ctx.getInt32(1));
  B.setInsertPoint(E);
  B.createRet(Ctx.getInt32(2));

  auto Succs = Entry->successors();
  ASSERT_EQ(Succs.size(), 2u);
  EXPECT_EQ(Succs[0], T);
  EXPECT_EQ(Succs[1], E);
  auto Preds = T->predecessors();
  ASSERT_EQ(Preds.size(), 1u);
  EXPECT_EQ(Preds[0], Entry);
  EXPECT_TRUE(E->predecessors().size() == 1);
  EXPECT_EQ(Entry->getTerminator()->getOpcode(), Opcode::Br);
}

TEST(BasicBlocks, PhiHelpers) {
  Context Ctx;
  Module M(Ctx);
  Type *I32 = Ctx.getInt32Ty();
  Function *F = M.createFunction(Ctx.getFunctionTy(I32, {}), "f");
  BasicBlock *A = F->createBlock("a");
  BasicBlock *BJ = F->createBlock("j");
  IRBuilder B(Ctx);
  B.setInsertPoint(BJ);
  PhiNode *P = B.createPhi(I32, "p");
  P->addIncoming(Ctx.getInt32(1), A);
  EXPECT_EQ(P->getNumIncoming(), 1u);
  EXPECT_EQ(P->getIncomingValueForBlock(A), Ctx.getInt32(1));
  EXPECT_EQ(P->getBlockIndex(A), 0);
  P->removeIncoming(0);
  EXPECT_EQ(P->getNumIncoming(), 0u);
  // Phis group at the head; getFirstNonPhi skips them.
  PhiNode *P2 = B.createPhi(I32, "p2");
  B.createRet(P2);
  EXPECT_EQ(*BJ->getFirstNonPhi(), BJ->getTerminator());
  EXPECT_EQ(BJ->phis().size(), 2u);
}

TEST(Module, LookupAndGlobals) {
  Context Ctx;
  Module M(Ctx, "m");
  Function *F = M.createFunction(Ctx.getFunctionTy(Ctx.getVoidTy(), {}),
                                 "foo");
  EXPECT_EQ(M.getFunction("foo"), F);
  EXPECT_EQ(M.getFunction("bar"), nullptr);
  GlobalVariable *G = M.createGlobal(Ctx.getInt32Ty(), "g", Ctx.getInt32(3),
                                     true);
  EXPECT_EQ(M.getGlobal("g"), G);
  EXPECT_TRUE(G->isConstantGlobal());
  EXPECT_EQ(cast<ConstantInt>(G->getInitializer())->getSExtValue(), 3);
  EXPECT_TRUE(F->isDeclaration());
  EXPECT_EQ(M.definedFunctions().size(), 0u);
}
