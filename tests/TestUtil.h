//===- TestUtil.h - Shared test helpers --------------------------*- C++ -*-===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//

#ifndef LLVMMD_TESTS_TESTUTIL_H
#define LLVMMD_TESTS_TESTUTIL_H

#include "ir/Module.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace llvmmd {
namespace testutil {

/// Parses IR text, failing the test on error.
inline std::unique_ptr<Module> parseOrDie(Context &Ctx,
                                          const std::string &Text) {
  ParseResult R = parseModule(Ctx, Text);
  EXPECT_TRUE(static_cast<bool>(R)) << "parse error: " << R.Error;
  return std::move(R.M);
}

/// Expects the module to verify cleanly.
inline void expectVerified(const Module &M) {
  std::vector<std::string> Errors;
  bool OK = verifyModule(M, Errors);
  std::string Joined;
  for (const std::string &E : Errors)
    Joined += E + "\n";
  EXPECT_TRUE(OK) << Joined;
}

} // namespace testutil
} // namespace llvmmd

#endif // LLVMMD_TESTS_TESTUTIL_H
