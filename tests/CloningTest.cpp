//===- CloningTest.cpp - Module/function/block cloning tests --------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "ir/Cloning.h"
#include "support/Arena.h"
#include "ir/Interpreter.h"
#include "workload/Generator.h"

#include <gtest/gtest.h>

using namespace llvmmd;
using namespace llvmmd::testutil;

TEST(Cloning, ModuleDeepCopyIsIndependent) {
  Context Ctx;
  auto M = parseOrDie(Ctx, R"(
@g = global i32 10
declare i64 @strlen(ptr) readonly
define i32 @f(i32 %a) {
entry:
  %v = load i32, ptr @g
  %r = add i32 %v, %a
  store i32 %r, ptr @g
  ret i32 %r
}
)");
  auto Clone = cloneModule(*M);
  expectVerified(*Clone);
  // Structural copy...
  EXPECT_EQ(printModule(*M), printModule(*Clone));
  // ...that references its own globals, not the original's.
  GlobalVariable *G1 = M->getGlobal("g");
  GlobalVariable *G2 = Clone->getGlobal("g");
  ASSERT_NE(G2, nullptr);
  EXPECT_NE(G1, G2);
  for (const auto &BB : Clone->getFunction("f")->blocks())
    for (Instruction *I : *BB)
      for (Value *Op : I->operands())
        EXPECT_NE(Op, static_cast<Value *>(G1))
            << "clone still references the original module's global";
  // Callee declarations are remapped too.
  EXPECT_EQ(Clone->getFunction("strlen")->getMemoryEffect(),
            MemoryEffect::ReadOnly);
  // Mutating the clone leaves the original untouched.
  Clone->getFunction("f")->dropBody();
  expectVerified(*M);
  EXPECT_EQ(M->getFunction("f")->getNumBlocks(), 1u);
}

TEST(Cloning, ClonePreservesBehavior) {
  Context Ctx;
  auto M = generateBenchmark(Ctx, [] {
    BenchmarkProfile P = getProfile("mcf");
    P.FunctionCount = 5;
    return P;
  }());
  auto Clone = cloneModule(*M);
  expectVerified(*Clone);
  Interpreter IA(*M), IB(*Clone);
  uint64_t SA = IA.materializeString("s");
  uint64_t SB = IB.materializeString("s");
  for (Function *F : M->definedFunctions()) {
    Function *FC = Clone->getFunction(F->getName());
    for (int T = 0; T < 3; ++T) {
      auto RA = IA.run(*F, {RtValue::makeInt(T), RtValue::makeInt(-T),
                            RtValue::makePtr(SA)});
      auto RB = IB.run(*FC, {RtValue::makeInt(T), RtValue::makeInt(-T),
                             RtValue::makePtr(SB)});
      ASSERT_EQ(RA.Status, RB.Status);
      if (RA.Status == ExecStatus::OK)
        EXPECT_TRUE(RA.Value == RB.Value);
    }
  }
}

TEST(Cloning, CloneInstructionCoversAllOpcodes) {
  Context Ctx;
  auto M = parseOrDie(Ctx, R"(
declare i32 @abs(i32) readnone
define i32 @f(i32 %a, ptr %p, i1 %c) {
entry:
  %add = add i32 %a, 1
  %cmp = icmp slt i32 %add, 5
  %sel = select i1 %cmp, i32 %add, i32 0
  %al = alloca i32, i64 2
  %gep = getelementptr i32, ptr %al, i64 1
  store i32 %sel, ptr %gep
  %ld = load i32, ptr %gep
  %cl = call i32 @abs(i32 %ld)
  %zx = zext i32 %cl to i64
  %tr = trunc i64 %zx to i32
  br i1 %c, label %t, label %e
t:
  br label %j
e:
  br label %j
j:
  %phi = phi i32 [ %tr, %t ], [ 0, %e ]
  ret i32 %phi
}
)");
  Function *F = M->getFunction("f");
  Arena Scratch;
  for (const auto &BB : F->blocks()) {
    for (Instruction *I : *BB) {
      Instruction *C = cloneInstruction(I, Scratch);
      EXPECT_EQ(C->getOpcode(), I->getOpcode());
      EXPECT_EQ(C->getNumOperands(), I->getNumOperands());
      for (unsigned K = 0; K < I->getNumOperands(); ++K)
        EXPECT_EQ(C->getOperand(K), I->getOperand(K));
      C->dropAllReferences();
    }
  }
}

TEST(Cloning, CloneBlocksRemapsInternalEdges) {
  Context Ctx;
  auto M = parseOrDie(Ctx, R"(
define i32 @f(i32 %n) {
entry:
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %i2, %b ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %b, label %x
b:
  %i2 = add i32 %i, 1
  br label %h
x:
  ret i32 %i
}
)");
  Function *F = M->getFunction("f");
  std::vector<BasicBlock *> LoopBlocks;
  for (const auto &BB : F->blocks())
    if (BB->getName() == "h" || BB->getName() == "b")
      LoopBlocks.push_back(BB);
  std::map<const Value *, Value *> VMap;
  std::map<const BasicBlock *, BasicBlock *> BMap;
  auto Clones = cloneBlocks(*F, LoopBlocks, VMap, BMap, ".c");
  ASSERT_EQ(Clones.size(), 2u);
  // The cloned latch branches to the cloned header, not the original.
  BasicBlock *ClonedB = BMap.at(LoopBlocks[1]);
  auto *Br = cast<BranchInst>(ClonedB->getTerminator());
  EXPECT_EQ(Br->getSuccessor(0), BMap.at(LoopBlocks[0]));
  // The cloned phi keeps its external entry (from `entry`) unmapped and
  // remaps the latch entry.
  auto *ClonedPhi = cast<PhiNode>(BMap.at(LoopBlocks[0])->front());
  bool SawEntry = false, SawClonedLatch = false;
  for (unsigned K = 0; K < ClonedPhi->getNumIncoming(); ++K) {
    SawEntry |= ClonedPhi->getIncomingBlock(K)->getName() == "entry";
    SawClonedLatch |= ClonedPhi->getIncomingBlock(K) == ClonedB;
  }
  EXPECT_TRUE(SawEntry);
  EXPECT_TRUE(SawClonedLatch);
  // The cloned add uses the cloned phi.
  auto *ClonedAdd = cast<Instruction>(VMap.at(
      *std::next(LoopBlocks[1]->begin(), 0)));
  EXPECT_EQ(ClonedAdd->getOperand(0), VMap.at(LoopBlocks[0]->front()));
}
