//===- TelemetryTest.cpp - Metrics / trace / log unit tests -------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
// The observability stack's own tests: histogram bucket edges, counter
// correctness under concurrent writers (run under TSan by the tsan
// preset), Chrome trace-event JSON well-formedness, logger level
// filtering — and the load-bearing invariant that none of it ever leaks
// into the deterministic report channel: suite JSON is byte-identical
// with tracing on or off.
//
//===----------------------------------------------------------------------===//

#include "support/Log.h"
#include "support/Telemetry.h"
#include "support/Trace.h"

#include "driver/ValidationEngine.h"
#include "ir/Module.h"
#include "opt/Pass.h"
#include "workload/Generator.h"
#include "workload/Profiles.h"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

using namespace llvmmd;

//===----------------------------------------------------------------------===//
// Counters and gauges
//===----------------------------------------------------------------------===//

TEST(TelemetryTest, CounterSumsConcurrentWriters) {
  // Registered (not stack-allocated) so the instrument outlives the test
  // the way production counters do; the name is test-local.
  Counter &C = telemetry().counter("llvmmd_test_concurrent_total",
                                   "concurrency test counter");
  uint64_t Before = C.value();
  constexpr unsigned Threads = 8;
  constexpr unsigned PerThread = 20000;
  std::vector<std::thread> Pool;
  for (unsigned T = 0; T < Threads; ++T)
    Pool.emplace_back([&C] {
      for (unsigned I = 0; I < PerThread; ++I)
        C.inc();
    });
  for (std::thread &T : Pool)
    T.join();
  EXPECT_EQ(C.value() - Before, uint64_t(Threads) * PerThread);
}

TEST(TelemetryTest, RegistryReturnsSameInstrumentForSameName) {
  Counter &A = telemetry().counter("llvmmd_test_identity_total", "first");
  Counter &B = telemetry().counter("llvmmd_test_identity_total", "second");
  EXPECT_EQ(&A, &B);
  Gauge &G1 = telemetry().gauge("llvmmd_test_identity_gauge", "g");
  Gauge &G2 = telemetry().gauge("llvmmd_test_identity_gauge", "g");
  EXPECT_EQ(&G1, &G2);
}

TEST(TelemetryTest, GaugeSetAndAdd) {
  Gauge &G = telemetry().gauge("llvmmd_test_depth", "gauge test");
  G.set(42);
  EXPECT_EQ(G.value(), 42);
  G.add(-40);
  EXPECT_EQ(G.value(), 2);
  G.set(0);
}

//===----------------------------------------------------------------------===//
// Histogram bucket edges
//===----------------------------------------------------------------------===//

TEST(TelemetryTest, HistogramBucketEdges) {
  Histogram &H = telemetry().histogram("llvmmd_test_edges_us",
                                       "bucket edge test", {10, 100, 1000});
  // Upper bounds are inclusive: an observation exactly on a bound lands in
  // that bound's bucket, one past it lands in the next.
  H.observe(0);    // bucket 0 (<= 10)
  H.observe(10);   // bucket 0 (edge, inclusive)
  H.observe(11);   // bucket 1
  H.observe(100);  // bucket 1 (edge)
  H.observe(101);  // bucket 2
  H.observe(1000); // bucket 2 (edge)
  H.observe(1001); // overflow (+Inf)
  H.observe(~0ull); // overflow

  EXPECT_EQ(H.bucketCount(0), 2u);
  EXPECT_EQ(H.bucketCount(1), 2u);
  EXPECT_EQ(H.bucketCount(2), 2u);
  EXPECT_EQ(H.bucketCount(3), 2u); // implicit +Inf bucket
  EXPECT_EQ(H.count(), 8u);
  EXPECT_EQ(H.sum(), 0ull + 10 + 11 + 100 + 101 + 1000 + 1001 + ~0ull);
}

TEST(TelemetryTest, DefaultLatencyBoundsAreSortedAndShared) {
  std::vector<uint64_t> B = defaultLatencyBoundsMicros();
  ASSERT_FALSE(B.empty());
  for (size_t I = 1; I < B.size(); ++I)
    EXPECT_LT(B[I - 1], B[I]);
  // The contract fleet roll-ups rely on: every call returns the same
  // boundaries, so same-name histograms merge bucket-for-bucket.
  EXPECT_EQ(B, defaultLatencyBoundsMicros());
}

//===----------------------------------------------------------------------===//
// Prometheus exposition
//===----------------------------------------------------------------------===//

TEST(TelemetryTest, RenderPrometheusShape) {
  Counter &C =
      telemetry().counter("llvmmd_test_render_total", "render test counter");
  C.add(3);
  Histogram &H = telemetry().histogram("llvmmd_test_render_us",
                                       "render test histogram", {5, 50});
  H.observe(1);
  H.observe(100);

  std::string Text = telemetry().renderPrometheus();
  EXPECT_NE(Text.find("# HELP llvmmd_test_render_total render test counter"),
            std::string::npos);
  EXPECT_NE(Text.find("# TYPE llvmmd_test_render_total counter"),
            std::string::npos);
  EXPECT_NE(Text.find("# TYPE llvmmd_test_render_us histogram"),
            std::string::npos);
  // Cumulative buckets with the +Inf terminator, then sum and count.
  EXPECT_NE(Text.find("llvmmd_test_render_us_bucket{le=\"5\"} 1"),
            std::string::npos);
  EXPECT_NE(Text.find("llvmmd_test_render_us_bucket{le=\"50\"} 1"),
            std::string::npos);
  EXPECT_NE(Text.find("llvmmd_test_render_us_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(Text.find("llvmmd_test_render_us_sum 101"), std::string::npos);
  EXPECT_NE(Text.find("llvmmd_test_render_us_count 2"), std::string::npos);
  // Families come out sorted by name, so the exposition is deterministic.
  EXPECT_LT(Text.find("llvmmd_test_render_total"),
            Text.find("llvmmd_test_render_us"));
}

//===----------------------------------------------------------------------===//
// Trace collection and JSON
//===----------------------------------------------------------------------===//

namespace {

/// Every test that enables tracing must disable it on every exit path —
/// the tracer is process-global and a leak would silently slow later
/// tests (and TSan runs) in this binary.
struct TraceGuard {
  TraceGuard() { traceEnable(); }
  ~TraceGuard() { traceDisable(); }
};

} // namespace

TEST(TelemetryTest, TraceSpansCollectAndRenderAsChromeJSON) {
  TraceGuard G;
  ASSERT_TRUE(traceEnabled());
  {
    TraceSpan Outer("outer", "test", "detail with \"quotes\" and \\slashes");
    TraceSpan Inner("inner", "test");
  }
  traceCompleteEvent("direct", "test", 5, 10, "cross-thread");
  EXPECT_EQ(traceEventCount(), 3u);

  std::string Json = traceToJSON();
  EXPECT_EQ(Json.find("displayTimeUnit") != std::string::npos, true);
  EXPECT_NE(Json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Json.find("\"name\": \"outer\""), std::string::npos);
  EXPECT_NE(Json.find("\"name\": \"inner\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(Json.find("\"ts\": 5"), std::string::npos);
  EXPECT_NE(Json.find("\"dur\": 10"), std::string::npos);
  // The arg string is escaped, not emitted raw.
  EXPECT_NE(Json.find("\\\"quotes\\\""), std::string::npos);
  EXPECT_EQ(Json.find("detail with \"quotes\""), std::string::npos);
}

TEST(TelemetryTest, TraceDisabledCollectsNothing) {
  ASSERT_FALSE(traceEnabled());
  size_t Before = traceEventCount();
  {
    TraceSpan Span("ignored", "test");
  }
  traceCompleteEvent("also-ignored", "test", 0, 1);
  EXPECT_EQ(traceEventCount(), Before);
}

TEST(TelemetryTest, TraceEnableResetsCollection) {
  {
    TraceGuard G;
    TraceSpan("first", "test", std::string());
  }
  EXPECT_GE(traceEventCount(), 1u);
  TraceGuard G2;
  EXPECT_EQ(traceEventCount(), 0u);
}

TEST(TelemetryTest, TraceIdTagsSpansAndLogLines) {
  uint64_t Id = traceMintTraceId();
  ASSERT_NE(Id, 0u);
  EXPECT_NE(Id, traceMintTraceId()) << "minted ids must differ";

  // The log tag is the grep key joining a warning line to its flame.
  EXPECT_EQ(traceLogTag(0), "");
  std::string Tag = traceLogTag(Id);
  EXPECT_EQ(Tag.rfind(" trace 0x", 0), 0u) << Tag;

  TraceGuard G;
  traceSetCurrentTraceId(Id);
  { TraceSpan Span("tagged", "test"); }
  traceSetCurrentTraceId(0);
  { TraceSpan Span("untagged", "test"); }
  std::string Json = traceToJSON();
  // The hex in the log tag is the same hex in args.trace_id.
  std::string Hex = Tag.substr(std::strlen(" trace "));
  EXPECT_NE(Json.find("\"trace_id\": \"" + Hex + "\""), std::string::npos)
      << Json;
  // The untagged span carries no trace_id.
  size_t Untagged = Json.find("\"name\": \"untagged\"");
  ASSERT_NE(Untagged, std::string::npos);
  EXPECT_EQ(Json.find("trace_id", Untagged), std::string::npos);
}

TEST(TelemetryTest, TraceBlobRoundTripsAcrossEpochs) {
  uint64_t Id = traceMintTraceId();
  std::string Blob;
  {
    TraceGuard G;
    traceCompleteEventForTrace(Id, "worker_span", "test", 7, 11, "shipped");
    Blob = traceSerializeEvents(0);
    traceSetCurrentTraceId(0);
  }
  ASSERT_FALSE(Blob.empty());

  // A fresh enable is a fresh epoch — exactly the router's position when a
  // worker's blob arrives. Ingest rebases the foreign timestamps onto it.
  TraceGuard G;
  std::string Err;
  ASSERT_TRUE(traceIngestEvents(Blob, &Err)) << Err;
  EXPECT_EQ(traceEventCount(), 1u);
  std::string Json = traceToJSON();
  EXPECT_NE(Json.find("\"name\": \"worker_span\""), std::string::npos);
  EXPECT_NE(Json.find("\"dur\": 11"), std::string::npos);
  EXPECT_NE(Json.find("trace_id"), std::string::npos);

  // Malformed input is rejected whole: no partial merges.
  size_t Before = traceEventCount();
  EXPECT_FALSE(traceIngestEvents(Blob.substr(0, Blob.size() - 3), &Err));
  EXPECT_FALSE(traceIngestEvents("not a blob", &Err));
  EXPECT_FALSE(traceIngestEvents(Blob + "x", &Err));
  EXPECT_EQ(traceEventCount(), Before);
}

//===----------------------------------------------------------------------===//
// Reports stay byte-identical with telemetry on or off
//===----------------------------------------------------------------------===//

TEST(TelemetryTest, SuiteJSONByteIdenticalWithTracingOnAndOff) {
  BenchmarkProfile P = getProfile("sqlite");
  P.FunctionCount = 10;

  auto RunSuite = [&](bool Traced) {
    Context Ctx;
    auto M = generateBenchmark(Ctx, P);
    EngineConfig C;
    C.Threads = 2;
    ValidationEngine Engine(C);
    std::string Json;
    if (Traced) {
      TraceGuard G;
      Json = suiteToJSON(Engine.runSuite({M.get()}, getPaperPipeline()).Report);
      EXPECT_GT(traceEventCount(), 0u) << "tracing was on but no spans landed";
    } else {
      Json = suiteToJSON(Engine.runSuite({M.get()}, getPaperPipeline()).Report);
    }
    return Json;
  };

  std::string Plain = RunSuite(false);
  std::string Traced = RunSuite(true);
  std::string PlainAgain = RunSuite(false);
  EXPECT_EQ(Plain, Traced) << "tracing changed the suite report bytes";
  EXPECT_EQ(Plain, PlainAgain);
  EXPECT_EQ(Plain.find("\"wall_us\""), std::string::npos);
  EXPECT_EQ(Plain.find("\"phase_us\""), std::string::npos);
}

TEST(TelemetryTest, TimingOptInEmitsPhaseBreakdown) {
  BenchmarkProfile P = getProfile("sqlite");
  P.FunctionCount = 6;
  Context Ctx;
  auto M = generateBenchmark(Ctx, P);
  ValidationEngine Engine;
  SuiteRun Run = Engine.runSuite({M.get()}, getPaperPipeline());
  EXPECT_FALSE(Run.Report.PhaseMicroseconds.empty());

  std::string Timed = suiteToJSON(Run.Report, /*IncludeTiming=*/true);
  EXPECT_NE(Timed.find("\"wall_us\""), std::string::npos);
  EXPECT_NE(Timed.find("\"phase_us\""), std::string::npos);
  EXPECT_NE(Timed.find("\"optimize\""), std::string::npos);
  std::string Csv = suiteToCSV(Run.Report, /*IncludeTiming=*/true);
  EXPECT_NE(Csv.find("phase,wall_us"), std::string::npos);
  // And the default emitters never show it.
  EXPECT_EQ(suiteToJSON(Run.Report).find("phase_us"), std::string::npos);
  EXPECT_EQ(suiteToCSV(Run.Report).find("phase,wall_us"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Logger
//===----------------------------------------------------------------------===//

namespace {

/// Restores the logger's global state (level, sink, shape) on scope exit.
struct LogGuard {
  LogGuard() = default;
  ~LogGuard() {
    setLogSinkForTesting(nullptr);
    setLogJSON(false);
    setLogLevel(LogLevel::Warn);
  }
};

} // namespace

TEST(TelemetryTest, ParseLogLevelSpellings) {
  LogLevel L;
  EXPECT_TRUE(parseLogLevel("debug", L));
  EXPECT_EQ(L, LogLevel::Debug);
  EXPECT_TRUE(parseLogLevel("warning", L));
  EXPECT_EQ(L, LogLevel::Warn);
  EXPECT_TRUE(parseLogLevel("silent", L));
  EXPECT_EQ(L, LogLevel::Off);
  EXPECT_FALSE(parseLogLevel("verbose", L));
  EXPECT_FALSE(parseLogLevel("", L));
}

TEST(TelemetryTest, LoggerFiltersBelowThreshold) {
  LogGuard G;
  std::string Sink;
  setLogSinkForTesting(&Sink);

  setLogLevel(LogLevel::Warn);
  logDebug("test", "dropped debug");
  logInfo("test", "dropped info");
  logWarn("test", "kept warn");
  logError("test", "kept error");
  EXPECT_EQ(Sink.find("dropped"), std::string::npos);
  EXPECT_NE(Sink.find("llvmmd: warn: [test] kept warn"), std::string::npos);
  EXPECT_NE(Sink.find("llvmmd: error: [test] kept error"), std::string::npos);

  Sink.clear();
  setLogLevel(LogLevel::Off);
  logError("test", "dropped even errors");
  EXPECT_TRUE(Sink.empty());

  Sink.clear();
  setLogLevel(LogLevel::Debug);
  logDebug("test", "now visible");
  EXPECT_NE(Sink.find("now visible"), std::string::npos);
}

TEST(TelemetryTest, LoggerJSONLines) {
  LogGuard G;
  std::string Sink;
  setLogSinkForTesting(&Sink);
  setLogLevel(LogLevel::Info);
  setLogJSON(true);
  logInfo("server", "a \"quoted\" message");
  EXPECT_NE(Sink.find("\"level\": \"info\""), std::string::npos);
  EXPECT_NE(Sink.find("\"component\": \"server\""), std::string::npos);
  EXPECT_NE(Sink.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(Sink.find("\"ts_us\""), std::string::npos);
  EXPECT_EQ(Sink.back(), '\n');
}
