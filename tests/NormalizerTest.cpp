//===- NormalizerTest.cpp - Rewrite rule unit tests -----------------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
// Each test builds a small graph, normalizes it under a controlled rule
// mask, and checks the root's final shape — one test per paper rule.
//
//===----------------------------------------------------------------------===//

#include "normalize/Normalizer.h"

#include "ir/Context.h"
#include "ir/Module.h"

#include <gtest/gtest.h>

using namespace llvmmd;

namespace {

struct NormFixture : ::testing::Test {
  Context Ctx;
  ValueGraph G;
  Type *I32 = Ctx.getInt32Ty();
  Type *I1 = Ctx.getInt1Ty();

  NodeId normalize(NodeId Root, unsigned Mask) {
    RuleConfig C;
    C.Mask = Mask;
    normalizeGraph(G, {Root}, C);
    return G.find(Root);
  }

  NodeId constant(int64_t V) { return G.getConstInt(I32, V); }
  NodeId boolConst(bool B) { return G.getConstBool(I1, B); }

  void expectConst(NodeId N, int64_t V) {
    const Node &Nd = G.node(N);
    ASSERT_EQ(Nd.Kind, NodeKind::ConstInt);
    EXPECT_EQ(Nd.IntVal, V);
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Boolean rules (1)-(4)
//===----------------------------------------------------------------------===//

TEST_F(NormFixture, Rule1_EqSelf) {
  NodeId A = G.getParam(0, I32);
  NodeId Cmp = G.getOp(Opcode::ICmp, I1, {A, A},
                       static_cast<uint8_t>(ICmpPred::EQ));
  EXPECT_EQ(normalize(Cmp, RS_Boolean), boolConst(true));
}

TEST_F(NormFixture, Rule2_NeSelf) {
  NodeId A = G.getParam(0, I32);
  NodeId Cmp = G.getOp(Opcode::ICmp, I1, {A, A},
                       static_cast<uint8_t>(ICmpPred::NE));
  EXPECT_EQ(normalize(Cmp, RS_Boolean), boolConst(false));
}

TEST_F(NormFixture, Rules34_CompareWithBoolConstant) {
  NodeId C = G.getParam(0, I1);
  NodeId EqTrue = G.getOp(Opcode::ICmp, I1, {C, boolConst(true)},
                          static_cast<uint8_t>(ICmpPred::EQ));
  EXPECT_EQ(normalize(EqTrue, RS_Boolean), G.find(C));
  NodeId NeFalse = G.getOp(Opcode::ICmp, I1, {C, boolConst(false)},
                           static_cast<uint8_t>(ICmpPred::NE));
  EXPECT_EQ(normalize(NeFalse, RS_Boolean), G.find(C));
}

TEST_F(NormFixture, BooleanAlgebra) {
  NodeId C = G.getParam(0, I1);
  EXPECT_EQ(normalize(G.getOp(Opcode::And, I1, {C, boolConst(true)}),
                      RS_Boolean),
            G.find(C));
  EXPECT_EQ(normalize(G.getOp(Opcode::And, I1, {C, boolConst(false)}),
                      RS_Boolean),
            boolConst(false));
  EXPECT_EQ(normalize(G.getOp(Opcode::Or, I1, {C, boolConst(true)}),
                      RS_Boolean),
            boolConst(true));
  NodeId NotC = G.getOp(Opcode::Xor, I1, {C, boolConst(true)});
  NodeId NotNotC = G.getOp(Opcode::Xor, I1, {NotC, boolConst(true)});
  EXPECT_EQ(normalize(NotNotC, RS_Boolean), G.find(C));
}

//===----------------------------------------------------------------------===//
// Gamma rules (5)-(6)
//===----------------------------------------------------------------------===//

TEST_F(NormFixture, Rule5_TrueBranchWins) {
  NodeId V1 = constant(10), V2 = constant(20);
  NodeId Gamma = G.getGamma(I32, {{boolConst(true), V1},
                                  {boolConst(false), V2}});
  EXPECT_EQ(normalize(Gamma, RS_PhiSimplify), V1);
}

TEST_F(NormFixture, Rule6_AllBranchesAgree) {
  NodeId C = G.getParam(0, I1);
  NodeId NotC = G.getOp(Opcode::Xor, I1, {C, boolConst(true)});
  NodeId V = constant(7);
  NodeId Gamma = G.getGamma(I32, {{C, V}, {NotC, V}});
  EXPECT_EQ(normalize(Gamma, RS_PhiSimplify), V);
}

TEST_F(NormFixture, Rule6_SingleBranch) {
  NodeId C = G.getParam(0, I1);
  NodeId V = G.getParam(1, I32);
  NodeId Gamma = G.getGamma(I32, {{C, V}});
  EXPECT_EQ(normalize(Gamma, RS_PhiSimplify), G.find(V));
}

TEST_F(NormFixture, GammaDropsFalseBranches) {
  NodeId C = G.getParam(0, I1);
  NodeId V1 = G.getParam(1, I32), V2 = G.getParam(2, I32);
  NodeId Gamma =
      G.getGamma(I32, {{C, V1}, {boolConst(false), V2}});
  // Dropping the dead branch leaves a single-branch γ, which collapses.
  EXPECT_EQ(normalize(Gamma, RS_PhiSimplify), G.find(V1));
}

TEST_F(NormFixture, PaperSection4Example) {
  // x → φ(φ(c,1,2) == φ(c,1,2), φ(c,1,1), 0) ↓ 1 using rules (1),(5),(6).
  NodeId C = G.getParam(0, I1);
  NodeId NotC = G.getOp(Opcode::Xor, I1, {C, boolConst(true)});
  NodeId AB = G.getGamma(I32, {{C, constant(1)}, {NotC, constant(2)}});
  NodeId Cond = G.getOp(Opcode::ICmp, I1, {AB, AB},
                        static_cast<uint8_t>(ICmpPred::EQ));
  NodeId D = G.getGamma(I32, {{C, constant(1)}, {NotC, constant(1)}});
  NodeId NotCond = G.getOp(Opcode::Xor, I1, {Cond, boolConst(true)});
  NodeId X = G.getGamma(I32, {{Cond, D}, {NotCond, constant(0)}});
  NodeId Result = normalize(X, RS_Boolean | RS_PhiSimplify);
  expectConst(Result, 1);
}

//===----------------------------------------------------------------------===//
// Eta/Mu rules (7)-(9)
//===----------------------------------------------------------------------===//

TEST_F(NormFixture, Rule7_LoopNeverExecutes) {
  NodeId Init = G.getParam(0, I32);
  NodeId Mu = G.makeMu(I32);
  G.setMuOperands(Mu, Init, G.getOp(Opcode::Add, I32, {Mu, constant(1)}));
  NodeId Eta = G.getEta(I32, boolConst(false), Mu);
  EXPECT_EQ(normalize(Eta, RS_EtaMu), G.find(Init));
}

TEST_F(NormFixture, Rule7_FirstIterationGuardFolds) {
  // η over a loop `for (i=0; i<0; ...)`: the guard contains the μ, and is
  // false with the μ at its initial value.
  NodeId Zero = constant(0);
  NodeId Mu = G.makeMu(I32);
  G.setMuOperands(Mu, Zero, G.getOp(Opcode::Add, I32, {Mu, constant(1)}));
  NodeId Guard = G.getOp(Opcode::ICmp, I1, {Mu, Zero},
                         static_cast<uint8_t>(ICmpPred::SLT));
  NodeId Eta = G.getEta(I32, Guard, Mu);
  EXPECT_EQ(normalize(Eta, RS_EtaMu), Zero);
}

TEST_F(NormFixture, Rule8_ConstantMu) {
  // The paper's LICM example: η(c, μ(a+3, a+3)) ↓ a+3.
  NodeId A = G.getParam(0, I32);
  NodeId Inv = G.getOp(Opcode::Add, I32, {A, constant(3)});
  NodeId Mu = G.makeMu(I32);
  G.setMuOperands(Mu, Inv, Inv);
  NodeId Eta = G.getEta(I32, G.getParam(1, I1), Mu);
  EXPECT_EQ(normalize(Eta, RS_EtaMu), G.find(Inv));
}

TEST_F(NormFixture, Rule9_SelfReferentialMu) {
  NodeId X = G.getParam(0, I32);
  NodeId Mu = G.makeMu(I32);
  G.setMuOperands(Mu, X, Mu);
  NodeId Eta = G.getEta(I32, G.getParam(1, I1), Mu);
  EXPECT_EQ(normalize(Eta, RS_EtaMu), G.find(X));
}

TEST_F(NormFixture, Rule9_Generalized_SelfBehindInnerEta) {
  // μ whose next is η(c, μ): an inner loop that never modified the value.
  NodeId X = G.getParam(0, I32);
  NodeId Mu = G.makeMu(I32);
  NodeId InnerEta = G.getEta(I32, G.getParam(1, I1), Mu);
  G.setMuOperands(Mu, X, InnerEta);
  NodeId Eta = G.getEta(I32, G.getParam(2, I1), Mu);
  EXPECT_EQ(normalize(Eta, RS_EtaMu), G.find(X));
}

TEST_F(NormFixture, EtaOverLoopFreeValue) {
  NodeId V = G.getOp(Opcode::Add, I32, {G.getParam(0, I32), constant(5)});
  NodeId Eta = G.getEta(I32, G.getParam(1, I1), V);
  EXPECT_EQ(normalize(Eta, RS_EtaMu), G.find(V));
}

TEST_F(NormFixture, EtaKeepsVaryingLoops) {
  NodeId Mu = G.makeMu(I32);
  G.setMuOperands(Mu, constant(0),
                  G.getOp(Opcode::Add, I32, {Mu, constant(1)}));
  NodeId Eta = G.getEta(I32, G.getParam(0, I1), Mu);
  NodeId After = normalize(Eta, RS_EtaMu);
  EXPECT_EQ(G.node(After).Kind, NodeKind::Eta);
}

//===----------------------------------------------------------------------===//
// Constant folding and canonicalization
//===----------------------------------------------------------------------===//

TEST_F(NormFixture, ConstantFolding) {
  expectConst(normalize(G.getOp(Opcode::Add, I32,
                                {constant(3), constant(3)}),
                        RS_ConstFold),
              6);
  expectConst(normalize(G.getOp(Opcode::Mul, I32,
                                {constant(3), constant(2)}),
                        RS_ConstFold),
              6);
  expectConst(normalize(G.getOp(Opcode::Sub, I32,
                                {constant(3), constant(2)}),
                        RS_ConstFold),
              1);
  // Division by zero never folds.
  NodeId Div =
      G.getOp(Opcode::SDiv, I32, {G.getParam(0, I32), constant(0)});
  EXPECT_EQ(G.node(normalize(Div, RS_ConstFold)).Kind, NodeKind::Op);
}

TEST_F(NormFixture, ConstantIdentities) {
  NodeId A = G.getParam(0, I32);
  EXPECT_EQ(normalize(G.getOp(Opcode::Add, I32, {A, constant(0)}),
                      RS_ConstFold),
            G.find(A));
  expectConst(normalize(G.getOp(Opcode::Mul, I32, {A, constant(0)}),
                        RS_ConstFold),
              0);
  expectConst(normalize(G.getOp(Opcode::Xor, I32, {A, A}), RS_ConstFold),
              0);
  EXPECT_EQ(normalize(G.getOp(Opcode::And, I32, {A, A}), RS_ConstFold),
            G.find(A));
}

TEST_F(NormFixture, Canonicalization) {
  NodeId A = G.getParam(0, I32);
  // a + a ↓ shl a 1.
  NodeId Dbl = normalize(G.getOp(Opcode::Add, I32, {A, A}),
                         RS_Canonicalize);
  EXPECT_EQ(G.node(Dbl).Op, Opcode::Shl);
  // mul a 4 ↓ shl a 2.
  NodeId M4 = normalize(G.getOp(Opcode::Mul, I32, {A, constant(4)}),
                        RS_Canonicalize);
  ASSERT_EQ(G.node(M4).Op, Opcode::Shl);
  expectConst(G.operand(M4, 1), 2);
  // add a (-5) ↓ sub a 5.
  NodeId Sub = normalize(G.getOp(Opcode::Add, I32, {A, constant(-5)}),
                         RS_Canonicalize);
  ASSERT_EQ(G.node(Sub).Op, Opcode::Sub);
  expectConst(G.operand(Sub, 1), 5);
  // gt 10 a ↓ lt a 10 (constant moves right, predicate swaps).
  NodeId Cmp = normalize(G.getOp(Opcode::ICmp, I1, {constant(10), A},
                                 static_cast<uint8_t>(ICmpPred::SGT)),
                         RS_Canonicalize);
  EXPECT_EQ(static_cast<ICmpPred>(G.node(Cmp).Pred), ICmpPred::SLT);
  EXPECT_EQ(G.operand(Cmp, 0), G.find(A));
}

TEST_F(NormFixture, FloatFoldIsOptIn) {
  NodeId Sum = G.getOp(Opcode::FAdd, Ctx.getFloatTy(),
                       {G.getConstFloat(Ctx.getFloatTy(), 1.5),
                        G.getConstFloat(Ctx.getFloatTy(), 2.0)});
  // Without the extension, no folding (a paper false-alarm source).
  EXPECT_EQ(G.node(normalize(Sum, RS_Paper)).Kind, NodeKind::Op);
  NodeId Folded = normalize(Sum, RS_Paper | RS_FloatFold);
  ASSERT_EQ(G.node(Folded).Kind, NodeKind::ConstFloat);
  EXPECT_DOUBLE_EQ(G.node(Folded).FloatVal, 3.5);
}

//===----------------------------------------------------------------------===//
// Load/store rules (10)-(11) and friends
//===----------------------------------------------------------------------===//

namespace {

struct MemFixture : NormFixture {
  NodeId Mem0, AllocA, MemA, AllocB, MemB;

  void SetUp() override {
    Mem0 = G.getInitialMem();
    NodeId One = G.getConstInt(Ctx.getInt64Ty(), 1);
    AllocA = G.getAlloc(One, Mem0, 4);
    MemA = G.getAllocMem(AllocA);
    AllocB = G.getAlloc(One, MemA, 4);
    MemB = G.getAllocMem(AllocB);
  }
};

} // namespace

TEST_F(MemFixture, Rule11_LoadOfStoredValue) {
  NodeId X = G.getParam(0, I32);
  NodeId M1 = G.getStore(X, AllocA, MemB);
  NodeId Ld = G.getLoad(I32, AllocA, M1);
  EXPECT_EQ(normalize(Ld, RS_LoadStore), G.find(X));
}

TEST_F(MemFixture, Rule10_LoadJumpsNoAliasStore) {
  NodeId X = G.getParam(0, I32), Y = G.getParam(1, I32);
  NodeId M1 = G.getStore(X, AllocA, MemB);
  NodeId M2 = G.getStore(Y, AllocB, M1);
  NodeId Ld = G.getLoad(I32, AllocA, M2);
  // The load jumps over the store to B and reads X.
  EXPECT_EQ(normalize(Ld, RS_LoadStore), G.find(X));
}

TEST_F(MemFixture, LoadStopsAtMayAliasStore) {
  NodeId P = G.getParam(0, Ctx.getPtrTy());
  NodeId Q = G.getParam(1, Ctx.getPtrTy());
  NodeId M1 = G.getStore(G.getParam(2, I32), P, Mem0);
  NodeId Ld = G.getLoad(I32, Q, M1);
  EXPECT_EQ(G.node(normalize(Ld, RS_LoadStore)).Kind, NodeKind::Load);
}

TEST_F(MemFixture, StoreOverStoreCollapses) {
  NodeId X = G.getParam(0, I32), Y = G.getParam(1, I32);
  NodeId M1 = G.getStore(X, AllocA, MemB);
  NodeId M2 = G.getStore(Y, AllocA, M1);
  NodeId After = normalize(M2, RS_LoadStore);
  // The outer store now chains directly past the overwritten one... and
  // since nothing reads the allocations, the dead-store rule may erase
  // both. Either way X must no longer be reachable from the root.
  std::string Dump = G.dump({After});
  EXPECT_EQ(G.node(G.find(X)).Kind, NodeKind::Param);
}

TEST_F(MemFixture, DeadStoreToLocalAllocation) {
  NodeId X = G.getParam(0, I32);
  NodeId M1 = G.getStore(X, AllocA, MemB);
  NodeId Ret = G.getRet(InvalidNode, M1);
  RuleConfig C;
  C.Mask = RS_LoadStore;
  normalizeGraph(G, {Ret}, C);
  // The store to the never-read local allocation is gone; so are the
  // allocations themselves (their pointers are unused afterwards).
  EXPECT_EQ(G.operand(G.find(Ret), 0), Mem0);
}

TEST_F(MemFixture, EscapedAllocationStoresStay) {
  // Store the pointer itself somewhere: the allocation escapes.
  NodeId P = G.getParam(0, Ctx.getPtrTy());
  NodeId MEsc = G.getStore(AllocA, P, MemB);
  NodeId M1 = G.getStore(G.getParam(1, I32), AllocA, MEsc);
  NodeId Ret = G.getRet(InvalidNode, M1);
  RuleConfig C;
  C.Mask = RS_LoadStore;
  normalizeGraph(G, {Ret}, C);
  EXPECT_EQ(G.node(G.operand(G.find(Ret), 0)).Kind, NodeKind::Store);
}

TEST_F(MemFixture, GlobalFoldExtension) {
  Module M(Ctx);
  M.createGlobal(I32, "answer", Ctx.getInt32(42), /*IsConstant=*/true);
  NodeId GAddr = G.getGlobal("answer", true, Ctx.getPtrTy());
  NodeId Ld = G.getLoad(I32, GAddr, Mem0);
  RuleConfig C;
  C.Mask = RS_Paper;
  C.M = &M;
  normalizeGraph(G, {Ld}, C);
  EXPECT_EQ(G.node(G.find(Ld)).Kind, NodeKind::Load) << "needs extension";
  C.Mask = RS_Paper | RS_GlobalFold;
  normalizeGraph(G, {Ld}, C);
  expectConst(G.find(Ld), 42);
}

TEST_F(MemFixture, LibcCallJumpsOverDisjointStore) {
  // strlen(p) over a store to a non-escaping local: with RS_Libc the call
  // reads the earlier memory state.
  NodeId P = G.getParam(0, Ctx.getPtrTy());
  NodeId M1 = G.getStore(G.getParam(1, I32), AllocA, MemB);
  NodeId Call = G.getCall("strlen", MemoryEffect::ReadOnly,
                          Ctx.getInt64Ty(), {P, M1});
  NodeId CallClean = G.getCall("strlen", MemoryEffect::ReadOnly,
                               Ctx.getInt64Ty(), {P, MemB});
  EXPECT_NE(G.find(Call), G.find(CallClean));
  RuleConfig C;
  C.Mask = RS_Paper | RS_Libc;
  normalizeGraph(G, {Call, CallClean}, C);
  // Both collapse to strlen over the initial memory (the allocations are
  // transparent to a readonly call).
  EXPECT_EQ(G.find(Call), G.find(CallClean));
}

TEST_F(MemFixture, MemsetReadBack) {
  NodeId Fill = constant(65);
  NodeId Len = G.getConstInt(Ctx.getInt64Ty(), 8);
  NodeId Call = G.getCall("memset", MemoryEffect::ReadWrite,
                          Ctx.getVoidTy(), {AllocA, Fill, Len, MemB});
  NodeId MemAfter = G.getCallMem(Call);
  NodeId Ld = G.getLoad(Ctx.getInt8Ty(), AllocA, MemAfter);
  RuleConfig C;
  C.Mask = RS_Paper | RS_Libc;
  normalizeGraph(G, {Ld}, C);
  const Node &After = G.node(G.find(Ld));
  ASSERT_EQ(After.Kind, NodeKind::ConstInt);
  EXPECT_EQ(After.IntVal, 65);
}
