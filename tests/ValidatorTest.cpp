//===- ValidatorTest.cpp - End-to-end validator tests on paper examples --------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "ir/Cloning.h"
#include "opt/BugInjector.h"
#include "opt/Pass.h"
#include "validator/LLVMMD.h"
#include "validator/Validator.h"

#include <gtest/gtest.h>

using namespace llvmmd;
using namespace llvmmd::testutil;

namespace {

struct PairFixture : ::testing::Test {
  Context Ctx;
  std::vector<std::unique_ptr<Module>> Keep;

  ValidationResult validate(const char *A, const char *B,
                            unsigned Mask = RS_Paper) {
    auto MA = parseOrDie(Ctx, A);
    auto MB = parseOrDie(Ctx, B);
    RuleConfig C;
    C.Mask = Mask;
    C.M = MA.get();
    ValidationResult R = validatePair(*MA->definedFunctions().front(),
                                      *MB->definedFunctions().front(), C);
    Keep.push_back(std::move(MA));
    Keep.push_back(std::move(MB));
    return R;
  }
};

} // namespace

TEST_F(PairFixture, PaperSection31BasicBlocks) {
  // B1: x1=3+3; x2=a*x1; x3=x2+x2  vs  B2: y1=a*6; y2=y1<<1.
  auto R = validate(R"(
define i32 @f(i32 %a) {
entry:
  %x1 = add i32 3, 3
  %x2 = mul i32 %a, %x1
  %x3 = add i32 %x2, %x2
  ret i32 %x3
}
)",
                    R"(
define i32 @f(i32 %a) {
entry:
  %y1 = mul i32 %a, 6
  %y2 = shl i32 %y1, 1
  ret i32 %y2
}
)");
  EXPECT_TRUE(R.Validated);
  EXPECT_FALSE(R.EqualOnConstruction);
  EXPECT_GE(R.Rewrites, 2u); // constant fold + add-self
}

TEST_F(PairFixture, IdenticalPairIsO1) {
  const char *Src = R"(
define i32 @f(i32 %a, i32 %b) {
entry:
  %x = add i32 %a, %b
  %y = mul i32 %x, %x
  ret i32 %y
}
)";
  auto R = validate(Src, Src);
  EXPECT_TRUE(R.Validated);
  EXPECT_TRUE(R.EqualOnConstruction) << "best case must need no rewriting";
  EXPECT_EQ(R.Rewrites, 0u);
}

TEST_F(PairFixture, PaperSection4GvnSccpExample) {
  // if (c) {a=1;b=1;d=a;} else {a=2;b=2;d=1;} if (a==b) x=d else x=0;
  // return x  ==>  return 1.
  auto R = validate(R"(
define i32 @f(i1 %c) {
entry:
  br i1 %c, label %t, label %e
t:
  br label %mid
e:
  br label %mid
mid:
  %a = phi i32 [ 1, %t ], [ 2, %e ]
  %b = phi i32 [ 1, %t ], [ 2, %e ]
  %d = phi i32 [ 1, %t ], [ 1, %e ]
  %cc = icmp eq i32 %a, %b
  br i1 %cc, label %t2, label %e2
t2:
  br label %done
e2:
  br label %done
done:
  %x = phi i32 [ %d, %t2 ], [ 0, %e2 ]
  ret i32 %x
}
)",
                    R"(
define i32 @f(i1 %c) {
entry:
  ret i32 1
}
)");
  EXPECT_TRUE(R.Validated);
}

TEST_F(PairFixture, PaperSection4LicmLoopDeletionExample) {
  // x=a+3; c=3; for(i=0;i<n;i++){x=a+c;} return x ==> return a+3.
  auto R = validate(R"(
define i32 @f(i32 %a, i32 %n) {
entry:
  %x0 = add i32 %a, 3
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %i2, %b ]
  %x = phi i32 [ %x0, %entry ], [ %x2, %b ]
  %cmp = icmp slt i32 %i, %n
  br i1 %cmp, label %b, label %out
b:
  %x2 = add i32 %a, 3
  %i2 = add i32 %i, 1
  br label %h
out:
  ret i32 %x
}
)",
                    R"(
define i32 @f(i32 %a, i32 %n) {
entry:
  %x = add i32 %a, 3
  ret i32 %x
}
)");
  EXPECT_TRUE(R.Validated) << R.Reason;
}

TEST_F(PairFixture, PaperSection42ExtendedExample) {
  // The paper's headline example: loops, aliasing, gated φs — the function
  // reduces to m << 1 (returns m+m).
  auto R = validate(R"(
define i32 @f(i32 %n, i32 %m) {
entry:
  %t1 = alloca i32
  %t2 = alloca i32
  store i32 1, ptr %t1
  store i32 %m, ptr %t2
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %i2, %latch ]
  %x = phi i32 [ 0, %entry ], [ %x2, %latch ]
  %y = phi i32 [ 0, %entry ], [ %y2, %latch ]
  %t = phi ptr [ %t1, %entry ], [ %t3, %latch ]
  %cmp = icmp slt i32 %i, %n
  br i1 %cmp, label %body, label %out
body:
  %mod = srem i32 %i, 3
  %odd = icmp ne i32 %mod, 0
  br i1 %odd, label %bt, label %be
bt:
  br label %bj
be:
  br label %bj
bj:
  %x2 = phi i32 [ 1, %bt ], [ 2, %be ]
  %y2 = phi i32 [ 1, %bt ], [ 2, %be ]
  %eq = icmp eq i32 %x2, %y2
  br i1 %eq, label %st, label %se
st:
  br label %latch
se:
  br label %latch
latch:
  %t3 = phi ptr [ %t1, %st ], [ %t2, %se ]
  %i2 = add i32 %i, 1
  br label %h
out:
  store i32 42, ptr %t
  %v = load i32, ptr %t2
  %r = add i32 %v, %v
  ret i32 %r
}
)",
                    R"(
define i32 @f(i32 %n, i32 %m) {
entry:
  %r = shl i32 %m, 1
  ret i32 %r
}
)");
  EXPECT_TRUE(R.Validated) << R.Reason;
}

TEST_F(PairFixture, RejectsWrongConstant) {
  auto R = validate(R"(
define i32 @f(i32 %a) {
entry:
  %x = add i32 %a, 1
  ret i32 %x
}
)",
                    R"(
define i32 @f(i32 %a) {
entry:
  %x = add i32 %a, 2
  ret i32 %x
}
)");
  EXPECT_FALSE(R.Validated);
}

TEST_F(PairFixture, RejectsSwappedBranches) {
  auto R = validate(R"(
define i32 @f(i32 %a, i32 %b) {
entry:
  %c = icmp slt i32 %a, %b
  br i1 %c, label %t, label %e
t:
  br label %j
e:
  br label %j
j:
  %p = phi i32 [ 1, %t ], [ 2, %e ]
  ret i32 %p
}
)",
                    R"(
define i32 @f(i32 %a, i32 %b) {
entry:
  %c = icmp sge i32 %a, %b
  br i1 %c, label %t, label %e
t:
  br label %j
e:
  br label %j
j:
  %p = phi i32 [ 1, %t ], [ 2, %e ]
  ret i32 %p
}
)");
  EXPECT_FALSE(R.Validated)
      << "a >= b must not be confused with a < b (gated φ, §3.2)";
}

TEST_F(PairFixture, RejectsDroppedObservableStore) {
  auto R = validate(R"(
@g = global i32 0
define void @f(i32 %a) {
entry:
  store i32 %a, ptr @g
  ret void
}
)",
                    R"(
@g = global i32 0
define void @f(i32 %a) {
entry:
  ret void
}
)");
  EXPECT_FALSE(R.Validated) << "stores to globals are observable";
}

TEST_F(PairFixture, AcceptsDroppedLocalStore) {
  auto R = validate(R"(
define i32 @f(i32 %a) {
entry:
  %p = alloca i32
  store i32 %a, ptr %p
  ret i32 %a
}
)",
                    R"(
define i32 @f(i32 %a) {
entry:
  ret i32 %a
}
)");
  EXPECT_TRUE(R.Validated) << "dead local stores are unobservable";
}

TEST_F(PairFixture, ReadOnlyCallReorderingIsFree) {
  // §5.3's atoi example: readonly calls do not produce a new memory state
  // in the monadic encoding, so swapping them yields the same graph.
  auto R = validate(R"(
declare i32 @atoi(ptr) readonly
define i32 @f(ptr %p, ptr %q) {
entry:
  %x = call i32 @atoi(ptr %p)
  %y = call i32 @atoi(ptr %q)
  %s = sub i32 %x, %y
  ret i32 %s
}
)",
                    R"(
declare i32 @atoi(ptr) readonly
define i32 @f(ptr %p, ptr %q) {
entry:
  %y = call i32 @atoi(ptr %q)
  %x = call i32 @atoi(ptr %p)
  %s = sub i32 %x, %y
  ret i32 %s
}
)");
  EXPECT_TRUE(R.Validated);
  EXPECT_TRUE(R.EqualOnConstruction);
}

TEST_F(PairFixture, UnsupportedIrreducibleReported) {
  auto R = validate(R"(
define void @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  br label %b
b:
  br i1 %c, label %a, label %x
x:
  ret void
}
)",
                    R"(
define void @f(i1 %c) {
entry:
  ret void
}
)");
  EXPECT_FALSE(R.Validated);
  EXPECT_TRUE(R.Unsupported);
}

//===----------------------------------------------------------------------===//
// The llvm-md driver
//===----------------------------------------------------------------------===//

TEST(LLVMMDDriver, RevertsUnvalidatedFunctions) {
  Context Ctx;
  auto M = parseOrDie(Ctx, R"(
define float @fp(i32 %a) {
entry:
  %x = fadd float 1.5, 2.5
  %y = fmul float %x, 2.0
  ret float %y
}
define i32 @ok(i32 %a) {
entry:
  %x = add i32 2, 3
  %y = add i32 %x, %a
  ret i32 %y
}
)");
  PassManager PM;
  ASSERT_TRUE(PM.parsePipeline("sccp"));
  RuleConfig C; // paper rules: no float folding
  LLVMMDReport Report;
  auto Out = runLLVMMD(*M, PM, C, Report);
  expectVerified(*Out);
  ASSERT_EQ(Report.Functions.size(), 2u);
  const FunctionReport *FP = nullptr, *OK = nullptr;
  for (const auto &FR : Report.Functions) {
    if (FR.Name == "fp")
      FP = &FR;
    if (FR.Name == "ok")
      OK = &FR;
  }
  ASSERT_NE(FP, nullptr);
  ASSERT_NE(OK, nullptr);
  EXPECT_TRUE(FP->Transformed);
  EXPECT_FALSE(FP->Validated);
  EXPECT_TRUE(FP->Reverted);
  EXPECT_TRUE(OK->Transformed);
  EXPECT_TRUE(OK->Validated);
  // The reverted function still contains the original float arithmetic.
  bool HasFAdd = false;
  for (const auto &BB : Out->getFunction("fp")->blocks())
    for (Instruction *I : *BB)
      HasFAdd |= I->getOpcode() == Opcode::FAdd;
  EXPECT_TRUE(HasFAdd);
  // The validated function is folded.
  EXPECT_LT(Out->getFunction("ok")->getInstructionCount(), 3u);
  EXPECT_DOUBLE_EQ(Report.validationRate(), 0.5);
}

//===----------------------------------------------------------------------===//
// Soundness property: injected miscompiles are always rejected
//===----------------------------------------------------------------------===//

class SoundnessSweep : public ::testing::TestWithParam<int> {};

TEST_P(SoundnessSweep, InjectedBugsNeverValidate) {
  Context Ctx;
  auto M = parseOrDie(Ctx, R"(
@g = global i32 5
define i32 @f(i32 %a, i32 %b) {
entry:
  %c = icmp slt i32 %a, %b
  br i1 %c, label %t, label %e
t:
  %x = add i32 %a, %b
  store i32 %x, ptr @g
  br label %j
e:
  %y = sub i32 %a, %b
  br label %j
j:
  %p = phi i32 [ %x, %t ], [ %y, %e ]
  %q = mul i32 %p, 3
  ret i32 %q
}
)");
  auto Mutant = cloneModule(*M);
  std::string Desc =
      injectBug(*Mutant->getFunction("f"), static_cast<uint64_t>(GetParam()));
  ASSERT_FALSE(Desc.empty());
  RuleConfig C;
  C.Mask = RS_All;
  C.M = M.get();
  auto R = validatePair(*M->getFunction("f"), *Mutant->getFunction("f"), C);
  EXPECT_FALSE(R.Validated) << "accepted a miscompile: " << Desc;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoundnessSweep, ::testing::Range(1, 40));
