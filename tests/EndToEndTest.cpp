//===- EndToEndTest.cpp - Workload-scale properties ----------------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
// Property-style sweeps over the synthetic benchmark suite: the optimizer
// must preserve behavior (differential testing against the reference
// interpreter), the validator must accept enough of the pipeline's work
// (effectiveness floor), never accept an injected miscompile layered on
// top of real optimizations, and everything must be deterministic.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "ir/Cloning.h"
#include "ir/Interpreter.h"
#include "opt/BugInjector.h"
#include "opt/Pass.h"
#include "triage/DifferentialTester.h"
#include "validator/LLVMMD.h"
#include "workload/Generator.h"

#include <gtest/gtest.h>

using namespace llvmmd;
using namespace llvmmd::testutil;

namespace {

BenchmarkProfile smallProfile(const char *Name, unsigned MaxFns) {
  BenchmarkProfile P = getProfile(Name);
  P.FunctionCount = std::min(P.FunctionCount, MaxFns);
  return P;
}

} // namespace

class ProfileSweep : public ::testing::TestWithParam<const char *> {};

TEST_P(ProfileSweep, GeneratedModulesVerify) {
  Context Ctx;
  auto M = generateBenchmark(Ctx, smallProfile(GetParam(), 20));
  expectVerified(*M);
  EXPECT_FALSE(M->definedFunctions().empty());
}

TEST_P(ProfileSweep, PipelinePreservesBehaviorAndVerifies) {
  Context Ctx;
  auto M = generateBenchmark(Ctx, smallProfile(GetParam(), 12));
  auto Opt = cloneModule(*M);
  PassManager PM;
  ASSERT_TRUE(PM.parsePipeline(getPaperPipeline()));
  PM.run(*Opt);
  expectVerified(*Opt);

  Interpreter IA(*M), IB(*Opt);
  uint64_t SA = IA.materializeString("translation validation");
  uint64_t SB = IB.materializeString("translation validation");
  unsigned Compared = 0;
  for (Function *F : M->definedFunctions()) {
    Function *FO = Opt->getFunction(F->getName());
    ASSERT_NE(FO, nullptr);
    for (int T = 0; T < 4; ++T) {
      std::vector<RtValue> ArgsA{RtValue::makeInt(T * 13 - 7),
                                 RtValue::makeInt(3 - T),
                                 RtValue::makePtr(SA)};
      std::vector<RtValue> ArgsB{RtValue::makeInt(T * 13 - 7),
                                 RtValue::makeInt(3 - T),
                                 RtValue::makePtr(SB)};
      ExecResult RA = IA.run(*F, ArgsA);
      ExecResult RB = IB.run(*FO, ArgsB);
      // The paper's model: only runs that terminate without error count.
      if (RA.Status != ExecStatus::OK || RB.Status != ExecStatus::OK)
        continue;
      ++Compared;
      EXPECT_TRUE(RA.Value == RB.Value)
          << F->getName() << " run " << T << ": " << RA.Value.Int << " vs "
          << RB.Value.Int;
      EXPECT_EQ(IA.globalMemory(), IB.globalMemory()) << F->getName();
    }
  }
  EXPECT_GT(Compared, 0u);
}

TEST_P(ProfileSweep, ValidationEffectivenessFloor) {
  Context Ctx;
  auto M = generateBenchmark(Ctx, smallProfile(GetParam(), 16));
  PassManager PM;
  ASSERT_TRUE(PM.parsePipeline(getPaperPipeline()));
  RuleConfig C;
  C.M = M.get();
  LLVMMDReport Report;
  auto Out = runLLVMMD(*M, PM, C, Report);
  expectVerified(*Out);
  // The paper validates ~80% overall; demand at least 50% per (truncated)
  // benchmark so regressions in the rules or the builder surface here.
  if (Report.transformed() >= 4)
    EXPECT_GE(Report.validationRate(), 0.5)
        << "validation effectiveness collapsed for " << GetParam();
}

TEST_P(ProfileSweep, ValidatedOptimizationsAgreeWithInterpreter) {
  // Stronger soundness evidence: every *validated* pair agrees on the
  // reference interpreter for all tested inputs.
  Context Ctx;
  auto M = generateBenchmark(Ctx, smallProfile(GetParam(), 10));
  auto Opt = cloneModule(*M);
  PassManager PM;
  ASSERT_TRUE(PM.parsePipeline(getPaperPipeline()));
  RuleConfig C;
  C.Mask = RS_All;
  C.M = M.get();
  Interpreter IA(*M), IB(*Opt);
  uint64_t SA = IA.materializeString("abc");
  uint64_t SB = IB.materializeString("abc");
  for (Function *FO : Opt->definedFunctions()) {
    if (!PM.run(*FO))
      continue;
    Function *FI = M->getFunction(FO->getName());
    auto R = validatePair(*FI, *FO, C);
    if (!R.Validated)
      continue;
    for (int T = 0; T < 3; ++T) {
      std::vector<RtValue> ArgsA{RtValue::makeInt(T), RtValue::makeInt(-T),
                                 RtValue::makePtr(SA)};
      std::vector<RtValue> ArgsB{RtValue::makeInt(T), RtValue::makeInt(-T),
                                 RtValue::makePtr(SB)};
      ExecResult RA = IA.run(*FI, ArgsA);
      ExecResult RB = IB.run(*FO, ArgsB);
      if (RA.Status != ExecStatus::OK || RB.Status != ExecStatus::OK)
        continue;
      EXPECT_TRUE(RA.Value == RB.Value)
          << "validated pair disagrees: " << FI->getName();
      EXPECT_EQ(IA.globalMemory(), IB.globalMemory());
    }
  }
}

TEST_P(ProfileSweep, InjectedBugsRejectedOnWorkload) {
  // The soundness property: whenever a mutation observably changes
  // behavior (per the reference interpreter), the validator must reject
  // it. Mutations that happen to hit dead code may legitimately validate.
  Context Ctx;
  auto M = generateBenchmark(Ctx, smallProfile(GetParam(), 8));
  auto Opt = cloneModule(*M);
  PassManager PM;
  ASSERT_TRUE(PM.parsePipeline("gvn,sccp"));
  RuleConfig C;
  C.Mask = RS_All;
  C.M = M.get();
  // The triage subsystem's differential tester is the observability
  // oracle: boundary-seeded corpus, return value and global memory.
  DifferentialTester DT(*M, *Opt);
  uint64_t Seed = 1;
  unsigned BehaviorChanging = 0;
  for (Function *FO : Opt->definedFunctions()) {
    PM.run(*FO);
    std::string Desc = injectBug(*FO, Seed++);
    if (Desc.empty())
      continue;
    Function *FI = M->getFunction(FO->getName());
    if (!DT.test(*FI, *FO, 48).HasWitness)
      continue; // mutation not observable on these inputs: no claim
    ++BehaviorChanging;
    auto R = validatePair(*FI, *FO, C);
    EXPECT_FALSE(R.Validated)
        << GetParam() << "/" << FO->getName()
        << ": accepted behavior-changing mutation '" << Desc << "'";
  }
  EXPECT_GT(BehaviorChanging, 0u) << "sweep exercised nothing";
}

TEST_P(ProfileSweep, DeterministicGenerationAndValidation) {
  auto Run = [&](std::string &TextOut) -> double {
    Context Ctx;
    auto M = generateBenchmark(Ctx, smallProfile(GetParam(), 8));
    TextOut = printModule(*M);
    PassManager PM;
    PM.parsePipeline(getPaperPipeline());
    RuleConfig C;
    C.M = M.get();
    LLVMMDReport Report;
    runLLVMMD(*M, PM, C, Report);
    return Report.validationRate();
  };
  std::string T1, T2;
  double R1 = Run(T1), R2 = Run(T2);
  EXPECT_EQ(T1, T2) << "generator must be a pure function of the seed";
  EXPECT_EQ(R1, R2) << "validation must be deterministic";
}

INSTANTIATE_TEST_SUITE_P(Profiles, ProfileSweep,
                         ::testing::Values("sqlite", "bzip2", "gcc", "lbm",
                                           "perlbench", "sjeng", "hmmer",
                                           "mcf"));
