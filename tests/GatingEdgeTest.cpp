//===- GatingEdgeTest.cpp - Gate computation corner cases -----------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
// §5.4: "essentially all of the technical difficulties lie in the complex
// φ-nodes". These tests pin the gating analysis on the shapes that caused
// trouble: nested diamonds, short-circuit-style multi-edge φs, gates that
// span a whole loop, and the multi-exit rejection path.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "validator/Validator.h"

#include <gtest/gtest.h>

using namespace llvmmd;
using namespace llvmmd::testutil;

namespace {

ValidationResult validateSrc(Context &Ctx, const char *A, const char *B,
                             unsigned Mask = RS_Paper) {
  auto MA = parseOrDie(Ctx, A);
  auto MB = parseOrDie(Ctx, B);
  RuleConfig C;
  C.Mask = Mask;
  C.M = MA.get();
  return validatePair(*MA->definedFunctions().front(),
                      *MB->definedFunctions().front(), C);
}

} // namespace

TEST(GatingEdges, NestedDiamondsValidateAgainstSelects) {
  // φ over nested control flow vs the flattened select form: both produce
  // γ trees over the same conditions.
  Context Ctx;
  auto R = validateSrc(Ctx, R"(
define i32 @f(i32 %a, i32 %b) {
entry:
  %c1 = icmp slt i32 %a, 0
  br i1 %c1, label %neg, label %pos
neg:
  %c2 = icmp slt i32 %b, 0
  br i1 %c2, label %nn, label %np
nn:
  br label %j
np:
  br label %j
pos:
  br label %j
j:
  %r = phi i32 [ 1, %nn ], [ 2, %np ], [ 3, %pos ]
  ret i32 %r
}
)",
                       R"(
define i32 @f(i32 %a, i32 %b) {
entry:
  %c1 = icmp slt i32 %a, 0
  %c2 = icmp slt i32 %b, 0
  %inner = select i1 %c2, i32 1, i32 2
  %r = select i1 %c1, i32 %inner, i32 3
  ret i32 %r
}
)");
  EXPECT_TRUE(R.Validated)
      << "nested diamonds and select trees express the same γs: "
      << R.Reason;
}

TEST(GatingEdges, ShortCircuitStylePhi) {
  // The paper's footnote: an if with short-circuit operators produces a φ
  // with several branches whose gates are conjunctions.
  Context Ctx;
  auto R = validateSrc(Ctx, R"(
define i32 @f(i32 %a, i32 %b) {
entry:
  %c1 = icmp sgt i32 %a, 0
  br i1 %c1, label %test2, label %no
test2:
  %c2 = icmp sgt i32 %b, 0
  br i1 %c2, label %yes, label %no
yes:
  br label %j
no:
  br label %j
j:
  %r = phi i32 [ 1, %yes ], [ 0, %no ]
  ret i32 %r
}
)",
                       R"(
define i32 @f(i32 %a, i32 %b) {
entry:
  %c1 = icmp sgt i32 %a, 0
  br i1 %c1, label %test2, label %no
test2:
  %c2 = icmp sgt i32 %b, 0
  br i1 %c2, label %yes, label %no
yes:
  br label %j
no:
  br label %j
j:
  %r = phi i32 [ 1, %yes ], [ 0, %no ]
  ret i32 %r
}
)");
  EXPECT_TRUE(R.Validated) << "identical && φs: " << R.Reason;
  EXPECT_TRUE(R.EqualOnConstruction);
}

TEST(GatingEdges, PhiAfterWholeLoopUsesEntryPredicate) {
  // The φ at %j merges a path that went through the loop with one that
  // bypassed it; the loop-crossing gate uses the entry predicate under
  // the termination assumption (single exit).
  Context Ctx;
  const char *Src = R"(
define i32 @f(i32 %a, i32 %n) {
entry:
  %c = icmp sgt i32 %a, 0
  br i1 %c, label %pre, label %skip
pre:
  br label %h
h:
  %i = phi i32 [ 0, %pre ], [ %i2, %b ]
  %lc = icmp slt i32 %i, %n
  br i1 %lc, label %b, label %after
b:
  %i2 = add i32 %i, 1
  br label %h
after:
  br label %j
skip:
  br label %j
j:
  %r = phi i32 [ %i, %after ], [ -1, %skip ]
  ret i32 %r
}
)";
  auto R = validateSrc(Ctx, Src, Src);
  EXPECT_TRUE(R.Validated) << R.Reason;
}

TEST(GatingEdges, MultiExitLoopGateIsRejectedNotMisvalidated) {
  // A φ whose gate would have to reason about which of two loop exits was
  // taken: the front-end refuses (unsupported), it must not guess.
  Context Ctx;
  const char *Src = R"(
define i32 @f(i32 %n, i32 %k) {
entry:
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %i2, %b2 ]
  %c1 = icmp slt i32 %i, %n
  br i1 %c1, label %b, label %out1
b:
  %c2 = icmp eq i32 %i, %k
  br i1 %c2, label %out2, label %b2
b2:
  %i2 = add i32 %i, 1
  br label %h
out1:
  br label %j
out2:
  br label %j
j:
  %r = phi i32 [ 1, %out1 ], [ 2, %out2 ]
  ret i32 %r
}
)";
  auto R = validateSrc(Ctx, Src, Src);
  EXPECT_FALSE(R.Validated);
  EXPECT_TRUE(R.Unsupported);
  EXPECT_NE(R.Reason.find("multi-exit"), std::string::npos) << R.Reason;
}

TEST(GatingEdges, BranchConditionReuseAcrossDiamonds) {
  // The §4.1 ordering example: two diamonds over the same condition; GVN
  // merges the conditions, SCCP folds the second diamond. The validator
  // must handle the gate of diamond 2 referring to the same condition
  // node as diamond 1.
  Context Ctx;
  auto R = validateSrc(Ctx, R"(
define i32 @f(i32 %x, i32 %y) {
entry:
  %a = icmp slt i32 %x, %y
  br i1 %a, label %t1, label %e1
t1:
  %b = icmp slt i32 %x, %y
  br i1 %b, label %t2, label %e2
t2:
  br label %j2
e2:
  br label %j2
j2:
  %c = phi i32 [ 1, %t2 ], [ 2, %e2 ]
  br label %j1
e1:
  br label %j1
j1:
  %r = phi i32 [ %c, %j2 ], [ 1, %e1 ]
  ret i32 %r
}
)",
                       R"(
define i32 @f(i32 %x, i32 %y) {
entry:
  ret i32 1
}
)");
  EXPECT_TRUE(R.Validated)
      << "inside the a-branch, b is a and the φ collapses to 1: "
      << R.Reason;
}

TEST(GatingEdges, UnreachableTerminatedPathsAreTolerated) {
  Context Ctx;
  const char *Src = R"(
define i32 @f(i32 %a) {
entry:
  %c = icmp sge i32 %a, 0
  br i1 %c, label %ok, label %dead
dead:
  unreachable
ok:
  ret i32 %a
}
)";
  auto R = validateSrc(Ctx, Src, Src);
  EXPECT_TRUE(R.Validated) << R.Reason;
}
