//===- GeneratorTest.cpp - Workload generator sanity tests ----------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
// The synthetic suite is the experimental substrate; these tests check
// that each profile actually delivers the features its knobs promise
// (loops, calls, floats, globals, unswitchable branches) and that the
// whole thing is a pure function of its seed.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"
#include "workload/Generator.h"

#include <gtest/gtest.h>

using namespace llvmmd;
using namespace llvmmd::testutil;

namespace {

struct FeatureCounts {
  unsigned Loops = 0, NestedLoops = 0, Calls = 0, Floats = 0, Globals = 0,
           Stores = 0, Loads = 0, Phis = 0, Functions = 0;
};

FeatureCounts countFeatures(const Module &M) {
  FeatureCounts C;
  for (Function *F : M.definedFunctions()) {
    ++C.Functions;
    DominatorTree DT(*F);
    LoopInfo LI(*F, DT);
    for (Loop *L : LI.getLoopsInnermostFirst()) {
      ++C.Loops;
      C.NestedLoops += L->getParent() != nullptr;
    }
    for (const auto &BB : F->blocks()) {
      for (Instruction *I : *BB) {
        C.Calls += isa<CallInst>(I);
        C.Floats += isFloatBinaryOp(I->getOpcode());
        C.Stores += isa<StoreInst>(I);
        C.Loads += isa<LoadInst>(I);
        C.Phis += isa<PhiNode>(I);
        for (Value *Op : I->operands())
          C.Globals += isa<GlobalVariable>(Op);
      }
    }
  }
  return C;
}

} // namespace

TEST(Generator, SuiteCoversTwelvePrograms) {
  auto Suite = getPaperSuite();
  ASSERT_EQ(Suite.size(), 12u);
  std::set<std::string> Names;
  for (const auto &P : Suite) {
    EXPECT_GT(P.FunctionCount, 0u);
    EXPECT_GE(P.MaxSegments, P.MinSegments);
    Names.insert(P.Name);
  }
  EXPECT_EQ(Names.size(), 12u) << "duplicate profile names";
  EXPECT_TRUE(Names.count("sqlite"));
  EXPECT_TRUE(Names.count("gcc"));
  EXPECT_EQ(getProfile("nonexistent").FunctionCount, 0u);
}

TEST(Generator, ProfilesDeliverTheirFeatureMix) {
  Context Ctx;
  auto Lbm = generateBenchmark(Ctx, getProfile("lbm"));
  auto Perl = generateBenchmark(Ctx, getProfile("perlbench"));
  FeatureCounts L = countFeatures(*Lbm);
  FeatureCounts P = countFeatures(*Perl);
  // lbm is the FP-heavy profile; perlbench the libc-heavy one.
  EXPECT_GT(L.Floats, 0u);
  EXPECT_GT(P.Calls, 0u);
  double LbmFloatDensity = double(L.Floats) / L.Functions;
  double PerlFloatDensity = double(P.Floats) / P.Functions;
  EXPECT_GT(LbmFloatDensity, PerlFloatDensity)
      << "lbm must be more FP-dense than perlbench";
  double PerlCallDensity = double(P.Calls) / P.Functions;
  double LbmCallDensity = double(L.Calls) / L.Functions;
  EXPECT_GT(PerlCallDensity, LbmCallDensity)
      << "perlbench must be more call-dense than lbm";
}

TEST(Generator, EveryProfileHasLoopsAndMemory) {
  Context Ctx;
  for (const auto &P : getPaperSuite()) {
    BenchmarkProfile Small = P;
    Small.FunctionCount = std::min(Small.FunctionCount, 10u);
    auto M = generateBenchmark(Ctx, Small);
    FeatureCounts C = countFeatures(*M);
    EXPECT_GT(C.Loops, 0u) << P.Name;
    EXPECT_GT(C.Phis, 0u) << P.Name;
    EXPECT_GT(C.Stores + C.Loads, 0u) << P.Name;
  }
}

TEST(Generator, GccProfileIsTheLargest) {
  Context Ctx;
  size_t GccInsts = 0, McfInsts = 0;
  {
    auto M = generateBenchmark(Ctx, getProfile("gcc"));
    for (Function *F : M->definedFunctions())
      GccInsts += F->getInstructionCount();
  }
  {
    auto M = generateBenchmark(Ctx, getProfile("mcf"));
    for (Function *F : M->definedFunctions())
      McfInsts += F->getInstructionCount();
  }
  EXPECT_GT(GccInsts, 10 * McfInsts);
}

TEST(Generator, DeterministicAcrossContexts) {
  std::string A, B;
  {
    Context Ctx;
    A = printModule(*generateBenchmark(Ctx, getProfile("sjeng")));
  }
  {
    Context Ctx;
    B = printModule(*generateBenchmark(Ctx, getProfile("sjeng")));
  }
  EXPECT_EQ(A, B);
}

TEST(Generator, SeedChangesTheProgram) {
  Context Ctx;
  BenchmarkProfile P = getProfile("hmmer");
  P.FunctionCount = 4;
  std::string A = printModule(*generateBenchmark(Ctx, P));
  P.Seed ^= 0xdeadbeef;
  std::string B = printModule(*generateBenchmark(Ctx, P));
  EXPECT_NE(A, B);
}

TEST(Generator, DeclaresTheModeledLibc) {
  Context Ctx;
  auto M = generateBenchmark(Ctx, getProfile("mcf"));
  ASSERT_NE(M->getFunction("strlen"), nullptr);
  EXPECT_TRUE(M->getFunction("strlen")->isReadOnly());
  ASSERT_NE(M->getFunction("abs"), nullptr);
  EXPECT_TRUE(M->getFunction("abs")->isReadNone());
  ASSERT_NE(M->getFunction("memset"), nullptr);
  EXPECT_TRUE(M->getFunction("memset")->mayWriteMemory());
  // Constant and mutable globals exist for the GlobalFold experiments.
  ASSERT_NE(M->getGlobal("gc0"), nullptr);
  EXPECT_TRUE(M->getGlobal("gc0")->isConstantGlobal());
  ASSERT_NE(M->getGlobal("gm0"), nullptr);
  EXPECT_FALSE(M->getGlobal("gm0")->isConstantGlobal());
}

TEST(Generator, AllFunctionsAreSingleReturnAndReducible) {
  Context Ctx;
  for (const char *Name : {"sqlite", "gcc", "lbm"}) {
    BenchmarkProfile P = getProfile(Name);
    P.FunctionCount = std::min(P.FunctionCount, 12u);
    auto M = generateBenchmark(Ctx, P);
    for (Function *F : M->definedFunctions()) {
      unsigned Rets = 0;
      for (const auto &BB : F->blocks())
        Rets += BB->getTerminator() &&
                isa<ReturnInst>(BB->getTerminator());
      EXPECT_EQ(Rets, 1u) << F->getName();
      DominatorTree DT(*F);
      LoopInfo LI(*F, DT);
      EXPECT_FALSE(LI.isIrreducible()) << F->getName();
    }
  }
}
