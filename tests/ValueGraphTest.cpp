//===- ValueGraphTest.cpp - Hash-consed value graph tests ----------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//

#include "vg/ValueGraph.h"

#include "ir/Context.h"

#include <gtest/gtest.h>

using namespace llvmmd;

namespace {

struct GraphFixture : ::testing::Test {
  Context Ctx;
  ValueGraph G;
  Type *I32 = Ctx.getInt32Ty();
  Type *I1 = Ctx.getInt1Ty();
};

} // namespace

TEST_F(GraphFixture, LeavesAreInterned) {
  EXPECT_EQ(G.getConstInt(I32, 4), G.getConstInt(I32, 4));
  EXPECT_NE(G.getConstInt(I32, 4), G.getConstInt(I32, 5));
  EXPECT_NE(G.getConstInt(I32, 4), G.getConstInt(Ctx.getInt64Ty(), 4));
  EXPECT_EQ(G.getParam(0, I32), G.getParam(0, I32));
  EXPECT_NE(G.getParam(0, I32), G.getParam(1, I32));
  EXPECT_EQ(G.getInitialMem(), G.getInitialMem());
  EXPECT_EQ(G.getGlobal("g", true, Ctx.getPtrTy()),
            G.getGlobal("g", true, Ctx.getPtrTy()));
}

TEST_F(GraphFixture, OpsAreHashConsed) {
  NodeId A = G.getParam(0, I32), B = G.getParam(1, I32);
  NodeId X = G.getOp(Opcode::Add, I32, {A, B});
  NodeId Y = G.getOp(Opcode::Add, I32, {A, B});
  EXPECT_EQ(X, Y);
  // Commutative ops canonicalize operand order on construction.
  NodeId Z = G.getOp(Opcode::Add, I32, {B, A});
  EXPECT_EQ(X, Z);
  // Non-commutative ops do not.
  EXPECT_NE(G.getOp(Opcode::Sub, I32, {A, B}),
            G.getOp(Opcode::Sub, I32, {B, A}));
  // Predicate is part of the identity.
  EXPECT_NE(G.getOp(Opcode::ICmp, I1, {A, B},
                    static_cast<uint8_t>(ICmpPred::SLT)),
            G.getOp(Opcode::ICmp, I1, {A, B},
                    static_cast<uint8_t>(ICmpPred::SLE)));
}

TEST_F(GraphFixture, GammaBranchesSortCanonically) {
  NodeId C = G.getParam(0, I1);
  NodeId NotC = G.getOp(Opcode::Xor, I1, {C, G.getConstBool(I1, true)});
  NodeId V1 = G.getConstInt(I32, 1), V2 = G.getConstInt(I32, 2);
  NodeId A = G.getGamma(I32, {{C, V1}, {NotC, V2}});
  NodeId B = G.getGamma(I32, {{NotC, V2}, {C, V1}});
  EXPECT_EQ(A, B);
}

TEST_F(GraphFixture, UnionFindMerging) {
  NodeId A = G.getParam(0, I32);
  NodeId X = G.getOp(Opcode::Add, I32, {A, G.getConstInt(I32, 1)});
  NodeId Y = G.getOp(Opcode::Add, I32, {A, G.getConstInt(I32, 2)});
  EXPECT_NE(G.find(X), G.find(Y));
  G.mergeInto(X, Y);
  EXPECT_EQ(G.find(X), G.find(Y));
  EXPECT_EQ(G.find(X), Y);
  EXPECT_EQ(G.getMergeCount(), 1u);
}

TEST_F(GraphFixture, CongruenceClosesUpward) {
  // Merge the leaves of two structurally parallel expressions; the parents
  // must merge in the sharing pass.
  NodeId A = G.getParam(0, I32), B = G.getParam(1, I32);
  NodeId XA = G.getOp(Opcode::Mul, I32, {A, G.getConstInt(I32, 3)});
  NodeId XB = G.getOp(Opcode::Mul, I32, {B, G.getConstInt(I32, 3)});
  NodeId PA = G.getOp(Opcode::Sub, I32, {XA, A});
  NodeId PB = G.getOp(Opcode::Sub, I32, {XB, B});
  EXPECT_NE(G.find(PA), G.find(PB));
  G.mergeInto(A, B);
  G.maximizeSharing(SharingStrategy::Simple);
  EXPECT_EQ(G.find(PA), G.find(PB));
  EXPECT_EQ(G.find(XA), G.find(XB));
}

TEST_F(GraphFixture, MuUnificationMergesEqualLoops) {
  // Two μ for the same stream: μ(0, μ+1).
  NodeId Zero = G.getConstInt(I32, 0), One = G.getConstInt(I32, 1);
  NodeId M1 = G.makeMu(I32);
  G.setMuOperands(M1, Zero, G.getOp(Opcode::Add, I32, {M1, One}));
  NodeId M2 = G.makeMu(I32);
  G.setMuOperands(M2, Zero, G.getOp(Opcode::Add, I32, {M2, One}));
  EXPECT_NE(G.find(M1), G.find(M2));
  G.maximizeSharing(SharingStrategy::Simple);
  EXPECT_EQ(G.find(M1), G.find(M2));
}

TEST_F(GraphFixture, MuUnificationRespectsDifferences) {
  NodeId Zero = G.getConstInt(I32, 0);
  NodeId One = G.getConstInt(I32, 1), Two = G.getConstInt(I32, 2);
  NodeId M1 = G.makeMu(I32);
  G.setMuOperands(M1, Zero, G.getOp(Opcode::Add, I32, {M1, One}));
  NodeId M2 = G.makeMu(I32);
  G.setMuOperands(M2, Zero, G.getOp(Opcode::Add, I32, {M2, Two}));
  G.maximizeSharing(SharingStrategy::Simple);
  EXPECT_NE(G.find(M1), G.find(M2)) << "different strides must stay apart";
  // Different initial values likewise.
  NodeId M3 = G.makeMu(I32);
  G.setMuOperands(M3, One, G.getOp(Opcode::Add, I32, {M3, One}));
  G.maximizeSharing(SharingStrategy::Simple);
  EXPECT_NE(G.find(M1), G.find(M3));
}

TEST_F(GraphFixture, MuUnificationBacktracksCommutativeOrder) {
  // μ(0, 1+μ) vs μ(0, μ+1) with operand orders that disagree positionally.
  NodeId Zero = G.getConstInt(I32, 0), One = G.getConstInt(I32, 1);
  NodeId M1 = G.makeMu(I32);
  NodeId Add1 = G.getOp(Opcode::Add, I32, {One, M1});
  G.setMuOperands(M1, Zero, Add1);
  NodeId M2 = G.makeMu(I32);
  NodeId Add2 = G.getOp(Opcode::Add, I32, {M2, One});
  G.setMuOperands(M2, Zero, Add2);
  G.maximizeSharing(SharingStrategy::Simple);
  EXPECT_EQ(G.find(M1), G.find(M2));
}

TEST_F(GraphFixture, PartitionRefinementMergesCycles) {
  NodeId Zero = G.getConstInt(I32, 0), One = G.getConstInt(I32, 1);
  NodeId M1 = G.makeMu(I32);
  G.setMuOperands(M1, Zero, G.getOp(Opcode::Add, I32, {M1, One}));
  NodeId M2 = G.makeMu(I32);
  G.setMuOperands(M2, Zero, G.getOp(Opcode::Add, I32, {M2, One}));
  G.maximizeSharing(SharingStrategy::Partition);
  EXPECT_EQ(G.find(M1), G.find(M2));
}

TEST_F(GraphFixture, PartitionKeepsDistinctCyclesApart) {
  NodeId Zero = G.getConstInt(I32, 0), One = G.getConstInt(I32, 1);
  NodeId Two = G.getConstInt(I32, 2);
  NodeId M1 = G.makeMu(I32);
  G.setMuOperands(M1, Zero, G.getOp(Opcode::Add, I32, {M1, One}));
  NodeId M2 = G.makeMu(I32);
  G.setMuOperands(M2, Zero, G.getOp(Opcode::Mul, I32, {M2, Two}));
  G.maximizeSharing(SharingStrategy::Partition);
  EXPECT_NE(G.find(M1), G.find(M2));
}

TEST_F(GraphFixture, AliasOnGraphPointers) {
  NodeId Mem = G.getInitialMem();
  NodeId One = G.getConstInt(Ctx.getInt64Ty(), 1);
  NodeId AllocA = G.getAlloc(One, Mem, 4);
  NodeId MemA = G.getAllocMem(AllocA);
  NodeId AllocB = G.getAlloc(One, MemA, 4);
  EXPECT_NE(G.find(AllocA), G.find(AllocB))
      << "memory threading keeps allocations distinct";
  EXPECT_EQ(G.aliasPointers(AllocA, AllocB, 4, 4), 0);
  EXPECT_EQ(G.aliasPointers(AllocA, AllocA, 4, 4), 2);
  // GEPs at distinct constant offsets.
  NodeId GA = G.getOp(Opcode::GEP, Ctx.getPtrTy(),
                      {AllocA, G.getConstInt(Ctx.getInt64Ty(), 1)}, 0, 4);
  NodeId GB = G.getOp(Opcode::GEP, Ctx.getPtrTy(),
                      {AllocA, G.getConstInt(Ctx.getInt64Ty(), 2)}, 0, 4);
  EXPECT_EQ(G.aliasPointers(GA, GB, 4, 4), 0);
  EXPECT_EQ(G.aliasPointers(GA, GB, 8, 4), 1); // overlapping footprint
  // Distinct globals never alias; param vs global may.
  NodeId GlobX = G.getGlobal("x", false, Ctx.getPtrTy());
  NodeId GlobY = G.getGlobal("y", false, Ctx.getPtrTy());
  NodeId Param = G.getParam(0, Ctx.getPtrTy());
  EXPECT_EQ(G.aliasPointers(GlobX, GlobY, 4, 4), 0);
  EXPECT_EQ(G.aliasPointers(GlobX, Param, 4, 4), 1);
  // Non-escaping alloca vs param: no alias.
  EXPECT_EQ(G.aliasPointers(AllocA, Param, 4, 4), 0);
}

TEST_F(GraphFixture, EscapeDetection) {
  NodeId Mem = G.getInitialMem();
  NodeId One = G.getConstInt(Ctx.getInt64Ty(), 1);
  NodeId Alloc = G.getAlloc(One, Mem, 4);
  EXPECT_TRUE(G.isNonEscapingAlloc(Alloc));
  // Storing the pointer itself escapes it.
  NodeId Other = G.getAlloc(One, G.getAllocMem(Alloc), 8);
  G.getStore(Alloc, Other, G.getAllocMem(Alloc));
  EXPECT_FALSE(G.isNonEscapingAlloc(Alloc));
}

TEST_F(GraphFixture, ConeContainsMu) {
  NodeId A = G.getParam(0, I32);
  NodeId X = G.getOp(Opcode::Add, I32, {A, G.getConstInt(I32, 1)});
  EXPECT_FALSE(G.coneContainsMu(X));
  NodeId M = G.makeMu(I32);
  G.setMuOperands(M, A, G.getOp(Opcode::Add, I32, {M, X}));
  NodeId Y = G.getOp(Opcode::Mul, I32, {M, A});
  EXPECT_TRUE(G.coneContainsMu(Y));
  EXPECT_TRUE(G.coneContainsMu(M));
}

TEST_F(GraphFixture, CountRootsAndDump) {
  NodeId A = G.getParam(0, I32);
  NodeId X = G.getOp(Opcode::Add, I32, {A, G.getConstInt(I32, 1)});
  size_t Before = G.countRoots();
  G.mergeInto(X, A);
  EXPECT_EQ(G.countRoots(), Before - 1);
  std::string Dump = G.dump({A});
  EXPECT_NE(Dump.find("param"), std::string::npos);
}

TEST_F(GraphFixture, DumpDotRendersCone) {
  NodeId C = G.getParam(0, I1);
  NodeId Mu = G.makeMu(I32);
  G.setMuOperands(Mu, G.getConstInt(I32, 0),
                  G.getOp(Opcode::Add, I32, {Mu, G.getConstInt(I32, 1)}));
  NodeId Eta = G.getEta(I32, C, Mu);
  std::string Dot = G.dumpDot({Eta});
  EXPECT_NE(Dot.find("digraph"), std::string::npos);
  EXPECT_NE(Dot.find("\xce\xbc"), std::string::npos); // μ label
  EXPECT_NE(Dot.find("\xce\xb7"), std::string::npos); // η label
  EXPECT_NE(Dot.find("label=\"i\""), std::string::npos);
  // Only the cone is rendered: an unrelated node stays out.
  NodeId Unrelated = G.getOp(Opcode::Mul, I32, {G.getParam(2, I32),
                                                G.getParam(3, I32)});
  (void)Unrelated;
  std::string Dot2 = G.dumpDot({Eta});
  EXPECT_EQ(Dot2.find("mul"), std::string::npos);
}
