//===- AnalysisTest.cpp - CFG/dominator/loop/alias analysis tests -------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "analysis/AliasAnalysis.h"
#include "analysis/CFG.h"
#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"

#include <gtest/gtest.h>

using namespace llvmmd;
using namespace llvmmd::testutil;

namespace {

BasicBlock *blockNamed(Function *F, const std::string &Name) {
  for (const auto &BB : F->blocks())
    if (BB->getName() == Name)
      return BB;
  return nullptr;
}

const char *DiamondSrc = R"(
define i32 @f(i1 %c) {
entry:
  br i1 %c, label %t, label %e
t:
  br label %j
e:
  br label %j
j:
  ret i32 0
}
)";

const char *LoopSrc = R"(
define i32 @f(i32 %n) {
entry:
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %i2, %latch ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %body, label %x
body:
  br label %latch
latch:
  %i2 = add i32 %i, 1
  br label %h
x:
  ret i32 %i
}
)";

const char *NestedLoopSrc = R"(
define void @f(i32 %n) {
entry:
  br label %oh
oh:
  %i = phi i32 [ 0, %entry ], [ %i2, %ol ]
  %oc = icmp slt i32 %i, %n
  br i1 %oc, label %ih, label %done
ih:
  %j = phi i32 [ 0, %oh ], [ %j2, %ib ]
  %ic = icmp slt i32 %j, 4
  br i1 %ic, label %ib, label %ol
ib:
  %j2 = add i32 %j, 1
  br label %ih
ol:
  %i2 = add i32 %i, 1
  br label %oh
done:
  ret void
}
)";

} // namespace

TEST(CFG, RPOOrder) {
  Context Ctx;
  auto M = parseOrDie(Ctx, DiamondSrc);
  Function *F = M->getFunction("f");
  auto RPO = computeRPO(*F);
  ASSERT_EQ(RPO.size(), 4u);
  EXPECT_EQ(RPO.front()->getName(), "entry");
  EXPECT_EQ(RPO.back()->getName(), "j");
}

TEST(CFG, UnreachableBlocksExcluded) {
  Context Ctx;
  auto M = parseOrDie(Ctx, R"(
define void @f() {
entry:
  ret void
island:
  br label %island
}
)");
  EXPECT_EQ(computeRPO(*M->getFunction("f")).size(), 1u);
  EXPECT_EQ(reachableBlocks(*M->getFunction("f")).size(), 1u);
}

TEST(Dominators, Diamond) {
  Context Ctx;
  auto M = parseOrDie(Ctx, DiamondSrc);
  Function *F = M->getFunction("f");
  DominatorTree DT(*F);
  BasicBlock *Entry = blockNamed(F, "entry");
  BasicBlock *T = blockNamed(F, "t");
  BasicBlock *E = blockNamed(F, "e");
  BasicBlock *J = blockNamed(F, "j");
  EXPECT_EQ(DT.getIDom(Entry), nullptr);
  EXPECT_EQ(DT.getIDom(T), Entry);
  EXPECT_EQ(DT.getIDom(E), Entry);
  EXPECT_EQ(DT.getIDom(J), Entry);
  EXPECT_TRUE(DT.dominates(Entry, J));
  EXPECT_TRUE(DT.dominates(J, J));
  EXPECT_FALSE(DT.dominates(T, J));
  EXPECT_FALSE(DT.properlyDominates(J, J));
}

TEST(Dominators, LoopHeaderDominatesBody) {
  Context Ctx;
  auto M = parseOrDie(Ctx, LoopSrc);
  Function *F = M->getFunction("f");
  DominatorTree DT(*F);
  EXPECT_TRUE(DT.dominates(blockNamed(F, "h"), blockNamed(F, "latch")));
  EXPECT_TRUE(DT.dominates(blockNamed(F, "h"), blockNamed(F, "x")));
  EXPECT_FALSE(DT.dominates(blockNamed(F, "body"), blockNamed(F, "x")));
  // Preorder visits idoms before children.
  auto Pre = DT.preorder();
  EXPECT_EQ(Pre.front()->getName(), "entry");
}

TEST(LoopInfoTest, SimpleLoop) {
  Context Ctx;
  auto M = parseOrDie(Ctx, LoopSrc);
  Function *F = M->getFunction("f");
  DominatorTree DT(*F);
  LoopInfo LI(*F, DT);
  EXPECT_FALSE(LI.isIrreducible());
  ASSERT_EQ(LI.getTopLevelLoops().size(), 1u);
  Loop *L = LI.getTopLevelLoops().front();
  EXPECT_EQ(L->getHeader()->getName(), "h");
  EXPECT_TRUE(LI.isLoopHeader(blockNamed(F, "h")));
  EXPECT_TRUE(L->contains(blockNamed(F, "body")));
  EXPECT_TRUE(L->contains(blockNamed(F, "latch")));
  EXPECT_FALSE(L->contains(blockNamed(F, "x")));
  ASSERT_EQ(L->getLatches().size(), 1u);
  EXPECT_EQ(L->getLatches().front()->getName(), "latch");
  ASSERT_EQ(L->getExitBlocks().size(), 1u);
  EXPECT_EQ(L->getExitBlocks().front()->getName(), "x");
  // entry -> h is the only entering edge but entry has one successor, so
  // it qualifies as a preheader.
  EXPECT_EQ(L->getPreheader(), blockNamed(F, "entry"));
}

TEST(LoopInfoTest, NestedLoops) {
  Context Ctx;
  auto M = parseOrDie(Ctx, NestedLoopSrc);
  Function *F = M->getFunction("f");
  DominatorTree DT(*F);
  LoopInfo LI(*F, DT);
  ASSERT_EQ(LI.getTopLevelLoops().size(), 1u);
  Loop *Outer = LI.getTopLevelLoops().front();
  ASSERT_EQ(Outer->getSubLoops().size(), 1u);
  Loop *Inner = Outer->getSubLoops().front();
  EXPECT_EQ(Inner->getParent(), Outer);
  EXPECT_EQ(Inner->getDepth(), 2u);
  EXPECT_EQ(LI.getLoopFor(blockNamed(F, "ib")), Inner);
  EXPECT_EQ(LI.getLoopFor(blockNamed(F, "ol")), Outer);
  auto InnermostFirst = LI.getLoopsInnermostFirst();
  ASSERT_EQ(InnermostFirst.size(), 2u);
  EXPECT_EQ(InnermostFirst[0], Inner);
  EXPECT_EQ(InnermostFirst[1], Outer);
}

TEST(LoopInfoTest, IrreducibleDetected) {
  Context Ctx;
  auto M = parseOrDie(Ctx, R"(
define void @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  br label %b
b:
  br i1 %c, label %a, label %x
x:
  ret void
}
)");
  Function *F = M->getFunction("f");
  DominatorTree DT(*F);
  LoopInfo LI(*F, DT);
  EXPECT_TRUE(LI.isIrreducible());
}

TEST(Alias, DistinctAllocasNoAlias) {
  Context Ctx;
  auto M = parseOrDie(Ctx, R"(
define i32 @f() {
entry:
  %p = alloca i32
  %q = alloca i32
  store i32 1, ptr %p
  store i32 2, ptr %q
  %v = load i32, ptr %p
  ret i32 %v
}
)");
  Function *F = M->getFunction("f");
  AliasAnalysis AA(*F);
  std::vector<Value *> Allocas;
  for (Instruction *I : *F->getEntryBlock())
    if (isa<AllocaInst>(I))
      Allocas.push_back(I);
  ASSERT_EQ(Allocas.size(), 2u);
  EXPECT_EQ(AA.alias(Allocas[0], 4, Allocas[1], 4), AliasResult::NoAlias);
  EXPECT_EQ(AA.alias(Allocas[0], 4, Allocas[0], 4), AliasResult::MustAlias);
  EXPECT_TRUE(AA.isNonEscapingAlloca(Allocas[0]));
}

TEST(Alias, GEPConstantOffsets) {
  Context Ctx;
  auto M = parseOrDie(Ctx, R"(
define i32 @f(i64 %i) {
entry:
  %p = alloca i32, i64 8
  %a = getelementptr i32, ptr %p, i64 1
  %b = getelementptr i32, ptr %p, i64 2
  %c = getelementptr i32, ptr %p, i64 %i
  store i32 1, ptr %a
  store i32 2, ptr %b
  store i32 3, ptr %c
  %v = load i32, ptr %a
  ret i32 %v
}
)");
  Function *F = M->getFunction("f");
  AliasAnalysis AA(*F);
  std::map<std::string, Value *> ByName;
  for (Instruction *I : *F->getEntryBlock())
    if (I->hasName())
      ByName[I->getName()] = I;
  EXPECT_EQ(AA.alias(ByName["a"], 4, ByName["b"], 4), AliasResult::NoAlias);
  EXPECT_EQ(AA.alias(ByName["a"], 4, ByName["a"], 4), AliasResult::MustAlias);
  // Variable index: may alias.
  EXPECT_EQ(AA.alias(ByName["a"], 4, ByName["c"], 4), AliasResult::MayAlias);
  // Overlapping ranges (byte offset 4..8 vs 8..12 disjoint; 4-wide at 4 vs
  // 8-wide at 0 overlaps).
  EXPECT_EQ(AA.alias(ByName["a"], 8, ByName["b"], 4), AliasResult::MayAlias);
}

TEST(Alias, EscapedAllocaIsConservative) {
  Context Ctx;
  auto M = parseOrDie(Ctx, R"(
declare void @sink(ptr)
define i32 @f(ptr %unknown) {
entry:
  %p = alloca i32
  call void @sink(ptr %p)
  %v = load i32, ptr %p
  ret i32 %v
}
)");
  Function *F = M->getFunction("f");
  AliasAnalysis AA(*F);
  Value *P = nullptr;
  for (Instruction *I : *F->getEntryBlock())
    if (isa<AllocaInst>(I))
      P = I;
  EXPECT_FALSE(AA.isNonEscapingAlloca(P));
  // Escaped alloca vs unknown pointer: still distinct identified object vs
  // argument decomposition gives MayAlias.
  EXPECT_EQ(AA.alias(P, 4, F->getArg(0), 4), AliasResult::MayAlias);
}

TEST(Alias, GlobalsAndAllocas) {
  Context Ctx;
  auto M = parseOrDie(Ctx, R"(
@g = global i32 0
@h = global i32 0
define i32 @f() {
entry:
  %p = alloca i32
  store i32 1, ptr @g
  %v = load i32, ptr %p
  ret i32 %v
}
)");
  Function *F = M->getFunction("f");
  AliasAnalysis AA(*F);
  Value *P = nullptr;
  for (Instruction *I : *F->getEntryBlock())
    if (isa<AllocaInst>(I))
      P = I;
  EXPECT_EQ(AA.alias(M->getGlobal("g"), 4, M->getGlobal("h"), 4),
            AliasResult::NoAlias);
  EXPECT_EQ(AA.alias(M->getGlobal("g"), 4, P, 4), AliasResult::NoAlias);
}
