//===- EngineTest.cpp - Parallel batch validation engine tests ---------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//

#include "driver/ValidationEngine.h"
#include "ir/Cloning.h"
#include "opt/BugInjector.h"
#include "opt/Pass.h"
#include "support/Hashing.h"
#include "workload/Generator.h"
#include "workload/Profiles.h"

#include "TestUtil.h"

using namespace llvmmd;
using testutil::parseOrDie;

namespace {

const char *TwoFunctions = R"(
define i32 @redundant(i32 %a, i32 %b) {
entry:
  %x = add i32 %a, %b
  %y = add i32 %a, %b
  %c = icmp slt i32 %x, %b
  br i1 %c, label %t, label %f
t:
  %s = sub i32 %x, %b
  br label %join
f:
  %z = add i32 %y, 1
  br label %join
join:
  %r = phi i32 [ %s, %t ], [ %z, %f ]
  ret i32 %r
}

define i32 @plain(i32 %n) {
entry:
  %m = mul i32 %n, 3
  %p = add i32 %m, 7
  ret i32 %p
}
)";

/// A reduced Table-1 profile so engine tests stay fast.
BenchmarkProfile smallProfile() {
  BenchmarkProfile P = getProfile("sqlite");
  P.FunctionCount = 12;
  return P;
}

/// injectBug as a pipeline pass, for guilty-pass attribution tests.
class BugInjectorPass : public FunctionPass {
public:
  const char *getName() const override { return "bug-inject"; }
  bool run(Function &F) override { return !injectBug(F, 42).empty(); }
};

} // namespace

//===----------------------------------------------------------------------===//
// Fingerprints
//===----------------------------------------------------------------------===//

TEST(EngineTest, FingerprintIgnoresNamesButSeesMutations) {
  Context Ctx;
  auto M = parseOrDie(Ctx, TwoFunctions);
  auto Clone = cloneModule(*M);

  Function *F = M->getFunction("redundant");
  Function *FC = Clone->getFunction("redundant");
  EXPECT_EQ(fingerprintFunction(*F), fingerprintFunction(*FC));

  // The function's own name does not participate.
  FC->setName("renamed");
  EXPECT_EQ(fingerprintFunction(*F), fingerprintFunction(*FC));

  // Distinct bodies fingerprint differently.
  EXPECT_NE(fingerprintFunction(*F),
            fingerprintFunction(*M->getFunction("plain")));

  // A semantics-changing mutation is visible.
  ASSERT_FALSE(injectBug(*FC, 7).empty());
  EXPECT_NE(fingerprintFunction(*F), fingerprintFunction(*FC));
}

//===----------------------------------------------------------------------===//
// Determinism across thread counts
//===----------------------------------------------------------------------===//

TEST(EngineTest, DeterministicAcrossThreadCounts) {
  std::string Baseline;
  for (unsigned Threads : {1u, 2u, 8u}) {
    // Fresh Context per engine so runs cannot influence each other through
    // interned-constant state; the generator is a pure function of the
    // profile, so all three engines see identical modules.
    Context Ctx;
    auto M = generateBenchmark(Ctx, smallProfile());
    EngineConfig C;
    C.Threads = Threads;
    ValidationEngine Engine(C);
    EXPECT_EQ(Engine.getThreadCount(), Threads);
    EngineRun Run = Engine.run(*M, getPaperPipeline());
    std::string Json = reportToJSON(Run.Report);
    if (Baseline.empty())
      Baseline = Json;
    else
      EXPECT_EQ(Baseline, Json) << "thread count " << Threads
                                << " changed the report";
  }
  EXPECT_FALSE(Baseline.empty());
}

TEST(EngineTest, DeterministicStepwiseAcrossThreadCounts) {
  std::string Baseline;
  for (unsigned Threads : {1u, 4u}) {
    Context Ctx;
    auto M = generateBenchmark(Ctx, smallProfile());
    EngineConfig C;
    C.Threads = Threads;
    C.Granularity = ValidationGranularity::PerPass;
    ValidationEngine Engine(C);
    std::string Json = reportToJSON(Engine.run(*M, getPaperPipeline()).Report);
    if (Baseline.empty())
      Baseline = Json;
    else
      EXPECT_EQ(Baseline, Json);
  }
}

//===----------------------------------------------------------------------===//
// Suite sharding
//===----------------------------------------------------------------------===//

TEST(EngineTest, SuiteShardingDeterministicAcrossThreadCounts) {
  std::string Baseline;
  for (unsigned Threads : {1u, 2u, 8u}) {
    // Fresh Context per engine so runs cannot influence each other; both
    // modules share it, as in the suite CLI.
    Context Ctx;
    auto M1 = generateBenchmark(Ctx, smallProfile());
    BenchmarkProfile P2 = getProfile("hmmer");
    P2.FunctionCount = 8;
    auto M2 = generateBenchmark(Ctx, P2);

    EngineConfig C;
    C.Threads = Threads;
    ValidationEngine Engine(C);
    SuiteRun Run = Engine.runSuite({M1.get(), M2.get()}, getPaperPipeline());

    ASSERT_EQ(Run.Report.modules(), 2u);
    ASSERT_EQ(Run.Optimized.size(), 2u);
    // Roll-up must agree with the per-module reports, and the suite JSON —
    // per-module JSON included — must not depend on the thread count.
    EXPECT_EQ(Run.Report.total(), Run.Report.Modules[0].total() +
                                      Run.Report.Modules[1].total());
    EXPECT_EQ(Run.Report.validated(), Run.Report.Modules[0].validated() +
                                          Run.Report.Modules[1].validated());
    std::string Json = suiteToJSON(Run.Report);
    EXPECT_NE(Json.find("\"llvmmd-suite-report-v1\""), std::string::npos);
    for (const ValidationReport &R : Run.Report.Modules)
      EXPECT_NE(Json.find("\"module\": \"" + R.ModuleName + "\""),
                std::string::npos);
    EXPECT_EQ(Json.find("\"wall_us\""), std::string::npos)
        << "timing leaked into the deterministic suite JSON";
    if (Baseline.empty())
      Baseline = Json;
    else
      EXPECT_EQ(Baseline, Json) << "thread count " << Threads
                                << " changed the suite report";
  }
  EXPECT_FALSE(Baseline.empty());
}

TEST(EngineTest, SuiteSharesVerdictsAcrossModules) {
  // Two identical modules in one suite: every pair of the second module is
  // an in-batch duplicate of the first's, replayed deterministically.
  Context Ctx;
  auto M1 = generateBenchmark(Ctx, smallProfile());
  // Same profile, same seed: structurally identical module.
  auto M2 = generateBenchmark(Ctx, smallProfile());

  ValidationEngine Engine;
  SuiteRun Run = Engine.runSuite({M1.get(), M2.get()}, getPaperPipeline());
  const ValidationReport &R1 = Run.Report.Modules[0];
  const ValidationReport &R2 = Run.Report.Modules[1];
  ASSERT_EQ(R1.total(), R2.total());
  for (size_t I = 0; I < R1.Functions.size(); ++I) {
    const FunctionReportEntry &A = R1.Functions[I];
    const FunctionReportEntry &B = R2.Functions[I];
    EXPECT_EQ(A.FingerprintOpt, B.FingerprintOpt) << A.Name;
    EXPECT_EQ(A.Validated, B.Validated) << A.Name;
    // The second module's transformed functions replay the first's verdicts.
    if (B.Transformed && !B.SkippedIdentical)
      EXPECT_TRUE(B.CacheHit) << B.Name;
  }
  EXPECT_EQ(Run.Report.cacheHits(), R2.transformed() - R2.skippedIdentical());
}

TEST(EngineTest, SuiteStepwiseRevertProducesCertifiedModules) {
  // Stepwise suite run with an always-failing middle pass cannot be
  // parallel-optimized (the injector pass has no registry name), so this
  // also covers the sequential fallback path end to end.
  Context Ctx;
  auto M = parseOrDie(Ctx, TwoFunctions);

  PassManager PM;
  PM.addPass(createPass("gvn"));
  PM.addPass(std::make_unique<BugInjectorPass>());

  EngineConfig C;
  C.Granularity = ValidationGranularity::PerPass;
  C.RevertFailures = true;
  ValidationEngine Engine(C);
  EngineRun Run = Engine.run(*M, PM);

  ValidationReport Certified = Engine.validateModules(*M, *Run.Optimized);
  for (const FunctionReportEntry &E : Certified.Functions)
    EXPECT_TRUE(E.Validated || E.SkippedIdentical) << E.Name;
}

//===----------------------------------------------------------------------===//
// Cache and O(1) identical skip
//===----------------------------------------------------------------------===//

TEST(EngineTest, IdenticalModulesAreSkippedInConstantTime) {
  Context Ctx;
  auto M = generateBenchmark(Ctx, smallProfile());
  auto Clone = cloneModule(*M);

  ValidationEngine Engine;
  ValidationReport R = Engine.validateModules(*M, *Clone);
  EXPECT_EQ(R.total(), M->definedFunctions().size());
  for (const FunctionReportEntry &E : R.Functions) {
    EXPECT_TRUE(E.SkippedIdentical) << E.Name;
    EXPECT_TRUE(E.Validated) << E.Name;
    EXPECT_TRUE(E.Result.EqualOnConstruction) << E.Name;
  }
  // Nothing was validated from scratch: the fingerprint path short-circuits
  // before any graph is built.
  EXPECT_EQ(Engine.cacheStats().Misses, 0u);
  EXPECT_EQ(Engine.cacheStats().SkippedIdentical,
            M->definedFunctions().size());
}

TEST(EngineTest, ResubmissionHitsTheVerdictCache) {
  Context Ctx;
  auto M = generateBenchmark(Ctx, smallProfile());
  auto Opt = cloneModule(*M);
  PassManager PM;
  ASSERT_TRUE(PM.parsePipeline(getPaperPipeline()));
  PM.run(*Opt);

  ValidationEngine Engine;
  ValidationReport First = Engine.validateModules(*M, *Opt);
  uint64_t MissesAfterFirst = Engine.cacheStats().Misses;
  EXPECT_GT(MissesAfterFirst, 0u);
  EXPECT_EQ(Engine.cacheStats().Hits, 0u);

  // Identical resubmission: every verdict is replayed, none recomputed.
  ValidationReport Second = Engine.validateModules(*M, *Opt);
  EXPECT_EQ(Engine.cacheStats().Misses, MissesAfterFirst);
  EXPECT_EQ(Engine.cacheStats().Hits, MissesAfterFirst);
  EXPECT_EQ(Second.cacheHits(), First.transformed() - First.skippedIdentical());

  // Verdicts are identical either way.
  EXPECT_EQ(First.validated(), Second.validated());
  for (size_t I = 0; I < First.Functions.size(); ++I) {
    EXPECT_EQ(First.Functions[I].Validated, Second.Functions[I].Validated);
    EXPECT_EQ(First.Functions[I].Result.Rewrites,
              Second.Functions[I].Result.Rewrites);
  }

  // clearCache forgets the verdicts.
  Engine.clearCache();
  ValidationReport Third = Engine.validateModules(*M, *Opt);
  EXPECT_EQ(Third.cacheHits(), 0u);
}

TEST(EngineTest, PipelineRunsReportCacheHitsOnResubmission) {
  Context Ctx;
  auto M = parseOrDie(Ctx, TwoFunctions);
  ValidationEngine Engine;
  EngineRun First = Engine.run(*M, "gvn,sccp");
  ASSERT_GT(First.Report.transformed(), 0u);
  EXPECT_EQ(First.Report.cacheHits(), 0u);

  EngineRun Second = Engine.run(*M, "gvn,sccp");
  EXPECT_GT(Engine.cacheStats().Hits, 0u);
  // The verdicts must be identical; only the cache_hit provenance flags may
  // differ between a first run and a resubmission.
  ASSERT_EQ(First.Report.Functions.size(), Second.Report.Functions.size());
  for (size_t I = 0; I < First.Report.Functions.size(); ++I) {
    const FunctionReportEntry &A = First.Report.Functions[I];
    const FunctionReportEntry &B = Second.Report.Functions[I];
    EXPECT_EQ(A.FingerprintOpt, B.FingerprintOpt) << A.Name;
    EXPECT_EQ(A.Validated, B.Validated) << A.Name;
    EXPECT_EQ(A.Result.Rewrites, B.Result.Rewrites) << A.Name;
    EXPECT_EQ(A.Transformed && !A.SkippedIdentical, B.CacheHit) << A.Name;
  }
}

//===----------------------------------------------------------------------===//
// Stepwise granularity: guilty-pass attribution and certified-prefix revert
//===----------------------------------------------------------------------===//

TEST(EngineTest, StepwiseAttributesInjectedBugToGuiltyPass) {
  Context Ctx;
  auto M = parseOrDie(Ctx, TwoFunctions);

  PassManager PM;
  PM.addPass(createPass("gvn"));
  PM.addPass(std::make_unique<BugInjectorPass>());
  PM.addPass(createPass("adce"));

  EngineConfig C;
  C.Granularity = ValidationGranularity::PerPass;
  C.RevertFailures = true;
  ValidationEngine Engine(C);
  EngineRun Run = Engine.run(*M, PM);

  unsigned Attributed = 0;
  for (const FunctionReportEntry &E : Run.Report.Functions) {
    ASSERT_EQ(E.Steps.size(), 3u) << E.Name;
    // The injector mutated the function; a sound validator must reject the
    // whole pipeline and pin the failure on the injector, not on the real
    // optimizations around it.
    if (!E.Steps[1].Changed)
      continue;
    EXPECT_FALSE(E.Validated) << E.Name;
    EXPECT_EQ(E.GuiltyPass, "bug-inject") << E.Name;
    EXPECT_TRUE(E.Reverted) << E.Name;
    ++Attributed;
  }
  EXPECT_GT(Attributed, 0u) << "injector never fired; test IR needs sites";

  // Reverting to the last certified snapshot yields a module in which every
  // function is provably equivalent to its original.
  ValidationReport Certified =
      Engine.validateModules(*M, *Run.Optimized);
  for (const FunctionReportEntry &E : Certified.Functions)
    EXPECT_TRUE(E.Validated || E.SkippedIdentical) << E.Name;
}

TEST(EngineTest, WholePipelineRevertRestoresOriginal) {
  Context Ctx;
  auto M = parseOrDie(Ctx, TwoFunctions);

  PassManager PM;
  PM.addPass(std::make_unique<BugInjectorPass>());

  EngineConfig C;
  C.RevertFailures = true;
  ValidationEngine Engine(C);
  EngineRun Run = Engine.run(*M, PM);

  unsigned Reverted = 0;
  for (const FunctionReportEntry &E : Run.Report.Functions) {
    if (!E.Transformed)
      continue;
    EXPECT_FALSE(E.Validated) << E.Name;
    EXPECT_TRUE(E.Reverted) << E.Name;
    ++Reverted;
  }
  EXPECT_GT(Reverted, 0u);
  testutil::expectVerified(*Run.Optimized);

  // The reverted output is structurally identical to the input module.
  ValidationReport Certified = Engine.validateModules(*M, *Run.Optimized);
  for (const FunctionReportEntry &E : Certified.Functions)
    EXPECT_TRUE(E.SkippedIdentical) << E.Name;
}

TEST(EngineTest, ParallelRevertIsDeterministicAcrossThreadCounts) {
  // The revert phase re-clones certified bodies one pool task per function;
  // the reverted output and the report must not depend on the thread count.
  std::string Baseline;
  for (unsigned Threads : {1u, 4u}) {
    Context Ctx;
    auto M = generateBenchmark(Ctx, smallProfile());

    PassManager PM;
    PM.addPass(createPass("gvn"));
    PM.addPass(std::make_unique<BugInjectorPass>());

    EngineConfig C;
    C.Threads = Threads;
    C.RevertFailures = true;
    ValidationEngine Engine(C);
    EngineRun Run = Engine.run(*M, PM);
    EXPECT_GT(Run.Report.reverted(), 0u);
    testutil::expectVerified(*Run.Optimized);

    // Every reverted function must be provably equivalent to its original
    // again, and the whole report must be thread-count independent.
    ValidationReport Certified = Engine.validateModules(*M, *Run.Optimized);
    for (const FunctionReportEntry &E : Certified.Functions)
      EXPECT_TRUE(E.Validated || E.SkippedIdentical) << E.Name;
    std::string Json = reportToJSON(Run.Report);
    if (Baseline.empty())
      Baseline = Json;
    else
      EXPECT_EQ(Baseline, Json) << "thread count " << Threads
                                << " changed the reverted report";
  }
}

//===----------------------------------------------------------------------===//
// Report emitters
//===----------------------------------------------------------------------===//

TEST(EngineTest, ReportEmittersAgreeOnAggregates) {
  Context Ctx;
  auto M = generateBenchmark(Ctx, smallProfile());
  ValidationEngine Engine;
  EngineRun Run = Engine.run(*M, getPaperPipeline());
  const ValidationReport &R = Run.Report;

  std::string Text = reportToText(R);
  EXPECT_NE(Text.find(R.ModuleName), std::string::npos);

  std::string Csv = reportToCSV(R);
  // Header + one row per function.
  size_t Rows = 0;
  for (char Ch : Csv)
    Rows += Ch == '\n';
  EXPECT_EQ(Rows, 1 + R.total());

  std::string Json = reportToJSON(R);
  EXPECT_NE(Json.find("\"llvmmd-validation-report-v1\""), std::string::npos);
  EXPECT_EQ(Json.find("\"wall_us\""), std::string::npos)
      << "timing leaked into the deterministic JSON shape";
  std::string Timed = reportToJSON(R, /*IncludeTiming=*/true);
  EXPECT_NE(Timed.find("\"wall_us\""), std::string::npos);
}
