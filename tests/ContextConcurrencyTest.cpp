//===- ContextConcurrencyTest.cpp - Thread-safe interning tests --------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
// The sharded Context must give back the *same* Constant*/Type* pointer for
// a given key no matter which thread interns it first: pointer equality is
// semantic equality everywhere downstream (hash-consing, GVN, folding), so
// a duplicate interned under contention would silently break validation.
// These tests hammer the intern tables from many threads with overlapping
// key sets and assert canonicalization; run them under TSan (scripts/
// check.sh --tsan, or the CI tsan job) to also prove data-race-freedom.
//
//===----------------------------------------------------------------------===//

#include "ir/Context.h"

#include <atomic>
#include <gtest/gtest.h>
#include <set>
#include <thread>
#include <vector>

using namespace llvmmd;

namespace {

constexpr unsigned NumThreads = 8;
constexpr unsigned KeysPerThread = 2048;
/// Overlap factor: every thread interns values modulo this, so all threads
/// fight over the same small key set.
constexpr int64_t DistinctInts = 97;

/// Launches \p NumThreads copies of \p Body(thread index) through a start
/// barrier so they enter the intern tables together.
template <typename Fn> void runConcurrently(Fn Body) {
  std::atomic<unsigned> Ready{0};
  std::atomic<bool> Go{false};
  std::vector<std::thread> Threads;
  Threads.reserve(NumThreads);
  for (unsigned T = 0; T < NumThreads; ++T) {
    Threads.emplace_back([&, T] {
      ++Ready;
      while (!Go.load())
        std::this_thread::yield();
      Body(T);
    });
  }
  while (Ready.load() != NumThreads)
    std::this_thread::yield();
  Go.store(true);
  for (std::thread &Th : Threads)
    Th.join();
}

} // namespace

TEST(ContextConcurrencyTest, IntegerInterningIsCanonicalAcrossThreads) {
  Context Ctx;
  // Pointers observed per thread, in identical (type, value) probe order.
  std::vector<std::vector<ConstantInt *>> Seen(NumThreads);

  runConcurrently([&](unsigned T) {
    std::vector<ConstantInt *> &Out = Seen[T];
    Out.reserve(KeysPerThread * 2);
    // Walk the key space in a thread-dependent order (forward or backward,
    // varying stride) so first-interner races happen on every key, but
    // record the observations re-probed in one canonical order afterwards.
    for (unsigned I = 0; I < KeysPerThread; ++I) {
      int64_t V = (T % 2 == 0) ? I % DistinctInts
                               : (KeysPerThread - 1 - I) % DistinctInts;
      Ctx.getInt32(V - DistinctInts / 2);
      Ctx.getInt64(V);
      Ctx.getBool(V % 2 == 0);
      Ctx.getInt(Ctx.getIntTy(8), V);
      Ctx.getInt(Ctx.getIntTy(16), -V);
    }
    for (int64_t V = 0; V < DistinctInts; ++V) {
      Out.push_back(Ctx.getInt32(V - DistinctInts / 2));
      Out.push_back(Ctx.getInt64(V));
      Out.push_back(Ctx.getInt(Ctx.getIntTy(8), V));
      Out.push_back(Ctx.getInt(Ctx.getIntTy(16), -V));
    }
  });

  // Every thread observed the same canonical pointer for every key.
  for (unsigned T = 1; T < NumThreads; ++T)
    EXPECT_EQ(Seen[0], Seen[T]) << "thread " << T
                                << " saw non-canonical constants";
  // No duplicates: distinct keys map to distinct pointers.
  std::set<ConstantInt *> Unique(Seen[0].begin(), Seen[0].end());
  EXPECT_EQ(Unique.size(), Seen[0].size());
  // Values survived canonicalization (i8 wraps by sign extension).
  EXPECT_EQ(Ctx.getInt32(3)->getSExtValue(), 3);
  EXPECT_EQ(Ctx.getInt(Ctx.getIntTy(8), 200)->getSExtValue(),
            signExtend(200, 8));
}

TEST(ContextConcurrencyTest, FloatUndefAndNullInterningAreCanonical) {
  Context Ctx;
  struct Observed {
    std::vector<ConstantFP *> Floats;
    std::vector<UndefValue *> Undefs;
    ConstantPointerNull *Null = nullptr;
  };
  std::vector<Observed> Seen(NumThreads);

  runConcurrently([&](unsigned T) {
    Observed &O = Seen[T];
    for (unsigned I = 0; I < KeysPerThread; ++I) {
      double D = static_cast<double>((T % 2 ? I : KeysPerThread - I) % 61) / 4;
      Ctx.getFloat(D);
      Ctx.getFloat(-D);
    }
    for (unsigned I = 0; I < 61; ++I) {
      O.Floats.push_back(Ctx.getFloat(static_cast<double>(I) / 4));
      O.Floats.push_back(Ctx.getFloat(-static_cast<double>(I) / 4));
    }
    O.Undefs = {Ctx.getUndef(Ctx.getInt32Ty()), Ctx.getUndef(Ctx.getFloatTy()),
                Ctx.getUndef(Ctx.getPtrTy()), Ctx.getUndef(Ctx.getInt1Ty())};
    O.Null = Ctx.getNullPtr();
  });

  for (unsigned T = 1; T < NumThreads; ++T) {
    EXPECT_EQ(Seen[0].Floats, Seen[T].Floats);
    EXPECT_EQ(Seen[0].Undefs, Seen[T].Undefs);
    EXPECT_EQ(Seen[0].Null, Seen[T].Null);
  }
  // -0.0 and +0.0 intern separately (bit-pattern identity), like before.
  EXPECT_NE(Ctx.getFloat(0.0), Ctx.getFloat(-0.0));
}

TEST(ContextConcurrencyTest, FunctionTypeInterningIsCanonical) {
  Context Ctx;
  std::vector<std::vector<FunctionType *>> Seen(NumThreads);

  runConcurrently([&](unsigned T) {
    std::vector<FunctionType *> &Out = Seen[T];
    Type *I32 = Ctx.getInt32Ty();
    Type *I64 = Ctx.getInt64Ty();
    Type *F = Ctx.getFloatTy();
    Type *P = Ctx.getPtrTy();
    for (unsigned Round = 0; Round < 64; ++Round) {
      // Every thread asks for the same shapes in a different order.
      unsigned Spin = (Round + T) % 4;
      for (unsigned K = 0; K < 4; ++K) {
        switch ((K + Spin) % 4) {
        case 0:
          Ctx.getFunctionTy(I32, {I32, I32});
          break;
        case 1:
          Ctx.getFunctionTy(Ctx.getVoidTy(), {P});
          break;
        case 2:
          Ctx.getFunctionTy(F, {F, I64});
          break;
        case 3:
          Ctx.getFunctionTy(I64, {});
          break;
        }
      }
    }
    Out = {Ctx.getFunctionTy(I32, {I32, I32}),
           Ctx.getFunctionTy(Ctx.getVoidTy(), {P}),
           Ctx.getFunctionTy(F, {F, I64}), Ctx.getFunctionTy(I64, {})};
  });

  for (unsigned T = 1; T < NumThreads; ++T)
    EXPECT_EQ(Seen[0], Seen[T]);
  std::set<FunctionType *> Unique(Seen[0].begin(), Seen[0].end());
  EXPECT_EQ(Unique.size(), 4u);
}
