//===- InterpreterTest.cpp - Reference interpreter tests ----------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "ir/IRBuilder.h"
#include "ir/Interpreter.h"

#include <gtest/gtest.h>

using namespace llvmmd;
using namespace llvmmd::testutil;

namespace {

int64_t runInt(const char *Src, std::vector<RtValue> Args = {}) {
  Context Ctx;
  auto M = parseOrDie(Ctx, Src);
  expectVerified(*M);
  Interpreter I(*M);
  ExecResult R = I.run(*M->definedFunctions().front(), Args);
  EXPECT_EQ(R.Status, ExecStatus::OK) << R.Detail;
  EXPECT_TRUE(R.HasValue);
  return R.Value.Int;
}

ExecStatus runStatus(const char *Src, std::vector<RtValue> Args = {}) {
  Context Ctx;
  auto M = parseOrDie(Ctx, Src);
  Interpreter I(*M);
  return I.run(*M->definedFunctions().front(), Args).Status;
}

} // namespace

TEST(Interpreter, Arithmetic) {
  EXPECT_EQ(runInt(R"(
define i32 @f() {
entry:
  %a = add i32 20, 22
  ret i32 %a
}
)"),
            42);
  EXPECT_EQ(runInt(R"(
define i32 @f() {
entry:
  %a = mul i32 -3, 5
  %b = sdiv i32 %a, 2
  %c = srem i32 %a, 4
  %d = add i32 %b, %c
  ret i32 %d
}
)"),
            -10); // -15/2 = -7 (trunc), -15%4 = -3
}

TEST(Interpreter, WrapAroundAtWidth) {
  EXPECT_EQ(runInt(R"(
define i8 @f() {
entry:
  %a = add i8 127, 1
  ret i8 %a
}
)"),
            -128);
  EXPECT_EQ(runInt(R"(
define i8 @f() {
entry:
  %a = mul i8 16, 16
  ret i8 %a
}
)"),
            0);
}

TEST(Interpreter, UnsignedOps) {
  EXPECT_EQ(runInt(R"(
define i8 @f() {
entry:
  %a = udiv i8 -1, 2
  ret i8 %a
}
)"),
            127); // 255/2
  EXPECT_EQ(runInt(R"(
define i1 @f() {
entry:
  %a = icmp ugt i8 -1, 1
  ret i1 %a
}
)"),
            1); // 255 > 1 unsigned
}

TEST(Interpreter, Traps) {
  EXPECT_EQ(runStatus(R"(
define i32 @f() {
entry:
  %a = sdiv i32 1, 0
  ret i32 %a
}
)"),
            ExecStatus::Trap);
  EXPECT_EQ(runStatus(R"(
define i32 @f() {
entry:
  %a = shl i32 1, 40
  ret i32 %a
}
)"),
            ExecStatus::Trap);
  EXPECT_EQ(runStatus(R"(
define i32 @f() {
entry:
  %min = add i32 -2147483647, -1
  %a = sdiv i32 %min, -1
  ret i32 %a
}
)"),
            ExecStatus::Trap);
}

TEST(Interpreter, TrapsNeverHaveAValue) {
  // Triage contract: a trapped run is non-OK and carries no value, so the
  // differential tester can never turn it into a witness.
  Context Ctx;
  auto M = parseOrDie(Ctx, R"(
define i32 @f(i32 %d) {
entry:
  %a = sdiv i32 100, %d
  ret i32 %a
}
)");
  Interpreter I(*M);
  ExecResult R = I.run(*M->definedFunctions().front(), {RtValue::makeInt(0)});
  EXPECT_EQ(R.Status, ExecStatus::Trap);
  EXPECT_FALSE(R.HasValue);
  // The same function is fine on a non-trapping input afterwards.
  R = I.run(*M->definedFunctions().front(), {RtValue::makeInt(4)});
  ASSERT_EQ(R.Status, ExecStatus::OK);
  EXPECT_EQ(R.Value.Int, 25);
}

TEST(Interpreter, ExplicitStepBudgetExhaustsAndRecovers) {
  // A bounded loop that needs ~4 steps per iteration: a tiny budget must
  // report StepLimit (non-OK, no value), and the budget must reset per
  // run so a later short run still succeeds.
  Context Ctx;
  auto M = parseOrDie(Ctx, R"(
define i32 @f(i32 %n) {
entry:
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %i2, %b ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %b, label %x
b:
  %i2 = add i32 %i, 1
  br label %h
x:
  ret i32 %i
}
)");
  Interpreter I(*M, /*StepBudget=*/12);
  ExecResult Long = I.run(*M->definedFunctions().front(),
                          {RtValue::makeInt(1000)});
  EXPECT_EQ(Long.Status, ExecStatus::StepLimit);
  EXPECT_FALSE(Long.HasValue);
  ExecResult Short = I.run(*M->definedFunctions().front(),
                           {RtValue::makeInt(1)});
  ASSERT_EQ(Short.Status, ExecStatus::OK) << Short.Detail;
  EXPECT_EQ(Short.Value.Int, 1);
}

TEST(Interpreter, PointerReturningFunctionIsDeterministic) {
  // Allocation addresses are interpreter artifacts, not program behavior —
  // but they must at least be deterministic across runs so differential
  // comparisons of loaded *contents* stay meaningful.
  Context Ctx;
  auto M = parseOrDie(Ctx, R"(
define ptr @f() {
entry:
  %p = alloca i32, i64 4
  %q = getelementptr i32, ptr %p, i64 1
  store i32 9, ptr %q
  ret ptr %q
}
)");
  Interpreter I(*M);
  ExecResult R1 = I.run(*M->definedFunctions().front(), {});
  ExecResult R2 = I.run(*M->definedFunctions().front(), {});
  ASSERT_EQ(R1.Status, ExecStatus::OK) << R1.Detail;
  ASSERT_EQ(R2.Status, ExecStatus::OK) << R2.Detail;
  EXPECT_EQ(R1.Value.K, RtValue::Kind::Ptr);
  EXPECT_EQ(R1.Value.Ptr, R2.Value.Ptr);
  EXPECT_NE(R1.Value.Ptr, 0u);
}

TEST(Interpreter, PhiWithoutEdgeEntryIsUnsupportedNotUB) {
  // Mutated/reduced IR can reach a phi over an edge it has no entry for;
  // the interpreter must report Unsupported (skippable) instead of
  // asserting. Built programmatically — the verifier would reject this.
  Context Ctx;
  auto M = std::make_unique<Module>(Ctx, "m");
  Type *I32 = Ctx.getInt32Ty();
  Function *F = M->createFunction(Ctx.getFunctionTy(I32, {I32}), "f");
  IRBuilder B(Ctx);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Join = F->createBlock("join");
  B.setInsertPoint(Entry);
  B.createBr(Join);
  B.setInsertPoint(Join);
  PhiNode *P = B.createPhi(I32, "p");
  (void)P; // no incoming entry for the entry->join edge
  B.createRet(Ctx.getInt32(0));
  Interpreter I(*M);
  ExecResult R = I.run(*F, {RtValue::makeInt(1)});
  EXPECT_EQ(R.Status, ExecStatus::Unsupported);
}

TEST(Interpreter, StepLimitOnInfiniteLoop) {
  EXPECT_EQ(runStatus(R"(
define void @f() {
entry:
  br label %x
x:
  br label %x
}
)"),
            ExecStatus::StepLimit);
}

TEST(Interpreter, PhiAndLoop) {
  // sum 0..n-1
  const char *Src = R"(
define i32 @f(i32 %n) {
entry:
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %i2, %b ]
  %s = phi i32 [ 0, %entry ], [ %s2, %b ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %b, label %x
b:
  %s2 = add i32 %s, %i
  %i2 = add i32 %i, 1
  br label %h
x:
  ret i32 %s
}
)";
  EXPECT_EQ(runInt(Src, {RtValue::makeInt(5)}), 10);
  EXPECT_EQ(runInt(Src, {RtValue::makeInt(0)}), 0);
}

TEST(Interpreter, ParallelPhiSemantics) {
  // Swapping phis must read the pre-edge values, not serialized updates.
  const char *Src = R"(
define i32 @f(i32 %n) {
entry:
  br label %h
h:
  %a = phi i32 [ 1, %entry ], [ %b, %body ]
  %b = phi i32 [ 2, %entry ], [ %a, %body ]
  %i = phi i32 [ 0, %entry ], [ %i2, %body ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %body, label %x
body:
  %i2 = add i32 %i, 1
  br label %h
x:
  %r = shl i32 %a, 4
  %r2 = or i32 %r, %b
  ret i32 %r2
}
)";
  EXPECT_EQ(runInt(Src, {RtValue::makeInt(0)}), 0x12);
  EXPECT_EQ(runInt(Src, {RtValue::makeInt(1)}), 0x21);
  EXPECT_EQ(runInt(Src, {RtValue::makeInt(2)}), 0x12);
}

TEST(Interpreter, MemoryAndGEP) {
  EXPECT_EQ(runInt(R"(
define i32 @f() {
entry:
  %p = alloca i32, i64 4
  %q = getelementptr i32, ptr %p, i64 2
  store i32 7, ptr %p
  store i32 9, ptr %q
  %a = load i32, ptr %p
  %b = load i32, ptr %q
  %s = add i32 %a, %b
  ret i32 %s
}
)"),
            16);
}

TEST(Interpreter, GlobalsPersistAcrossCallsWithinRun) {
  Context Ctx;
  auto M = parseOrDie(Ctx, R"(
@g = global i32 5
define void @bump() {
entry:
  %v = load i32, ptr @g
  %v2 = add i32 %v, 1
  store i32 %v2, ptr @g
  ret void
}
define i32 @f() {
entry:
  call void @bump()
  call void @bump()
  %v = load i32, ptr @g
  ret i32 %v
}
)");
  Interpreter I(*M);
  ExecResult R = I.run(*M->getFunction("f"), {});
  ASSERT_EQ(R.Status, ExecStatus::OK) << R.Detail;
  EXPECT_EQ(R.Value.Int, 7);
  auto Mem = I.globalMemory();
  ASSERT_EQ(Mem.at("g").size(), 4u);
  EXPECT_EQ(Mem.at("g")[0], 7);
}

TEST(Interpreter, Builtins) {
  Context Ctx;
  auto M = parseOrDie(Ctx, R"(
declare i64 @strlen(ptr) readonly
declare i32 @atoi(ptr) readonly
declare i32 @abs(i32) readnone
declare void @memset(ptr, i32, i64)
define i64 @len(ptr %s) {
entry:
  %l = call i64 @strlen(ptr %s)
  ret i64 %l
}
define i32 @parse(ptr %s) {
entry:
  %v = call i32 @atoi(ptr %s)
  ret i32 %v
}
define i32 @fill() {
entry:
  %p = alloca i8, i64 8
  call void @memset(ptr %p, i32 65, i64 8)
  %q = getelementptr i8, ptr %p, i64 5
  %b = load i8, ptr %q
  %z = zext i8 %b to i32
  ret i32 %z
}
define i32 @mag(i32 %x) {
entry:
  %a = call i32 @abs(i32 %x)
  ret i32 %a
}
)");
  Interpreter I(*M);
  uint64_t S = I.materializeString("hello");
  auto R1 = I.run(*M->getFunction("len"), {RtValue::makePtr(S)});
  ASSERT_EQ(R1.Status, ExecStatus::OK);
  EXPECT_EQ(R1.Value.Int, 5);

  uint64_t N = I.materializeString("-321");
  auto R2 = I.run(*M->getFunction("parse"), {RtValue::makePtr(N)});
  ASSERT_EQ(R2.Status, ExecStatus::OK);
  EXPECT_EQ(R2.Value.Int, -321);

  auto R3 = I.run(*M->getFunction("fill"), {});
  ASSERT_EQ(R3.Status, ExecStatus::OK);
  EXPECT_EQ(R3.Value.Int, 65);

  auto R4 = I.run(*M->getFunction("mag"), {RtValue::makeInt(-9)});
  ASSERT_EQ(R4.Status, ExecStatus::OK);
  EXPECT_EQ(R4.Value.Int, 9);
}

TEST(Interpreter, UnmodeledExternalTraps) {
  EXPECT_EQ(runStatus(R"(
declare i32 @mystery()
define i32 @f() {
entry:
  %x = call i32 @mystery()
  ret i32 %x
}
)"),
            ExecStatus::Trap);
}

TEST(Interpreter, FloatsAndCasts) {
  EXPECT_EQ(runInt(R"(
define i32 @f() {
entry:
  %a = fadd float 1.5, 2.25
  %c = fcmp oge float %a, 3.75
  %z = zext i1 %c to i32
  ret i32 %z
}
)"),
            1);
  EXPECT_EQ(runInt(R"(
define i32 @f() {
entry:
  %t = trunc i32 300 to i8
  %s = sext i8 %t to i32
  ret i32 %s
}
)"),
            44);
}
