//===- store_tool.cpp - Verdict store inspection and offline merge ------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
// Offline companion to the persistent VerdictStore: inspect store files
// (including the fleet's per-worker shards) without an engine, and union
// shards into one store without starting a fleet — e.g. to salvage the
// shards of a crashed fleet, or to ship a CI store built on N machines.
//
//   $ ./store_tool --dump PATH...
//       One line per file: format version, config digest, verdict/triage
//       entry counts, file size — or the rejection reason (bad magic,
//       version mismatch, corrupt payload). Exit 0 iff every file loaded.
//
//   $ ./store_tool --merge A,B,C -o OUT
//       Union the inputs into OUT. The config digest is taken from the
//       first loadable input; any input with a different digest makes the
//       merge fail (verdicts proven under different rules must never
//       union). Earlier inputs win per key. Exit 0 on success.
//
//   $ ./store_tool --stats PATH...
//       Per-shard occupancy of each v3 store: entries, triage entries,
//       payload bytes and checksum health per shard, plus the index-level
//       totals — the view that answers "is one module's shard hogging the
//       file" and "which shard did the corruption hit". A v2 store reports
//       its totals with a no-shards note. Exit 0 iff every file (and every
//       shard) is healthy.
//
//===----------------------------------------------------------------------===//

#include "driver/VerdictStore.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace llvmmd;

namespace {

const char *statusName(VerdictStore::LoadStatus S) {
  switch (S) {
  case VerdictStore::LoadStatus::Loaded:
    return "ok";
  case VerdictStore::LoadStatus::NoFile:
    return "no-file";
  case VerdictStore::LoadStatus::BadMagic:
    return "bad-magic";
  case VerdictStore::LoadStatus::BadVersion:
    return "bad-version";
  case VerdictStore::LoadStatus::ConfigMismatch:
    return "config-mismatch";
  case VerdictStore::LoadStatus::Corrupt:
    return "corrupt";
  }
  return "unknown";
}

int dump(const std::vector<std::string> &Paths) {
  int Rc = 0;
  for (const std::string &P : Paths) {
    VerdictStore::HeaderInfo HI = VerdictStore::peekHeader(P);
    if (HI.ok()) {
      std::printf("%s: v%u digest %016llx verdicts %llu triage %llu "
                  "(%llu bytes)\n",
                  P.c_str(), HI.Version,
                  static_cast<unsigned long long>(HI.ConfigDigest),
                  static_cast<unsigned long long>(HI.VerdictEntries),
                  static_cast<unsigned long long>(HI.TriageEntries),
                  static_cast<unsigned long long>(HI.FileBytes));
    } else {
      std::printf("%s: %s%s%s\n", P.c_str(), statusName(HI.Status),
                  HI.Message.empty() ? "" : " — ", HI.Message.c_str());
      Rc = 1;
    }
  }
  return Rc;
}

int merge(const std::vector<std::string> &Inputs, const std::string &Out) {
  // The digest comes from the first input that is a loadable store; every
  // other input must match it, which mergePaths enforces (a digest
  // mismatch loads as ConfigMismatch and fails the whole merge — partial
  // unions would silently drop verdicts).
  uint64_t Digest = 0;
  bool HaveDigest = false;
  for (const std::string &P : Inputs) {
    VerdictStore::HeaderInfo HI = VerdictStore::peekHeader(P);
    if (HI.ok()) {
      Digest = HI.ConfigDigest;
      HaveDigest = true;
      break;
    }
    if (HI.Status != VerdictStore::LoadStatus::NoFile) {
      std::fprintf(stderr, "error: %s: %s%s%s\n", P.c_str(),
                   statusName(HI.Status), HI.Message.empty() ? "" : " — ",
                   HI.Message.c_str());
      return 1;
    }
  }
  if (!HaveDigest) {
    std::fprintf(stderr, "error: no loadable input store\n");
    return 1;
  }
  std::string Error;
  uint64_t Written = VerdictStore::mergePaths(Inputs, Out, Digest, &Error);
  if (Written == ~0ull) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  std::printf("%s: %llu verdict entries (digest %016llx, %zu inputs)\n",
              Out.c_str(), static_cast<unsigned long long>(Written),
              static_cast<unsigned long long>(Digest), Inputs.size());
  return 0;
}

int stats(const std::vector<std::string> &Paths) {
  int Rc = 0;
  for (const std::string &P : Paths) {
    VerdictStore::HeaderInfo HI;
    std::vector<VerdictStore::ShardStats> Shards =
        VerdictStore::peekShards(P, &HI);
    if (HI.Status == VerdictStore::LoadStatus::Loaded && Shards.empty()) {
      std::printf("%s: v%u digest %016llx verdicts %llu triage %llu "
                  "(%llu bytes, flat payload — no shards)\n",
                  P.c_str(), HI.Version,
                  static_cast<unsigned long long>(HI.ConfigDigest),
                  static_cast<unsigned long long>(HI.VerdictEntries),
                  static_cast<unsigned long long>(HI.TriageEntries),
                  static_cast<unsigned long long>(HI.FileBytes));
      continue;
    }
    if (Shards.empty()) {
      std::printf("%s: %s%s%s\n", P.c_str(), statusName(HI.Status),
                  HI.Message.empty() ? "" : " — ", HI.Message.c_str());
      Rc = 1;
      continue;
    }
    std::printf("%s: v%u digest %016llx, %u shard(s), verdicts %llu "
                "triage %llu (%llu bytes)\n",
                P.c_str(), HI.Version,
                static_cast<unsigned long long>(HI.ConfigDigest),
                HI.ShardCount,
                static_cast<unsigned long long>(HI.VerdictEntries),
                static_cast<unsigned long long>(HI.TriageEntries),
                static_cast<unsigned long long>(HI.FileBytes));
    for (size_t S = 0; S < Shards.size(); ++S) {
      const VerdictStore::ShardStats &SS = Shards[S];
      std::printf("  shard %zu: verdicts %llu triage %llu, %llu bytes "
                  "@ offset %llu%s\n",
                  S, static_cast<unsigned long long>(SS.VerdictEntries),
                  static_cast<unsigned long long>(SS.TriageEntries),
                  static_cast<unsigned long long>(SS.Bytes),
                  static_cast<unsigned long long>(SS.Offset),
                  SS.ChecksumOk ? "" : " CORRUPT");
      if (!SS.ChecksumOk)
        Rc = 1;
    }
    if (HI.Status != VerdictStore::LoadStatus::Loaded)
      Rc = 1;
  }
  return Rc;
}

std::vector<std::string> splitCommas(const std::string &S) {
  std::vector<std::string> Out;
  size_t Start = 0;
  while (Start <= S.size()) {
    size_t Comma = S.find(',', Start);
    if (Comma == std::string::npos)
      Comma = S.size();
    if (Comma > Start)
      Out.push_back(S.substr(Start, Comma - Start));
    Start = Comma + 1;
  }
  return Out;
}

int usage() {
  std::fprintf(stderr, "usage: store_tool --dump PATH...\n"
                       "       store_tool --merge A,B,C -o OUT\n"
                       "       store_tool --stats PATH...\n");
  return 1;
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 2)
    return usage();

  if (std::strcmp(argv[1], "--dump") == 0) {
    std::vector<std::string> Paths(argv + 2, argv + argc);
    if (Paths.empty())
      return usage();
    return dump(Paths);
  }

  if (std::strcmp(argv[1], "--stats") == 0) {
    std::vector<std::string> Paths(argv + 2, argv + argc);
    if (Paths.empty())
      return usage();
    return stats(Paths);
  }

  if (std::strcmp(argv[1], "--merge") == 0) {
    if (argc != 5 || std::strcmp(argv[3], "-o") != 0)
      return usage();
    std::vector<std::string> Inputs = splitCommas(argv[2]);
    if (Inputs.empty())
      return usage();
    return merge(Inputs, argv[4]);
  }

  return usage();
}
