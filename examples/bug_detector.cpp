//===- bug_detector.cpp - Catching miscompiles with the validator --------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
// Translation validation as a compiler-debugging tool, on the engine's
// triage path: we play a buggy optimizer by injecting deterministic
// miscompiles into optimized code, let the ValidationEngine validate every
// pair in parallel, and let the triage subsystem post-process each
// rejection — printing the concrete witness inputs the differential tester
// found for every detected bug.
//
// Exit status 1 flags either direction of disagreement between the
// validator and the interpreter:
//  * a validated pair where the differential tester still finds diverging
//    behavior (a soundness violation), or
//  * a rejected pair whose triage classified it suspected-false-alarm even
//    though a direct differential probe diverges (a triage defect — the
//    probe corpus is the triage corpus, so this must not happen).
//
//   $ ./bug_detector [--input SPEC] [--format auto|mini|llvm] [num-trials]
//
// The original module comes from the shared ModuleLoader: by default the
// sjeng profile sized to num-trials functions; --input substitutes any
// module spec (a mini-IR or .ll file, `-` for stdin, or profile:NAME).
//
//===----------------------------------------------------------------------===//

#include "driver/ModuleLoader.h"
#include "driver/ValidationEngine.h"
#include "ir/Cloning.h"
#include "ir/Module.h"
#include "opt/BugInjector.h"
#include "opt/Pass.h"
#include "triage/DifferentialTester.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>

using namespace llvmmd;

int main(int argc, char **argv) {
  unsigned Trials = 24;
  ModuleSpec Spec = parseModuleSpec("profile:sjeng");
  ModuleFormat Format = ModuleFormat::Auto;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--help") == 0) {
      std::printf("usage: bug_detector [--input SPEC] "
                  "[--format auto|mini|llvm] [num-trials]\n\n%s",
                  moduleSpecHelp());
      return 0;
    } else if (std::strcmp(argv[I], "--input") == 0 && I + 1 < argc)
      Spec = parseModuleSpec(argv[++I]);
    else if (std::strcmp(argv[I], "--format") == 0 && I + 1 < argc) {
      if (!parseModuleFormat(argv[++I], Format)) {
        std::fprintf(stderr, "error: bad --format '%s' (auto|mini|llvm)\n",
                     argv[I]);
        return 1;
      }
    } else if (argv[I][0] != '-' || argv[I][1] == '\0') {
      Trials = static_cast<unsigned>(std::atoi(argv[I]));
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", argv[I]);
      return 1;
    }
  }

  Spec.Format = Format;
  Spec.ProfileFnCount = Trials;
  Context Ctx;
  LoadResult Loaded = loadModule(Ctx, Spec);
  if (!Loaded) {
    std::fprintf(stderr, "error: %s\n", Loaded.Error.c_str());
    return 1;
  }
  std::unique_ptr<Module> M = std::move(Loaded.Modules.front().M);
  auto Opt = cloneModule(*M);

  // The "buggy compiler": a legitimate optimization pipeline followed by a
  // deterministic injected miscompile per function.
  PassManager PM;
  PM.parsePipeline("gvn,sccp");
  std::map<std::string, std::string> Bugs;
  uint64_t Seed = 0x5eed;
  for (Function *FO : Opt->definedFunctions()) {
    PM.run(*FO);
    std::string Bug = injectBug(*FO, Seed++);
    if (!Bug.empty())
      Bugs[FO->getName()] = Bug;
  }

  // Validate + triage the whole module pair in one engine batch.
  EngineConfig C;
  C.Rules.Mask = RS_All;
  C.Triage.Enabled = true;
  ValidationEngine Engine(C);
  ValidationReport Report = Engine.validateModules(*M, *Opt);

  // The cross-check below is only sound because the probe replays exactly
  // the corpus the engine's triage used (buildCorpus is a pure function of
  // the signature, the input count and the corpus bias) — read all three
  // knobs from the config, resolving the bias the same way triagePair does.
  DifferentialTester Probe(*M, *Opt, C.Triage.StepBudget);
  const unsigned ProbeInputs = C.Triage.MaxInputs;
  const CorpusBias ProbeBias = resolveCorpusBias(C.Triage, *M);
  unsigned Caught = 0, Witnessed = 0, Silent = 0, Errors = 0;
  for (const FunctionReportEntry &E : Report.Functions) {
    auto BugIt = Bugs.find(E.Name);
    if (BugIt == Bugs.end())
      continue; // no mutation site: the pair only differs by optimization
    const char *Verdict = E.Validated ? "ACCEPTED" : "rejected";
    std::printf("%-14s %-40s %s\n", E.Name.c_str(), BugIt->second.c_str(),
                Verdict);
    if (E.Validated) {
      // A sound validator may only accept when the bug is unobservable;
      // cross-check with a direct differential probe.
      DiffOutcome O = Probe.test(*M->getFunction(E.Name),
                                 *Opt->getFunction(E.Name), ProbeInputs,
                                 ProbeBias);
      if (O.HasWitness) {
        ++Errors;
        std::printf("  ^^^ SOUNDNESS VIOLATION: accepted, but diverges on:\n");
        for (const std::string &In : O.WitnessRendered)
          std::printf("        %s\n", In.c_str());
        std::printf("      %s\n", O.Divergence.c_str());
      }
      continue;
    }
    ++Caught;
    switch (E.Triage.Classification) {
    case TriageClassification::MiscompileWitnessed: {
      ++Witnessed;
      std::printf("  witness:");
      for (const std::string &In : E.Triage.WitnessInputs)
        std::printf(" %s", In.c_str());
      std::printf("  ->  %s\n", E.Triage.WitnessDivergence.c_str());
      if (E.Triage.Reduced)
        std::printf("  reduced to %llu+%llu instructions\n",
                    static_cast<unsigned long long>(E.Triage.OrigInstsAfter),
                    static_cast<unsigned long long>(E.Triage.OptInstsAfter));
      break;
    }
    case TriageClassification::SuspectedFalseAlarm: {
      // The triage corpus covers the probe corpus, so a diverging probe
      // here means the triage phase itself is broken.
      DiffOutcome O = Probe.test(*M->getFunction(E.Name),
                                 *Opt->getFunction(E.Name), ProbeInputs,
                                 ProbeBias);
      if (O.HasWitness) {
        ++Errors;
        std::printf("  ^^^ TRIAGE DEFECT: suspected-false-alarm but the "
                    "probe diverges (%s)\n",
                    O.Divergence.c_str());
      } else {
        ++Silent; // conservatively rejected, unobservable on the corpus
        std::printf("  no witness on %u inputs: suspected false alarm%s%s\n",
                    E.Triage.InputsTried,
                    E.Triage.MissingRule.empty() ? "" : ", missing rule: ",
                    E.Triage.MissingRule.c_str());
      }
      break;
    }
    default:
      ++Silent;
      break;
    }
  }

  std::printf("\n%u injected bugs: %u rejected (%u with concrete witness), "
              "%u unobservable mutations conservatively rejected, %u "
              "validator/interpreter disagreements\n",
              static_cast<unsigned>(Bugs.size()), Caught, Witnessed, Silent,
              Errors);
  return Errors == 0 ? 0 : 1;
}
