//===- bug_detector.cpp - Catching miscompiles with the validator --------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
// Translation validation as a compiler-debugging tool: we play a buggy
// optimizer by injecting deterministic miscompiles into optimized code and
// show that the validator flags every observable one, while the reference
// interpreter confirms each flagged pair really does behave differently.
//
//   $ ./bug_detector [num-trials]
//
//===----------------------------------------------------------------------===//

#include "ir/Cloning.h"
#include "ir/Interpreter.h"
#include "ir/Module.h"
#include "opt/BugInjector.h"
#include "opt/Pass.h"
#include "validator/Validator.h"
#include "workload/Generator.h"

#include <cstdio>
#include <cstdlib>

using namespace llvmmd;

int main(int argc, char **argv) {
  unsigned Trials = argc > 1 ? std::atoi(argv[1]) : 24;

  Context Ctx;
  BenchmarkProfile P = getProfile("sjeng");
  P.FunctionCount = Trials;
  auto M = generateBenchmark(Ctx, P);
  auto Opt = cloneModule(*M);

  PassManager PM;
  PM.parsePipeline("gvn,sccp");
  RuleConfig Rules;
  Rules.Mask = RS_All;
  Rules.M = M.get();

  Interpreter IA(*M), IB(*Opt);
  uint64_t SA = IA.materializeString("probe");
  uint64_t SB = IB.materializeString("probe");

  unsigned Caught = 0, Observable = 0, Silent = 0;
  uint64_t Seed = 0x5eed;
  for (Function *FO : Opt->definedFunctions()) {
    PM.run(*FO); // a legitimate optimization first...
    std::string Bug = injectBug(*FO, Seed++); // ...then the "compiler bug"
    if (Bug.empty())
      continue;
    Function *FI = M->getFunction(FO->getName());

    // Does the bug change behavior on a few probe inputs?
    bool Differs = false;
    for (int T = 0; T < 4 && !Differs; ++T) {
      std::vector<RtValue> ArgsA{RtValue::makeInt(T * 11 - 4),
                                 RtValue::makeInt(5 - 2 * T),
                                 RtValue::makePtr(SA)};
      std::vector<RtValue> ArgsB{RtValue::makeInt(T * 11 - 4),
                                 RtValue::makeInt(5 - 2 * T),
                                 RtValue::makePtr(SB)};
      ExecResult RA = IA.run(*FI, ArgsA);
      ExecResult RB = IB.run(*FO, ArgsB);
      if (RA.Status != ExecStatus::OK || RB.Status != ExecStatus::OK)
        continue;
      Differs = !(RA.Value == RB.Value) ||
                IA.globalMemory() != IB.globalMemory();
    }

    ValidationResult R = validatePair(*FI, *FO, Rules);
    const char *Verdict = R.Validated ? "ACCEPTED" : "rejected";
    std::printf("%-14s %-32s %-8s %s\n", FO->getName().c_str(), Bug.c_str(),
                Verdict, Differs ? "(behavior differs)" : "");
    if (Differs) {
      ++Observable;
      if (!R.Validated)
        ++Caught;
      else
        std::printf("  ^^^ SOUNDNESS VIOLATION: observable bug accepted!\n");
    } else if (!R.Validated) {
      ++Silent; // rejected although no probe caught it: a false alarm or
                // a bug our probes missed — either way the safe outcome
    }
  }

  std::printf("\ncaught %u/%u observable miscompiles; %u unobservable "
              "mutations conservatively rejected\n",
              Caught, Observable, Silent);
  return Caught == Observable ? 0 : 1;
}
