//===- batch_validate.cpp - Batch validation CLI on the engine ---------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
// Drives a whole module end-to-end through the ValidationEngine: load (or
// generate) a multi-function module through the shared ModuleLoader,
// optimize it with a pipeline, validate every transformed function in
// parallel, and emit the report as text, CSV or JSON.
//
//   $ ./batch_validate [options] [SPEC...]
//     SPEC               module spec: FILE (native mini-IR or real LLVM
//                        .ll, detected by content), `-` for stdin, or
//                        profile:NAME for a generated Table-1 benchmark.
//                        More than one spec validates the whole set as a
//                        suite (one report per module plus a roll-up).
//     --input SPEC       same as a positional spec
//     --format F         force the inline/file format: auto|mini|llvm
//                        (default auto = content sniffing)
//     --profile NAME     generate the Table-1 profile NAME when no spec is
//                        given (default: sjeng)
//     --suite NAMES      comma-separated profile list, shorthand for
//                        profile:A profile:B ... appended to the spec list
//     --pipeline P       comma-separated pass list (default: the paper's)
//     --threads N        worker threads for optimize + validate (default:
//                        hardware)
//     --stepwise         per-pass validation with guilty-pass attribution
//     --all-rules        enable the libc/float/global extension rule sets
//     --rule-mask N      set the rule mask explicitly (decimal or 0x hex);
//                        a deliberately restricted mask provokes false
//                        alarms for the triage path to explain
//     --revert           revert functions that fail validation
//     --triage           post-process every rejected pair on the pool:
//                        differential witness search against the reference
//                        interpreter, delta reduction to a minimal failing
//                        pair, and rule-gap attribution for false alarms;
//                        results land in all report formats
//     --triage-inputs N  differential corpus size per pair (default 48)
//     --triage-reduce N  delta-reduction budget in re-validations
//                        (default 128; 0 disables reduction)
//     --resubmit N       run the same module N times (N>1 demonstrates the
//                        verdict cache: later runs replay memoized verdicts)
//     --cache PATH       persistent verdict store: load before the first run
//                        and save after the last, so a second *process* over
//                        the same input replays every verdict
//     --cache-load PATH  load the store but never write it back
//     --cache-save PATH  write the store but start cold
//     --expect-warm      fail (exit 3) unless this process validated nothing
//                        from scratch — every verdict must have replayed
//                        from the store or the in-process cache; this is the
//                        CI warm-cache invariant
//     --print-config-digest
//                        print the store config digest for the current flags
//                        (rule mask / strategy / fixpoint budget / semantics
//                        salt) and exit; CI keys its cache on this
//     --json [PATH]      write the JSON report to PATH (default stdout);
//                        deterministic: byte-identical for any --threads
//     --csv [PATH]       write the CSV report
//     --timing           include wall-clock and per-phase timing in the
//                        JSON/CSV reports (breaks byte-identity, which is
//                        why it is opt-in)
//     --trace PATH       write a Chrome trace-event JSON file (load in
//                        chrome://tracing or ui.perfetto.dev) with spans
//                        for optimize/validate/triage/store phases and,
//                        in --stepwise mode, one span per pass execution;
//                        never changes the report bytes
//     --log-level L      diagnostic log verbosity: debug|info|warn|error|
//                        off (default warn; LLVMMD_LOG env is the fallback)
//     --quiet            suppress the text report
//     --help             print the usage (including the spec grammar)
//
// Exit status: 0 when every transformed function validated, 2 when some
// optimization could not be proven, 3 when --expect-warm saw a from-scratch
// validation, 1 on usage or I/O errors.
//
//===----------------------------------------------------------------------===//

#include "driver/ModuleLoader.h"
#include "driver/ValidationEngine.h"
#include "ir/Module.h"
#include "opt/Pass.h"
#include "support/Log.h"
#include "support/Trace.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace llvmmd;

namespace {

/// Prints the persistent-store stats line and enforces --expect-warm: a
/// nonzero return (3) means this process validated pairs from scratch when
/// the caller demanded a 100% replay.
int cacheEpilogue(const ValidationEngine &Engine, const std::string &CachePath,
                  bool Quiet, bool ExpectWarm) {
  const EngineCacheStats &CS = Engine.cacheStats();
  if (!CachePath.empty() && !Quiet) {
    std::printf("verdict store '%s': %llu loaded, %llu warm hits, "
                "%llu validated from scratch, %llu saved\n",
                CachePath.c_str(),
                static_cast<unsigned long long>(CS.StoreLoaded),
                static_cast<unsigned long long>(CS.WarmHits),
                static_cast<unsigned long long>(CS.Misses),
                static_cast<unsigned long long>(CS.StoreSaved));
    if (CS.TriageHits + CS.TriageMisses + CS.TriageStoreLoaded > 0)
      std::printf("triage cache: %llu loaded, %llu replayed (%llu warm), "
                  "%llu interpreted from scratch\n",
                  static_cast<unsigned long long>(CS.TriageStoreLoaded),
                  static_cast<unsigned long long>(CS.TriageHits),
                  static_cast<unsigned long long>(CS.TriageWarmHits),
                  static_cast<unsigned long long>(CS.TriageMisses));
  }
  if (ExpectWarm && CS.Misses > 0) {
    std::fprintf(stderr,
                 "error: --expect-warm, but %llu pair(s) were validated from "
                 "scratch (replay rate < 100%%)\n",
                 static_cast<unsigned long long>(CS.Misses));
    return 3;
  }
  // Warm means the triage work replays too: a rejected pair that was
  // re-interpreted from scratch breaks the invariant the same way a
  // re-validated one does.
  if (ExpectWarm && CS.TriageMisses > 0) {
    std::fprintf(stderr,
                 "error: --expect-warm, but %llu rejected pair(s) were "
                 "re-triaged from scratch (triage replay rate < 100%%)\n",
                 static_cast<unsigned long long>(CS.TriageMisses));
    return 3;
  }
  return 0;
}

bool writeOrPrint(const std::string &Path, const std::string &Content) {
  if (Path.empty() || Path == "-") {
    std::fputs(Content.c_str(), stdout);
    return true;
  }
  std::ofstream Out(Path);
  if (!Out) {
    std::fprintf(stderr, "error: cannot write %s\n", Path.c_str());
    return false;
  }
  Out << Content;
  return true;
}

void printHelp() {
  std::printf(
      "usage: batch_validate [options] [SPEC...]\n"
      "\n%s\n"
      "  More than one spec validates the whole set as one suite.\n"
      "  Run flags: --profile NAME, --suite NAMES, --pipeline P,\n"
      "  --format auto|mini|llvm, --threads N, --stepwise, --all-rules,\n"
      "  --rule-mask N, --revert, --triage, --triage-inputs N,\n"
      "  --triage-reduce N, --resubmit N, --cache PATH, --cache-load PATH,\n"
      "  --cache-save PATH, --expect-warm, --print-config-digest,\n"
      "  --json [PATH], --csv [PATH], --timing, --trace PATH,\n"
      "  --log-level debug|info|warn|error|off, --quiet, --help\n"
      "  Exit status: 0 all validated, 2 some rejected, 3 --expect-warm\n"
      "  violated, 1 usage or I/O errors.\n",
      moduleSpecHelp());
}

} // namespace

int main(int argc, char **argv) {
  std::string ProfileName = "sjeng";
  std::string SuiteNames;
  std::vector<ModuleSpec> Specs;
  ModuleFormat Format = ModuleFormat::Auto;
  std::string Pipeline = getPaperPipeline();
  std::string JsonPath, CsvPath;
  std::string CachePath;
  std::string TracePath;
  bool EmitJson = false, EmitCsv = false, Quiet = false;
  bool IncludeTiming = false;
  bool Stepwise = false, AllRules = false, Revert = false;
  bool CacheLoad = false, CacheSave = false, ExpectWarm = false;
  bool PrintConfigDigest = false;
  bool Triage = false;
  bool HaveRuleMask = false;
  unsigned RuleMask = 0;
  unsigned Threads = 0, Resubmit = 1;
  unsigned TriageInputs = 48, TriageReduce = 128;

  // --cache/--cache-load/--cache-save may repeat but must agree on the
  // path, and the path is required: a following flag must not be eaten as
  // the store path (that would silently disable the flag it swallowed).
  auto SetCachePath = [&](const char *Opt, const char *P) {
    if (!P || P[0] == '-') {
      std::fprintf(stderr, "error: %s needs a store path\n", Opt);
      return false;
    }
    if (!CachePath.empty() && CachePath != P) {
      std::fprintf(stderr,
                   "error: conflicting store paths '%s' and '%s'\n",
                   CachePath.c_str(), P);
      return false;
    }
    CachePath = P;
    return true;
  };

  auto TakesValue = [&](int &I) -> const char * {
    // Optional value: consumed when the next argv is not another flag. A
    // lone "-" (stdout) is a value, not a flag.
    if (I + 1 < argc && (argv[I + 1][0] != '-' || argv[I + 1][1] == '\0'))
      return argv[++I];
    return nullptr;
  };
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--help") == 0) {
      printHelp();
      return 0;
    } else if (std::strcmp(argv[I], "--profile") == 0 && I + 1 < argc)
      ProfileName = argv[++I];
    else if (std::strcmp(argv[I], "--suite") == 0 && I + 1 < argc)
      SuiteNames = argv[++I];
    else if (std::strcmp(argv[I], "--input") == 0 && I + 1 < argc)
      Specs.push_back(parseModuleSpec(argv[++I]));
    else if (std::strcmp(argv[I], "--format") == 0 && I + 1 < argc) {
      if (!parseModuleFormat(argv[++I], Format)) {
        std::fprintf(stderr, "error: bad --format '%s' (auto|mini|llvm)\n",
                     argv[I]);
        return 1;
      }
    } else if (std::strcmp(argv[I], "--pipeline") == 0 && I + 1 < argc)
      Pipeline = argv[++I];
    else if (std::strcmp(argv[I], "--threads") == 0 && I + 1 < argc) {
      int V = std::atoi(argv[++I]);
      if (V < 0 || V > 1024) {
        std::fprintf(stderr, "error: bad --threads value '%s'\n", argv[I]);
        return 1;
      }
      Threads = static_cast<unsigned>(V);
    } else if (std::strcmp(argv[I], "--resubmit") == 0 && I + 1 < argc) {
      int V = std::atoi(argv[++I]);
      if (V < 1 || V > 1000000) {
        std::fprintf(stderr, "error: bad --resubmit value '%s'\n", argv[I]);
        return 1;
      }
      Resubmit = static_cast<unsigned>(V);
    }
    else if (std::strcmp(argv[I], "--cache") == 0) {
      if (!SetCachePath("--cache", I + 1 < argc ? argv[++I] : nullptr))
        return 1;
      CacheLoad = CacheSave = true;
    } else if (std::strcmp(argv[I], "--cache-load") == 0) {
      if (!SetCachePath("--cache-load", I + 1 < argc ? argv[++I] : nullptr))
        return 1;
      CacheLoad = true;
    } else if (std::strcmp(argv[I], "--cache-save") == 0) {
      if (!SetCachePath("--cache-save", I + 1 < argc ? argv[++I] : nullptr))
        return 1;
      CacheSave = true;
    } else if (std::strcmp(argv[I], "--expect-warm") == 0)
      ExpectWarm = true;
    else if (std::strcmp(argv[I], "--print-config-digest") == 0)
      PrintConfigDigest = true;
    else if (std::strcmp(argv[I], "--stepwise") == 0)
      Stepwise = true;
    else if (std::strcmp(argv[I], "--all-rules") == 0)
      AllRules = true;
    else if (std::strcmp(argv[I], "--rule-mask") == 0 && I + 1 < argc) {
      char *End = nullptr;
      unsigned long V = std::strtoul(argv[++I], &End, 0);
      if (!End || *End != '\0' || V > RS_All) {
        std::fprintf(stderr, "error: bad --rule-mask value '%s'\n", argv[I]);
        return 1;
      }
      RuleMask = static_cast<unsigned>(V);
      HaveRuleMask = true;
    } else if (std::strcmp(argv[I], "--revert") == 0)
      Revert = true;
    else if (std::strcmp(argv[I], "--triage") == 0)
      Triage = true;
    else if (std::strcmp(argv[I], "--triage-inputs") == 0 && I + 1 < argc) {
      int V = std::atoi(argv[++I]);
      if (V < 1 || V > 100000) {
        std::fprintf(stderr, "error: bad --triage-inputs value '%s'\n",
                     argv[I]);
        return 1;
      }
      TriageInputs = static_cast<unsigned>(V);
    } else if (std::strcmp(argv[I], "--triage-reduce") == 0 && I + 1 < argc) {
      int V = std::atoi(argv[++I]);
      if (V < 0 || V > 1000000) {
        std::fprintf(stderr, "error: bad --triage-reduce value '%s'\n",
                     argv[I]);
        return 1;
      }
      TriageReduce = static_cast<unsigned>(V);
    }
    else if (std::strcmp(argv[I], "--quiet") == 0)
      Quiet = true;
    else if (std::strcmp(argv[I], "--json") == 0) {
      EmitJson = true;
      if (const char *V = TakesValue(I))
        JsonPath = V;
    } else if (std::strcmp(argv[I], "--csv") == 0) {
      EmitCsv = true;
      if (const char *V = TakesValue(I))
        CsvPath = V;
    } else if (std::strcmp(argv[I], "--timing") == 0)
      IncludeTiming = true;
    else if (std::strcmp(argv[I], "--trace") == 0 && I + 1 < argc)
      TracePath = argv[++I];
    else if (std::strcmp(argv[I], "--log-level") == 0 && I + 1 < argc) {
      LogLevel L;
      if (!parseLogLevel(argv[++I], L)) {
        std::fprintf(stderr,
                     "error: bad --log-level '%s' "
                     "(debug|info|warn|error|off)\n",
                     argv[I]);
        return 1;
      }
      setLogLevel(L);
    } else if (argv[I][0] != '-' || argv[I][1] == '\0') {
      Specs.push_back(parseModuleSpec(argv[I]));
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", argv[I]);
      return 1;
    }
  }

  // Validate the pipeline up front: runSuite only asserts on a bad one
  // (compiled out in Release), and a typo must not green-light a run that
  // validated nothing.
  PassManager PM;
  if (!PM.parsePipeline(Pipeline)) {
    std::fprintf(stderr, "error: bad pipeline '%s'\n", Pipeline.c_str());
    return 1;
  }

  EngineConfig C;
  C.Threads = Threads;
  if (AllRules)
    C.Rules.Mask = RS_All;
  if (HaveRuleMask)
    C.Rules.Mask = RuleMask;
  C.Granularity = Stepwise ? ValidationGranularity::PerPass
                           : ValidationGranularity::WholePipeline;
  C.RevertFailures = Revert;
  C.Triage.Enabled = Triage;
  C.Triage.MaxInputs = TriageInputs;
  C.Triage.ReduceBudget = TriageReduce;
  C.CachePath = CachePath;
  C.CacheLoad = CacheLoad;
  C.CacheSave = CacheSave;

  if (PrintConfigDigest) {
    std::printf("%016llx\n", static_cast<unsigned long long>(
                                 verdictStoreConfigDigest(C.Rules)));
    return 0;
  }

  if (Resubmit == 0)
    Resubmit = 1;

  // --suite NAMES is shorthand for appending profile:NAME specs; the whole
  // spec list then loads through the one shared ModuleLoader entry point.
  if (!SuiteNames.empty()) {
    std::string Name;
    std::stringstream SS(SuiteNames);
    while (std::getline(SS, Name, ',')) {
      if (Name.empty())
        continue;
      Specs.push_back(parseModuleSpec("profile:" + Name));
    }
    if (Specs.empty()) {
      std::fprintf(stderr, "error: --suite needs at least one profile\n");
      return 1;
    }
  }
  if (Specs.empty())
    Specs.push_back(parseModuleSpec("profile:" + ProfileName));
  for (ModuleSpec &S : Specs)
    S.Format = Format;

  // Tracing is enabled for the whole run (load through report emission)
  // and flushed after the reports are out, so an I/O failure on the trace
  // path cannot cost the validation results. batch_validate is a front
  // door, so it mints the run's trace id itself — the same args.trace_id
  // key a fleet flame carries, greppable from log lines.
  if (!TracePath.empty()) {
    traceEnable();
    traceSetCurrentTraceId(traceMintTraceId());
  }
  auto WriteTrace = [&]() {
    if (TracePath.empty())
      return true;
    std::string Err;
    if (!traceWriteFile(TracePath, &Err)) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return false;
    }
    return true;
  };

  Context Ctx;
  LoadResult Loaded = loadModules(Ctx, Specs);
  if (!Loaded) {
    std::fprintf(stderr, "error: %s\n", Loaded.Error.c_str());
    return 1;
  }

  // Suite mode: more than one module (profiles and/or files), all in one
  // Context, validated as a single engine batch sharded over the shared
  // pool.
  if (!SuiteNames.empty() || Loaded.Modules.size() > 1) {
    std::vector<const Module *> ModPtrs;
    for (const LoadedModule &LM : Loaded.Modules)
      ModPtrs.push_back(LM.M.get());

    ValidationEngine Engine(C);
    SuiteRun Run;
    for (unsigned I = 0; I < Resubmit; ++I) {
      Run = Engine.runSuite(ModPtrs, Pipeline);
      if (!Quiet && Resubmit > 1) {
        const EngineCacheStats &CS = Engine.cacheStats();
        std::printf("run %u/%u: %.2f ms wall, cache hits so far: %llu, "
                    "validated from scratch: %llu\n",
                    I + 1, Resubmit, Run.Report.WallMicroseconds / 1000.0,
                    static_cast<unsigned long long>(CS.Hits),
                    static_cast<unsigned long long>(CS.Misses));
      }
    }
    for (size_t I = 0; I < Loaded.Modules.size(); ++I)
      attachUnsupported(Run.Report.Modules[I], Loaded.Modules[I]);

    if (!Quiet)
      std::fputs(suiteToText(Run.Report).c_str(), stdout);
    if (EmitJson &&
        !writeOrPrint(JsonPath, suiteToJSON(Run.Report, IncludeTiming)))
      return 1;
    if (EmitCsv &&
        !writeOrPrint(CsvPath, suiteToCSV(Run.Report, IncludeTiming)))
      return 1;
    if (!WriteTrace())
      return 1;
    if (int RC = cacheEpilogue(Engine, CachePath, Quiet, ExpectWarm))
      return RC;
    return Run.Report.validated() == Run.Report.transformed() ? 0 : 2;
  }

  LoadedModule &LM = Loaded.Modules.front();

  ValidationEngine Engine(C);
  EngineRun Run;
  for (unsigned I = 0; I < Resubmit; ++I) {
    Run = Engine.run(*LM.M, PM);
    if (!Quiet && Resubmit > 1) {
      const EngineCacheStats &CS = Engine.cacheStats();
      std::printf("run %u/%u: %.2f ms wall, cache hits so far: %llu, "
                  "validated from scratch: %llu\n",
                  I + 1, Resubmit, Run.Report.WallMicroseconds / 1000.0,
                  static_cast<unsigned long long>(CS.Hits),
                  static_cast<unsigned long long>(CS.Misses));
    }
  }
  attachUnsupported(Run.Report, LM);

  if (!Quiet)
    std::fputs(reportToText(Run.Report).c_str(), stdout);
  if (EmitJson &&
      !writeOrPrint(JsonPath, reportToJSON(Run.Report, IncludeTiming)))
    return 1;
  if (EmitCsv && !writeOrPrint(CsvPath, reportToCSV(Run.Report)))
    return 1;
  if (!WriteTrace())
    return 1;
  if (int RC = cacheEpilogue(Engine, CachePath, Quiet, ExpectWarm))
    return RC;
  // 0 = everything that was transformed validated; 2 = some optimization
  // could not be proven (whether or not it was reverted).
  return Run.Report.validated() == Run.Report.transformed() ? 0 : 2;
}
