//===- validate_client.cpp - Validation service client CLI --------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
// Submits work to a running validate_server and streams the verdicts as
// they are proven. The final suite report is byte-identical to what
// `batch_validate --json` emits for the same inputs and cache state, and
// --expect-warm keeps its batch meaning end to end over the wire: exit 3
// unless the daemon replayed every verdict *and* every triage result.
//
//   $ ./validate_client [options] [SPEC ...]
//     SPEC               module spec: FILE, `-` (stdin) or profile:NAME —
//                        the same --input grammar every llvm-md CLI takes;
//                        file/stdin text is read locally and submitted
//                        inline (real .ll is imported server-side)
//     --input SPEC       same as a positional SPEC
//     --format F         force inline text format: auto (default), mini,
//                        llvm
//     --connect PATH     unix-domain socket of the daemon
//                        (default: llvmmd-serve.sock)
//     --tcp HOST:PORT    connect over TCP instead
//     --suite NAMES      submit the comma-separated benchmark profiles
//                        (same as profile:A profile:B ...)
//     --functions N      override each profile's function count (testing)
//     --all-rules        handshake for the extended rule configuration
//     --rule-mask N      handshake for an explicit rule mask; the daemon
//                        rejects a digest mismatch rather than serving
//                        verdicts proven under different rules
//     --json [PATH]      write the final suite-report JSON (default stdout)
//     --progress         print one line per streamed function verdict
//     --expect-warm      exit 3 unless the job replayed 100% warm
//     --stats            print the daemon's /stats JSON after the job
//     --metrics          print the daemon's /metrics scrape (Prometheus
//                        text exposition; against a fleet router this is
//                        the fleet-wide roll-up) after the job
//     --shutdown         ask the daemon to shut down (after any job)
//     --quiet            suppress the text summary
//
// Exit status mirrors batch_validate: 0 all validated, 2 some
// transformation could not be proven, 3 --expect-warm violated, 1 on
// usage/connection/protocol errors.
//
//===----------------------------------------------------------------------===//

#include "driver/ModuleLoader.h"
#include "driver/VerdictStore.h"
#include "normalize/Rules.h"
#include "server/ServerClient.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace llvmmd;

namespace {

void printHelp() {
  std::fputs("usage: validate_client [options] [SPEC ...]\n\n", stdout);
  std::fputs(moduleSpecHelp(), stdout);
  std::fputs("\n  See the header of examples/validate_client.cpp for the "
             "full option list.\n",
             stdout);
}

bool writeOrPrint(const std::string &Path, const std::string &Content) {
  if (Path.empty() || Path == "-") {
    std::fputs(Content.c_str(), stdout);
    return true;
  }
  std::ofstream Out(Path);
  if (!Out) {
    std::fprintf(stderr, "error: cannot write %s\n", Path.c_str());
    return false;
  }
  Out << Content;
  return true;
}

} // namespace

int main(int argc, char **argv) {
  std::string UnixPath = "llvmmd-serve.sock";
  std::string TcpHost;
  uint16_t TcpPort = 0;
  std::string SuiteNames, JsonPath;
  std::vector<ModuleSpec> Specs;
  bool EmitJson = false, Progress = false, ExpectWarm = false;
  bool WantStats = false, WantMetrics = false, WantShutdown = false;
  bool Quiet = false;
  unsigned FnCount = 0;
  ModuleFormat Format = ModuleFormat::Auto;
  RuleConfig Rules;

  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--help") == 0) {
      printHelp();
      return 0;
    } else if (std::strcmp(argv[I], "--input") == 0 && I + 1 < argc) {
      Specs.push_back(parseModuleSpec(argv[++I]));
    } else if (std::strcmp(argv[I], "--format") == 0 && I + 1 < argc) {
      if (!parseModuleFormat(argv[++I], Format)) {
        std::fprintf(stderr, "error: bad --format value '%s'\n", argv[I]);
        return 1;
      }
    } else if (std::strcmp(argv[I], "--connect") == 0 && I + 1 < argc) {
      UnixPath = argv[++I];
    } else if (std::strcmp(argv[I], "--tcp") == 0 && I + 1 < argc) {
      std::string V = argv[++I];
      size_t Colon = V.rfind(':');
      if (Colon == std::string::npos) {
        std::fprintf(stderr, "error: --tcp needs HOST:PORT\n");
        return 1;
      }
      TcpHost = V.substr(0, Colon);
      TcpPort = static_cast<uint16_t>(std::atoi(V.c_str() + Colon + 1));
    } else if (std::strcmp(argv[I], "--suite") == 0 && I + 1 < argc) {
      SuiteNames = argv[++I];
    } else if (std::strcmp(argv[I], "--functions") == 0 && I + 1 < argc) {
      FnCount = static_cast<unsigned>(std::atoi(argv[++I]));
    } else if (std::strcmp(argv[I], "--all-rules") == 0) {
      Rules.Mask = RS_All;
    } else if (std::strcmp(argv[I], "--rule-mask") == 0 && I + 1 < argc) {
      char *End = nullptr;
      unsigned long V = std::strtoul(argv[++I], &End, 0);
      if (!End || *End != '\0' || V > RS_All) {
        std::fprintf(stderr, "error: bad --rule-mask value '%s'\n", argv[I]);
        return 1;
      }
      Rules.Mask = static_cast<unsigned>(V);
    } else if (std::strcmp(argv[I], "--json") == 0) {
      EmitJson = true;
      if (I + 1 < argc && (argv[I + 1][0] != '-' || argv[I + 1][1] == '\0'))
        JsonPath = argv[++I];
    } else if (std::strcmp(argv[I], "--progress") == 0) {
      Progress = true;
    } else if (std::strcmp(argv[I], "--expect-warm") == 0) {
      ExpectWarm = true;
    } else if (std::strcmp(argv[I], "--stats") == 0) {
      WantStats = true;
    } else if (std::strcmp(argv[I], "--metrics") == 0) {
      WantMetrics = true;
    } else if (std::strcmp(argv[I], "--shutdown") == 0) {
      WantShutdown = true;
    } else if (std::strcmp(argv[I], "--quiet") == 0) {
      Quiet = true;
    } else if (argv[I][0] != '-' || argv[I][1] == '\0') {
      Specs.push_back(parseModuleSpec(argv[I]));
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", argv[I]);
      return 1;
    }
  }

  // Build the submission. --suite NAMES is shorthand for profile:NAME
  // specs; every other spec's text is read locally and submitted inline
  // with the requested format byte (the server's ModuleLoader does the
  // same sniff/import the batch CLI would do).
  SubmitPayload Req;
  if (!SuiteNames.empty()) {
    std::stringstream SS(SuiteNames);
    std::string Name;
    while (std::getline(SS, Name, ',')) {
      if (Name.empty())
        continue;
      ModuleSpec S;
      S.From = ModuleSpec::Source::Profile;
      S.Value = Name;
      Specs.push_back(std::move(S));
    }
  }
  for (const ModuleSpec &Spec : Specs) {
    SubmitModule M;
    switch (Spec.From) {
    case ModuleSpec::Source::Profile:
      M.Source = SubmitProfile;
      M.Name = Spec.Value;
      M.FnCount = FnCount;
      break;
    case ModuleSpec::Source::Stdin: {
      std::ostringstream SS;
      SS << std::cin.rdbuf();
      M.Source = Format == ModuleFormat::MiniIR   ? SubmitInlineMini
                 : Format == ModuleFormat::LLVMIR ? SubmitInlineLLVM
                                                  : SubmitInlineAuto;
      M.Name = "<stdin>";
      M.Text = SS.str();
      break;
    }
    case ModuleSpec::Source::File:
    case ModuleSpec::Source::Inline: {
      std::ifstream In(Spec.Value);
      if (!In) {
        std::fprintf(stderr, "error: cannot open %s\n", Spec.Value.c_str());
        return 1;
      }
      std::ostringstream SS;
      SS << In.rdbuf();
      M.Source = Format == ModuleFormat::MiniIR   ? SubmitInlineMini
                 : Format == ModuleFormat::LLVMIR ? SubmitInlineLLVM
                                                  : SubmitInlineAuto;
      M.Name = Spec.Value;
      M.Text = SS.str();
      break;
    }
    }
    Req.Modules.push_back(std::move(M));
  }
  bool HaveJob = !Req.Modules.empty();
  if (!HaveJob && !WantStats && !WantMetrics && !WantShutdown) {
    std::fprintf(stderr,
                 "error: nothing to do (need --suite, input files, --stats, "
                 "--metrics or --shutdown)\n");
    return 1;
  }

  ServerClient Client;
  std::string Error;
  bool Connected = !TcpHost.empty()
                       ? Client.connectTcp(TcpHost, TcpPort, &Error)
                       : Client.connectUnix(UnixPath, &Error);
  if (!Connected) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }

  HelloOkPayload Info;
  if (!Client.handshake(verdictStoreConfigDigest(Rules), &Info, &Error)) {
    std::fprintf(stderr, "error: handshake failed: %s\n", Error.c_str());
    return 1;
  }

  int ExitCode = 0;
  if (HaveJob) {
    AcceptedPayload Accepted;
    if (!Client.submit(Req, &Accepted, &Error)) {
      std::fprintf(stderr, "error: submit failed: %s\n", Error.c_str());
      return 1;
    }
    if (!Quiet)
      std::printf("job %llu accepted (%u ahead in queue, server runs %u "
                  "engine threads)\n",
                  static_cast<unsigned long long>(Accepted.JobId),
                  Accepted.QueuePosition, Info.EngineThreads);

    std::string SuiteJson;
    JobDonePayload Done;
    bool GotDone = false;
    while (!GotDone) {
      ServerClient::Event E;
      if (!Client.nextEvent(E, &Error)) {
        std::fprintf(stderr, "error: %s\n", Error.c_str());
        return 1;
      }
      switch (E.K) {
      case ServerClient::Event::Kind::Function:
        if (Progress)
          std::printf("  [%u:%s] %s\n", E.Function.ModuleIndex,
                      E.Function.ModuleName.c_str(), E.Function.Json.c_str());
        break;
      case ServerClient::Event::Kind::ModuleReport:
        if (!Quiet)
          std::printf("module %u validated\n", E.Module.ModuleIndex);
        break;
      case ServerClient::Event::Kind::SuiteReport:
        SuiteJson = std::move(E.SuiteJson);
        break;
      case ServerClient::Event::Kind::JobDone:
        Done = E.Done;
        GotDone = true;
        break;
      case ServerClient::Event::Kind::Error:
        std::fprintf(stderr, "error: server: %s\n", E.Error.Message.c_str());
        return 1;
      }
    }

    if (!Quiet)
      std::printf("job %llu done in %.2f ms: %llu replayed (%llu warm), "
                  "%llu validated from scratch; triage %llu replayed "
                  "(%llu warm), %llu from scratch\n",
                  static_cast<unsigned long long>(Done.JobId),
                  Done.WallMicroseconds / 1000.0,
                  static_cast<unsigned long long>(Done.Hits),
                  static_cast<unsigned long long>(Done.WarmHits),
                  static_cast<unsigned long long>(Done.Misses),
                  static_cast<unsigned long long>(Done.TriageHits),
                  static_cast<unsigned long long>(Done.TriageWarmHits),
                  static_cast<unsigned long long>(Done.TriageMisses));
    if (EmitJson && !writeOrPrint(JsonPath, SuiteJson))
      return 1;

    if (ExpectWarm && (Done.Misses > 0 || Done.TriageMisses > 0)) {
      std::fprintf(stderr,
                   "error: --expect-warm, but the server computed %llu "
                   "verdict(s) and %llu triage result(s) from scratch\n",
                   static_cast<unsigned long long>(Done.Misses),
                   static_cast<unsigned long long>(Done.TriageMisses));
      return 3;
    }
    ExitCode = Done.Status == 0 ? 0 : 2;
  }

  if (WantStats) {
    std::string Json;
    if (!Client.stats(&Json, &Error)) {
      std::fprintf(stderr, "error: stats failed: %s\n", Error.c_str());
      return 1;
    }
    std::fputs(Json.c_str(), stdout);
  }

  if (WantMetrics) {
    std::string Text;
    if (!Client.metrics(&Text, &Error)) {
      std::fprintf(stderr, "error: metrics failed: %s\n", Error.c_str());
      return 1;
    }
    std::fputs(Text.c_str(), stdout);
  }

  if (WantShutdown)
    Client.requestShutdown();

  return ExitCode;
}
