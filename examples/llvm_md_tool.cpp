//===- llvm_md_tool.cpp - The paper's validated optimizer, as a tool ----------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
// The §2 pseudocode as a command-line program: read an IR file, run the
// optimization pipeline, validate every function, revert the ones that do
// not check out, and print the certified module plus a report.
//
//   $ ./llvm_md_tool [--input SPEC] [SPEC] [pipeline] [--all-rules]
//                    [--stepwise]
//
// The module comes from the shared ModuleLoader: a mini-IR or real LLVM
// .ll file (detected by content), `-` for stdin, or profile:NAME. With no
// spec, a demo module is used. The default pipeline is the paper's:
// adce,gvn,sccp,licm,loop-deletion,loop-unswitch,dse.
//
// Runs on the driver subsystem's ValidationEngine (parallel validation,
// fingerprint skip, revert-on-failure). With --stepwise each pass is
// validated individually and a failure names the guilty pass.
//
//===----------------------------------------------------------------------===//

#include "driver/ModuleLoader.h"
#include "driver/ValidationEngine.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include "opt/Pass.h"

#include <cstdio>
#include <cstring>

using namespace llvmmd;

static const char *DemoModule = R"(
@counter = global i32 0
declare i64 @strlen(ptr) readonly

define i32 @fold_me(i32 %a) {
entry:
  %two = add i32 1, 1
  %four = mul i32 %two, 2
  %r = add i32 %a, %four
  ret i32 %r
}

define i32 @hoist_me(i32 %n, ptr %s) {
entry:
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %i2, %b ]
  %acc = phi i32 [ 0, %entry ], [ %a2, %b ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %b, label %x
b:
  %len = call i64 @strlen(ptr %s)
  %l = trunc i64 %len to i32
  %a2 = add i32 %acc, %l
  store i32 %a2, ptr @counter
  %i2 = add i32 %i, 1
  br label %h
x:
  ret i32 %acc
}
)";

int main(int argc, char **argv) {
  ModuleSpec Spec;
  Spec.From = ModuleSpec::Source::Inline;
  Spec.Value = DemoModule;
  Spec.Name = "input";
  ModuleFormat Format = ModuleFormat::Auto;
  std::string Pipeline = getPaperPipeline();
  bool AllRules = false;
  bool Stepwise = false;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--help") == 0) {
      std::printf("usage: llvm_md_tool [--input SPEC] [SPEC] [pipeline] "
                  "[--all-rules] [--stepwise]\n\n%s",
                  moduleSpecHelp());
      return 0;
    } else if (std::strcmp(argv[I], "--all-rules") == 0) {
      AllRules = true;
    } else if (std::strcmp(argv[I], "--stepwise") == 0) {
      Stepwise = true;
    } else if (std::strcmp(argv[I], "--input") == 0 && I + 1 < argc) {
      Spec = parseModuleSpec(argv[++I]);
    } else if (std::strcmp(argv[I], "--format") == 0 && I + 1 < argc) {
      if (!parseModuleFormat(argv[++I], Format)) {
        std::fprintf(stderr, "error: bad --format '%s' (auto|mini|llvm)\n",
                     argv[I]);
        return 1;
      }
    } else if (argv[I][0] != '-' &&
               (std::strchr(argv[I], ',') || createPass(argv[I]))) {
      Pipeline = argv[I];
    } else if (argv[I][0] != '-' || argv[I][1] == '\0') {
      Spec = parseModuleSpec(argv[I]);
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", argv[I]);
      return 1;
    }
  }

  Spec.Format = Format;
  Context Ctx;
  LoadResult Loaded = loadModule(Ctx, Spec);
  if (!Loaded) {
    std::fprintf(stderr, "error: %s\n", Loaded.Error.c_str());
    return 1;
  }
  LoadedModule &LM = Loaded.Modules.front();

  PassManager PM;
  if (!PM.parsePipeline(Pipeline)) {
    std::fprintf(stderr, "error: bad pipeline '%s'\n", Pipeline.c_str());
    return 1;
  }

  EngineConfig C;
  if (AllRules)
    C.Rules.Mask = RS_All;
  C.Granularity = Stepwise ? ValidationGranularity::PerPass
                           : ValidationGranularity::WholePipeline;
  C.RevertFailures = true;
  ValidationEngine Engine(C);
  EngineRun Run = Engine.run(*LM.M, PM);
  attachUnsupported(Run.Report, LM);

  std::printf("; llvm-md: pipeline '%s', rules %s%s\n", Pipeline.c_str(),
              AllRules ? "all (incl. libc/float/global extensions)"
                       : "paper defaults",
              Stepwise ? ", stepwise" : "");
  for (const FunctionReportEntry &FR : Run.Report.Functions) {
    if (!FR.Transformed)
      std::printf(";   %-20s unchanged\n", FR.Name.c_str());
    else if (FR.Validated)
      std::printf(";   %-20s optimized & VALIDATED (%llu rewrites)\n",
                  FR.Name.c_str(),
                  static_cast<unsigned long long>(FR.Result.Rewrites));
    else if (!FR.GuiltyPass.empty())
      std::printf(";   %-20s REVERTED past guilty pass '%s' (%s)\n",
                  FR.Name.c_str(), FR.GuiltyPass.c_str(),
                  FR.Result.Reason.empty() ? "alarm"
                                           : FR.Result.Reason.c_str());
    else
      std::printf(";   %-20s REVERTED (%s)\n", FR.Name.c_str(),
                  FR.Result.Reason.empty() ? "alarm"
                                           : FR.Result.Reason.c_str());
  }
  for (const UnsupportedFunctionEntry &U : Run.Report.UnsupportedFunctions)
    std::printf(";   %-20s NOT IMPORTED: %s%s%s%s\n", U.Function.c_str(),
                U.Reason.c_str(), U.Detail.empty() ? "" : " (",
                U.Detail.c_str(), U.Detail.empty() ? "" : ")");
  std::printf(";   validation rate: %.0f%%  (%.2f ms on %u threads)\n\n",
              100.0 * Run.Report.validationRate(),
              Run.Report.WallMicroseconds / 1000.0, Engine.getThreadCount());
  std::printf("%s", printModule(*Run.Optimized).c_str());
  return 0;
}
