//===- validate_fleet.cpp - Sharded validation fleet daemon -------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
// The fleet front door: a router daemon speaking the validate_server wire
// protocol that fans submissions out to N supervised per-core
// validate_server worker processes, each with a private unix socket and
// its own verdict-store shard. Clients (validate_client, the CI scripts)
// cannot tell it from a single server — same handshake, same frames,
// byte-identical suite reports — but a `kill -9`'d worker costs only the
// jobs in flight on it, and identical concurrent submissions share one
// engine run. See src/fleet/FleetRouter.h.
//
//   $ ./validate_fleet [options]
//     --listen PATH      client-facing unix socket
//                        (default: llvmmd-fleet.sock in the CWD)
//     --tcp PORT         also listen on 127.0.0.1:PORT (0 = ephemeral)
//     --no-unix          TCP only
//     --workers N        worker processes (default 2)
//     --worker-binary P  worker executable (default: validate_server next
//                        to this binary)
//     --worker-threads N engine threads per worker (default 1)
//     --pipeline P       pass pipeline for submitted modules
//     --all-rules        enable the extension rule sets fleet-wide
//     --rule-mask N      set the rule mask explicitly
//     --triage           triage rejected pairs on every worker
//     --cache PATH       base verdict store; workers persist to
//                        PATH.shard<i>, merged back at shutdown
//     --queue N          admission control across the fleet (default 64)
//     --checkpoint N     worker checkpoint cadence in jobs (default 1)
//     --max-attempts N   dispatch attempts per job (default 2 = one
//                        requeue after a worker crash)
//     --no-health-ping   disable the monitor's protocol-level health pings
//     --http-metrics A   serve GET /metrics (the fleet-wide Prometheus
//                        roll-up) and /healthz over HTTP on HOST:PORT
//                        (port 0 = ephemeral, printed at startup)
//     --trace FILE       trace the fleet: every admitted job gets a trace
//                        id, workers ship their spans home, and one
//                        merged Chrome trace-event JSON (open in
//                        ui.perfetto.dev) is written at shutdown
//     --print-config-digest
//                        print the handshake/store config digest and exit
//     --log-level L      diagnostic log verbosity: debug|info|warn|error|
//                        off (default warn; LLVMMD_LOG env is the fallback)
//     --log-json         emit log lines as JSON objects instead of text
//     --quiet            only errors on stderr
//
// Runs until a client sends Shutdown or SIGINT/SIGTERM arrives; either way
// the dispatchers drain, the workers checkpoint and exit, and the shards
// merge into the base store so the next start replays 100% warm.
//
//===----------------------------------------------------------------------===//

#include "fleet/FleetRouter.h"
#include "support/Log.h"
#include "support/Trace.h"

#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>

using namespace llvmmd;

namespace {

FleetRouter *TheRouter = nullptr;

void onSignal(int) {
  // Only atomic stores are allowed here; every waiter polls its stop flag
  // and the teardown happens on wait().
  if (TheRouter)
    TheRouter->requestStopFromSignal();
}

/// The worker binary defaults to `validate_server` in this binary's own
/// directory, so `./validate_fleet` from a build tree just works.
std::string defaultWorkerBinary(const char *Argv0) {
  std::string Self = Argv0 ? Argv0 : "";
  size_t Slash = Self.rfind('/');
  if (Slash == std::string::npos)
    return "./validate_server";
  return Self.substr(0, Slash + 1) + "validate_server";
}

} // namespace

int main(int argc, char **argv) {
  FleetConfig C;
  C.UnixPath = "llvmmd-fleet.sock";
  C.WorkerBinary = defaultWorkerBinary(argv[0]);
  bool NoUnix = false, Quiet = false, PrintDigest = false;
  std::string TracePath;

  for (int I = 1; I < argc; ++I) {
    auto Value = [&](const char *Opt) -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", Opt);
        return nullptr;
      }
      return argv[++I];
    };
    if (std::strcmp(argv[I], "--listen") == 0) {
      const char *V = Value("--listen");
      if (!V)
        return 1;
      C.UnixPath = V;
    } else if (std::strcmp(argv[I], "--tcp") == 0) {
      const char *V = Value("--tcp");
      if (!V)
        return 1;
      int Port = std::atoi(V);
      if (Port < 0 || Port > 65535) {
        std::fprintf(stderr, "error: bad --tcp port '%s'\n", V);
        return 1;
      }
      C.TcpPort = Port;
    } else if (std::strcmp(argv[I], "--no-unix") == 0) {
      NoUnix = true;
    } else if (std::strcmp(argv[I], "--workers") == 0) {
      const char *V = Value("--workers");
      if (!V)
        return 1;
      int N = std::atoi(V);
      if (N < 1 || N > 256) {
        std::fprintf(stderr, "error: bad --workers count '%s'\n", V);
        return 1;
      }
      C.Workers = static_cast<unsigned>(N);
    } else if (std::strcmp(argv[I], "--worker-binary") == 0) {
      const char *V = Value("--worker-binary");
      if (!V)
        return 1;
      C.WorkerBinary = V;
    } else if (std::strcmp(argv[I], "--worker-threads") == 0) {
      const char *V = Value("--worker-threads");
      if (!V)
        return 1;
      C.WorkerThreads = static_cast<unsigned>(std::atoi(V));
    } else if (std::strcmp(argv[I], "--pipeline") == 0) {
      const char *V = Value("--pipeline");
      if (!V)
        return 1;
      C.Pipeline = V;
    } else if (std::strcmp(argv[I], "--all-rules") == 0) {
      C.Rules.Mask = RS_All;
    } else if (std::strcmp(argv[I], "--rule-mask") == 0) {
      const char *V = Value("--rule-mask");
      if (!V)
        return 1;
      char *End = nullptr;
      unsigned long Mask = std::strtoul(V, &End, 0);
      if (!End || *End != '\0' || Mask > RS_All) {
        std::fprintf(stderr, "error: bad --rule-mask value '%s'\n", V);
        return 1;
      }
      C.Rules.Mask = static_cast<unsigned>(Mask);
    } else if (std::strcmp(argv[I], "--triage") == 0) {
      C.Triage = true;
    } else if (std::strcmp(argv[I], "--cache") == 0) {
      const char *V = Value("--cache");
      if (!V)
        return 1;
      C.StorePath = V;
    } else if (std::strcmp(argv[I], "--queue") == 0) {
      const char *V = Value("--queue");
      if (!V)
        return 1;
      C.MaxQueuedJobs = static_cast<unsigned>(std::atoi(V));
    } else if (std::strcmp(argv[I], "--checkpoint") == 0) {
      const char *V = Value("--checkpoint");
      if (!V)
        return 1;
      C.CheckpointEveryJobs = static_cast<unsigned>(std::atoi(V));
    } else if (std::strcmp(argv[I], "--max-attempts") == 0) {
      const char *V = Value("--max-attempts");
      if (!V)
        return 1;
      int N = std::atoi(V);
      if (N < 1) {
        std::fprintf(stderr, "error: bad --max-attempts value '%s'\n", V);
        return 1;
      }
      C.MaxJobAttempts = static_cast<unsigned>(N);
    } else if (std::strcmp(argv[I], "--no-health-ping") == 0) {
      C.HealthPing = false;
    } else if (std::strcmp(argv[I], "--http-metrics") == 0) {
      const char *V = Value("--http-metrics");
      if (!V)
        return 1;
      C.HttpMetrics = V;
    } else if (std::strcmp(argv[I], "--trace") == 0) {
      const char *V = Value("--trace");
      if (!V)
        return 1;
      TracePath = V;
    } else if (std::strcmp(argv[I], "--print-config-digest") == 0) {
      PrintDigest = true;
    } else if (std::strcmp(argv[I], "--log-level") == 0) {
      const char *V = Value("--log-level");
      if (!V)
        return 1;
      LogLevel L;
      if (!parseLogLevel(V, L)) {
        std::fprintf(stderr,
                     "error: bad --log-level '%s' "
                     "(debug|info|warn|error|off)\n",
                     V);
        return 1;
      }
      setLogLevel(L);
    } else if (std::strcmp(argv[I], "--log-json") == 0) {
      setLogJSON(true);
    } else if (std::strcmp(argv[I], "--quiet") == 0) {
      Quiet = true;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", argv[I]);
      return 1;
    }
  }
  if (NoUnix)
    C.UnixPath.clear();

  // Remember the HTTP host for the startup banner (scripts grep the
  // "http:" line for the ephemeral port); the config moves into the
  // router next.
  std::string HttpHost = "127.0.0.1";
  size_t HostEnd = C.HttpMetrics.rfind(':');
  if (HostEnd != std::string::npos && HostEnd > 0)
    HttpHost = C.HttpMetrics.substr(0, HostEnd);
  if (HttpHost == "localhost")
    HttpHost = "127.0.0.1";

  FleetRouter Router(std::move(C));
  if (PrintDigest) {
    std::printf("%016llx\n",
                static_cast<unsigned long long>(Router.configDigest()));
    return 0;
  }

  // Tracing goes on before the router serves: the Submit path mints a
  // trace id for every admitted job only while tracing is enabled.
  if (!TracePath.empty())
    traceEnable();

  std::string Error;
  if (!Router.start(&Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }

  TheRouter = &Router;
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);

  if (!Quiet) {
    WorkerManager *WM = Router.workers();
    std::printf("validate_fleet: routing (config digest %016llx)\n",
                static_cast<unsigned long long>(Router.configDigest()));
    for (unsigned W = 0; WM && W < WM->count(); ++W)
      std::printf("  worker %u: pid %ld on %s\n", W,
                  static_cast<long>(WM->pid(W)), WM->socketPath(W).c_str());
    if (Router.boundTcpPort() >= 0)
      std::printf("  tcp: 127.0.0.1:%d\n", Router.boundTcpPort());
    if (Router.boundHttpPort() >= 0)
      std::printf("  http: %s:%d\n", HttpHost.c_str(),
                  Router.boundHttpPort());
    std::fflush(stdout);
  }

  Router.wait();
  TheRouter = nullptr;

  // Written after the drain: every dispatched job's span blob has been
  // ingested by then, so the file is the whole fleet's merged flame.
  if (!TracePath.empty()) {
    std::string TraceErr;
    if (!traceWriteFile(TracePath, &TraceErr))
      std::fprintf(stderr, "error: cannot write trace: %s\n",
                   TraceErr.c_str());
    else if (!Quiet)
      std::printf("validate_fleet: merged trace written to %s\n",
                  TracePath.c_str());
  }

  if (!Quiet)
    std::printf("validate_fleet: stopped cleanly\n");
  return 0;
}
