//===- loop_validation.cpp - μ/η nodes and loop optimizations in action --------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
// Walks through the paper's §3.3/§4 loop story on real IR: a while loop
// becomes a μ (loop stream) guarded by an η (exit selection); LICM, loop
// deletion and loop unswitching each reshape the graph, and the η/μ and
// commuting rules bring the two sides back together. Each step prints the
// value graphs so you can watch the normalization happen.
//
//   $ ./loop_validation
//
//===----------------------------------------------------------------------===//

#include "ir/Cloning.h"
#include "ir/Module.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "normalize/Normalizer.h"
#include "opt/Pass.h"
#include "validator/Validator.h"
#include "vg/GraphBuilder.h"

#include <cstdio>

using namespace llvmmd;

namespace {

void showCase(Context &Ctx, const char *Title, const char *Src,
              const char *Pipeline, unsigned Mask = RS_Paper) {
  std::printf("\n=== %s (pipeline: %s) ===\n", Title, Pipeline);
  ParseResult PR = parseModule(Ctx, Src);
  if (!PR) {
    std::printf("parse error: %s\n", PR.Error.c_str());
    return;
  }
  auto Opt = cloneModule(*PR.M);
  PassManager PM;
  PM.parsePipeline(Pipeline);
  Function *FO = Opt->definedFunctions().front();
  bool Changed = PM.run(*FO);
  std::printf("--- optimized (%s) ---\n%s", Changed ? "changed" : "unchanged",
              printFunction(*FO).c_str());

  ValueGraph G;
  const Function *FI = PR.M->definedFunctions().front();
  BuildResult A = buildValueGraph(G, *FI);
  BuildResult B = buildValueGraph(G, *FO);
  std::printf("--- value graph before normalization ---\n%s",
              G.dump({A.Ret, B.Ret}).c_str());

  RuleConfig Rules;
  Rules.Mask = Mask;
  Rules.M = PR.M.get();
  NormalizeStats S = normalizeGraph(G, {A.Ret, B.Ret}, Rules);
  std::printf("--- after %u rewrites ---\n%s", S.Rewrites,
              G.dump({A.Ret, B.Ret}).c_str());
  std::printf("==> %s\n", G.find(A.Ret) == G.find(B.Ret)
                              ? "VALIDATED"
                              : "NOT validated");
}

} // namespace

int main() {
  Context Ctx;

  // 1. The paper's LICM example: the loop-invariant a+3 is recomputed
  //    every iteration; after LICM + loop deletion only a+3 remains.
  //    Rules (8)/(9) collapse η(c, μ(a+3, a+3)).
  showCase(Ctx, "loop-invariant code motion + loop deletion", R"(
define i32 @f(i32 %a, i32 %n) {
entry:
  %x0 = add i32 %a, 3
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %i2, %b ]
  %x = phi i32 [ %x0, %entry ], [ %x2, %b ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %b, label %out
b:
  %x2 = add i32 %a, 3
  %i2 = add i32 %i, 1
  br label %h
out:
  ret i32 %x
}
)",
           "licm,loop-deletion");

  // 2. A loop whose bound folds to zero: SCCP + loop deletion erase it;
  //    the first-iteration form of rule (7) validates.
  showCase(Ctx, "constant-bound dead loop", R"(
define i32 @f(i32 %a) {
entry:
  %n = and i32 48, 15
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %i2, %b ]
  %s = phi i32 [ %a, %entry ], [ %s2, %b ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %b, label %out
b:
  %s2 = add i32 %s, %i
  %i2 = add i32 %i, 1
  br label %h
out:
  ret i32 %s
}
)",
           "sccp,loop-deletion");

  // 3. Loop unswitching: the invariant branch on %p is hoisted by
  //    duplicating the loop; γ-over-μ reconciliation is the Commuting
  //    rule set's job.
  showCase(Ctx, "loop unswitching", R"(
define i32 @f(i32 %n, i1 %p) {
entry:
  br label %h
h:
  %i = phi i32 [ 0, %entry ], [ %i2, %l ]
  %s = phi i32 [ 0, %entry ], [ %s2, %l ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %b, label %x
b:
  br i1 %p, label %bt, label %be
bt:
  %vt = add i32 %s, %i
  br label %j
be:
  %ve = sub i32 %s, %i
  br label %j
j:
  %s2 = phi i32 [ %vt, %bt ], [ %ve, %be ]
  br label %l
l:
  %i2 = add i32 %i, 1
  br label %h
x:
  ret i32 %s
}
)",
           "loop-unswitch");
  return 0;
}
