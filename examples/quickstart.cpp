//===- quickstart.cpp - Validate your first function pair ---------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
// The 60-second tour: parse two versions of a function, ask the validator
// whether the optimized one preserves semantics, and inspect the shared
// value graph it reasoned about. This is the paper's §3.1 example.
//
//   $ ./quickstart
//
//===----------------------------------------------------------------------===//

#include "ir/Module.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "normalize/Normalizer.h"
#include "validator/Validator.h"
#include "vg/GraphBuilder.h"

#include <cstdio>

using namespace llvmmd;

int main() {
  Context Ctx;

  // The function before optimization: x3 = (a * (3+3)) + (a * (3+3)).
  const char *Before = R"(
define i32 @f(i32 %a) {
entry:
  %x1 = add i32 3, 3
  %x2 = mul i32 %a, %x1
  %x3 = add i32 %x2, %x2
  ret i32 %x3
}
)";

  // After constant folding and strength reduction: (a * 6) << 1.
  const char *After = R"(
define i32 @f(i32 %a) {
entry:
  %y1 = mul i32 %a, 6
  %y2 = shl i32 %y1, 1
  ret i32 %y2
}
)";

  ParseResult MA = parseModule(Ctx, Before);
  ParseResult MB = parseModule(Ctx, After);
  if (!MA || !MB) {
    std::fprintf(stderr, "parse error: %s%s\n", MA.Error.c_str(),
                 MB.Error.c_str());
    return 1;
  }

  // One call does everything: build both functions into a shared value
  // graph, normalize with the paper's rewrite rules, compare the roots.
  RuleConfig Rules; // defaults to the paper's rule sets (RS_Paper)
  ValidationResult R =
      validatePair(*MA.M->getFunction("f"), *MB.M->getFunction("f"), Rules);

  std::printf("validated:       %s\n", R.Validated ? "yes" : "NO");
  std::printf("graph nodes:     %llu\n",
              static_cast<unsigned long long>(R.GraphNodes));
  std::printf("rewrites needed: %llu\n",
              static_cast<unsigned long long>(R.Rewrites));

  // For the curious: the shared value graph, before normalization.
  ValueGraph G;
  BuildResult A = buildValueGraph(G, *MA.M->getFunction("f"));
  BuildResult B = buildValueGraph(G, *MB.M->getFunction("f"));
  std::printf("\nshared value graph (A root n%u, B root n%u):\n%s", A.Ret,
              B.Ret, G.dump({A.Ret, B.Ret}).c_str());

  // A broken "optimization" is rejected.
  const char *Broken = R"(
define i32 @f(i32 %a) {
entry:
  %y1 = mul i32 %a, 6
  %y2 = shl i32 %y1, 2
  ret i32 %y2
}
)";
  ParseResult MC = parseModule(Ctx, Broken);
  ValidationResult Bad =
      validatePair(*MA.M->getFunction("f"), *MC.M->getFunction("f"), Rules);
  std::printf("\nbroken version validated: %s (expected NO)\n",
              Bad.Validated ? "yes" : "NO");
  return R.Validated && !Bad.Validated ? 0 : 1;
}
