//===- validate_server.cpp - Validation service daemon ------------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
// The long-running front-end of the validation engine: listen on a
// unix-domain socket (and/or loopback TCP), keep one engine and its warm
// verdict/triage store hot, and serve every connected client's submissions
// from the shared caches. See src/server/ValidationServer.h for the
// architecture and src/server/Protocol.h for the wire format.
//
//   $ ./validate_server [options]
//     --listen PATH      unix-domain socket to listen on
//                        (default: llvmmd-serve.sock in the CWD)
//     --tcp PORT         also listen on 127.0.0.1:PORT (0 picks a free
//                        port and prints it)
//     --no-unix          TCP only: do not bind the unix socket
//     --threads N        engine worker threads (default: hardware)
//     --pipeline P       pass pipeline for submitted modules (default:
//                        the paper's)
//     --all-rules        enable the libc/float/global extension rule sets
//     --rule-mask N      set the rule mask explicitly
//     --stepwise         per-pass validation with guilty-pass attribution
//     --triage           triage every rejected pair (witness search,
//                        reduction, rule-gap attribution)
//     --cache PATH       persistent verdict store: loaded at startup,
//                        checkpointed while serving, saved at shutdown —
//                        a restarted daemon replays verdicts and triage
//                        results warm
//     --queue N          admission control: at most N queued jobs
//                        (default 32)
//     --checkpoint N     checkpoint the store every N completed jobs
//                        (default 1; 0 = only at shutdown)
//     --print-config-digest
//                        print the handshake/store config digest and exit
//     --slow-job-ms N    log a warn-level line for any job slower than N
//                        milliseconds end-to-end (0 = disabled); traced
//                        jobs carry their trace id in the line
//     --http-metrics A   serve GET /metrics (Prometheus text exposition,
//                        same content as the protocol Metrics frame) and
//                        /healthz over HTTP on HOST:PORT (port 0 =
//                        ephemeral, printed at startup)
//     --log-level L      diagnostic log verbosity: debug|info|warn|error|
//                        off (default warn; LLVMMD_LOG env is the fallback)
//     --log-json         emit log lines as JSON objects (one per line)
//                        instead of text — for log shippers
//     --quiet            only errors on stderr
//
// The daemon runs until a client sends a Shutdown frame or it receives
// SIGINT/SIGTERM; either way it drains admitted jobs, checkpoints the
// store, and exits 0.
//
//===----------------------------------------------------------------------===//

#include "server/ValidationServer.h"
#include "support/Log.h"

#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>

using namespace llvmmd;

namespace {

ValidationServer *TheServer = nullptr;

void onSignal(int) {
  // Only atomic stores are allowed here; the server's waiters poll their
  // stop flags, and the actual teardown happens on wait().
  if (TheServer)
    TheServer->requestStopFromSignal();
}

} // namespace

int main(int argc, char **argv) {
  ServerConfig C;
  C.UnixPath = "llvmmd-serve.sock";
  bool NoUnix = false, Quiet = false, PrintDigest = false;

  for (int I = 1; I < argc; ++I) {
    auto Value = [&](const char *Opt) -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", Opt);
        return nullptr;
      }
      return argv[++I];
    };
    if (std::strcmp(argv[I], "--listen") == 0) {
      const char *V = Value("--listen");
      if (!V)
        return 1;
      C.UnixPath = V;
    } else if (std::strcmp(argv[I], "--tcp") == 0) {
      const char *V = Value("--tcp");
      if (!V)
        return 1;
      int Port = std::atoi(V);
      if (Port < 0 || Port > 65535) {
        std::fprintf(stderr, "error: bad --tcp port '%s'\n", V);
        return 1;
      }
      C.TcpPort = Port;
    } else if (std::strcmp(argv[I], "--no-unix") == 0) {
      NoUnix = true;
    } else if (std::strcmp(argv[I], "--threads") == 0) {
      const char *V = Value("--threads");
      if (!V)
        return 1;
      C.Engine.Threads = static_cast<unsigned>(std::atoi(V));
    } else if (std::strcmp(argv[I], "--pipeline") == 0) {
      const char *V = Value("--pipeline");
      if (!V)
        return 1;
      C.Pipeline = V;
    } else if (std::strcmp(argv[I], "--all-rules") == 0) {
      C.Engine.Rules.Mask = RS_All;
    } else if (std::strcmp(argv[I], "--rule-mask") == 0) {
      const char *V = Value("--rule-mask");
      if (!V)
        return 1;
      char *End = nullptr;
      unsigned long Mask = std::strtoul(V, &End, 0);
      if (!End || *End != '\0' || Mask > RS_All) {
        std::fprintf(stderr, "error: bad --rule-mask value '%s'\n", V);
        return 1;
      }
      C.Engine.Rules.Mask = static_cast<unsigned>(Mask);
    } else if (std::strcmp(argv[I], "--stepwise") == 0) {
      C.Engine.Granularity = ValidationGranularity::PerPass;
    } else if (std::strcmp(argv[I], "--triage") == 0) {
      C.Engine.Triage.Enabled = true;
    } else if (std::strcmp(argv[I], "--cache") == 0) {
      const char *V = Value("--cache");
      if (!V)
        return 1;
      C.Engine.CachePath = V;
    } else if (std::strcmp(argv[I], "--queue") == 0) {
      const char *V = Value("--queue");
      if (!V)
        return 1;
      C.MaxQueuedJobs = static_cast<unsigned>(std::atoi(V));
    } else if (std::strcmp(argv[I], "--checkpoint") == 0) {
      const char *V = Value("--checkpoint");
      if (!V)
        return 1;
      C.CheckpointEveryJobs = static_cast<unsigned>(std::atoi(V));
    } else if (std::strcmp(argv[I], "--print-config-digest") == 0) {
      PrintDigest = true;
    } else if (std::strcmp(argv[I], "--slow-job-ms") == 0) {
      const char *V = Value("--slow-job-ms");
      if (!V)
        return 1;
      C.SlowJobMicroseconds =
          static_cast<uint64_t>(std::strtoull(V, nullptr, 10)) * 1000;
    } else if (std::strcmp(argv[I], "--http-metrics") == 0) {
      const char *V = Value("--http-metrics");
      if (!V)
        return 1;
      C.HttpMetrics = V;
    } else if (std::strcmp(argv[I], "--log-level") == 0) {
      const char *V = Value("--log-level");
      if (!V)
        return 1;
      LogLevel L;
      if (!parseLogLevel(V, L)) {
        std::fprintf(stderr,
                     "error: bad --log-level '%s' "
                     "(debug|info|warn|error|off)\n",
                     V);
        return 1;
      }
      setLogLevel(L);
    } else if (std::strcmp(argv[I], "--log-json") == 0) {
      setLogJSON(true);
    } else if (std::strcmp(argv[I], "--quiet") == 0) {
      Quiet = true;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", argv[I]);
      return 1;
    }
  }
  if (NoUnix)
    C.UnixPath.clear();

  // Remember the HTTP host for the startup banner (scripts grep the
  // "http:" line for the ephemeral port); the config moves into the
  // server next.
  std::string HttpHost = "127.0.0.1";
  size_t HostEnd = C.HttpMetrics.rfind(':');
  if (HostEnd != std::string::npos && HostEnd > 0)
    HttpHost = C.HttpMetrics.substr(0, HostEnd);
  if (HttpHost == "localhost")
    HttpHost = "127.0.0.1";

  ValidationServer Server(std::move(C));
  if (PrintDigest) {
    std::printf("%016llx\n",
                static_cast<unsigned long long>(Server.configDigest()));
    return 0;
  }

  std::string Error;
  if (!Server.start(&Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }

  TheServer = &Server;
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);

  if (!Quiet) {
    std::printf("validate_server: listening (config digest %016llx, "
                "%u engine threads)\n",
                static_cast<unsigned long long>(Server.configDigest()),
                Server.engineThreads());
    if (Server.boundTcpPort() >= 0)
      std::printf("  tcp: 127.0.0.1:%d\n", Server.boundTcpPort());
    if (Server.boundHttpPort() >= 0)
      std::printf("  http: %s:%d\n", HttpHost.c_str(),
                  Server.boundHttpPort());
    std::fflush(stdout);
  }

  // Serve until a Shutdown frame or signal; wait() performs the graceful
  // teardown (drain + checkpoint) itself.
  Server.wait();
  TheServer = nullptr;
  if (!Quiet)
    std::printf("validate_server: stopped cleanly\n");
  return 0;
}
