//===- fig4_pipeline.cpp - Reproduces Figure 4: whole-pipeline results ------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
// The paper's headline experiment: optimize every function with
// ADCE,GVN,SCCP,LICM,loop-deletion,loop-unswitching,DSE and report the
// fraction of transformed functions whose optimization validated, per
// benchmark, with the paper's rule sets (no libc/FP/global extensions).
// Expected shape: ~80% overall, SQLite close to 90%, gcc and perlbench
// noticeably lower. Validation wall time is reported like the paper's
// "GCC 19m19s, perl 2m56s, SQLite 55s" (absolute values differ; relative
// order should hold).
//
// Runs on the driver subsystem's ValidationEngine: one shared thread pool
// and verdict cache across the whole suite. `--smoke` shrinks the suite to
// a CI-sized configuration; `--threads N` pins the pool size.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include <cstdlib>
#include <cstring>

using namespace llvmmd;
using namespace llvmmd::bench;

int main(int argc, char **argv) {
  bool Smoke = false;
  unsigned Threads = 0;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--smoke") == 0) {
      Smoke = true;
    } else if (std::strcmp(argv[I], "--threads") == 0 && I + 1 < argc) {
      int V = std::atoi(argv[++I]);
      if (V < 0 || V > 1024) {
        std::fprintf(stderr, "error: bad --threads value '%s'\n", argv[I]);
        return 1;
      }
      Threads = static_cast<unsigned>(V);
    }
  }

  EngineConfig C;
  C.Threads = Threads;
  C.Rules.Mask = RS_Paper;
  ValidationEngine Engine(C);

  printHeader("Figure 4: validation results for the optimization pipeline");
  if (Smoke)
    std::printf("(smoke configuration: first 3 programs, 1/4 scale)\n");
  std::printf("%-12s %10s %10s %8s %12s\n", "program", "transformed",
              "validated", "rate", "time");
  unsigned TotalT = 0, TotalV = 0;
  unsigned Count = 0;
  for (BenchmarkProfile P : getPaperSuite()) {
    if (Smoke) {
      if (++Count > 3)
        break;
      P.FunctionCount = P.FunctionCount > 4 ? P.FunctionCount / 4 : 1;
    }
    RunStats S = runProfile(P, getPaperPipeline(), RS_Paper, &Engine);
    TotalT += S.Transformed;
    TotalV += S.Validated;
    std::printf("%-12s %10u %10u %7.1f%% %9.2fms\n", P.Name.c_str(),
                S.Transformed, S.Validated, S.rate(),
                S.Microseconds / 1000.0);
  }
  std::printf("%-12s %10u %10u %7.1f%%\n", "OVERALL", TotalT, TotalV,
              TotalT ? 100.0 * TotalV / TotalT : 100.0);
  const EngineCacheStats &CS = Engine.cacheStats();
  std::printf("\n(engine: %u threads, %llu validated, %llu cache hits, "
              "%llu identical skips)\n",
              Engine.getThreadCount(),
              static_cast<unsigned long long>(CS.Misses),
              static_cast<unsigned long long>(CS.Hits),
              static_cast<unsigned long long>(CS.SkippedIdentical));
  std::printf("(paper: ~80%% of per-function optimizations validate "
              "overall; SQLite ~90%%)\n");
  return 0;
}
