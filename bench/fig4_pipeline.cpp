//===- fig4_pipeline.cpp - Reproduces Figure 4: whole-pipeline results ------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
// The paper's headline experiment: optimize every function with
// ADCE,GVN,SCCP,LICM,loop-deletion,loop-unswitching,DSE and report the
// fraction of transformed functions whose optimization validated, per
// benchmark, with the paper's rule sets (no libc/FP/global extensions).
// Expected shape: ~80% overall, SQLite close to 90%, gcc and perlbench
// noticeably lower. Validation wall time is reported like the paper's
// "GCC 19m19s, perl 2m56s, SQLite 55s" (absolute values differ; relative
// order should hold).
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

using namespace llvmmd;
using namespace llvmmd::bench;

int main() {
  printHeader("Figure 4: validation results for the optimization pipeline");
  std::printf("%-12s %10s %10s %8s %12s\n", "program", "transformed",
              "validated", "rate", "time");
  unsigned TotalT = 0, TotalV = 0;
  for (const BenchmarkProfile &P : getPaperSuite()) {
    RunStats S = runProfile(P, getPaperPipeline(), RS_Paper);
    TotalT += S.Transformed;
    TotalV += S.Validated;
    std::printf("%-12s %10u %10u %7.1f%% %9.2fms\n", P.Name.c_str(),
                S.Transformed, S.Validated, S.rate(),
                S.Microseconds / 1000.0);
  }
  std::printf("%-12s %10u %10u %7.1f%%\n", "OVERALL", TotalT, TotalV,
              TotalT ? 100.0 * TotalV / TotalT : 100.0);
  std::printf("\n(paper: ~80%% of per-function optimizations validate "
              "overall; SQLite ~90%%)\n");
  return 0;
}
