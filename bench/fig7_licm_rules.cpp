//===- fig7_licm_rules.cpp - Reproduces Figure 7: LICM rule ablation ---------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
// Validation rate of LICM alone with (a) no rewrite rules, (b) all of the
// paper's rules. Expected shape: the no-rule baseline is already around
// 75-80% (hoisted pure expressions produce the same referentially
// transparent graph), all rules improve it only slightly, and the residual
// failures are LLVM's libc knowledge (hoisting strlen out of loops). The
// third column enables the Libc extension rule set and shows those alarms
// closing — the fix the paper's conclusion predicts.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

using namespace llvmmd;
using namespace llvmmd::bench;

int main() {
  ValidationEngine Engine; // one thread pool + verdict cache for all runs
  printHeader("Figure 7: effect of rewrite rules on LICM validation");
  std::printf("%-12s %12s %12s %12s\n", "program", "no-rules", "all-rules",
              "+libc(ext)");
  for (const BenchmarkProfile &P : getPaperSuite()) {
    RunStats None = runProfile(P, "licm", RS_None, &Engine);
    RunStats All = runProfile(P, "licm", RS_Paper, &Engine);
    RunStats Libc = runProfile(P, "licm", RS_Paper | RS_Libc, &Engine);
    std::printf("%-12s %11.1f%% %11.1f%% %11.1f%%\n", P.Name.c_str(),
                None.rate(), All.rate(), Libc.rate());
  }
  std::printf("\n(paper: baseline ~75-80%% with no rules; all rules only "
              "slightly better; libc knowledge is the residual gap)\n");
  return 0;
}
