//===- fig6_gvn_rules.cpp - Reproduces Figure 6: GVN rule ablation ----------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
// Validation rate of GVN alone as rewrite-rule sets are added cumulatively,
// in the paper's order: (1) no rules, (2) φ simplification, (3) constant
// folding, (4) load/store simplification, (5) η simplification,
// (6) commuting rules. Expected shape: ~50% with no rules at all (symbolic
// evaluation hides syntactic detail); SQLite barely moved by constant
// folding or φ rules but helped by load/store; lbm helped a lot by φ
// simplification.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

using namespace llvmmd;
using namespace llvmmd::bench;

int main() {
  struct Config {
    const char *Label;
    unsigned Mask;
  };
  const Config Configs[] = {
      {"1:none", RS_None},
      {"2:+phi", RS_PhiSimplify | RS_Boolean},
      {"3:+constfold", RS_PhiSimplify | RS_Boolean | RS_ConstFold |
                           RS_Canonicalize},
      {"4:+loadstore", RS_PhiSimplify | RS_Boolean | RS_ConstFold |
                           RS_Canonicalize | RS_LoadStore},
      {"5:+eta", RS_PhiSimplify | RS_Boolean | RS_ConstFold |
                     RS_Canonicalize | RS_LoadStore | RS_EtaMu},
      {"6:+commuting", RS_Paper},
  };

  ValidationEngine Engine; // one thread pool + verdict cache for all runs
  printHeader("Figure 6: effect of rewrite rules on GVN validation");
  std::printf("%-12s", "program");
  for (const Config &C : Configs)
    std::printf(" %13s", C.Label);
  std::printf("\n");
  for (const BenchmarkProfile &P : getPaperSuite()) {
    std::printf("%-12s", P.Name.c_str());
    for (const Config &C : Configs) {
      RunStats S = runProfile(P, "gvn", C.Mask, &Engine);
      std::printf(" %12.1f%%", S.rate());
    }
    std::printf("\n");
  }
  std::printf("\n(paper: ~50%% of GVN validates with no rules; rules added "
              "cumulatively left to right)\n");
  return 0;
}
