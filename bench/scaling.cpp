//===- scaling.cpp - §2/§4.1 claims: O(1) best case, work ∝ rewrites ---------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
// google-benchmark microbenchmarks backing the paper's efficiency claims:
//  * validating an *unchanged* function is (amortized) constant-time after
//    graph construction, because hash-consing makes the comparison O(1);
//  * the number of rewrites the validator performs tracks the number of
//    transformations the optimizer made, not the function size;
//  * batch validation through the ValidationEngine scales with the thread
//    count (BM_EngineBatch/threads:N).
//
// After the microbenchmarks run, a whole-suite engine pass is emitted as
// BENCH_scaling.json through the engine's JSON reporter (with timing).
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "driver/VerdictStore.h"
#include "vg/GraphBuilder.h"

#include <benchmark/benchmark.h>

#include <cassert>
#include <cstdio>
#include <fstream>
#include <map>

using namespace llvmmd;

namespace {

BenchmarkProfile scaledProfile(unsigned Segments) {
  BenchmarkProfile P = getProfile("hmmer");
  P.FunctionCount = 1;
  P.MinSegments = Segments;
  P.MaxSegments = Segments;
  return P;
}

/// Best case: identical function pair; the state pointers are already the
/// same node when construction finishes.
void BM_ValidateIdentical(benchmark::State &State) {
  unsigned Segments = State.range(0);
  Context Ctx;
  auto M = generateBenchmark(Ctx, scaledProfile(Segments));
  const Function *F = M->definedFunctions().front();
  RuleConfig Rules;
  uint64_t Insts = F->getInstructionCount();
  bool Immediate = true;
  for (auto _ : State) {
    ValidationResult R = validatePair(*F, *F, Rules);
    benchmark::DoNotOptimize(R.Validated);
    assert(R.Validated && "identical pair!");
    // Acyclic functions are equal the moment construction finishes; loops
    // additionally need one μ-unification round (μ nodes are unique).
    Immediate &= R.EqualOnConstruction;
  }
  State.counters["instructions"] = static_cast<double>(Insts);
  State.counters["o1_equal"] = Immediate ? 1 : 0;
}
BENCHMARK(BM_ValidateIdentical)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

/// Optimized pair: rewrites scale with the optimizer's work.
void BM_ValidateOptimized(benchmark::State &State) {
  unsigned Segments = State.range(0);
  Context Ctx;
  auto M = generateBenchmark(Ctx, scaledProfile(Segments));
  auto Opt = cloneModule(*M);
  PassManager PM;
  PM.parsePipeline(getPaperPipeline());
  Function *FO = Opt->definedFunctions().front();
  PM.run(*FO);
  const Function *FI = M->definedFunctions().front();
  RuleConfig Rules;
  Rules.Mask = RS_All;
  Rules.M = M.get();
  uint64_t Rewrites = 0;
  for (auto _ : State) {
    ValidationResult R = validatePair(*FI, *FO, Rules);
    benchmark::DoNotOptimize(R.Validated);
    Rewrites = R.Rewrites;
  }
  State.counters["rewrites"] = static_cast<double>(Rewrites);
  State.counters["instructions"] =
      static_cast<double>(FI->getInstructionCount());
}
BENCHMARK(BM_ValidateOptimized)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

/// Graph construction alone, for scale context.
void BM_BuildGraph(benchmark::State &State) {
  unsigned Segments = State.range(0);
  Context Ctx;
  auto M = generateBenchmark(Ctx, scaledProfile(Segments));
  const Function *F = M->definedFunctions().front();
  for (auto _ : State) {
    ValueGraph G;
    auto R = buildValueGraph(G, *F);
    benchmark::DoNotOptimize(R.Ret);
  }
}
BENCHMARK(BM_BuildGraph)->Arg(2)->Arg(8)->Arg(32);

/// Whole-module batch validation through the engine at 1..N threads: the
/// throughput path the driver subsystem owns. The verdict cache is disabled
/// so every iteration measures real validations, not replays.
void BM_EngineBatch(benchmark::State &State) {
  unsigned Threads = State.range(0);
  Context Ctx;
  BenchmarkProfile P = getProfile("hmmer");
  P.FunctionCount = 24;
  auto M = generateBenchmark(Ctx, P);
  EngineConfig C;
  C.Threads = Threads;
  C.UseCache = false;
  ValidationEngine Engine(C);
  unsigned Validated = 0;
  for (auto _ : State) {
    EngineRun Run = Engine.run(*M, getPaperPipeline());
    Validated = Run.Report.validated();
    benchmark::DoNotOptimize(Validated);
  }
  State.counters["validated"] = static_cast<double>(Validated);
}
BENCHMARK(BM_EngineBatch)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

/// The CI warm-cache path: a fresh engine loads the persistent verdict
/// store and revalidates the whole module by replay — construction (store
/// load included) plus a full run, without proving a single pair from
/// scratch. Compare against BM_EngineBatch for the cold cost the store
/// amortizes away.
void BM_EngineWarmStoreReplay(benchmark::State &State) {
  Context Ctx;
  BenchmarkProfile P = getProfile("hmmer");
  P.FunctionCount = 24;
  auto M = generateBenchmark(Ctx, P);
  const char *Store = "BENCH_warm.vstore";
  EngineConfig C;
  C.Threads = 1;
  C.CachePath = Store;
  {
    ValidationEngine Cold(C);
    Cold.run(*M, getPaperPipeline());
  }
  uint64_t Replayed = 0;
  for (auto _ : State) {
    ValidationEngine Warm(C);
    EngineRun Run = Warm.run(*M, getPaperPipeline());
    benchmark::DoNotOptimize(Run.Report);
    // Must hold in Release too (CI benches with NDEBUG): a cold validation
    // here would mean the numbers below are not warm-replay numbers at all.
    if (Warm.cacheStats().Misses != 0) {
      State.SkipWithError("warm run validated from scratch; store broken?");
      break;
    }
    Replayed = Warm.cacheStats().Hits;
  }
  State.counters["replayed"] = static_cast<double>(Replayed);
  std::remove(Store);
  std::remove((std::string(Store) + ".lock").c_str());
}
BENCHMARK(BM_EngineWarmStoreReplay)->UseRealTime();

/// Arena teardown: destroying a whole generated module is one arena free
/// per function body plus the module arena — no per-instruction deletes.
/// Generation is excluded from the timed region.
void BM_ModuleTeardown(benchmark::State &State) {
  Context Ctx;
  BenchmarkProfile P = getProfile("sjeng");
  P.FunctionCount = State.range(0);
  uint64_t Insts = 0;
  for (auto _ : State) {
    State.PauseTiming();
    auto M = generateBenchmark(Ctx, P);
    Insts = 0;
    for (const Function *F : M->definedFunctions())
      Insts += F->getInstructionCount();
    State.ResumeTiming();
    M.reset();
  }
  State.counters["instructions"] = static_cast<double>(Insts);
}
BENCHMARK(BM_ModuleTeardown)->Arg(4)->Arg(16);

/// The engine's snapshot/revert cycle: drop a function body (its arena is
/// reset, slab kept warm) and re-clone it from the pristine copy. After the
/// first cycle the body arena never allocates from the OS again, so this is
/// the steady-state cost of rewinding a candidate function.
void BM_SnapshotReclone(benchmark::State &State) {
  Context Ctx;
  auto M = generateBenchmark(Ctx, scaledProfile(State.range(0)));
  auto Pristine = cloneModule(*M);
  Function *F = M->definedFunctions().front();
  const Function *Src = Pristine->definedFunctions().front();
  for (auto _ : State) {
    F->dropBody();
    std::map<const Value *, Value *> VMap;
    cloneFunctionBody(*Src, *F, VMap);
    remapModuleReferences(*F, *M);
    benchmark::DoNotOptimize(F);
  }
  State.counters["instructions"] =
      static_cast<double>(F->getInstructionCount());
}
BENCHMARK(BM_SnapshotReclone)->Arg(4)->Arg(16);

/// Builds a many-module verdict store on disk for the mapped-probe bench.
/// Distinct Config values model distinct modules (the per-module globals
/// digest folds into Config), so the entries spread across v3 shards.
std::string writeProbeStore(uint64_t Digest, unsigned Modules,
                            unsigned PerModule, VerdictKey &ProbeKey) {
  VerdictMap Map;
  for (unsigned Mod = 0; Mod < Modules; ++Mod) {
    uint64_t Config = 0xbe9c000 + Mod * 0x9e3779b9ULL;
    for (unsigned I = 0; I < PerModule; ++I) {
      VerdictKey K{0x1000 + I, 0x2000 + I, Config};
      ValidationResult R;
      R.Validated = true;
      R.Rewrites = I;
      Map.emplace(K, R);
      if (Mod == Modules / 2 && I == 0)
        ProbeKey = K;
    }
  }
  std::string Path = "BENCH_probe.vstore";
  VerdictStore::save(Path, Digest, Map, /*Error=*/nullptr,
                     /*MergeExisting=*/false);
  return Path;
}

/// Probing one module's verdicts through the mmap-backed view: open the
/// store, look up a single key, report how many shards had to be
/// materialized. Contrast with BM_StoreFullLoad, which parses and verifies
/// every shard up front.
void BM_StoreMappedProbe(benchmark::State &State) {
  const uint64_t Digest = 0xd19e57;
  VerdictKey Probe;
  std::string Path = writeProbeStore(Digest, 32, 64, Probe);
  unsigned Shards = 0, Materialized = 0;
  for (auto _ : State) {
    auto Mapped = MappedVerdictStore::open(Path, Digest);
    const ValidationResult *R = Mapped->lookup(Probe);
    benchmark::DoNotOptimize(R);
    if (!R) {
      State.SkipWithError("probe key missing; store broken?");
      break;
    }
    Shards = Mapped->numShards();
    Materialized = Mapped->shardsMaterialized();
  }
  State.counters["shards"] = static_cast<double>(Shards);
  State.counters["shards_touched"] = static_cast<double>(Materialized);
  std::remove(Path.c_str());
  std::remove((Path + ".lock").c_str());
}
BENCHMARK(BM_StoreMappedProbe);

/// The eager path the mapped view replaces for single-module consumers:
/// checksum-verify and parse the entire store into an in-memory map.
void BM_StoreFullLoad(benchmark::State &State) {
  const uint64_t Digest = 0xd19e57;
  VerdictKey Probe;
  std::string Path = writeProbeStore(Digest, 32, 64, Probe);
  uint64_t Merged = 0;
  for (auto _ : State) {
    VerdictMap Map;
    VerdictStore::LoadResult R = VerdictStore::load(Path, Digest, Map);
    benchmark::DoNotOptimize(Map);
    if (!R.loaded()) {
      State.SkipWithError("store failed to load");
      break;
    }
    Merged = R.EntriesMerged;
  }
  State.counters["entries"] = static_cast<double>(Merged);
  std::remove(Path.c_str());
  std::remove((Path + ".lock").c_str());
}
BENCHMARK(BM_StoreFullLoad);

/// One engine pass over a mid-size profile, emitted through the engine's
/// JSON reporter (timing included) as BENCH_scaling.json.
void writeEngineReport(const char *Path) {
  Context Ctx;
  auto M = generateBenchmark(Ctx, getProfile("sjeng"));
  ValidationEngine Engine;
  EngineRun Run = Engine.run(*M, getPaperPipeline());
  std::ofstream Out(Path);
  Out << reportToJSON(Run.Report, /*IncludeTiming=*/true);
  std::printf("wrote %s (%u functions, %u validated, %.2f ms wall on %u "
              "threads)\n",
              Path, Run.Report.total(), Run.Report.validated(),
              Run.Report.WallMicroseconds / 1000.0, Engine.getThreadCount());
}

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  writeEngineReport("BENCH_scaling.json");
  return 0;
}
