//===- fig5_individual.cpp - Reproduces Figure 5: per-optimization results ---===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
// One chart per optimization: for each benchmark, the number of functions
// the single optimization transformed (bar height) split into validated /
// unvalidated. Expected shape: GVN transforms the most functions and is
// the hardest to validate; ADCE/DSE/loop-deletion validate almost always.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

using namespace llvmmd;
using namespace llvmmd::bench;

int main() {
  static const char *Opts[] = {"adce",          "gvn",
                               "sccp",          "licm",
                               "loop-deletion", "loop-unswitch",
                               "dse"};
  ValidationEngine Engine; // one thread pool + verdict cache for all runs
  for (const char *Opt : Opts) {
    printHeader((std::string("Figure 5: ") + Opt).c_str());
    std::printf("%-12s %12s %10s %8s\n", "program", "transformed",
                "validated", "rate");
    unsigned TotalT = 0, TotalV = 0;
    for (const BenchmarkProfile &P : getPaperSuite()) {
      RunStats S = runProfile(P, Opt, RS_Paper, &Engine);
      TotalT += S.Transformed;
      TotalV += S.Validated;
      std::printf("%-12s %12u %10u %7.1f%%\n", P.Name.c_str(), S.Transformed,
                  S.Validated, S.rate());
    }
    std::printf("%-12s %12u %10u %7.1f%%\n", "OVERALL", TotalT, TotalV,
                TotalT ? 100.0 * TotalV / TotalT : 100.0);
  }
  std::printf("\n(paper: GVN with alias analysis performs the most "
              "transformations and is the most challenging)\n");
  return 0;
}
