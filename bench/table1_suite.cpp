//===- table1_suite.cpp - Reproduces Table 1: test suite information --------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
// Paper row format: program, assembly file size, lines of assembly, number
// of functions. We print the paper's reported numbers next to the numbers
// of our synthetic stand-in suite (which is scaled down ~20x; see
// DESIGN.md §2 for why the substitution preserves the evaluation's shape).
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "ir/Printer.h"

using namespace llvmmd;

int main() {
  bench::printHeader("Table 1: test suite information");
  std::printf("%-12s %8s %8s %10s | %10s %10s %12s\n", "program",
              "size", "LOC", "functions", "our-size", "our-LOC",
              "our-functions");
  for (const BenchmarkProfile &P : getPaperSuite()) {
    Context Ctx;
    auto M = generateBenchmark(Ctx, P);
    std::string Text = printModule(*M);
    size_t Lines = 1;
    for (char C : Text)
      Lines += C == '\n';
    std::printf("%-12s %8s %8s %10u | %9zuK %9zu %12zu\n", P.Name.c_str(),
                P.PaperSize, P.PaperLOC, P.PaperFunctions,
                Text.size() / 1024, Lines, M->definedFunctions().size());
  }
  std::printf("\n(paper columns reproduced from Table 1; 'our-*' columns "
              "describe the synthetic stand-in suite)\n");
  return 0;
}
