//===- Harness.h - Shared benchmark-harness utilities -----------*- C++ -*-===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Common driver code for the table/figure reproduction binaries: generate
/// a profile's module, run an optimization pipeline per function, validate
/// each transformed function under a rule configuration, and aggregate.
///
//===----------------------------------------------------------------------===//

#ifndef LLVMMD_BENCH_HARNESS_H
#define LLVMMD_BENCH_HARNESS_H

#include "ir/Cloning.h"
#include "ir/Module.h"
#include "opt/Pass.h"
#include "validator/Validator.h"
#include "workload/Generator.h"
#include "workload/Profiles.h"

#include <cstdio>
#include <string>
#include <vector>

namespace llvmmd {
namespace bench {

struct RunStats {
  unsigned Functions = 0;
  unsigned Transformed = 0;
  unsigned Validated = 0;
  uint64_t Microseconds = 0;
  uint64_t Rewrites = 0;
  uint64_t GraphNodes = 0;

  double rate() const {
    return Transformed ? 100.0 * Validated / Transformed : 100.0;
  }
};

/// Optimizes every function of \p Profile's module with \p Pipeline and
/// validates each transformed function under \p Rules.
inline RunStats runProfile(const BenchmarkProfile &Profile,
                           const std::string &Pipeline, unsigned RuleMask) {
  Context Ctx;
  auto Orig = generateBenchmark(Ctx, Profile);
  auto Opt = cloneModule(*Orig);
  PassManager PM;
  bool OK = PM.parsePipeline(Pipeline);
  (void)OK;
  assert(OK && "bad pipeline");

  RuleConfig Rules;
  Rules.Mask = RuleMask;
  Rules.M = Orig.get();

  RunStats S;
  for (Function *FO : Opt->definedFunctions()) {
    ++S.Functions;
    if (!PM.run(*FO))
      continue;
    ++S.Transformed;
    const Function *FI = Orig->getFunction(FO->getName());
    ValidationResult R = validatePair(*FI, *FO, Rules);
    S.Validated += R.Validated;
    S.Microseconds += R.Microseconds;
    S.Rewrites += R.Rewrites;
    S.GraphNodes += R.GraphNodes;
  }
  return S;
}

inline void printHeader(const char *Title) {
  std::printf("\n=== %s ===\n", Title);
}

} // namespace bench
} // namespace llvmmd

#endif // LLVMMD_BENCH_HARNESS_H
