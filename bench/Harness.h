//===- Harness.h - Shared benchmark-harness utilities -----------*- C++ -*-===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Common driver code for the table/figure reproduction binaries. Profiles
/// are generated, optimized and validated through the driver subsystem's
/// ValidationEngine (parallel, fingerprint-cached) instead of a hand-rolled
/// per-binary loop; the engine's report is folded into the small RunStats
/// the figures print.
///
//===----------------------------------------------------------------------===//

#ifndef LLVMMD_BENCH_HARNESS_H
#define LLVMMD_BENCH_HARNESS_H

#include "driver/ValidationEngine.h"
#include "ir/Cloning.h"
#include "ir/Module.h"
#include "opt/Pass.h"
#include "validator/Validator.h"
#include "workload/Generator.h"
#include "workload/Profiles.h"

#include <cstdio>
#include <string>
#include <vector>

namespace llvmmd {
namespace bench {

struct RunStats {
  unsigned Functions = 0;
  unsigned Transformed = 0;
  unsigned Validated = 0;
  uint64_t Microseconds = 0;
  uint64_t Rewrites = 0;
  uint64_t GraphNodes = 0;

  double rate() const {
    return Transformed ? 100.0 * Validated / Transformed : 100.0;
  }
};

inline RunStats statsFromReport(const ValidationReport &R) {
  RunStats S;
  S.Functions = R.total();
  S.Transformed = R.transformed();
  S.Validated = R.validated();
  S.Microseconds = R.validationMicroseconds();
  S.Rewrites = R.rewrites();
  S.GraphNodes = R.graphNodes();
  return S;
}

/// Optimizes every function of \p Profile's module with \p Pipeline and
/// validates each transformed function under \p RuleMask, on the engine.
/// Passing an \p Engine reuses its thread pool and verdict cache across
/// profiles; with none, a fresh single-use engine is built (threads = one
/// per hardware thread).
inline RunStats runProfile(const BenchmarkProfile &Profile,
                           const std::string &Pipeline, unsigned RuleMask,
                           ValidationEngine *Engine = nullptr) {
  Context Ctx;
  auto Orig = generateBenchmark(Ctx, Profile);

  EngineConfig C;
  C.Rules.Mask = RuleMask;
  if (!Engine) {
    ValidationEngine Fresh(C);
    return statsFromReport(Fresh.run(*Orig, Pipeline).Report);
  }
  RuleConfig Rules = Engine->getRules();
  Rules.Mask = RuleMask;
  Engine->setRules(Rules);
  return statsFromReport(Engine->run(*Orig, Pipeline).Report);
}

inline void printHeader(const char *Title) {
  std::printf("\n=== %s ===\n", Title);
}

} // namespace bench
} // namespace llvmmd

#endif // LLVMMD_BENCH_HARNESS_H
