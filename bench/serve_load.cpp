//===- serve_load.cpp - Served vs batch validation throughput -----------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
// Measures what the serving layer costs (and buys): N concurrent clients
// submit the same benchmark suite to one in-process ValidationServer over a
// unix-domain socket, and the resulting warm verdicts/second is compared
// against the batch path (engine.runSuite in a loop on the same warm
// engine). Both sides replay from a warm cache, so the comparison isolates
// the serving overhead — framing, socket hops, per-job module lookup,
// report emission — from validation itself.
//
//   $ ./serve_load [clients] [repeats-per-client]
//
// Defaults: 4 clients x 8 repeats over the sqlite,hmmer,sjeng suite.
// Prints human-readable results plus one SERVE_LOAD{...} JSON line, and
// exits nonzero if the served warm path falls below the batch warm path
// (the acceptance bar for the serving layer).
//
//===----------------------------------------------------------------------===//

#include "driver/ValidationEngine.h"
#include "ir/Module.h"
#include "opt/Pass.h"
#include "server/ServerClient.h"
#include "server/ValidationServer.h"
#include "workload/Generator.h"
#include "workload/Profiles.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

using namespace llvmmd;

namespace {

const char *const SuiteProfiles[] = {"sqlite", "hmmer", "sjeng"};

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

SubmitPayload suiteSubmission() {
  SubmitPayload Req;
  for (const char *Name : SuiteProfiles) {
    SubmitModule M;
    M.Source = SubmitProfile;
    M.Name = Name;
    Req.Modules.push_back(std::move(M));
  }
  return Req;
}

} // namespace

int main(int argc, char **argv) {
  unsigned Clients = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 4;
  unsigned Repeats = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 8;
  if (Clients == 0 || Repeats == 0) {
    std::fprintf(stderr, "usage: serve_load [clients >= 1] [repeats >= 1]\n");
    return 1;
  }

  //===------------------------------------------------------------------===//
  // Batch baseline: one engine, pregenerated modules, warm loop.
  //===------------------------------------------------------------------===//

  Context Ctx;
  std::vector<std::unique_ptr<Module>> Own;
  std::vector<const Module *> Mods;
  unsigned SuiteFunctions = 0;
  for (const char *Name : SuiteProfiles) {
    Own.push_back(generateBenchmark(Ctx, getProfile(Name)));
    Mods.push_back(Own.back().get());
    SuiteFunctions += getProfile(Name).FunctionCount;
  }

  ValidationEngine Engine{EngineConfig()};
  Engine.runSuite(Mods, getPaperPipeline()); // cold pass warms the cache
  const unsigned BatchRuns = Clients * Repeats;
  auto BatchStart = std::chrono::steady_clock::now();
  for (unsigned I = 0; I < BatchRuns; ++I)
    Engine.runSuite(Mods, getPaperPipeline());
  double BatchSecs = secondsSince(BatchStart);
  double BatchThroughput = BatchRuns * double(SuiteFunctions) / BatchSecs;
  std::printf("batch : %3u warm suite runs (%u functions each) in %6.2fs "
              "-> %9.0f verdicts/s\n",
              BatchRuns, SuiteFunctions, BatchSecs, BatchThroughput);

  //===------------------------------------------------------------------===//
  // Served: in-process daemon, N concurrent clients, warm submissions.
  //===------------------------------------------------------------------===//

  ServerConfig SC;
  SC.UnixPath = "serve_load.sock";
  ValidationServer Server(SC);
  std::string Error;
  if (!Server.start(&Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  uint64_t Digest = Server.configDigest();

  // Warm-up pass: first submission generates the modules server-side and
  // proves every verdict once.
  {
    ServerClient Warm;
    if (!Warm.connectUnix(SC.UnixPath, &Error) ||
        !Warm.handshake(Digest, nullptr, &Error)) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 1;
    }
    if (!Warm.submit(suiteSubmission()))
      return 1;
    ServerClient::Event E;
    while (Warm.nextEvent(E) && E.K != ServerClient::Event::Kind::JobDone)
      ;
  }

  std::vector<std::thread> Threads;
  std::vector<uint64_t> Misses(Clients, 0);
  // Per-client slots (char, not vector<bool>: distinct bytes, so the
  // client threads' writes cannot race on a shared word).
  std::vector<char> Ok(Clients, 0);
  auto ServeStart = std::chrono::steady_clock::now();
  for (unsigned Ci = 0; Ci < Clients; ++Ci) {
    Threads.emplace_back([&, Ci] {
      ServerClient Client;
      if (!Client.connectUnix(SC.UnixPath) || !Client.handshake(Digest))
        return;
      for (unsigned R = 0; R < Repeats; ++R) {
        if (!Client.submit(suiteSubmission()))
          return;
        for (;;) {
          ServerClient::Event E;
          if (!Client.nextEvent(E))
            return;
          if (E.K == ServerClient::Event::Kind::JobDone) {
            Misses[Ci] += E.Done.Misses;
            break;
          }
          if (E.K == ServerClient::Event::Kind::Error)
            return;
        }
      }
      Ok[Ci] = 1;
    });
  }
  for (std::thread &T : Threads)
    T.join();
  double ServeSecs = secondsSince(ServeStart);
  Server.stop();

  uint64_t TotalMisses = 0;
  bool AllOk = true;
  for (unsigned Ci = 0; Ci < Clients; ++Ci) {
    TotalMisses += Misses[Ci];
    AllOk = AllOk && Ok[Ci] != 0;
  }
  if (!AllOk) {
    std::fprintf(stderr, "error: a client failed mid-run\n");
    return 1;
  }
  if (TotalMisses != 0)
    std::fprintf(stderr,
                 "warning: %llu verdicts were re-proven on the warm path\n",
                 static_cast<unsigned long long>(TotalMisses));

  unsigned ServedJobs = Clients * Repeats;
  double ServeThroughput = ServedJobs * double(SuiteFunctions) / ServeSecs;
  std::printf("served: %2u clients x %u warm jobs each       in %6.2fs "
              "-> %9.0f verdicts/s  (%.2fx batch)\n",
              Clients, Repeats, ServeSecs, ServeThroughput,
              ServeThroughput / BatchThroughput);
  std::printf("SERVE_LOAD{\"clients\": %u, \"repeats\": %u, "
              "\"suite_functions\": %u, \"batch_s\": %.4f, \"serve_s\": %.4f, "
              "\"batch_verdicts_per_s\": %.0f, \"serve_verdicts_per_s\": "
              "%.0f}\n",
              Clients, Repeats, SuiteFunctions, BatchSecs, ServeSecs,
              BatchThroughput, ServeThroughput);

  // The acceptance bar: serving must not cost throughput on the warm path.
  // 0.9 leaves room for scheduler noise on loaded CI machines; a real
  // regression (per-job regeneration, redundant emission) lands far below.
  if (ServeThroughput < 0.9 * BatchThroughput) {
    std::fprintf(stderr,
                 "error: served warm throughput fell below the batch warm "
                 "path\n");
    return 1;
  }
  return 0;
}
