//===- fig8_sccp_rules.cpp - Reproduces Figure 8: SCCP rule ablation ---------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
// Validation rate of SCCP alone under the paper's four configurations:
// (1) no rules, (2) constant folding, (3) + φ simplification, (4) all
// rules. Expected shape: very poor with no rules, a big jump from constant
// folding, bzip2 reaching 100% once φ rules are added, SQLite only helped
// by the later rule sets.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

using namespace llvmmd;
using namespace llvmmd::bench;

int main() {
  struct Config {
    const char *Label;
    unsigned Mask;
  };
  const Config Configs[] = {
      {"1:none", RS_None},
      {"2:+constfold", RS_ConstFold | RS_Canonicalize},
      {"3:+phi", RS_ConstFold | RS_Canonicalize | RS_PhiSimplify |
                     RS_Boolean},
      {"4:all", RS_Paper},
  };

  ValidationEngine Engine; // one thread pool + verdict cache for all runs
  printHeader("Figure 8: effect of rewrite rules on SCCP validation");
  std::printf("%-12s", "program");
  for (const Config &C : Configs)
    std::printf(" %13s", C.Label);
  std::printf("\n");
  for (const BenchmarkProfile &P : getPaperSuite()) {
    std::printf("%-12s", P.Name.c_str());
    for (const Config &C : Configs) {
      RunStats S = runProfile(P, "sccp", C.Mask, &Engine);
      std::printf(" %12.1f%%", S.rate());
    }
    std::printf("\n");
  }
  std::printf("\n(paper: no rules is very poor; constant folding gives an "
              "immediate improvement; φ rules push bzip2 to 100%%)\n");
  return 0;
}
