//===- fleet_load.cpp - Fleet scaling: 2 workers vs 1 -------------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
// Measures what the fleet buys: the same set of distinct cold validation
// jobs is pushed through a 1-worker fleet and then through a 2-worker
// fleet (fresh router both times, no verdict store, so every job is a
// from-scratch engine run — the CPU-bound case the fleet exists for).
// Jobs use distinct function counts, so deduplication cannot collapse
// them and the sticky round-robin affinity spreads them across shards.
//
//   $ ./fleet_load [jobs] [clients]
//
// Defaults: 12 jobs submitted by 4 concurrent clients. Prints
// human-readable results plus one FLEET_LOAD{...} JSON line, writes the
// same object to BENCH_fleet.json, and exits nonzero when the 2-worker
// fleet delivers less than 1.6x the 1-worker throughput (the acceptance
// bar for per-core worker scaling; perfect scaling is 2.0x, the slack
// absorbs router overhead and scheduler noise).
//
//===----------------------------------------------------------------------===//

#include "fleet/FleetRouter.h"
#include "server/ServerClient.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

using namespace llvmmd;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

/// Job J is the sqlite profile at a distinct function count: distinct
/// dedup keys (no folding), near-equal sizes (no one job dominates the
/// critical path of either fleet), and large enough that cold validation
/// dwarfs the router/socket round trip.
SubmitPayload jobSubmission(unsigned J) {
  SubmitPayload Req;
  SubmitModule M;
  M.Source = SubmitProfile;
  M.Name = "sqlite";
  M.FnCount = 160 + 4 * J;
  Req.Modules.push_back(std::move(M));
  return Req;
}

/// The worker binary ships next to this one in the build tree.
std::string workerBinary(const char *Argv0) {
  std::string Self = Argv0 ? Argv0 : "";
  size_t Slash = Self.rfind('/');
  if (Slash == std::string::npos)
    return "./validate_server";
  return Self.substr(0, Slash + 1) + "validate_server";
}

/// Runs all \p Jobs through a fresh store-less fleet with \p Workers
/// worker processes, submitted by \p Clients concurrent client threads
/// (client Ci takes jobs Ci, Ci+Clients, ...). Returns the wall seconds
/// of the submission phase (fleet spawn/teardown excluded), or a
/// negative value on any failure.
double runFleet(unsigned Workers, unsigned Jobs, unsigned Clients,
                const std::string &Binary) {
  FleetConfig C;
  C.UnixPath = "fleet_load.sock";
  C.Workers = Workers;
  C.WorkerBinary = Binary;
  C.WorkerThreads = 1; // one core per worker: N workers = N cores
  FleetRouter Router(std::move(C));
  std::string Error;
  if (!Router.start(&Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return -1.0;
  }
  uint64_t Digest = Router.configDigest();

  std::vector<std::thread> Threads;
  // Per-client slots (char, not vector<bool>: distinct bytes, so the
  // client threads' writes cannot race on a shared word).
  std::vector<char> Ok(Clients, 0);
  auto Start = std::chrono::steady_clock::now();
  for (unsigned Ci = 0; Ci < Clients; ++Ci) {
    Threads.emplace_back([&, Ci] {
      ServerClient Client;
      if (!Client.connectUnix("fleet_load.sock") || !Client.handshake(Digest))
        return;
      for (unsigned J = Ci; J < Jobs; J += Clients) {
        if (!Client.submit(jobSubmission(J)))
          return;
        for (;;) {
          ServerClient::Event E;
          if (!Client.nextEvent(E))
            return;
          if (E.K == ServerClient::Event::Kind::JobDone)
            break;
          if (E.K == ServerClient::Event::Kind::Error)
            return;
        }
      }
      Ok[Ci] = 1;
    });
  }
  for (std::thread &T : Threads)
    T.join();
  double Secs = secondsSince(Start);
  Router.stop();

  for (unsigned Ci = 0; Ci < Clients; ++Ci)
    if (!Ok[Ci]) {
      std::fprintf(stderr, "error: a client failed mid-run (%u workers)\n",
                   Workers);
      return -1.0;
    }
  return Secs;
}

} // namespace

int main(int argc, char **argv) {
  unsigned Jobs = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 12;
  unsigned Clients = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 4;
  if (Jobs < 2 || Clients == 0) {
    std::fprintf(stderr, "usage: fleet_load [jobs >= 2] [clients >= 1]\n");
    return 1;
  }
  std::string Binary = workerBinary(argv[0]);

  double T1 = runFleet(1, Jobs, Clients, Binary);
  if (T1 < 0)
    return 1;
  std::printf("fleet x1: %2u cold jobs via %u clients in %6.2fs -> %6.2f "
              "jobs/s\n",
              Jobs, Clients, T1, Jobs / T1);

  double T2 = runFleet(2, Jobs, Clients, Binary);
  if (T2 < 0)
    return 1;
  double Speedup = T1 / T2;
  std::printf("fleet x2: %2u cold jobs via %u clients in %6.2fs -> %6.2f "
              "jobs/s  (%.2fx)\n",
              Jobs, Clients, T2, Jobs / T2, Speedup);

  // The gate is only meaningful when a second worker can actually get a
  // core: on a single-core box both fleets time-slice one CPU and the
  // "speedup" measures nothing but context-switch overhead. The artifact
  // records whether the gate was live so CI history stays interpretable.
  const double Threshold = 1.6;
  unsigned Cores = std::thread::hardware_concurrency();
  bool Gated = Cores >= 2;
  char Json[512];
  std::snprintf(Json, sizeof(Json),
                "{\"jobs\": %u, \"clients\": %u, \"cores\": %u, "
                "\"fleet1_s\": %.4f, \"fleet2_s\": %.4f, \"speedup\": %.3f, "
                "\"threshold\": %.2f, \"gated\": %s}",
                Jobs, Clients, Cores, T1, T2, Speedup, Threshold,
                Gated ? "true" : "false");
  std::printf("FLEET_LOAD%s\n", Json);
  if (FILE *F = std::fopen("BENCH_fleet.json", "w")) {
    std::fprintf(F, "%s\n", Json);
    std::fclose(F);
  } else {
    std::fprintf(stderr, "error: cannot write BENCH_fleet.json\n");
    return 1;
  }

  if (!Gated) {
    std::printf("note: only %u core(s) available; 2-worker scaling gate "
                "skipped\n",
                Cores);
    return 0;
  }
  // The acceptance bar: a second per-core worker must buy real
  // throughput. Falling below means the router serialized the fleet
  // (dispatch convoying, accidental dedup, affinity pinning everything
  // to one shard).
  if (Speedup < Threshold) {
    std::fprintf(stderr,
                 "error: 2-worker speedup %.2fx fell below the %.2fx bar\n",
                 Speedup, Threshold);
    return 1;
  }
  return 0;
}
