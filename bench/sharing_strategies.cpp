//===- sharing_strategies.cpp - §5.4 ablation: sharing maximization ----------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
// The paper compares its simple parallel-unification algorithm against a
// Hopcroft-style partitioning algorithm with backtracking unification, and
// reports that they validate roughly the same fraction, while running the
// simple algorithm first and falling back to partitioning does slightly
// better than either alone. This harness reproduces that comparison on the
// GVN + loop-unswitch workload (the ones that stress cycle matching).
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

using namespace llvmmd;
using namespace llvmmd::bench;

namespace {

/// Optimize + validate one profile under \p Strategy, entirely on the
/// engine: the strategy rides in EngineConfig.Rules.Strategy, and the
/// verdict cache keys on it, so one engine can serve all three ablation
/// legs without cross-talk.
RunStats runWithStrategy(const BenchmarkProfile &Profile,
                         SharingStrategy Strategy,
                         ValidationEngine &Engine) {
  RuleConfig Rules = Engine.getRules();
  Rules.Mask = RS_Paper;
  Rules.Strategy = Strategy;
  Engine.setRules(Rules);

  Context Ctx;
  auto Orig = generateBenchmark(Ctx, Profile);
  return statsFromReport(Engine.run(*Orig, "gvn,loop-unswitch").Report);
}

} // namespace

int main() {
  printHeader("§5.4: sharing maximization strategies (gvn,loop-unswitch)");
  std::printf("%-12s | %9s %9s | %9s %9s | %9s %9s\n", "program", "simple",
              "time", "partition", "time", "combined", "time");
  ValidationEngine Engine;
  unsigned T[3] = {0, 0, 0}, V[3] = {0, 0, 0};
  for (const BenchmarkProfile &P : getPaperSuite()) {
    RunStats A = runWithStrategy(P, SharingStrategy::Simple, Engine);
    RunStats B = runWithStrategy(P, SharingStrategy::Partition, Engine);
    RunStats C = runWithStrategy(P, SharingStrategy::Combined, Engine);
    T[0] += A.Transformed;
    V[0] += A.Validated;
    T[1] += B.Transformed;
    V[1] += B.Validated;
    T[2] += C.Transformed;
    V[2] += C.Validated;
    std::printf("%-12s | %8.1f%% %7.1fms | %8.1f%% %7.1fms | %8.1f%% "
                "%7.1fms\n",
                P.Name.c_str(), A.rate(), A.Microseconds / 1000.0, B.rate(),
                B.Microseconds / 1000.0, C.rate(), C.Microseconds / 1000.0);
  }
  auto Pct = [](unsigned V2, unsigned T2) {
    return T2 ? 100.0 * V2 / T2 : 100.0;
  };
  std::printf("%-12s | %8.1f%%           | %8.1f%%           | %8.1f%%\n",
              "OVERALL", Pct(V[0], T[0]), Pct(V[1], T[1]), Pct(V[2], T[2]));
  std::printf("\n(paper: both algorithms give roughly the same rate; the "
              "combination performs slightly better)\n");
  return 0;
}
