//===- rule_effectiveness.cpp - §5.3-style per-rule analysis -------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
// The paper's §5.3 analyses which rewrite rules matter. This harness runs
// the full pipeline over the whole suite and reports how often each
// individual rule fired during validation — the "work done by the
// validator is proportional to the work done by the optimizer" picture,
// broken down by rule.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "normalize/Normalizer.h"
#include "vg/GraphBuilder.h"

#include <algorithm>
#include <map>

using namespace llvmmd;
using namespace llvmmd::bench;

int main() {
  std::map<std::string, uint64_t> Fires;
  uint64_t Pairs = 0, Validated = 0, TotalRewrites = 0;

  for (const BenchmarkProfile &P : getPaperSuite()) {
    Context Ctx;
    auto Orig = generateBenchmark(Ctx, P);
    auto Opt = cloneModule(*Orig);
    PassManager PM;
    PM.parsePipeline(getPaperPipeline());
    RuleConfig Rules;
    Rules.Mask = RS_All;
    Rules.M = Orig.get();

    for (Function *FO : Opt->definedFunctions()) {
      if (!PM.run(*FO))
        continue;
      const Function *FI = Orig->getFunction(FO->getName());
      ValueGraph G;
      BuildResult A = buildValueGraph(G, *FI);
      BuildResult B = buildValueGraph(G, *FO);
      if (!A.Supported || !B.Supported)
        continue;
      ++Pairs;
      NormalizeStats S = normalizeGraph(G, {A.Ret, B.Ret}, Rules);
      TotalRewrites += S.Rewrites;
      Validated += G.find(A.Ret) == G.find(B.Ret);
      for (const auto &[Rule, N] : S.RuleFires)
        Fires[Rule] += N;
    }
  }

  printHeader("Rule effectiveness across the full pipeline (all rules on)");
  std::printf("%-28s %12s %9s\n", "rule", "fires", "share");
  std::vector<std::pair<std::string, uint64_t>> Sorted(Fires.begin(),
                                                       Fires.end());
  std::sort(Sorted.begin(), Sorted.end(),
            [](const auto &X, const auto &Y) { return X.second > Y.second; });
  for (const auto &[Rule, N] : Sorted)
    std::printf("%-28s %12llu %8.1f%%\n", Rule.c_str(),
                static_cast<unsigned long long>(N),
                TotalRewrites ? 100.0 * N / TotalRewrites : 0.0);
  std::printf("\n%llu pairs, %llu validated (%.1f%%), %llu rewrites total "
              "(%.1f per pair)\n",
              static_cast<unsigned long long>(Pairs),
              static_cast<unsigned long long>(Validated),
              Pairs ? 100.0 * Validated / Pairs : 0.0,
              static_cast<unsigned long long>(TotalRewrites),
              Pairs ? static_cast<double>(TotalRewrites) / Pairs : 0.0);
  std::printf("(the paper §4.1: a few dozen rewrites per function suffice "
              "even for large functions)\n");
  return 0;
}
