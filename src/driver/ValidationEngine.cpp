//===- ValidationEngine.cpp - Parallel batch validation ------------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//

#include "driver/ValidationEngine.h"

#include "ir/Cloning.h"
#include "ir/Module.h"
#include "opt/Pass.h"
#include "support/Hashing.h"
#include "support/Log.h"
#include "support/Telemetry.h"
#include "support/Trace.h"
#include "validator/Validator.h"

#include <atomic>
#include <cassert>
#include <chrono>
#include <cstring>
#include <map>

using namespace llvmmd;

//===----------------------------------------------------------------------===//
// Helpers
//===----------------------------------------------------------------------===//

namespace {

/// The verdict recorded for a pair whose fingerprints are equal: validated
/// without building a graph, the engine-level analogue of the §2 O(1) best
/// case.
ValidationResult identicalSkipResult() {
  ValidationResult R;
  R.Validated = true;
  R.EqualOnConstruction = true;
  return R;
}

/// Replaces \p Dst's body with a clone of \p Src's, remapping global and
/// callee references into \p DstModule (Src may live in another module of
/// the same Context).
void restoreBody(const Function &Src, Function &Dst, Module &DstModule) {
  Dst.dropBody();
  std::map<const Value *, Value *> VMap;
  cloneFunctionBody(Src, Dst, VMap);
  remapModuleReferences(Dst, DstModule);
}

uint64_t nowMicroseconds(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

/// Wall-time of one engine phase; read once when the phase ends.
class PhaseTimer {
public:
  PhaseTimer() : Start(std::chrono::steady_clock::now()) {}
  uint64_t elapsedUs() const { return nowMicroseconds(Start); }

private:
  std::chrono::steady_clock::time_point Start;
};

/// Engine-level instruments in the process registry. Registered once;
/// the references are hot-path-safe (sharded counters).
struct EngineMetrics {
  Counter &PairsValidated;
  Counter &CacheHits;
  Counter &WarmHits;
  Counter &SkippedIdentical;
  Counter &TriageRuns;
  Histogram &RunUs;
};

EngineMetrics &engineMetrics() {
  static EngineMetrics M{
      telemetry().counter("llvmmd_engine_pairs_validated_total",
                          "Function pairs validated from scratch"),
      telemetry().counter("llvmmd_engine_cache_hits_total",
                          "Verdicts replayed from cache or in-batch dedup"),
      telemetry().counter("llvmmd_engine_warm_hits_total",
                          "Cache hits replayed from the persistent store"),
      telemetry().counter("llvmmd_engine_skipped_identical_total",
                          "Fingerprint-equal pairs skipped O(1)"),
      telemetry().counter("llvmmd_engine_triage_runs_total",
                          "Rejected pairs triaged from scratch"),
      telemetry().histogram("llvmmd_engine_run_us",
                            "End-to-end engine run wall time (microseconds)",
                            defaultLatencyBoundsMicros()),
  };
  return M;
}

/// Merges per-pass wall-time deltas into the accumulated
/// EngineCacheStats breakdown, keyed by pass name.
void accumulatePassTime(std::vector<std::pair<std::string, uint64_t>> &Into,
                        const std::string &Pass, uint64_t Us) {
  for (auto &KV : Into)
    if (KV.first == Pass) {
      KV.second += Us;
      return;
    }
  Into.emplace_back(Pass, Us);
}

} // namespace

uint64_t ValidationEngine::cacheConfigDigest(const Module &OrigModule) const {
  uint64_t H = hashCombine(Cfg.Rules.Mask,
                           static_cast<uint64_t>(Cfg.Rules.Strategy));
  H = hashCombine(H, Cfg.Rules.MaxIterations);
  // Function fingerprints reference globals by name only; when the global-
  // folding rules can substitute initializers, verdicts additionally depend
  // on the module's global definitions.
  if (Cfg.Rules.Mask & RS_GlobalFold) {
    for (const auto &G : OrigModule.globals()) {
      H = hashCombine(H, hashString(G->getName()));
      H = hashCombine(H, G->isConstantGlobal());
      // The fold is gated on the global's value type matching the load.
      H = hashCombine(H, hashTypeShape(G->getValueType()));
      const Constant *Init = G->getInitializer();
      if (!Init) {
        H = hashCombine(H, 0x10);
      } else if (const auto *CI = dyn_cast<ConstantInt>(Init)) {
        H = hashCombine(H, 0x11);
        H = hashCombine(H, static_cast<uint64_t>(CI->getSExtValue()));
      } else if (const auto *CF = dyn_cast<ConstantFP>(Init)) {
        double D = CF->getValue();
        uint64_t Bits;
        std::memcpy(&Bits, &D, sizeof(Bits));
        H = hashCombine(hashCombine(H, 0x12), Bits);
      } else {
        H = hashCombine(H, static_cast<uint64_t>(Init->getKind()));
      }
    }
  }
  return H;
}

//===----------------------------------------------------------------------===//
// Batch scheduling
//===----------------------------------------------------------------------===//

/// One batch spans every module of a run or suite: jobs from all modules
/// interleave freely on the pool, while landings record which module's
/// report each verdict belongs to.
struct ValidationEngine::BatchState {
  /// CacheKey::Config per module (rules + module digest).
  std::vector<uint64_t> ConfigDigests;
  /// Rule configuration per module (Rules.M bound to that module's
  /// original); read concurrently by validation jobs.
  std::vector<RuleConfig> ModuleRules;
  std::vector<PairJob> Jobs;
  std::vector<Landing> Landings;
  struct CachedLanding {
    unsigned Mod;
    size_t Fn;
    int Step;
    ValidationResult Result;
    /// Replayed from a store-loaded entry (proven by a prior process).
    bool Warm = false;
  };
  std::vector<CachedLanding> Cached;
  /// Key -> job index, for pairs already scheduled in this batch. Duplicates
  /// share the job and land as cache hits deterministically, independent of
  /// the thread count; the key includes the config digest, so sharing across
  /// modules of a suite is sound.
  std::unordered_map<CacheKey, size_t, CacheKeyHash> Pending;
};

/// Everything the optimize phase produces for one module. Optimizer tasks
/// write only to per-function slots (report entries, snapshot modules,
/// pending-pair lists), so tasks across functions and modules never touch
/// the same memory.
struct ValidationEngine::ModuleRunState {
  const Module *Orig = nullptr;
  Module *Opt = nullptr;
  bool Stepwise = false;
  /// Stepwise: shared per-pass wall-time accumulators (one slot per
  /// pipeline pass, owned by runModules). Concurrent optimize tasks
  /// fetch_add relaxed; read after the phase barrier.
  std::atomic<uint64_t> *PassTimesUs = nullptr;
  std::vector<Function *> Defined;
  std::vector<const Function *> Origs;
  /// Stepwise: one snapshot module per function (same Context as the input)
  /// so concurrent tasks never append functions to a shared module. Alive
  /// until the revert phase has copied the certified bodies back.
  std::vector<std::unique_ptr<Module>> SnapshotModules;
  /// Per function: (pass index, snapshot) for every changing pass, so the
  /// revert phase can find the last certified body.
  std::vector<std::vector<std::pair<int, const Function *>>> SnapChains;
  /// Validation pairs discovered by the optimize phase, landed per function
  /// here and scheduled later in deterministic order.
  struct PendingPair {
    uint64_t FpA = 0, FpB = 0;
    const Function *A = nullptr;
    const Function *B = nullptr;
    int Step = -1;
  };
  std::vector<std::vector<PendingPair>> PerFn;
  ValidationReport *Report = nullptr;
};

ValidationEngine::ValidationEngine(EngineConfig Config)
    : Cfg(std::move(Config)), Pool(Cfg.Threads) {
  if (!Cfg.CachePath.empty() && Cfg.CacheLoad)
    loadCache();
}

ValidationEngine::~ValidationEngine() = default;

void ValidationEngine::clearCache() {
  Cache.clear();
  TriageCache.clear();
  Stats.Entries = 0;
  CacheDirty = false;
}

uint64_t ValidationEngine::storeConfigDigest() const {
  return verdictStoreConfigDigest(Cfg.Rules);
}

VerdictStore::LoadResult ValidationEngine::loadCache() {
  PhaseTimer Timer;
  TraceSpan Span("store_load", "store", Cfg.CachePath);
  VerdictMap Loaded;
  TriageMap LoadedTriage;
  VerdictStore::LoadResult LR = VerdictStore::load(
      Cfg.CachePath, storeConfigDigest(), Loaded, &LoadedTriage);
  Stats.StoreLoadMicroseconds += Timer.elapsedUs();
  if (!LR.loaded()) {
    // Rejections (as opposed to a simply absent store) are safe — the
    // store will be rebuilt — but must be diagnosable: a silently-empty
    // cache surfaces later as a baffling sub-100% replay rate.
    if (LR.Status != VerdictStore::LoadStatus::NoFile)
      logWarn("engine", "verdict store '" + Cfg.CachePath +
                            "' rejected, rebuilding: " + LR.Message);
    return LR;
  }
  LR.EntriesMerged = 0;
  for (auto &KV : Loaded)
    if (Cache.emplace(KV.first, CachedVerdict{std::move(KV.second), true})
            .second)
      ++LR.EntriesMerged;
  for (auto &KV : LoadedTriage)
    if (TriageCache.emplace(KV.first, CachedTriage{std::move(KV.second), true})
            .second)
      ++Stats.TriageStoreLoaded;
  Stats.StoreLoaded += LR.EntriesMerged;
  Stats.Entries = Cache.size();
  return LR;
}

bool ValidationEngine::saveCache(std::string *Error) {
  PhaseTimer Timer;
  TraceSpan Span("store_save", "store", Cfg.CachePath);
  VerdictMap Out;
  Out.reserve(Cache.size());
  for (const auto &KV : Cache)
    Out.emplace(KV.first, KV.second.Result);
  TriageMap TriageOut;
  TriageOut.reserve(TriageCache.size());
  for (const auto &KV : TriageCache)
    TriageOut.emplace(KV.first, KV.second.Stored);
  std::string LocalError;
  uint64_t Written = VerdictStore::save(Cfg.CachePath, storeConfigDigest(),
                                        Out, Error ? Error : &LocalError,
                                        /*MergeExisting=*/true, &TriageOut);
  if (Written == ~0ull) {
    // A swallowed save failure would resurface later as a baffling
    // "replay rate < 100%" on the next warm run; make the I/O error loud
    // even on the automatic save-on-report path.
    logWarn("engine",
            "verdict store not saved: " + (Error ? *Error : LocalError));
    Stats.StoreSaveMicroseconds += Timer.elapsedUs();
    return false;
  }
  Stats.StoreSaved = Written;
  Stats.StoreSaveMicroseconds += Timer.elapsedUs();
  CacheDirty = false;
  return true;
}

std::vector<std::pair<unsigned, size_t>> ValidationEngine::resolveTriageCache(
    const std::vector<std::pair<unsigned, size_t>> &Candidates,
    const std::vector<ValidationReport *> &Reports,
    const std::vector<uint64_t> &Digests,
    const std::vector<uint64_t> &OptionDigests) {
  std::vector<std::pair<unsigned, size_t>> Leftover;
  Leftover.reserve(Candidates.size());
  for (auto [Mi, Fi] : Candidates) {
    FunctionReportEntry &E = Reports[Mi]->Functions[Fi];
    // The options digest is part of the key, not just a validity stamp:
    // two modules sharing a rejected pair but mining different corpus
    // biases must hold separate entries, or they would evict each other
    // every run and never reach 100% triage replay.
    CacheKey Key{E.FingerprintOrig, E.FingerprintOpt,
                 hashCombine(Digests[Mi], OptionDigests[Mi])};
    if (Cfg.UseCache) {
      auto It = TriageCache.find(Key);
      // Digest equality re-checked as defense in depth against a
      // hashCombine collision: a mismatched entry is inert, never wrong.
      if (It != TriageCache.end() &&
          It->second.Stored.OptionsDigest == OptionDigests[Mi]) {
        E.Triage = It->second.Stored.Result;
        ++Stats.TriageHits;
        Stats.TriageWarmHits += It->second.FromStore;
        continue;
      }
    }
    Leftover.emplace_back(Mi, Fi);
  }
  return Leftover;
}

void ValidationEngine::memoizeTriage(
    const std::vector<std::pair<unsigned, size_t>> &Tasks,
    const std::vector<ValidationReport *> &Reports,
    const std::vector<uint64_t> &Digests,
    const std::vector<uint64_t> &OptionDigests) {
  Stats.TriageMisses += Tasks.size();
  if (!Cfg.UseCache)
    return;
  for (auto [Mi, Fi] : Tasks) {
    const FunctionReportEntry &E = Reports[Mi]->Functions[Fi];
    CacheKey Key{E.FingerprintOrig, E.FingerprintOpt,
                 hashCombine(Digests[Mi], OptionDigests[Mi])};
    TriageCache[Key] =
        CachedTriage{StoredTriage{OptionDigests[Mi], E.Triage}, false};
  }
  CacheDirty |= !Tasks.empty();
}

void ValidationEngine::scheduleValidation(BatchState &B, unsigned Mod,
                                          uint64_t FpA, uint64_t FpB,
                                          const Function *A,
                                          const Function *OptF, size_t Fn,
                                          int Step) {
  CacheKey Key{FpA, FpB, B.ConfigDigests[Mod]};
  if (Cfg.UseCache) {
    auto It = Cache.find(Key);
    if (It != Cache.end()) {
      B.Cached.push_back(
          {Mod, Fn, Step, It->second.Result, It->second.FromStore});
      ++Stats.Hits;
      Stats.WarmHits += It->second.FromStore;
      return;
    }
  }
  auto [PIt, Inserted] = B.Pending.try_emplace(Key, B.Jobs.size());
  if (Inserted) {
    PairJob Job;
    Job.A = A;
    Job.B = OptF;
    Job.Mod = Mod;
    Job.Key = Key;
    B.Jobs.push_back(std::move(Job));
    B.Landings.push_back({Mod, Fn, Step, PIt->second, false});
  } else {
    B.Landings.push_back({Mod, Fn, Step, PIt->second, true});
    ++Stats.Hits;
  }
}

void ValidationEngine::executeBatch(
    BatchState &B, const std::vector<ValidationReport *> &Reports) {
  Pool.parallelFor(B.Jobs.size(), [&](size_t I) {
    PairJob &Job = B.Jobs[I];
    Job.Result = validatePair(*Job.A, *Job.B, B.ModuleRules[Job.Mod]);
  });
  Stats.Misses += B.Jobs.size();

  auto Land = [&](unsigned Mod, size_t Fn, int Step,
                  const ValidationResult &Verdict, bool Hit, bool Warm) {
    ValidationResult Res = Verdict;
    // A replayed verdict spent no time now; don't bill the original pair's
    // wall time to this run's aggregates.
    if (Hit)
      Res.Microseconds = 0;
    FunctionReportEntry &E = Reports[Mod]->Functions[Fn];
    if (Step < 0) {
      E.Result = Res;
      E.Validated = Res.Validated;
      E.CacheHit = Hit;
      E.WarmHit = Warm;
    } else {
      StepReport &S = E.Steps[static_cast<size_t>(Step)];
      S.Result = Res;
      S.Validated = Res.Validated;
      S.CacheHit = Hit;
      S.WarmHit = Warm;
    }
  };
  for (const auto &C : B.Cached)
    Land(C.Mod, C.Fn, C.Step, C.Result, true, C.Warm);
  for (const auto &L : B.Landings)
    Land(L.Mod, L.Fn, L.Step, B.Jobs[L.Job].Result, L.DuplicateHit, false);

  if (Cfg.UseCache) {
    for (const PairJob &Job : B.Jobs)
      Cache.emplace(Job.Key, CachedVerdict{Job.Result, false});
    Stats.Entries = Cache.size();
    CacheDirty |= !B.Jobs.empty();
  }
}

//===----------------------------------------------------------------------===//
// Optimize phase (one task per function, runs on the pool)
//===----------------------------------------------------------------------===//

void ValidationEngine::optimizeFunction(ModuleRunState &S, size_t Fi,
                                        PassManager &PM) {
  Function *F = S.Defined[Fi];
  const Function *Orig = S.Origs[Fi];
  FunctionReportEntry &E = S.Report->Functions[Fi];
  E.Name = F->getName();
  E.FingerprintOrig = fingerprintFunction(*Orig);

  if (!S.Stepwise) {
    E.Transformed = PM.run(*F);
    if (!E.Transformed) {
      E.FingerprintOpt = E.FingerprintOrig;
      return;
    }
    E.FingerprintOpt = fingerprintFunction(*F);
    if (E.FingerprintOpt == E.FingerprintOrig) {
      E.SkippedIdentical = true;
      E.Validated = true;
      E.Result = identicalSkipResult();
      return;
    }
    S.PerFn[Fi].push_back(
        {E.FingerprintOrig, E.FingerprintOpt, Orig, F, -1});
    return;
  }

  // Stepwise: run each pass individually, snapshotting after every one
  // that changes the function, and validate consecutive snapshots.
  S.SnapshotModules[Fi] = std::make_unique<Module>(
      S.Orig->getContext(), F->getName() + ".snapshots");
  Module &Snapshots = *S.SnapshotModules[Fi];
  const Function *Prev = Orig;
  uint64_t PrevFp = E.FingerprintOrig;
  const auto &Passes = PM.passes();
  E.Steps.reserve(Passes.size());
  for (size_t Pi = 0; Pi < Passes.size(); ++Pi) {
    StepReport St;
    St.Pass = Passes[Pi]->getName();
    uint64_t PassStartUs = traceNowUs();
    PhaseTimer PassTimer;
    St.Changed = Passes[Pi]->run(*F);
    if (S.PassTimesUs)
      S.PassTimesUs[Pi].fetch_add(PassTimer.elapsedUs(),
                                  std::memory_order_relaxed);
    if (traceEnabled())
      traceCompleteEvent("pass", "optimize", PassStartUs,
                         traceNowUs() - PassStartUs,
                         St.Pass + " @ " + F->getName());
    if (St.Changed) {
      E.Transformed = true;
      uint64_t Fp = fingerprintFunction(*F);
      St.Fingerprint = Fp;
      if (Fp == PrevFp) {
        St.SkippedIdentical = true;
        St.Validated = true;
        St.Result = identicalSkipResult();
      } else {
        Function *Snap = Snapshots.createFunction(
            F->getFunctionType(), F->getName() + ".s" + std::to_string(Pi));
        std::map<const Value *, Value *> VMap;
        cloneFunctionBody(*F, *Snap, VMap);
        E.Steps.push_back(std::move(St));
        S.PerFn[Fi].push_back({PrevFp, Fp, Prev, Snap, static_cast<int>(Pi)});
        S.SnapChains[Fi].push_back({static_cast<int>(Pi), Snap});
        Prev = Snap;
        PrevFp = Fp;
        continue;
      }
    }
    E.Steps.push_back(std::move(St));
  }
  E.FingerprintOpt = PrevFp;
}

//===----------------------------------------------------------------------===//
// Module and suite runs
//===----------------------------------------------------------------------===//

EngineRun ValidationEngine::run(const Module &M, const std::string &Pipeline) {
  PassManager PM;
  bool OK = PM.parsePipeline(Pipeline);
  (void)OK;
  assert(OK && "bad pipeline");
  SuiteRun SR = runModules({&M}, Pipeline, PM);
  EngineRun Run;
  Run.Optimized = std::move(SR.Optimized.front());
  Run.Report = std::move(SR.Report.Modules.front());
  return Run;
}

EngineRun ValidationEngine::run(const Module &M, PassManager &PM) {
  std::string Name;
  for (const auto &P : PM.passes()) {
    if (!Name.empty())
      Name += ',';
    Name += P->getName();
  }
  SuiteRun SR = runModules({&M}, Name, PM);
  EngineRun Run;
  Run.Optimized = std::move(SR.Optimized.front());
  Run.Report = std::move(SR.Report.Modules.front());
  return Run;
}

SuiteRun ValidationEngine::runSuite(const std::vector<const Module *> &Modules,
                                    const std::string &Pipeline) {
  PassManager PM;
  bool OK = PM.parsePipeline(Pipeline);
  (void)OK;
  assert(OK && "bad pipeline");
  return runModules(Modules, Pipeline, PM);
}

SuiteRun ValidationEngine::runModules(const std::vector<const Module *> &Mods,
                                      const std::string &PipelineName,
                                      PassManager &ProtoPM) {
  auto Start = std::chrono::steady_clock::now();
  const bool Stepwise = Cfg.Granularity == ValidationGranularity::PerPass;
  const uint64_t HitsBefore = Stats.Hits, WarmBefore = Stats.WarmHits,
                 SkipBefore = Stats.SkippedIdentical,
                 TriageBefore = Stats.TriageMisses;

  SuiteRun SR;
  SR.Report.Pipeline = PipelineName;
  SR.Report.RuleMask = Cfg.Rules.Mask;
  SR.Report.Stepwise = Stepwise;
  SR.Report.Threads = Pool.getThreadCount();
  SR.Report.Modules.resize(Mods.size());

  BatchState B;
  std::vector<ModuleRunState> States(Mods.size());
  for (size_t Mi = 0; Mi < Mods.size(); ++Mi) {
    const Module &M = *Mods[Mi];
    ValidationReport &R = SR.Report.Modules[Mi];
    R.ModuleName = M.getName();
    R.Pipeline = PipelineName;
    R.RuleMask = Cfg.Rules.Mask;
    R.Stepwise = Stepwise;
    R.Threads = Pool.getThreadCount();

    SR.Optimized.push_back(cloneModule(M));
    ModuleRunState &S = States[Mi];
    S.Orig = &M;
    S.Opt = SR.Optimized.back().get();
    S.Stepwise = Stepwise;
    S.Report = &R;
    S.Defined = S.Opt->definedFunctions();
    S.Origs.reserve(S.Defined.size());
    for (Function *F : S.Defined) {
      const Function *Orig = M.getFunction(F->getName());
      assert(Orig && "function lost during cloning");
      S.Origs.push_back(Orig);
    }
    S.SnapshotModules.resize(S.Defined.size());
    S.SnapChains.resize(S.Defined.size());
    S.PerFn.resize(S.Defined.size());
    R.Functions.resize(S.Defined.size());

    RuleConfig MR = Cfg.Rules;
    MR.M = &M;
    B.ModuleRules.push_back(MR);
    B.ConfigDigests.push_back(cacheConfigDigest(M));
  }

  //===--------------------------------------------------------------------===//
  // Phase 1 (parallel): optimize, fingerprint, snapshot. Every (module,
  // function) task is independent: passes mutate only their function and
  // intern constants through the lock-striped Context. Each task owns a
  // PassManager clone; when the pipeline contains a pass the registry
  // cannot rebuild, fall back to a sequential loop over the caller's.
  //===--------------------------------------------------------------------===//

  std::vector<std::pair<size_t, size_t>> Tasks;
  for (size_t Mi = 0; Mi < States.size(); ++Mi)
    for (size_t Fi = 0; Fi < States[Mi].Defined.size(); ++Fi)
      Tasks.emplace_back(Mi, Fi);

  // Stepwise runs time each pass individually into these shared slots;
  // the whole-pipeline path accounts only the phase total below.
  const size_t NumPasses = ProtoPM.passes().size();
  std::vector<std::atomic<uint64_t>> PassTimesUs(Stepwise ? NumPasses : 0);
  if (Stepwise)
    for (ModuleRunState &S : States)
      S.PassTimesUs = PassTimesUs.data();

  uint64_t OptimizeUs = 0, ValidateUs = 0, StepwiseUs = 0, TriageUs = 0,
           RevertUs = 0;
  {
    PhaseTimer Timer;
    TraceSpan Span("optimize", "engine");
    if (ProtoPM.isClonable()) {
      Pool.parallelFor(Tasks.size(), [&](size_t T) {
        auto [Mi, Fi] = Tasks[T];
        std::unique_ptr<PassManager> PM = ProtoPM.clone();
        optimizeFunction(States[Mi], Fi, *PM);
      });
    } else {
      for (auto [Mi, Fi] : Tasks)
        optimizeFunction(States[Mi], Fi, ProtoPM);
    }
    OptimizeUs = Timer.elapsedUs();
  }

  //===--------------------------------------------------------------------===//
  // Phase 2 (sequential, deterministic order): account skips, resolve the
  // cache, deduplicate pairs, then validate the batch in parallel.
  //===--------------------------------------------------------------------===//

  std::vector<ValidationReport *> Reports;
  Reports.reserve(States.size());
  for (size_t Mi = 0; Mi < States.size(); ++Mi)
    Reports.push_back(States[Mi].Report);

  for (size_t Mi = 0; Mi < States.size(); ++Mi) {
    ModuleRunState &S = States[Mi];
    for (size_t Fi = 0; Fi < S.Defined.size(); ++Fi) {
      const FunctionReportEntry &E = S.Report->Functions[Fi];
      Stats.SkippedIdentical += E.SkippedIdentical;
      for (const StepReport &St : E.Steps)
        Stats.SkippedIdentical += St.SkippedIdentical;
      for (const ModuleRunState::PendingPair &P : S.PerFn[Fi])
        scheduleValidation(B, static_cast<unsigned>(Mi), P.FpA, P.FpB, P.A,
                           P.B, Fi, P.Step);
    }
  }

  {
    PhaseTimer Timer;
    TraceSpan Span("validate", "engine",
                   std::to_string(B.Jobs.size()) + " pairs");
    executeBatch(B, Reports);
    ValidateUs = Timer.elapsedUs();
  }

  //===--------------------------------------------------------------------===//
  // Phase 3 (sequential): synthesize stepwise verdicts and attribute guilt.
  //===--------------------------------------------------------------------===//

  if (Stepwise) {
    PhaseTimer Timer;
    TraceSpan Span("stepwise_synthesis", "engine");
    for (size_t Mi = 0; Mi < States.size(); ++Mi) {
      for (FunctionReportEntry &E : States[Mi].Report->Functions) {
        if (!E.Transformed)
          continue;
        ValidationResult Sum;
        Sum.Validated = true;
        for (const StepReport &St : E.Steps) {
          if (!St.Changed)
            continue;
          Sum.Rewrites += St.Result.Rewrites;
          Sum.SharingMerges += St.Result.SharingMerges;
          Sum.GraphNodes += St.Result.GraphNodes;
          Sum.LiveNodes = St.Result.LiveNodes;
          Sum.Iterations += St.Result.Iterations;
          Sum.Microseconds += St.Result.Microseconds;
          if (!St.Validated && Sum.Validated) {
            Sum.Validated = false;
            Sum.Unsupported = St.Result.Unsupported;
            Sum.Reason = "step '" + St.Pass + "': " +
                         (St.Result.Reason.empty() ? "alarm" : St.Result.Reason);
            E.GuiltyPass = St.Pass;
          }
        }
        E.Validated = Sum.Validated;
        E.Result = std::move(Sum);
      }
    }
    StepwiseUs = Timer.elapsedUs();
  }

  //===--------------------------------------------------------------------===//
  // Phase 4 (parallel): triage every rejected pair. Must precede the
  // revert phase, which overwrites the failing optimized bodies. Tasks are
  // collected in deterministic submission order and each writes only its
  // own report entry; triagePair itself is a pure function of the pair and
  // the configuration, so reports stay byte-identical for any thread
  // count. Scratch modules intern through the lock-striped Context, the
  // same isolation argument as the optimize phase.
  //===--------------------------------------------------------------------===//

  if (Cfg.Triage.Enabled) {
    PhaseTimer Timer;
    TraceSpan Span("triage", "engine");
    std::vector<std::pair<unsigned, size_t>> Candidates;
    // Resolve the corpus bias once per module (mining walks every
    // instruction) and hand the resolved value to each triagePair via a
    // per-module options copy, instead of letting every pair re-mine the
    // module. The options digest folds the same bias in, so cached
    // entries can never replay across a bias change.
    std::vector<TriageOptions> ModOpts(States.size(), Cfg.Triage);
    std::vector<uint64_t> OptionDigests;
    OptionDigests.reserve(States.size());
    for (size_t Mi = 0; Mi < States.size(); ++Mi) {
      ModOpts[Mi].Bias = resolveCorpusBias(Cfg.Triage, *States[Mi].Orig);
      OptionDigests.push_back(
          triageOptionsDigest(Cfg.Triage, ModOpts[Mi].Bias));
      const ValidationReport &R = *States[Mi].Report;
      for (size_t Fi = 0; Fi < R.Functions.size(); ++Fi) {
        const FunctionReportEntry &E = R.Functions[Fi];
        if (E.Transformed && !E.Validated)
          Candidates.emplace_back(static_cast<unsigned>(Mi), Fi);
      }
    }
    std::vector<std::pair<unsigned, size_t>> TriageTasks =
        resolveTriageCache(Candidates, Reports, B.ConfigDigests,
                           OptionDigests);
    Pool.parallelFor(TriageTasks.size(), [&](size_t I) {
      auto [Mi, Fi] = TriageTasks[I];
      ModuleRunState &S = States[Mi];
      TriagePair TP{S.Orig, S.Origs[Fi], S.Opt, S.Defined[Fi]};
      Reports[Mi]->Functions[Fi].Triage =
          triagePair(TP, B.ModuleRules[Mi], ModOpts[Mi]);
    });
    memoizeTriage(TriageTasks, Reports, B.ConfigDigests, OptionDigests);
    TriageUs = Timer.elapsedUs();
  }

  //===--------------------------------------------------------------------===//
  // Phase 5: revert failures. Targets are resolved sequentially; the
  // re-cloning runs one task per function on the pool.
  //===--------------------------------------------------------------------===//

  /// One revert task: re-clone the certified body \p Src over \p Dst in
  /// \p DstModule. Targets are resolved sequentially; the cloning itself is
  /// scheduled per function on the pool (tasks touch disjoint functions and
  /// intern through the lock-striped Context, same argument as phase 1).
  struct RevertTask {
    const Function *Src = nullptr;
    Function *Dst = nullptr;
    Module *DstModule = nullptr;
  };
  std::vector<RevertTask> Reverts;

  PhaseTimer RevertTimer;
  uint64_t RevertStartUs = traceNowUs();
  for (size_t Mi = 0; Mi < States.size(); ++Mi) {
    ModuleRunState &S = States[Mi];
    ValidationReport &R = *S.Report;

    if (Cfg.RevertFailures) {
      for (size_t Fi = 0; Fi < S.Defined.size(); ++Fi) {
        FunctionReportEntry &E = R.Functions[Fi];
        if (!E.Transformed || E.Validated)
          continue;
        // Whole-pipeline: back to the original. Stepwise: back to the last
        // snapshot certified before the guilty pass (the validated prefix of
        // the pipeline), or the original if the first change already failed.
        const Function *Target = S.Origs[Fi];
        if (Stepwise) {
          int Guilty = -1;
          for (size_t Si = 0; Si < E.Steps.size(); ++Si)
            if (E.Steps[Si].Changed && !E.Steps[Si].Validated) {
              Guilty = static_cast<int>(Si);
              break;
            }
          for (const auto &[StepIdx, Snap] : S.SnapChains[Fi])
            if (StepIdx < Guilty)
              Target = Snap;
        }
        Reverts.push_back({Target, S.Defined[Fi], S.Opt});
        E.Reverted = true;
      }
    }
  }

  Pool.parallelFor(Reverts.size(), [&](size_t I) {
    restoreBody(*Reverts[I].Src, *Reverts[I].Dst, *Reverts[I].DstModule);
  });
  RevertUs = RevertTimer.elapsedUs();
  if (traceEnabled())
    traceCompleteEvent("revert", "engine", RevertStartUs,
                       traceNowUs() - RevertStartUs);

  uint64_t StoreSaveBeforeUs = Stats.StoreSaveMicroseconds;
  if (!Cfg.CachePath.empty() && Cfg.CacheSave && CacheDirty)
    saveCache();

  SR.Report.WallMicroseconds = nowMicroseconds(Start);
  // Suite phases interleave across modules on one pool, so end-to-end wall
  // time is not attributable per module; only a single-module run owns it.
  // (Per-module validationMicroseconds() remains meaningful either way.)
  if (SR.Report.Modules.size() == 1)
    SR.Report.Modules.front().WallMicroseconds = SR.Report.WallMicroseconds;

  // Telemetry epilogue: accumulate phase wall times into the engine stats,
  // publish this run's breakdown on the report (emitters expose it only
  // behind IncludeTiming), and feed the process metrics registry. None of
  // this touches verdict-bearing fields.
  Stats.OptimizeMicroseconds += OptimizeUs;
  Stats.ValidateMicroseconds += ValidateUs;
  Stats.StepwiseMicroseconds += StepwiseUs;
  Stats.TriageMicroseconds += TriageUs;
  Stats.RevertMicroseconds += RevertUs;
  SR.Report.PhaseMicroseconds = {
      {"optimize", OptimizeUs},
      {"validate", ValidateUs},
      {"stepwise_synthesis", StepwiseUs},
      {"triage", TriageUs},
      {"revert", RevertUs},
      {"store_save", Stats.StoreSaveMicroseconds - StoreSaveBeforeUs},
  };
  for (size_t Pi = 0; Pi < PassTimesUs.size(); ++Pi) {
    uint64_t Us = PassTimesUs[Pi].load(std::memory_order_relaxed);
    const std::string &Pass = ProtoPM.passes()[Pi]->getName();
    accumulatePassTime(Stats.PassMicroseconds, Pass, Us);
    SR.Report.PhaseMicroseconds.emplace_back("pass:" + Pass, Us);
  }

  EngineMetrics &EM = engineMetrics();
  EM.PairsValidated.add(B.Jobs.size());
  EM.CacheHits.add(Stats.Hits - HitsBefore);
  EM.WarmHits.add(Stats.WarmHits - WarmBefore);
  EM.SkippedIdentical.add(Stats.SkippedIdentical - SkipBefore);
  EM.TriageRuns.add(Stats.TriageMisses - TriageBefore);
  EM.RunUs.observe(SR.Report.WallMicroseconds);
  return SR;
}

ValidationReport ValidationEngine::validateModules(const Module &Original,
                                                   const Module &Optimized) {
  auto Start = std::chrono::steady_clock::now();
  ValidationReport Report;
  Report.ModuleName = Optimized.getName();
  Report.Pipeline = "(external)";
  Report.RuleMask = Cfg.Rules.Mask;
  Report.Stepwise = false;
  Report.Threads = Pool.getThreadCount();

  BatchState B;
  B.ConfigDigests.push_back(cacheConfigDigest(Original));
  RuleConfig Rules = Cfg.Rules;
  Rules.M = &Original;
  B.ModuleRules.push_back(Rules);

  std::vector<Function *> Defined = Optimized.definedFunctions();
  /// Original-side counterparts (null when absent), kept for the triage
  /// phase below.
  std::vector<const Function *> Counterparts(Defined.size(), nullptr);
  for (size_t Fi = 0; Fi < Defined.size(); ++Fi) {
    const Function *F = Defined[Fi];
    const Function *Orig = Original.getFunction(F->getName());
    FunctionReportEntry E;
    E.Name = F->getName();
    E.FingerprintOpt = fingerprintFunction(*F);
    if (!Orig || Orig->isDeclaration()) {
      E.Transformed = true;
      E.Result.Unsupported = true;
      E.Result.Reason = "no original function of this name";
      Report.Functions.push_back(std::move(E));
      continue;
    }
    E.FingerprintOrig = fingerprintFunction(*Orig);
    if (E.FingerprintOrig == E.FingerprintOpt) {
      E.SkippedIdentical = true;
      E.Validated = true;
      E.Result = identicalSkipResult();
      ++Stats.SkippedIdentical;
      Report.Functions.push_back(std::move(E));
      continue;
    }
    E.Transformed = true;
    Counterparts[Fi] = Orig;
    Report.Functions.push_back(std::move(E));
    scheduleValidation(B, 0, Report.Functions.back().FingerprintOrig,
                       Report.Functions.back().FingerprintOpt, Orig, F, Fi,
                       -1);
  }

  std::vector<ValidationReport *> Reports{&Report};
  {
    PhaseTimer Timer;
    TraceSpan Span("validate", "engine",
                   std::to_string(B.Jobs.size()) + " pairs");
    executeBatch(B, Reports);
    Stats.ValidateMicroseconds += Timer.elapsedUs();
  }
  engineMetrics().PairsValidated.add(B.Jobs.size());

  // Triage every rejected pair, exactly like the optimize-and-validate
  // path: deterministic task order, one report slot per task, cached
  // results replayed instead of re-interpreted.
  if (Cfg.Triage.Enabled) {
    PhaseTimer Timer;
    TraceSpan Span("triage", "engine");
    std::vector<std::pair<unsigned, size_t>> Candidates;
    for (size_t Fi = 0; Fi < Defined.size(); ++Fi) {
      const FunctionReportEntry &E = Report.Functions[Fi];
      if (E.Transformed && !E.Validated && Counterparts[Fi])
        Candidates.emplace_back(0u, Fi);
    }
    // Bias resolved once (not per pair) and passed down, as in runModules.
    TriageOptions ModOpts = Cfg.Triage;
    ModOpts.Bias = resolveCorpusBias(Cfg.Triage, Original);
    std::vector<uint64_t> OptionDigests{
        triageOptionsDigest(Cfg.Triage, ModOpts.Bias)};
    std::vector<std::pair<unsigned, size_t>> TriageTasks =
        resolveTriageCache(Candidates, Reports, B.ConfigDigests,
                           OptionDigests);
    Pool.parallelFor(TriageTasks.size(), [&](size_t I) {
      size_t Fi = TriageTasks[I].second;
      TriagePair TP{&Original, Counterparts[Fi], &Optimized, Defined[Fi]};
      Report.Functions[Fi].Triage = triagePair(TP, Rules, ModOpts);
    });
    memoizeTriage(TriageTasks, Reports, B.ConfigDigests, OptionDigests);
    Stats.TriageMicroseconds += Timer.elapsedUs();
  }

  if (!Cfg.CachePath.empty() && Cfg.CacheSave && CacheDirty)
    saveCache();
  Report.WallMicroseconds = nowMicroseconds(Start);
  engineMetrics().RunUs.observe(Report.WallMicroseconds);
  return Report;
}
