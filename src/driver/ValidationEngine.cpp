//===- ValidationEngine.cpp - Parallel batch validation ------------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//

#include "driver/ValidationEngine.h"

#include "ir/Cloning.h"
#include "ir/Module.h"
#include "opt/Pass.h"
#include "support/Hashing.h"
#include "validator/Validator.h"

#include <cassert>
#include <chrono>
#include <cstring>
#include <map>

using namespace llvmmd;

//===----------------------------------------------------------------------===//
// Helpers
//===----------------------------------------------------------------------===//

namespace {

/// The verdict recorded for a pair whose fingerprints are equal: validated
/// without building a graph, the engine-level analogue of the §2 O(1) best
/// case.
ValidationResult identicalSkipResult() {
  ValidationResult R;
  R.Validated = true;
  R.EqualOnConstruction = true;
  return R;
}

/// Replaces \p Dst's body with a clone of \p Src's, remapping global and
/// callee references into \p DstModule (Src may live in another module of
/// the same Context).
void restoreBody(const Function &Src, Function &Dst, Module &DstModule) {
  Dst.dropBody();
  std::map<const Value *, Value *> VMap;
  cloneFunctionBody(Src, Dst, VMap);
  for (const auto &BB : Dst.blocks()) {
    for (Instruction *I : *BB) {
      for (unsigned OpI = 0, E = I->getNumOperands(); OpI != E; ++OpI)
        if (auto *GV = dyn_cast<GlobalVariable>(I->getOperand(OpI)))
          I->setOperand(OpI, DstModule.getGlobal(GV->getName()));
      if (auto *Call = dyn_cast<CallInst>(I))
        Call->setCallee(DstModule.getFunction(Call->getCallee()->getName()));
    }
  }
}

uint64_t nowMicroseconds(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

} // namespace

size_t ValidationEngine::CacheKeyHash::operator()(const CacheKey &K) const {
  uint64_t H = hashCombine(K.FpA, K.FpB);
  H = hashCombine(H, K.Config);
  return static_cast<size_t>(H);
}

uint64_t ValidationEngine::cacheConfigDigest(const Module &OrigModule) const {
  uint64_t H = hashCombine(Cfg.Rules.Mask,
                           static_cast<uint64_t>(Cfg.Rules.Strategy));
  H = hashCombine(H, Cfg.Rules.MaxIterations);
  // Function fingerprints reference globals by name only; when the global-
  // folding rules can substitute initializers, verdicts additionally depend
  // on the module's global definitions.
  if (Cfg.Rules.Mask & RS_GlobalFold) {
    for (const auto &G : OrigModule.globals()) {
      H = hashCombine(H, hashString(G->getName()));
      H = hashCombine(H, G->isConstantGlobal());
      // The fold is gated on the global's value type matching the load.
      H = hashCombine(H, hashTypeShape(G->getValueType()));
      const Constant *Init = G->getInitializer();
      if (!Init) {
        H = hashCombine(H, 0x10);
      } else if (const auto *CI = dyn_cast<ConstantInt>(Init)) {
        H = hashCombine(H, 0x11);
        H = hashCombine(H, static_cast<uint64_t>(CI->getSExtValue()));
      } else if (const auto *CF = dyn_cast<ConstantFP>(Init)) {
        double D = CF->getValue();
        uint64_t Bits;
        std::memcpy(&Bits, &D, sizeof(Bits));
        H = hashCombine(hashCombine(H, 0x12), Bits);
      } else {
        H = hashCombine(H, static_cast<uint64_t>(Init->getKind()));
      }
    }
  }
  return H;
}

//===----------------------------------------------------------------------===//
// Batch scheduling
//===----------------------------------------------------------------------===//

struct ValidationEngine::BatchState {
  /// CacheKey::Config for every pair in this batch (rules + module digest).
  uint64_t ConfigDigest = 0;
  std::vector<PairJob> Jobs;
  std::vector<Landing> Landings;
  struct CachedLanding {
    size_t Fn;
    int Step;
    ValidationResult Result;
  };
  std::vector<CachedLanding> Cached;
  /// Key -> job index, for pairs already scheduled in this batch. Duplicates
  /// share the job and land as cache hits deterministically, independent of
  /// the thread count.
  std::unordered_map<CacheKey, size_t, CacheKeyHash> Pending;
};

ValidationEngine::ValidationEngine(EngineConfig Config)
    : Cfg(Config), Pool(Config.Threads) {}

ValidationEngine::~ValidationEngine() = default;

void ValidationEngine::clearCache() {
  Cache.clear();
  Stats.Entries = 0;
}

void ValidationEngine::scheduleValidation(BatchState &B, uint64_t FpA,
                                          uint64_t FpB, const Function *A,
                                          const Function *OptF, size_t Fn,
                                          int Step) {
  CacheKey Key{FpA, FpB, B.ConfigDigest};
  if (Cfg.UseCache) {
    auto It = Cache.find(Key);
    if (It != Cache.end()) {
      B.Cached.push_back({Fn, Step, It->second});
      ++Stats.Hits;
      return;
    }
  }
  auto [PIt, Inserted] = B.Pending.try_emplace(Key, B.Jobs.size());
  if (Inserted) {
    PairJob Job;
    Job.A = A;
    Job.B = OptF;
    Job.Key = Key;
    B.Jobs.push_back(std::move(Job));
    B.Landings.push_back({Fn, Step, PIt->second, false});
  } else {
    B.Landings.push_back({Fn, Step, PIt->second, true});
    ++Stats.Hits;
  }
}

void ValidationEngine::executeBatch(BatchState &B, const RuleConfig &Rules,
                                    ValidationReport &Report) {
  Pool.parallelFor(B.Jobs.size(), [&](size_t I) {
    B.Jobs[I].Result = validatePair(*B.Jobs[I].A, *B.Jobs[I].B, Rules);
  });
  Stats.Misses += B.Jobs.size();

  auto Land = [&](size_t Fn, int Step, const ValidationResult &Verdict,
                  bool Hit) {
    ValidationResult Res = Verdict;
    // A replayed verdict spent no time now; don't bill the original pair's
    // wall time to this run's aggregates.
    if (Hit)
      Res.Microseconds = 0;
    FunctionReportEntry &E = Report.Functions[Fn];
    if (Step < 0) {
      E.Result = Res;
      E.Validated = Res.Validated;
      E.CacheHit = Hit;
    } else {
      StepReport &S = E.Steps[static_cast<size_t>(Step)];
      S.Result = Res;
      S.Validated = Res.Validated;
      S.CacheHit = Hit;
    }
  };
  for (const auto &C : B.Cached)
    Land(C.Fn, C.Step, C.Result, true);
  for (const auto &L : B.Landings)
    Land(L.Fn, L.Step, B.Jobs[L.Job].Result, L.DuplicateHit);

  if (Cfg.UseCache) {
    for (const PairJob &Job : B.Jobs)
      Cache.emplace(Job.Key, Job.Result);
    Stats.Entries = Cache.size();
  }
}

//===----------------------------------------------------------------------===//
// Module runs
//===----------------------------------------------------------------------===//

EngineRun ValidationEngine::run(const Module &M, const std::string &Pipeline) {
  PassManager PM;
  bool OK = PM.parsePipeline(Pipeline);
  (void)OK;
  assert(OK && "bad pipeline");
  return runImpl(M, PM, Pipeline);
}

EngineRun ValidationEngine::run(const Module &M, PassManager &PM) {
  std::string Name;
  for (const auto &P : PM.passes()) {
    if (!Name.empty())
      Name += ',';
    Name += P->getName();
  }
  return runImpl(M, PM, Name);
}

EngineRun ValidationEngine::runImpl(const Module &M, PassManager &PM,
                                    const std::string &PipelineName) {
  auto Start = std::chrono::steady_clock::now();
  const bool Stepwise = Cfg.Granularity == ValidationGranularity::PerPass;

  EngineRun Run;
  Run.Report.ModuleName = M.getName();
  Run.Report.Pipeline = PipelineName;
  Run.Report.RuleMask = Cfg.Rules.Mask;
  Run.Report.Stepwise = Stepwise;
  Run.Report.Threads = Pool.getThreadCount();

  RuleConfig Rules = Cfg.Rules;
  Rules.M = &M;

  // Graph construction interns i1 in the shared Context on demand; warm it
  // now so the parallel phase never mutates the Context.
  M.getContext().getInt1Ty();

  Run.Optimized = cloneModule(M);
  // Stepwise snapshots live here: same Context, so validatePair can compare
  // across modules. Destroyed before Run.Optimized (reverse declaration
  // order does not apply — this is a local, freed when runImpl returns,
  // while the optimized module is moved out alive).
  Module Snapshots(M.getContext(), M.getName() + ".snapshots");
  // Per function: (pass index, snapshot) for every changing pass, so the
  // revert phase can find the last certified body.
  std::vector<std::vector<std::pair<int, const Function *>>> SnapChains;

  BatchState B;
  B.ConfigDigest = cacheConfigDigest(M);

  //===--------------------------------------------------------------------===//
  // Phase 1 (sequential): optimize, fingerprint, snapshot, schedule.
  // Passes intern constants in the shared Context, so this cannot overlap
  // with validation.
  //===--------------------------------------------------------------------===//

  std::vector<Function *> Defined = Run.Optimized->definedFunctions();
  SnapChains.resize(Defined.size());
  for (size_t Fi = 0; Fi < Defined.size(); ++Fi) {
    Function *F = Defined[Fi];
    const Function *Orig = M.getFunction(F->getName());
    assert(Orig && "function lost during cloning");

    FunctionReportEntry E;
    E.Name = F->getName();
    E.FingerprintOrig = fingerprintFunction(*Orig);

    if (!Stepwise) {
      E.Transformed = PM.run(*F);
      if (!E.Transformed) {
        E.FingerprintOpt = E.FingerprintOrig;
        Run.Report.Functions.push_back(std::move(E));
        continue;
      }
      E.FingerprintOpt = fingerprintFunction(*F);
      if (E.FingerprintOpt == E.FingerprintOrig) {
        E.SkippedIdentical = true;
        E.Validated = true;
        E.Result = identicalSkipResult();
        ++Stats.SkippedIdentical;
        Run.Report.Functions.push_back(std::move(E));
        continue;
      }
      Run.Report.Functions.push_back(std::move(E));
      scheduleValidation(B, Run.Report.Functions.back().FingerprintOrig,
                         Run.Report.Functions.back().FingerprintOpt, Orig, F,
                         Fi, -1);
      continue;
    }

    // Stepwise: run each pass individually, snapshotting after every one
    // that changes the function, and validate consecutive snapshots.
    const Function *Prev = Orig;
    uint64_t PrevFp = E.FingerprintOrig;
    const auto &Passes = PM.passes();
    E.Steps.reserve(Passes.size());
    Run.Report.Functions.push_back(std::move(E));
    FunctionReportEntry &Entry = Run.Report.Functions.back();
    for (size_t Pi = 0; Pi < Passes.size(); ++Pi) {
      StepReport S;
      S.Pass = Passes[Pi]->getName();
      S.Changed = Passes[Pi]->run(*F);
      if (S.Changed) {
        Entry.Transformed = true;
        uint64_t Fp = fingerprintFunction(*F);
        S.Fingerprint = Fp;
        if (Fp == PrevFp) {
          S.SkippedIdentical = true;
          S.Validated = true;
          S.Result = identicalSkipResult();
          ++Stats.SkippedIdentical;
        } else {
          Function *Snap = Snapshots.createFunction(
              F->getFunctionType(), F->getName() + ".s" + std::to_string(Pi));
          std::map<const Value *, Value *> VMap;
          cloneFunctionBody(*F, *Snap, VMap);
          Entry.Steps.push_back(std::move(S));
          scheduleValidation(B, PrevFp, Fp, Prev, Snap, Fi,
                             static_cast<int>(Pi));
          SnapChains[Fi].push_back({static_cast<int>(Pi), Snap});
          Prev = Snap;
          PrevFp = Fp;
          continue;
        }
      }
      Entry.Steps.push_back(std::move(S));
    }
    Entry.FingerprintOpt = PrevFp;
  }

  //===--------------------------------------------------------------------===//
  // Phase 2 (parallel): validate all unique, uncached pairs.
  //===--------------------------------------------------------------------===//

  executeBatch(B, Rules, Run.Report);

  //===--------------------------------------------------------------------===//
  // Phase 3 (sequential): synthesize stepwise verdicts, attribute guilt,
  // revert failures.
  //===--------------------------------------------------------------------===//

  if (Stepwise) {
    for (FunctionReportEntry &E : Run.Report.Functions) {
      if (!E.Transformed)
        continue;
      ValidationResult Sum;
      Sum.Validated = true;
      for (const StepReport &S : E.Steps) {
        if (!S.Changed)
          continue;
        Sum.Rewrites += S.Result.Rewrites;
        Sum.SharingMerges += S.Result.SharingMerges;
        Sum.GraphNodes += S.Result.GraphNodes;
        Sum.LiveNodes = S.Result.LiveNodes;
        Sum.Iterations += S.Result.Iterations;
        Sum.Microseconds += S.Result.Microseconds;
        if (!S.Validated && Sum.Validated) {
          Sum.Validated = false;
          Sum.Unsupported = S.Result.Unsupported;
          Sum.Reason = "step '" + S.Pass + "': " +
                       (S.Result.Reason.empty() ? "alarm" : S.Result.Reason);
          E.GuiltyPass = S.Pass;
        }
      }
      E.Validated = Sum.Validated;
      E.Result = std::move(Sum);
    }
  }

  if (Cfg.RevertFailures) {
    for (size_t Fi = 0; Fi < Defined.size(); ++Fi) {
      FunctionReportEntry &E = Run.Report.Functions[Fi];
      if (!E.Transformed || E.Validated)
        continue;
      // Whole-pipeline: back to the original. Stepwise: back to the last
      // snapshot certified before the guilty pass (the validated prefix of
      // the pipeline), or the original if the first change already failed.
      const Function *Target = M.getFunction(E.Name);
      if (Stepwise) {
        int Guilty = -1;
        for (size_t Si = 0; Si < E.Steps.size(); ++Si)
          if (E.Steps[Si].Changed && !E.Steps[Si].Validated) {
            Guilty = static_cast<int>(Si);
            break;
          }
        for (const auto &[StepIdx, Snap] : SnapChains[Fi])
          if (StepIdx < Guilty)
            Target = Snap;
      }
      restoreBody(*Target, *Defined[Fi], *Run.Optimized);
      E.Reverted = true;
    }
  }

  Run.Report.WallMicroseconds = nowMicroseconds(Start);
  return Run;
}

ValidationReport ValidationEngine::validateModules(const Module &Original,
                                                   const Module &Optimized) {
  auto Start = std::chrono::steady_clock::now();
  ValidationReport Report;
  Report.ModuleName = Optimized.getName();
  Report.Pipeline = "(external)";
  Report.RuleMask = Cfg.Rules.Mask;
  Report.Stepwise = false;
  Report.Threads = Pool.getThreadCount();

  RuleConfig Rules = Cfg.Rules;
  Rules.M = &Original;
  Original.getContext().getInt1Ty();

  BatchState B;
  B.ConfigDigest = cacheConfigDigest(Original);
  std::vector<Function *> Defined = Optimized.definedFunctions();
  for (size_t Fi = 0; Fi < Defined.size(); ++Fi) {
    const Function *F = Defined[Fi];
    const Function *Orig = Original.getFunction(F->getName());
    FunctionReportEntry E;
    E.Name = F->getName();
    E.FingerprintOpt = fingerprintFunction(*F);
    if (!Orig || Orig->isDeclaration()) {
      E.Transformed = true;
      E.Result.Unsupported = true;
      E.Result.Reason = "no original function of this name";
      Report.Functions.push_back(std::move(E));
      continue;
    }
    E.FingerprintOrig = fingerprintFunction(*Orig);
    if (E.FingerprintOrig == E.FingerprintOpt) {
      E.SkippedIdentical = true;
      E.Validated = true;
      E.Result = identicalSkipResult();
      ++Stats.SkippedIdentical;
      Report.Functions.push_back(std::move(E));
      continue;
    }
    E.Transformed = true;
    Report.Functions.push_back(std::move(E));
    scheduleValidation(B, Report.Functions.back().FingerprintOrig,
                       Report.Functions.back().FingerprintOpt, Orig, F, Fi,
                       -1);
  }

  executeBatch(B, Rules, Report);
  Report.WallMicroseconds = nowMicroseconds(Start);
  return Report;
}
