//===- ThreadPool.h - Work-stealing thread pool -----------------*- C++ -*-===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size pool of persistent workers used by the validation engine to
/// run independent function-pair validations in parallel. Each worker owns a
/// job deque; it pops its own work LIFO and steals FIFO from siblings, so
/// one pathologically slow pair (the paper's gcc outliers) cannot strand the
/// rest of the batch behind it.
///
/// Scheduling order never affects results: jobs write to disjoint
/// preallocated slots, so the caller's aggregation is deterministic
/// regardless of thread count.
///
//===----------------------------------------------------------------------===//

#ifndef LLVMMD_DRIVER_THREADPOOL_H
#define LLVMMD_DRIVER_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace llvmmd {

class ThreadPool {
public:
  /// Spawns \p ThreadCount workers; 0 means one per hardware thread.
  explicit ThreadPool(unsigned ThreadCount = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned getThreadCount() const {
    return static_cast<unsigned>(Workers.size());
  }

  /// Runs Body(I) for every I in [0, N) across the pool and blocks until all
  /// calls have returned. Not reentrant: Body must not call parallelFor on
  /// the same pool.
  void parallelFor(size_t N, const std::function<void(size_t)> &Body);

private:
  struct WorkerQueue {
    std::mutex Lock;
    std::deque<size_t> Jobs;
  };

  void workerLoop(unsigned Id);
  /// Pops a job for worker \p Id: own deque back first, then steals from a
  /// sibling's front. Returns false when no work is visible anywhere.
  bool popJob(unsigned Id, size_t &Job);

  std::vector<std::unique_ptr<WorkerQueue>> Queues;
  std::vector<std::thread> Workers;

  std::mutex Lock;
  std::condition_variable WorkCV; ///< workers wait here between batches
  std::condition_variable DoneCV; ///< parallelFor waits here for completion
  const std::function<void(size_t)> *Body = nullptr;
  size_t Remaining = 0;    ///< jobs not yet finished in the current batch
  size_t ActiveWorkers = 0; ///< workers currently inside their pop loop
  uint64_t Generation = 0;  ///< bumped once per parallelFor batch
  bool ShuttingDown = false;
};

} // namespace llvmmd

#endif // LLVMMD_DRIVER_THREADPOOL_H
