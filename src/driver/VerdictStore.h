//===- VerdictStore.h - Persistent cross-process verdict store --*- C++ -*-===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The persistent half of the engine's verdict cache. Function fingerprints
/// are byte-stable across runs, so a verdict proven in one process is just
/// as valid in the next — the store serializes the memo table
/// `(fp_orig, fp_opt, config) -> ValidationResult` to a versioned binary
/// file and merges it back on load, which turns repeated CI validations of
/// the same compiler output into pure replays.
///
/// Safety over convenience:
///  * the header carries a magic, a format version, and a config digest
///    (rule mask, sharing strategy, fixpoint budget, plus a semantics salt
///    bumped whenever validator behavior changes); anything mismatched is
///    *rejected* — the caller rebuilds from scratch rather than replaying
///    verdicts proven under different rules. Per-module state (the globals
///    digest RS_GlobalFold depends on) is part of every entry's key, so
///    entries from other modules are inert rather than wrong.
///  * every shard payload is checksummed and the shard index carries its
///    own hash; a truncated or bit-flipped file loads as Corrupt, never as
///    a partial cache.
///  * saves are atomic (write temp + rename), merge the current on-disk
///    contents first, and serialize against each other via an advisory
///    lock on `<path>.lock`, so concurrent shards writing the same path
///    union their verdicts (last writer wins per key) instead of
///    clobbering or losing each other's updates.
///  * since v3 the payload is split into page-aligned shards partitioned by
///    the entry key's Config field — the per-module digest folds into
///    Config, so one module's verdicts land in one shard. A
///    MappedVerdictStore mmaps the file (when the platform has mmap) and
///    materializes shards lazily on first lookup: probing a store for one
///    module's verdicts touches the index page plus that module's shard
///    pages, not the whole file.
///
//===----------------------------------------------------------------------===//

#ifndef LLVMMD_DRIVER_VERDICTSTORE_H
#define LLVMMD_DRIVER_VERDICTSTORE_H

#include "triage/Triage.h"
#include "validator/Validator.h"

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace llvmmd {

struct RuleConfig;

/// What one memoized verdict is keyed on: both structural fingerprints plus
/// everything else the verdict depends on (rule mask, sharing strategy,
/// fixpoint budget, and the module-globals digest when RS_GlobalFold can
/// read initializers). Shared between the in-memory cache and the store.
struct VerdictKey {
  uint64_t FpA = 0, FpB = 0;
  uint64_t Config = 0;
  bool operator==(const VerdictKey &O) const {
    return FpA == O.FpA && FpB == O.FpB && Config == O.Config;
  }
};

struct VerdictKeyHash {
  size_t operator()(const VerdictKey &K) const;
};

using VerdictMap =
    std::unordered_map<VerdictKey, ValidationResult, VerdictKeyHash>;

/// One memoized triage outcome, stored next to the verdict it explains:
/// same fingerprint pair, with the key's Config additionally folding in
/// the triage-options digest (triageOptionsDigest: corpus size, budgets,
/// resolved corpus bias) so two modules that share a rejected pair but
/// mine different biases hold separate entries. The digest also rides
/// along in the value and is re-checked on replay — a mismatched entry is
/// inert, never wrong.
struct StoredTriage {
  uint64_t OptionsDigest = 0;
  TriageResult Result;
};

using TriageMap = std::unordered_map<VerdictKey, StoredTriage, VerdictKeyHash>;

/// Digest of everything engine-global a replayed verdict depends on: rule
/// mask, sharing strategy, fixpoint budget, and the store's semantics salt.
/// This is the store header's compatibility gate; per-module inputs are
/// digested into each entry's key instead.
uint64_t verdictStoreConfigDigest(const RuleConfig &Rules);

class VerdictStore {
public:
  /// On-disk layout version. Bump when the serialized shape changes.
  /// v2 appended the triage section (entries keyed like verdicts, carrying
  /// the full TriageResult plus its options digest); v3 restructured the
  /// payload into page-aligned, per-module shards behind an index header.
  /// v3 is written; v2 is still read (and rewritten as v3 on the next
  /// save); v1 stores are rejected as BadVersion and rebuilt.
  static constexpr uint32_t FormatVersion = 3;
  /// Shard payloads start on multiples of this and the index is sized to
  /// it, so mapping one shard touches only its own pages.
  static constexpr size_t PageBytes = 4096;
  /// Folded into every config digest; bump when validator *behavior*
  /// changes in a way old verdicts must not survive (new rules, fingerprint
  /// algorithm changes, ...). Orthogonal to FormatVersion, which only
  /// covers the byte layout.
  static constexpr uint64_t SemanticsSalt = 0x6c6d642d76312e30ULL; // "lmd-v1.0"

  enum class LoadStatus : uint8_t {
    Loaded,         ///< entries merged into the map
    NoFile,         ///< nothing at the path (fresh start, not an error)
    BadMagic,       ///< not a verdict store
    BadVersion,     ///< serialized with a different FormatVersion
    ConfigMismatch, ///< produced under a different rule configuration
    Corrupt,        ///< truncated file or checksum failure
  };

  struct LoadResult {
    LoadStatus Status = LoadStatus::NoFile;
    uint64_t EntriesInFile = 0; ///< entries the file claims to hold
    uint64_t EntriesMerged = 0; ///< entries actually added to the map
    std::string Message;        ///< human-readable detail on rejection
    bool loaded() const { return Status == LoadStatus::Loaded; }
  };

  /// Loads the store at \p Path and merges its entries into \p Map (and,
  /// when \p Triage is non-null, its triage section into \p *Triage). Keys
  /// already present keep their in-memory value (the current process has
  /// fresher information). On any rejection both maps are left untouched.
  static LoadResult load(const std::string &Path, uint64_t ConfigDigest,
                         VerdictMap &Map, TriageMap *Triage = nullptr);

  /// Atomically replaces the store at \p Path with \p Map: serialize to a
  /// sibling temp file, then rename over the target. When \p MergeExisting
  /// (the default), a loadable on-disk store with the same digest is folded
  /// in first — in-memory entries win per key — so two engines saving to
  /// the same path union their verdicts instead of clobbering. \p Triage,
  /// when non-null, is written (and merged) the same way. Returns the
  /// number of verdict entries written, or ~0ull on I/O failure (with
  /// \p Error set).
  static uint64_t save(const std::string &Path, uint64_t ConfigDigest,
                       const VerdictMap &Map, std::string *Error = nullptr,
                       bool MergeExisting = true,
                       const TriageMap *Triage = nullptr);

  /// Serializes \p Map (+ optional triage section) to the store byte format
  /// (header included). Exposed for tests that need to corrupt specific
  /// offsets.
  static std::string serialize(uint64_t ConfigDigest, const VerdictMap &Map,
                               const TriageMap *Triage = nullptr);

  /// The canonical per-worker shard path under a fleet base store:
  /// `<base>.shard<index>`. Kept here (not in src/fleet/) so offline tools
  /// and the fleet agree on the naming forever.
  static std::string shardPath(const std::string &BasePath, unsigned Index);

  /// Header-only inspection without touching entry payloads (the checksum
  /// IS verified — a corrupt store should say so, not report a count).
  struct HeaderInfo {
    LoadStatus Status = LoadStatus::NoFile;
    uint32_t Version = 0;
    uint32_t ShardCount = 0; ///< 0 for v2 stores (single flat payload)
    uint64_t ConfigDigest = 0;
    uint64_t VerdictEntries = 0;
    uint64_t TriageEntries = 0;
    uint64_t FileBytes = 0;
    std::string Message;
    bool ok() const { return Status == LoadStatus::Loaded; }
  };

  /// Reads \p Path's header (any config digest accepted — the caller is
  /// inspecting, not replaying). Status mirrors load(): BadMagic/BadVersion/
  /// Corrupt on rejection, Loaded when the header and checksums hold. For a
  /// v3 store the entry counts come straight from the index — no entry is
  /// parsed — but every shard checksum is still verified: inspection stays
  /// honest about damage.
  static HeaderInfo peekHeader(const std::string &Path);

  /// One v3 shard's slot in the index, for occupancy inspection
  /// (`store_tool --stats`). Offsets/bytes are the on-disk payload (the
  /// page padding between shards is derivable from the next offset);
  /// ChecksumOk is the shard's payload hash verified against the file.
  struct ShardStats {
    uint64_t Offset = 0;
    uint64_t Bytes = 0;
    uint64_t VerdictEntries = 0;
    uint64_t TriageEntries = 0;
    bool ChecksumOk = false;
  };

  /// Per-shard occupancy of the v3 store at \p Path, in index order. Unlike
  /// peekHeader a damaged shard does not reject the whole inspection: the
  /// bad shard reports ChecksumOk=false and \p Info (when given) comes back
  /// Corrupt, but every shard's index record is still returned — exactly
  /// what "which shard is hurt, how much is lost" needs. A v2 store (no
  /// shards) or an unreadable header yields an empty vector with \p Info
  /// carrying the peekHeader-style status.
  static std::vector<ShardStats> peekShards(const std::string &Path,
                                            HeaderInfo *Info = nullptr);

  /// Offline union of \p Inputs into \p OutPath: every input must load
  /// under \p ConfigDigest (earlier inputs win per key, matching
  /// merge-on-save's in-memory-wins rule when inputs are ordered
  /// freshest-first). Returns the number of verdict entries written, or
  /// ~0ull with \p Error set when any input is rejected or the write fails.
  static uint64_t mergePaths(const std::vector<std::string> &Inputs,
                             const std::string &OutPath, uint64_t ConfigDigest,
                             std::string *Error = nullptr);
};

/// Read-only view of a store that materializes shards lazily: open() maps
/// the file (mmap on POSIX, a plain read elsewhere) and verifies only the
/// header and shard index; a lookup verifies and parses just the shard its
/// key hashes to, the first time any key lands there. A warm probe against
/// an N-module store therefore costs O(index pages + pages of the shards
/// actually hit), while load() always pays for the whole file.
///
/// The config digest is gated at open() exactly like load(). A shard whose
/// checksum fails materializes as empty (lookups miss; the caller re-proves
/// — wrong answers are impossible, only wasted work). v2 stores are served
/// through the same interface by materializing the flat payload eagerly.
///
/// Not thread-safe: confine one instance to one thread.
class MappedVerdictStore {
public:
  /// Opens \p Path; returns null (with \p Out describing why, when given)
  /// unless the header, index, and digest all check out.
  static std::unique_ptr<MappedVerdictStore>
  open(const std::string &Path, uint64_t ConfigDigest,
       VerdictStore::LoadResult *Out = nullptr);
  ~MappedVerdictStore();
  MappedVerdictStore(const MappedVerdictStore &) = delete;
  MappedVerdictStore &operator=(const MappedVerdictStore &) = delete;

  /// The stored verdict for \p K, or null. Materializes K's shard on first
  /// touch. The pointer lives as long as this object.
  const ValidationResult *lookup(const VerdictKey &K);
  /// The stored triage outcome for \p K, or null.
  const StoredTriage *lookupTriage(const VerdictKey &K);

  unsigned numShards() const;
  /// How many shards have been verified + parsed so far (the laziness
  /// observable the tests and benches assert on).
  unsigned shardsMaterialized() const;
  uint64_t verdictEntriesInFile() const;

private:
  MappedVerdictStore();
  struct Impl;
  std::unique_ptr<Impl> I;
};

} // namespace llvmmd

#endif // LLVMMD_DRIVER_VERDICTSTORE_H
