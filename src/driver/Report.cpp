//===- Report.cpp - Validation engine report emitters -------------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//

#include "driver/Report.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <sstream>

using namespace llvmmd;

//===----------------------------------------------------------------------===//
// Aggregates
//===----------------------------------------------------------------------===//

unsigned ValidationReport::total() const {
  return static_cast<unsigned>(Functions.size());
}

unsigned ValidationReport::transformed() const {
  unsigned N = 0;
  for (const auto &F : Functions)
    N += F.Transformed;
  return N;
}

unsigned ValidationReport::validated() const {
  unsigned N = 0;
  for (const auto &F : Functions)
    N += F.Transformed && F.Validated;
  return N;
}

unsigned ValidationReport::reverted() const {
  unsigned N = 0;
  for (const auto &F : Functions)
    N += F.Reverted;
  return N;
}

unsigned ValidationReport::cacheHits() const {
  unsigned N = 0;
  for (const auto &F : Functions) {
    N += F.CacheHit;
    for (const auto &S : F.Steps)
      N += S.CacheHit;
  }
  return N;
}

unsigned ValidationReport::warmHits() const {
  unsigned N = 0;
  for (const auto &F : Functions) {
    N += F.WarmHit;
    for (const auto &S : F.Steps)
      N += S.WarmHit;
  }
  return N;
}

unsigned ValidationReport::skippedIdentical() const {
  unsigned N = 0;
  for (const auto &F : Functions) {
    N += F.SkippedIdentical;
    for (const auto &S : F.Steps)
      N += S.SkippedIdentical;
  }
  return N;
}

unsigned ValidationReport::unsupportedFunctions() const {
  return static_cast<unsigned>(UnsupportedFunctions.size());
}

unsigned ValidationReport::witnessed() const {
  unsigned N = 0;
  for (const auto &F : Functions)
    N += F.Triage.Classification == TriageClassification::MiscompileWitnessed;
  return N;
}

unsigned ValidationReport::suspectedFalseAlarms() const {
  unsigned N = 0;
  for (const auto &F : Functions)
    N += F.Triage.Classification == TriageClassification::SuspectedFalseAlarm;
  return N;
}

namespace {

/// Shared tallying for the module- and suite-level missing-rule tables.
void tallyMissingRules(const ValidationReport &R,
                       std::map<std::string, unsigned> &Counts) {
  for (const auto &F : R.Functions) {
    const TriageResult &T = F.Triage;
    if (T.Classification == TriageClassification::NotRun)
      continue;
    if (!T.MissingRule.empty())
      ++Counts[T.MissingRule];
    else if (T.ClosedByAllRules)
      ++Counts["(combined)"];
  }
}

/// "Pays most" order: count descending, then name ascending so ties are
/// deterministic.
std::vector<std::pair<std::string, unsigned>>
rankMissingRules(const std::map<std::string, unsigned> &Counts) {
  std::vector<std::pair<std::string, unsigned>> Ranked(Counts.begin(),
                                                       Counts.end());
  std::sort(Ranked.begin(), Ranked.end(), [](const auto &A, const auto &B) {
    if (A.second != B.second)
      return A.second > B.second;
    return A.first < B.first;
  });
  return Ranked;
}

} // namespace

std::vector<std::pair<std::string, unsigned>>
ValidationReport::missingRuleCounts() const {
  std::map<std::string, unsigned> Counts;
  tallyMissingRules(*this, Counts);
  return rankMissingRules(Counts);
}

uint64_t ValidationReport::rewrites() const {
  uint64_t N = 0;
  for (const auto &F : Functions)
    N += F.Result.Rewrites;
  return N;
}

uint64_t ValidationReport::graphNodes() const {
  uint64_t N = 0;
  for (const auto &F : Functions)
    N += F.Result.GraphNodes;
  return N;
}

uint64_t ValidationReport::validationMicroseconds() const {
  uint64_t N = 0;
  for (const auto &F : Functions) {
    N += F.Result.Microseconds;
    // In stepwise mode the synthesized Result already sums the steps.
  }
  return N;
}

double ValidationReport::validationRate() const {
  unsigned T = transformed();
  return T == 0 ? 1.0 : static_cast<double>(validated()) / T;
}

//===----------------------------------------------------------------------===//
// Text
//===----------------------------------------------------------------------===//

namespace {

const char *functionStatus(const FunctionReportEntry &F) {
  if (!F.Transformed)
    return "unchanged";
  if (F.SkippedIdentical)
    return "identical (skipped)";
  if (F.Validated)
    return F.WarmHit    ? "VALIDATED (warm)"
           : F.CacheHit ? "VALIDATED (cached)"
                        : "VALIDATED";
  return F.Reverted ? "FAILED -> reverted" : "FAILED";
}

} // namespace

std::string llvmmd::reportToText(const ValidationReport &R) {
  std::ostringstream OS;
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf),
                "validation report: module '%s', pipeline '%s' (%s)\n",
                R.ModuleName.c_str(), R.Pipeline.c_str(),
                R.Stepwise ? "stepwise" : "whole-pipeline");
  OS << Buf;
  std::snprintf(Buf, sizeof(Buf),
                "  %u functions, %u transformed, %u validated (%.1f%%), "
                "%u reverted\n",
                R.total(), R.transformed(), R.validated(),
                100.0 * R.validationRate(), R.reverted());
  OS << Buf;
  std::snprintf(Buf, sizeof(Buf),
                "  %u cache hits (%u warm), %u identical skips, %" PRIu64
                " rewrites, %" PRIu64 " graph nodes\n",
                R.cacheHits(), R.warmHits(), R.skippedIdentical(),
                R.rewrites(), R.graphNodes());
  OS << Buf;
  if (R.unsupportedFunctions() > 0) {
    std::snprintf(Buf, sizeof(Buf),
                  "  %u function(s) rejected by the ingest frontend:\n",
                  R.unsupportedFunctions());
    OS << Buf;
    for (const auto &U : R.UnsupportedFunctions) {
      OS << "    " << U.Function << ": " << U.Reason;
      if (!U.Detail.empty())
        OS << " (" << U.Detail << ')';
      OS << '\n';
    }
  }
  if (R.witnessed() + R.suspectedFalseAlarms() > 0) {
    std::snprintf(Buf, sizeof(Buf),
                  "  triage: %u miscompiles witnessed, %u suspected false "
                  "alarms\n",
                  R.witnessed(), R.suspectedFalseAlarms());
    OS << Buf;
    auto Missing = R.missingRuleCounts();
    if (!Missing.empty()) {
      OS << "  missing rules:";
      for (size_t I = 0; I < Missing.size(); ++I)
        OS << (I ? ", " : " ") << Missing[I].first << " x"
           << Missing[I].second;
      OS << '\n';
    }
  }
  // Multi-module suite runs interleave on one pool and leave per-module
  // wall time unattributed (zero); only validation time is per-module then.
  if (R.WallMicroseconds)
    std::snprintf(Buf, sizeof(Buf),
                  "  %.2f ms wall on %u threads (%.2f ms of validation)\n",
                  R.WallMicroseconds / 1000.0, R.Threads,
                  R.validationMicroseconds() / 1000.0);
  else
    std::snprintf(Buf, sizeof(Buf), "  %.2f ms of validation on %u threads\n",
                  R.validationMicroseconds() / 1000.0, R.Threads);
  OS << Buf;
  for (const auto &F : R.Functions) {
    std::snprintf(Buf, sizeof(Buf), "  %-24s %s", F.Name.c_str(),
                  functionStatus(F));
    OS << Buf;
    if (F.Transformed && !F.Validated) {
      if (!F.GuiltyPass.empty())
        OS << "  [guilty pass: " << F.GuiltyPass << "]";
      if (!F.Result.Reason.empty())
        OS << "  (" << F.Result.Reason << ")";
    }
    OS << '\n';
    if (F.Triage.Classification != TriageClassification::NotRun) {
      const TriageResult &T = F.Triage;
      OS << "    triage: " << getTriageClassificationName(T.Classification);
      if (T.Classification == TriageClassification::MiscompileWitnessed) {
        OS << "  (";
        for (size_t I = 0; I < T.WitnessInputs.size(); ++I)
          OS << (I ? ", " : "") << T.WitnessInputs[I];
        if (!T.WitnessInputs.empty())
          OS << " -> ";
        OS << T.WitnessDivergence << ')';
      } else if (!T.MissingRule.empty()) {
        OS << "  [missing rule: " << T.MissingRule << ']';
      } else if (T.ClosedByAllRules) {
        OS << "  [closed by combined extension rules]";
      }
      if (T.GapDiverged)
        OS << "  (gap: " << T.GapNodeA << " vs " << T.GapNodeB << ')';
      OS << '\n';
      if (T.Reduced) {
        std::snprintf(Buf, sizeof(Buf),
                      "    reduced: %" PRIu64 "+%" PRIu64 " -> %" PRIu64
                      "+%" PRIu64 " instructions (%u validations%s)\n",
                      T.OrigInstsBefore, T.OptInstsBefore, T.OrigInstsAfter,
                      T.OptInstsAfter, T.ReduceValidations,
                      T.ReduceMinimal ? "" : ", budget exhausted");
        OS << Buf;
      }
    }
    for (const auto &S : F.Steps) {
      if (!S.Changed)
        continue;
      std::snprintf(Buf, sizeof(Buf), "    %-20s %s%s\n", S.Pass.c_str(),
                    S.Validated ? "ok" : "FAILED",
                    S.WarmHit            ? " (warm)"
                    : S.CacheHit         ? " (cached)"
                    : S.SkippedIdentical ? " (identical)"
                                         : "");
      OS << Buf;
    }
  }
  return OS.str();
}

//===----------------------------------------------------------------------===//
// CSV
//===----------------------------------------------------------------------===//

namespace {

std::string csvEscape(const std::string &S) {
  if (S.find_first_of(",\"\n") == std::string::npos)
    return S;
  std::string Out = "\"";
  for (char C : S) {
    if (C == '"')
      Out += '"';
    Out += C;
  }
  Out += '"';
  return Out;
}

} // namespace

namespace {

/// The shared per-function row columns. With \p ModuleName non-null, each
/// row is prefixed by a `module` column (the suite CSV shape).
void emitCSVRows(std::ostringstream &OS, const ValidationReport &R,
                 const std::string *ModuleName) {
  char Buf[128];
  auto EmitRow = [&](const std::string &Fn, const std::string &Pass,
                     bool Transformed, bool Validated, bool CacheHit,
                     bool WarmHit, bool Skipped, bool Reverted,
                     const std::string &Guilty, const ValidationResult &Res,
                     const TriageResult *T) {
    if (ModuleName)
      OS << csvEscape(*ModuleName) << ',';
    OS << csvEscape(Fn) << ',' << csvEscape(Pass) << ',' << Transformed << ','
       << Validated << ',' << CacheHit << ',' << WarmHit << ',' << Skipped
       << ',' << Reverted << ',' << csvEscape(Guilty) << ',';
    std::snprintf(Buf, sizeof(Buf),
                  "%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",",
                  Res.Rewrites, Res.GraphNodes, Res.Iterations,
                  Res.Microseconds);
    OS << Buf << csvEscape(Res.Reason) << ',';
    if (T && T->Classification != TriageClassification::NotRun) {
      OS << getTriageClassificationName(T->Classification) << ',';
      std::string Witness;
      for (size_t I = 0; I < T->WitnessInputs.size(); ++I)
        Witness += (I ? "; " : "") + T->WitnessInputs[I];
      if (!T->WitnessDivergence.empty())
        Witness += (Witness.empty() ? "" : " -> ") + T->WitnessDivergence;
      OS << csvEscape(Witness) << ',' << csvEscape(T->MissingRule);
    } else {
      OS << ",,";
    }
    OS << ",\n"; // unsupported_reason: empty for validated rows
  };
  for (const auto &F : R.Functions) {
    EmitRow(F.Name, "", F.Transformed, F.Validated, F.CacheHit, F.WarmHit,
            F.SkippedIdentical, F.Reverted, F.GuiltyPass, F.Result,
            &F.Triage);
    for (const auto &S : F.Steps)
      if (S.Changed)
        EmitRow(F.Name, S.Pass, S.Changed, S.Validated, S.CacheHit, S.WarmHit,
                S.SkippedIdentical, false, "", S.Result, nullptr);
  }
  // Frontend-rejected functions: one row each, all outcome columns zero,
  // the reason class (plus detail) in the trailing column.
  for (const auto &U : R.UnsupportedFunctions) {
    if (ModuleName)
      OS << csvEscape(*ModuleName) << ',';
    OS << csvEscape(U.Function) << ",,0,0,0,0,0,0,,0,0,0,0,,,,";
    std::string Reason = U.Reason;
    if (!U.Detail.empty())
      Reason += ": " + U.Detail;
    OS << csvEscape(Reason) << '\n';
  }
}

const char *CSVColumns =
    "function,pass,transformed,validated,cache_hit,warm_hit,"
    "skipped_identical,reverted,guilty_pass,rewrites,graph_nodes,iterations,"
    "us,reason,triage,witness,missing_rule,unsupported_reason\n";

} // namespace

std::string llvmmd::reportToCSV(const ValidationReport &R) {
  std::ostringstream OS;
  OS << CSVColumns;
  emitCSVRows(OS, R, nullptr);
  return OS.str();
}

//===----------------------------------------------------------------------===//
// JSON
//===----------------------------------------------------------------------===//

namespace {

std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

std::string hex64(uint64_t V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "0x%016" PRIx64, V);
  return Buf;
}

/// Emits the per-function "triage" value: null when triage did not run,
/// otherwise a flat object. Deterministic (no timing fields).
void emitTriage(std::ostringstream &OS, const TriageResult &T) {
  if (T.Classification == TriageClassification::NotRun) {
    OS << "null";
    return;
  }
  OS << "{\"classification\": \""
     << getTriageClassificationName(T.Classification) << '"'
     << ", \"inputs_tried\": " << T.InputsTried
     << ", \"inputs_skipped\": " << T.InputsSkipped;
  if (T.Classification == TriageClassification::MiscompileWitnessed) {
    OS << ", \"witness_inputs\": [";
    for (size_t I = 0; I < T.WitnessInputs.size(); ++I)
      OS << (I ? ", " : "") << '"' << jsonEscape(T.WitnessInputs[I]) << '"';
    OS << "], \"witness_divergence\": \"" << jsonEscape(T.WitnessDivergence)
       << '"';
  }
  OS << ", \"reduced\": " << (T.Reduced ? "true" : "false");
  if (T.Reduced)
    OS << ", \"reduce_minimal\": " << (T.ReduceMinimal ? "true" : "false")
       << ", \"reduce_validations\": " << T.ReduceValidations
       << ", \"insts_before\": [" << T.OrigInstsBefore << ", "
       << T.OptInstsBefore << "], \"insts_after\": [" << T.OrigInstsAfter
       << ", " << T.OptInstsAfter << ']';
  if (T.GapRan) {
    OS << ", \"gap\": {\"diverged\": " << (T.GapDiverged ? "true" : "false");
    if (T.GapDiverged)
      OS << ", \"node_a\": \"" << jsonEscape(T.GapNodeA) << "\", \"node_b\": \""
         << jsonEscape(T.GapNodeB) << '"';
    OS << ", \"missing_rule\": ";
    if (T.MissingRule.empty())
      OS << "null";
    else
      OS << '"' << T.MissingRule << '"';
    OS << ", \"closed_by_all_rules\": "
       << (T.ClosedByAllRules ? "true" : "false") << '}';
  }
  OS << '}';
}

/// Emits the ranked missing-rule table as a JSON array (ranking is
/// meaningful, so an array of {rule, count} objects rather than an object
/// keyed by rule).
void emitMissingRules(
    std::ostringstream &OS,
    const std::vector<std::pair<std::string, unsigned>> &Missing) {
  OS << ", \"missing_rules\": [";
  for (size_t I = 0; I < Missing.size(); ++I)
    OS << (I ? ", " : "") << "{\"rule\": \"" << jsonEscape(Missing[I].first)
       << "\", \"count\": " << Missing[I].second << '}';
  OS << ']';
}

void emitResult(std::ostringstream &OS, const ValidationResult &Res,
                bool IncludeTiming) {
  OS << "\"rewrites\": " << Res.Rewrites
     << ", \"sharing_merges\": " << Res.SharingMerges
     << ", \"graph_nodes\": " << Res.GraphNodes
     << ", \"live_nodes\": " << Res.LiveNodes
     << ", \"iterations\": " << Res.Iterations
     << ", \"equal_on_construction\": "
     << (Res.EqualOnConstruction ? "true" : "false")
     << ", \"unsupported\": " << (Res.Unsupported ? "true" : "false")
     << ", \"reason\": \"" << jsonEscape(Res.Reason) << '"';
  if (IncludeTiming)
    OS << ", \"us\": " << Res.Microseconds;
}

} // namespace

namespace {

/// Emits one function entry as a single-line JSON object (braces included,
/// no newlines). Shared by the nested report emitter and the standalone
/// functionEntryToJSON, which is what guarantees streamed per-function
/// frames and the final report agree byte for byte.
void emitFunctionEntry(std::ostringstream &OS, const FunctionReportEntry &F,
                       bool IncludeTiming) {
  OS << "{\"name\": \"" << jsonEscape(F.Name) << "\", "
     << "\"fingerprint_orig\": \"" << hex64(F.FingerprintOrig) << "\", "
     << "\"fingerprint_opt\": \"" << hex64(F.FingerprintOpt) << "\", "
     << "\"transformed\": " << (F.Transformed ? "true" : "false") << ", "
     << "\"validated\": " << (F.Validated ? "true" : "false") << ", "
     << "\"cache_hit\": " << (F.CacheHit ? "true" : "false") << ", "
     << "\"warm_hit\": " << (F.WarmHit ? "true" : "false") << ", "
     << "\"skipped_identical\": "
     << (F.SkippedIdentical ? "true" : "false") << ", "
     << "\"reverted\": " << (F.Reverted ? "true" : "false") << ", "
     << "\"guilty_pass\": ";
  if (F.GuiltyPass.empty())
    OS << "null";
  else
    OS << '"' << jsonEscape(F.GuiltyPass) << '"';
  OS << ", \"triage\": ";
  emitTriage(OS, F.Triage);
  OS << ", ";
  emitResult(OS, F.Result, IncludeTiming);
  if (!F.Steps.empty()) {
    OS << ", \"steps\": [";
    bool FirstStep = true;
    for (const auto &S : F.Steps) {
      OS << (FirstStep ? "" : ", ");
      FirstStep = false;
      OS << "{\"pass\": \"" << jsonEscape(S.Pass) << "\", "
         << "\"changed\": " << (S.Changed ? "true" : "false") << ", "
         << "\"validated\": " << (S.Validated ? "true" : "false") << ", "
         << "\"cache_hit\": " << (S.CacheHit ? "true" : "false") << ", "
         << "\"warm_hit\": " << (S.WarmHit ? "true" : "false") << ", "
         << "\"skipped_identical\": "
         << (S.SkippedIdentical ? "true" : "false") << ", "
         << "\"fingerprint\": \"" << hex64(S.Fingerprint) << "\", ";
      emitResult(OS, S.Result, IncludeTiming);
      OS << '}';
    }
    OS << ']';
  }
  OS << '}';
}

/// Emits the report object (braces included, no trailing newline) with
/// \p P prefixed to every line after the first — so the same bytes serve as
/// a standalone document (empty prefix) and nested inside a suite report.
void emitReportJSON(std::ostringstream &OS, const ValidationReport &R,
                    bool IncludeTiming, const std::string &P) {
  char Buf[64];
  OS << "{\n";
  OS << P << "  \"schema\": \"llvmmd-validation-report-v1\",\n";
  OS << P << "  \"module\": \"" << jsonEscape(R.ModuleName) << "\",\n";
  OS << P << "  \"pipeline\": \"" << jsonEscape(R.Pipeline) << "\",\n";
  OS << P << "  \"rule_mask\": " << R.RuleMask << ",\n";
  OS << P << "  \"granularity\": \"" << (R.Stepwise ? "per-pass" : "pipeline")
     << "\",\n";
  if (IncludeTiming) {
    OS << P << "  \"threads\": " << R.Threads << ",\n";
    OS << P << "  \"wall_us\": " << R.WallMicroseconds << ",\n";
    OS << P << "  \"validation_us\": " << R.validationMicroseconds() << ",\n";
  }
  OS << P << "  \"summary\": {";
  OS << "\"functions\": " << R.total()
     << ", \"transformed\": " << R.transformed()
     << ", \"validated\": " << R.validated()
     << ", \"reverted\": " << R.reverted()
     << ", \"cache_hits\": " << R.cacheHits()
     << ", \"warm_hits\": " << R.warmHits()
     << ", \"skipped_identical\": " << R.skippedIdentical()
     << ", \"unsupported_functions\": " << R.unsupportedFunctions()
     << ", \"witnessed\": " << R.witnessed()
     << ", \"suspected_false_alarms\": " << R.suspectedFalseAlarms()
     << ", \"rewrites\": " << R.rewrites()
     << ", \"graph_nodes\": " << R.graphNodes();
  auto Missing = R.missingRuleCounts();
  if (!Missing.empty())
    emitMissingRules(OS, Missing);
  std::snprintf(Buf, sizeof(Buf), "%.6f", R.validationRate());
  OS << ", \"validation_rate\": " << Buf << "},\n";
  if (!R.UnsupportedFunctions.empty()) {
    OS << P << "  \"unsupported\": [";
    for (size_t I = 0; I < R.UnsupportedFunctions.size(); ++I) {
      const UnsupportedFunctionEntry &U = R.UnsupportedFunctions[I];
      OS << (I ? ", " : "") << "{\"name\": \"" << jsonEscape(U.Function)
         << "\", \"reason\": \"" << jsonEscape(U.Reason)
         << "\", \"detail\": \"" << jsonEscape(U.Detail) << "\"}";
    }
    OS << "],\n";
  }
  OS << P << "  \"functions\": [";
  bool FirstFn = true;
  for (const auto &F : R.Functions) {
    OS << (FirstFn ? "\n" : ",\n");
    FirstFn = false;
    OS << P << "    ";
    emitFunctionEntry(OS, F, IncludeTiming);
  }
  OS << '\n' << P << "  ]\n" << P << '}';
}

} // namespace

std::string llvmmd::reportToJSON(const ValidationReport &R,
                                 bool IncludeTiming) {
  std::ostringstream OS;
  emitReportJSON(OS, R, IncludeTiming, "");
  OS << '\n';
  return OS.str();
}

std::string llvmmd::functionEntryToJSON(const FunctionReportEntry &F) {
  std::ostringstream OS;
  emitFunctionEntry(OS, F, /*IncludeTiming=*/false);
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Suite roll-up
//===----------------------------------------------------------------------===//

namespace {

unsigned sumModules(const std::vector<ValidationReport> &Mods,
                    unsigned (ValidationReport::*Get)() const) {
  unsigned N = 0;
  for (const auto &M : Mods)
    N += (M.*Get)();
  return N;
}

} // namespace

unsigned SuiteReport::total() const {
  return sumModules(Modules, &ValidationReport::total);
}

unsigned SuiteReport::transformed() const {
  return sumModules(Modules, &ValidationReport::transformed);
}

unsigned SuiteReport::validated() const {
  return sumModules(Modules, &ValidationReport::validated);
}

unsigned SuiteReport::reverted() const {
  return sumModules(Modules, &ValidationReport::reverted);
}

unsigned SuiteReport::cacheHits() const {
  return sumModules(Modules, &ValidationReport::cacheHits);
}

unsigned SuiteReport::warmHits() const {
  return sumModules(Modules, &ValidationReport::warmHits);
}

unsigned SuiteReport::skippedIdentical() const {
  return sumModules(Modules, &ValidationReport::skippedIdentical);
}

unsigned SuiteReport::unsupportedFunctions() const {
  return sumModules(Modules, &ValidationReport::unsupportedFunctions);
}

unsigned SuiteReport::witnessed() const {
  return sumModules(Modules, &ValidationReport::witnessed);
}

unsigned SuiteReport::suspectedFalseAlarms() const {
  return sumModules(Modules, &ValidationReport::suspectedFalseAlarms);
}

std::vector<std::pair<std::string, unsigned>>
SuiteReport::missingRuleCounts() const {
  std::map<std::string, unsigned> Counts;
  for (const auto &M : Modules)
    tallyMissingRules(M, Counts);
  return rankMissingRules(Counts);
}

double SuiteReport::validationRate() const {
  unsigned T = transformed();
  return T == 0 ? 1.0 : static_cast<double>(validated()) / T;
}

std::string llvmmd::suiteToText(const SuiteReport &S) {
  std::ostringstream OS;
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf),
                "suite report: %u modules, pipeline '%s' (%s)\n", S.modules(),
                S.Pipeline.c_str(), S.Stepwise ? "stepwise" : "whole-pipeline");
  OS << Buf;
  std::snprintf(Buf, sizeof(Buf),
                "  %u functions, %u transformed, %u validated (%.1f%%), "
                "%u reverted, %u cache hits (%u warm), %u identical skips\n",
                S.total(), S.transformed(), S.validated(),
                100.0 * S.validationRate(), S.reverted(), S.cacheHits(),
                S.warmHits(), S.skippedIdentical());
  OS << Buf;
  if (S.unsupportedFunctions() > 0) {
    std::snprintf(Buf, sizeof(Buf),
                  "  %u function(s) rejected by the ingest frontend\n",
                  S.unsupportedFunctions());
    OS << Buf;
  }
  if (S.witnessed() + S.suspectedFalseAlarms() > 0) {
    std::snprintf(Buf, sizeof(Buf),
                  "  triage: %u miscompiles witnessed, %u suspected false "
                  "alarms\n",
                  S.witnessed(), S.suspectedFalseAlarms());
    OS << Buf;
    // The paper's "which extension rule pays most" table at suite scale.
    auto Missing = S.missingRuleCounts();
    if (!Missing.empty()) {
      OS << "  missing rules:";
      for (size_t I = 0; I < Missing.size(); ++I)
        OS << (I ? ", " : " ") << Missing[I].first << " x"
           << Missing[I].second;
      OS << '\n';
    }
  }
  std::snprintf(Buf, sizeof(Buf), "  %.2f ms wall on %u threads\n",
                S.WallMicroseconds / 1000.0, S.Threads);
  OS << Buf;
  for (const auto &M : S.Modules) {
    OS << '\n';
    OS << reportToText(M);
  }
  return OS.str();
}

std::string llvmmd::suiteToCSV(const SuiteReport &S, bool IncludeTiming) {
  std::ostringstream OS;
  OS << "module," << CSVColumns;
  for (const auto &M : S.Modules)
    emitCSVRows(OS, M, &M.ModuleName);
  // Opt-in phase wall-time section (blank-line separated, like the
  // missing-rule roll-up below). Off by default: wall times vary run to
  // run, and the default CSV must stay byte-identical across thread
  // counts and telemetry settings.
  if (IncludeTiming && !S.PhaseMicroseconds.empty()) {
    OS << "\nphase,wall_us\n";
    for (const auto &[Phase, Us] : S.PhaseMicroseconds)
      OS << csvEscape(Phase) << ',' << Us << '\n';
  }
  // Suite-scale missing-rule roll-up as a second CSV section (blank-line
  // separated), ranked like the paper's "which extension rule pays most"
  // table. Only present when attribution produced anything, so triage-free
  // suite CSVs are byte-identical to the pre-roll-up shape.
  auto Missing = S.missingRuleCounts();
  if (!Missing.empty()) {
    OS << "\nmissing_rule,count\n";
    for (const auto &[Rule, Count] : Missing)
      OS << csvEscape(Rule) << ',' << Count << '\n';
  }
  return OS.str();
}

std::string llvmmd::suiteToJSON(const SuiteReport &S, bool IncludeTiming) {
  std::ostringstream OS;
  char Buf[64];
  OS << "{\n";
  OS << "  \"schema\": \"llvmmd-suite-report-v1\",\n";
  OS << "  \"pipeline\": \"" << jsonEscape(S.Pipeline) << "\",\n";
  OS << "  \"rule_mask\": " << S.RuleMask << ",\n";
  OS << "  \"granularity\": \"" << (S.Stepwise ? "per-pass" : "pipeline")
     << "\",\n";
  if (IncludeTiming) {
    OS << "  \"threads\": " << S.Threads << ",\n";
    OS << "  \"wall_us\": " << S.WallMicroseconds << ",\n";
    if (!S.PhaseMicroseconds.empty()) {
      OS << "  \"phase_us\": {";
      bool FirstPhase = true;
      for (const auto &[Phase, Us] : S.PhaseMicroseconds) {
        OS << (FirstPhase ? "" : ", ") << '"' << jsonEscape(Phase)
           << "\": " << Us;
        FirstPhase = false;
      }
      OS << "},\n";
    }
  }
  OS << "  \"summary\": {";
  OS << "\"modules\": " << S.modules() << ", \"functions\": " << S.total()
     << ", \"transformed\": " << S.transformed()
     << ", \"validated\": " << S.validated()
     << ", \"reverted\": " << S.reverted()
     << ", \"cache_hits\": " << S.cacheHits()
     << ", \"warm_hits\": " << S.warmHits()
     << ", \"skipped_identical\": " << S.skippedIdentical()
     << ", \"unsupported_functions\": " << S.unsupportedFunctions()
     << ", \"witnessed\": " << S.witnessed()
     << ", \"suspected_false_alarms\": " << S.suspectedFalseAlarms();
  auto Missing = S.missingRuleCounts();
  if (!Missing.empty())
    emitMissingRules(OS, Missing);
  std::snprintf(Buf, sizeof(Buf), "%.6f", S.validationRate());
  OS << ", \"validation_rate\": " << Buf << "},\n";
  OS << "  \"modules\": [";
  bool First = true;
  for (const auto &M : S.Modules) {
    OS << (First ? "\n    " : ",\n    ");
    First = false;
    emitReportJSON(OS, M, IncludeTiming, "    ");
  }
  OS << "\n  ]\n}\n";
  return OS.str();
}
