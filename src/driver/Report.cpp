//===- Report.cpp - Validation engine report emitters -------------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//

#include "driver/Report.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>

using namespace llvmmd;

//===----------------------------------------------------------------------===//
// Aggregates
//===----------------------------------------------------------------------===//

unsigned ValidationReport::total() const {
  return static_cast<unsigned>(Functions.size());
}

unsigned ValidationReport::transformed() const {
  unsigned N = 0;
  for (const auto &F : Functions)
    N += F.Transformed;
  return N;
}

unsigned ValidationReport::validated() const {
  unsigned N = 0;
  for (const auto &F : Functions)
    N += F.Transformed && F.Validated;
  return N;
}

unsigned ValidationReport::reverted() const {
  unsigned N = 0;
  for (const auto &F : Functions)
    N += F.Reverted;
  return N;
}

unsigned ValidationReport::cacheHits() const {
  unsigned N = 0;
  for (const auto &F : Functions) {
    N += F.CacheHit;
    for (const auto &S : F.Steps)
      N += S.CacheHit;
  }
  return N;
}

unsigned ValidationReport::skippedIdentical() const {
  unsigned N = 0;
  for (const auto &F : Functions) {
    N += F.SkippedIdentical;
    for (const auto &S : F.Steps)
      N += S.SkippedIdentical;
  }
  return N;
}

uint64_t ValidationReport::rewrites() const {
  uint64_t N = 0;
  for (const auto &F : Functions)
    N += F.Result.Rewrites;
  return N;
}

uint64_t ValidationReport::graphNodes() const {
  uint64_t N = 0;
  for (const auto &F : Functions)
    N += F.Result.GraphNodes;
  return N;
}

uint64_t ValidationReport::validationMicroseconds() const {
  uint64_t N = 0;
  for (const auto &F : Functions) {
    N += F.Result.Microseconds;
    // In stepwise mode the synthesized Result already sums the steps.
  }
  return N;
}

double ValidationReport::validationRate() const {
  unsigned T = transformed();
  return T == 0 ? 1.0 : static_cast<double>(validated()) / T;
}

//===----------------------------------------------------------------------===//
// Text
//===----------------------------------------------------------------------===//

namespace {

const char *functionStatus(const FunctionReportEntry &F) {
  if (!F.Transformed)
    return "unchanged";
  if (F.SkippedIdentical)
    return "identical (skipped)";
  if (F.Validated)
    return F.CacheHit ? "VALIDATED (cached)" : "VALIDATED";
  return F.Reverted ? "FAILED -> reverted" : "FAILED";
}

} // namespace

std::string llvmmd::reportToText(const ValidationReport &R) {
  std::ostringstream OS;
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf),
                "validation report: module '%s', pipeline '%s' (%s)\n",
                R.ModuleName.c_str(), R.Pipeline.c_str(),
                R.Stepwise ? "stepwise" : "whole-pipeline");
  OS << Buf;
  std::snprintf(Buf, sizeof(Buf),
                "  %u functions, %u transformed, %u validated (%.1f%%), "
                "%u reverted\n",
                R.total(), R.transformed(), R.validated(),
                100.0 * R.validationRate(), R.reverted());
  OS << Buf;
  std::snprintf(Buf, sizeof(Buf),
                "  %u cache hits, %u identical skips, %" PRIu64
                " rewrites, %" PRIu64 " graph nodes\n",
                R.cacheHits(), R.skippedIdentical(), R.rewrites(),
                R.graphNodes());
  OS << Buf;
  std::snprintf(Buf, sizeof(Buf),
                "  %.2f ms wall on %u threads (%.2f ms of validation)\n",
                R.WallMicroseconds / 1000.0, R.Threads,
                R.validationMicroseconds() / 1000.0);
  OS << Buf;
  for (const auto &F : R.Functions) {
    std::snprintf(Buf, sizeof(Buf), "  %-24s %s", F.Name.c_str(),
                  functionStatus(F));
    OS << Buf;
    if (F.Transformed && !F.Validated) {
      if (!F.GuiltyPass.empty())
        OS << "  [guilty pass: " << F.GuiltyPass << "]";
      if (!F.Result.Reason.empty())
        OS << "  (" << F.Result.Reason << ")";
    }
    OS << '\n';
    for (const auto &S : F.Steps) {
      if (!S.Changed)
        continue;
      std::snprintf(Buf, sizeof(Buf), "    %-20s %s%s\n", S.Pass.c_str(),
                    S.Validated ? "ok" : "FAILED",
                    S.CacheHit          ? " (cached)"
                    : S.SkippedIdentical ? " (identical)"
                                         : "");
      OS << Buf;
    }
  }
  return OS.str();
}

//===----------------------------------------------------------------------===//
// CSV
//===----------------------------------------------------------------------===//

namespace {

std::string csvEscape(const std::string &S) {
  if (S.find_first_of(",\"\n") == std::string::npos)
    return S;
  std::string Out = "\"";
  for (char C : S) {
    if (C == '"')
      Out += '"';
    Out += C;
  }
  Out += '"';
  return Out;
}

} // namespace

std::string llvmmd::reportToCSV(const ValidationReport &R) {
  std::ostringstream OS;
  OS << "function,pass,transformed,validated,cache_hit,skipped_identical,"
        "reverted,guilty_pass,rewrites,graph_nodes,iterations,us,reason\n";
  char Buf[128];
  auto EmitRow = [&](const std::string &Fn, const std::string &Pass,
                     bool Transformed, bool Validated, bool CacheHit,
                     bool Skipped, bool Reverted, const std::string &Guilty,
                     const ValidationResult &Res) {
    OS << csvEscape(Fn) << ',' << csvEscape(Pass) << ',' << Transformed << ','
       << Validated << ',' << CacheHit << ',' << Skipped << ',' << Reverted
       << ',' << csvEscape(Guilty) << ',';
    std::snprintf(Buf, sizeof(Buf),
                  "%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",",
                  Res.Rewrites, Res.GraphNodes, Res.Iterations,
                  Res.Microseconds);
    OS << Buf << csvEscape(Res.Reason) << '\n';
  };
  for (const auto &F : R.Functions) {
    EmitRow(F.Name, "", F.Transformed, F.Validated, F.CacheHit,
            F.SkippedIdentical, F.Reverted, F.GuiltyPass, F.Result);
    for (const auto &S : F.Steps)
      if (S.Changed)
        EmitRow(F.Name, S.Pass, S.Changed, S.Validated, S.CacheHit,
                S.SkippedIdentical, false, "", S.Result);
  }
  return OS.str();
}

//===----------------------------------------------------------------------===//
// JSON
//===----------------------------------------------------------------------===//

namespace {

std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

std::string hex64(uint64_t V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "0x%016" PRIx64, V);
  return Buf;
}

void emitResult(std::ostringstream &OS, const ValidationResult &Res,
                bool IncludeTiming) {
  OS << "\"rewrites\": " << Res.Rewrites
     << ", \"sharing_merges\": " << Res.SharingMerges
     << ", \"graph_nodes\": " << Res.GraphNodes
     << ", \"live_nodes\": " << Res.LiveNodes
     << ", \"iterations\": " << Res.Iterations
     << ", \"equal_on_construction\": "
     << (Res.EqualOnConstruction ? "true" : "false")
     << ", \"unsupported\": " << (Res.Unsupported ? "true" : "false")
     << ", \"reason\": \"" << jsonEscape(Res.Reason) << '"';
  if (IncludeTiming)
    OS << ", \"us\": " << Res.Microseconds;
}

} // namespace

std::string llvmmd::reportToJSON(const ValidationReport &R,
                                 bool IncludeTiming) {
  std::ostringstream OS;
  char Buf[64];
  OS << "{\n";
  OS << "  \"schema\": \"llvmmd-validation-report-v1\",\n";
  OS << "  \"module\": \"" << jsonEscape(R.ModuleName) << "\",\n";
  OS << "  \"pipeline\": \"" << jsonEscape(R.Pipeline) << "\",\n";
  OS << "  \"rule_mask\": " << R.RuleMask << ",\n";
  OS << "  \"granularity\": \"" << (R.Stepwise ? "per-pass" : "pipeline")
     << "\",\n";
  if (IncludeTiming) {
    OS << "  \"threads\": " << R.Threads << ",\n";
    OS << "  \"wall_us\": " << R.WallMicroseconds << ",\n";
    OS << "  \"validation_us\": " << R.validationMicroseconds() << ",\n";
  }
  OS << "  \"summary\": {";
  OS << "\"functions\": " << R.total()
     << ", \"transformed\": " << R.transformed()
     << ", \"validated\": " << R.validated()
     << ", \"reverted\": " << R.reverted()
     << ", \"cache_hits\": " << R.cacheHits()
     << ", \"skipped_identical\": " << R.skippedIdentical()
     << ", \"rewrites\": " << R.rewrites()
     << ", \"graph_nodes\": " << R.graphNodes();
  std::snprintf(Buf, sizeof(Buf), "%.6f", R.validationRate());
  OS << ", \"validation_rate\": " << Buf << "},\n";
  OS << "  \"functions\": [";
  bool FirstFn = true;
  for (const auto &F : R.Functions) {
    OS << (FirstFn ? "\n" : ",\n");
    FirstFn = false;
    OS << "    {\"name\": \"" << jsonEscape(F.Name) << "\", "
       << "\"fingerprint_orig\": \"" << hex64(F.FingerprintOrig) << "\", "
       << "\"fingerprint_opt\": \"" << hex64(F.FingerprintOpt) << "\", "
       << "\"transformed\": " << (F.Transformed ? "true" : "false") << ", "
       << "\"validated\": " << (F.Validated ? "true" : "false") << ", "
       << "\"cache_hit\": " << (F.CacheHit ? "true" : "false") << ", "
       << "\"skipped_identical\": "
       << (F.SkippedIdentical ? "true" : "false") << ", "
       << "\"reverted\": " << (F.Reverted ? "true" : "false") << ", "
       << "\"guilty_pass\": ";
    if (F.GuiltyPass.empty())
      OS << "null";
    else
      OS << '"' << jsonEscape(F.GuiltyPass) << '"';
    OS << ", ";
    emitResult(OS, F.Result, IncludeTiming);
    if (!F.Steps.empty()) {
      OS << ", \"steps\": [";
      bool FirstStep = true;
      for (const auto &S : F.Steps) {
        OS << (FirstStep ? "" : ", ");
        FirstStep = false;
        OS << "{\"pass\": \"" << jsonEscape(S.Pass) << "\", "
           << "\"changed\": " << (S.Changed ? "true" : "false") << ", "
           << "\"validated\": " << (S.Validated ? "true" : "false") << ", "
           << "\"cache_hit\": " << (S.CacheHit ? "true" : "false") << ", "
           << "\"skipped_identical\": "
           << (S.SkippedIdentical ? "true" : "false") << ", "
           << "\"fingerprint\": \"" << hex64(S.Fingerprint) << "\", ";
        emitResult(OS, S.Result, IncludeTiming);
        OS << '}';
      }
      OS << ']';
    }
    OS << '}';
  }
  OS << "\n  ]\n}\n";
  return OS.str();
}
