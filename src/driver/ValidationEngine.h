//===- ValidationEngine.h - Parallel batch validation -----------*- C++ -*-===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The batch validation subsystem. Where `validatePair` proves one function
/// pair and `runLLVMMD` loops over a module synchronously, the
/// ValidationEngine owns throughput: it optimizes a module, schedules every
/// independent (original, optimized) pair across a work-stealing thread
/// pool, skips structurally identical pairs in O(1) via function
/// fingerprints, memoizes verdicts across submissions, and aggregates a
/// deterministic ValidationReport regardless of thread count.
///
/// Two granularities are supported:
///  * WholePipeline — one pair per function, original vs fully optimized
///    (the paper's Figure 4 experiment);
///  * PerPass — the function is snapshotted after every pass that changes
///    it and each consecutive snapshot pair is validated, so a failure is
///    attributed to the specific guilty pass.
///
/// Thread-safety contract: optimization and snapshotting run sequentially
/// (passes intern constants in the shared Context); only the pure
/// validations — which touch no shared mutable state — run in parallel.
/// A ValidationEngine instance must not be used from multiple threads at
/// once, but may be reused across many runs to exploit its verdict cache.
///
//===----------------------------------------------------------------------===//

#ifndef LLVMMD_DRIVER_VALIDATIONENGINE_H
#define LLVMMD_DRIVER_VALIDATIONENGINE_H

#include "driver/Report.h"
#include "driver/ThreadPool.h"
#include "normalize/Rules.h"

#include <memory>
#include <string>
#include <unordered_map>

namespace llvmmd {

class Function;
class Module;
class PassManager;

enum class ValidationGranularity : uint8_t {
  WholePipeline, ///< one validation per transformed function
  PerPass,       ///< snapshot + validate after every changing pass
};

struct EngineConfig {
  /// Validation worker threads; 0 = one per hardware thread.
  unsigned Threads = 0;
  /// Rule sets and fixpoint budget. Rules.M is set by the engine to the
  /// original module of each run.
  RuleConfig Rules;
  ValidationGranularity Granularity = ValidationGranularity::WholePipeline;
  /// Memoize verdicts by (fingerprint, fingerprint, rule) key across
  /// submissions to the same engine.
  bool UseCache = true;
  /// Restore the last certified body when a validation fails: the original
  /// in whole-pipeline mode, the last validated snapshot in stepwise mode
  /// (the paper's `replace fo by fi in output`).
  bool RevertFailures = false;
};

struct EngineCacheStats {
  uint64_t Hits = 0;   ///< verdicts replayed (cache or duplicate in batch)
  uint64_t Misses = 0; ///< pairs validated from scratch
  uint64_t SkippedIdentical = 0; ///< fingerprint-equal pairs, skipped O(1)
  uint64_t Entries = 0;          ///< memoized verdicts currently held
};

/// The result of one engine run: the certified optimized module (same
/// Context as the input) plus the full report.
struct EngineRun {
  std::unique_ptr<Module> Optimized;
  ValidationReport Report;
};

class ValidationEngine {
public:
  explicit ValidationEngine(EngineConfig Config = EngineConfig());
  ~ValidationEngine();

  ValidationEngine(const ValidationEngine &) = delete;
  ValidationEngine &operator=(const ValidationEngine &) = delete;

  /// Clones \p M, runs \p Pipeline (comma-separated pass names) on every
  /// defined function, and validates according to the configured
  /// granularity. Asserts on an unparsable pipeline.
  EngineRun run(const Module &M, const std::string &Pipeline);

  /// Same, over a caller-assembled pass manager (e.g. one containing
  /// passes that have no pipeline name).
  EngineRun run(const Module &M, PassManager &PM);

  /// Validates two already-optimized modules pairwise: every defined
  /// function of \p Optimized against \p Original's function of the same
  /// name. No passes are run and nothing is reverted; "transformed" means
  /// the fingerprints differ.
  ValidationReport validateModules(const Module &Original,
                                   const Module &Optimized);

  /// Swaps the rule configuration for subsequent runs. Safe across runs:
  /// the verdict cache keys on (mask, strategy, fixpoint budget, and the
  /// globals the rules can read), so entries from other configurations can
  /// never be replayed.
  void setRules(const RuleConfig &Rules) { Cfg.Rules = Rules; }
  const RuleConfig &getRules() const { return Cfg.Rules; }

  const EngineCacheStats &cacheStats() const { return Stats; }
  void clearCache();
  unsigned getThreadCount() const { return Pool.getThreadCount(); }

private:
  struct CacheKey {
    uint64_t FpA = 0, FpB = 0;
    /// Everything else a verdict depends on: rule mask, sharing strategy,
    /// fixpoint budget, and — when RS_GlobalFold can read initializers — a
    /// digest of the module's globals (fingerprints hash globals by name
    /// only, so the same pair in two modules may differ).
    uint64_t Config = 0;
    bool operator==(const CacheKey &O) const {
      return FpA == O.FpA && FpB == O.FpB && Config == O.Config;
    }
  };
  struct CacheKeyHash {
    size_t operator()(const CacheKey &K) const;
  };

  /// A scheduled validation: a unique, uncached (original, optimized) pair.
  struct PairJob {
    const Function *A = nullptr;
    const Function *B = nullptr;
    CacheKey Key;
    ValidationResult Result;
  };
  /// Where one job's verdict lands in the report: function \p Fn, step
  /// \p Step (-1 for the whole-pipeline slot). Duplicate pairs in a batch
  /// share a job and are marked as (deterministic) cache hits.
  struct Landing {
    size_t Fn = 0;
    int Step = -1;
    size_t Job = 0;
    bool DuplicateHit = false;
  };

  /// Per-batch scheduling state (jobs, landings, duplicate tracking);
  /// defined in the implementation.
  struct BatchState;

  /// Resolves the pair against the cache / in-batch duplicates or appends a
  /// job; the verdict will land in Report.Functions[Fn] (step \p Step, or
  /// the whole-pipeline slot when \p Step is -1).
  /// The CacheKey::Config value for validating against \p OrigModule under
  /// the current rule configuration.
  uint64_t cacheConfigDigest(const Module &OrigModule) const;

  void scheduleValidation(BatchState &B, uint64_t FpA, uint64_t FpB,
                          const Function *A, const Function *OptF, size_t Fn,
                          int Step);

  /// Validates every scheduled job in parallel, lands all verdicts into
  /// \p Report, and memoizes the new ones.
  void executeBatch(BatchState &B, const RuleConfig &Rules,
                    ValidationReport &Report);

  EngineRun runImpl(const Module &M, PassManager &PM,
                    const std::string &PipelineName);

  EngineConfig Cfg;
  ThreadPool Pool;
  std::unordered_map<CacheKey, ValidationResult, CacheKeyHash> Cache;
  EngineCacheStats Stats;
};

} // namespace llvmmd

#endif // LLVMMD_DRIVER_VALIDATIONENGINE_H
