//===- ValidationEngine.h - Parallel batch validation -----------*- C++ -*-===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The batch validation subsystem. Where `validatePair` proves one function
/// pair and `runLLVMMD` loops over a module synchronously, the
/// ValidationEngine owns throughput: it optimizes a module, schedules every
/// independent (original, optimized) pair across a work-stealing thread
/// pool, skips structurally identical pairs in O(1) via function
/// fingerprints, memoizes verdicts across submissions, and aggregates a
/// deterministic ValidationReport regardless of thread count.
///
/// Two granularities are supported:
///  * WholePipeline — one pair per function, original vs fully optimized
///    (the paper's Figure 4 experiment);
///  * PerPass — the function is snapshotted after every pass that changes
///    it and each consecutive snapshot pair is validated, so a failure is
///    attributed to the specific guilty pass.
///
/// Both phases run on the pool. The *optimization* phase parallelizes per
/// function: each optimizer task gets its own PassManager clone (passes
/// carry scratch state) and interns constants through the lock-striped
/// Context concurrently. The *validation* phase parallelizes per pair.
/// Scheduling, cache interaction and report aggregation stay sequential and
/// in deterministic submission order, so reports are byte-identical for any
/// thread count. Pipelines containing passes the registry cannot rebuild
/// (caller-assembled pass objects without a registered name) fall back to
/// sequential optimization on the caller's PassManager.
///
/// `runSuite` shards the engine over a whole suite of modules: every
/// (module, function) optimize task and every validation pair is scheduled
/// on the one shared pool, the verdict cache deduplicates across modules,
/// and the result is one ValidationReport per module plus a suite roll-up.
///
/// A ValidationEngine instance must not be used from multiple threads at
/// once, but may be reused across many runs to exploit its verdict cache.
///
//===----------------------------------------------------------------------===//

#ifndef LLVMMD_DRIVER_VALIDATIONENGINE_H
#define LLVMMD_DRIVER_VALIDATIONENGINE_H

#include "driver/Report.h"
#include "driver/ThreadPool.h"
#include "driver/VerdictStore.h"
#include "normalize/Rules.h"
#include "triage/Triage.h"

#include <memory>
#include <string>
#include <unordered_map>

namespace llvmmd {

class Function;
class Module;
class PassManager;

enum class ValidationGranularity : uint8_t {
  WholePipeline, ///< one validation per transformed function
  PerPass,       ///< snapshot + validate after every changing pass
};

struct EngineConfig {
  /// Worker threads for both phases; 0 = one per hardware thread.
  unsigned Threads = 0;
  /// Rule sets and fixpoint budget. Rules.M is set by the engine to the
  /// original module of each run.
  RuleConfig Rules;
  ValidationGranularity Granularity = ValidationGranularity::WholePipeline;
  /// Memoize verdicts by (fingerprint, fingerprint, rule) key across
  /// submissions to the same engine.
  bool UseCache = true;
  /// Restore the last certified body when a validation fails: the original
  /// in whole-pipeline mode, the last validated snapshot in stepwise mode
  /// (the paper's `replace fo by fi in output`).
  bool RevertFailures = false;
  /// Path of the persistent verdict store (VerdictStore format). Empty
  /// keeps the cache in-memory only.
  std::string CachePath;
  /// With CachePath set: merge the store into the cache at construction. A
  /// store whose magic/version/config digest mismatches is rejected and the
  /// cache starts empty (the store will be rebuilt on save).
  bool CacheLoad = true;
  /// With CachePath set: save the cache back (atomically, merging the
  /// current on-disk contents) after every run that memoized new verdicts.
  bool CacheSave = true;
  /// Alarm triage (src/triage/): with Triage.Enabled, every rejected pair
  /// is post-processed on the shared pool — differential witness search,
  /// delta reduction, rule-gap attribution — and the TriageResult lands in
  /// the function's report entry. Deterministic across thread counts.
  TriageOptions Triage;
};

struct EngineCacheStats {
  uint64_t Hits = 0;   ///< verdicts replayed (cache or duplicate in batch)
  /// The subset of Hits replayed from entries the persistent store
  /// contributed ("warm"); Hits - WarmHits were proven by this process
  /// ("cold" in-memory hits and in-batch duplicates).
  uint64_t WarmHits = 0;
  uint64_t Misses = 0; ///< pairs validated from scratch
  uint64_t SkippedIdentical = 0; ///< fingerprint-equal pairs, skipped O(1)
  uint64_t Entries = 0;          ///< memoized verdicts currently held
  uint64_t StoreLoaded = 0; ///< entries merged in from the persistent store
  uint64_t StoreSaved = 0;  ///< entries written by the most recent save
  /// Triage replay accounting, mirroring the verdict fields: rejected pairs
  /// whose TriageResult was replayed from the in-memory triage cache
  /// (TriageHits; TriageWarmHits of those came from the persistent store)
  /// vs re-interpreted from scratch (TriageMisses).
  uint64_t TriageHits = 0;
  uint64_t TriageWarmHits = 0;
  uint64_t TriageMisses = 0;
  uint64_t TriageStoreLoaded = 0; ///< triage entries merged from the store
  /// Phase wall-time accounting, accumulated across runs (microseconds).
  /// Telemetry only — these numbers never feed verdict-bearing report
  /// fields (suite JSON exposes them solely behind IncludeTiming).
  uint64_t OptimizeMicroseconds = 0;  ///< phase 1: optimize + fingerprint
  uint64_t ValidateMicroseconds = 0;  ///< batch pair validation
  uint64_t StepwiseMicroseconds = 0;  ///< stepwise synthesis + attribution
  uint64_t TriageMicroseconds = 0;    ///< differential/reduce/attribute
  uint64_t RevertMicroseconds = 0;    ///< failure revert re-cloning
  uint64_t StoreLoadMicroseconds = 0; ///< verdict store load
  uint64_t StoreSaveMicroseconds = 0; ///< verdict store checkpoint/save
  /// Per-pass optimize wall time (pass name → accumulated microseconds),
  /// populated in stepwise granularity where passes run individually; the
  /// whole-pipeline path accounts under OptimizeMicroseconds only.
  std::vector<std::pair<std::string, uint64_t>> PassMicroseconds;
};

/// The result of one engine run: the certified optimized module (same
/// Context as the input) plus the full report.
struct EngineRun {
  std::unique_ptr<Module> Optimized;
  ValidationReport Report;
};

/// The result of one suite run: the certified optimized modules (same order
/// as the inputs, each in its input's Context) plus per-module reports and
/// the roll-up.
struct SuiteRun {
  std::vector<std::unique_ptr<Module>> Optimized;
  SuiteReport Report;
};

class ValidationEngine {
public:
  explicit ValidationEngine(EngineConfig Config = EngineConfig());
  ~ValidationEngine();

  ValidationEngine(const ValidationEngine &) = delete;
  ValidationEngine &operator=(const ValidationEngine &) = delete;

  /// Clones \p M, runs \p Pipeline (comma-separated pass names) on every
  /// defined function, and validates according to the configured
  /// granularity. Asserts on an unparsable pipeline.
  EngineRun run(const Module &M, const std::string &Pipeline);

  /// Same, over a caller-assembled pass manager (e.g. one containing
  /// passes that have no pipeline name).
  EngineRun run(const Module &M, PassManager &PM);

  /// Validates a whole suite in one batch: every module is cloned and
  /// optimized with \p Pipeline, all (module, function) work is scheduled
  /// over the one shared pool, and verdicts deduplicate across modules
  /// through the cache. Modules may live in different Contexts. Reports are
  /// emitted per module (input order) plus a suite roll-up.
  SuiteRun runSuite(const std::vector<const Module *> &Modules,
                    const std::string &Pipeline);

  /// Validates two already-optimized modules pairwise: every defined
  /// function of \p Optimized against \p Original's function of the same
  /// name. No passes are run and nothing is reverted; "transformed" means
  /// the fingerprints differ.
  ValidationReport validateModules(const Module &Original,
                                   const Module &Optimized);

  /// Swaps the rule configuration for subsequent runs. Safe across runs:
  /// the verdict cache keys on (mask, strategy, fixpoint budget, and the
  /// globals the rules can read), so entries from other configurations can
  /// never be replayed.
  void setRules(const RuleConfig &Rules) { Cfg.Rules = Rules; }
  const RuleConfig &getRules() const { return Cfg.Rules; }

  const EngineCacheStats &cacheStats() const { return Stats; }
  void clearCache();
  unsigned getThreadCount() const { return Pool.getThreadCount(); }

  /// New verdicts or triage results were memoized since the last save.
  /// Lets callers that own the checkpoint cadence (the validation server's
  /// periodic checkpointer) skip rewriting an unchanged store.
  bool cacheDirty() const { return CacheDirty; }

  /// The VerdictStore header digest for the engine's current rule
  /// configuration (per-module globals are digested into entry keys, not
  /// here).
  uint64_t storeConfigDigest() const;

  /// Merges the store at Cfg.CachePath into the verdict cache; entries the
  /// engine already proved keep their in-memory verdict. Called by the
  /// constructor when CachePath is set and CacheLoad is on; callable again
  /// to pick up verdicts other processes saved meanwhile.
  VerdictStore::LoadResult loadCache();

  /// Atomically saves the verdict cache to Cfg.CachePath, merging the
  /// current on-disk contents. Called automatically after every run that
  /// memoized new verdicts (when CachePath is set and CacheSave is on).
  bool saveCache(std::string *Error = nullptr);

private:
  /// Verdict cache keys are shared with the persistent store: both
  /// fingerprints plus a digest of everything else the verdict depends on
  /// (rule mask, sharing strategy, fixpoint budget, and — when
  /// RS_GlobalFold can read initializers — the module's globals;
  /// fingerprints hash globals by name only, so the same pair in two
  /// modules may differ).
  using CacheKey = VerdictKey;
  using CacheKeyHash = VerdictKeyHash;

  /// One memoized verdict plus its provenance: FromStore marks entries the
  /// persistent store contributed, so replays can be attributed warm (prior
  /// process) vs cold (this process).
  struct CachedVerdict {
    ValidationResult Result;
    bool FromStore = false;
  };

  /// One memoized triage outcome (same key space as verdicts, plus the
  /// options digest the stored entry was computed under).
  struct CachedTriage {
    StoredTriage Stored;
    bool FromStore = false;
  };

  /// A scheduled validation: a unique, uncached (original, optimized) pair
  /// of module \p Mod within the current batch.
  struct PairJob {
    const Function *A = nullptr;
    const Function *B = nullptr;
    unsigned Mod = 0;
    CacheKey Key;
    ValidationResult Result;
  };
  /// Where one job's verdict lands: module \p Mod, function \p Fn, step
  /// \p Step (-1 for the whole-pipeline slot). Duplicate pairs in a batch
  /// share a job and are marked as (deterministic) cache hits.
  struct Landing {
    unsigned Mod = 0;
    size_t Fn = 0;
    int Step = -1;
    size_t Job = 0;
    bool DuplicateHit = false;
  };

  /// Per-batch scheduling state (jobs, landings, duplicate tracking);
  /// defined in the implementation. One batch spans all modules of a suite.
  struct BatchState;
  /// Per-module optimization state (clone, snapshots, pending pairs);
  /// defined in the implementation.
  struct ModuleRunState;

  /// The CacheKey::Config value for validating against \p OrigModule under
  /// the current rule configuration.
  uint64_t cacheConfigDigest(const Module &OrigModule) const;

  /// Resolves the pair against the cache / in-batch duplicates or appends a
  /// job; the verdict will land in module \p Mod's report at function
  /// \p Fn (step \p Step, or the whole-pipeline slot when \p Step is -1).
  void scheduleValidation(BatchState &B, unsigned Mod, uint64_t FpA,
                          uint64_t FpB, const Function *A,
                          const Function *OptF, size_t Fn, int Step);

  /// Validates every scheduled job in parallel, lands all verdicts into the
  /// per-module reports, and memoizes the new ones.
  void executeBatch(BatchState &B,
                    const std::vector<ValidationReport *> &Reports);

  /// Optimizes, fingerprints and snapshots one function of one module;
  /// thread-safe against itself on other functions.
  void optimizeFunction(ModuleRunState &S, size_t Fi, PassManager &PM);

  /// The shared engine core: run every module through optimize + validate
  /// as one batch over the pool. When \p ProtoPM is registry-constructible
  /// (its clone() returns non-null), each optimizer task runs its own
  /// clone in parallel; otherwise \p ProtoPM itself runs the functions
  /// sequentially in submission order.
  SuiteRun runModules(const std::vector<const Module *> &Modules,
                      const std::string &PipelineName, PassManager &ProtoPM);

  /// Replays cached triage results into \p Candidates' report entries and
  /// returns the (Mod, Fn) subset that still needs triagePair, preserving
  /// the deterministic submission order. \p Digests are the per-module
  /// CacheKey::Config values, \p OptionDigests the per-module
  /// triageOptionsDigest values.
  std::vector<std::pair<unsigned, size_t>> resolveTriageCache(
      const std::vector<std::pair<unsigned, size_t>> &Candidates,
      const std::vector<ValidationReport *> &Reports,
      const std::vector<uint64_t> &Digests,
      const std::vector<uint64_t> &OptionDigests);

  /// Memoizes freshly computed triage results for \p Tasks (the
  /// resolveTriageCache leftovers, now filled in).
  void memoizeTriage(const std::vector<std::pair<unsigned, size_t>> &Tasks,
                     const std::vector<ValidationReport *> &Reports,
                     const std::vector<uint64_t> &Digests,
                     const std::vector<uint64_t> &OptionDigests);

  EngineConfig Cfg;
  ThreadPool Pool;
  std::unordered_map<CacheKey, CachedVerdict, CacheKeyHash> Cache;
  std::unordered_map<CacheKey, CachedTriage, CacheKeyHash> TriageCache;
  EngineCacheStats Stats;
  /// New verdicts or triage results were memoized since the last save;
  /// gates save-on-report so replay-only runs don't rewrite an unchanged
  /// store.
  bool CacheDirty = false;
};

} // namespace llvmmd

#endif // LLVMMD_DRIVER_VALIDATIONENGINE_H
