//===- ModuleLoader.h - Unified module ingest for all front doors -*- C++ -*-===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One module-loading entry point shared by every front door: the batch CLI,
/// the validation server, the fleet path behind it, and the example tools.
/// A ModuleSpec names where a module comes from (file, stdin, inline text,
/// or a generated benchmark profile) and in which format; loadModules
/// resolves each spec to a native Module, auto-detecting real LLVM `.ll`
/// input by content and routing it through the `.ll` importer with its
/// per-function unsupported accounting.
///
/// Spec grammar (shared by every CLI's `--input` / positional arguments):
///
///   FILE           load the file; format auto-detected by content
///   -              read the module text from stdin
///   profile:NAME   generate the Table-1 benchmark profile NAME
///
//===----------------------------------------------------------------------===//

#ifndef LLVMMD_DRIVER_MODULELOADER_H
#define LLVMMD_DRIVER_MODULELOADER_H

#include "driver/Report.h"

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace llvmmd {

class Context;
class Module;

/// Wire-stable module text format selector. Auto sniffs by content:
/// the mini-IR printer emits none of real LLVM's noise (target lines,
/// attribute groups, metadata, `align` suffixes...), so text that looks
/// like real `.ll` goes through the import frontend and everything else
/// through the native parser.
enum class ModuleFormat : uint8_t {
  Auto = 0,
  MiniIR = 1,
  LLVMIR = 2,
};

/// Returns MiniIR or LLVMIR (never Auto) for the given module text.
ModuleFormat detectModuleFormat(std::string_view Text);

/// Parses "mini" / "llvm" / "auto" (as in `--format`); false on junk.
bool parseModuleFormat(const std::string &Name, ModuleFormat &Out);
const char *moduleFormatName(ModuleFormat F);

/// One requested module: where it comes from and how to read it.
struct ModuleSpec {
  enum class Source : uint8_t { File, Stdin, Inline, Profile };
  Source From = Source::File;
  /// File path, inline module text, or profile name (by Source).
  std::string Value;
  /// Module name override; empty derives it (file path, profile name,
  /// "<stdin>", or the name embedded in the text).
  std::string Name;
  ModuleFormat Format = ModuleFormat::Auto;
  /// Profile specs only: overrides the profile's FunctionCount (0 = keep).
  unsigned ProfileFnCount = 0;
};

/// Parses the shared `--input` spec grammar (FILE | - | profile:NAME).
ModuleSpec parseModuleSpec(const std::string &Spec);

/// The CLI help paragraph describing the spec grammar and the shared
/// error-exit convention, so every tool's --help says the same thing.
const char *moduleSpecHelp();

/// One successfully loaded module.
struct LoadedModule {
  std::unique_ptr<Module> M;
  std::string Name;
  ModuleFormat Format = ModuleFormat::MiniIR; ///< resolved, never Auto
  /// Functions the `.ll` frontend refused (present in M as declarations),
  /// with their named reason classes; empty for mini-IR and profiles.
  std::vector<UnsupportedFunctionEntry> Unsupported;
};

/// Result of loading a batch of specs. Loading stops at the first error;
/// `Modules` holds everything loaded before it.
struct LoadResult {
  std::vector<LoadedModule> Modules;
  std::string Error; ///< empty on success; includes the module/file name
  unsigned ErrorLine = 0; ///< 1-based when known, else 0
  unsigned ErrorCol = 0;

  explicit operator bool() const { return Error.empty(); }
};

/// Loads every spec into \p Ctx (which must outlive the modules).
LoadResult loadModules(Context &Ctx, const std::vector<ModuleSpec> &Specs);

/// Single-spec convenience wrapper over loadModules.
LoadResult loadModule(Context &Ctx, const ModuleSpec &Spec);

/// Attaches a loaded module's unsupported-function accounting to its
/// validation report (sets Report.UnsupportedFunctions).
void attachUnsupported(ValidationReport &Report, const LoadedModule &LM);

} // namespace llvmmd

#endif // LLVMMD_DRIVER_MODULELOADER_H
