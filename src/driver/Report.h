//===- Report.h - Validation engine reports ---------------------*- C++ -*-===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The machine-facing output of the validation engine: one entry per
/// function (with per-pass steps in stepwise mode), plus emitters for human
/// text, CSV, and JSON (the `BENCH_*.json` shape).
///
/// Everything in the report except wall-clock fields is a pure function of
/// the input module, pipeline, and rule configuration — independent of the
/// engine's thread count. The JSON emitter therefore omits timing by
/// default, which is what makes `--threads 1` and `--threads 8` reports
/// byte-identical.
///
//===----------------------------------------------------------------------===//

#ifndef LLVMMD_DRIVER_REPORT_H
#define LLVMMD_DRIVER_REPORT_H

#include "triage/Triage.h"
#include "validator/Validator.h"

#include <cstdint>
#include <string>
#include <vector>

namespace llvmmd {

/// One optimization step of one function (stepwise granularity only).
struct StepReport {
  std::string Pass;
  bool Changed = false;   ///< did the pass report transforming the function?
  bool Validated = false; ///< meaningful only when Changed
  /// The verdict was replayed from the memo cache (or a duplicate pair
  /// earlier in the same batch) instead of being validated from scratch.
  bool CacheHit = false;
  /// The replayed verdict came from the persistent verdict store, i.e. was
  /// proven by a *prior process* (warm); a cache hit without this flag was
  /// proven earlier in this process (cold).
  bool WarmHit = false;
  /// The pass claimed a change but the fingerprint is unchanged; validated
  /// in O(1) without building a graph.
  bool SkippedIdentical = false;
  uint64_t Fingerprint = 0; ///< function fingerprint after this step
  ValidationResult Result;
};

/// Per-function outcome.
struct FunctionReportEntry {
  std::string Name;
  uint64_t FingerprintOrig = 0;
  uint64_t FingerprintOpt = 0;
  bool Transformed = false;
  bool Validated = false;
  bool CacheHit = false;
  bool WarmHit = false; ///< see StepReport::WarmHit
  bool SkippedIdentical = false;
  bool Reverted = false;
  /// Stepwise mode: the first pass whose step failed to validate; empty when
  /// every step validated (or in whole-pipeline mode).
  std::string GuiltyPass;
  /// Whole-pipeline verdict. In stepwise mode this is synthesized: Validated
  /// iff every changed step validated, statistics summed over the steps.
  ValidationResult Result;
  std::vector<StepReport> Steps; ///< populated only in stepwise mode
  /// Alarm triage for rejected pairs (Classification == NotRun when the
  /// function validated or the engine's triage phase is disabled).
  TriageResult Triage;
};

/// One function an ingest frontend refused to import (it exists in the
/// module only as a declaration). Reason is the frontend's named reject
/// class (e.g. "vector-type", "indirect-call"); Detail names the concrete
/// construct.
struct UnsupportedFunctionEntry {
  std::string Function;
  std::string Reason;
  std::string Detail;
};

struct ValidationReport {
  std::string ModuleName;
  std::string Pipeline;
  unsigned RuleMask = 0;
  bool Stepwise = false;
  unsigned Threads = 1;
  uint64_t WallMicroseconds = 0; ///< end-to-end engine wall time
  std::vector<FunctionReportEntry> Functions; ///< in module order
  /// Functions the ingest frontend rejected, in textual order (empty for
  /// native mini-IR and generated modules).
  std::vector<UnsupportedFunctionEntry> UnsupportedFunctions;

  // Aggregates (derived, always consistent with Functions).
  unsigned total() const;
  unsigned transformed() const;
  unsigned validated() const;
  unsigned reverted() const;
  unsigned cacheHits() const;
  /// The subset of cacheHits() replayed from the persistent verdict store
  /// (proven by a prior process). cacheHits() - warmHits() are cold
  /// in-process replays.
  unsigned warmHits() const;
  unsigned skippedIdentical() const;
  /// Number of frontend-rejected functions (UnsupportedFunctions.size()).
  unsigned unsupportedFunctions() const;
  /// Triage roll-ups: rejected pairs with a concrete interpreter witness /
  /// classified suspected-false-alarm (both 0 when triage is off).
  unsigned witnessed() const;
  unsigned suspectedFalseAlarms() const;
  /// The paper's "which extension rule pays most" table at module scale:
  /// (rule name, alarm count) over the triaged false alarms, counting each
  /// function's attributed missing rule ("(combined)" when only the full
  /// extension set closes the gap). Sorted by count descending, name
  /// ascending — deterministic for any thread count. Empty when triage was
  /// off or attributed nothing.
  std::vector<std::pair<std::string, unsigned>> missingRuleCounts() const;
  uint64_t rewrites() const;
  uint64_t graphNodes() const;
  /// Sum of per-pair validation wall times (CPU-ish time; exceeds
  /// WallMicroseconds when validation ran in parallel).
  uint64_t validationMicroseconds() const;
  /// The paper's metric: validated / transformed (1.0 when nothing was
  /// transformed).
  double validationRate() const;
};

/// Human-readable report: summary header, one line per function, failures
/// annotated with the guilty pass / reason.
std::string reportToText(const ValidationReport &R);

/// CSV: a header row plus one row per function (steps are flattened into
/// extra rows in stepwise mode, marked by the `pass` column).
std::string reportToCSV(const ValidationReport &R);

/// JSON in the BENCH_*.json shape. With \p IncludeTiming false (the
/// default) the output contains no wall-clock or thread-count fields and is
/// byte-identical for any engine thread count.
std::string reportToJSON(const ValidationReport &R,
                         bool IncludeTiming = false);

/// One function entry as a single-line JSON object — the same bytes the
/// full report emitter nests inside "functions" (modulo indentation), so a
/// consumer of streamed per-function frames (the validation server) sees
/// exactly what the final report will say. Never includes timing.
std::string functionEntryToJSON(const FunctionReportEntry &F);

/// The result of one engine suite run: one ValidationReport per module (in
/// submission order) plus a roll-up. Like ValidationReport, everything
/// except the wall-clock fields is independent of the thread count.
struct SuiteReport {
  std::string Pipeline;
  unsigned RuleMask = 0;
  bool Stepwise = false;
  unsigned Threads = 1;
  uint64_t WallMicroseconds = 0; ///< end-to-end suite wall time
  /// Per-phase wall-time breakdown for this run (phase or pass name →
  /// microseconds), in engine emission order. Opt-in in the emitters
  /// (IncludeTiming), so default suite output stays byte-identical across
  /// thread counts and with telemetry on or off.
  std::vector<std::pair<std::string, uint64_t>> PhaseMicroseconds;
  std::vector<ValidationReport> Modules;

  // Roll-up aggregates over all modules.
  unsigned modules() const { return static_cast<unsigned>(Modules.size()); }
  unsigned total() const;
  unsigned transformed() const;
  unsigned validated() const;
  unsigned reverted() const;
  unsigned cacheHits() const;
  unsigned warmHits() const;
  unsigned skippedIdentical() const;
  unsigned unsupportedFunctions() const;
  unsigned witnessed() const;
  unsigned suspectedFalseAlarms() const;
  /// Suite-scale missing-rule aggregation (see
  /// ValidationReport::missingRuleCounts), summed over all modules.
  std::vector<std::pair<std::string, unsigned>> missingRuleCounts() const;
  double validationRate() const;
};

/// Human-readable suite report: the roll-up summary followed by every
/// module's text report.
std::string suiteToText(const SuiteReport &S);

/// CSV over all modules: the per-module columns prefixed by a `module`
/// column.
std::string suiteToCSV(const SuiteReport &S, bool IncludeTiming = false);

/// JSON: schema llvmmd-suite-report-v1 with a summary object and the
/// per-module reports nested under "modules". Deterministic for any thread
/// count unless \p IncludeTiming is set.
std::string suiteToJSON(const SuiteReport &S, bool IncludeTiming = false);

} // namespace llvmmd

#endif // LLVMMD_DRIVER_REPORT_H
