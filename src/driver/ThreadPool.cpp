//===- ThreadPool.cpp - Work-stealing thread pool -----------------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//

#include "driver/ThreadPool.h"

#include <algorithm>

using namespace llvmmd;

ThreadPool::ThreadPool(unsigned ThreadCount) {
  if (ThreadCount == 0) {
    ThreadCount = std::thread::hardware_concurrency();
    if (ThreadCount == 0)
      ThreadCount = 1;
  }
  Queues.reserve(ThreadCount);
  for (unsigned I = 0; I < ThreadCount; ++I)
    Queues.emplace_back(std::make_unique<WorkerQueue>());
  Workers.reserve(ThreadCount);
  for (unsigned I = 0; I < ThreadCount; ++I)
    Workers.emplace_back([this, I] { workerLoop(I); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Guard(Lock);
    ShuttingDown = true;
  }
  WorkCV.notify_all();
  for (std::thread &T : Workers)
    T.join();
}

void ThreadPool::parallelFor(size_t N,
                             const std::function<void(size_t)> &Body) {
  if (N == 0)
    return;

  std::unique_lock<std::mutex> Guard(Lock);

  // Seed the deques with contiguous chunks: good locality for the common
  // case, and stealing rebalances whatever turns out to be uneven. Seeding
  // happens under the main Lock so a worker that slept through an earlier
  // batch can never observe these jobs together with a stale (or null)
  // batch body — it either wakes before this critical section (sees empty
  // queues, Body == nullptr, and re-waits) or after it (sees the new
  // generation and body together).
  const size_t T = Workers.size();
  for (size_t W = 0; W < T; ++W) {
    size_t Lo = N * W / T, Hi = N * (W + 1) / T;
    std::lock_guard<std::mutex> QGuard(Queues[W]->Lock);
    for (size_t I = Lo; I < Hi; ++I)
      Queues[W]->Jobs.push_back(I);
  }

  this->Body = &Body;
  Remaining = N;
  ++Generation;
  WorkCV.notify_all();
  // Wait for completion AND for every participant to leave its pop loop, so
  // the next batch cannot seed queues while a straggler could still pop with
  // this batch's (about to dangle) body pointer.
  DoneCV.wait(Guard, [this] { return Remaining == 0 && ActiveWorkers == 0; });
  this->Body = nullptr;
}

bool ThreadPool::popJob(unsigned Id, size_t &Job) {
  {
    WorkerQueue &Own = *Queues[Id];
    std::lock_guard<std::mutex> Guard(Own.Lock);
    if (!Own.Jobs.empty()) {
      Job = Own.Jobs.back();
      Own.Jobs.pop_back();
      return true;
    }
  }
  // Steal from the oldest end of a sibling's deque.
  for (size_t Offset = 1; Offset < Queues.size(); ++Offset) {
    WorkerQueue &Victim = *Queues[(Id + Offset) % Queues.size()];
    std::lock_guard<std::mutex> Guard(Victim.Lock);
    if (!Victim.Jobs.empty()) {
      Job = Victim.Jobs.front();
      Victim.Jobs.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::workerLoop(unsigned Id) {
  uint64_t SeenGeneration = 0;
  while (true) {
    const std::function<void(size_t)> *Batch;
    {
      std::unique_lock<std::mutex> Guard(Lock);
      WorkCV.wait(Guard, [&] {
        return ShuttingDown || Generation != SeenGeneration;
      });
      if (ShuttingDown)
        return;
      SeenGeneration = Generation;
      Batch = Body;
      // Woke for a batch that already completed (this worker slept through
      // it): nothing to do, re-arm for the next one.
      if (!Batch)
        continue;
      ++ActiveWorkers;
    }

    size_t Job, Finished = 0;
    while (popJob(Id, Job)) {
      (*Batch)(Job);
      ++Finished;
    }
    {
      std::lock_guard<std::mutex> Guard(Lock);
      Remaining -= Finished;
      --ActiveWorkers;
      if (Remaining == 0 && ActiveWorkers == 0)
        DoneCV.notify_all();
    }
  }
}
