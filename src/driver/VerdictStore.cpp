//===- VerdictStore.cpp - Persistent cross-process verdict store --------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
//
// v3 on-disk layout (all integers little-endian, see support/Hashing.h):
//
//   header   u64 magic           "LMDVSTR\x01"
//            u32 format version  VerdictStore::FormatVersion
//            u32 shard count     S (>= 1)
//            u64 config digest   verdictStoreConfigDigest at save time
//            u64 verdict total   sum of the index's verdict counts
//            u64 triage total    sum of the index's triage counts
//            u64 index hash      FNV-1a over the S * 40 index bytes
//   index    S records, 40 bytes each:
//            u64 offset          absolute, PageBytes-aligned
//            u64 bytes           shard payload size (padding excluded)
//            u64 verdict count, u64 triage count
//            u64 payload hash    FNV-1a over the shard payload
//   shards   at their offsets, zero-padded up to the next shard; the file
//            ends exactly at the last shard's final payload byte, so both
//            truncation and appended garbage break the size equation.
//
// Entries are partitioned by hashing the key's Config field (which folds in
// the per-module globals digest), so one module's verdicts form one shard
// and a reader probing for one module touches one shard's pages. Layout is
// fully deterministic: shard count derives from the entry count, offsets
// are forced to the canonical packing, entries sort by key within a shard.
//
// Shard payload:  <verdict entries> <triage entries>  (counts in the index)
//   per verdict entry:
//            u64 fpA, u64 fpB, u64 config
//            u8  flags           bit0 Validated, bit1 Unsupported,
//                                bit2 EqualOnConstruction
//            u64 graph nodes, live nodes, rewrites, sharing merges,
//                iterations, microseconds
//            u32 reason length + raw bytes
//   per triage entry:
//            u64 fpA, u64 fpB, u64 config, u64 options digest
//            u8  classification
//            u8  flags           bit0 Reduced, bit1 ReduceMinimal,
//                                bit2 GapRan, bit3 GapDiverged,
//                                bit4 ClosedByAllRules
//            u32 inputs tried, inputs skipped, reduce validations,
//                missing-rule mask
//            u64 orig/opt insts before, orig/opt insts after
//            u32 witness-input count + per input (u32 length + bytes)
//            6 strings (u32 length + bytes each): witness divergence,
//                reduced orig, reduced opt, gap node a, gap node b,
//                missing rule
//
// v2 (still read, rewritten as v3 on the next save) was one flat payload:
// the same header magic/version, then u32 reserved, u64 config digest,
// u64 entry count, u64 payload hash, the verdict entries, a u64 triage
// count, and the triage entries — all behind a single whole-payload hash.
//
//===----------------------------------------------------------------------===//

#include "driver/VerdictStore.h"

#include "normalize/Rules.h"
#include "support/Hashing.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#ifndef _WIN32
#include <fcntl.h>
#include <sys/file.h>
#include <sys/mman.h>
#include <unistd.h>
#endif

using namespace llvmmd;

size_t VerdictKeyHash::operator()(const VerdictKey &K) const {
  uint64_t H = hashCombine(K.FpA, K.FpB);
  H = hashCombine(H, K.Config);
  return static_cast<size_t>(H);
}

uint64_t llvmmd::verdictStoreConfigDigest(const RuleConfig &Rules) {
  uint64_t H = hashCombine(VerdictStore::SemanticsSalt, Rules.Mask);
  H = hashCombine(H, static_cast<uint64_t>(Rules.Strategy));
  H = hashCombine(H, Rules.MaxIterations);
  return H;
}

namespace {

constexpr uint64_t StoreMagic = 0x0152545356444d4cULL; // "LMDVSTR\x01" LE
constexpr uint32_t LegacyVersion2 = 2;
// magic + version + shard count + digest + verdict total + triage total +
// index hash.
constexpr size_t HeaderSizeV3 = 8 + 4 + 4 + 8 + 8 + 8 + 8;
constexpr size_t IndexRecordSize = 8 + 8 + 8 + 8 + 8;

size_t alignToPage(size_t N) {
  return (N + VerdictStore::PageBytes - 1) & ~(VerdictStore::PageBytes - 1);
}

/// Deterministic shard count for a store holding \p Entries entries total:
/// a power of two targeting ~128 entries per shard, clamped to [1, 64] so
/// small stores stay one page of index + one shard and huge ones do not
/// drown in padding.
uint32_t shardCountFor(size_t Entries) {
  size_t Want = (Entries + 127) / 128;
  uint32_t S = 1;
  while (S < Want && S < 64)
    S <<= 1;
  return S;
}

/// Which shard a key lives in. Keyed on Config only: the per-module globals
/// digest folds into Config, so all of one module's entries land together.
uint32_t shardFor(uint64_t Config, uint32_t ShardCount) {
  return static_cast<uint32_t>(hashCombine(0x9e3779b97f4a7c15ULL, Config) &
                               (ShardCount - 1));
}

enum ResultFlags : uint8_t {
  RF_Validated = 1u << 0,
  RF_Unsupported = 1u << 1,
  RF_EqualOnConstruction = 1u << 2,
};

void appendEntry(std::string &Out, const VerdictKey &K,
                 const ValidationResult &R) {
  appendU64LE(Out, K.FpA);
  appendU64LE(Out, K.FpB);
  appendU64LE(Out, K.Config);
  uint8_t Flags = (R.Validated ? RF_Validated : 0) |
                  (R.Unsupported ? RF_Unsupported : 0) |
                  (R.EqualOnConstruction ? RF_EqualOnConstruction : 0);
  Out.push_back(static_cast<char>(Flags));
  appendU64LE(Out, R.GraphNodes);
  appendU64LE(Out, R.LiveNodes);
  appendU64LE(Out, R.Rewrites);
  appendU64LE(Out, R.SharingMerges);
  appendU64LE(Out, R.Iterations);
  appendU64LE(Out, R.Microseconds);
  appendU32LE(Out, static_cast<uint32_t>(R.Reason.size()));
  Out.append(R.Reason);
}

enum TriageFlags : uint8_t {
  TF_Reduced = 1u << 0,
  TF_ReduceMinimal = 1u << 1,
  TF_GapRan = 1u << 2,
  TF_GapDiverged = 1u << 3,
  TF_ClosedByAllRules = 1u << 4,
};

void appendTriageEntry(std::string &Out, const VerdictKey &K,
                       const StoredTriage &T) {
  appendU64LE(Out, K.FpA);
  appendU64LE(Out, K.FpB);
  appendU64LE(Out, K.Config);
  appendU64LE(Out, T.OptionsDigest);
  const TriageResult &R = T.Result;
  Out.push_back(static_cast<char>(R.Classification));
  uint8_t Flags = (R.Reduced ? TF_Reduced : 0) |
                  (R.ReduceMinimal ? TF_ReduceMinimal : 0) |
                  (R.GapRan ? TF_GapRan : 0) |
                  (R.GapDiverged ? TF_GapDiverged : 0) |
                  (R.ClosedByAllRules ? TF_ClosedByAllRules : 0);
  Out.push_back(static_cast<char>(Flags));
  appendU32LE(Out, R.InputsTried);
  appendU32LE(Out, R.InputsSkipped);
  appendU32LE(Out, R.ReduceValidations);
  appendU32LE(Out, R.MissingRuleMask);
  appendU64LE(Out, R.OrigInstsBefore);
  appendU64LE(Out, R.OptInstsBefore);
  appendU64LE(Out, R.OrigInstsAfter);
  appendU64LE(Out, R.OptInstsAfter);
  appendU32LE(Out, static_cast<uint32_t>(R.WitnessInputs.size()));
  for (const std::string &In : R.WitnessInputs)
    appendLPString(Out, In);
  appendLPString(Out, R.WitnessDivergence);
  appendLPString(Out, R.ReducedOrig);
  appendLPString(Out, R.ReducedOpt);
  appendLPString(Out, R.GapNodeA);
  appendLPString(Out, R.GapNodeB);
  appendLPString(Out, R.MissingRule);
}

bool readTriageEntry(const char *Data, size_t Size, size_t &Cur, VerdictKey &K,
                     StoredTriage &T) {
  if (!readU64LE(Data, Size, Cur, K.FpA) ||
      !readU64LE(Data, Size, Cur, K.FpB) ||
      !readU64LE(Data, Size, Cur, K.Config) ||
      !readU64LE(Data, Size, Cur, T.OptionsDigest))
    return false;
  if (Size - Cur < 2)
    return false;
  uint8_t Cls = static_cast<unsigned char>(Data[Cur++]);
  // An out-of-range classification byte means the file cannot have been
  // produced by this writer; treat it like any other corruption.
  if (Cls > static_cast<uint8_t>(TriageClassification::Inconclusive))
    return false;
  TriageResult &R = T.Result;
  R.Classification = static_cast<TriageClassification>(Cls);
  uint8_t Flags = static_cast<unsigned char>(Data[Cur++]);
  R.Reduced = Flags & TF_Reduced;
  R.ReduceMinimal = Flags & TF_ReduceMinimal;
  R.GapRan = Flags & TF_GapRan;
  R.GapDiverged = Flags & TF_GapDiverged;
  R.ClosedByAllRules = Flags & TF_ClosedByAllRules;
  uint32_t WitnessCount = 0;
  if (!readU32LE(Data, Size, Cur, R.InputsTried) ||
      !readU32LE(Data, Size, Cur, R.InputsSkipped) ||
      !readU32LE(Data, Size, Cur, R.ReduceValidations) ||
      !readU32LE(Data, Size, Cur, R.MissingRuleMask) ||
      !readU64LE(Data, Size, Cur, R.OrigInstsBefore) ||
      !readU64LE(Data, Size, Cur, R.OptInstsBefore) ||
      !readU64LE(Data, Size, Cur, R.OrigInstsAfter) ||
      !readU64LE(Data, Size, Cur, R.OptInstsAfter) ||
      !readU32LE(Data, Size, Cur, WitnessCount))
    return false;
  // Bound the count by the bytes actually left (each input costs at least
  // its u32 length) so a corrupt count cannot drive a huge allocation.
  if (WitnessCount > (Size - Cur) / 4)
    return false;
  R.WitnessInputs.resize(WitnessCount);
  for (std::string &In : R.WitnessInputs)
    if (!readLPString(Data, Size, Cur, In))
      return false;
  return readLPString(Data, Size, Cur, R.WitnessDivergence) &&
         readLPString(Data, Size, Cur, R.ReducedOrig) &&
         readLPString(Data, Size, Cur, R.ReducedOpt) &&
         readLPString(Data, Size, Cur, R.GapNodeA) &&
         readLPString(Data, Size, Cur, R.GapNodeB) &&
         readLPString(Data, Size, Cur, R.MissingRule);
}

bool readEntry(const char *Data, size_t Size, size_t &Cur, VerdictKey &K,
               ValidationResult &R) {
  if (!readU64LE(Data, Size, Cur, K.FpA) ||
      !readU64LE(Data, Size, Cur, K.FpB) ||
      !readU64LE(Data, Size, Cur, K.Config))
    return false;
  if (Cur >= Size)
    return false;
  uint8_t Flags = static_cast<unsigned char>(Data[Cur++]);
  R.Validated = Flags & RF_Validated;
  R.Unsupported = Flags & RF_Unsupported;
  R.EqualOnConstruction = Flags & RF_EqualOnConstruction;
  uint32_t ReasonLen = 0;
  if (!readU64LE(Data, Size, Cur, R.GraphNodes) ||
      !readU64LE(Data, Size, Cur, R.LiveNodes) ||
      !readU64LE(Data, Size, Cur, R.Rewrites) ||
      !readU64LE(Data, Size, Cur, R.SharingMerges) ||
      !readU64LE(Data, Size, Cur, R.Iterations) ||
      !readU64LE(Data, Size, Cur, R.Microseconds) ||
      !readU32LE(Data, Size, Cur, ReasonLen))
    return false;
  if (Size - Cur < ReasonLen)
    return false;
  R.Reason.assign(Data + Cur, ReasonLen);
  Cur += ReasonLen;
  return true;
}

/// Parses one shard payload: \p VerdictCount entries, then \p TriageCount
/// triage entries, nothing else. The caller has already verified the hash.
bool parseShardPayload(const char *Data, size_t Size, uint64_t VerdictCount,
                       uint64_t TriageCount, VerdictMap &V, TriageMap &T) {
  size_t Cur = 0;
  V.reserve(V.size() + static_cast<size_t>(VerdictCount));
  for (uint64_t I = 0; I < VerdictCount; ++I) {
    VerdictKey K;
    ValidationResult R;
    if (!readEntry(Data, Size, Cur, K, R))
      return false;
    V.emplace(K, std::move(R));
  }
  T.reserve(T.size() + static_cast<size_t>(TriageCount));
  for (uint64_t I = 0; I < TriageCount; ++I) {
    VerdictKey K;
    StoredTriage ST;
    if (!readTriageEntry(Data, Size, Cur, K, ST))
      return false;
    T.emplace(K, std::move(ST));
  }
  return Cur == Size;
}

/// The whole file, mmap'd read-only when the platform allows it and read
/// into memory otherwise. Either way `data()/size()` view the full bytes;
/// with mmap the kernel faults pages in only as they are touched, which is
/// what makes the lazy MappedVerdictStore O(pages touched).
class FileBuffer {
public:
  FileBuffer() = default;
  FileBuffer(const FileBuffer &) = delete;
  FileBuffer &operator=(const FileBuffer &) = delete;
  ~FileBuffer() {
#ifndef _WIN32
    if (Mapped)
      ::munmap(Mapped, Size);
#endif
  }

  /// False only when the file cannot be opened (the NoFile case).
  bool open(const std::string &Path) {
#ifndef _WIN32
    int Fd = ::open(Path.c_str(), O_RDONLY | O_CLOEXEC);
    if (Fd < 0)
      return false;
    off_t End = ::lseek(Fd, 0, SEEK_END);
    if (End > 0) {
      void *M = ::mmap(nullptr, static_cast<size_t>(End), PROT_READ,
                       MAP_PRIVATE, Fd, 0);
      if (M != MAP_FAILED) {
        Mapped = M;
        Data = static_cast<const char *>(M);
        Size = static_cast<size_t>(End);
        ::close(Fd);
        return true;
      }
    }
    ::close(Fd);
#endif
    std::ifstream In(Path, std::ios::binary);
    if (!In)
      return false;
    std::ostringstream SS;
    SS << In.rdbuf();
    Owned = SS.str();
    Data = Owned.data();
    Size = Owned.size();
    return true;
  }

  const char *data() const { return Data; }
  size_t size() const { return Size; }

private:
  const char *Data = nullptr;
  size_t Size = 0;
  std::string Owned;
#ifndef _WIN32
  void *Mapped = nullptr;
#endif
};

struct ShardRecord {
  uint64_t Offset = 0;
  uint64_t Bytes = 0;
  uint64_t VerdictCount = 0;
  uint64_t TriageCount = 0;
  uint64_t PayloadHash = 0;
};

struct StoreIndex {
  uint64_t ConfigDigest = 0;
  uint64_t VerdictTotal = 0;
  uint64_t TriageTotal = 0;
  std::vector<ShardRecord> Shards;
};

/// Reads the magic and version. Returns Loaded when \p Version is one this
/// build can read (the caller dispatches), an error status otherwise.
VerdictStore::LoadStatus readMagicAndVersion(const char *Data, size_t Size,
                                             const std::string &Path,
                                             uint32_t &Version,
                                             std::string &Message) {
  size_t Cur = 0;
  uint64_t Magic = 0;
  if (!readU64LE(Data, Size, Cur, Magic) ||
      !readU32LE(Data, Size, Cur, Version)) {
    Message = "truncated header";
    return VerdictStore::LoadStatus::Corrupt;
  }
  if (Magic != StoreMagic) {
    Message = "'" + Path + "' is not a verdict store";
    return VerdictStore::LoadStatus::BadMagic;
  }
  if (Version != VerdictStore::FormatVersion && Version != LegacyVersion2) {
    Message = "format version " + std::to_string(Version) +
              " (this build reads " +
              std::to_string(VerdictStore::FormatVersion) + " and " +
              std::to_string(LegacyVersion2) + ")";
    return VerdictStore::LoadStatus::BadVersion;
  }
  return VerdictStore::LoadStatus::Loaded;
}

/// Parses and validates a v3 header + shard index (magic/version already
/// read): index hash, canonical offsets, exact file size, count totals.
/// Everything here is O(index); shard payload hashes are NOT checked.
VerdictStore::LoadStatus parseV3Index(const char *Data, size_t Size,
                                      StoreIndex &Idx, std::string &Message) {
  size_t Cur = 8 + 4; // past magic + version
  uint32_t ShardCount = 0;
  uint64_t IndexHash = 0;
  if (!readU32LE(Data, Size, Cur, ShardCount) ||
      !readU64LE(Data, Size, Cur, Idx.ConfigDigest) ||
      !readU64LE(Data, Size, Cur, Idx.VerdictTotal) ||
      !readU64LE(Data, Size, Cur, Idx.TriageTotal) ||
      !readU64LE(Data, Size, Cur, IndexHash)) {
    Message = "truncated header";
    return VerdictStore::LoadStatus::Corrupt;
  }
  if (ShardCount == 0 || ShardCount > (1u << 20) ||
      Size - Cur < static_cast<size_t>(ShardCount) * IndexRecordSize) {
    Message = "truncated shard index";
    return VerdictStore::LoadStatus::Corrupt;
  }
  if (hashBytes(Data + Cur, ShardCount * IndexRecordSize) != IndexHash) {
    Message = "shard index checksum mismatch";
    return VerdictStore::LoadStatus::Corrupt;
  }
  Idx.Shards.resize(ShardCount);
  for (ShardRecord &S : Idx.Shards) {
    readU64LE(Data, Size, Cur, S.Offset);
    readU64LE(Data, Size, Cur, S.Bytes);
    readU64LE(Data, Size, Cur, S.VerdictCount);
    readU64LE(Data, Size, Cur, S.TriageCount);
    readU64LE(Data, Size, Cur, S.PayloadHash);
  }
  // The layout is canonical; anything off-pattern did not come from this
  // writer and is rejected rather than interpreted.
  uint64_t VerdictSum = 0, TriageSum = 0;
  size_t Expect = alignToPage(Cur);
  for (const ShardRecord &S : Idx.Shards) {
    if (S.Offset != Expect || S.Offset > Size || S.Bytes > Size - S.Offset) {
      Message = "shard index out of bounds";
      return VerdictStore::LoadStatus::Corrupt;
    }
    Expect = alignToPage(S.Offset + S.Bytes);
    VerdictSum += S.VerdictCount;
    TriageSum += S.TriageCount;
  }
  const ShardRecord &Last = Idx.Shards.back();
  if (Last.Offset + Last.Bytes != Size) {
    Message = "file size does not match the shard index";
    return VerdictStore::LoadStatus::Corrupt;
  }
  if (VerdictSum != Idx.VerdictTotal || TriageSum != Idx.TriageTotal) {
    Message = "entry totals do not match the shard index";
    return VerdictStore::LoadStatus::Corrupt;
  }
  return VerdictStore::LoadStatus::Loaded;
}

/// Full v2 flat-payload parse (magic/version already read). Kept verbatim
/// from the v2 reader so old stores keep loading byte-for-byte.
VerdictStore::LoadResult loadV2(const char *Data, size_t Size,
                                uint64_t ConfigDigest, VerdictMap &Map,
                                TriageMap *Triage) {
  VerdictStore::LoadResult LR;
  size_t Cur = 8 + 4; // past magic + version
  uint64_t FileDigest = 0, Count = 0, PayloadHash = 0;
  uint32_t Reserved = 0;
  if (!readU32LE(Data, Size, Cur, Reserved) ||
      !readU64LE(Data, Size, Cur, FileDigest) ||
      !readU64LE(Data, Size, Cur, Count) ||
      !readU64LE(Data, Size, Cur, PayloadHash)) {
    LR.Status = VerdictStore::LoadStatus::Corrupt;
    LR.Message = "truncated header";
    return LR;
  }
  if (FileDigest != ConfigDigest) {
    LR.Status = VerdictStore::LoadStatus::ConfigMismatch;
    LR.Message = "store was produced under a different rule configuration";
    return LR;
  }
  LR.EntriesInFile = Count;
  if (hashBytes(Data + Cur, Size - Cur) != PayloadHash) {
    LR.Status = VerdictStore::LoadStatus::Corrupt;
    LR.Message = "payload checksum mismatch";
    return LR;
  }

  // Parse into scratch maps first so a malformed payload (count lies, bad
  // entry bounds) cannot leave Map half-merged.
  VerdictMap Parsed;
  Parsed.reserve(static_cast<size_t>(Count));
  for (uint64_t I = 0; I < Count; ++I) {
    VerdictKey K;
    ValidationResult R;
    if (!readEntry(Data, Size, Cur, K, R)) {
      LR.Status = VerdictStore::LoadStatus::Corrupt;
      LR.Message = "truncated at entry " + std::to_string(I) + " of " +
                   std::to_string(Count);
      return LR;
    }
    Parsed.emplace(K, std::move(R));
  }
  uint64_t TriageCount = 0;
  TriageMap ParsedTriage;
  if (!readU64LE(Data, Size, Cur, TriageCount)) {
    LR.Status = VerdictStore::LoadStatus::Corrupt;
    LR.Message = "truncated triage section header";
    return LR;
  }
  ParsedTriage.reserve(static_cast<size_t>(TriageCount));
  for (uint64_t I = 0; I < TriageCount; ++I) {
    VerdictKey K;
    StoredTriage T;
    if (!readTriageEntry(Data, Size, Cur, K, T)) {
      LR.Status = VerdictStore::LoadStatus::Corrupt;
      LR.Message = "truncated at triage entry " + std::to_string(I) + " of " +
                   std::to_string(TriageCount);
      return LR;
    }
    ParsedTriage.emplace(K, std::move(T));
  }
  if (Cur != Size) {
    LR.Status = VerdictStore::LoadStatus::Corrupt;
    LR.Message = "trailing bytes after last entry";
    return LR;
  }

  for (auto &KV : Parsed)
    if (Map.emplace(KV.first, std::move(KV.second)).second)
      ++LR.EntriesMerged;
  if (Triage)
    for (auto &KV : ParsedTriage)
      Triage->emplace(KV.first, std::move(KV.second));
  LR.Status = VerdictStore::LoadStatus::Loaded;
  return LR;
}

/// Advisory exclusive lock on `Path + ".lock"` held for the save's whole
/// load-merge-rename sequence. Without it two shards could both load the
/// same on-disk state and the second rename would silently drop the first
/// shard's new entries. Best-effort: if the lock file cannot be created the
/// save proceeds unlocked (degrading to last-writer-wins), and on Windows
/// (no flock) it is a no-op.
class SaveLock {
public:
  explicit SaveLock(const std::string &Path) {
#ifndef _WIN32
    Fd = ::open((Path + ".lock").c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
    if (Fd >= 0 && ::flock(Fd, LOCK_EX) != 0) {
      ::close(Fd);
      Fd = -1;
    }
#else
    (void)Path;
#endif
  }
  ~SaveLock() {
#ifndef _WIN32
    if (Fd >= 0) {
      ::flock(Fd, LOCK_UN);
      ::close(Fd);
    }
#endif
  }
  SaveLock(const SaveLock &) = delete;
  SaveLock &operator=(const SaveLock &) = delete;

private:
  int Fd = -1;
};

} // namespace

std::string VerdictStore::serialize(uint64_t ConfigDigest,
                                    const VerdictMap &Map,
                                    const TriageMap *Triage) {
  // Deterministic bytes: shard count derives from the entry count, entries
  // sort by key within their shard, offsets follow the canonical packing —
  // the same maps always serialize identically regardless of hash-table
  // iteration order, so stores diff cleanly and CI cache keys are stable.
  auto KeyLess = [](const VerdictKey &KA, const VerdictKey &KB) {
    if (KA.FpA != KB.FpA)
      return KA.FpA < KB.FpA;
    if (KA.FpB != KB.FpB)
      return KA.FpB < KB.FpB;
    return KA.Config < KB.Config;
  };

  size_t TriageSize = Triage ? Triage->size() : 0;
  uint32_t ShardCount = shardCountFor(Map.size() + TriageSize);

  std::vector<std::vector<const VerdictMap::value_type *>> Entries(ShardCount);
  for (const auto &KV : Map)
    Entries[shardFor(KV.first.Config, ShardCount)].push_back(&KV);
  std::vector<std::vector<const TriageMap::value_type *>> TriageEntries(
      ShardCount);
  if (Triage)
    for (const auto &KV : *Triage)
      TriageEntries[shardFor(KV.first.Config, ShardCount)].push_back(&KV);

  std::vector<std::string> Payloads(ShardCount);
  std::vector<ShardRecord> Index(ShardCount);
  for (uint32_t S = 0; S < ShardCount; ++S) {
    auto ByKey = [&](const auto *A, const auto *B) {
      return KeyLess(A->first, B->first);
    };
    std::sort(Entries[S].begin(), Entries[S].end(), ByKey);
    std::sort(TriageEntries[S].begin(), TriageEntries[S].end(), ByKey);
    std::string &P = Payloads[S];
    P.reserve(Entries[S].size() * 80);
    for (const auto *KV : Entries[S])
      appendEntry(P, KV->first, KV->second);
    for (const auto *KV : TriageEntries[S])
      appendTriageEntry(P, KV->first, KV->second);
    Index[S].Bytes = P.size();
    Index[S].VerdictCount = Entries[S].size();
    Index[S].TriageCount = TriageEntries[S].size();
    Index[S].PayloadHash = hashBytes(P.data(), P.size());
  }

  size_t Offset = alignToPage(HeaderSizeV3 + ShardCount * IndexRecordSize);
  for (uint32_t S = 0; S < ShardCount; ++S) {
    Index[S].Offset = Offset;
    Offset = alignToPage(Offset + Index[S].Bytes);
  }

  std::string IndexBytes;
  IndexBytes.reserve(ShardCount * IndexRecordSize);
  for (const ShardRecord &S : Index) {
    appendU64LE(IndexBytes, S.Offset);
    appendU64LE(IndexBytes, S.Bytes);
    appendU64LE(IndexBytes, S.VerdictCount);
    appendU64LE(IndexBytes, S.TriageCount);
    appendU64LE(IndexBytes, S.PayloadHash);
  }

  std::string Out;
  Out.reserve(Index.back().Offset + Index.back().Bytes);
  appendU64LE(Out, StoreMagic);
  appendU32LE(Out, FormatVersion);
  appendU32LE(Out, ShardCount);
  appendU64LE(Out, ConfigDigest);
  appendU64LE(Out, static_cast<uint64_t>(Map.size()));
  appendU64LE(Out, static_cast<uint64_t>(TriageSize));
  appendU64LE(Out, hashBytes(IndexBytes.data(), IndexBytes.size()));
  Out += IndexBytes;
  for (uint32_t S = 0; S < ShardCount; ++S) {
    Out.resize(Index[S].Offset); // zero padding up to the shard boundary
    Out += Payloads[S];
  }
  return Out;
}

VerdictStore::LoadResult VerdictStore::load(const std::string &Path,
                                            uint64_t ConfigDigest,
                                            VerdictMap &Map,
                                            TriageMap *Triage) {
  LoadResult LR;
  FileBuffer Buf;
  if (!Buf.open(Path)) {
    LR.Status = LoadStatus::NoFile;
    LR.Message = "no store at '" + Path + "'";
    return LR;
  }

  uint32_t Version = 0;
  LR.Status = readMagicAndVersion(Buf.data(), Buf.size(), Path, Version,
                                  LR.Message);
  if (LR.Status != LoadStatus::Loaded)
    return LR;
  if (Version == LegacyVersion2)
    return loadV2(Buf.data(), Buf.size(), ConfigDigest, Map, Triage);

  StoreIndex Idx;
  LR.Status = parseV3Index(Buf.data(), Buf.size(), Idx, LR.Message);
  if (LR.Status != LoadStatus::Loaded)
    return LR;
  if (Idx.ConfigDigest != ConfigDigest) {
    LR.Status = LoadStatus::ConfigMismatch;
    LR.Message = "store was produced under a different rule configuration";
    return LR;
  }
  LR.EntriesInFile = Idx.VerdictTotal;

  // Parse every shard into scratch maps first so a malformed one cannot
  // leave Map half-merged.
  VerdictMap Parsed;
  TriageMap ParsedTriage;
  for (size_t S = 0; S < Idx.Shards.size(); ++S) {
    const ShardRecord &R = Idx.Shards[S];
    const char *P = Buf.data() + R.Offset;
    if (hashBytes(P, R.Bytes) != R.PayloadHash) {
      LR.Status = LoadStatus::Corrupt;
      LR.Message = "shard " + std::to_string(S) + " checksum mismatch";
      return LR;
    }
    if (!parseShardPayload(P, R.Bytes, R.VerdictCount, R.TriageCount, Parsed,
                           ParsedTriage)) {
      LR.Status = LoadStatus::Corrupt;
      LR.Message = "malformed shard " + std::to_string(S);
      return LR;
    }
  }

  for (auto &KV : Parsed)
    if (Map.emplace(KV.first, std::move(KV.second)).second)
      ++LR.EntriesMerged;
  if (Triage)
    for (auto &KV : ParsedTriage)
      Triage->emplace(KV.first, std::move(KV.second));
  LR.Status = LoadStatus::Loaded;
  return LR;
}

std::string VerdictStore::shardPath(const std::string &BasePath,
                                    unsigned Index) {
  return BasePath + ".shard" + std::to_string(Index);
}

VerdictStore::HeaderInfo VerdictStore::peekHeader(const std::string &Path) {
  HeaderInfo HI;
  FileBuffer Buf;
  if (!Buf.open(Path)) {
    HI.Status = LoadStatus::NoFile;
    HI.Message = "no store at '" + Path + "'";
    return HI;
  }
  HI.FileBytes = Buf.size();

  HI.Status = readMagicAndVersion(Buf.data(), Buf.size(), Path, HI.Version,
                                  HI.Message);
  if (HI.Status != LoadStatus::Loaded)
    return HI;

  if (HI.Version == LegacyVersion2) {
    // v2 has no per-section counts outside the payload, so counting triage
    // entries needs the full walk; reuse the loader (any digest accepted —
    // read it out of the header first).
    size_t Cur = 8 + 4;
    uint32_t Reserved = 0;
    if (!readU32LE(Buf.data(), Buf.size(), Cur, Reserved) ||
        !readU64LE(Buf.data(), Buf.size(), Cur, HI.ConfigDigest)) {
      HI.Status = LoadStatus::Corrupt;
      HI.Message = "truncated header";
      return HI;
    }
    VerdictMap Scratch;
    TriageMap ScratchTriage;
    LoadResult LR = load(Path, HI.ConfigDigest, Scratch, &ScratchTriage);
    if (!LR.loaded()) {
      HI.Status = LR.Status;
      HI.Message = LR.Message;
      return HI;
    }
    HI.VerdictEntries = LR.EntriesInFile;
    HI.TriageEntries = ScratchTriage.size();
    HI.Status = LoadStatus::Loaded;
    return HI;
  }

  StoreIndex Idx;
  HI.Status = parseV3Index(Buf.data(), Buf.size(), Idx, HI.Message);
  if (HI.Status != LoadStatus::Loaded)
    return HI;
  // Counts come straight from the verified index — no entry is parsed —
  // but inspection stays honest about damage: every shard checksum is
  // still verified (a pure hash pass, no allocation).
  for (size_t S = 0; S < Idx.Shards.size(); ++S) {
    const ShardRecord &R = Idx.Shards[S];
    if (hashBytes(Buf.data() + R.Offset, R.Bytes) != R.PayloadHash) {
      HI.Status = LoadStatus::Corrupt;
      HI.Message = "shard " + std::to_string(S) + " checksum mismatch";
      return HI;
    }
  }
  HI.ShardCount = static_cast<uint32_t>(Idx.Shards.size());
  HI.ConfigDigest = Idx.ConfigDigest;
  HI.VerdictEntries = Idx.VerdictTotal;
  HI.TriageEntries = Idx.TriageTotal;
  HI.Status = LoadStatus::Loaded;
  return HI;
}

std::vector<VerdictStore::ShardStats>
VerdictStore::peekShards(const std::string &Path, HeaderInfo *Info) {
  HeaderInfo HI;
  std::vector<ShardStats> Out;
  FileBuffer Buf;
  if (!Buf.open(Path)) {
    HI.Status = LoadStatus::NoFile;
    HI.Message = "no store at '" + Path + "'";
    if (Info)
      *Info = HI;
    return Out;
  }
  HI.FileBytes = Buf.size();

  HI.Status = readMagicAndVersion(Buf.data(), Buf.size(), Path, HI.Version,
                                  HI.Message);
  if (HI.Status == LoadStatus::Loaded && HI.Version == LegacyVersion2) {
    // v2 is one flat payload: nothing shard-shaped to report. The header
    // info still comes back (via the full-walk peek) so callers can say
    // "v2, N entries, no shards" instead of failing.
    HI = peekHeader(Path);
    if (Info)
      *Info = HI;
    return Out;
  }
  if (HI.Status != LoadStatus::Loaded) {
    if (Info)
      *Info = HI;
    return Out;
  }

  StoreIndex Idx;
  HI.Status = parseV3Index(Buf.data(), Buf.size(), Idx, HI.Message);
  if (HI.Status != LoadStatus::Loaded) {
    if (Info)
      *Info = HI;
    return Out;
  }
  HI.ShardCount = static_cast<uint32_t>(Idx.Shards.size());
  HI.ConfigDigest = Idx.ConfigDigest;
  HI.VerdictEntries = Idx.VerdictTotal;
  HI.TriageEntries = Idx.TriageTotal;

  Out.reserve(Idx.Shards.size());
  for (const ShardRecord &R : Idx.Shards) {
    ShardStats S;
    S.Offset = R.Offset;
    S.Bytes = R.Bytes;
    S.VerdictEntries = R.VerdictCount;
    S.TriageEntries = R.TriageCount;
    S.ChecksumOk = hashBytes(Buf.data() + R.Offset, R.Bytes) == R.PayloadHash;
    if (!S.ChecksumOk) {
      HI.Status = LoadStatus::Corrupt;
      if (HI.Message.empty())
        HI.Message = "shard " + std::to_string(&R - Idx.Shards.data()) +
                     " checksum mismatch";
    }
    Out.push_back(S);
  }
  if (Info)
    *Info = HI;
  return Out;
}

uint64_t VerdictStore::mergePaths(const std::vector<std::string> &Inputs,
                                  const std::string &OutPath,
                                  uint64_t ConfigDigest, std::string *Error) {
  VerdictMap Merged;
  TriageMap MergedTriage;
  for (const std::string &Path : Inputs) {
    // emplace in load() keeps the existing value per key, so earlier
    // inputs win — document order is precedence order.
    LoadResult LR = load(Path, ConfigDigest, Merged, &MergedTriage);
    if (LR.Status == LoadStatus::NoFile)
      continue; // a worker that never saved is an empty shard, not an error
    if (!LR.loaded()) {
      if (Error)
        *Error = "'" + Path + "': " + LR.Message;
      return ~0ull;
    }
  }
  return save(OutPath, ConfigDigest, Merged, Error, /*MergeExisting=*/true,
              &MergedTriage);
}

uint64_t VerdictStore::save(const std::string &Path, uint64_t ConfigDigest,
                            const VerdictMap &Map, std::string *Error,
                            bool MergeExisting, const TriageMap *Triage) {
  SaveLock Lock(Path);
  const VerdictMap *ToWrite = &Map;
  const TriageMap *TriageToWrite = Triage;
  VerdictMap Merged;
  TriageMap MergedTriage;
  if (MergeExisting) {
    // Union with whatever another shard already saved here. Start from the
    // in-memory maps so the current process wins per key; a store that
    // fails to load (any reason) contributes nothing.
    Merged = Map;
    if (Triage)
      MergedTriage = *Triage;
    VerdictMap OnDisk;
    TriageMap OnDiskTriage;
    if (load(Path, ConfigDigest, OnDisk, &OnDiskTriage).loaded()) {
      for (auto &KV : OnDisk)
        Merged.emplace(KV.first, std::move(KV.second));
      for (auto &KV : OnDiskTriage)
        MergedTriage.emplace(KV.first, std::move(KV.second));
    }
    ToWrite = &Merged;
    // Preserve another shard's triage entries even when this engine ran
    // with triage off (Triage == nullptr): dropping them on save would
    // silently cool future warm runs.
    TriageToWrite = &MergedTriage;
  }

  std::string Bytes = serialize(ConfigDigest, *ToWrite, TriageToWrite);

#ifndef _WIN32
  std::string Tmp = Path + ".tmp." + std::to_string(::getpid());
#else
  std::string Tmp = Path + ".tmp";
#endif
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out || !Out.write(Bytes.data(), static_cast<std::streamsize>(
                                             Bytes.size()))) {
      if (Error)
        *Error = "cannot write '" + Tmp + "'";
      std::remove(Tmp.c_str());
      return ~0ull;
    }
  }
  // POSIX rename atomically replaces the target. Windows' std::rename
  // refuses to overwrite, so fall back to remove-then-rename there (not
  // atomic, but the SaveLock already serializes savers on the same path).
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    std::remove(Path.c_str());
    if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
      if (Error)
        *Error = "cannot rename '" + Tmp + "' to '" + Path + "'";
      std::remove(Tmp.c_str());
      return ~0ull;
    }
  }
  return static_cast<uint64_t>(ToWrite->size());
}

//===----------------------------------------------------------------------===//
// MappedVerdictStore
//===----------------------------------------------------------------------===//

struct MappedVerdictStore::Impl {
  FileBuffer Buf;
  StoreIndex Idx;
  struct Shard {
    bool Materialized = false;
    VerdictMap V;
    TriageMap T;
  };
  std::vector<Shard> Shards;
  unsigned MaterializedCount = 0;

  Shard &shardFor(uint64_t Config) {
    uint32_t S = Idx.Shards.empty()
                     ? 0
                     : ::shardFor(Config,
                                  static_cast<uint32_t>(Idx.Shards.size()));
    Shard &Sh = Shards[S];
    if (Sh.Materialized)
      return Sh;
    Sh.Materialized = true;
    ++MaterializedCount;
    if (!Idx.Shards.empty()) {
      const ShardRecord &R = Idx.Shards[S];
      const char *P = Buf.data() + R.Offset;
      // A shard that fails its checksum (or structure) materializes as
      // empty: lookups miss and the caller re-proves — wasted work, never
      // a wrong answer.
      if (hashBytes(P, R.Bytes) == R.PayloadHash &&
          !parseShardPayload(P, R.Bytes, R.VerdictCount, R.TriageCount, Sh.V,
                             Sh.T)) {
        Sh.V.clear();
        Sh.T.clear();
      }
    }
    return Sh;
  }
};

MappedVerdictStore::MappedVerdictStore() : I(new Impl) {}
MappedVerdictStore::~MappedVerdictStore() = default;

std::unique_ptr<MappedVerdictStore>
MappedVerdictStore::open(const std::string &Path, uint64_t ConfigDigest,
                         VerdictStore::LoadResult *Out) {
  VerdictStore::LoadResult LR;
  std::unique_ptr<MappedVerdictStore> M(new MappedVerdictStore());
  Impl &I = *M->I;
  auto Fail = [&]() -> std::unique_ptr<MappedVerdictStore> {
    if (Out)
      *Out = LR;
    return nullptr;
  };

  if (!I.Buf.open(Path)) {
    LR.Status = VerdictStore::LoadStatus::NoFile;
    LR.Message = "no store at '" + Path + "'";
    return Fail();
  }
  uint32_t Version = 0;
  LR.Status = readMagicAndVersion(I.Buf.data(), I.Buf.size(), Path, Version,
                                  LR.Message);
  if (LR.Status != VerdictStore::LoadStatus::Loaded)
    return Fail();

  if (Version == LegacyVersion2) {
    // Old flat format: no index to be lazy over — materialize everything
    // up front behind the same interface.
    I.Shards.resize(1);
    LR = loadV2(I.Buf.data(), I.Buf.size(), ConfigDigest, I.Shards[0].V,
                &I.Shards[0].T);
    if (!LR.loaded())
      return Fail();
    I.Idx.VerdictTotal = LR.EntriesInFile;
    I.Shards[0].Materialized = true;
    I.MaterializedCount = 1;
  } else {
    LR.Status = parseV3Index(I.Buf.data(), I.Buf.size(), I.Idx, LR.Message);
    if (LR.Status != VerdictStore::LoadStatus::Loaded)
      return Fail();
    if (I.Idx.ConfigDigest != ConfigDigest) {
      LR.Status = VerdictStore::LoadStatus::ConfigMismatch;
      LR.Message = "store was produced under a different rule configuration";
      return Fail();
    }
    I.Shards.resize(I.Idx.Shards.size());
    LR.EntriesInFile = I.Idx.VerdictTotal;
  }
  if (Out)
    *Out = LR;
  return M;
}

const ValidationResult *MappedVerdictStore::lookup(const VerdictKey &K) {
  Impl::Shard &S = I->shardFor(K.Config);
  auto It = S.V.find(K);
  return It == S.V.end() ? nullptr : &It->second;
}

const StoredTriage *MappedVerdictStore::lookupTriage(const VerdictKey &K) {
  Impl::Shard &S = I->shardFor(K.Config);
  auto It = S.T.find(K);
  return It == S.T.end() ? nullptr : &It->second;
}

unsigned MappedVerdictStore::numShards() const {
  return static_cast<unsigned>(I->Shards.size());
}

unsigned MappedVerdictStore::shardsMaterialized() const {
  return I->MaterializedCount;
}

uint64_t MappedVerdictStore::verdictEntriesInFile() const {
  return I->Idx.VerdictTotal;
}
