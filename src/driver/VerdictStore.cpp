//===- VerdictStore.cpp - Persistent cross-process verdict store --------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
//
// On-disk layout (all integers little-endian, see support/Hashing.h):
//
//   header   u64 magic           "LMDVSTR\x01"
//            u32 format version  VerdictStore::FormatVersion
//            u32 reserved        0
//            u64 config digest   verdictStoreConfigDigest at save time
//            u64 entry count
//            u64 payload hash    FNV-1a over the payload bytes
//   payload  per verdict entry:
//            u64 fpA, u64 fpB, u64 config
//            u8  flags           bit0 Validated, bit1 Unsupported,
//                                bit2 EqualOnConstruction
//            u64 graph nodes, live nodes, rewrites, sharing merges,
//                iterations, microseconds
//            u32 reason length + raw bytes
//   then (v2) the triage section, still inside the checksummed payload:
//            u64 triage entry count
//            per triage entry:
//            u64 fpA, u64 fpB, u64 config, u64 options digest
//            u8  classification
//            u8  flags           bit0 Reduced, bit1 ReduceMinimal,
//                                bit2 GapRan, bit3 GapDiverged,
//                                bit4 ClosedByAllRules
//            u32 inputs tried, inputs skipped, reduce validations,
//                missing-rule mask
//            u64 orig/opt insts before, orig/opt insts after
//            u32 witness-input count + per input (u32 length + bytes)
//            6 strings (u32 length + bytes each): witness divergence,
//                reduced orig, reduced opt, gap node a, gap node b,
//                missing rule
//
//===----------------------------------------------------------------------===//

#include "driver/VerdictStore.h"

#include "normalize/Rules.h"
#include "support/Hashing.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#ifndef _WIN32
#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>
#endif

using namespace llvmmd;

size_t VerdictKeyHash::operator()(const VerdictKey &K) const {
  uint64_t H = hashCombine(K.FpA, K.FpB);
  H = hashCombine(H, K.Config);
  return static_cast<size_t>(H);
}

uint64_t llvmmd::verdictStoreConfigDigest(const RuleConfig &Rules) {
  uint64_t H = hashCombine(VerdictStore::SemanticsSalt, Rules.Mask);
  H = hashCombine(H, static_cast<uint64_t>(Rules.Strategy));
  H = hashCombine(H, Rules.MaxIterations);
  return H;
}

namespace {

constexpr uint64_t StoreMagic = 0x0152545356444d4cULL; // "LMDVSTR\x01" LE
constexpr size_t HeaderSize = 8 + 4 + 4 + 8 + 8 + 8;

enum ResultFlags : uint8_t {
  RF_Validated = 1u << 0,
  RF_Unsupported = 1u << 1,
  RF_EqualOnConstruction = 1u << 2,
};

void appendEntry(std::string &Out, const VerdictKey &K,
                 const ValidationResult &R) {
  appendU64LE(Out, K.FpA);
  appendU64LE(Out, K.FpB);
  appendU64LE(Out, K.Config);
  uint8_t Flags = (R.Validated ? RF_Validated : 0) |
                  (R.Unsupported ? RF_Unsupported : 0) |
                  (R.EqualOnConstruction ? RF_EqualOnConstruction : 0);
  Out.push_back(static_cast<char>(Flags));
  appendU64LE(Out, R.GraphNodes);
  appendU64LE(Out, R.LiveNodes);
  appendU64LE(Out, R.Rewrites);
  appendU64LE(Out, R.SharingMerges);
  appendU64LE(Out, R.Iterations);
  appendU64LE(Out, R.Microseconds);
  appendU32LE(Out, static_cast<uint32_t>(R.Reason.size()));
  Out.append(R.Reason);
}

enum TriageFlags : uint8_t {
  TF_Reduced = 1u << 0,
  TF_ReduceMinimal = 1u << 1,
  TF_GapRan = 1u << 2,
  TF_GapDiverged = 1u << 3,
  TF_ClosedByAllRules = 1u << 4,
};

void appendTriageEntry(std::string &Out, const VerdictKey &K,
                       const StoredTriage &T) {
  appendU64LE(Out, K.FpA);
  appendU64LE(Out, K.FpB);
  appendU64LE(Out, K.Config);
  appendU64LE(Out, T.OptionsDigest);
  const TriageResult &R = T.Result;
  Out.push_back(static_cast<char>(R.Classification));
  uint8_t Flags = (R.Reduced ? TF_Reduced : 0) |
                  (R.ReduceMinimal ? TF_ReduceMinimal : 0) |
                  (R.GapRan ? TF_GapRan : 0) |
                  (R.GapDiverged ? TF_GapDiverged : 0) |
                  (R.ClosedByAllRules ? TF_ClosedByAllRules : 0);
  Out.push_back(static_cast<char>(Flags));
  appendU32LE(Out, R.InputsTried);
  appendU32LE(Out, R.InputsSkipped);
  appendU32LE(Out, R.ReduceValidations);
  appendU32LE(Out, R.MissingRuleMask);
  appendU64LE(Out, R.OrigInstsBefore);
  appendU64LE(Out, R.OptInstsBefore);
  appendU64LE(Out, R.OrigInstsAfter);
  appendU64LE(Out, R.OptInstsAfter);
  appendU32LE(Out, static_cast<uint32_t>(R.WitnessInputs.size()));
  for (const std::string &In : R.WitnessInputs)
    appendLPString(Out, In);
  appendLPString(Out, R.WitnessDivergence);
  appendLPString(Out, R.ReducedOrig);
  appendLPString(Out, R.ReducedOpt);
  appendLPString(Out, R.GapNodeA);
  appendLPString(Out, R.GapNodeB);
  appendLPString(Out, R.MissingRule);
}

bool readTriageEntry(const char *Data, size_t Size, size_t &Cur, VerdictKey &K,
                     StoredTriage &T) {
  if (!readU64LE(Data, Size, Cur, K.FpA) ||
      !readU64LE(Data, Size, Cur, K.FpB) ||
      !readU64LE(Data, Size, Cur, K.Config) ||
      !readU64LE(Data, Size, Cur, T.OptionsDigest))
    return false;
  if (Size - Cur < 2)
    return false;
  uint8_t Cls = static_cast<unsigned char>(Data[Cur++]);
  // An out-of-range classification byte means the file cannot have been
  // produced by this writer; treat it like any other corruption.
  if (Cls > static_cast<uint8_t>(TriageClassification::Inconclusive))
    return false;
  TriageResult &R = T.Result;
  R.Classification = static_cast<TriageClassification>(Cls);
  uint8_t Flags = static_cast<unsigned char>(Data[Cur++]);
  R.Reduced = Flags & TF_Reduced;
  R.ReduceMinimal = Flags & TF_ReduceMinimal;
  R.GapRan = Flags & TF_GapRan;
  R.GapDiverged = Flags & TF_GapDiverged;
  R.ClosedByAllRules = Flags & TF_ClosedByAllRules;
  uint32_t WitnessCount = 0;
  if (!readU32LE(Data, Size, Cur, R.InputsTried) ||
      !readU32LE(Data, Size, Cur, R.InputsSkipped) ||
      !readU32LE(Data, Size, Cur, R.ReduceValidations) ||
      !readU32LE(Data, Size, Cur, R.MissingRuleMask) ||
      !readU64LE(Data, Size, Cur, R.OrigInstsBefore) ||
      !readU64LE(Data, Size, Cur, R.OptInstsBefore) ||
      !readU64LE(Data, Size, Cur, R.OrigInstsAfter) ||
      !readU64LE(Data, Size, Cur, R.OptInstsAfter) ||
      !readU32LE(Data, Size, Cur, WitnessCount))
    return false;
  // Bound the count by the bytes actually left (each input costs at least
  // its u32 length) so a corrupt count cannot drive a huge allocation.
  if (WitnessCount > (Size - Cur) / 4)
    return false;
  R.WitnessInputs.resize(WitnessCount);
  for (std::string &In : R.WitnessInputs)
    if (!readLPString(Data, Size, Cur, In))
      return false;
  return readLPString(Data, Size, Cur, R.WitnessDivergence) &&
         readLPString(Data, Size, Cur, R.ReducedOrig) &&
         readLPString(Data, Size, Cur, R.ReducedOpt) &&
         readLPString(Data, Size, Cur, R.GapNodeA) &&
         readLPString(Data, Size, Cur, R.GapNodeB) &&
         readLPString(Data, Size, Cur, R.MissingRule);
}

bool readEntry(const char *Data, size_t Size, size_t &Cur, VerdictKey &K,
               ValidationResult &R) {
  if (!readU64LE(Data, Size, Cur, K.FpA) ||
      !readU64LE(Data, Size, Cur, K.FpB) ||
      !readU64LE(Data, Size, Cur, K.Config))
    return false;
  if (Cur >= Size)
    return false;
  uint8_t Flags = static_cast<unsigned char>(Data[Cur++]);
  R.Validated = Flags & RF_Validated;
  R.Unsupported = Flags & RF_Unsupported;
  R.EqualOnConstruction = Flags & RF_EqualOnConstruction;
  uint32_t ReasonLen = 0;
  if (!readU64LE(Data, Size, Cur, R.GraphNodes) ||
      !readU64LE(Data, Size, Cur, R.LiveNodes) ||
      !readU64LE(Data, Size, Cur, R.Rewrites) ||
      !readU64LE(Data, Size, Cur, R.SharingMerges) ||
      !readU64LE(Data, Size, Cur, R.Iterations) ||
      !readU64LE(Data, Size, Cur, R.Microseconds) ||
      !readU32LE(Data, Size, Cur, ReasonLen))
    return false;
  if (Size - Cur < ReasonLen)
    return false;
  R.Reason.assign(Data + Cur, ReasonLen);
  Cur += ReasonLen;
  return true;
}

/// Advisory exclusive lock on `Path + ".lock"` held for the save's whole
/// load-merge-rename sequence. Without it two shards could both load the
/// same on-disk state and the second rename would silently drop the first
/// shard's new entries. Best-effort: if the lock file cannot be created the
/// save proceeds unlocked (degrading to last-writer-wins), and on Windows
/// (no flock) it is a no-op.
class SaveLock {
public:
  explicit SaveLock(const std::string &Path) {
#ifndef _WIN32
    Fd = ::open((Path + ".lock").c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
    if (Fd >= 0 && ::flock(Fd, LOCK_EX) != 0) {
      ::close(Fd);
      Fd = -1;
    }
#else
    (void)Path;
#endif
  }
  ~SaveLock() {
#ifndef _WIN32
    if (Fd >= 0) {
      ::flock(Fd, LOCK_UN);
      ::close(Fd);
    }
#endif
  }
  SaveLock(const SaveLock &) = delete;
  SaveLock &operator=(const SaveLock &) = delete;

private:
  int Fd = -1;
};

} // namespace

std::string VerdictStore::serialize(uint64_t ConfigDigest,
                                    const VerdictMap &Map,
                                    const TriageMap *Triage) {
  // Deterministic payload: entries sorted by key, so the same map always
  // serializes to the same bytes regardless of hash-table iteration order.
  auto KeyLess = [](const VerdictKey &KA, const VerdictKey &KB) {
    if (KA.FpA != KB.FpA)
      return KA.FpA < KB.FpA;
    if (KA.FpB != KB.FpB)
      return KA.FpB < KB.FpB;
    return KA.Config < KB.Config;
  };
  std::vector<const VerdictMap::value_type *> Entries;
  Entries.reserve(Map.size());
  for (const auto &KV : Map)
    Entries.push_back(&KV);
  std::sort(Entries.begin(), Entries.end(),
            [&](const auto *A, const auto *B) {
              return KeyLess(A->first, B->first);
            });

  std::string Payload;
  Payload.reserve(Entries.size() * 80);
  for (const auto *KV : Entries)
    appendEntry(Payload, KV->first, KV->second);

  // Triage section: always present in a v2 store (possibly empty), sorted
  // like the verdicts.
  std::vector<const TriageMap::value_type *> TriageEntries;
  if (Triage) {
    TriageEntries.reserve(Triage->size());
    for (const auto &KV : *Triage)
      TriageEntries.push_back(&KV);
    std::sort(TriageEntries.begin(), TriageEntries.end(),
              [&](const auto *A, const auto *B) {
                return KeyLess(A->first, B->first);
              });
  }
  appendU64LE(Payload, static_cast<uint64_t>(TriageEntries.size()));
  for (const auto *KV : TriageEntries)
    appendTriageEntry(Payload, KV->first, KV->second);

  std::string Out;
  Out.reserve(HeaderSize + Payload.size());
  appendU64LE(Out, StoreMagic);
  appendU32LE(Out, FormatVersion);
  appendU32LE(Out, 0);
  appendU64LE(Out, ConfigDigest);
  appendU64LE(Out, static_cast<uint64_t>(Entries.size()));
  appendU64LE(Out, hashBytes(Payload.data(), Payload.size()));
  Out += Payload;
  return Out;
}

VerdictStore::LoadResult VerdictStore::load(const std::string &Path,
                                            uint64_t ConfigDigest,
                                            VerdictMap &Map,
                                            TriageMap *Triage) {
  LoadResult LR;
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    LR.Status = LoadStatus::NoFile;
    LR.Message = "no store at '" + Path + "'";
    return LR;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  std::string Bytes = SS.str();

  size_t Cur = 0;
  uint64_t Magic = 0, FileDigest = 0, Count = 0, PayloadHash = 0;
  uint32_t Version = 0, Reserved = 0;
  if (!readU64LE(Bytes.data(), Bytes.size(), Cur, Magic) ||
      !readU32LE(Bytes.data(), Bytes.size(), Cur, Version) ||
      !readU32LE(Bytes.data(), Bytes.size(), Cur, Reserved) ||
      !readU64LE(Bytes.data(), Bytes.size(), Cur, FileDigest) ||
      !readU64LE(Bytes.data(), Bytes.size(), Cur, Count) ||
      !readU64LE(Bytes.data(), Bytes.size(), Cur, PayloadHash)) {
    LR.Status = LoadStatus::Corrupt;
    LR.Message = "truncated header";
    return LR;
  }
  if (Magic != StoreMagic) {
    LR.Status = LoadStatus::BadMagic;
    LR.Message = "'" + Path + "' is not a verdict store";
    return LR;
  }
  if (Version != FormatVersion) {
    LR.Status = LoadStatus::BadVersion;
    LR.Message = "format version " + std::to_string(Version) +
                 " (this build reads " + std::to_string(FormatVersion) + ")";
    return LR;
  }
  if (FileDigest != ConfigDigest) {
    LR.Status = LoadStatus::ConfigMismatch;
    LR.Message = "store was produced under a different rule configuration";
    return LR;
  }
  LR.EntriesInFile = Count;
  if (hashBytes(Bytes.data() + Cur, Bytes.size() - Cur) != PayloadHash) {
    LR.Status = LoadStatus::Corrupt;
    LR.Message = "payload checksum mismatch";
    return LR;
  }

  // Parse into scratch maps first so a malformed payload (count lies, bad
  // entry bounds) cannot leave Map half-merged.
  VerdictMap Parsed;
  Parsed.reserve(static_cast<size_t>(Count));
  for (uint64_t I = 0; I < Count; ++I) {
    VerdictKey K;
    ValidationResult R;
    if (!readEntry(Bytes.data(), Bytes.size(), Cur, K, R)) {
      LR.Status = LoadStatus::Corrupt;
      LR.Message = "truncated at entry " + std::to_string(I) + " of " +
                   std::to_string(Count);
      return LR;
    }
    Parsed.emplace(K, std::move(R));
  }

  // The triage section is parsed (and checksummed above) even when the
  // caller does not want it, so structural corruption there is caught no
  // matter which half of the store a process uses.
  uint64_t TriageCount = 0;
  TriageMap ParsedTriage;
  if (!readU64LE(Bytes.data(), Bytes.size(), Cur, TriageCount)) {
    LR.Status = LoadStatus::Corrupt;
    LR.Message = "truncated triage section header";
    return LR;
  }
  ParsedTriage.reserve(static_cast<size_t>(TriageCount));
  for (uint64_t I = 0; I < TriageCount; ++I) {
    VerdictKey K;
    StoredTriage T;
    if (!readTriageEntry(Bytes.data(), Bytes.size(), Cur, K, T)) {
      LR.Status = LoadStatus::Corrupt;
      LR.Message = "truncated at triage entry " + std::to_string(I) + " of " +
                   std::to_string(TriageCount);
      return LR;
    }
    ParsedTriage.emplace(K, std::move(T));
  }
  if (Cur != Bytes.size()) {
    LR.Status = LoadStatus::Corrupt;
    LR.Message = "trailing bytes after last entry";
    return LR;
  }

  for (auto &KV : Parsed)
    if (Map.emplace(KV.first, std::move(KV.second)).second)
      ++LR.EntriesMerged;
  if (Triage)
    for (auto &KV : ParsedTriage)
      Triage->emplace(KV.first, std::move(KV.second));
  LR.Status = LoadStatus::Loaded;
  return LR;
}

std::string VerdictStore::shardPath(const std::string &BasePath,
                                    unsigned Index) {
  return BasePath + ".shard" + std::to_string(Index);
}

VerdictStore::HeaderInfo VerdictStore::peekHeader(const std::string &Path) {
  HeaderInfo HI;
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    HI.Status = LoadStatus::NoFile;
    HI.Message = "no store at '" + Path + "'";
    return HI;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  std::string Bytes = SS.str();
  HI.FileBytes = Bytes.size();

  size_t Cur = 0;
  uint64_t Magic = 0, PayloadHash = 0;
  uint32_t Reserved = 0;
  if (!readU64LE(Bytes.data(), Bytes.size(), Cur, Magic) ||
      !readU32LE(Bytes.data(), Bytes.size(), Cur, HI.Version) ||
      !readU32LE(Bytes.data(), Bytes.size(), Cur, Reserved) ||
      !readU64LE(Bytes.data(), Bytes.size(), Cur, HI.ConfigDigest) ||
      !readU64LE(Bytes.data(), Bytes.size(), Cur, HI.VerdictEntries) ||
      !readU64LE(Bytes.data(), Bytes.size(), Cur, PayloadHash)) {
    HI.Status = LoadStatus::Corrupt;
    HI.Message = "truncated header";
    return HI;
  }
  if (Magic != StoreMagic) {
    HI.Status = LoadStatus::BadMagic;
    HI.Message = "'" + Path + "' is not a verdict store";
    return HI;
  }
  if (HI.Version != FormatVersion) {
    HI.Status = LoadStatus::BadVersion;
    HI.Message = "format version " + std::to_string(HI.Version) +
                 " (this build reads " + std::to_string(FormatVersion) + ")";
    return HI;
  }
  if (hashBytes(Bytes.data() + Cur, Bytes.size() - Cur) != PayloadHash) {
    HI.Status = LoadStatus::Corrupt;
    HI.Message = "payload checksum mismatch";
    return HI;
  }
  // The triage count sits after the verdict entries; load() does the full
  // walk anyway, and a checksummed payload cannot lie about structure, so
  // reuse it rather than duplicating the entry readers.
  VerdictMap Scratch;
  TriageMap ScratchTriage;
  LoadResult LR = load(Path, HI.ConfigDigest, Scratch, &ScratchTriage);
  if (!LR.loaded()) {
    HI.Status = LR.Status;
    HI.Message = LR.Message;
    return HI;
  }
  HI.TriageEntries = ScratchTriage.size();
  HI.Status = LoadStatus::Loaded;
  return HI;
}

uint64_t VerdictStore::mergePaths(const std::vector<std::string> &Inputs,
                                  const std::string &OutPath,
                                  uint64_t ConfigDigest, std::string *Error) {
  VerdictMap Merged;
  TriageMap MergedTriage;
  for (const std::string &Path : Inputs) {
    // emplace in load() keeps the existing value per key, so earlier
    // inputs win — document order is precedence order.
    LoadResult LR = load(Path, ConfigDigest, Merged, &MergedTriage);
    if (LR.Status == LoadStatus::NoFile)
      continue; // a worker that never saved is an empty shard, not an error
    if (!LR.loaded()) {
      if (Error)
        *Error = "'" + Path + "': " + LR.Message;
      return ~0ull;
    }
  }
  return save(OutPath, ConfigDigest, Merged, Error, /*MergeExisting=*/true,
              &MergedTriage);
}

uint64_t VerdictStore::save(const std::string &Path, uint64_t ConfigDigest,
                            const VerdictMap &Map, std::string *Error,
                            bool MergeExisting, const TriageMap *Triage) {
  SaveLock Lock(Path);
  const VerdictMap *ToWrite = &Map;
  const TriageMap *TriageToWrite = Triage;
  VerdictMap Merged;
  TriageMap MergedTriage;
  if (MergeExisting) {
    // Union with whatever another shard already saved here. Start from the
    // in-memory maps so the current process wins per key; a store that
    // fails to load (any reason) contributes nothing.
    Merged = Map;
    if (Triage)
      MergedTriage = *Triage;
    VerdictMap OnDisk;
    TriageMap OnDiskTriage;
    if (load(Path, ConfigDigest, OnDisk, &OnDiskTriage).loaded()) {
      for (auto &KV : OnDisk)
        Merged.emplace(KV.first, std::move(KV.second));
      for (auto &KV : OnDiskTriage)
        MergedTriage.emplace(KV.first, std::move(KV.second));
    }
    ToWrite = &Merged;
    // Preserve another shard's triage entries even when this engine ran
    // with triage off (Triage == nullptr): dropping them on save would
    // silently cool future warm runs.
    TriageToWrite = &MergedTriage;
  }

  std::string Bytes = serialize(ConfigDigest, *ToWrite, TriageToWrite);

#ifndef _WIN32
  std::string Tmp = Path + ".tmp." + std::to_string(::getpid());
#else
  std::string Tmp = Path + ".tmp";
#endif
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out || !Out.write(Bytes.data(), static_cast<std::streamsize>(
                                             Bytes.size()))) {
      if (Error)
        *Error = "cannot write '" + Tmp + "'";
      std::remove(Tmp.c_str());
      return ~0ull;
    }
  }
  // POSIX rename atomically replaces the target. Windows' std::rename
  // refuses to overwrite, so fall back to remove-then-rename there (not
  // atomic, but the SaveLock already serializes savers on the same path).
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    std::remove(Path.c_str());
    if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
      if (Error)
        *Error = "cannot rename '" + Tmp + "' to '" + Path + "'";
      std::remove(Tmp.c_str());
      return ~0ull;
    }
  }
  return static_cast<uint64_t>(ToWrite->size());
}
