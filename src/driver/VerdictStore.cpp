//===- VerdictStore.cpp - Persistent cross-process verdict store --------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
//
// On-disk layout (all integers little-endian, see support/Hashing.h):
//
//   header   u64 magic           "LMDVSTR\x01"
//            u32 format version  VerdictStore::FormatVersion
//            u32 reserved        0
//            u64 config digest   verdictStoreConfigDigest at save time
//            u64 entry count
//            u64 payload hash    FNV-1a over the payload bytes
//   payload  per entry:
//            u64 fpA, u64 fpB, u64 config
//            u8  flags           bit0 Validated, bit1 Unsupported,
//                                bit2 EqualOnConstruction
//            u64 graph nodes, live nodes, rewrites, sharing merges,
//                iterations, microseconds
//            u32 reason length + raw bytes
//
//===----------------------------------------------------------------------===//

#include "driver/VerdictStore.h"

#include "normalize/Rules.h"
#include "support/Hashing.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#ifndef _WIN32
#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>
#endif

using namespace llvmmd;

size_t VerdictKeyHash::operator()(const VerdictKey &K) const {
  uint64_t H = hashCombine(K.FpA, K.FpB);
  H = hashCombine(H, K.Config);
  return static_cast<size_t>(H);
}

uint64_t llvmmd::verdictStoreConfigDigest(const RuleConfig &Rules) {
  uint64_t H = hashCombine(VerdictStore::SemanticsSalt, Rules.Mask);
  H = hashCombine(H, static_cast<uint64_t>(Rules.Strategy));
  H = hashCombine(H, Rules.MaxIterations);
  return H;
}

namespace {

constexpr uint64_t StoreMagic = 0x0152545356444d4cULL; // "LMDVSTR\x01" LE
constexpr size_t HeaderSize = 8 + 4 + 4 + 8 + 8 + 8;

enum ResultFlags : uint8_t {
  RF_Validated = 1u << 0,
  RF_Unsupported = 1u << 1,
  RF_EqualOnConstruction = 1u << 2,
};

void appendEntry(std::string &Out, const VerdictKey &K,
                 const ValidationResult &R) {
  appendU64LE(Out, K.FpA);
  appendU64LE(Out, K.FpB);
  appendU64LE(Out, K.Config);
  uint8_t Flags = (R.Validated ? RF_Validated : 0) |
                  (R.Unsupported ? RF_Unsupported : 0) |
                  (R.EqualOnConstruction ? RF_EqualOnConstruction : 0);
  Out.push_back(static_cast<char>(Flags));
  appendU64LE(Out, R.GraphNodes);
  appendU64LE(Out, R.LiveNodes);
  appendU64LE(Out, R.Rewrites);
  appendU64LE(Out, R.SharingMerges);
  appendU64LE(Out, R.Iterations);
  appendU64LE(Out, R.Microseconds);
  appendU32LE(Out, static_cast<uint32_t>(R.Reason.size()));
  Out.append(R.Reason);
}

bool readEntry(const char *Data, size_t Size, size_t &Cur, VerdictKey &K,
               ValidationResult &R) {
  if (!readU64LE(Data, Size, Cur, K.FpA) ||
      !readU64LE(Data, Size, Cur, K.FpB) ||
      !readU64LE(Data, Size, Cur, K.Config))
    return false;
  if (Cur >= Size)
    return false;
  uint8_t Flags = static_cast<unsigned char>(Data[Cur++]);
  R.Validated = Flags & RF_Validated;
  R.Unsupported = Flags & RF_Unsupported;
  R.EqualOnConstruction = Flags & RF_EqualOnConstruction;
  uint32_t ReasonLen = 0;
  if (!readU64LE(Data, Size, Cur, R.GraphNodes) ||
      !readU64LE(Data, Size, Cur, R.LiveNodes) ||
      !readU64LE(Data, Size, Cur, R.Rewrites) ||
      !readU64LE(Data, Size, Cur, R.SharingMerges) ||
      !readU64LE(Data, Size, Cur, R.Iterations) ||
      !readU64LE(Data, Size, Cur, R.Microseconds) ||
      !readU32LE(Data, Size, Cur, ReasonLen))
    return false;
  if (Size - Cur < ReasonLen)
    return false;
  R.Reason.assign(Data + Cur, ReasonLen);
  Cur += ReasonLen;
  return true;
}

/// Advisory exclusive lock on `Path + ".lock"` held for the save's whole
/// load-merge-rename sequence. Without it two shards could both load the
/// same on-disk state and the second rename would silently drop the first
/// shard's new entries. Best-effort: if the lock file cannot be created the
/// save proceeds unlocked (degrading to last-writer-wins), and on Windows
/// (no flock) it is a no-op.
class SaveLock {
public:
  explicit SaveLock(const std::string &Path) {
#ifndef _WIN32
    Fd = ::open((Path + ".lock").c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
    if (Fd >= 0 && ::flock(Fd, LOCK_EX) != 0) {
      ::close(Fd);
      Fd = -1;
    }
#else
    (void)Path;
#endif
  }
  ~SaveLock() {
#ifndef _WIN32
    if (Fd >= 0) {
      ::flock(Fd, LOCK_UN);
      ::close(Fd);
    }
#endif
  }
  SaveLock(const SaveLock &) = delete;
  SaveLock &operator=(const SaveLock &) = delete;

private:
  int Fd = -1;
};

} // namespace

std::string VerdictStore::serialize(uint64_t ConfigDigest,
                                    const VerdictMap &Map) {
  // Deterministic payload: entries sorted by key, so the same map always
  // serializes to the same bytes regardless of hash-table iteration order.
  std::vector<const VerdictMap::value_type *> Entries;
  Entries.reserve(Map.size());
  for (const auto &KV : Map)
    Entries.push_back(&KV);
  std::sort(Entries.begin(), Entries.end(), [](const auto *A, const auto *B) {
    const VerdictKey &KA = A->first, &KB = B->first;
    if (KA.FpA != KB.FpA)
      return KA.FpA < KB.FpA;
    if (KA.FpB != KB.FpB)
      return KA.FpB < KB.FpB;
    return KA.Config < KB.Config;
  });

  std::string Payload;
  Payload.reserve(Entries.size() * 80);
  for (const auto *KV : Entries)
    appendEntry(Payload, KV->first, KV->second);

  std::string Out;
  Out.reserve(HeaderSize + Payload.size());
  appendU64LE(Out, StoreMagic);
  appendU32LE(Out, FormatVersion);
  appendU32LE(Out, 0);
  appendU64LE(Out, ConfigDigest);
  appendU64LE(Out, static_cast<uint64_t>(Entries.size()));
  appendU64LE(Out, hashBytes(Payload.data(), Payload.size()));
  Out += Payload;
  return Out;
}

VerdictStore::LoadResult VerdictStore::load(const std::string &Path,
                                            uint64_t ConfigDigest,
                                            VerdictMap &Map) {
  LoadResult LR;
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    LR.Status = LoadStatus::NoFile;
    LR.Message = "no store at '" + Path + "'";
    return LR;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  std::string Bytes = SS.str();

  size_t Cur = 0;
  uint64_t Magic = 0, FileDigest = 0, Count = 0, PayloadHash = 0;
  uint32_t Version = 0, Reserved = 0;
  if (!readU64LE(Bytes.data(), Bytes.size(), Cur, Magic) ||
      !readU32LE(Bytes.data(), Bytes.size(), Cur, Version) ||
      !readU32LE(Bytes.data(), Bytes.size(), Cur, Reserved) ||
      !readU64LE(Bytes.data(), Bytes.size(), Cur, FileDigest) ||
      !readU64LE(Bytes.data(), Bytes.size(), Cur, Count) ||
      !readU64LE(Bytes.data(), Bytes.size(), Cur, PayloadHash)) {
    LR.Status = LoadStatus::Corrupt;
    LR.Message = "truncated header";
    return LR;
  }
  if (Magic != StoreMagic) {
    LR.Status = LoadStatus::BadMagic;
    LR.Message = "'" + Path + "' is not a verdict store";
    return LR;
  }
  if (Version != FormatVersion) {
    LR.Status = LoadStatus::BadVersion;
    LR.Message = "format version " + std::to_string(Version) +
                 " (this build reads " + std::to_string(FormatVersion) + ")";
    return LR;
  }
  if (FileDigest != ConfigDigest) {
    LR.Status = LoadStatus::ConfigMismatch;
    LR.Message = "store was produced under a different rule configuration";
    return LR;
  }
  LR.EntriesInFile = Count;
  if (hashBytes(Bytes.data() + Cur, Bytes.size() - Cur) != PayloadHash) {
    LR.Status = LoadStatus::Corrupt;
    LR.Message = "payload checksum mismatch";
    return LR;
  }

  // Parse into a scratch map first so a malformed payload (count lies, bad
  // entry bounds) cannot leave Map half-merged.
  VerdictMap Parsed;
  Parsed.reserve(static_cast<size_t>(Count));
  for (uint64_t I = 0; I < Count; ++I) {
    VerdictKey K;
    ValidationResult R;
    if (!readEntry(Bytes.data(), Bytes.size(), Cur, K, R)) {
      LR.Status = LoadStatus::Corrupt;
      LR.Message = "truncated at entry " + std::to_string(I) + " of " +
                   std::to_string(Count);
      return LR;
    }
    Parsed.emplace(K, std::move(R));
  }
  if (Cur != Bytes.size()) {
    LR.Status = LoadStatus::Corrupt;
    LR.Message = "trailing bytes after last entry";
    return LR;
  }

  for (auto &KV : Parsed)
    if (Map.emplace(KV.first, std::move(KV.second)).second)
      ++LR.EntriesMerged;
  LR.Status = LoadStatus::Loaded;
  return LR;
}

uint64_t VerdictStore::save(const std::string &Path, uint64_t ConfigDigest,
                            const VerdictMap &Map, std::string *Error,
                            bool MergeExisting) {
  SaveLock Lock(Path);
  const VerdictMap *ToWrite = &Map;
  VerdictMap Merged;
  if (MergeExisting) {
    // Union with whatever another shard already saved here. Start from the
    // in-memory map so the current process wins per key; a store that fails
    // to load (any reason) contributes nothing.
    Merged = Map;
    VerdictMap OnDisk;
    if (load(Path, ConfigDigest, OnDisk).loaded())
      for (auto &KV : OnDisk)
        Merged.emplace(KV.first, std::move(KV.second));
    ToWrite = &Merged;
  }

  std::string Bytes = serialize(ConfigDigest, *ToWrite);

#ifndef _WIN32
  std::string Tmp = Path + ".tmp." + std::to_string(::getpid());
#else
  std::string Tmp = Path + ".tmp";
#endif
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out || !Out.write(Bytes.data(), static_cast<std::streamsize>(
                                             Bytes.size()))) {
      if (Error)
        *Error = "cannot write '" + Tmp + "'";
      std::remove(Tmp.c_str());
      return ~0ull;
    }
  }
  // POSIX rename atomically replaces the target. Windows' std::rename
  // refuses to overwrite, so fall back to remove-then-rename there (not
  // atomic, but the SaveLock already serializes savers on the same path).
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    std::remove(Path.c_str());
    if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
      if (Error)
        *Error = "cannot rename '" + Tmp + "' to '" + Path + "'";
      std::remove(Tmp.c_str());
      return ~0ull;
    }
  }
  return static_cast<uint64_t>(ToWrite->size());
}
