//===- ModuleLoader.cpp - Unified module ingest ----------------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//

#include "driver/ModuleLoader.h"

#include "frontend/llvm/LLFrontend.h"
#include "ir/Module.h"
#include "ir/Parser.h"
#include "workload/Generator.h"
#include "workload/Profiles.h"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

using namespace llvmmd;

ModuleFormat llvmmd::detectModuleFormat(std::string_view Text) {
  return looksLikeLLVMIR(Text) ? ModuleFormat::LLVMIR : ModuleFormat::MiniIR;
}

bool llvmmd::parseModuleFormat(const std::string &Name, ModuleFormat &Out) {
  if (Name == "auto")
    Out = ModuleFormat::Auto;
  else if (Name == "mini")
    Out = ModuleFormat::MiniIR;
  else if (Name == "llvm")
    Out = ModuleFormat::LLVMIR;
  else
    return false;
  return true;
}

const char *llvmmd::moduleFormatName(ModuleFormat F) {
  switch (F) {
  case ModuleFormat::Auto:
    return "auto";
  case ModuleFormat::MiniIR:
    return "mini";
  case ModuleFormat::LLVMIR:
    return "llvm";
  }
  return "auto";
}

ModuleSpec llvmmd::parseModuleSpec(const std::string &Spec) {
  ModuleSpec S;
  if (Spec == "-") {
    S.From = ModuleSpec::Source::Stdin;
    return S;
  }
  if (Spec.rfind("profile:", 0) == 0) {
    S.From = ModuleSpec::Source::Profile;
    S.Value = Spec.substr(8);
    return S;
  }
  S.From = ModuleSpec::Source::File;
  S.Value = Spec;
  return S;
}

const char *llvmmd::moduleSpecHelp() {
  return "  Module specs (positional arguments / --input values):\n"
         "    FILE           load the file; real LLVM .ll input is detected\n"
         "                   by content and routed through the import\n"
         "                   frontend (unsupported constructs are rejected\n"
         "                   per function, named in the report)\n"
         "    -              read one module's text from stdin\n"
         "    profile:NAME   generate the Table-1 benchmark profile NAME\n"
         "  A spec that cannot be loaded (unreadable file, parse error,\n"
         "  unknown profile) prints `error: ...` on stderr and exits 1.\n";
}

namespace {

/// Extracts the leading "line N" of a mini-parser diagnostic so both
/// frontends report positions the same way.
unsigned parseErrorLine(const std::string &Error) {
  if (Error.rfind("line ", 0) != 0)
    return 0;
  return static_cast<unsigned>(std::atoi(Error.c_str() + 5));
}

bool loadOne(Context &Ctx, const ModuleSpec &Spec, LoadResult &Out) {
  std::string Text;
  std::string Name = Spec.Name;

  switch (Spec.From) {
  case ModuleSpec::Source::Profile: {
    BenchmarkProfile P = getProfile(Spec.Value);
    if (P.FunctionCount == 0) {
      Out.Error = "unknown profile '" + Spec.Value + "'";
      return false;
    }
    if (Spec.ProfileFnCount)
      P.FunctionCount = Spec.ProfileFnCount;
    LoadedModule LM;
    LM.M = generateBenchmark(Ctx, P);
    LM.Name = Name.empty() ? Spec.Value : Name;
    LM.Format = ModuleFormat::MiniIR;
    Out.Modules.push_back(std::move(LM));
    return true;
  }
  case ModuleSpec::Source::File: {
    std::ifstream In(Spec.Value);
    if (!In) {
      Out.Error = "cannot open " + Spec.Value;
      return false;
    }
    std::ostringstream SS;
    SS << In.rdbuf();
    Text = SS.str();
    if (Name.empty())
      Name = Spec.Value;
    break;
  }
  case ModuleSpec::Source::Stdin: {
    std::ostringstream SS;
    SS << std::cin.rdbuf();
    Text = SS.str();
    if (Name.empty())
      Name = "<stdin>";
    break;
  }
  case ModuleSpec::Source::Inline:
    Text = Spec.Value;
    break;
  }

  ModuleFormat F = Spec.Format;
  if (F == ModuleFormat::Auto)
    F = detectModuleFormat(Text);

  if (F == ModuleFormat::LLVMIR) {
    LLImportResult IR = importLLModule(Ctx, Text, Name.empty() ? "module" : Name);
    if (!IR) {
      Out.Error = (Name.empty() ? std::string("module") : Name) +
                  ": line " + std::to_string(IR.ErrorLine) + ": " + IR.Error;
      Out.ErrorLine = IR.ErrorLine;
      Out.ErrorCol = IR.ErrorCol;
      return false;
    }
    LoadedModule LM;
    LM.M = std::move(IR.M);
    LM.Name = LM.M->getName();
    LM.Format = ModuleFormat::LLVMIR;
    for (const LLFunctionReject &R : IR.Rejected)
      LM.Unsupported.push_back({R.Function, R.Reason, R.Detail});
    Out.Modules.push_back(std::move(LM));
    return true;
  }

  ParseResult PR = parseModule(Ctx, Text, Name.empty() ? "module" : Name);
  if (!PR) {
    Out.Error = (Name.empty() ? std::string("module") : Name) + ": " + PR.Error;
    Out.ErrorLine = parseErrorLine(PR.Error);
    return false;
  }
  LoadedModule LM;
  LM.M = std::move(PR.M);
  LM.Name = LM.M->getName();
  LM.Format = ModuleFormat::MiniIR;
  Out.Modules.push_back(std::move(LM));
  return true;
}

} // namespace

LoadResult llvmmd::loadModules(Context &Ctx,
                               const std::vector<ModuleSpec> &Specs) {
  LoadResult Out;
  for (const ModuleSpec &Spec : Specs)
    if (!loadOne(Ctx, Spec, Out))
      break;
  return Out;
}

LoadResult llvmmd::loadModule(Context &Ctx, const ModuleSpec &Spec) {
  return loadModules(Ctx, {Spec});
}

void llvmmd::attachUnsupported(ValidationReport &Report,
                               const LoadedModule &LM) {
  Report.UnsupportedFunctions = LM.Unsupported;
}
