//===- Profiles.h - Synthetic benchmark profiles ----------------*- C++ -*-===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One profile per benchmark program of the paper's Table 1 (the pure-C
/// SPEC CPU2006 programs plus SQLite). We cannot ship SPEC or compile C
/// offline, so each profile drives a deterministic IR generator whose
/// feature mix mirrors the program's character: loop density, φ
/// complexity, array traffic, libc usage, floating point, globals, and
/// function-size distribution. Scale is reduced ~20x relative to the
/// paper's function counts; the *relative* shapes of the evaluation
/// figures are what the generator is tuned to preserve (see DESIGN.md §2).
///
//===----------------------------------------------------------------------===//

#ifndef LLVMMD_WORKLOAD_PROFILES_H
#define LLVMMD_WORKLOAD_PROFILES_H

#include <cstdint>
#include <string>
#include <vector>

namespace llvmmd {

/// Percentages are 0-100 probabilities per generated segment/function.
struct BenchmarkProfile {
  std::string Name;
  uint64_t Seed;
  unsigned FunctionCount;
  /// Approximate body size: number of code segments per function, drawn
  /// uniformly from [MinSegments, MaxSegments].
  unsigned MinSegments;
  unsigned MaxSegments;

  // Structural mix.
  unsigned LoopPct;        ///< a segment is a loop
  unsigned NestedLoopPct;  ///< a loop contains an inner loop
  unsigned DiamondPct;     ///< a segment is an if-diamond
  unsigned ArrayPct;       ///< a segment does alloca/GEP/load/store work
  unsigned CallPct;        ///< a segment calls an external function

  // Optimization-opportunity mix (drives which validator rules matter).
  unsigned ConstExprPct;   ///< constant-foldable subexpressions (SCCP)
  unsigned RedundantPct;   ///< duplicated expressions and loads (GVN)
  unsigned InvariantPct;   ///< loop-invariant arithmetic (LICM)
  unsigned UnswitchPct;    ///< loop-invariant branches (loop unswitching)
  unsigned DeadStorePct;   ///< overwritten / never-read stores (DSE)
  unsigned DeadLoopPct;    ///< loops computing unused values (loop deletion)

  /// Fraction of functions that are pure integer arithmetic + control flow
  /// (no memory traffic, calls, floats or globals). These are the functions
  /// whose GVN transformations are "minor syntactic changes" that validate
  /// with no rewrite rules at all (the paper's ~50% GVN baseline).
  unsigned ArithFnPct;

  // False-alarm features (optimizer knowledge the paper's validator lacks
  // without its extension rule sets).
  unsigned LibcPct;        ///< strlen/memset/atoi patterns (needs RS_Libc)
  unsigned FloatPct;       ///< foldable float arithmetic (needs RS_FloatFold)
  unsigned GlobalPct;      ///< loads of constant globals (needs RS_GlobalFold)

  // Table 1 bookkeeping: the paper's reported size for this program, used
  // verbatim when printing the suite-information table.
  const char *PaperSize;
  const char *PaperLOC;
  unsigned PaperFunctions;
};

/// The 12 programs of Table 1 with per-program feature mixes.
std::vector<BenchmarkProfile> getPaperSuite();

/// Looks up one profile by name (returns a FunctionCount==0 profile if
/// unknown).
BenchmarkProfile getProfile(const std::string &Name);

} // namespace llvmmd

#endif // LLVMMD_WORKLOAD_PROFILES_H
