//===- Profiles.cpp - Synthetic benchmark profiles ----------------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//

#include "workload/Profiles.h"

using namespace llvmmd;

std::vector<BenchmarkProfile> llvmmd::getPaperSuite() {
  // Fields: name seed fnCount minSeg maxSeg | loop nest diamond array call |
  //         const redun invar unsw dstore dloop | arith | libc float global |
  //         paper-size paper-loc paper-fns
  return {
      // SQLite: the tuning benchmark. Hand-optimized C: few constant
      // folding or branch-folding opportunities, but heavy pointer/array
      // traffic (B-tree pages), so load/store rules matter most (Fig. 6).
      {"sqlite", 0x5eed501ULL, 68, 2, 7, 45, 10, 50, 60, 25, 8, 45, 30, 12,
       35, 10, 30, 8, 2, 8, "5.6M", "136K", 1363},
      // bzip2: compression kernels; constant-rich diamonds that SCCP
      // resolves completely (Fig. 8 drives it to 100% with φ rules).
      {"bzip2", 0xb21b2ULL, 12, 2, 6, 50, 15, 55, 45, 10, 55, 35, 30, 10, 20,
       8, 50, 8, 2, 6, "904K", "23K", 104},
      // gcc: the giant; huge functions, many globals and libc calls, so the
      // default rule set misses more (lower bar in Fig. 4).
      {"gcc", 0x9ccULL, 150, 4, 14, 40, 12, 60, 45, 35, 40, 40, 22, 10, 22,
       6, 35, 30, 3, 22, "63M", "1.48M", 5745},
      // h264ref: media kernels; loops + arrays + some FP.
      {"h264ref", 0x264ULL, 30, 3, 9, 55, 18, 45, 60, 15, 40, 38, 28, 12, 25,
       8, 30, 10, 12, 8, "7.3M", "190K", 610},
      // hmmer: dynamic programming loops over arrays.
      {"hmmer", 0x3333ULL, 32, 3, 8, 60, 20, 40, 65, 12, 38, 40, 30, 10, 22,
       8, 30, 8, 8, 8, "3.3M", "90K", 644},
      // lbm: small FP stencil code; φ simplification matters a lot (Fig. 6)
      // and FP folding is its main false-alarm source.
      {"lbm", 0x1b3ULL, 8, 2, 6, 65, 22, 60, 55, 8, 45, 35, 30, 8, 15, 10, 30,
       4, 35, 6, "161K", "5K", 19},
      // libquantum: integer simulation; clean loops.
      {"libquantum", 0x117ULL, 12, 2, 6, 55, 15, 40, 50, 10, 45, 35, 28, 10,
       18, 10, 50, 6, 4, 6, "337K", "9K", 115},
      // mcf: small graph solver; pointer-heavy.
      {"mcf", 0x3cfULL, 10, 2, 7, 50, 12, 45, 65, 10, 35, 42, 25, 10, 25, 8, 35,
       6, 2, 8, "149K", "3K", 24},
      // milc: lattice QCD; FP dominant.
      {"milc", 0x311cULL, 15, 2, 7, 60, 18, 40, 55, 10, 40, 35, 28, 8, 18,
       8, 30, 6, 30, 6, "1.2M", "32K", 237},
      // perlbench: interpreter; strings/libc everywhere, lowest bar with
      // gcc in Fig. 4.
      {"perlbench", 0x9e71ULL, 100, 3, 11, 42, 12, 60, 50, 40, 38, 38, 20,
       10, 22, 6, 30, 34, 2, 16, "15M", "399K", 1998},
      // sjeng: chess search; branchy integer code.
      {"sjeng", 0x53e9ULL, 12, 3, 8, 48, 14, 65, 40, 14, 45, 40, 25, 14, 18,
       8, 50, 8, 2, 10, "1.5M", "39K", 166},
      // sphinx: speech; FP + arrays.
      {"sphinx", 0x5914ULL, 19, 2, 8, 55, 16, 45, 55, 15, 40, 36, 28, 10,
       20, 8, 30, 10, 18, 8, "1.7M", "44K", 391},
  };
}

BenchmarkProfile llvmmd::getProfile(const std::string &Name) {
  for (const BenchmarkProfile &P : getPaperSuite())
    if (P.Name == Name)
      return P;
  BenchmarkProfile Empty{};
  Empty.Name = Name;
  Empty.FunctionCount = 0;
  return Empty;
}
