//===- Generator.h - Deterministic IR program generator ---------*- C++ -*-===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates a module of synthetic-but-realistic functions from a
/// BenchmarkProfile: structured control flow (diamonds, while loops,
/// nested loops), array traffic through allocas and getelementptr, calls
/// to modeled libc functions, and deliberately planted optimization
/// opportunities (constant chains for SCCP, redundancies for GVN,
/// invariants for LICM/unswitch, dead stores for DSE, dead loops for loop
/// deletion). Everything is a pure function of the profile's seed.
///
//===----------------------------------------------------------------------===//

#ifndef LLVMMD_WORKLOAD_GENERATOR_H
#define LLVMMD_WORKLOAD_GENERATOR_H

#include "workload/Profiles.h"

#include <memory>

namespace llvmmd {

class Context;
class Module;

/// Generates the module for one benchmark profile. The module lives in
/// \p Ctx, which must outlive it.
std::unique_ptr<Module> generateBenchmark(Context &Ctx,
                                          const BenchmarkProfile &Profile);

} // namespace llvmmd

#endif // LLVMMD_WORKLOAD_GENERATOR_H
