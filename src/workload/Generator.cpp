//===- Generator.cpp - Deterministic IR program generator ---------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//

#include "workload/Generator.h"

#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include "support/Hashing.h"

#include <vector>

using namespace llvmmd;

namespace {

class FunctionGenerator {
public:
  FunctionGenerator(Module &M, const BenchmarkProfile &P, Function *F,
                    uint64_t Seed)
      : M(M), Ctx(M.getContext()), P(P), F(F), Rng(Seed), B(Ctx) {}

  void generate() {
    BasicBlock *Entry = F->createBlock("entry");
    B.setInsertPoint(Entry);
    I32 = Ctx.getInt32Ty();
    I64 = Ctx.getInt64Ty();
    I8 = Ctx.getInt8Ty();

    // Parameters: (i32 a, i32 b, ptr s).
    Pool.push_back(F->getArg(0));
    Pool.push_back(F->getArg(1));
    StrParam = F->getArg(2);

    // Some functions are pure integer arithmetic and control flow: their
    // optimizations are the "minor syntactic changes" the paper says
    // validate with hardly any rules.
    PureArith = Rng.chance(P.ArithFnPct);
    if (!PureArith) {
      // A couple of local arrays for memory traffic.
      IntArray = B.createAlloca(I32, Ctx.getInt64(8), "arr");
      ByteArray = B.createAlloca(I8, Ctx.getInt64(16), "buf");
      B.createStore(Ctx.getInt32(0), IntArray);
    }

    unsigned Segments =
        P.MinSegments +
        Rng.below(P.MaxSegments - P.MinSegments + 1);
    for (unsigned S = 0; S < Segments; ++S)
      emitSegment(/*Depth=*/0);

    // Combine a few live values into the result.
    Value *R = pick();
    for (unsigned K = 0, E = 1 + Rng.below(3); K < E; ++K) {
      Opcode Op = Rng.chance(50) ? Opcode::Add : Opcode::Xor;
      R = B.createBinary(Op, R, pick(), "res");
    }
    B.createRet(R);
  }

private:
  //===------------------------------------------------------------------===//
  // Value pool helpers
  //===------------------------------------------------------------------===//

  Value *pick() {
    if (Pool.empty() || Rng.chance(PureArith ? 5 : 15))
      return Ctx.getInt32(Rng.range(-64, 64));
    return Pool[Rng.below(Pool.size())];
  }

  void push(Value *V) {
    Pool.push_back(V);
    if (Pool.size() > 24)
      Pool.erase(Pool.begin() + 2); // keep the params available
  }

  Value *constExpr() {
    // A chain that SCCP / constant folding collapses.
    Value *A = Ctx.getInt32(Rng.range(1, 9));
    Value *C = B.createAdd(A, Ctx.getInt32(Rng.range(1, 9)), "cf");
    if (Rng.chance(50))
      C = B.createMul(C, Ctx.getInt32(Rng.range(1, 4)), "cf");
    return C;
  }

  Value *someExpr() {
    Value *A = pick(), *C = pick();
    switch (Rng.below(6)) {
    case 0:
      return B.createAdd(A, C, "t");
    case 1:
      return B.createSub(A, C, "t");
    case 2:
      return B.createMul(A, Ctx.getInt32(Rng.range(2, 5)), "t");
    case 3:
      return B.createAnd(A, Ctx.getInt32(255), "t");
    case 4:
      return B.createXor(A, C, "t");
    default:
      return B.createBinary(Opcode::AShr, A, Ctx.getInt32(Rng.range(1, 3)),
                            "t");
    }
  }

  /// Pure-arithmetic functions carry fewer planted constant chains: their
  /// GVN work is then mostly CSE, which validates without any rules.
  unsigned constChance() const {
    return PureArith ? P.ConstExprPct / 6 : P.ConstExprPct;
  }

  unsigned redundantChance() const {
    return PureArith ? P.RedundantPct + P.RedundantPct / 2 : P.RedundantPct;
  }

  Value *someCond() {
    if (Rng.chance(constChance())) {
      // Constant-foldable condition: SCCP resolves the branch.
      return B.createICmp(ICmpPred::SLT, constExpr(),
                          Ctx.getInt32(Rng.range(5, 40)), "cc");
    }
    static const ICmpPred Preds[] = {ICmpPred::SLT, ICmpPred::SLE,
                                     ICmpPred::EQ, ICmpPred::NE,
                                     ICmpPred::SGT};
    return B.createICmp(Preds[Rng.below(5)], pick(), pick(), "c");
  }

  BasicBlock *newBlock(const char *Tag) {
    return F->createBlock(Tag + std::to_string(NextBlock++));
  }

  //===------------------------------------------------------------------===//
  // Segments
  //===------------------------------------------------------------------===//

  void emitSegment(unsigned Depth) {
    unsigned Roll = Rng.below(100);
    if (Roll < P.LoopPct && Depth < 2) {
      emitLoop(Depth);
      return;
    }
    Roll = Rng.below(100);
    if (Roll < P.DiamondPct) {
      emitDiamond();
      return;
    }
    if (!PureArith) {
      if (Rng.chance(P.ArrayPct))
        emitArray();
      if (Rng.chance(P.CallPct))
        emitCall();
      if (Rng.chance(P.FloatPct))
        emitFloat();
      if (Rng.chance(P.GlobalPct))
        emitGlobal();
    }
    emitStraightline();
  }

  void emitStraightline() {
    Value *V = someExpr();
    if (Rng.chance(redundantChance())) {
      // A duplicate computation for GVN to merge. Rebuild the same
      // expression from the same operands.
      if (auto *BO = dyn_cast<BinaryOperator>(V)) {
        Value *Dup = B.createBinary(BO->getOpcode(), BO->getLHS(),
                                    BO->getRHS(), "dup");
        push(B.createAdd(V, Dup, "sum"));
      }
    }
    if (Rng.chance(constChance()))
      push(B.createAdd(someExpr(), constExpr(), "k"));
    push(V);
  }

  void emitDiamond() {
    Value *Cond = someCond();
    BasicBlock *T = newBlock("then");
    BasicBlock *E = newBlock("else");
    BasicBlock *J = newBlock("join");
    B.createCondBr(Cond, T, E);

    bool GVNTwin = Rng.chance(P.RedundantPct);
    Value *Shared1 = pick(), *Shared2 = pick();

    B.setInsertPoint(T);
    Value *TV = GVNTwin ? B.createAdd(Shared1, Shared2, "tw")
                        : someExpr();
    if (!PureArith && Rng.chance(30))
      B.createStore(TV, B.createGEP(I32, IntArray,
                                    Ctx.getInt64(Rng.below(8)), "p"));
    B.createBr(J);

    B.setInsertPoint(E);
    Value *EV = GVNTwin ? B.createAdd(Shared1, Shared2, "tw")
                        : someExpr();
    B.createBr(J);

    B.setInsertPoint(J);
    PhiNode *P2 = B.createPhi(I32, "phi");
    P2->addIncoming(TV, T);
    P2->addIncoming(EV, E);
    push(P2);
  }

  void emitLoop(unsigned Depth) {
    // Bound the trip count so the reference interpreter always terminates.
    // Bounds come from the parameters most of the time; constant bounds
    // fold under SCCP and make the loop deletable (the DeadLoop knob).
    bool Dead = Rng.chance(P.DeadLoopPct);
    Value *NSrc = Dead && Rng.chance(50)
                      ? static_cast<Value *>(Ctx.getInt32(Rng.range(0, 64)))
                      : static_cast<Value *>(
                            F->getArg(Rng.below(2)));
    Value *N = B.createAnd(NSrc, Ctx.getInt32(15), "n");
    Value *Init = pick();
    bool Invariant = Rng.chance(P.InvariantPct);
    bool Unswitch = Rng.chance(P.UnswitchPct) && !Dead;
    bool ArrayWork = Rng.chance(P.ArrayPct) && !Dead && !PureArith;
    bool LibcWork = Rng.chance(P.LibcPct) && !Dead && !PureArith;

    // Loop-invariant ingredients defined before the loop.
    Value *InvA = pick(), *InvB = pick();
    Value *UnswitchCond =
        Unswitch ? B.createICmp(ICmpPred::SGT, pick(), pick(), "uc")
                 : nullptr;

    BasicBlock *Pre = B.getInsertBlock();
    BasicBlock *Header = newBlock("loop");
    BasicBlock *Body = newBlock("body");
    BasicBlock *Latch = newBlock("latch");
    BasicBlock *Exit = newBlock("exit");
    B.createBr(Header);

    B.setInsertPoint(Header);
    PhiNode *I = B.createPhi(I32, "i");
    PhiNode *Acc = B.createPhi(I32, "acc");
    I->addIncoming(Ctx.getInt32(0), Pre);
    Acc->addIncoming(Init, Pre);
    Value *Cmp = B.createICmp(ICmpPred::SLT, I, N, "lc");
    B.createCondBr(Cmp, Body, Exit);

    B.setInsertPoint(Body);
    Value *Step = B.createAdd(Acc, I, "step");
    if (Invariant) {
      // x = a + c inside the loop but invariant: LICM hoists it.
      Value *Inv = B.createAdd(InvA, InvB, "inv");
      Step = B.createXor(Step, Inv, "step");
    }
    if (ArrayWork) {
      Value *Ptr = B.createGEP(I32, IntArray,
                               B.createCast(Opcode::SExt, I, I64, "ix"),
                               "ep");
      B.createStore(Step, Ptr);
    }
    if (LibcWork) {
      // strlen of a loop-invariant string while the loop writes only
      // non-aliasing local memory: LLVM (and our LICM) hoists the call;
      // the validator needs libc knowledge to agree.
      Value *Len = B.createCall(M.getFunction("strlen"), {StrParam}, "len");
      Value *Len32 = B.createCast(Opcode::Trunc, Len, I32, "len32");
      Step = B.createAdd(Step, Len32, "step");
      if (!ArrayWork) {
        // Ensure there is a store in the loop so hoisting is not trivial.
        Value *Ptr = B.createGEP(I32, IntArray, Ctx.getInt64(1), "wp");
        B.createStore(Step, Ptr);
      }
    }
    Value *BodyOut = Step;
    if (Unswitch) {
      BasicBlock *UT = newBlock("ut");
      BasicBlock *UE = newBlock("ue");
      BasicBlock *UJ = newBlock("uj");
      B.createCondBr(UnswitchCond, UT, UE);
      B.setInsertPoint(UT);
      Value *TV = B.createAdd(Step, Ctx.getInt32(1), "utv");
      B.createBr(UJ);
      B.setInsertPoint(UE);
      Value *EV = B.createSub(Step, Ctx.getInt32(1), "uev");
      B.createBr(UJ);
      B.setInsertPoint(UJ);
      PhiNode *UP = B.createPhi(I32, "uphi");
      UP->addIncoming(TV, UT);
      UP->addIncoming(EV, UE);
      BodyOut = UP;
    }
    if (Depth == 0 && Rng.chance(P.NestedLoopPct))
      BodyOut = emitInnerLoop(BodyOut);
    B.createBr(Latch);

    B.setInsertPoint(Latch);
    Value *INext = B.createAdd(I, Ctx.getInt32(1), "inc");
    B.createBr(Header);
    I->addIncoming(INext, Latch);
    Acc->addIncoming(BodyOut, Latch);

    B.setInsertPoint(Exit);
    if (!Dead)
      push(Acc);
    // Dead loops: the accumulator is never used again, so ADCE plus loop
    // deletion remove the whole loop.
  }

  Value *emitInnerLoop(Value *Carry) {
    BasicBlock *Pre = B.getInsertBlock();
    BasicBlock *Header = newBlock("iloop");
    BasicBlock *Body = newBlock("ibody");
    BasicBlock *Exit = newBlock("iexit");
    B.createBr(Header);

    B.setInsertPoint(Header);
    PhiNode *J = B.createPhi(I32, "j");
    PhiNode *S = B.createPhi(I32, "s");
    J->addIncoming(Ctx.getInt32(0), Pre);
    S->addIncoming(Carry, Pre);
    Value *Cmp = B.createICmp(ICmpPred::SLT, J, Ctx.getInt32(4), "jc");
    B.createCondBr(Cmp, Body, Exit);

    B.setInsertPoint(Body);
    Value *SN = B.createAdd(S, J, "sn");
    Value *JN = B.createAdd(J, Ctx.getInt32(1), "jn");
    B.createBr(Header);
    J->addIncoming(JN, Body);
    S->addIncoming(SN, Body);

    B.setInsertPoint(Exit);
    return S;
  }

  void emitArray() {
    unsigned Idx = Rng.below(8);
    Value *Ptr = B.createGEP(I32, IntArray, Ctx.getInt64(Idx), "ap");
    if (Rng.chance(P.DeadStorePct)) {
      // Overwritten store: DSE removes the first one.
      B.createStore(pick(), Ptr);
    }
    Value *Stored = pick();
    B.createStore(Stored, Ptr);
    Value *L1 = B.createLoad(I32, Ptr, "ld");
    push(L1);
    if (Rng.chance(P.RedundantPct)) {
      // Redundant load: GVN forwards the stored value.
      Value *L2 = B.createLoad(I32, Ptr, "ld2");
      push(B.createAdd(L1, L2, "lsum"));
    }
  }

  void emitCall() {
    switch (Rng.below(4)) {
    case 0: {
      Value *Len = B.createCall(M.getFunction("strlen"), {StrParam}, "sl");
      push(B.createCast(Opcode::Trunc, Len, I32, "sl32"));
      return;
    }
    case 1: {
      Value *V = B.createCall(M.getFunction("atoi"), {StrParam}, "ai");
      push(V);
      return;
    }
    case 2: {
      Value *V = B.createCall(M.getFunction("abs"), {pick()}, "ab");
      push(V);
      return;
    }
    default: {
      // memset a byte buffer then read a byte back: folding the read needs
      // the optimizer's (and validator's) memset model.
      unsigned Fill = Rng.below(200);
      B.createCall(M.getFunction("memset"),
                   {ByteArray, Ctx.getInt32(Fill), Ctx.getInt64(16)});
      Value *Ptr = B.createGEP(I8, ByteArray, Ctx.getInt64(Rng.below(16)),
                               "bp");
      Value *Byte = B.createLoad(I8, Ptr, "byte");
      push(B.createCast(Opcode::ZExt, Byte, I32, "bz"));
      return;
    }
    }
  }

  void emitFloat() {
    // Foldable float arithmetic: the optimizer folds it; the validator
    // needs RS_FloatFold to keep up.
    Value *A = Ctx.getFloat(1.5 * static_cast<double>(Rng.range(1, 8)));
    Value *C = Ctx.getFloat(0.25 * static_cast<double>(Rng.range(1, 8)));
    Value *S = B.createBinary(Opcode::FAdd, A, C, "fs");
    Value *T = B.createBinary(Opcode::FMul, S, Ctx.getFloat(2.0), "ft");
    Value *Cmp = B.createFCmp(FCmpPred::OGT, T, Ctx.getFloat(3.0), "fc");
    push(B.createCast(Opcode::ZExt, Cmp, I32, "fci"));
  }

  void emitGlobal() {
    if (Rng.chance(60)) {
      // Load of a constant global: folded by GVN, needs RS_GlobalFold.
      GlobalVariable *GC = M.getGlobal("gc" + std::to_string(Rng.below(4)));
      push(B.createLoad(I32, GC, "gl"));
      return;
    }
    GlobalVariable *GM = M.getGlobal("gm" + std::to_string(Rng.below(2)));
    if (Rng.chance(50))
      B.createStore(pick(), GM);
    push(B.createLoad(I32, GM, "gml"));
  }

  Module &M;
  Context &Ctx;
  const BenchmarkProfile &P;
  Function *F;
  SplitMixRng Rng;
  IRBuilder B;
  Type *I32 = nullptr;
  Type *I64 = nullptr;
  Type *I8 = nullptr;
  Value *StrParam = nullptr;
  Value *IntArray = nullptr;
  Value *ByteArray = nullptr;
  std::vector<Value *> Pool;
  unsigned NextBlock = 0;
  bool PureArith = false;
};

void declareExternals(Module &M) {
  Context &Ctx = M.getContext();
  Type *I32 = Ctx.getInt32Ty(), *I64 = Ctx.getInt64Ty();
  Type *Ptr = Ctx.getPtrTy(), *Void = Ctx.getVoidTy(), *F = Ctx.getFloatTy();
  M.createFunction(Ctx.getFunctionTy(I64, {Ptr}), "strlen")
      ->setMemoryEffect(MemoryEffect::ReadOnly);
  M.createFunction(Ctx.getFunctionTy(I32, {Ptr}), "atoi")
      ->setMemoryEffect(MemoryEffect::ReadOnly);
  M.createFunction(Ctx.getFunctionTy(I32, {I32}), "abs")
      ->setMemoryEffect(MemoryEffect::ReadNone);
  M.createFunction(Ctx.getFunctionTy(Void, {Ptr, I32, I64}), "memset");
  M.createFunction(Ctx.getFunctionTy(F, {F}), "fsqrt")
      ->setMemoryEffect(MemoryEffect::ReadNone);
  M.createFunction(Ctx.getFunctionTy(I32, {Ptr}), "puts");
}

} // namespace

std::unique_ptr<Module> llvmmd::generateBenchmark(
    Context &Ctx, const BenchmarkProfile &Profile) {
  auto M = std::make_unique<Module>(Ctx, Profile.Name);
  declareExternals(*M);

  // Globals: constant (foldable) and mutable.
  SplitMixRng Rng(Profile.Seed);
  for (unsigned K = 0; K < 4; ++K)
    M->createGlobal(Ctx.getInt32Ty(), "gc" + std::to_string(K),
                    Ctx.getInt32(Rng.range(1, 1000)), /*IsConstant=*/true);
  for (unsigned K = 0; K < 2; ++K)
    M->createGlobal(Ctx.getInt32Ty(), "gm" + std::to_string(K),
                    Ctx.getInt32(Rng.range(1, 100)), /*IsConstant=*/false);

  Type *I32 = Ctx.getInt32Ty();
  FunctionType *FTy =
      Ctx.getFunctionTy(I32, {I32, I32, Ctx.getPtrTy()});
  for (unsigned K = 0; K < Profile.FunctionCount; ++K) {
    Function *F = M->createFunction(FTy, Profile.Name + "_f" +
                                             std::to_string(K));
    FunctionGenerator Gen(*M, Profile, F,
                          hashCombine(Profile.Seed, K * 2654435761u));
    Gen.generate();
  }
  return M;
}
