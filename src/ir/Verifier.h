//===- Verifier.h - IR well-formedness checks -------------------*- C++ -*-===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural and SSA checks: every block terminated exactly once, phis
/// grouped at block heads and matching the predecessor set, every use
/// dominated by its definition, operand types consistent.
///
//===----------------------------------------------------------------------===//

#ifndef LLVMMD_IR_VERIFIER_H
#define LLVMMD_IR_VERIFIER_H

#include <string>
#include <vector>

namespace llvmmd {

class Function;
class Module;

/// Appends diagnostics for \p F to \p Errors; returns true if none found.
bool verifyFunction(const Function &F, std::vector<std::string> &Errors);

/// Verifies every defined function; returns true if the module is clean.
bool verifyModule(const Module &M, std::vector<std::string> &Errors);

} // namespace llvmmd

#endif // LLVMMD_IR_VERIFIER_H
