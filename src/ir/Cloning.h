//===- Cloning.h - Function, block and module cloning -----------*- C++ -*-===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cloning utilities. The llvm-md driver clones the whole module before
/// optimizing so the validator can compare against the untouched original;
/// loop unswitching clones loop bodies within one function.
///
//===----------------------------------------------------------------------===//

#ifndef LLVMMD_IR_CLONING_H
#define LLVMMD_IR_CLONING_H

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace llvmmd {

class Arena;
class BasicBlock;
class Function;
class Instruction;
class Module;
class Value;

/// Deep-copies \p M into a fresh module in the same Context. Globals keep
/// their names; function bodies are cloned instruction by instruction.
std::unique_ptr<Module> cloneModule(const Module &M);

/// Clones \p Src's body into \p Dst (which must have the same signature and
/// an empty body). \p VMap receives the old-to-new value mapping.
void cloneFunctionBody(const Function &Src, Function &Dst,
                       std::map<const Value *, Value *> &VMap);

/// Re-points \p F's global-variable operands and call targets at
/// \p DstModule's same-named entities. The fixup every cross-module body
/// clone needs (the engine's revert phase, triage's scratch extraction):
/// cloneFunctionBody copies operands verbatim, so they still reference the
/// source module until remapped.
void remapModuleReferences(Function &F, Module &DstModule);

/// Clones \p Blocks (all in \p F) appending " \p Suffix"-named copies to
/// \p F. Operands, phi incoming blocks and branch targets referring to
/// cloned values/blocks are remapped; external references are left as is
/// (the caller fixes up phi entries from predecessors outside the set).
std::vector<BasicBlock *>
cloneBlocks(Function &F, const std::vector<BasicBlock *> &Blocks,
            std::map<const Value *, Value *> &VMap,
            std::map<const BasicBlock *, BasicBlock *> &BMap,
            const std::string &Suffix);

/// Clones one instruction into \p A (normally the destination function's
/// body arena) with identical operands (not remapped) and no parent. Phi
/// incoming blocks and branch successors are copied verbatim.
Instruction *cloneInstruction(const Instruction *I, Arena &A);

} // namespace llvmmd

#endif // LLVMMD_IR_CLONING_H
