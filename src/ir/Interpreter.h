//===- Interpreter.h - Reference interpreter for miniir ---------*- C++ -*-===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small big-step interpreter used as the semantic oracle for
/// differential testing: an optimizer pass (or a validated pair) is correct
/// if original and transformed functions produce the same return value and
/// the same final global memory on the same inputs.
///
/// Models the paper's guarantee precisely: termination and absence of
/// runtime errors are *assumed*, so runs ending in a trap or over the step
/// budget report a non-OK status and comparisons skip them.
///
//===----------------------------------------------------------------------===//

#ifndef LLVMMD_IR_INTERPRETER_H
#define LLVMMD_IR_INTERPRETER_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace llvmmd {

class Function;
class Module;

/// A runtime scalar. Pointers are 64-bit addresses in the interpreter's
/// flat address space.
struct RtValue {
  enum class Kind : uint8_t { Int, Float, Ptr } K = Kind::Int;
  int64_t Int = 0;   // canonical (sign-extended) for iN
  double Float = 0;
  uint64_t Ptr = 0;

  static RtValue makeInt(int64_t V) {
    RtValue R;
    R.K = Kind::Int;
    R.Int = V;
    return R;
  }
  static RtValue makeFloat(double V) {
    RtValue R;
    R.K = Kind::Float;
    R.Float = V;
    return R;
  }
  static RtValue makePtr(uint64_t V) {
    RtValue R;
    R.K = Kind::Ptr;
    R.Ptr = V;
    return R;
  }

  bool operator==(const RtValue &O) const {
    if (K != O.K)
      return false;
    switch (K) {
    case Kind::Int:
      return Int == O.Int;
    case Kind::Float:
      return Float == O.Float;
    case Kind::Ptr:
      return Ptr == O.Ptr;
    }
    return false;
  }
};

enum class ExecStatus : uint8_t {
  OK,
  Trap,         // division by zero, null deref, unmodeled external call
  StepLimit,    // ran out of fuel (possible non-termination)
  Unsupported,  // malformed input
};

struct ExecResult {
  ExecStatus Status = ExecStatus::OK;
  bool HasValue = false;
  RtValue Value;
  std::string Detail;
};

/// Interprets functions of one module against a flat byte memory.
class Interpreter {
public:
  /// \p StepBudget bounds total instructions executed per run.
  explicit Interpreter(const Module &M, uint64_t StepBudget = 1u << 20);

  /// Runs \p F with \p Args starting from the module's initial global
  /// memory plus any bytes written by earlier run() calls if \p Fresh is
  /// false (default resets memory each run).
  ExecResult run(const Function &F, const std::vector<RtValue> &Args,
                 bool Fresh = true);

  /// Snapshot of global memory after the last run: byte content of every
  /// global variable region, keyed by global name. This is the observable
  /// final memory state compared in differential tests.
  std::map<std::string, std::vector<uint8_t>> globalMemory() const;

  /// Interns a NUL-terminated string in the initial memory image and
  /// returns its (stable) address; the string survives memory resets.
  /// Useful for feeding the modeled libc functions (strlen, atoi).
  uint64_t materializeString(const std::string &S);

private:
  struct GlobalRegion {
    uint64_t Addr;
    unsigned Size;
  };

  void resetMemory();
  uint64_t allocate(uint64_t Size);
  void storeBytes(uint64_t Addr, const void *Src, unsigned Size);
  void loadBytes(uint64_t Addr, void *Dst, unsigned Size) const;

  const Module &M;
  uint64_t StepBudget;
  uint64_t Steps = 0;
  uint64_t NextAddr = 0x1000;
  std::map<uint64_t, uint8_t> Memory;
  std::map<std::string, GlobalRegion> Globals;
  std::map<std::string, std::vector<uint8_t>> StringPool;
  std::map<std::string, uint64_t> StringAddrs;

  friend class FrameExec;
};

} // namespace llvmmd

#endif // LLVMMD_IR_INTERPRETER_H
