//===- Instruction.h - All miniir instruction classes -----------*- C++ -*-===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The full instruction vocabulary of the miniir substrate: integer and
/// float arithmetic, comparisons, casts, select, memory (alloca, load,
/// store, getelementptr), calls, phi nodes, and terminators.
///
//===----------------------------------------------------------------------===//

#ifndef LLVMMD_IR_INSTRUCTION_H
#define LLVMMD_IR_INSTRUCTION_H

#include "ir/Constant.h"
#include "ir/Value.h"

#include <string>
#include <vector>

namespace llvmmd {

class BasicBlock;
class Function;

enum class Opcode : uint8_t {
  // Integer binary operators.
  Add,
  Sub,
  Mul,
  SDiv,
  UDiv,
  SRem,
  URem,
  Shl,
  LShr,
  AShr,
  And,
  Or,
  Xor,
  // Float binary operators.
  FAdd,
  FSub,
  FMul,
  FDiv,
  // Comparisons.
  ICmp,
  FCmp,
  // Casts.
  Trunc,
  ZExt,
  SExt,
  // Other value-producing instructions.
  Select,
  Alloca,
  Load,
  GEP,
  Call,
  Phi,
  // Non-value instructions and terminators.
  Store,
  Br,
  Ret,
  Unreachable,
};

const char *getOpcodeName(Opcode Op);

inline bool isIntBinaryOp(Opcode Op) {
  return Op >= Opcode::Add && Op <= Opcode::Xor;
}
inline bool isFloatBinaryOp(Opcode Op) {
  return Op >= Opcode::FAdd && Op <= Opcode::FDiv;
}
inline bool isBinaryOp(Opcode Op) {
  return Op >= Opcode::Add && Op <= Opcode::FDiv;
}
inline bool isCastOp(Opcode Op) {
  return Op >= Opcode::Trunc && Op <= Opcode::SExt;
}
inline bool isTerminatorOp(Opcode Op) {
  return Op == Opcode::Br || Op == Opcode::Ret || Op == Opcode::Unreachable;
}
/// Commutative integer/float operators (for canonicalization).
inline bool isCommutativeOp(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
  case Opcode::Mul:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::FAdd:
  case Opcode::FMul:
    return true;
  default:
    return false;
  }
}

enum class ICmpPred : uint8_t { EQ, NE, SLT, SLE, SGT, SGE, ULT, ULE, UGT, UGE };
enum class FCmpPred : uint8_t { OEQ, ONE, OLT, OLE, OGT, OGE };

const char *getPredName(ICmpPred P);
const char *getPredName(FCmpPred P);
/// The predicate that holds for (b,a) whenever P holds for (a,b).
ICmpPred swapPred(ICmpPred P);
/// The predicate equivalent to !P.
ICmpPred invertPred(ICmpPred P);

/// Base class of all instructions. Owns nothing; the parent BasicBlock owns
/// the instruction object.
class Instruction : public User {
public:
  Opcode getOpcode() const { return Op; }
  const char *getOpcodeName() const { return llvmmd::getOpcodeName(Op); }

  BasicBlock *getParent() const { return Parent; }
  void setParent(BasicBlock *BB) { Parent = BB; }
  Function *getFunction() const;

  bool isTerminator() const { return isTerminatorOp(Op); }
  bool isBinaryOp() const { return llvmmd::isBinaryOp(Op); }
  bool isCast() const { return isCastOp(Op); }
  bool isPhi() const { return Op == Opcode::Phi; }

  /// True if this instruction may write memory or have other side effects
  /// observable after the function returns.
  bool mayWriteMemory() const;
  /// True if this instruction may read memory.
  bool mayReadMemory() const;
  /// True if the instruction has side effects that forbid removing it even
  /// when its result is unused (stores, most calls).
  bool hasSideEffects() const;

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::Instruction;
  }

protected:
  Instruction(Opcode Op, Type *Ty)
      : User(ValueKind::Instruction, Ty), Op(Op) {}

private:
  Opcode Op;
  BasicBlock *Parent = nullptr;
};

/// Integer or float binary operator.
class BinaryOperator : public Instruction {
public:
  BinaryOperator(Opcode Op, Value *LHS, Value *RHS)
      : Instruction(Op, LHS->getType()) {
    assert(llvmmd::isBinaryOp(Op) && "not a binary opcode");
    assert(LHS->getType() == RHS->getType() && "operand type mismatch");
    addOperand(LHS);
    addOperand(RHS);
  }

  Value *getLHS() const { return getOperand(0); }
  Value *getRHS() const { return getOperand(1); }

  static bool classof(const Value *V) {
    auto *I = dyn_cast<Instruction>(V);
    return I && llvmmd::isBinaryOp(I->getOpcode());
  }
};

/// Integer comparison producing i1.
class ICmpInst : public Instruction {
public:
  ICmpInst(ICmpPred Pred, Value *LHS, Value *RHS, Type *BoolTy)
      : Instruction(Opcode::ICmp, BoolTy), Pred(Pred) {
    assert(LHS->getType() == RHS->getType() && "operand type mismatch");
    addOperand(LHS);
    addOperand(RHS);
  }

  ICmpPred getPred() const { return Pred; }
  void setPred(ICmpPred P) { Pred = P; }
  Value *getLHS() const { return getOperand(0); }
  Value *getRHS() const { return getOperand(1); }

  static bool classof(const Value *V) {
    auto *I = dyn_cast<Instruction>(V);
    return I && I->getOpcode() == Opcode::ICmp;
  }

private:
  ICmpPred Pred;
};

/// Ordered float comparison producing i1.
class FCmpInst : public Instruction {
public:
  FCmpInst(FCmpPred Pred, Value *LHS, Value *RHS, Type *BoolTy)
      : Instruction(Opcode::FCmp, BoolTy), Pred(Pred) {
    addOperand(LHS);
    addOperand(RHS);
  }

  FCmpPred getPred() const { return Pred; }
  Value *getLHS() const { return getOperand(0); }
  Value *getRHS() const { return getOperand(1); }

  static bool classof(const Value *V) {
    auto *I = dyn_cast<Instruction>(V);
    return I && I->getOpcode() == Opcode::FCmp;
  }

private:
  FCmpPred Pred;
};

/// Integer width cast (trunc / zext / sext).
class CastInst : public Instruction {
public:
  CastInst(Opcode Op, Value *Src, Type *DestTy) : Instruction(Op, DestTy) {
    assert(isCastOp(Op) && "not a cast opcode");
    addOperand(Src);
  }

  Value *getSrc() const { return getOperand(0); }

  static bool classof(const Value *V) {
    auto *I = dyn_cast<Instruction>(V);
    return I && isCastOp(I->getOpcode());
  }
};

/// select i1 %c, T %a, T %b
class SelectInst : public Instruction {
public:
  SelectInst(Value *Cond, Value *TrueV, Value *FalseV)
      : Instruction(Opcode::Select, TrueV->getType()) {
    assert(TrueV->getType() == FalseV->getType() && "select arm mismatch");
    addOperand(Cond);
    addOperand(TrueV);
    addOperand(FalseV);
  }

  Value *getCondition() const { return getOperand(0); }
  Value *getTrueValue() const { return getOperand(1); }
  Value *getFalseValue() const { return getOperand(2); }

  static bool classof(const Value *V) {
    auto *I = dyn_cast<Instruction>(V);
    return I && I->getOpcode() == Opcode::Select;
  }
};

/// Stack allocation of `Count` elements of `AllocatedTy`; yields ptr.
class AllocaInst : public Instruction {
public:
  AllocaInst(Type *AllocatedTy, Value *Count, Type *PtrTy)
      : Instruction(Opcode::Alloca, PtrTy), AllocatedTy(AllocatedTy) {
    addOperand(Count);
  }

  Type *getAllocatedType() const { return AllocatedTy; }
  Value *getCount() const { return getOperand(0); }

  static bool classof(const Value *V) {
    auto *I = dyn_cast<Instruction>(V);
    return I && I->getOpcode() == Opcode::Alloca;
  }

private:
  Type *AllocatedTy;
};

/// load T, ptr %p
class LoadInst : public Instruction {
public:
  LoadInst(Type *Ty, Value *Ptr) : Instruction(Opcode::Load, Ty) {
    assert(Ptr->getType()->isPointer() && "load from non-pointer");
    addOperand(Ptr);
  }

  Value *getPointer() const { return getOperand(0); }

  static bool classof(const Value *V) {
    auto *I = dyn_cast<Instruction>(V);
    return I && I->getOpcode() == Opcode::Load;
  }
};

/// store T %v, ptr %p
class StoreInst : public Instruction {
public:
  StoreInst(Value *Val, Value *Ptr, Type *VoidTy)
      : Instruction(Opcode::Store, VoidTy) {
    assert(Ptr->getType()->isPointer() && "store to non-pointer");
    addOperand(Val);
    addOperand(Ptr);
  }

  Value *getStoredValue() const { return getOperand(0); }
  Value *getPointer() const { return getOperand(1); }

  static bool classof(const Value *V) {
    auto *I = dyn_cast<Instruction>(V);
    return I && I->getOpcode() == Opcode::Store;
  }
};

/// getelementptr T, ptr %base, i64 %idx — pointer arithmetic by whole
/// elements: result = base + idx * sizeof(T).
class GEPInst : public Instruction {
public:
  GEPInst(Type *ElemTy, Value *Base, Value *Index, Type *PtrTy)
      : Instruction(Opcode::GEP, PtrTy), ElemTy(ElemTy) {
    addOperand(Base);
    addOperand(Index);
  }

  Type *getElementType() const { return ElemTy; }
  Value *getBase() const { return getOperand(0); }
  Value *getIndex() const { return getOperand(1); }

  static bool classof(const Value *V) {
    auto *I = dyn_cast<Instruction>(V);
    return I && I->getOpcode() == Opcode::GEP;
  }

private:
  Type *ElemTy;
};

/// Direct call to a module function or external declaration.
class CallInst : public Instruction {
public:
  CallInst(Function *Callee, std::vector<Value *> Args, Type *RetTy);

  Function *getCallee() const { return Callee; }
  /// Retargets the call (used by module cloning to point at the cloned
  /// module's declaration of the same function).
  void setCallee(Function *F) {
    assert(F && "call requires a callee");
    Callee = F;
  }
  unsigned getNumArgs() const { return getNumOperands(); }
  Value *getArg(unsigned I) const { return getOperand(I); }

  static bool classof(const Value *V) {
    auto *I = dyn_cast<Instruction>(V);
    return I && I->getOpcode() == Opcode::Call;
  }

private:
  Function *Callee;
};

/// SSA phi node; incoming blocks are kept parallel to the operand list.
class PhiNode : public Instruction {
public:
  explicit PhiNode(Type *Ty) : Instruction(Opcode::Phi, Ty) {}

  void addIncoming(Value *V, BasicBlock *BB) {
    assert(V->getType() == getType() && "phi incoming type mismatch");
    addOperand(V);
    Blocks.push_back(BB);
  }

  unsigned getNumIncoming() const { return getNumOperands(); }
  Value *getIncomingValue(unsigned I) const { return getOperand(I); }
  void setIncomingValue(unsigned I, Value *V) { setOperand(I, V); }
  BasicBlock *getIncomingBlock(unsigned I) const {
    assert(I < Blocks.size() && "phi incoming index out of range");
    return Blocks[I];
  }
  void setIncomingBlock(unsigned I, BasicBlock *BB) {
    assert(I < Blocks.size() && "phi incoming index out of range");
    Blocks[I] = BB;
  }

  /// Index of the entry for predecessor \p BB, or -1 if absent.
  int getBlockIndex(const BasicBlock *BB) const {
    for (unsigned I = 0, E = Blocks.size(); I != E; ++I)
      if (Blocks[I] == BB)
        return static_cast<int>(I);
    return -1;
  }

  Value *getIncomingValueForBlock(const BasicBlock *BB) const {
    int I = getBlockIndex(BB);
    assert(I >= 0 && "no phi entry for block");
    return getIncomingValue(static_cast<unsigned>(I));
  }

  void removeIncoming(unsigned I) {
    removeOperand(I);
    Blocks.erase(Blocks.begin() + I);
  }

  static bool classof(const Value *V) {
    auto *I = dyn_cast<Instruction>(V);
    return I && I->getOpcode() == Opcode::Phi;
  }

private:
  std::vector<BasicBlock *> Blocks;
};

/// Conditional or unconditional branch.
class BranchInst : public Instruction {
public:
  /// Unconditional branch.
  BranchInst(BasicBlock *Target, Type *VoidTy)
      : Instruction(Opcode::Br, VoidTy), Succs{Target, nullptr} {}

  /// Conditional branch on an i1 value.
  BranchInst(Value *Cond, BasicBlock *TrueBB, BasicBlock *FalseBB,
             Type *VoidTy)
      : Instruction(Opcode::Br, VoidTy), Succs{TrueBB, FalseBB} {
    addOperand(Cond);
  }

  bool isConditional() const { return getNumOperands() == 1; }
  Value *getCondition() const {
    assert(isConditional() && "no condition on unconditional branch");
    return getOperand(0);
  }
  /// Turns a conditional branch into an unconditional one to \p Target.
  void makeUnconditional(BasicBlock *Target) {
    if (isConditional())
      removeOperand(0);
    Succs[0] = Target;
    Succs[1] = nullptr;
  }

  unsigned getNumSuccessors() const { return isConditional() ? 2 : 1; }
  BasicBlock *getSuccessor(unsigned I) const {
    assert(I < getNumSuccessors() && "successor index out of range");
    return Succs[I];
  }
  void setSuccessor(unsigned I, BasicBlock *BB) {
    assert(I < getNumSuccessors() && "successor index out of range");
    Succs[I] = BB;
  }

  static bool classof(const Value *V) {
    auto *I = dyn_cast<Instruction>(V);
    return I && I->getOpcode() == Opcode::Br;
  }

private:
  BasicBlock *Succs[2];
};

/// ret T %v / ret void
class ReturnInst : public Instruction {
public:
  ReturnInst(Value *RetVal, Type *VoidTy) : Instruction(Opcode::Ret, VoidTy) {
    if (RetVal)
      addOperand(RetVal);
  }

  bool hasReturnValue() const { return getNumOperands() == 1; }
  Value *getReturnValue() const {
    return hasReturnValue() ? getOperand(0) : nullptr;
  }

  static bool classof(const Value *V) {
    auto *I = dyn_cast<Instruction>(V);
    return I && I->getOpcode() == Opcode::Ret;
  }
};

class UnreachableInst : public Instruction {
public:
  explicit UnreachableInst(Type *VoidTy)
      : Instruction(Opcode::Unreachable, VoidTy) {}

  static bool classof(const Value *V) {
    auto *I = dyn_cast<Instruction>(V);
    return I && I->getOpcode() == Opcode::Unreachable;
  }
};

} // namespace llvmmd

#endif // LLVMMD_IR_INSTRUCTION_H
