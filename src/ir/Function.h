//===- Function.h - Functions and declarations ------------------*- C++ -*-===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Function owns its arguments and basic blocks. Declarations (no body)
/// model external functions; their attributes (readonly/readnone) are what
/// the optimizer's "libc knowledge" consists of.
///
/// Ownership: the Function object and its Arguments live in the parent
/// module's arena (they survive body replacement — reverts and re-clones
/// keep Argument pointers valid). Blocks and instructions live in the
/// function's own body arena: `dropBody()` releases the whole body as one
/// arena reset and recycles the slab, so the stepwise snapshot/revert
/// cycle re-clones into already-hot memory. Exactly one thread mutates a
/// function body at a time (the engine's per-function task model), so the
/// body arena needs no lock.
///
//===----------------------------------------------------------------------===//

#ifndef LLVMMD_IR_FUNCTION_H
#define LLVMMD_IR_FUNCTION_H

#include "ir/BasicBlock.h"
#include "ir/Constant.h"
#include "ir/Type.h"
#include "support/Arena.h"

#include <algorithm>
#include <string>
#include <vector>

namespace llvmmd {

class Module;

/// Side-effect attributes for declarations, mirroring LLVM's memory
/// attributes. They drive both the optimizer (which may hoist/CSE calls)
/// and — only when the Libc rule set is enabled — the validator.
enum class MemoryEffect : uint8_t {
  /// May read and write any memory (the conservative default).
  ReadWrite,
  /// Reads memory but never writes it (e.g. strlen).
  ReadOnly,
  /// Neither reads nor writes memory (e.g. abs).
  ReadNone,
};

class Function : public Constant {
public:
  /// \p ObjArena owns the Argument objects (the module arena — arguments
  /// must survive dropBody). Construct through Module::createFunction.
  Function(FunctionType *FTy, std::string Name, Type *PtrTy, Arena &ObjArena)
      : Constant(ValueKind::Function, PtrTy), FTy(FTy) {
    setName(std::move(Name));
    for (unsigned I = 0, E = FTy->getNumParams(); I != E; ++I) {
      auto *A = ObjArena.create<Argument>(FTy->getParamType(I), I);
      A->setName("arg" + std::to_string(I));
      Args.push_back(A);
    }
  }
  ~Function() override { dropBody(); }

  FunctionType *getFunctionType() const { return FTy; }
  Type *getReturnType() const { return FTy->getReturnType(); }

  Module *getParent() const { return Parent; }
  void setParent(Module *M) { Parent = M; }

  unsigned getNumArgs() const { return Args.size(); }
  Argument *getArg(unsigned I) const {
    assert(I < Args.size() && "argument index out of range");
    return Args[I];
  }

  MemoryEffect getMemoryEffect() const { return Effect; }
  void setMemoryEffect(MemoryEffect E) { Effect = E; }
  bool isReadOnly() const { return Effect == MemoryEffect::ReadOnly; }
  bool isReadNone() const { return Effect == MemoryEffect::ReadNone; }
  bool mayWriteMemory() const { return Effect == MemoryEffect::ReadWrite; }

  bool isDeclaration() const { return Blocks.empty(); }

  using BlockListType = std::vector<BasicBlock *>;

  /// The arena holding this function's blocks and instructions. Pointers
  /// into it die at dropBody(); nothing outside the function may keep them
  /// across a body replacement.
  Arena &bodyArena() { return BodyArena; }

  BasicBlock *getEntryBlock() const {
    assert(!Blocks.empty() && "declaration has no entry block");
    return Blocks.front();
  }

  /// Appends a new block with the given name and returns it.
  BasicBlock *createBlock(std::string Name) {
    auto *BB = BodyArena.create<BasicBlock>(std::move(Name));
    BB->setParent(this);
    Blocks.push_back(BB);
    return BB;
  }

  /// Unlinks \p BB and releases its instructions' operand uses. The block's
  /// storage stays in the body arena until dropBody. Instructions must
  /// already be use-free or only referenced from within the erased block
  /// set (the caller is responsible; use dropBlockReferences first when
  /// erasing cycles).
  void eraseBlock(BasicBlock *BB) {
    auto It = std::find(Blocks.begin(), Blocks.end(), BB);
    assert(It != Blocks.end() && "block not in function");
    for (Instruction *I : *BB)
      I->dropAllReferences();
    Blocks.erase(It);
  }

  const BlockListType &blocks() const { return Blocks; }

  /// Reorders the block list to match \p Order (a permutation of the
  /// current blocks). The entry block is whichever comes first. Used by the
  /// parser to restore textual block order.
  void reorderBlocks(const std::vector<BasicBlock *> &Order) {
    assert(Order.size() == Blocks.size() && "not a permutation");
#ifndef NDEBUG
    for (BasicBlock *Want : Order)
      assert(std::find(Blocks.begin(), Blocks.end(), Want) != Blocks.end() &&
             "block missing from order");
#endif
    Blocks = Order;
  }

  size_t getNumBlocks() const { return Blocks.size(); }

  /// Total instruction count across all blocks.
  size_t getInstructionCount() const {
    size_t N = 0;
    for (const BasicBlock *BB : Blocks)
      N += BB->size();
    return N;
  }

  /// Releases the whole body in one arena reset: operand cycles are broken
  /// first, then every block and instruction is destroyed together and the
  /// slab is recycled for the next body (revert/re-clone hits warm memory).
  void dropBody() {
    for (BasicBlock *BB : Blocks)
      for (Instruction *I : *BB)
        I->dropAllReferences();
    Blocks.clear();
    BodyArena.reset();
  }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::Function;
  }

private:
  FunctionType *FTy;
  Module *Parent = nullptr;
  std::vector<Argument *> Args;
  Arena BodyArena{4096};
  BlockListType Blocks;
  MemoryEffect Effect = MemoryEffect::ReadWrite;
};

} // namespace llvmmd

#endif // LLVMMD_IR_FUNCTION_H
