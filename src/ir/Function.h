//===- Function.h - Functions and declarations ------------------*- C++ -*-===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Function owns its arguments and basic blocks. Declarations (no body)
/// model external functions; their attributes (readonly/readnone) are what
/// the optimizer's "libc knowledge" consists of.
///
//===----------------------------------------------------------------------===//

#ifndef LLVMMD_IR_FUNCTION_H
#define LLVMMD_IR_FUNCTION_H

#include "ir/BasicBlock.h"
#include "ir/Constant.h"
#include "ir/Type.h"

#include <memory>
#include <string>
#include <vector>

namespace llvmmd {

class Module;

/// Side-effect attributes for declarations, mirroring LLVM's memory
/// attributes. They drive both the optimizer (which may hoist/CSE calls)
/// and — only when the Libc rule set is enabled — the validator.
enum class MemoryEffect : uint8_t {
  /// May read and write any memory (the conservative default).
  ReadWrite,
  /// Reads memory but never writes it (e.g. strlen).
  ReadOnly,
  /// Neither reads nor writes memory (e.g. abs).
  ReadNone,
};

class Function : public Constant {
public:
  Function(FunctionType *FTy, std::string Name, Type *PtrTy)
      : Constant(ValueKind::Function, PtrTy), FTy(FTy) {
    setName(std::move(Name));
    for (unsigned I = 0, E = FTy->getNumParams(); I != E; ++I) {
      auto *A = new Argument(FTy->getParamType(I), I);
      A->setName("arg" + std::to_string(I));
      Args.emplace_back(A);
    }
  }
  ~Function() override { dropBody(); }

  FunctionType *getFunctionType() const { return FTy; }
  Type *getReturnType() const { return FTy->getReturnType(); }

  Module *getParent() const { return Parent; }
  void setParent(Module *M) { Parent = M; }

  unsigned getNumArgs() const { return Args.size(); }
  Argument *getArg(unsigned I) const {
    assert(I < Args.size() && "argument index out of range");
    return Args[I].get();
  }

  MemoryEffect getMemoryEffect() const { return Effect; }
  void setMemoryEffect(MemoryEffect E) { Effect = E; }
  bool isReadOnly() const { return Effect == MemoryEffect::ReadOnly; }
  bool isReadNone() const { return Effect == MemoryEffect::ReadNone; }
  bool mayWriteMemory() const { return Effect == MemoryEffect::ReadWrite; }

  bool isDeclaration() const { return Blocks.empty(); }

  using BlockListType = std::vector<std::unique_ptr<BasicBlock>>;

  BasicBlock *getEntryBlock() const {
    assert(!Blocks.empty() && "declaration has no entry block");
    return Blocks.front().get();
  }

  /// Appends a new block with the given name and returns it.
  BasicBlock *createBlock(std::string Name) {
    auto *BB = new BasicBlock(std::move(Name));
    BB->setParent(this);
    Blocks.emplace_back(BB);
    return BB;
  }

  /// Unlinks and deletes \p BB. Instructions must already be use-free or
  /// only referenced from within the erased block set (the caller is
  /// responsible; use dropBlockReferences first when erasing cycles).
  void eraseBlock(BasicBlock *BB) {
    for (auto It = Blocks.begin(); It != Blocks.end(); ++It) {
      if (It->get() != BB)
        continue;
      Blocks.erase(It);
      return;
    }
    assert(false && "block not in function");
  }

  const BlockListType &blocks() const { return Blocks; }

  /// Reorders the block list to match \p Order (a permutation of the
  /// current blocks). The entry block is whichever comes first. Used by the
  /// parser to restore textual block order.
  void reorderBlocks(const std::vector<BasicBlock *> &Order) {
    assert(Order.size() == Blocks.size() && "not a permutation");
    BlockListType NewList;
    for (BasicBlock *Want : Order) {
      for (auto &Slot : Blocks) {
        if (Slot.get() == Want) {
          NewList.push_back(std::move(Slot));
          break;
        }
      }
    }
    assert(NewList.size() == Blocks.size() && "block missing from order");
    Blocks = std::move(NewList);
  }

  size_t getNumBlocks() const { return Blocks.size(); }

  /// Total instruction count across all blocks.
  size_t getInstructionCount() const {
    size_t N = 0;
    for (const auto &BB : Blocks)
      N += BB->size();
    return N;
  }

  /// Deletes all blocks (used on destruction; breaks operand cycles first).
  void dropBody() {
    for (auto &BB : Blocks)
      for (Instruction *I : *BB)
        I->dropAllReferences();
    Blocks.clear();
  }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::Function;
  }

private:
  FunctionType *FTy;
  Module *Parent = nullptr;
  std::vector<std::unique_ptr<Argument>> Args;
  BlockListType Blocks;
  MemoryEffect Effect = MemoryEffect::ReadWrite;
};

} // namespace llvmmd

#endif // LLVMMD_IR_FUNCTION_H
