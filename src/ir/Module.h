//===- Module.h - Top-level IR container ------------------------*- C++ -*-===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Module owns global variables and functions, and references a Context
/// that interns types and constants. The Context must outlive the Module.
///
/// Ownership: functions, their arguments, and globals are bump-allocated
/// from the module arena — destroying the module is a handful of slab
/// frees, not one delete per object. Module structure (creating functions
/// and globals) is mutated sequentially; only function *bodies* are built
/// concurrently, and those live in each function's own body arena.
///
//===----------------------------------------------------------------------===//

#ifndef LLVMMD_IR_MODULE_H
#define LLVMMD_IR_MODULE_H

#include "ir/Context.h"
#include "ir/Function.h"
#include "support/Arena.h"

#include <string>
#include <vector>

namespace llvmmd {

class Module {
public:
  explicit Module(Context &Ctx, std::string Name = "module")
      : Ctx(Ctx), Name(std::move(Name)) {}
  Module(const Module &) = delete;
  Module &operator=(const Module &) = delete;

  ~Module() {
    // Drop function bodies before the arena destroys globals and
    // arguments: instructions hold operands referencing them, and
    // releasing those references must not touch destroyed values.
    for (Function *F : Functions)
      F->dropBody();
  }

  Context &getContext() const { return Ctx; }
  const std::string &getName() const { return Name; }

  /// The arena owning this module's functions, arguments and globals.
  Arena &arena() { return MArena; }

  /// Creates a function (definition or declaration) owned by this module.
  Function *createFunction(FunctionType *FTy, std::string FnName) {
    auto *F =
        MArena.create<Function>(FTy, std::move(FnName), Ctx.getPtrTy(), MArena);
    F->setParent(this);
    Functions.push_back(F);
    return F;
  }

  Function *getFunction(const std::string &FnName) const {
    for (Function *F : Functions)
      if (F->getName() == FnName)
        return F;
    return nullptr;
  }

  GlobalVariable *createGlobal(Type *ValueTy, std::string GName,
                               Constant *Init, bool IsConstant) {
    auto *G = MArena.create<GlobalVariable>(Ctx.getPtrTy(), ValueTy,
                                            std::move(GName), Init, IsConstant);
    Globals.push_back(G);
    return G;
  }

  GlobalVariable *getGlobal(const std::string &GName) const {
    for (GlobalVariable *G : Globals)
      if (G->getName() == GName)
        return G;
    return nullptr;
  }

  const std::vector<Function *> &functions() const { return Functions; }
  const std::vector<GlobalVariable *> &globals() const { return Globals; }

  /// Functions with bodies (the ones the validator processes).
  std::vector<Function *> definedFunctions() const {
    std::vector<Function *> Out;
    for (Function *F : Functions)
      if (!F->isDeclaration())
        Out.push_back(F);
    return Out;
  }

private:
  Context &Ctx;
  std::string Name;
  // Declared before the pointer lists so the arena (and the objects in it)
  // outlives them during teardown.
  Arena MArena;
  std::vector<Function *> Functions;
  std::vector<GlobalVariable *> Globals;
};

} // namespace llvmmd

#endif // LLVMMD_IR_MODULE_H
