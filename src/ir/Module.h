//===- Module.h - Top-level IR container ------------------------*- C++ -*-===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Module owns global variables and functions, and references a Context
/// that interns types and constants. The Context must outlive the Module.
///
//===----------------------------------------------------------------------===//

#ifndef LLVMMD_IR_MODULE_H
#define LLVMMD_IR_MODULE_H

#include "ir/Context.h"
#include "ir/Function.h"

#include <memory>
#include <string>
#include <vector>

namespace llvmmd {

class Module {
public:
  explicit Module(Context &Ctx, std::string Name = "module")
      : Ctx(Ctx), Name(std::move(Name)) {}
  Module(const Module &) = delete;
  Module &operator=(const Module &) = delete;

  ~Module() {
    // Drop function bodies before globals are destroyed: instructions hold
    // operands referencing GlobalVariables, and releasing those references
    // must not touch already-deleted globals.
    for (auto &F : Functions)
      F->dropBody();
  }

  Context &getContext() const { return Ctx; }
  const std::string &getName() const { return Name; }

  /// Creates a function (definition or declaration) owned by this module.
  Function *createFunction(FunctionType *FTy, std::string FnName) {
    auto *F = new Function(FTy, std::move(FnName), Ctx.getPtrTy());
    F->setParent(this);
    Functions.emplace_back(F);
    return F;
  }

  Function *getFunction(const std::string &FnName) const {
    for (const auto &F : Functions)
      if (F->getName() == FnName)
        return F.get();
    return nullptr;
  }

  GlobalVariable *createGlobal(Type *ValueTy, std::string GName,
                               Constant *Init, bool IsConstant) {
    auto *G = new GlobalVariable(Ctx.getPtrTy(), ValueTy, std::move(GName),
                                 Init, IsConstant);
    Globals.emplace_back(G);
    return G;
  }

  GlobalVariable *getGlobal(const std::string &GName) const {
    for (const auto &G : Globals)
      if (G->getName() == GName)
        return G.get();
    return nullptr;
  }

  const std::vector<std::unique_ptr<Function>> &functions() const {
    return Functions;
  }
  const std::vector<std::unique_ptr<GlobalVariable>> &globals() const {
    return Globals;
  }

  /// Functions with bodies (the ones the validator processes).
  std::vector<Function *> definedFunctions() const {
    std::vector<Function *> Out;
    for (const auto &F : Functions)
      if (!F->isDeclaration())
        Out.push_back(F.get());
    return Out;
  }

private:
  Context &Ctx;
  std::string Name;
  std::vector<std::unique_ptr<Function>> Functions;
  std::vector<std::unique_ptr<GlobalVariable>> Globals;
};

} // namespace llvmmd

#endif // LLVMMD_IR_MODULE_H
