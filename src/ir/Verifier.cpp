//===- Verifier.cpp - IR well-formedness checks ----------------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"

#include "analysis/Dominators.h"
#include "ir/Module.h"
#include "ir/Printer.h"

#include <algorithm>
#include <map>
#include <set>

using namespace llvmmd;

namespace {

class FunctionVerifier {
public:
  FunctionVerifier(const Function &F, std::vector<std::string> &Errors)
      : F(F), Errors(Errors) {}

  bool run() {
    size_t Before = Errors.size();
    checkStructure();
    if (Errors.size() == Before) {
      // Dominance checks only make sense on structurally sound IR.
      checkSSA();
    }
    return Errors.size() == Before;
  }

private:
  void report(const std::string &Msg) {
    Errors.push_back("function '" + F.getName() + "': " + Msg);
  }

  void checkStructure() {
    if (F.isDeclaration())
      return;
    std::set<const BasicBlock *> InFunction;
    for (const auto &BB : F.blocks())
      InFunction.insert(BB);

    for (const auto &BB : F.blocks()) {
      if (BB->empty()) {
        report("block '" + BB->getName() + "' is empty");
        continue;
      }
      const Instruction *Term = BB->getTerminator();
      if (!Term) {
        report("block '" + BB->getName() + "' has no terminator");
        continue;
      }
      bool SeenNonPhi = false;
      for (const Instruction *I : *BB) {
        if (I->isTerminator() && I != Term)
          report("terminator in the middle of block '" + BB->getName() + "'");
        if (I->isPhi()) {
          if (SeenNonPhi)
            report("phi after non-phi in block '" + BB->getName() + "'");
        } else {
          SeenNonPhi = true;
        }
        if (I->getParent() != BB)
          report("instruction with wrong parent in '" + BB->getName() + "'");
        for (const Value *Op : I->operands())
          if (!Op)
            report("null operand in '" + BB->getName() + "'");
      }
      for (const BasicBlock *Succ : BB->successors())
        if (!InFunction.count(Succ))
          report("branch to block outside function from '" + BB->getName() +
                 "'");
      if (const auto *Ret = dyn_cast<ReturnInst>(Term)) {
        Type *RetTy = F.getReturnType();
        if (RetTy->isVoid() != !Ret->hasReturnValue())
          report("return value does not match function return type");
        else if (Ret->hasReturnValue() &&
                 Ret->getReturnValue()->getType() != RetTy)
          report("return value type mismatch");
      }
    }

    // Phi incoming sets must match predecessors exactly.
    for (const auto &BB : F.blocks()) {
      std::vector<BasicBlock *> Preds = BB->predecessors();
      for (const PhiNode *P : BB->phis()) {
        if (P->getNumIncoming() != Preds.size()) {
          report("phi in '" + BB->getName() +
                 "' has wrong number of incoming values");
          continue;
        }
        for (BasicBlock *Pred : Preds)
          if (P->getBlockIndex(Pred) < 0)
            report("phi in '" + BB->getName() + "' missing entry for '" +
                   Pred->getName() + "'");
      }
    }
  }

  void checkSSA() {
    if (F.isDeclaration())
      return;
    DominatorTree DT(F);
    for (const auto &BB : F.blocks()) {
      if (!DT.isReachable(BB))
        continue;
      for (const Instruction *I : *BB) {
        if (const auto *P = dyn_cast<PhiNode>(I)) {
          for (unsigned K = 0, E = P->getNumIncoming(); K != E; ++K) {
            const auto *Def = dyn_cast<Instruction>(P->getIncomingValue(K));
            if (!Def)
              continue;
            if (!DT.isReachable(P->getIncomingBlock(K)))
              continue;
            if (!DT.dominates(Def->getParent(), P->getIncomingBlock(K)))
              report("phi incoming value does not dominate edge in '" +
                     BB->getName() + "'");
          }
          continue;
        }
        for (const Value *Op : I->operands()) {
          const auto *Def = dyn_cast<Instruction>(Op);
          if (!Def)
            continue;
          if (!DT.isReachable(Def->getParent())) {
            report("use of instruction from unreachable block in '" +
                   BB->getName() + "'");
            continue;
          }
          if (Def->getParent() == BB) {
            // Same block: def must come first.
            bool Found = false;
            for (const Instruction *J : *BB) {
              if (J == Def) {
                Found = true;
                break;
              }
              if (J == I)
                break;
            }
            if (!Found)
              report("use before def of '" + Def->getName() + "' in '" +
                     BB->getName() + "'");
          } else if (!DT.dominates(Def->getParent(), BB)) {
            report("definition of '" + Def->getName() +
                   "' does not dominate use in '" + BB->getName() + "'");
          }
        }
      }
    }
  }

  const Function &F;
  std::vector<std::string> &Errors;
};

} // namespace

bool llvmmd::verifyFunction(const Function &F,
                            std::vector<std::string> &Errors) {
  return FunctionVerifier(F, Errors).run();
}

bool llvmmd::verifyModule(const Module &M, std::vector<std::string> &Errors) {
  bool OK = true;
  for (const auto &F : M.functions())
    if (!F->isDeclaration())
      OK &= verifyFunction(*F, Errors);
  return OK;
}
