//===- IR.cpp - Out-of-line IR method implementations ---------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//

#include "ir/BasicBlock.h"
#include "ir/Function.h"
#include "ir/Instruction.h"
#include "ir/Module.h"

using namespace llvmmd;

const char *llvmmd::getOpcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::SDiv:
    return "sdiv";
  case Opcode::UDiv:
    return "udiv";
  case Opcode::SRem:
    return "srem";
  case Opcode::URem:
    return "urem";
  case Opcode::Shl:
    return "shl";
  case Opcode::LShr:
    return "lshr";
  case Opcode::AShr:
    return "ashr";
  case Opcode::And:
    return "and";
  case Opcode::Or:
    return "or";
  case Opcode::Xor:
    return "xor";
  case Opcode::FAdd:
    return "fadd";
  case Opcode::FSub:
    return "fsub";
  case Opcode::FMul:
    return "fmul";
  case Opcode::FDiv:
    return "fdiv";
  case Opcode::ICmp:
    return "icmp";
  case Opcode::FCmp:
    return "fcmp";
  case Opcode::Trunc:
    return "trunc";
  case Opcode::ZExt:
    return "zext";
  case Opcode::SExt:
    return "sext";
  case Opcode::Select:
    return "select";
  case Opcode::Alloca:
    return "alloca";
  case Opcode::Load:
    return "load";
  case Opcode::GEP:
    return "getelementptr";
  case Opcode::Call:
    return "call";
  case Opcode::Phi:
    return "phi";
  case Opcode::Store:
    return "store";
  case Opcode::Br:
    return "br";
  case Opcode::Ret:
    return "ret";
  case Opcode::Unreachable:
    return "unreachable";
  }
  return "<bad-opcode>";
}

const char *llvmmd::getPredName(ICmpPred P) {
  switch (P) {
  case ICmpPred::EQ:
    return "eq";
  case ICmpPred::NE:
    return "ne";
  case ICmpPred::SLT:
    return "slt";
  case ICmpPred::SLE:
    return "sle";
  case ICmpPred::SGT:
    return "sgt";
  case ICmpPred::SGE:
    return "sge";
  case ICmpPred::ULT:
    return "ult";
  case ICmpPred::ULE:
    return "ule";
  case ICmpPred::UGT:
    return "ugt";
  case ICmpPred::UGE:
    return "uge";
  }
  return "<bad-pred>";
}

const char *llvmmd::getPredName(FCmpPred P) {
  switch (P) {
  case FCmpPred::OEQ:
    return "oeq";
  case FCmpPred::ONE:
    return "one";
  case FCmpPred::OLT:
    return "olt";
  case FCmpPred::OLE:
    return "ole";
  case FCmpPred::OGT:
    return "ogt";
  case FCmpPred::OGE:
    return "oge";
  }
  return "<bad-pred>";
}

ICmpPred llvmmd::swapPred(ICmpPred P) {
  switch (P) {
  case ICmpPred::EQ:
    return ICmpPred::EQ;
  case ICmpPred::NE:
    return ICmpPred::NE;
  case ICmpPred::SLT:
    return ICmpPred::SGT;
  case ICmpPred::SLE:
    return ICmpPred::SGE;
  case ICmpPred::SGT:
    return ICmpPred::SLT;
  case ICmpPred::SGE:
    return ICmpPred::SLE;
  case ICmpPred::ULT:
    return ICmpPred::UGT;
  case ICmpPred::ULE:
    return ICmpPred::UGE;
  case ICmpPred::UGT:
    return ICmpPred::ULT;
  case ICmpPred::UGE:
    return ICmpPred::ULE;
  }
  return P;
}

ICmpPred llvmmd::invertPred(ICmpPred P) {
  switch (P) {
  case ICmpPred::EQ:
    return ICmpPred::NE;
  case ICmpPred::NE:
    return ICmpPred::EQ;
  case ICmpPred::SLT:
    return ICmpPred::SGE;
  case ICmpPred::SLE:
    return ICmpPred::SGT;
  case ICmpPred::SGT:
    return ICmpPred::SLE;
  case ICmpPred::SGE:
    return ICmpPred::SLT;
  case ICmpPred::ULT:
    return ICmpPred::UGE;
  case ICmpPred::ULE:
    return ICmpPred::UGT;
  case ICmpPred::UGT:
    return ICmpPred::ULE;
  case ICmpPred::UGE:
    return ICmpPred::ULT;
  }
  return P;
}

Function *Instruction::getFunction() const {
  return Parent ? Parent->getParent() : nullptr;
}

bool Instruction::mayWriteMemory() const {
  if (getOpcode() == Opcode::Store)
    return true;
  if (const auto *Call = dyn_cast<CallInst>(this))
    return Call->getCallee()->mayWriteMemory();
  return false;
}

bool Instruction::mayReadMemory() const {
  if (getOpcode() == Opcode::Load)
    return true;
  if (const auto *Call = dyn_cast<CallInst>(this))
    return !Call->getCallee()->isReadNone();
  return false;
}

bool Instruction::hasSideEffects() const {
  if (getOpcode() == Opcode::Store)
    return true;
  // Division can trap; the paper does not model runtime errors, and neither
  // does our validator, but the optimizer must still not sink/remove
  // arbitrary calls. Calls to functions that may write memory are effects.
  if (const auto *Call = dyn_cast<CallInst>(this))
    return Call->getCallee()->mayWriteMemory();
  return false;
}

CallInst::CallInst(Function *Callee, std::vector<Value *> Args, Type *RetTy)
    : Instruction(Opcode::Call, RetTy), Callee(Callee) {
  assert(Callee && "call requires a callee");
  assert(Args.size() == Callee->getFunctionType()->getNumParams() &&
         "call argument count mismatch");
  for (Value *A : Args)
    addOperand(A);
}

std::vector<BasicBlock *> BasicBlock::predecessors() const {
  std::vector<BasicBlock *> Out;
  if (!Parent)
    return Out;
  for (BasicBlock *BB : Parent->blocks()) {
    for (BasicBlock *Succ : BB->successors()) {
      if (Succ == this) {
        Out.push_back(BB);
        break;
      }
    }
  }
  return Out;
}
