//===- IRBuilder.h - Convenience instruction factory ------------*- C++ -*-===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// IRBuilder appends instructions to a basic block, naming them and keeping
/// construction code short. Used by tests, examples and the workload
/// generator.
///
//===----------------------------------------------------------------------===//

#ifndef LLVMMD_IR_IRBUILDER_H
#define LLVMMD_IR_IRBUILDER_H

#include "ir/BasicBlock.h"
#include "ir/Context.h"
#include "ir/Function.h"
#include "ir/Module.h"

#include <string>
#include <vector>

namespace llvmmd {

class IRBuilder {
public:
  explicit IRBuilder(Context &Ctx) : Ctx(Ctx) {}

  void setInsertPoint(BasicBlock *Block) { BB = Block; }
  BasicBlock *getInsertBlock() const { return BB; }
  Context &getContext() const { return Ctx; }

  //===------------------------------------------------------------------===//
  // Arithmetic
  //===------------------------------------------------------------------===//

  Value *createBinary(Opcode Op, Value *L, Value *R,
                      const std::string &Name = "") {
    return insert(arena().create<BinaryOperator>(Op, L, R), Name);
  }

  Value *createAdd(Value *L, Value *R, const std::string &Name = "") {
    return createBinary(Opcode::Add, L, R, Name);
  }
  Value *createSub(Value *L, Value *R, const std::string &Name = "") {
    return createBinary(Opcode::Sub, L, R, Name);
  }
  Value *createMul(Value *L, Value *R, const std::string &Name = "") {
    return createBinary(Opcode::Mul, L, R, Name);
  }
  Value *createShl(Value *L, Value *R, const std::string &Name = "") {
    return createBinary(Opcode::Shl, L, R, Name);
  }
  Value *createAnd(Value *L, Value *R, const std::string &Name = "") {
    return createBinary(Opcode::And, L, R, Name);
  }
  Value *createOr(Value *L, Value *R, const std::string &Name = "") {
    return createBinary(Opcode::Or, L, R, Name);
  }
  Value *createXor(Value *L, Value *R, const std::string &Name = "") {
    return createBinary(Opcode::Xor, L, R, Name);
  }

  Value *createICmp(ICmpPred P, Value *L, Value *R,
                    const std::string &Name = "") {
    return insert(arena().create<ICmpInst>(P, L, R, Ctx.getInt1Ty()), Name);
  }
  Value *createFCmp(FCmpPred P, Value *L, Value *R,
                    const std::string &Name = "") {
    return insert(arena().create<FCmpInst>(P, L, R, Ctx.getInt1Ty()), Name);
  }

  Value *createCast(Opcode Op, Value *Src, Type *DestTy,
                    const std::string &Name = "") {
    return insert(arena().create<CastInst>(Op, Src, DestTy), Name);
  }

  Value *createSelect(Value *C, Value *T, Value *F,
                      const std::string &Name = "") {
    return insert(arena().create<SelectInst>(C, T, F), Name);
  }

  //===------------------------------------------------------------------===//
  // Memory
  //===------------------------------------------------------------------===//

  Value *createAlloca(Type *Ty, Value *Count = nullptr,
                      const std::string &Name = "") {
    if (!Count)
      Count = Ctx.getInt64(1);
    return insert(arena().create<AllocaInst>(Ty, Count, Ctx.getPtrTy()), Name);
  }

  Value *createLoad(Type *Ty, Value *Ptr, const std::string &Name = "") {
    return insert(arena().create<LoadInst>(Ty, Ptr), Name);
  }

  Instruction *createStore(Value *V, Value *Ptr) {
    auto *S = arena().create<StoreInst>(V, Ptr, Ctx.getVoidTy());
    BB->append(S);
    return S;
  }

  Value *createGEP(Type *ElemTy, Value *Base, Value *Index,
                   const std::string &Name = "") {
    return insert(arena().create<GEPInst>(ElemTy, Base, Index, Ctx.getPtrTy()), Name);
  }

  Value *createCall(Function *Callee, std::vector<Value *> Args,
                    const std::string &Name = "") {
    auto *C = arena().create<CallInst>(Callee, std::move(Args), Callee->getReturnType());
    if (C->getType()->isVoid()) {
      BB->append(C);
      return C;
    }
    return insert(C, Name);
  }

  //===------------------------------------------------------------------===//
  // Control flow
  //===------------------------------------------------------------------===//

  PhiNode *createPhi(Type *Ty, const std::string &Name = "") {
    auto *P = arena().create<PhiNode>(Ty);
    if (!Name.empty())
      P->setName(Name);
    BB->insert(BB->getFirstNonPhi(), P);
    return P;
  }

  Instruction *createBr(BasicBlock *Target) {
    auto *B = arena().create<BranchInst>(Target, Ctx.getVoidTy());
    BB->append(B);
    return B;
  }

  Instruction *createCondBr(Value *Cond, BasicBlock *T, BasicBlock *F) {
    auto *B = arena().create<BranchInst>(Cond, T, F, Ctx.getVoidTy());
    BB->append(B);
    return B;
  }

  Instruction *createRet(Value *V = nullptr) {
    auto *R = arena().create<ReturnInst>(V, Ctx.getVoidTy());
    BB->append(R);
    return R;
  }

  Instruction *createUnreachable() {
    auto *U = arena().create<UnreachableInst>(Ctx.getVoidTy());
    BB->append(U);
    return U;
  }

private:
  /// Every instruction is allocated from the insertion block's function
  /// body arena, so builder-created IR dies with the body it belongs to.
  Arena &arena() const {
    assert(BB && "no insertion point set");
    assert(BB->getParent() && "insertion block not attached to a function");
    return BB->getParent()->bodyArena();
  }

  Value *insert(Instruction *I, const std::string &Name) {
    if (!Name.empty())
      I->setName(Name);
    assert(BB && "no insertion point set");
    BB->append(I);
    return I;
  }

  Context &Ctx;
  BasicBlock *BB = nullptr;
};

} // namespace llvmmd

#endif // LLVMMD_IR_IRBUILDER_H
