//===- Type.h - Mini-LLVM type system ---------------------------*- C++ -*-===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The type system of the miniir substrate: void, iN integers, float (stored
/// as double), opaque pointers, and function types. Types are interned in a
/// Context, so pointer equality is type equality.
///
//===----------------------------------------------------------------------===//

#ifndef LLVMMD_IR_TYPE_H
#define LLVMMD_IR_TYPE_H

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace llvmmd {

class Context;

enum class TypeKind : uint8_t {
  Void,
  Integer,
  Float,
  Pointer,
  Function,
};

/// An interned type. Construct only through Context factory methods.
class Type {
public:
  TypeKind getKind() const { return Kind; }

  bool isVoid() const { return Kind == TypeKind::Void; }
  bool isInteger() const { return Kind == TypeKind::Integer; }
  bool isFloat() const { return Kind == TypeKind::Float; }
  bool isPointer() const { return Kind == TypeKind::Pointer; }
  bool isFunction() const { return Kind == TypeKind::Function; }

  /// For integer types, the bit width (1, 8, 16, 32 or 64).
  unsigned getBitWidth() const {
    assert(isInteger() && "getBitWidth on non-integer type");
    return Bits;
  }

  bool isBool() const { return isInteger() && Bits == 1; }

  /// Size in bytes when stored in memory; used by getelementptr scaling and
  /// by the interpreter. i1 occupies one byte.
  unsigned getStoreSize() const {
    switch (Kind) {
    case TypeKind::Void:
      return 0;
    case TypeKind::Integer:
      return Bits <= 8 ? 1 : Bits / 8;
    case TypeKind::Float:
      return 8;
    case TypeKind::Pointer:
      return 8;
    case TypeKind::Function:
      return 8;
    }
    return 0;
  }

  /// Renders the type the way the printer and parser spell it.
  std::string getName() const {
    switch (Kind) {
    case TypeKind::Void:
      return "void";
    case TypeKind::Integer:
      return "i" + std::to_string(Bits);
    case TypeKind::Float:
      return "float";
    case TypeKind::Pointer:
      return "ptr";
    case TypeKind::Function:
      return "func";
    }
    return "?";
  }

private:
  friend class Context;
  Type(TypeKind Kind, unsigned Bits) : Kind(Kind), Bits(Bits) {}

  TypeKind Kind;
  unsigned Bits;
};

/// A function signature: return type plus parameter types. Interned in the
/// Context like plain types.
class FunctionType {
public:
  Type *getReturnType() const { return RetTy; }
  const std::vector<Type *> &getParamTypes() const { return ParamTys; }
  unsigned getNumParams() const { return ParamTys.size(); }
  Type *getParamType(unsigned I) const {
    assert(I < ParamTys.size() && "param index out of range");
    return ParamTys[I];
  }

private:
  friend class Context;
  friend class Arena;
  FunctionType(Type *RetTy, std::vector<Type *> ParamTys)
      : RetTy(RetTy), ParamTys(std::move(ParamTys)) {}

  Type *RetTy;
  std::vector<Type *> ParamTys;
};

} // namespace llvmmd

#endif // LLVMMD_IR_TYPE_H
