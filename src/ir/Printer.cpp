//===- Printer.cpp - Textual IR output ------------------------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//

#include "ir/Printer.h"

#include "ir/Module.h"

#include <cstdio>
#include <map>
#include <set>
#include <sstream>

using namespace llvmmd;

namespace {

/// Assigns stable, unique textual names to locals within one function.
class NameTable {
public:
  void build(const Function &F) {
    for (unsigned I = 0, E = F.getNumArgs(); I != E; ++I)
      assign(F.getArg(I));
    for (const auto &BB : F.blocks()) {
      assignBlock(BB);
      for (const Instruction *I : *BB)
        if (!I->getType()->isVoid())
          assign(I);
    }
  }

  std::string valueName(const Value *V) const {
    auto It = Names.find(V);
    assert(It != Names.end() && "value was not named");
    return It->second;
  }

  std::string blockName(const BasicBlock *BB) const {
    auto It = BlockNames.find(BB);
    assert(It != BlockNames.end() && "block was not named");
    return It->second;
  }

private:
  void assign(const Value *V) {
    std::string Base = V->hasName() ? V->getName() : std::to_string(Next++);
    std::string Name = Base;
    unsigned Suffix = 1;
    while (!UsedNames.insert(Name).second)
      Name = Base + "." + std::to_string(Suffix++);
    Names[V] = Name;
  }

  void assignBlock(const BasicBlock *BB) {
    std::string Base =
        BB->getName().empty() ? "bb" + std::to_string(Next++) : BB->getName();
    std::string Name = Base;
    unsigned Suffix = 1;
    while (!UsedBlockNames.insert(Name).second)
      Name = Base + "." + std::to_string(Suffix++);
    BlockNames[BB] = Name;
  }

  std::map<const Value *, std::string> Names;
  std::map<const BasicBlock *, std::string> BlockNames;
  std::set<std::string> UsedNames;
  std::set<std::string> UsedBlockNames;
  unsigned Next = 0;
};

std::string formatFloat(double D) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.17g", D);
  std::string S(Buf);
  // Ensure the token is recognizably a float.
  if (S.find_first_of(".eE") == std::string::npos &&
      S.find_first_of("in") == std::string::npos) // not inf/nan
    S += ".0";
  return S;
}

class FunctionPrinter {
public:
  explicit FunctionPrinter(const Function &F) : F(F) { Names.build(F); }

  std::string ref(const Value *V) const {
    if (const auto *CI = dyn_cast<ConstantInt>(V))
      return std::to_string(CI->getSExtValue());
    if (const auto *CF = dyn_cast<ConstantFP>(V))
      return formatFloat(CF->getValue());
    if (isa<ConstantPointerNull>(V))
      return "null";
    if (isa<UndefValue>(V))
      return "undef";
    if (isa<GlobalVariable>(V) || isa<Function>(V))
      return "@" + V->getName();
    return "%" + Names.valueName(V);
  }

  std::string typedRef(const Value *V) const {
    return V->getType()->getName() + " " + ref(V);
  }

  std::string blockRef(const BasicBlock *BB) const {
    return "%" + Names.blockName(BB);
  }

  void printInst(std::ostringstream &OS, const Instruction *I) const {
    if (!I->getType()->isVoid())
      OS << ref(I) << " = ";
    switch (I->getOpcode()) {
    case Opcode::ICmp: {
      const auto *C = cast<ICmpInst>(I);
      OS << "icmp " << getPredName(C->getPred()) << " "
         << C->getLHS()->getType()->getName() << " " << ref(C->getLHS())
         << ", " << ref(C->getRHS());
      return;
    }
    case Opcode::FCmp: {
      const auto *C = cast<FCmpInst>(I);
      OS << "fcmp " << getPredName(C->getPred()) << " float "
         << ref(C->getLHS()) << ", " << ref(C->getRHS());
      return;
    }
    case Opcode::Trunc:
    case Opcode::ZExt:
    case Opcode::SExt: {
      const auto *C = cast<CastInst>(I);
      OS << I->getOpcodeName() << " " << typedRef(C->getSrc()) << " to "
         << I->getType()->getName();
      return;
    }
    case Opcode::Select: {
      const auto *S = cast<SelectInst>(I);
      OS << "select i1 " << ref(S->getCondition()) << ", "
         << typedRef(S->getTrueValue()) << ", "
         << typedRef(S->getFalseValue());
      return;
    }
    case Opcode::Alloca: {
      const auto *A = cast<AllocaInst>(I);
      OS << "alloca " << A->getAllocatedType()->getName();
      const auto *One = dyn_cast<ConstantInt>(A->getCount());
      if (!One || !One->isOne())
        OS << ", " << typedRef(A->getCount());
      return;
    }
    case Opcode::Load: {
      const auto *L = cast<LoadInst>(I);
      OS << "load " << I->getType()->getName() << ", ptr "
         << ref(L->getPointer());
      return;
    }
    case Opcode::Store: {
      const auto *S = cast<StoreInst>(I);
      OS << "store " << typedRef(S->getStoredValue()) << ", ptr "
         << ref(S->getPointer());
      return;
    }
    case Opcode::GEP: {
      const auto *G = cast<GEPInst>(I);
      OS << "getelementptr " << G->getElementType()->getName() << ", ptr "
         << ref(G->getBase()) << ", " << typedRef(G->getIndex());
      return;
    }
    case Opcode::Call: {
      const auto *C = cast<CallInst>(I);
      OS << "call " << I->getType()->getName() << " @"
         << C->getCallee()->getName() << "(";
      for (unsigned A = 0, E = C->getNumArgs(); A != E; ++A) {
        if (A)
          OS << ", ";
        OS << typedRef(C->getArg(A));
      }
      OS << ")";
      return;
    }
    case Opcode::Phi: {
      const auto *P = cast<PhiNode>(I);
      OS << "phi " << I->getType()->getName() << " ";
      for (unsigned K = 0, E = P->getNumIncoming(); K != E; ++K) {
        if (K)
          OS << ", ";
        OS << "[ " << ref(P->getIncomingValue(K)) << ", "
           << blockRef(P->getIncomingBlock(K)) << " ]";
      }
      return;
    }
    case Opcode::Br: {
      const auto *B = cast<BranchInst>(I);
      if (B->isConditional())
        OS << "br i1 " << ref(B->getCondition()) << ", label "
           << blockRef(B->getSuccessor(0)) << ", label "
           << blockRef(B->getSuccessor(1));
      else
        OS << "br label " << blockRef(B->getSuccessor(0));
      return;
    }
    case Opcode::Ret: {
      const auto *R = cast<ReturnInst>(I);
      if (R->hasReturnValue())
        OS << "ret " << typedRef(R->getReturnValue());
      else
        OS << "ret void";
      return;
    }
    case Opcode::Unreachable:
      OS << "unreachable";
      return;
    default:
      // All binary operators share one format.
      assert(I->isBinaryOp() && "unhandled opcode in printer");
      OS << I->getOpcodeName() << " " << I->getType()->getName() << " "
         << ref(I->getOperand(0)) << ", " << ref(I->getOperand(1));
      return;
    }
  }

  std::string print() const {
    std::ostringstream OS;
    OS << "define " << F.getReturnType()->getName() << " @" << F.getName()
       << "(";
    for (unsigned I = 0, E = F.getNumArgs(); I != E; ++I) {
      if (I)
        OS << ", ";
      OS << F.getArg(I)->getType()->getName() << " " << ref(F.getArg(I));
    }
    OS << ") {\n";
    for (const auto &BB : F.blocks()) {
      OS << Names.blockName(BB) << ":\n";
      for (const Instruction *I : *BB) {
        OS << "  ";
        printInst(OS, I);
        OS << "\n";
      }
    }
    OS << "}\n";
    return OS.str();
  }

private:
  const Function &F;
  NameTable Names;
};

std::string printDeclaration(const Function &F) {
  std::ostringstream OS;
  OS << "declare " << F.getReturnType()->getName() << " @" << F.getName()
     << "(";
  const auto &Params = F.getFunctionType()->getParamTypes();
  for (unsigned I = 0, E = Params.size(); I != E; ++I) {
    if (I)
      OS << ", ";
    OS << Params[I]->getName();
  }
  OS << ")";
  if (F.isReadOnly())
    OS << " readonly";
  else if (F.isReadNone())
    OS << " readnone";
  OS << "\n";
  return OS.str();
}

std::string printGlobal(const GlobalVariable &G) {
  std::ostringstream OS;
  OS << "@" << G.getName() << " = "
     << (G.isConstantGlobal() ? "constant " : "global ")
     << G.getValueType()->getName();
  if (const Constant *Init = G.getInitializer()) {
    OS << " ";
    if (const auto *CI = dyn_cast<ConstantInt>(Init))
      OS << CI->getSExtValue();
    else if (const auto *CF = dyn_cast<ConstantFP>(Init))
      OS << formatFloat(CF->getValue());
    else if (isa<ConstantPointerNull>(Init))
      OS << "null";
    else
      OS << "undef";
  }
  OS << "\n";
  return OS.str();
}

} // namespace

std::string llvmmd::printFunction(const Function &F) {
  if (F.isDeclaration())
    return printDeclaration(F);
  return FunctionPrinter(F).print();
}

std::string llvmmd::printModule(const Module &M) {
  std::ostringstream OS;
  OS << "; ModuleID = '" << M.getName() << "'\n";
  for (const auto &G : M.globals())
    OS << printGlobal(*G);
  for (const auto &F : M.functions())
    if (F->isDeclaration())
      OS << printFunction(*F);
  for (const auto &F : M.functions())
    if (!F->isDeclaration())
      OS << "\n" << printFunction(*F);
  return OS.str();
}

std::string llvmmd::printInstruction(const Instruction &I) {
  const Function *F = I.getFunction();
  assert(F && "instruction not in a function");
  FunctionPrinter P(*F);
  std::ostringstream OS;
  P.printInst(OS, &I);
  return OS.str();
}
