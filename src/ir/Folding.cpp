//===- Folding.cpp - Arithmetic constant folding helpers -------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//

#include "ir/Folding.h"

#include <cmath>

using namespace llvmmd;

std::optional<int64_t> llvmmd::foldIntBinary(Opcode Op, int64_t A, int64_t B,
                                             unsigned Bits) {
  uint64_t UA = zeroExtend(A, Bits), UB = zeroExtend(B, Bits);
  switch (Op) {
  case Opcode::Add:
    return signExtend(
        static_cast<int64_t>(static_cast<uint64_t>(A) + static_cast<uint64_t>(B)),
        Bits);
  case Opcode::Sub:
    return signExtend(
        static_cast<int64_t>(static_cast<uint64_t>(A) - static_cast<uint64_t>(B)),
        Bits);
  case Opcode::Mul:
    return signExtend(
        static_cast<int64_t>(static_cast<uint64_t>(A) * static_cast<uint64_t>(B)),
        Bits);
  case Opcode::SDiv: {
    if (B == 0)
      return std::nullopt;
    int64_t Min = signExtend(int64_t(1) << (Bits - 1), Bits);
    if (A == Min && B == -1)
      return std::nullopt;
    return signExtend(A / B, Bits);
  }
  case Opcode::SRem: {
    if (B == 0)
      return std::nullopt;
    int64_t Min = signExtend(int64_t(1) << (Bits - 1), Bits);
    if (A == Min && B == -1)
      return std::nullopt;
    return signExtend(A % B, Bits);
  }
  case Opcode::UDiv:
    if (UB == 0)
      return std::nullopt;
    return signExtend(static_cast<int64_t>(UA / UB), Bits);
  case Opcode::URem:
    if (UB == 0)
      return std::nullopt;
    return signExtend(static_cast<int64_t>(UA % UB), Bits);
  case Opcode::Shl:
    if (UB >= Bits)
      return std::nullopt;
    return signExtend(static_cast<int64_t>(UA << UB), Bits);
  case Opcode::LShr:
    if (UB >= Bits)
      return std::nullopt;
    return signExtend(static_cast<int64_t>(UA >> UB), Bits);
  case Opcode::AShr:
    if (UB >= Bits)
      return std::nullopt;
    return signExtend(A >> UB, Bits);
  case Opcode::And:
    return signExtend(A & B, Bits);
  case Opcode::Or:
    return signExtend(A | B, Bits);
  case Opcode::Xor:
    return signExtend(A ^ B, Bits);
  default:
    return std::nullopt;
  }
}

double llvmmd::foldFloatBinary(Opcode Op, double A, double B) {
  switch (Op) {
  case Opcode::FAdd:
    return A + B;
  case Opcode::FSub:
    return A - B;
  case Opcode::FMul:
    return A * B;
  case Opcode::FDiv:
    return A / B;
  default:
    assert(false && "not a float binary op");
    return 0;
  }
}

bool llvmmd::foldICmp(ICmpPred P, int64_t A, int64_t B, unsigned Bits) {
  uint64_t UA = zeroExtend(A, Bits), UB = zeroExtend(B, Bits);
  switch (P) {
  case ICmpPred::EQ:
    return A == B;
  case ICmpPred::NE:
    return A != B;
  case ICmpPred::SLT:
    return A < B;
  case ICmpPred::SLE:
    return A <= B;
  case ICmpPred::SGT:
    return A > B;
  case ICmpPred::SGE:
    return A >= B;
  case ICmpPred::ULT:
    return UA < UB;
  case ICmpPred::ULE:
    return UA <= UB;
  case ICmpPred::UGT:
    return UA > UB;
  case ICmpPred::UGE:
    return UA >= UB;
  }
  return false;
}

bool llvmmd::foldFCmp(FCmpPred P, double A, double B) {
  switch (P) {
  case FCmpPred::OEQ:
    return A == B;
  case FCmpPred::ONE:
    return !(std::isnan(A) || std::isnan(B)) && A != B;
  case FCmpPred::OLT:
    return A < B;
  case FCmpPred::OLE:
    return A <= B;
  case FCmpPred::OGT:
    return A > B;
  case FCmpPred::OGE:
    return A >= B;
  }
  return false;
}

int64_t llvmmd::foldCast(Opcode Op, int64_t V, unsigned SrcBits,
                         unsigned DstBits) {
  switch (Op) {
  case Opcode::Trunc:
    return signExtend(V, DstBits);
  case Opcode::ZExt:
    return signExtend(static_cast<int64_t>(zeroExtend(V, SrcBits)), DstBits);
  case Opcode::SExt:
    return signExtend(V, DstBits);
  default:
    assert(false && "not a cast op");
    return 0;
  }
}
