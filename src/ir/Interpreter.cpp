//===- Interpreter.cpp - Reference interpreter for miniir ------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//

#include "ir/Interpreter.h"

#include "ir/Module.h"

#include <cmath>
#include <cstring>

using namespace llvmmd;

namespace {

/// Thrown-by-return execution signal (no C++ exceptions in this codebase).
struct Signal {
  ExecStatus Status = ExecStatus::OK;
  std::string Detail;
  bool isOK() const { return Status == ExecStatus::OK; }
};

int64_t truncToWidth(int64_t V, unsigned Bits) { return signExtend(V, Bits); }

} // namespace

Interpreter::Interpreter(const Module &M, uint64_t StepBudget)
    : M(M), StepBudget(StepBudget) {
  resetMemory();
}

void Interpreter::resetMemory() {
  Memory.clear();
  Globals.clear();
  NextAddr = 0x1000;
  for (const auto &G : M.globals()) {
    unsigned Size = G->getValueType()->getStoreSize();
    uint64_t Addr = allocate(Size);
    Globals[G->getName()] = {Addr, Size};
    if (const Constant *Init = G->getInitializer()) {
      if (const auto *CI = dyn_cast<ConstantInt>(Init)) {
        int64_t V = CI->getSExtValue();
        storeBytes(Addr, &V, Size);
      } else if (const auto *CF = dyn_cast<ConstantFP>(Init)) {
        double D = CF->getValue();
        storeBytes(Addr, &D, Size);
      }
      // null/undef initializers leave the zeroed bytes.
    }
  }
  // Replay interned strings at stable addresses.
  for (auto &[S, Bytes] : StringPool) {
    uint64_t Addr = allocate(Bytes.size());
    storeBytes(Addr, Bytes.data(), Bytes.size());
    StringAddrs[S] = Addr;
  }
}

uint64_t Interpreter::allocate(uint64_t Size) {
  uint64_t Addr = NextAddr;
  for (uint64_t I = 0; I < Size; ++I)
    Memory[Addr + I] = 0;
  NextAddr += Size + 16; // red zone between allocations
  return Addr;
}

void Interpreter::storeBytes(uint64_t Addr, const void *Src, unsigned Size) {
  const auto *P = static_cast<const uint8_t *>(Src);
  for (unsigned I = 0; I < Size; ++I)
    Memory[Addr + I] = P[I];
}

void Interpreter::loadBytes(uint64_t Addr, void *Dst, unsigned Size) const {
  auto *P = static_cast<uint8_t *>(Dst);
  for (unsigned I = 0; I < Size; ++I) {
    auto It = Memory.find(Addr + I);
    P[I] = It == Memory.end() ? 0 : It->second;
  }
}

uint64_t Interpreter::materializeString(const std::string &S) {
  std::vector<uint8_t> Bytes(S.begin(), S.end());
  Bytes.push_back(0);
  StringPool[S] = Bytes;
  // Rebuild the initial image so the string gets its stable replay address.
  resetMemory();
  return StringAddrs.at(S);
}

std::map<std::string, std::vector<uint8_t>> Interpreter::globalMemory() const {
  std::map<std::string, std::vector<uint8_t>> Out;
  for (const auto &[Name, Region] : Globals) {
    std::vector<uint8_t> Bytes(Region.Size);
    loadBytes(Region.Addr, Bytes.data(), Region.Size);
    Out[Name] = std::move(Bytes);
  }
  return Out;
}

namespace llvmmd {

/// Executes one call frame; recursion handles nested calls.
class FrameExec {
public:
  FrameExec(Interpreter &Interp, unsigned Depth)
      : Interp(Interp), Depth(Depth) {}

  Signal exec(const Function &F, const std::vector<RtValue> &Args,
              RtValue &Ret, bool &HasRet) {
    if (Depth > 64)
      return {ExecStatus::Trap, "call depth exceeded"};
    if (F.isDeclaration())
      return execBuiltin(F, Args, Ret, HasRet);
    if (Args.size() != F.getNumArgs())
      return {ExecStatus::Unsupported, "argument count mismatch"};
    for (unsigned I = 0, E = Args.size(); I != E; ++I)
      Env[F.getArg(I)] = Args[I];

    const BasicBlock *Cur = F.getEntryBlock();
    const BasicBlock *Prev = nullptr;
    while (true) {
      // Parallel phi evaluation at block entry. The lookup is checked, not
      // asserted: triage interprets reduced and mutated IR, and a phi with
      // no entry for the taken edge must surface as a skippable non-OK run,
      // never undefined behavior.
      if (Prev) {
        std::vector<std::pair<const PhiNode *, RtValue>> PhiVals;
        for (const PhiNode *P : Cur->phis()) {
          int Idx = P->getBlockIndex(Prev);
          if (Idx < 0)
            return {ExecStatus::Unsupported, "phi has no entry for edge"};
          RtValue V;
          Signal S = eval(P->getIncomingValue(static_cast<unsigned>(Idx)), V);
          if (!S.isOK())
            return S;
          PhiVals.emplace_back(P, V);
        }
        for (auto &[P, V] : PhiVals)
          Env[P] = V;
      }

      for (const Instruction *I : *Cur) {
        if (I->isPhi())
          continue;
        if (++Interp.Steps > Interp.StepBudget)
          return {ExecStatus::StepLimit, "step budget exhausted"};
        switch (I->getOpcode()) {
        case Opcode::Br: {
          const auto *Br = cast<BranchInst>(I);
          const BasicBlock *Next;
          if (Br->isConditional()) {
            RtValue C;
            Signal S = eval(Br->getCondition(), C);
            if (!S.isOK())
              return S;
            Next = C.Int ? Br->getSuccessor(0) : Br->getSuccessor(1);
          } else {
            Next = Br->getSuccessor(0);
          }
          Prev = Cur;
          Cur = Next;
          goto NextBlock;
        }
        case Opcode::Ret: {
          const auto *R = cast<ReturnInst>(I);
          HasRet = R->hasReturnValue();
          if (HasRet) {
            Signal S = eval(R->getReturnValue(), Ret);
            if (!S.isOK())
              return S;
          }
          return {};
        }
        case Opcode::Unreachable:
          return {ExecStatus::Trap, "reached unreachable"};
        default: {
          Signal S = execInst(I);
          if (!S.isOK())
            return S;
        }
        }
      }
      return {ExecStatus::Unsupported, "block fell through"};
    NextBlock:;
    }
  }

private:
  Signal eval(const Value *V, RtValue &Out) {
    if (const auto *CI = dyn_cast<ConstantInt>(V)) {
      Out = RtValue::makeInt(CI->getSExtValue());
      return {};
    }
    if (const auto *CF = dyn_cast<ConstantFP>(V)) {
      Out = RtValue::makeFloat(CF->getValue());
      return {};
    }
    if (isa<ConstantPointerNull>(V)) {
      Out = RtValue::makePtr(0);
      return {};
    }
    if (isa<UndefValue>(V)) {
      // Deterministic model of undef: zero.
      if (V->getType()->isFloat())
        Out = RtValue::makeFloat(0);
      else if (V->getType()->isPointer())
        Out = RtValue::makePtr(0);
      else
        Out = RtValue::makeInt(0);
      return {};
    }
    if (const auto *G = dyn_cast<GlobalVariable>(V)) {
      auto It = Interp.Globals.find(G->getName());
      if (It == Interp.Globals.end())
        return {ExecStatus::Unsupported, "unknown global"};
      Out = RtValue::makePtr(It->second.Addr);
      return {};
    }
    auto It = Env.find(V);
    if (It == Env.end())
      return {ExecStatus::Unsupported, "use of undefined value"};
    Out = It->second;
    return {};
  }

  Signal execInst(const Instruction *I) {
    if (I->isBinaryOp())
      return execBinary(I);
    switch (I->getOpcode()) {
    case Opcode::ICmp:
      return execICmp(cast<ICmpInst>(I));
    case Opcode::FCmp:
      return execFCmp(cast<FCmpInst>(I));
    case Opcode::Trunc:
    case Opcode::ZExt:
    case Opcode::SExt:
      return execCast(cast<CastInst>(I));
    case Opcode::Select: {
      const auto *S = cast<SelectInst>(I);
      RtValue C, T, F;
      if (Signal Sig = eval(S->getCondition(), C); !Sig.isOK())
        return Sig;
      if (Signal Sig = eval(S->getTrueValue(), T); !Sig.isOK())
        return Sig;
      if (Signal Sig = eval(S->getFalseValue(), F); !Sig.isOK())
        return Sig;
      Env[I] = C.Int ? T : F;
      return {};
    }
    case Opcode::Alloca: {
      const auto *A = cast<AllocaInst>(I);
      RtValue Count;
      if (Signal Sig = eval(A->getCount(), Count); !Sig.isOK())
        return Sig;
      if (Count.Int < 0 || Count.Int > (1 << 20))
        return {ExecStatus::Trap, "bad alloca count"};
      uint64_t Size = static_cast<uint64_t>(Count.Int) *
                      A->getAllocatedType()->getStoreSize();
      Env[I] = RtValue::makePtr(Interp.allocate(Size));
      return {};
    }
    case Opcode::Load: {
      const auto *L = cast<LoadInst>(I);
      RtValue P;
      if (Signal Sig = eval(L->getPointer(), P); !Sig.isOK())
        return Sig;
      if (P.Ptr == 0)
        return {ExecStatus::Trap, "null load"};
      return loadValue(P.Ptr, L->getType(), Env[I]);
    }
    case Opcode::Store: {
      const auto *S = cast<StoreInst>(I);
      RtValue V, P;
      if (Signal Sig = eval(S->getStoredValue(), V); !Sig.isOK())
        return Sig;
      if (Signal Sig = eval(S->getPointer(), P); !Sig.isOK())
        return Sig;
      if (P.Ptr == 0)
        return {ExecStatus::Trap, "null store"};
      return storeValue(P.Ptr, S->getStoredValue()->getType(), V);
    }
    case Opcode::GEP: {
      const auto *G = cast<GEPInst>(I);
      RtValue B, Idx;
      if (Signal Sig = eval(G->getBase(), B); !Sig.isOK())
        return Sig;
      if (Signal Sig = eval(G->getIndex(), Idx); !Sig.isOK())
        return Sig;
      int64_t Off = Idx.Int *
                    static_cast<int64_t>(G->getElementType()->getStoreSize());
      Env[I] = RtValue::makePtr(B.Ptr + static_cast<uint64_t>(Off));
      return {};
    }
    case Opcode::Call: {
      const auto *C = cast<CallInst>(I);
      std::vector<RtValue> Args;
      for (unsigned A = 0, E = C->getNumArgs(); A != E; ++A) {
        RtValue V;
        if (Signal Sig = eval(C->getArg(A), V); !Sig.isOK())
          return Sig;
        Args.push_back(V);
      }
      RtValue Ret;
      bool HasRet = false;
      FrameExec Callee(Interp, Depth + 1);
      Signal Sig = Callee.exec(*C->getCallee(), Args, Ret, HasRet);
      if (!Sig.isOK())
        return Sig;
      if (!C->getType()->isVoid()) {
        if (!HasRet)
          return {ExecStatus::Unsupported, "missing return value"};
        Env[I] = Ret;
      }
      return {};
    }
    default:
      return {ExecStatus::Unsupported, "unhandled opcode"};
    }
  }

  Signal execBinary(const Instruction *I) {
    RtValue L, R;
    if (Signal Sig = eval(I->getOperand(0), L); !Sig.isOK())
      return Sig;
    if (Signal Sig = eval(I->getOperand(1), R); !Sig.isOK())
      return Sig;
    if (isFloatBinaryOp(I->getOpcode())) {
      double A = L.Float, B = R.Float, Res = 0;
      switch (I->getOpcode()) {
      case Opcode::FAdd:
        Res = A + B;
        break;
      case Opcode::FSub:
        Res = A - B;
        break;
      case Opcode::FMul:
        Res = A * B;
        break;
      case Opcode::FDiv:
        Res = A / B;
        break;
      default:
        break;
      }
      Env[I] = RtValue::makeFloat(Res);
      return {};
    }
    unsigned Bits = I->getType()->getBitWidth();
    int64_t A = L.Int, B = R.Int;
    uint64_t UA = zeroExtend(A, Bits), UB = zeroExtend(B, Bits);
    int64_t Res = 0;
    switch (I->getOpcode()) {
    case Opcode::Add:
      Res = truncToWidth(static_cast<int64_t>(
                             static_cast<uint64_t>(A) + static_cast<uint64_t>(B)),
                         Bits);
      break;
    case Opcode::Sub:
      Res = truncToWidth(static_cast<int64_t>(
                             static_cast<uint64_t>(A) - static_cast<uint64_t>(B)),
                         Bits);
      break;
    case Opcode::Mul:
      Res = truncToWidth(static_cast<int64_t>(
                             static_cast<uint64_t>(A) * static_cast<uint64_t>(B)),
                         Bits);
      break;
    case Opcode::SDiv: {
      if (B == 0)
        return {ExecStatus::Trap, "division by zero"};
      int64_t Min = signExtend(int64_t(1) << (Bits - 1), Bits);
      if (A == Min && B == -1)
        return {ExecStatus::Trap, "signed division overflow"};
      Res = truncToWidth(A / B, Bits);
      break;
    }
    case Opcode::SRem: {
      if (B == 0)
        return {ExecStatus::Trap, "remainder by zero"};
      int64_t Min = signExtend(int64_t(1) << (Bits - 1), Bits);
      if (A == Min && B == -1)
        return {ExecStatus::Trap, "signed remainder overflow"};
      Res = truncToWidth(A % B, Bits);
      break;
    }
    case Opcode::UDiv:
      if (UB == 0)
        return {ExecStatus::Trap, "division by zero"};
      Res = truncToWidth(static_cast<int64_t>(UA / UB), Bits);
      break;
    case Opcode::URem:
      if (UB == 0)
        return {ExecStatus::Trap, "remainder by zero"};
      Res = truncToWidth(static_cast<int64_t>(UA % UB), Bits);
      break;
    case Opcode::Shl:
      if (UB >= Bits)
        return {ExecStatus::Trap, "shift amount too large"};
      Res = truncToWidth(static_cast<int64_t>(UA << UB), Bits);
      break;
    case Opcode::LShr:
      if (UB >= Bits)
        return {ExecStatus::Trap, "shift amount too large"};
      Res = truncToWidth(static_cast<int64_t>(UA >> UB), Bits);
      break;
    case Opcode::AShr:
      if (UB >= Bits)
        return {ExecStatus::Trap, "shift amount too large"};
      Res = truncToWidth(A >> UB, Bits);
      break;
    case Opcode::And:
      Res = truncToWidth(A & B, Bits);
      break;
    case Opcode::Or:
      Res = truncToWidth(A | B, Bits);
      break;
    case Opcode::Xor:
      Res = truncToWidth(A ^ B, Bits);
      break;
    default:
      return {ExecStatus::Unsupported, "unhandled binary opcode"};
    }
    Env[I] = RtValue::makeInt(Res);
    return {};
  }

  Signal execICmp(const ICmpInst *I) {
    RtValue L, R;
    if (Signal Sig = eval(I->getLHS(), L); !Sig.isOK())
      return Sig;
    if (Signal Sig = eval(I->getRHS(), R); !Sig.isOK())
      return Sig;
    bool Res = false;
    if (I->getLHS()->getType()->isPointer()) {
      uint64_t A = L.Ptr, B = R.Ptr;
      switch (I->getPred()) {
      case ICmpPred::EQ:
        Res = A == B;
        break;
      case ICmpPred::NE:
        Res = A != B;
        break;
      default:
        Res = false; // pointer ordering is unspecified; model as false
        break;
      }
    } else {
      unsigned Bits = I->getLHS()->getType()->getBitWidth();
      int64_t A = L.Int, B = R.Int;
      uint64_t UA = zeroExtend(A, Bits), UB = zeroExtend(B, Bits);
      switch (I->getPred()) {
      case ICmpPred::EQ:
        Res = A == B;
        break;
      case ICmpPred::NE:
        Res = A != B;
        break;
      case ICmpPred::SLT:
        Res = A < B;
        break;
      case ICmpPred::SLE:
        Res = A <= B;
        break;
      case ICmpPred::SGT:
        Res = A > B;
        break;
      case ICmpPred::SGE:
        Res = A >= B;
        break;
      case ICmpPred::ULT:
        Res = UA < UB;
        break;
      case ICmpPred::ULE:
        Res = UA <= UB;
        break;
      case ICmpPred::UGT:
        Res = UA > UB;
        break;
      case ICmpPred::UGE:
        Res = UA >= UB;
        break;
      }
    }
    Env[I] = RtValue::makeInt(Res ? 1 : 0);
    return {};
  }

  Signal execFCmp(const FCmpInst *I) {
    RtValue L, R;
    if (Signal Sig = eval(I->getLHS(), L); !Sig.isOK())
      return Sig;
    if (Signal Sig = eval(I->getRHS(), R); !Sig.isOK())
      return Sig;
    double A = L.Float, B = R.Float;
    bool Res = false;
    switch (I->getPred()) {
    case FCmpPred::OEQ:
      Res = A == B;
      break;
    case FCmpPred::ONE:
      Res = !(std::isnan(A) || std::isnan(B)) && A != B;
      break;
    case FCmpPred::OLT:
      Res = A < B;
      break;
    case FCmpPred::OLE:
      Res = A <= B;
      break;
    case FCmpPred::OGT:
      Res = A > B;
      break;
    case FCmpPred::OGE:
      Res = A >= B;
      break;
    }
    Env[I] = RtValue::makeInt(Res ? 1 : 0);
    return {};
  }

  Signal execCast(const CastInst *I) {
    RtValue S;
    if (Signal Sig = eval(I->getSrc(), S); !Sig.isOK())
      return Sig;
    unsigned DstBits = I->getType()->getBitWidth();
    unsigned SrcBits = I->getSrc()->getType()->getBitWidth();
    switch (I->getOpcode()) {
    case Opcode::Trunc:
      Env[I] = RtValue::makeInt(truncToWidth(S.Int, DstBits));
      break;
    case Opcode::ZExt:
      Env[I] = RtValue::makeInt(
          truncToWidth(static_cast<int64_t>(zeroExtend(S.Int, SrcBits)),
                       DstBits));
      break;
    case Opcode::SExt:
      Env[I] = RtValue::makeInt(truncToWidth(S.Int, DstBits));
      break;
    default:
      return {ExecStatus::Unsupported, "unhandled cast"};
    }
    return {};
  }

  Signal loadValue(uint64_t Addr, Type *Ty, RtValue &Out) {
    unsigned Size = Ty->getStoreSize();
    if (Ty->isFloat()) {
      double D;
      Interp.loadBytes(Addr, &D, Size);
      Out = RtValue::makeFloat(D);
      return {};
    }
    if (Ty->isPointer()) {
      uint64_t P;
      Interp.loadBytes(Addr, &P, Size);
      Out = RtValue::makePtr(P);
      return {};
    }
    uint64_t Raw = 0;
    Interp.loadBytes(Addr, &Raw, Size);
    Out = RtValue::makeInt(signExtend(static_cast<int64_t>(Raw),
                                      Ty->getBitWidth()));
    return {};
  }

  Signal storeValue(uint64_t Addr, Type *Ty, const RtValue &V) {
    unsigned Size = Ty->getStoreSize();
    if (Ty->isFloat()) {
      Interp.storeBytes(Addr, &V.Float, Size);
      return {};
    }
    if (Ty->isPointer()) {
      Interp.storeBytes(Addr, &V.Ptr, Size);
      return {};
    }
    uint64_t Raw = zeroExtend(V.Int, Ty->getBitWidth());
    Interp.storeBytes(Addr, &Raw, Size);
    return {};
  }

  Signal execBuiltin(const Function &F, const std::vector<RtValue> &Args,
                     RtValue &Ret, bool &HasRet) {
    const std::string &Name = F.getName();
    HasRet = !F.getReturnType()->isVoid();
    if (Name == "strlen" && Args.size() == 1) {
      uint64_t P = Args[0].Ptr, N = 0;
      while (true) {
        uint8_t B;
        Interp.loadBytes(P + N, &B, 1);
        if (B == 0)
          break;
        if (++N > (1u << 16))
          return {ExecStatus::Trap, "unterminated string"};
      }
      Ret = RtValue::makeInt(static_cast<int64_t>(N));
      return {};
    }
    if (Name == "memset" && Args.size() == 3) {
      uint64_t P = Args[0].Ptr;
      uint8_t B = static_cast<uint8_t>(Args[1].Int);
      int64_t Len = Args[2].Int;
      if (Len < 0 || Len > (1 << 20))
        return {ExecStatus::Trap, "bad memset length"};
      for (int64_t I = 0; I < Len; ++I)
        Interp.storeBytes(P + static_cast<uint64_t>(I), &B, 1);
      if (HasRet)
        Ret = Args[0];
      return {};
    }
    if (Name == "memcpy" && Args.size() == 3) {
      uint64_t D = Args[0].Ptr, S = Args[1].Ptr;
      int64_t Len = Args[2].Int;
      if (Len < 0 || Len > (1 << 20))
        return {ExecStatus::Trap, "bad memcpy length"};
      for (int64_t I = 0; I < Len; ++I) {
        uint8_t B;
        Interp.loadBytes(S + static_cast<uint64_t>(I), &B, 1);
        Interp.storeBytes(D + static_cast<uint64_t>(I), &B, 1);
      }
      if (HasRet)
        Ret = Args[0];
      return {};
    }
    if (Name == "atoi" && Args.size() == 1) {
      uint64_t P = Args[0].Ptr;
      int64_t V = 0;
      bool Neg = false;
      uint8_t B;
      Interp.loadBytes(P, &B, 1);
      if (B == '-') {
        Neg = true;
        ++P;
        Interp.loadBytes(P, &B, 1);
      }
      while (B >= '0' && B <= '9') {
        V = V * 10 + (B - '0');
        ++P;
        Interp.loadBytes(P, &B, 1);
      }
      Ret = RtValue::makeInt(signExtend(Neg ? -V : V, 32));
      return {};
    }
    if (Name == "abs" && Args.size() == 1) {
      Ret = RtValue::makeInt(Args[0].Int < 0 ? -Args[0].Int : Args[0].Int);
      return {};
    }
    if (Name == "fsqrt" && Args.size() == 1) {
      Ret = RtValue::makeFloat(std::sqrt(Args[0].Float));
      return {};
    }
    if (Name == "puts" && Args.size() == 1) {
      if (HasRet)
        Ret = RtValue::makeInt(0);
      return {};
    }
    return {ExecStatus::Trap, "unmodeled external call to " + Name};
  }

  Interpreter &Interp;
  unsigned Depth;
  std::map<const Value *, RtValue> Env;
};

} // namespace llvmmd

ExecResult Interpreter::run(const Function &F,
                            const std::vector<RtValue> &Args, bool Fresh) {
  if (Fresh)
    resetMemory();
  Steps = 0;
  ExecResult R;
  FrameExec Frame(*this, 0);
  RtValue Ret;
  bool HasRet = false;
  Signal S = Frame.exec(F, Args, Ret, HasRet);
  R.Status = S.Status;
  R.Detail = S.Detail;
  R.HasValue = S.isOK() && HasRet;
  if (R.HasValue)
    R.Value = Ret;
  return R;
}
