//===- Parser.h - Textual IR parser ------------------------------*- C++ -*-===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the LLVM-flavoured textual IR produced by Printer.h. Forward
/// references (phi back-edges, blocks defined later) are supported
/// everywhere via a fixup pass, so block order in the text is unconstrained.
///
//===----------------------------------------------------------------------===//

#ifndef LLVMMD_IR_PARSER_H
#define LLVMMD_IR_PARSER_H

#include <memory>
#include <string>
#include <string_view>

namespace llvmmd {

class Context;
class Module;

/// Result of a parse: a module on success, a diagnostic on failure.
struct ParseResult {
  std::unique_ptr<Module> M;
  std::string Error;

  explicit operator bool() const { return M != nullptr; }
};

/// Parses a whole module. The returned module lives in \p Ctx, which must
/// outlive it.
ParseResult parseModule(Context &Ctx, std::string_view Text,
                        std::string ModuleName = "module");

} // namespace llvmmd

#endif // LLVMMD_IR_PARSER_H
