//===- Context.h - Type and constant interning ------------------*- C++ -*-===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Context owns and interns types and constants so that pointer equality is
/// semantic equality. A single Context may back several Modules (the llvm-md
/// driver keeps the original and the optimized module in one Context).
///
/// Interning is thread-safe: the integer and floating-point constant tables
/// are sharded into lock-striped buckets keyed by the value hash, so
/// optimization passes running on different functions can intern constants
/// concurrently without serializing on one table mutex. Canonicalization by
/// pointer identity is preserved — a given (type, value) key always lands in
/// the same shard and yields the same Constant* no matter which thread asks
/// first — so existing `Constant*` equality checks keep working. The
/// primitive and integer types are created eagerly so type queries are
/// lock-free reads.
///
/// Storage: every interned object (constants, undefs, function types) is
/// bump-allocated from one context arena behind a dedicated mutex (the
/// innermost lock — shard locks are always taken first), so tearing down a
/// Context frees a few slabs instead of one heap object per constant.
/// Interned pointers live exactly as long as the Context, never longer.
///
//===----------------------------------------------------------------------===//

#ifndef LLVMMD_IR_CONTEXT_H
#define LLVMMD_IR_CONTEXT_H

#include "ir/Constant.h"
#include "ir/Type.h"
#include "support/Arena.h"

#include <cstring>
#include <map>
#include <mutex>
#include <vector>

namespace llvmmd {

class Context {
public:
  Context()
      : VoidTy(TypeKind::Void, 0), FloatTy(TypeKind::Float, 0),
        PtrTy(TypeKind::Pointer, 0), Int1Ty(TypeKind::Integer, 1),
        Int8Ty(TypeKind::Integer, 8), Int16Ty(TypeKind::Integer, 16),
        Int32Ty(TypeKind::Integer, 32), Int64Ty(TypeKind::Integer, 64) {
    NullPtrConst = InternArena.create<ConstantPointerNull>(&PtrTy);
  }
  Context(const Context &) = delete;
  Context &operator=(const Context &) = delete;

  Type *getVoidTy() { return &VoidTy; }
  Type *getFloatTy() { return &FloatTy; }
  Type *getPtrTy() { return &PtrTy; }

  /// All supported integer widths exist from construction, so this is a
  /// lock-free lookup.
  Type *getIntTy(unsigned Bits) {
    switch (Bits) {
    case 1:
      return &Int1Ty;
    case 8:
      return &Int8Ty;
    case 16:
      return &Int16Ty;
    case 32:
      return &Int32Ty;
    case 64:
      return &Int64Ty;
    }
    assert(false && "unsupported integer width");
    return nullptr;
  }

  Type *getInt1Ty() { return &Int1Ty; }
  Type *getInt8Ty() { return &Int8Ty; }
  Type *getInt32Ty() { return &Int32Ty; }
  Type *getInt64Ty() { return &Int64Ty; }

  FunctionType *getFunctionTy(Type *Ret, std::vector<Type *> Params) {
    // Function types are created at parse/generation time, not in hot pass
    // loops; a single mutex over the (short) list is enough.
    std::lock_guard<std::mutex> Guard(FunctionTysLock);
    for (auto *FT : FunctionTys)
      if (FT->getReturnType() == Ret && FT->getParamTypes() == Params)
        return FT;
    FunctionTys.push_back(arenaCreate<FunctionType>(Ret, std::move(Params)));
    return FunctionTys.back();
  }

  /// Returns the interned integer constant; \p V is canonicalized by sign
  /// extension from the type's width.
  ConstantInt *getInt(Type *Ty, int64_t V) {
    assert(Ty->isInteger() && "getInt requires integer type");
    int64_t Canon = signExtend(V, Ty->getBitWidth());
    auto Key = std::make_pair(Ty, Canon);
    IntShard &S = IntShards[shardFor(static_cast<uint64_t>(Canon) ^
                                     (uint64_t(Ty->getBitWidth()) << 56))];
    std::lock_guard<std::mutex> Guard(S.Lock);
    auto It = S.Consts.find(Key);
    if (It != S.Consts.end())
      return It->second;
    auto *C = arenaCreate<ConstantInt>(Ty, Canon);
    S.Consts.emplace(Key, C);
    return C;
  }

  ConstantInt *getInt32(int64_t V) { return getInt(getInt32Ty(), V); }
  ConstantInt *getInt64(int64_t V) { return getInt(getInt64Ty(), V); }
  ConstantInt *getBool(bool B) { return getInt(getInt1Ty(), B ? 1 : 0); }
  ConstantInt *getTrue() { return getBool(true); }
  ConstantInt *getFalse() { return getBool(false); }

  ConstantFP *getFloat(double V) {
    uint64_t Bits;
    std::memcpy(&Bits, &V, sizeof(Bits));
    FPShard &S = FPShards[shardFor(Bits)];
    std::lock_guard<std::mutex> Guard(S.Lock);
    auto It = S.Consts.find(Bits);
    if (It != S.Consts.end())
      return It->second;
    auto *C = arenaCreate<ConstantFP>(getFloatTy(), V);
    S.Consts.emplace(Bits, C);
    return C;
  }

  ConstantPointerNull *getNullPtr() { return NullPtrConst; }

  UndefValue *getUndef(Type *Ty) {
    // One undef per type; types are few, so a single shard suffices.
    std::lock_guard<std::mutex> Guard(UndefsLock);
    auto It = Undefs.find(Ty);
    if (It != Undefs.end())
      return It->second;
    auto *U = arenaCreate<UndefValue>(Ty);
    Undefs.emplace(Ty, U);
    return U;
  }

private:
  static constexpr unsigned NumShards = 16; // power of two

  /// Shard selection only needs good dispersion, not determinism across
  /// processes: the same key always maps to the same shard within a run,
  /// which is what pointer-identity canonicalization requires.
  static unsigned shardFor(uint64_t Key) {
    // splitmix64 finalizer.
    Key ^= Key >> 30;
    Key *= 0xbf58476d1ce4e5b9ull;
    Key ^= Key >> 27;
    Key *= 0x94d049bb133111ebull;
    Key ^= Key >> 31;
    return static_cast<unsigned>(Key & (NumShards - 1));
  }

  /// Arena allocation behind the arena mutex. The shard/table lock is
  /// always held first, the arena lock strictly inside it, so lock order
  /// is total and two shards can still intern at once right up to the
  /// (pointer-bump) allocation itself.
  template <typename T, typename... ArgTys> T *arenaCreate(ArgTys &&...Args) {
    std::lock_guard<std::mutex> Guard(ArenaLock);
    return InternArena.create<T>(std::forward<ArgTys>(Args)...);
  }

  struct IntShard {
    std::mutex Lock;
    std::map<std::pair<Type *, int64_t>, ConstantInt *> Consts;
  };
  struct FPShard {
    std::mutex Lock;
    std::map<uint64_t, ConstantFP *> Consts;
  };

  // The arena is declared before every table that points into it, so the
  // interned objects outlive all raw pointers to them during teardown.
  Arena InternArena{16 * 1024};
  std::mutex ArenaLock;

  Type VoidTy;
  Type FloatTy;
  Type PtrTy;
  Type Int1Ty;
  Type Int8Ty;
  Type Int16Ty;
  Type Int32Ty;
  Type Int64Ty;
  std::mutex FunctionTysLock;
  std::vector<FunctionType *> FunctionTys;
  IntShard IntShards[NumShards];
  FPShard FPShards[NumShards];
  ConstantPointerNull *NullPtrConst = nullptr;
  std::mutex UndefsLock;
  std::map<Type *, UndefValue *> Undefs;
};

} // namespace llvmmd

#endif // LLVMMD_IR_CONTEXT_H
