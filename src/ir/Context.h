//===- Context.h - Type and constant interning ------------------*- C++ -*-===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Context owns and interns types and constants so that pointer equality is
/// semantic equality. A single Context may back several Modules (the llvm-md
/// driver keeps the original and the optimized module in one Context).
///
//===----------------------------------------------------------------------===//

#ifndef LLVMMD_IR_CONTEXT_H
#define LLVMMD_IR_CONTEXT_H

#include "ir/Constant.h"
#include "ir/Type.h"

#include <cstring>
#include <map>
#include <memory>
#include <vector>

namespace llvmmd {

class Context {
public:
  Context()
      : VoidTy(TypeKind::Void, 0), FloatTy(TypeKind::Float, 0),
        PtrTy(TypeKind::Pointer, 0) {}
  Context(const Context &) = delete;
  Context &operator=(const Context &) = delete;

  Type *getVoidTy() { return &VoidTy; }
  Type *getFloatTy() { return &FloatTy; }
  Type *getPtrTy() { return &PtrTy; }

  Type *getIntTy(unsigned Bits) {
    assert((Bits == 1 || Bits == 8 || Bits == 16 || Bits == 32 ||
            Bits == 64) &&
           "unsupported integer width");
    auto It = IntTys.find(Bits);
    if (It != IntTys.end())
      return It->second.get();
    auto *T = new Type(TypeKind::Integer, Bits);
    IntTys.emplace(Bits, std::unique_ptr<Type>(T));
    return T;
  }

  Type *getInt1Ty() { return getIntTy(1); }
  Type *getInt8Ty() { return getIntTy(8); }
  Type *getInt32Ty() { return getIntTy(32); }
  Type *getInt64Ty() { return getIntTy(64); }

  FunctionType *getFunctionTy(Type *Ret, std::vector<Type *> Params) {
    for (auto &FT : FunctionTys)
      if (FT->getReturnType() == Ret && FT->getParamTypes() == Params)
        return FT.get();
    FunctionTys.emplace_back(new FunctionType(Ret, std::move(Params)));
    return FunctionTys.back().get();
  }

  /// Returns the interned integer constant; \p V is canonicalized by sign
  /// extension from the type's width.
  ConstantInt *getInt(Type *Ty, int64_t V) {
    assert(Ty->isInteger() && "getInt requires integer type");
    int64_t Canon = signExtend(V, Ty->getBitWidth());
    auto Key = std::make_pair(Ty, Canon);
    auto It = IntConsts.find(Key);
    if (It != IntConsts.end())
      return It->second.get();
    auto *C = new ConstantInt(Ty, Canon);
    IntConsts.emplace(Key, std::unique_ptr<ConstantInt>(C));
    return C;
  }

  ConstantInt *getInt32(int64_t V) { return getInt(getInt32Ty(), V); }
  ConstantInt *getInt64(int64_t V) { return getInt(getInt64Ty(), V); }
  ConstantInt *getBool(bool B) { return getInt(getInt1Ty(), B ? 1 : 0); }
  ConstantInt *getTrue() { return getBool(true); }
  ConstantInt *getFalse() { return getBool(false); }

  ConstantFP *getFloat(double V) {
    uint64_t Bits;
    std::memcpy(&Bits, &V, sizeof(Bits));
    auto It = FPConsts.find(Bits);
    if (It != FPConsts.end())
      return It->second.get();
    auto *C = new ConstantFP(getFloatTy(), V);
    FPConsts.emplace(Bits, std::unique_ptr<ConstantFP>(C));
    return C;
  }

  ConstantPointerNull *getNullPtr() {
    if (!NullPtr)
      NullPtr.reset(new ConstantPointerNull(getPtrTy()));
    return NullPtr.get();
  }

  UndefValue *getUndef(Type *Ty) {
    auto It = Undefs.find(Ty);
    if (It != Undefs.end())
      return It->second.get();
    auto *U = new UndefValue(Ty);
    Undefs.emplace(Ty, std::unique_ptr<UndefValue>(U));
    return U;
  }

private:
  Type VoidTy;
  Type FloatTy;
  Type PtrTy;
  std::map<unsigned, std::unique_ptr<Type>> IntTys;
  std::vector<std::unique_ptr<FunctionType>> FunctionTys;
  std::map<std::pair<Type *, int64_t>, std::unique_ptr<ConstantInt>> IntConsts;
  std::map<uint64_t, std::unique_ptr<ConstantFP>> FPConsts;
  std::unique_ptr<ConstantPointerNull> NullPtr;
  std::map<Type *, std::unique_ptr<UndefValue>> Undefs;
};

} // namespace llvmmd

#endif // LLVMMD_IR_CONTEXT_H
