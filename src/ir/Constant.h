//===- Constant.h - Constants and global variables --------------*- C++ -*-===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Constant values: integers (interned per Context with canonical
/// sign-extended representation), floats, the null pointer, undef, and
/// module-owned global variables.
///
//===----------------------------------------------------------------------===//

#ifndef LLVMMD_IR_CONSTANT_H
#define LLVMMD_IR_CONSTANT_H

#include "ir/Value.h"

namespace llvmmd {

/// Common base for all constants (including globals and functions, which are
/// link-time constant addresses).
class Constant : public Value {
public:
  static bool classof(const Value *V) {
    return V->getKind() >= ValueKind::ConstantInt &&
           V->getKind() <= ValueKind::Function;
  }

protected:
  Constant(ValueKind Kind, Type *Ty) : Value(Kind, Ty) {}
};

/// Sign-extends the low \p Bits bits of \p V; the canonical in-memory form
/// of an integer constant of width Bits.
inline int64_t signExtend(int64_t V, unsigned Bits) {
  if (Bits >= 64)
    return V;
  uint64_t Mask = (uint64_t(1) << Bits) - 1;
  uint64_t Low = static_cast<uint64_t>(V) & Mask;
  uint64_t SignBit = uint64_t(1) << (Bits - 1);
  return static_cast<int64_t>((Low ^ SignBit) - SignBit);
}

/// Zero-extended (unsigned) view of a canonical integer constant.
inline uint64_t zeroExtend(int64_t V, unsigned Bits) {
  if (Bits >= 64)
    return static_cast<uint64_t>(V);
  return static_cast<uint64_t>(V) & ((uint64_t(1) << Bits) - 1);
}

/// An integer constant of a specific bit width. Interned: obtain via
/// Context::getInt.
class ConstantInt : public Constant {
public:
  /// The value, sign-extended to 64 bits.
  int64_t getSExtValue() const { return Val; }
  /// The value, zero-extended to 64 bits.
  uint64_t getZExtValue() const { return zeroExtend(Val, getBitWidth()); }
  unsigned getBitWidth() const { return getType()->getBitWidth(); }

  bool isZero() const { return Val == 0; }
  bool isOne() const { return Val == 1; }
  bool isTrue() const { return getType()->isBool() && Val != 0; }
  bool isFalse() const { return getType()->isBool() && Val == 0; }

  /// True if the unsigned value is an exact power of two.
  bool isPowerOf2() const {
    uint64_t U = getZExtValue();
    return U != 0 && (U & (U - 1)) == 0;
  }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::ConstantInt;
  }

private:
  friend class Context;
  friend class Arena;
  ConstantInt(Type *Ty, int64_t Val)
      : Constant(ValueKind::ConstantInt, Ty), Val(Val) {}

  int64_t Val;
};

/// A floating point constant (stored as double). Interned by bit pattern.
class ConstantFP : public Constant {
public:
  double getValue() const { return Val; }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::ConstantFP;
  }

private:
  friend class Context;
  friend class Arena;
  ConstantFP(Type *Ty, double Val)
      : Constant(ValueKind::ConstantFP, Ty), Val(Val) {}

  double Val;
};

/// The null pointer constant.
class ConstantPointerNull : public Constant {
public:
  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::ConstantPointerNull;
  }

private:
  friend class Context;
  friend class Arena;
  explicit ConstantPointerNull(Type *PtrTy)
      : Constant(ValueKind::ConstantPointerNull, PtrTy) {}
};

/// An undefined value of a given type.
class UndefValue : public Constant {
public:
  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::UndefValue;
  }

private:
  friend class Context;
  friend class Arena;
  explicit UndefValue(Type *Ty) : Constant(ValueKind::UndefValue, Ty) {}
};

/// A module-level global variable. Its value (as an operand) is the address;
/// the pointee type and optional constant initializer live here.
class GlobalVariable : public Constant {
public:
  GlobalVariable(Type *PtrTy, Type *ValueTy, std::string Name,
                 Constant *Initializer, bool IsConstant)
      : Constant(ValueKind::GlobalVariable, PtrTy), ValueTy(ValueTy),
        Initializer(Initializer), IsConstant(IsConstant) {
    setName(std::move(Name));
  }

  Type *getValueType() const { return ValueTy; }
  Constant *getInitializer() const { return Initializer; }
  bool hasInitializer() const { return Initializer != nullptr; }
  /// True for `constant` globals: the memory is read-only, so loads from
  /// them may be folded to the initializer (the paper's "folding of global
  /// variables" rule-set knob).
  bool isConstantGlobal() const { return IsConstant; }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::GlobalVariable;
  }

private:
  Type *ValueTy;
  Constant *Initializer;
  bool IsConstant;
};

} // namespace llvmmd

#endif // LLVMMD_IR_CONSTANT_H
