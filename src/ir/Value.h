//===- Value.h - SSA value and user base classes ----------------*- C++ -*-===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Value is the base of everything that can be an operand: arguments,
/// constants, globals, functions and instructions. User adds an operand list
/// with use-list maintenance so that replaceAllUsesWith and use_empty work.
///
//===----------------------------------------------------------------------===//

#ifndef LLVMMD_IR_VALUE_H
#define LLVMMD_IR_VALUE_H

#include "ir/Type.h"
#include "support/Casting.h"

#include <algorithm>
#include <cassert>
#include <string>
#include <vector>

namespace llvmmd {

class User;

/// Discriminator for the Value hierarchy. Order matters: the Constant range
/// is [ConstantInt, Function].
enum class ValueKind : uint8_t {
  Argument,
  ConstantInt,
  ConstantFP,
  ConstantPointerNull,
  UndefValue,
  GlobalVariable,
  Function,
  Instruction,
};

/// Base class for all SSA values.
class Value {
public:
  Value(const Value &) = delete;
  Value &operator=(const Value &) = delete;
  virtual ~Value() { assert(Users.empty() && "deleting value with uses"); }

  ValueKind getKind() const { return Kind; }
  Type *getType() const { return Ty; }

  const std::string &getName() const { return Name; }
  void setName(std::string N) { Name = std::move(N); }
  bool hasName() const { return !Name.empty(); }

  /// Use lists are maintained only for function-local values (arguments and
  /// instructions), which exactly one thread mutates at a time. Constants,
  /// globals and functions are shared across modules — and, with the
  /// thread-safe Context, across concurrently-optimized functions — so
  /// tracking their uses would be a cross-thread data race (and their use
  /// lists would grow without bound across engine runs). No pass consumes
  /// them: every `users()` walk in the codebase starts from an instruction.
  bool tracksUses() const {
    return Kind == ValueKind::Argument || Kind == ValueKind::Instruction;
  }

  /// One entry per operand slot that refers to this value (a user with two
  /// operands equal to this value appears twice). Empty for values that do
  /// not track uses; see tracksUses().
  const std::vector<User *> &users() const { return Users; }
  bool use_empty() const { return Users.empty(); }
  size_t getNumUses() const { return Users.size(); }
  bool hasOneUse() const { return Users.size() == 1; }

  /// Rewrites every use of this value to use \p New instead.
  void replaceAllUsesWith(Value *New);

protected:
  Value(ValueKind Kind, Type *Ty) : Kind(Kind), Ty(Ty) {}

private:
  friend class User;
  void addUse(User *U) {
    if (tracksUses())
      Users.push_back(U);
  }
  void removeUse(User *U) {
    if (!tracksUses())
      return;
    auto It = std::find(Users.begin(), Users.end(), U);
    assert(It != Users.end() && "use not found");
    Users.erase(It);
  }

  ValueKind Kind;
  Type *Ty;
  std::string Name;
  std::vector<User *> Users;
};

/// A value that references other values through an operand list.
class User : public Value {
public:
  ~User() override { dropAllReferences(); }

  unsigned getNumOperands() const { return Operands.size(); }

  Value *getOperand(unsigned I) const {
    assert(I < Operands.size() && "operand index out of range");
    return Operands[I];
  }

  void setOperand(unsigned I, Value *V) {
    assert(I < Operands.size() && "operand index out of range");
    if (Operands[I])
      Operands[I]->removeUse(this);
    Operands[I] = V;
    if (V)
      V->addUse(this);
  }

  const std::vector<Value *> &operands() const { return Operands; }

  /// Releases all operand uses; called before deletion so that values can be
  /// destroyed in any order.
  void dropAllReferences() {
    for (Value *Op : Operands)
      if (Op)
        Op->removeUse(this);
    Operands.clear();
  }

  /// Replaces every operand equal to \p From with \p To.
  void replaceUsesOfWith(Value *From, Value *To) {
    for (unsigned I = 0, E = Operands.size(); I != E; ++I)
      if (Operands[I] == From)
        setOperand(I, To);
  }

protected:
  User(ValueKind Kind, Type *Ty) : Value(Kind, Ty) {}

  void addOperand(Value *V) {
    Operands.push_back(V);
    if (V)
      V->addUse(this);
  }

  void removeOperand(unsigned I) {
    assert(I < Operands.size() && "operand index out of range");
    if (Operands[I])
      Operands[I]->removeUse(this);
    Operands.erase(Operands.begin() + I);
  }

private:
  std::vector<Value *> Operands;
};

inline void Value::replaceAllUsesWith(Value *New) {
  assert(New != this && "RAUW with self");
  while (!Users.empty()) {
    User *U = Users.back();
    U->replaceUsesOfWith(this, New);
  }
}

/// A formal parameter of a Function.
class Argument : public Value {
public:
  Argument(Type *Ty, unsigned Index) : Value(ValueKind::Argument, Ty),
                                       Index(Index) {}

  unsigned getIndex() const { return Index; }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::Argument;
  }

private:
  unsigned Index;
};

} // namespace llvmmd

#endif // LLVMMD_IR_VALUE_H
