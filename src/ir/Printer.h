//===- Printer.h - Textual IR output ----------------------------*- C++ -*-===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints modules and functions in the LLVM-flavoured textual format that
/// Parser.h accepts; print(parse(x)) round-trips.
///
//===----------------------------------------------------------------------===//

#ifndef LLVMMD_IR_PRINTER_H
#define LLVMMD_IR_PRINTER_H

#include <string>

namespace llvmmd {

class Module;
class Function;
class Instruction;

/// Renders the whole module (globals, declarations, definitions).
std::string printModule(const Module &M);

/// Renders a single function definition or declaration.
std::string printFunction(const Function &F);

/// Renders one instruction (without trailing newline); names for unnamed
/// values are only stable within printFunction, so this is for debugging.
std::string printInstruction(const Instruction &I);

} // namespace llvmmd

#endif // LLVMMD_IR_PRINTER_H
