//===- BasicBlock.h - A straight-line sequence of instructions --*- C++ -*-===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A BasicBlock owns an ordered list of instructions terminated by exactly
/// one terminator. Blocks are owned by their parent Function.
///
//===----------------------------------------------------------------------===//

#ifndef LLVMMD_IR_BASICBLOCK_H
#define LLVMMD_IR_BASICBLOCK_H

#include "ir/Instruction.h"

#include <list>
#include <string>
#include <vector>

namespace llvmmd {

class Function;

class BasicBlock {
public:
  using InstListType = std::list<Instruction *>;
  using iterator = InstListType::iterator;
  using const_iterator = InstListType::const_iterator;

  explicit BasicBlock(std::string Name) : Name(std::move(Name)) {}
  BasicBlock(const BasicBlock &) = delete;
  BasicBlock &operator=(const BasicBlock &) = delete;
  // Blocks and their instructions are owned by the parent function's body
  // arena; destruction never frees instructions (the arena does).
  ~BasicBlock() = default;

  const std::string &getName() const { return Name; }
  void setName(std::string N) { Name = std::move(N); }

  Function *getParent() const { return Parent; }
  void setParent(Function *F) { Parent = F; }

  iterator begin() { return Insts.begin(); }
  iterator end() { return Insts.end(); }
  const_iterator begin() const { return Insts.begin(); }
  const_iterator end() const { return Insts.end(); }
  bool empty() const { return Insts.empty(); }
  size_t size() const { return Insts.size(); }

  Instruction *front() const { return Insts.front(); }
  Instruction *back() const { return Insts.back(); }

  /// Appends \p I, taking ownership.
  void append(Instruction *I) {
    I->setParent(this);
    Insts.push_back(I);
  }

  /// Inserts \p I before \p Pos, taking ownership. Returns an iterator to
  /// the inserted instruction.
  iterator insert(iterator Pos, Instruction *I) {
    I->setParent(this);
    return Insts.insert(Pos, I);
  }

  /// Unlinks \p I without deleting it (ownership passes to the caller).
  void remove(Instruction *I) {
    Insts.remove(I);
    I->setParent(nullptr);
  }

  /// Unlinks \p I and releases its operand uses. The instruction must have
  /// no remaining uses. Its storage stays in the function's body arena
  /// until the body is dropped — erase never frees.
  void erase(Instruction *I) {
    remove(I);
    I->dropAllReferences();
  }

  /// The block terminator, or null if the block is not yet terminated.
  Instruction *getTerminator() const {
    if (Insts.empty() || !Insts.back()->isTerminator())
      return nullptr;
    return Insts.back();
  }

  /// Successor blocks via the terminator (empty for ret/unreachable).
  std::vector<BasicBlock *> successors() const {
    std::vector<BasicBlock *> Out;
    if (auto *Br = dyn_cast_or_null<BranchInst>(getTerminator()))
      for (unsigned I = 0, E = Br->getNumSuccessors(); I != E; ++I)
        Out.push_back(Br->getSuccessor(I));
    return Out;
  }

  /// Predecessor blocks, computed by scanning the parent function.
  std::vector<BasicBlock *> predecessors() const;

  /// First non-phi instruction position (phis must be grouped at the top).
  iterator getFirstNonPhi() {
    auto It = Insts.begin();
    while (It != Insts.end() && (*It)->isPhi())
      ++It;
    return It;
  }

  /// All phi nodes at the head of the block.
  std::vector<PhiNode *> phis() const {
    std::vector<PhiNode *> Out;
    for (Instruction *I : Insts) {
      auto *P = dyn_cast<PhiNode>(I);
      if (!P)
        break;
      Out.push_back(P);
    }
    return Out;
  }

private:
  std::string Name;
  Function *Parent = nullptr;
  InstListType Insts;
};

} // namespace llvmmd

#endif // LLVMMD_IR_BASICBLOCK_H
