//===- Folding.h - Arithmetic constant folding helpers ----------*- C++ -*-===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Width-aware constant evaluation of miniir operators on raw integers and
/// doubles. Shared by the optimizer (SCCP, GVN, InstCombine) and by the
/// value-graph normalizer's constant-folding rule set, so both sides fold
/// identically — the property the paper's rule orientation relies on.
///
//===----------------------------------------------------------------------===//

#ifndef LLVMMD_IR_FOLDING_H
#define LLVMMD_IR_FOLDING_H

#include "ir/Instruction.h"

#include <optional>

namespace llvmmd {

/// Folds an integer binary op over canonical (sign-extended) inputs of the
/// given width. Returns nullopt for undefined cases (division by zero,
/// overflowing INT_MIN/-1, oversized shifts) which must not be folded.
std::optional<int64_t> foldIntBinary(Opcode Op, int64_t A, int64_t B,
                                     unsigned Bits);

/// Folds a float binary op (always defined; IEEE semantics).
double foldFloatBinary(Opcode Op, double A, double B);

/// Evaluates an integer comparison over canonical inputs of the width.
bool foldICmp(ICmpPred P, int64_t A, int64_t B, unsigned Bits);

/// Evaluates an ordered float comparison.
bool foldFCmp(FCmpPred P, double A, double B);

/// Folds trunc/zext/sext from SrcBits to DstBits over a canonical input.
int64_t foldCast(Opcode Op, int64_t V, unsigned SrcBits, unsigned DstBits);

} // namespace llvmmd

#endif // LLVMMD_IR_FOLDING_H
