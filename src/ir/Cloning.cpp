//===- Cloning.cpp - Function, block and module cloning --------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//

#include "ir/Cloning.h"

#include "ir/Module.h"
#include "support/Arena.h"

using namespace llvmmd;

Instruction *llvmmd::cloneInstruction(const Instruction *I, Arena &A) {
  switch (I->getOpcode()) {
  case Opcode::ICmp: {
    const auto *C = cast<ICmpInst>(I);
    return A.create<ICmpInst>(C->getPred(), C->getLHS(), C->getRHS(), C->getType());
  }
  case Opcode::FCmp: {
    const auto *C = cast<FCmpInst>(I);
    return A.create<FCmpInst>(C->getPred(), C->getLHS(), C->getRHS(), C->getType());
  }
  case Opcode::Trunc:
  case Opcode::ZExt:
  case Opcode::SExt: {
    const auto *C = cast<CastInst>(I);
    return A.create<CastInst>(C->getOpcode(), C->getSrc(), C->getType());
  }
  case Opcode::Select: {
    const auto *S = cast<SelectInst>(I);
    return A.create<SelectInst>(S->getCondition(), S->getTrueValue(),
                          S->getFalseValue());
  }
  case Opcode::Alloca: {
    const auto *AI = cast<AllocaInst>(I);
    return A.create<AllocaInst>(AI->getAllocatedType(), AI->getCount(),
                                AI->getType());
  }
  case Opcode::Load: {
    const auto *L = cast<LoadInst>(I);
    return A.create<LoadInst>(L->getType(), L->getPointer());
  }
  case Opcode::Store: {
    const auto *S = cast<StoreInst>(I);
    return A.create<StoreInst>(S->getStoredValue(), S->getPointer(), S->getType());
  }
  case Opcode::GEP: {
    const auto *G = cast<GEPInst>(I);
    return A.create<GEPInst>(G->getElementType(), G->getBase(), G->getIndex(),
                       G->getType());
  }
  case Opcode::Call: {
    const auto *C = cast<CallInst>(I);
    std::vector<Value *> Args;
    for (unsigned A = 0, E = C->getNumArgs(); A != E; ++A)
      Args.push_back(C->getArg(A));
    return A.create<CallInst>(C->getCallee(), std::move(Args), C->getType());
  }
  case Opcode::Phi: {
    const auto *P = cast<PhiNode>(I);
    auto *NP = A.create<PhiNode>(P->getType());
    for (unsigned K = 0, E = P->getNumIncoming(); K != E; ++K)
      NP->addIncoming(P->getIncomingValue(K), P->getIncomingBlock(K));
    return NP;
  }
  case Opcode::Br: {
    const auto *B = cast<BranchInst>(I);
    if (B->isConditional())
      return A.create<BranchInst>(B->getCondition(), B->getSuccessor(0),
                            B->getSuccessor(1), B->getType());
    return A.create<BranchInst>(B->getSuccessor(0), B->getType());
  }
  case Opcode::Ret: {
    const auto *R = cast<ReturnInst>(I);
    return A.create<ReturnInst>(R->getReturnValue(), R->getType());
  }
  case Opcode::Unreachable:
    return A.create<UnreachableInst>(I->getType());
  default:
    assert(I->isBinaryOp() && "unhandled opcode in cloneInstruction");
    return A.create<BinaryOperator>(I->getOpcode(), I->getOperand(0),
                              I->getOperand(1));
  }
}

void llvmmd::cloneFunctionBody(const Function &Src, Function &Dst,
                               std::map<const Value *, Value *> &VMap) {
  assert(Dst.getNumBlocks() == 0 && "destination already has a body");
  Arena &A = Dst.bodyArena();
  for (unsigned I = 0, E = Src.getNumArgs(); I != E; ++I) {
    VMap[Src.getArg(I)] = Dst.getArg(I);
    Dst.getArg(I)->setName(Src.getArg(I)->getName());
  }
  std::map<const BasicBlock *, BasicBlock *> BMap;
  for (const BasicBlock *BB : Src.blocks())
    BMap[BB] = Dst.createBlock(BB->getName());

  auto MapValue = [&](Value *V) -> Value * {
    auto It = VMap.find(V);
    return It == VMap.end() ? V : It->second;
  };

  for (const BasicBlock *BB : Src.blocks()) {
    BasicBlock *NewBB = BMap[BB];
    for (const Instruction *I : *BB) {
      Instruction *NI = cloneInstruction(I, A);
      NI->setName(I->getName());
      NewBB->append(NI);
      VMap[I] = NI;
    }
  }

  // Remap operands, phi blocks and branch successors.
  for (const BasicBlock *BB : Src.blocks()) {
    BasicBlock *NewBB = BMap[BB];
    for (Instruction *NI : *NewBB) {
      for (unsigned OpI = 0, E = NI->getNumOperands(); OpI != E; ++OpI)
        NI->setOperand(OpI, MapValue(NI->getOperand(OpI)));
      if (auto *P = dyn_cast<PhiNode>(NI)) {
        for (unsigned K = 0, E = P->getNumIncoming(); K != E; ++K) {
          auto It = BMap.find(P->getIncomingBlock(K));
          assert(It != BMap.end() && "phi references unknown block");
          P->setIncomingBlock(K, It->second);
        }
      } else if (auto *Br = dyn_cast<BranchInst>(NI)) {
        for (unsigned SuccI = 0, E = Br->getNumSuccessors(); SuccI != E;
             ++SuccI) {
          auto It = BMap.find(Br->getSuccessor(SuccI));
          assert(It != BMap.end() && "branch references unknown block");
          Br->setSuccessor(SuccI, It->second);
        }
      }
    }
  }
}

std::vector<BasicBlock *>
llvmmd::cloneBlocks(Function &F, const std::vector<BasicBlock *> &Blocks,
                    std::map<const Value *, Value *> &VMap,
                    std::map<const BasicBlock *, BasicBlock *> &BMap,
                    const std::string &Suffix) {
  Arena &A = F.bodyArena();
  std::vector<BasicBlock *> NewBlocks;
  for (BasicBlock *BB : Blocks) {
    BasicBlock *NewBB = F.createBlock(BB->getName() + Suffix);
    BMap[BB] = NewBB;
    NewBlocks.push_back(NewBB);
  }
  for (BasicBlock *BB : Blocks) {
    BasicBlock *NewBB = BMap[BB];
    for (const Instruction *I : *BB) {
      Instruction *NI = cloneInstruction(I, A);
      if (I->hasName())
        NI->setName(I->getName() + Suffix);
      NewBB->append(NI);
      VMap[I] = NI;
    }
  }
  auto MapValue = [&](Value *V) -> Value * {
    auto It = VMap.find(V);
    return It == VMap.end() ? V : It->second;
  };
  for (BasicBlock *NewBB : NewBlocks) {
    for (Instruction *NI : *NewBB) {
      for (unsigned OpI = 0, E = NI->getNumOperands(); OpI != E; ++OpI)
        NI->setOperand(OpI, MapValue(NI->getOperand(OpI)));
      if (auto *P = dyn_cast<PhiNode>(NI)) {
        for (unsigned K = 0, E = P->getNumIncoming(); K != E; ++K) {
          auto It = BMap.find(P->getIncomingBlock(K));
          if (It != BMap.end())
            P->setIncomingBlock(K, It->second);
        }
      } else if (auto *Br = dyn_cast<BranchInst>(NI)) {
        for (unsigned SuccI = 0, E = Br->getNumSuccessors(); SuccI != E;
             ++SuccI) {
          auto It = BMap.find(Br->getSuccessor(SuccI));
          if (It != BMap.end())
            Br->setSuccessor(SuccI, It->second);
        }
      }
    }
  }
  return NewBlocks;
}

std::unique_ptr<Module> llvmmd::cloneModule(const Module &M) {
  auto New = std::make_unique<Module>(M.getContext(), M.getName());
  std::map<const Value *, Value *> VMap;

  for (const GlobalVariable *G : M.globals()) {
    GlobalVariable *NG = New->createGlobal(G->getValueType(), G->getName(),
                                           G->getInitializer(),
                                           G->isConstantGlobal());
    VMap[G] = NG;
  }
  for (const Function *F : M.functions()) {
    Function *NF = New->createFunction(F->getFunctionType(), F->getName());
    NF->setMemoryEffect(F->getMemoryEffect());
    VMap[F] = NF;
  }
  for (const Function *F : M.functions()) {
    if (F->isDeclaration())
      continue;
    Function *NF = New->getFunction(F->getName());
    cloneFunctionBody(*F, *NF, VMap);
    // Remap globals and callees.
    for (BasicBlock *BB : NF->blocks()) {
      for (Instruction *I : *BB) {
        for (unsigned OpI = 0, E = I->getNumOperands(); OpI != E; ++OpI) {
          auto It = VMap.find(I->getOperand(OpI));
          if (It != VMap.end())
            I->setOperand(OpI, It->second);
        }
        if (auto *Call = dyn_cast<CallInst>(I)) {
          Function *NewCallee = New->getFunction(Call->getCallee()->getName());
          assert(NewCallee && "callee not cloned");
          Call->setCallee(NewCallee);
        }
      }
    }
  }
  return New;
}

void llvmmd::remapModuleReferences(Function &F, Module &DstModule) {
  for (BasicBlock *BB : F.blocks()) {
    for (Instruction *I : *BB) {
      for (unsigned OpI = 0, E = I->getNumOperands(); OpI != E; ++OpI)
        if (auto *GV = dyn_cast<GlobalVariable>(I->getOperand(OpI))) {
          GlobalVariable *NG = DstModule.getGlobal(GV->getName());
          assert(NG && "global missing from destination module");
          I->setOperand(OpI, NG);
        }
      if (auto *Call = dyn_cast<CallInst>(I)) {
        Function *NF = DstModule.getFunction(Call->getCallee()->getName());
        assert(NF && "callee missing from destination module");
        Call->setCallee(NF);
      }
    }
  }
}
