//===- Parser.cpp - Textual IR parser --------------------------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"

#include "ir/Module.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

using namespace llvmmd;

namespace {

enum class TokKind {
  Eof,
  Word,       // bare identifier / keyword / type name
  LocalId,    // %name
  GlobalId,   // @name
  IntLit,     // 123, -5
  FloatLit,   // 3.5, -1e9
  Equal,
  Comma,
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Colon,
};

struct Token {
  TokKind Kind = TokKind::Eof;
  std::string Text;
  int64_t IntVal = 0;
  double FloatVal = 0;
  unsigned Line = 0;
};

class Lexer {
public:
  explicit Lexer(std::string_view Src) : Src(Src) {}

  Token next() {
    skipTrivia();
    Token T;
    T.Line = Line;
    if (Pos >= Src.size()) {
      T.Kind = TokKind::Eof;
      return T;
    }
    char C = Src[Pos];
    switch (C) {
    case '=':
      ++Pos;
      T.Kind = TokKind::Equal;
      return T;
    case ',':
      ++Pos;
      T.Kind = TokKind::Comma;
      return T;
    case '(':
      ++Pos;
      T.Kind = TokKind::LParen;
      return T;
    case ')':
      ++Pos;
      T.Kind = TokKind::RParen;
      return T;
    case '{':
      ++Pos;
      T.Kind = TokKind::LBrace;
      return T;
    case '}':
      ++Pos;
      T.Kind = TokKind::RBrace;
      return T;
    case '[':
      ++Pos;
      T.Kind = TokKind::LBracket;
      return T;
    case ']':
      ++Pos;
      T.Kind = TokKind::RBracket;
      return T;
    case ':':
      ++Pos;
      T.Kind = TokKind::Colon;
      return T;
    case '%':
      ++Pos;
      T.Kind = TokKind::LocalId;
      T.Text = lexIdent();
      return T;
    case '@':
      ++Pos;
      T.Kind = TokKind::GlobalId;
      T.Text = lexIdent();
      return T;
    default:
      break;
    }
    if (std::isdigit(static_cast<unsigned char>(C)) || C == '-')
      return lexNumber();
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      T.Kind = TokKind::Word;
      T.Text = lexIdent();
      return T;
    }
    T.Kind = TokKind::Eof;
    T.Text = std::string(1, C);
    return T;
  }

private:
  void skipTrivia() {
    while (Pos < Src.size()) {
      char C = Src[Pos];
      if (C == ';') {
        while (Pos < Src.size() && Src[Pos] != '\n')
          ++Pos;
        continue;
      }
      if (C == '\n') {
        ++Line;
        ++Pos;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(C))) {
        ++Pos;
        continue;
      }
      break;
    }
  }

  std::string lexIdent() {
    size_t Start = Pos;
    while (Pos < Src.size()) {
      char C = Src[Pos];
      if (std::isalnum(static_cast<unsigned char>(C)) || C == '_' ||
          C == '.' || C == '$')
        ++Pos;
      else
        break;
    }
    return std::string(Src.substr(Start, Pos - Start));
  }

  Token lexNumber() {
    Token T;
    T.Line = Line;
    size_t Start = Pos;
    if (Src[Pos] == '-')
      ++Pos;
    bool IsFloat = false;
    while (Pos < Src.size()) {
      char C = Src[Pos];
      if (std::isdigit(static_cast<unsigned char>(C))) {
        ++Pos;
        continue;
      }
      if (C == '.' || C == 'e' || C == 'E' ||
          ((C == '+' || C == '-') && Pos > Start &&
           (Src[Pos - 1] == 'e' || Src[Pos - 1] == 'E'))) {
        IsFloat = true;
        ++Pos;
        continue;
      }
      break;
    }
    std::string Text(Src.substr(Start, Pos - Start));
    if (IsFloat) {
      T.Kind = TokKind::FloatLit;
      T.FloatVal = std::strtod(Text.c_str(), nullptr);
    } else {
      T.Kind = TokKind::IntLit;
      T.IntVal = std::strtoll(Text.c_str(), nullptr, 10);
    }
    T.Text = std::move(Text);
    return T;
  }

  std::string_view Src;
  size_t Pos = 0;
  unsigned Line = 1;
};

/// Recursive-descent parser for modules.
class Parser {
public:
  Parser(Context &Ctx, std::string_view Text, std::string ModuleName)
      : Ctx(Ctx), Lex(Text) {
    M = std::make_unique<Module>(Ctx, std::move(ModuleName));
    advance();
  }

  ParseResult run() {
    while (Tok.Kind != TokKind::Eof && Err.empty()) {
      if (Tok.Kind == TokKind::GlobalId) {
        parseGlobal();
        continue;
      }
      if (Tok.Kind == TokKind::Word && Tok.Text == "declare") {
        parseDeclare();
        continue;
      }
      if (Tok.Kind == TokKind::Word && Tok.Text == "define") {
        parseDefine();
        continue;
      }
      error("expected 'define', 'declare' or global definition");
    }
    ParseResult R;
    if (!Err.empty()) {
      R.Error = Err;
      return R;
    }
    R.M = std::move(M);
    return R;
  }

private:
  void advance() { Tok = Lex.next(); }

  void error(const std::string &Msg) {
    if (!Err.empty())
      return;
    std::ostringstream OS;
    OS << "line " << Tok.Line << ": " << Msg;
    if (!Tok.Text.empty())
      OS << " (got '" << Tok.Text << "')";
    Err = OS.str();
  }

  bool expect(TokKind K, const char *What) {
    if (Tok.Kind != K) {
      error(std::string("expected ") + What);
      return false;
    }
    advance();
    return true;
  }

  bool expectWord(const char *W) {
    if (Tok.Kind != TokKind::Word || Tok.Text != W) {
      error(std::string("expected '") + W + "'");
      return false;
    }
    advance();
    return true;
  }

  /// Parses a type name token ("void", "i32", "float", "ptr").
  Type *parseType() {
    if (Tok.Kind != TokKind::Word) {
      error("expected type");
      return nullptr;
    }
    std::string N = Tok.Text;
    advance();
    if (N == "void")
      return Ctx.getVoidTy();
    if (N == "float")
      return Ctx.getFloatTy();
    if (N == "ptr")
      return Ctx.getPtrTy();
    if (N.size() >= 2 && N[0] == 'i') {
      unsigned Bits = std::atoi(N.c_str() + 1);
      if (Bits == 1 || Bits == 8 || Bits == 16 || Bits == 32 || Bits == 64)
        return Ctx.getIntTy(Bits);
    }
    error("unknown type '" + N + "'");
    return nullptr;
  }

  //===------------------------------------------------------------------===//
  // Globals and declarations
  //===------------------------------------------------------------------===//

  Constant *parseConstantLiteral(Type *Ty) {
    if (Tok.Kind == TokKind::IntLit) {
      int64_t V = Tok.IntVal;
      advance();
      if (Ty->isFloat())
        return Ctx.getFloat(static_cast<double>(V));
      if (!Ty->isInteger()) {
        error("integer literal for non-integer type");
        return nullptr;
      }
      return Ctx.getInt(Ty, V);
    }
    if (Tok.Kind == TokKind::FloatLit) {
      double V = Tok.FloatVal;
      advance();
      if (!Ty->isFloat()) {
        error("float literal for non-float type");
        return nullptr;
      }
      return Ctx.getFloat(V);
    }
    if (Tok.Kind == TokKind::Word && Tok.Text == "null") {
      advance();
      return Ctx.getNullPtr();
    }
    if (Tok.Kind == TokKind::Word && Tok.Text == "undef") {
      advance();
      return Ctx.getUndef(Ty);
    }
    if (Tok.Kind == TokKind::Word && Tok.Text == "true") {
      advance();
      return Ctx.getTrue();
    }
    if (Tok.Kind == TokKind::Word && Tok.Text == "false") {
      advance();
      return Ctx.getFalse();
    }
    error("expected constant literal");
    return nullptr;
  }

  void parseGlobal() {
    std::string Name = Tok.Text;
    advance();
    if (!expect(TokKind::Equal, "'='"))
      return;
    bool IsConstant = false;
    if (Tok.Kind == TokKind::Word && Tok.Text == "constant")
      IsConstant = true;
    else if (!(Tok.Kind == TokKind::Word && Tok.Text == "global")) {
      error("expected 'global' or 'constant'");
      return;
    }
    advance();
    Type *Ty = parseType();
    if (!Ty)
      return;
    Constant *Init = nullptr;
    if (Tok.Kind == TokKind::IntLit || Tok.Kind == TokKind::FloatLit ||
        (Tok.Kind == TokKind::Word &&
         (Tok.Text == "null" || Tok.Text == "undef" || Tok.Text == "true" ||
          Tok.Text == "false"))) {
      Init = parseConstantLiteral(Ty);
      if (!Init)
        return;
    }
    M->createGlobal(Ty, Name, Init, IsConstant);
  }

  void parseDeclare() {
    advance(); // 'declare'
    Type *RetTy = parseType();
    if (!RetTy)
      return;
    if (Tok.Kind != TokKind::GlobalId) {
      error("expected function name");
      return;
    }
    std::string Name = Tok.Text;
    advance();
    if (!expect(TokKind::LParen, "'('"))
      return;
    std::vector<Type *> Params;
    if (Tok.Kind != TokKind::RParen) {
      while (true) {
        Type *P = parseType();
        if (!P)
          return;
        Params.push_back(P);
        // Parameter names are optional in declarations.
        if (Tok.Kind == TokKind::LocalId)
          advance();
        if (Tok.Kind == TokKind::Comma) {
          advance();
          continue;
        }
        break;
      }
    }
    if (!expect(TokKind::RParen, "')'"))
      return;
    Function *F =
        M->createFunction(Ctx.getFunctionTy(RetTy, std::move(Params)), Name);
    while (Tok.Kind == TokKind::Word) {
      if (Tok.Text == "readonly")
        F->setMemoryEffect(MemoryEffect::ReadOnly);
      else if (Tok.Text == "readnone")
        F->setMemoryEffect(MemoryEffect::ReadNone);
      else
        break;
      advance();
    }
  }

  //===------------------------------------------------------------------===//
  // Function bodies
  //===------------------------------------------------------------------===//

  struct BodyState {
    Function *F = nullptr;
    std::map<std::string, Value *> Locals;
    std::map<std::string, BasicBlock *> Blocks;
    /// Blocks in label-definition order (textual order), for reordering.
    std::vector<BasicBlock *> DefinitionOrder;
    // (user, operand index, name, expected type) fixups for forward refs.
    struct Fixup {
      Instruction *I;
      unsigned OpIdx;
      std::string Name;
      Type *Ty;
      unsigned Line;
    };
    std::vector<Fixup> Fixups;
  };

  BasicBlock *getOrCreateBlock(BodyState &S, const std::string &Name) {
    auto It = S.Blocks.find(Name);
    if (It != S.Blocks.end())
      return It->second;
    BasicBlock *BB = S.F->createBlock(Name);
    S.Blocks[Name] = BB;
    return BB;
  }

  void defineLocal(BodyState &S, const std::string &Name, Value *V) {
    if (!S.Locals.emplace(Name, V).second) {
      error("redefinition of %" + Name);
      return;
    }
    V->setName(Name);
  }

  /// Parses a value reference of the given type; returns undef + fixup if
  /// the local is not yet defined.
  Value *parseValueRef(BodyState &S, Type *Ty, Instruction *PendingUser,
                       std::vector<std::pair<unsigned, std::string>> *Defer,
                       unsigned OpIdx) {
    (void)PendingUser;
    if (Tok.Kind == TokKind::LocalId) {
      std::string Name = Tok.Text;
      unsigned Line = Tok.Line;
      advance();
      auto It = S.Locals.find(Name);
      if (It != S.Locals.end()) {
        if (It->second->getType() != Ty) {
          Tok.Line = Line;
          error("type mismatch for %" + Name);
          return nullptr;
        }
        return It->second;
      }
      if (Defer)
        Defer->push_back({OpIdx, Name});
      return Ctx.getUndef(Ty);
    }
    if (Tok.Kind == TokKind::GlobalId) {
      std::string Name = Tok.Text;
      advance();
      if (GlobalVariable *G = M->getGlobal(Name))
        return G;
      if (Function *F = M->getFunction(Name))
        return F;
      error("unknown global @" + Name);
      return nullptr;
    }
    return parseConstantLiteral(Ty);
  }

  /// Parses "<type> <value>".
  Value *parseTypedValue(BodyState &S,
                         std::vector<std::pair<unsigned, std::string>> *Defer,
                         unsigned OpIdx) {
    Type *Ty = parseType();
    if (!Ty)
      return nullptr;
    return parseValueRef(S, Ty, nullptr, Defer, OpIdx);
  }

  void parseDefine() {
    advance(); // 'define'
    Type *RetTy = parseType();
    if (!RetTy)
      return;
    if (Tok.Kind != TokKind::GlobalId) {
      error("expected function name");
      return;
    }
    std::string Name = Tok.Text;
    advance();
    if (!expect(TokKind::LParen, "'('"))
      return;
    std::vector<Type *> Params;
    std::vector<std::string> ParamNames;
    if (Tok.Kind != TokKind::RParen) {
      while (true) {
        Type *P = parseType();
        if (!P)
          return;
        Params.push_back(P);
        if (Tok.Kind != TokKind::LocalId) {
          error("expected parameter name");
          return;
        }
        ParamNames.push_back(Tok.Text);
        advance();
        if (Tok.Kind == TokKind::Comma) {
          advance();
          continue;
        }
        break;
      }
    }
    if (!expect(TokKind::RParen, "')'"))
      return;
    if (!expect(TokKind::LBrace, "'{'"))
      return;

    BodyState S;
    S.F =
        M->createFunction(Ctx.getFunctionTy(RetTy, std::move(Params)), Name);
    for (unsigned I = 0, E = ParamNames.size(); I != E; ++I)
      defineLocal(S, ParamNames[I], S.F->getArg(I));

    BasicBlock *CurBB = nullptr;
    while (Err.empty() && Tok.Kind != TokKind::RBrace &&
           Tok.Kind != TokKind::Eof) {
      // Block label?
      if (Tok.Kind == TokKind::Word) {
        // Look ahead: "name:" introduces a block. Otherwise it is an opcode
        // of a void instruction (store/br/ret/unreachable/call void).
        if (isBlockLabelAhead()) {
          std::string BlockName = Tok.Text;
          advance();
          expect(TokKind::Colon, "':'");
          CurBB = getOrCreateBlock(S, BlockName);
          if (!CurBB->empty() ||
              std::find(S.DefinitionOrder.begin(), S.DefinitionOrder.end(),
                        CurBB) != S.DefinitionOrder.end()) {
            error("block %" + BlockName + " defined twice");
            return;
          }
          S.DefinitionOrder.push_back(CurBB);
          continue;
        }
      }
      if (!CurBB) {
        error("instruction before first block label");
        return;
      }
      parseInstruction(S, CurBB);
    }
    expect(TokKind::RBrace, "'}'");
    if (!Err.empty())
      return;
    if (S.DefinitionOrder.size() != S.F->getNumBlocks()) {
      error("branch to undefined block");
      return;
    }
    S.F->reorderBlocks(S.DefinitionOrder);
    resolveFixups(S);
  }

  /// Returns true if the current Word token is followed by ':' (peeks by
  /// re-lexing; our lexer is cheap enough to clone).
  bool isBlockLabelAhead() {
    Lexer Copy = Lex;
    Token Next = Copy.next();
    return Next.Kind == TokKind::Colon;
  }

  void resolveFixups(BodyState &S) {
    for (const auto &Fix : S.Fixups) {
      auto It = S.Locals.find(Fix.Name);
      if (It == S.Locals.end()) {
        std::ostringstream OS;
        OS << "line " << Fix.Line << ": undefined value %" << Fix.Name;
        if (Err.empty())
          Err = OS.str();
        return;
      }
      if (It->second->getType() != Fix.Ty) {
        if (Err.empty())
          Err = "type mismatch resolving %" + Fix.Name;
        return;
      }
      Fix.I->setOperand(Fix.OpIdx, It->second);
    }
  }

  /// Records deferred operands of \p I as fixups to resolve at function end.
  void recordFixups(BodyState &S, Instruction *I,
                    const std::vector<std::pair<unsigned, std::string>> &Defer,
                    unsigned Line) {
    for (const auto &[OpIdx, Name] : Defer)
      S.Fixups.push_back(
          {I, OpIdx, Name, I->getOperand(OpIdx)->getType(), Line});
  }

  void parseInstruction(BodyState &S, BasicBlock *BB) {
    unsigned Line = Tok.Line;
    std::string ResultName;
    bool HasResult = false;
    if (Tok.Kind == TokKind::LocalId) {
      ResultName = Tok.Text;
      HasResult = true;
      advance();
      if (!expect(TokKind::Equal, "'='"))
        return;
    }
    if (Tok.Kind != TokKind::Word) {
      error("expected opcode");
      return;
    }
    std::string Op = Tok.Text;
    advance();

    std::vector<std::pair<unsigned, std::string>> Defer;
    Instruction *I = parseInstructionBody(S, BB, Op, Defer);
    if (!I)
      return;
    if (HasResult) {
      if (I->getType()->isVoid()) {
        error("void instruction cannot have a result name");
        return;
      }
      defineLocal(S, ResultName, I);
    }
    recordFixups(S, I, Defer, Line);
  }

  Instruction *
  parseInstructionBody(BodyState &S, BasicBlock *BB, const std::string &Op,
                       std::vector<std::pair<unsigned, std::string>> &Defer) {
    // Parsed instructions live in the owning function's body arena.
    Arena &IArena = BB->getParent()->bodyArena();
    // Binary operators.
    static const std::map<std::string, Opcode> BinOps = {
        {"add", Opcode::Add},   {"sub", Opcode::Sub},
        {"mul", Opcode::Mul},   {"sdiv", Opcode::SDiv},
        {"udiv", Opcode::UDiv}, {"srem", Opcode::SRem},
        {"urem", Opcode::URem}, {"shl", Opcode::Shl},
        {"lshr", Opcode::LShr}, {"ashr", Opcode::AShr},
        {"and", Opcode::And},   {"or", Opcode::Or},
        {"xor", Opcode::Xor},   {"fadd", Opcode::FAdd},
        {"fsub", Opcode::FSub}, {"fmul", Opcode::FMul},
        {"fdiv", Opcode::FDiv}};
    auto BinIt = BinOps.find(Op);
    if (BinIt != BinOps.end()) {
      Type *Ty = parseType();
      if (!Ty)
        return nullptr;
      Value *L = parseValueRef(S, Ty, nullptr, &Defer, 0);
      if (!L || !expect(TokKind::Comma, "','"))
        return nullptr;
      Value *R = parseValueRef(S, Ty, nullptr, &Defer, 1);
      if (!R)
        return nullptr;
      auto *I = IArena.create<BinaryOperator>(BinIt->second, L, R);
      BB->append(I);
      return I;
    }

    if (Op == "icmp") {
      static const std::map<std::string, ICmpPred> Preds = {
          {"eq", ICmpPred::EQ},   {"ne", ICmpPred::NE},
          {"slt", ICmpPred::SLT}, {"sle", ICmpPred::SLE},
          {"sgt", ICmpPred::SGT}, {"sge", ICmpPred::SGE},
          {"ult", ICmpPred::ULT}, {"ule", ICmpPred::ULE},
          {"ugt", ICmpPred::UGT}, {"uge", ICmpPred::UGE}};
      if (Tok.Kind != TokKind::Word || !Preds.count(Tok.Text)) {
        error("expected icmp predicate");
        return nullptr;
      }
      ICmpPred P = Preds.at(Tok.Text);
      advance();
      Type *Ty = parseType();
      if (!Ty)
        return nullptr;
      Value *L = parseValueRef(S, Ty, nullptr, &Defer, 0);
      if (!L || !expect(TokKind::Comma, "','"))
        return nullptr;
      Value *R = parseValueRef(S, Ty, nullptr, &Defer, 1);
      if (!R)
        return nullptr;
      auto *I = IArena.create<ICmpInst>(P, L, R, Ctx.getInt1Ty());
      BB->append(I);
      return I;
    }

    if (Op == "fcmp") {
      static const std::map<std::string, FCmpPred> Preds = {
          {"oeq", FCmpPred::OEQ}, {"one", FCmpPred::ONE},
          {"olt", FCmpPred::OLT}, {"ole", FCmpPred::OLE},
          {"ogt", FCmpPred::OGT}, {"oge", FCmpPred::OGE}};
      if (Tok.Kind != TokKind::Word || !Preds.count(Tok.Text)) {
        error("expected fcmp predicate");
        return nullptr;
      }
      FCmpPred P = Preds.at(Tok.Text);
      advance();
      Type *Ty = parseType();
      if (!Ty)
        return nullptr;
      Value *L = parseValueRef(S, Ty, nullptr, &Defer, 0);
      if (!L || !expect(TokKind::Comma, "','"))
        return nullptr;
      Value *R = parseValueRef(S, Ty, nullptr, &Defer, 1);
      if (!R)
        return nullptr;
      auto *I = IArena.create<FCmpInst>(P, L, R, Ctx.getInt1Ty());
      BB->append(I);
      return I;
    }

    if (Op == "trunc" || Op == "zext" || Op == "sext") {
      Opcode CastOp = Op == "trunc"  ? Opcode::Trunc
                      : Op == "zext" ? Opcode::ZExt
                                     : Opcode::SExt;
      Value *Src = parseTypedValue(S, &Defer, 0);
      if (!Src || !expectWord("to"))
        return nullptr;
      Type *DstTy = parseType();
      if (!DstTy)
        return nullptr;
      auto *I = IArena.create<CastInst>(CastOp, Src, DstTy);
      BB->append(I);
      return I;
    }

    if (Op == "select") {
      if (!expectWord("i1"))
        return nullptr;
      Value *C = parseValueRef(S, Ctx.getInt1Ty(), nullptr, &Defer, 0);
      if (!C || !expect(TokKind::Comma, "','"))
        return nullptr;
      Value *T = parseTypedValue(S, &Defer, 1);
      if (!T || !expect(TokKind::Comma, "','"))
        return nullptr;
      Value *F = parseTypedValue(S, &Defer, 2);
      if (!F)
        return nullptr;
      if (F->getType() != T->getType()) {
        error("select arm type mismatch");
        return nullptr;
      }
      auto *I = IArena.create<SelectInst>(C, T, F);
      BB->append(I);
      return I;
    }

    if (Op == "alloca") {
      Type *Ty = parseType();
      if (!Ty)
        return nullptr;
      Value *Count = Ctx.getInt64(1);
      if (Tok.Kind == TokKind::Comma) {
        advance();
        Count = parseTypedValue(S, &Defer, 0);
        if (!Count)
          return nullptr;
      }
      auto *I = IArena.create<AllocaInst>(Ty, Count, Ctx.getPtrTy());
      BB->append(I);
      return I;
    }

    if (Op == "load") {
      Type *Ty = parseType();
      if (!Ty || !expect(TokKind::Comma, "','") || !expectWord("ptr"))
        return nullptr;
      Value *Ptr = parseValueRef(S, Ctx.getPtrTy(), nullptr, &Defer, 0);
      if (!Ptr)
        return nullptr;
      auto *I = IArena.create<LoadInst>(Ty, Ptr);
      BB->append(I);
      return I;
    }

    if (Op == "store") {
      Value *V = parseTypedValue(S, &Defer, 0);
      if (!V || !expect(TokKind::Comma, "','") || !expectWord("ptr"))
        return nullptr;
      Value *Ptr = parseValueRef(S, Ctx.getPtrTy(), nullptr, &Defer, 1);
      if (!Ptr)
        return nullptr;
      auto *I = IArena.create<StoreInst>(V, Ptr, Ctx.getVoidTy());
      BB->append(I);
      return I;
    }

    if (Op == "getelementptr") {
      Type *ElemTy = parseType();
      if (!ElemTy || !expect(TokKind::Comma, "','") || !expectWord("ptr"))
        return nullptr;
      Value *Base = parseValueRef(S, Ctx.getPtrTy(), nullptr, &Defer, 0);
      if (!Base || !expect(TokKind::Comma, "','"))
        return nullptr;
      Value *Idx = parseTypedValue(S, &Defer, 1);
      if (!Idx)
        return nullptr;
      auto *I = IArena.create<GEPInst>(ElemTy, Base, Idx, Ctx.getPtrTy());
      BB->append(I);
      return I;
    }

    if (Op == "call") {
      Type *RetTy = parseType();
      if (!RetTy)
        return nullptr;
      if (Tok.Kind != TokKind::GlobalId) {
        error("expected callee name");
        return nullptr;
      }
      Function *Callee = M->getFunction(Tok.Text);
      if (!Callee) {
        error("unknown function @" + Tok.Text);
        return nullptr;
      }
      advance();
      if (!expect(TokKind::LParen, "'('"))
        return nullptr;
      std::vector<Value *> Args;
      if (Tok.Kind != TokKind::RParen) {
        while (true) {
          Value *A = parseTypedValue(S, &Defer, Args.size());
          if (!A)
            return nullptr;
          Args.push_back(A);
          if (Tok.Kind == TokKind::Comma) {
            advance();
            continue;
          }
          break;
        }
      }
      if (!expect(TokKind::RParen, "')'"))
        return nullptr;
      auto *I = IArena.create<CallInst>(Callee, std::move(Args), RetTy);
      BB->append(I);
      return I;
    }

    if (Op == "phi") {
      Type *Ty = parseType();
      if (!Ty)
        return nullptr;
      auto *P = IArena.create<PhiNode>(Ty);
      BB->append(P);
      unsigned Idx = 0;
      while (true) {
        if (!expect(TokKind::LBracket, "'['")) {
          return P; // error already recorded
        }
        Value *V = parseValueRef(S, Ty, nullptr, &Defer, Idx);
        if (!V || !expect(TokKind::Comma, "','"))
          return P;
        if (Tok.Kind != TokKind::LocalId) {
          error("expected predecessor label");
          return P;
        }
        BasicBlock *Pred = getOrCreateBlock(S, Tok.Text);
        advance();
        if (!expect(TokKind::RBracket, "']'"))
          return P;
        P->addIncoming(V, Pred);
        ++Idx;
        if (Tok.Kind == TokKind::Comma) {
          advance();
          continue;
        }
        break;
      }
      return P;
    }

    if (Op == "br") {
      if (Tok.Kind == TokKind::Word && Tok.Text == "label") {
        advance();
        if (Tok.Kind != TokKind::LocalId) {
          error("expected target label");
          return nullptr;
        }
        BasicBlock *T = getOrCreateBlock(S, Tok.Text);
        advance();
        auto *I = IArena.create<BranchInst>(T, Ctx.getVoidTy());
        BB->append(I);
        return I;
      }
      if (!expectWord("i1"))
        return nullptr;
      Value *C = parseValueRef(S, Ctx.getInt1Ty(), nullptr, &Defer, 0);
      if (!C || !expect(TokKind::Comma, "','") || !expectWord("label"))
        return nullptr;
      if (Tok.Kind != TokKind::LocalId) {
        error("expected true label");
        return nullptr;
      }
      BasicBlock *T = getOrCreateBlock(S, Tok.Text);
      advance();
      if (!expect(TokKind::Comma, "','") || !expectWord("label"))
        return nullptr;
      if (Tok.Kind != TokKind::LocalId) {
        error("expected false label");
        return nullptr;
      }
      BasicBlock *F = getOrCreateBlock(S, Tok.Text);
      advance();
      auto *I = IArena.create<BranchInst>(C, T, F, Ctx.getVoidTy());
      BB->append(I);
      return I;
    }

    if (Op == "ret") {
      if (Tok.Kind == TokKind::Word && Tok.Text == "void") {
        advance();
        auto *I = IArena.create<ReturnInst>(nullptr, Ctx.getVoidTy());
        BB->append(I);
        return I;
      }
      Value *V = parseTypedValue(S, &Defer, 0);
      if (!V)
        return nullptr;
      auto *I = IArena.create<ReturnInst>(V, Ctx.getVoidTy());
      BB->append(I);
      return I;
    }

    if (Op == "unreachable") {
      auto *I = IArena.create<UnreachableInst>(Ctx.getVoidTy());
      BB->append(I);
      return I;
    }

    error("unknown opcode '" + Op + "'");
    return nullptr;
  }

  Context &Ctx;
  Lexer Lex;
  Token Tok;
  std::unique_ptr<Module> M;
  std::string Err;
};

} // namespace

ParseResult llvmmd::parseModule(Context &Ctx, std::string_view Text,
                                std::string ModuleName) {
  // Adopt the printer's "; ModuleID = '<name>'" header when the caller did
  // not name the module, so print/parse round-trips preserve identity.
  if (ModuleName == "module") {
    constexpr std::string_view Tag = "; ModuleID = '";
    size_t Pos = Text.find(Tag);
    if (Pos != std::string_view::npos) {
      size_t Start = Pos + Tag.size();
      size_t End = Text.find('\'', Start);
      if (End != std::string_view::npos)
        ModuleName = std::string(Text.substr(Start, End - Start));
    }
  }
  return Parser(Ctx, Text, std::move(ModuleName)).run();
}
