//===- LLInstructions.cpp - Instruction translator ------------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
// Pass 2 of the .ll importer: translates one function body's token range
// into mini-IR instructions. Mirrors the mini parser's forward-reference
// discipline (undef placeholder + fixup list resolved in post-processing)
// and lowers `switch` to an icmp-eq/condbr chain, recording the edge remap
// the phi post-process pass needs.
//
//===----------------------------------------------------------------------===//

#include "frontend/llvm/LLImporter.h"

#include "ir/Constant.h"

#include <algorithm>
#include <cctype>

using namespace llvmmd;

namespace {

/// Instruction-level flag words we drop: wrap/exactness flags, fast-math
/// flags, and `inbounds`-style gep decorations. None of these words can
/// start a type or an operand, so skipping them greedily is safe.
bool isInstFlagWord(const std::string &W) {
  static const char *Words[] = {
      "nuw",  "nsw",   "exact", "disjoint", "nneg",     "samesign",
      "fast", "nnan",  "ninf",  "nsz",      "arcp",     "contract",
      "afn",  "reassoc", "inbounds", "nusw", "volatile"};
  for (const char *K : Words)
    if (W == K)
      return true;
  return false;
}

/// Calling-convention words that may precede a call's return type.
bool isCallConvWord(const std::string &W) {
  if (W.size() > 2 && W.compare(W.size() - 2, 2, "cc") == 0)
    return true; // ccc, fastcc, coldcc, tailcc, swiftcc, webkit_jscc, ...
  return W == "cc"; // `cc 10` numbered conventions
}

struct IntOpEntry {
  const char *Word;
  Opcode Op;
};

const IntOpEntry IntOps[] = {
    {"add", Opcode::Add},   {"sub", Opcode::Sub},   {"mul", Opcode::Mul},
    {"sdiv", Opcode::SDiv}, {"udiv", Opcode::UDiv}, {"srem", Opcode::SRem},
    {"urem", Opcode::URem}, {"shl", Opcode::Shl},   {"lshr", Opcode::LShr},
    {"ashr", Opcode::AShr}, {"and", Opcode::And},   {"or", Opcode::Or},
    {"xor", Opcode::Xor},
};

const IntOpEntry FloatOps[] = {
    {"fadd", Opcode::FAdd},
    {"fsub", Opcode::FSub},
    {"fmul", Opcode::FMul},
    {"fdiv", Opcode::FDiv},
};

bool lookupOp(const IntOpEntry (&Table)[13], const std::string &W,
              Opcode &Out) {
  for (const auto &E : Table)
    if (W == E.Word) {
      Out = E.Op;
      return true;
    }
  return false;
}

bool lookupFloatOp(const std::string &W, Opcode &Out) {
  for (const auto &E : FloatOps)
    if (W == E.Word) {
      Out = E.Op;
      return true;
    }
  return false;
}

/// Opcodes that exist in LLVM but are beyond the modeled subset. Named so
/// the reject detail can quote them rather than claiming a syntax error.
bool isKnownUnsupportedOpcode(const std::string &W) {
  static const char *Words[] = {
      "frem",       "fptosi",    "fptoui",     "sitofp",      "uitofp",
      "ptrtoint",   "inttoptr",  "addrspacecast", "freeze",   "va_arg",
      "invoke",     "callbr",    "indirectbr", "resume",      "landingpad",
      "catchswitch", "catchpad", "cleanuppad", "catchret",    "cleanupret",
      "atomicrmw",  "cmpxchg",   "fence",      "extractvalue", "insertvalue",
      "extractelement", "insertelement", "shufflevector"};
  for (const char *K : Words)
    if (W == K)
      return true;
  return false;
}

} // namespace

//===----------------------------------------------------------------------===//
// Body-local helpers
//===----------------------------------------------------------------------===//

BasicBlock *LLImporter::getOrCreateBlock(Body &B, const std::string &Name) {
  auto It = B.Blocks.find(Name);
  if (It != B.Blocks.end())
    return It->second;
  std::string S = sanitizeName(Name);
  // Mini block labels must start with a letter or '_' to survive a reparse
  // (leading digits lex as numbers, leading '.' as a word-start edge case).
  if (S.empty() || !(std::isalpha(static_cast<unsigned char>(S[0])) ||
                     S[0] == '_'))
    S = "bb" + S;
  BasicBlock *BB = B.PF->F->createBlock(uniqueName(S, B.UsedBlockNames));
  B.Blocks.emplace(Name, BB);
  return BB;
}

void LLImporter::defineLocal(Body &B, const std::string &Name, Value *V,
                             bool Rename) {
  if (!B.Locals.emplace(Name, V).second)
    reject(llreject::SyntaxError, "redefinition of '%" + Name + "'");
  if (!Rename)
    return; // alias of an already-named value; renaming would corrupt it
  std::string S = sanitizeName(Name);
  if (S.empty())
    S = "v";
  V->setName(uniqueName(S, B.UsedValueNames));
}

Value *LLImporter::parseValueRef(Body &B, Type *Ty, DeferList *Defer,
                                 unsigned OpIdx) {
  if (tok().Kind == LLTok::LocalId) {
    std::string Name = tok().Text;
    auto It = B.Locals.find(Name);
    if (It != B.Locals.end()) {
      if (It->second->getType() != Ty)
        reject(llreject::SyntaxError,
               "type mismatch for '%" + Name + "'");
      advance();
      return It->second;
    }
    if (!Defer)
      reject(llreject::SyntaxError,
             "forward reference '%" + Name + "' in an unsupported position");
    advance();
    Defer->push_back({OpIdx, Name});
    return Ctx.getUndef(Ty);
  }
  if (tok().Kind == LLTok::GlobalId) {
    std::string Name = tok().Text;
    if (!Ty->isPointer())
      reject(llreject::UnsupportedConstant,
             "global '@" + Name + "' used at non-pointer type");
    auto GIt = GlobalByName.find(Name);
    if (GIt != GlobalByName.end()) {
      advance();
      return GIt->second;
    }
    if (UnsupportedGlobals.count(Name))
      reject(llreject::UnsupportedConstant,
             "use of unsupported global '@" + Name + "'");
    if (FnByName.count(Name) || BadCallees.count(Name))
      reject(llreject::UnsupportedConstant,
             "function address '@" + Name + "'");
    reject(llreject::UnsupportedConstant, "unknown global '@" + Name + "'");
  }
  return parseConstantLiteral(Ty);
}

Value *LLImporter::parseTypedValue(Body &B, DeferList *Defer, unsigned OpIdx) {
  Type *Ty = parseType();
  return parseValueRef(B, Ty, Defer, OpIdx);
}

void LLImporter::recordFixups(Body &B, Instruction *I, const DeferList &Defer,
                              unsigned Line) {
  for (const auto &D : Defer)
    B.Fixups.push_back(
        {I, D.first, D.second, I->getOperand(D.first)->getType(), Line});
}

//===----------------------------------------------------------------------===//
// Body driver
//===----------------------------------------------------------------------===//

void LLImporter::translateBody(PendingFn &PF) {
  Body B;
  B.PF = &PF;
  Function *F = PF.F;

  // Arguments: the header recorded the .ll names (possibly empty for
  // clang's unnamed %0/%1/... which number sequentially from 0).
  unsigned AutoNum = 0;
  for (unsigned I = 0; I < F->getNumArgs(); ++I) {
    std::string Orig = PF.ArgNames[I];
    if (Orig.empty())
      Orig = std::to_string(AutoNum++);
    defineLocal(B, Orig, F->getArg(I));
  }

  IRBuilder Builder(Ctx);
  Cur = PF.BodyBegin;
  while (Cur < PF.BodyEnd) {
    // Block label: `name:` where name lexes as a word, number or string.
    if ((tok().Kind == LLTok::Word || tok().Kind == LLTok::Int ||
         tok().Kind == LLTok::Str) &&
        tok(1).Kind == LLTok::Colon) {
      std::string Label = tok().Text;
      advance();
      advance();
      BasicBlock *BB = getOrCreateBlock(B, Label);
      if (std::find(B.Order.begin(), B.Order.end(), BB) != B.Order.end())
        reject(llreject::SyntaxError, "label '" + Label + "' defined twice");
      B.Order.push_back(BB);
      Builder.setInsertPoint(BB);
      continue;
    }
    if (!Builder.getInsertBlock()) {
      // Unlabeled entry block (clang numbers it; nothing may branch to it,
      // so it needs no Blocks-map entry).
      BasicBlock *BB = F->createBlock(uniqueName("entry", B.UsedBlockNames));
      B.Order.push_back(BB);
      Builder.setInsertPoint(BB);
    }
    translateInstruction(B, Builder);
  }
  postProcessFunction(B);
}

void LLImporter::translateInstruction(Body &B, IRBuilder &Builder) {
  unsigned StartLine = tok().Line;
  std::string ResultName;
  bool HasResult = false;
  if (tok().Kind == LLTok::LocalId) {
    ResultName = tok().Text;
    HasResult = true;
    advance();
    expectTok(LLTok::Equals, "'='");
  }
  // Call markers precede the opcode.
  while (isWord("tail") || isWord("musttail") || isWord("notail"))
    advance();
  if (tok().Kind != LLTok::Word)
    fatal("expected opcode");
  std::string Op = tok().Text;
  unsigned OpLine = tok().Line;
  advance();

  DeferList Defer;
  Value *Alias = nullptr;
  Instruction *I = translateOpcode(B, Builder, Op, Defer, &Alias);

  if (Alias) {
    if (!HasResult)
      reject(llreject::SyntaxError, "'" + Op + "' without a result name");
    defineLocal(B, ResultName, Alias, /*Rename=*/false);
  } else if (HasResult) {
    if (!I || I->getType()->isVoid())
      reject(llreject::SyntaxError,
             "void instruction '" + Op + "' with a result name");
    defineLocal(B, ResultName, I);
  }
  if (I)
    recordFixups(B, I, Defer, StartLine);

  // Drop the `, align 4`, `, !tbaa !8`, `#2`, `!dbg !10` line trailer.
  unsigned EndLine = Cur ? Toks[Cur - 1].Line : OpLine;
  skipLineTail(EndLine, B.PF->BodyEnd);
}

//===----------------------------------------------------------------------===//
// Opcode dispatch
//===----------------------------------------------------------------------===//

Instruction *LLImporter::translateOpcode(Body &B, IRBuilder &Builder,
                                         const std::string &Op,
                                         DeferList &Defer,
                                         Value **AliasResult) {
  auto skipFlags = [&] {
    while (tok().Kind == LLTok::Word && isInstFlagWord(tok().Text))
      advance();
  };

  Opcode BinOp;
  if (lookupOp(IntOps, Op, BinOp)) {
    skipFlags();
    Type *Ty = parseType();
    if (!Ty->isInteger())
      reject(llreject::SyntaxError, "'" + Op + "' on non-integer type");
    Value *L = parseValueRef(B, Ty, &Defer, 0);
    expectTok(LLTok::Comma, "','");
    Value *R = parseValueRef(B, Ty, &Defer, 1);
    return static_cast<Instruction *>(Builder.createBinary(BinOp, L, R));
  }

  if (lookupFloatOp(Op, BinOp)) {
    skipFlags();
    Type *Ty = parseType();
    if (!Ty->isFloat())
      reject(llreject::SyntaxError, "'" + Op + "' on non-float type");
    Value *L = parseValueRef(B, Ty, &Defer, 0);
    expectTok(LLTok::Comma, "','");
    Value *R = parseValueRef(B, Ty, &Defer, 1);
    return static_cast<Instruction *>(Builder.createBinary(BinOp, L, R));
  }

  if (Op == "fneg") {
    // fneg x == fsub -0.0, x in the mini-IR (no fneg opcode).
    skipFlags();
    Type *Ty = parseType();
    if (!Ty->isFloat())
      reject(llreject::SyntaxError, "'fneg' on non-float type");
    Value *X = parseValueRef(B, Ty, &Defer, 1);
    return static_cast<Instruction *>(
        Builder.createBinary(Opcode::FSub, Ctx.getFloat(-0.0), X));
  }

  if (Op == "icmp") {
    skipFlags(); // samesign
    if (tok().Kind != LLTok::Word)
      fatal("expected icmp predicate");
    std::string P = tok().Text;
    ICmpPred Pred;
    if (P == "eq")
      Pred = ICmpPred::EQ;
    else if (P == "ne")
      Pred = ICmpPred::NE;
    else if (P == "slt")
      Pred = ICmpPred::SLT;
    else if (P == "sle")
      Pred = ICmpPred::SLE;
    else if (P == "sgt")
      Pred = ICmpPred::SGT;
    else if (P == "sge")
      Pred = ICmpPred::SGE;
    else if (P == "ult")
      Pred = ICmpPred::ULT;
    else if (P == "ule")
      Pred = ICmpPred::ULE;
    else if (P == "ugt")
      Pred = ICmpPred::UGT;
    else if (P == "uge")
      Pred = ICmpPred::UGE;
    else
      reject(llreject::UnsupportedPredicate, "icmp predicate '" + P + "'");
    advance();
    Type *Ty = parseType();
    if (!Ty->isInteger() && !Ty->isPointer())
      reject(llreject::SyntaxError, "'icmp' on non-integer type");
    Value *L = parseValueRef(B, Ty, &Defer, 0);
    expectTok(LLTok::Comma, "','");
    Value *R = parseValueRef(B, Ty, &Defer, 1);
    return static_cast<Instruction *>(Builder.createICmp(Pred, L, R));
  }

  if (Op == "fcmp") {
    skipFlags(); // fast-math flags
    if (tok().Kind != LLTok::Word)
      fatal("expected fcmp predicate");
    std::string P = tok().Text;
    FCmpPred Pred;
    if (P == "oeq")
      Pred = FCmpPred::OEQ;
    else if (P == "one")
      Pred = FCmpPred::ONE;
    else if (P == "olt")
      Pred = FCmpPred::OLT;
    else if (P == "ole")
      Pred = FCmpPred::OLE;
    else if (P == "ogt")
      Pred = FCmpPred::OGT;
    else if (P == "oge")
      Pred = FCmpPred::OGE;
    else
      // ord/uno and the unordered u* family have no mini-IR counterpart.
      reject(llreject::UnsupportedPredicate, "fcmp predicate '" + P + "'");
    advance();
    Type *Ty = parseType();
    if (!Ty->isFloat())
      reject(llreject::SyntaxError, "'fcmp' on non-float type");
    Value *L = parseValueRef(B, Ty, &Defer, 0);
    expectTok(LLTok::Comma, "','");
    Value *R = parseValueRef(B, Ty, &Defer, 1);
    return static_cast<Instruction *>(Builder.createFCmp(Pred, L, R));
  }

  if (Op == "trunc" || Op == "zext" || Op == "sext") {
    skipFlags(); // nuw/nsw on trunc, nneg on zext
    Type *SrcTy = parseType();
    Value *Src = parseValueRef(B, SrcTy, &Defer, 0);
    if (!eatWord("to"))
      fatal("expected 'to' in cast");
    Type *DstTy = parseType();
    if (!SrcTy->isInteger() || !DstTy->isInteger())
      reject(llreject::SyntaxError, "'" + Op + "' on non-integer type");
    Opcode CastOp = Op == "trunc"  ? Opcode::Trunc
                    : Op == "zext" ? Opcode::ZExt
                                   : Opcode::SExt;
    return static_cast<Instruction *>(Builder.createCast(CastOp, Src, DstTy));
  }

  if (Op == "fpext" || Op == "fptrunc" || Op == "bitcast") {
    // float and double are one mini-IR type, so fpext/fptrunc — and a
    // bitcast whose translated source and destination types coincide —
    // are representation no-ops: the result aliases the operand.
    Type *SrcTy = parseType();
    size_t DeferBefore = Defer.size();
    Value *Src = parseValueRef(B, SrcTy, &Defer, 0);
    if (!eatWord("to"))
      fatal("expected 'to' in cast");
    Type *DstTy = parseType();
    if (Op != "bitcast" && (!SrcTy->isFloat() || !DstTy->isFloat()))
      reject(llreject::SyntaxError, "'" + Op + "' on non-float type");
    if (SrcTy != DstTy)
      reject(llreject::UnsupportedInstruction,
             "bitcast between differently-represented types");
    if (Defer.size() != DeferBefore)
      // An alias has no instruction to fix up later.
      reject(llreject::SyntaxError,
             "forward reference through a no-op cast");
    *AliasResult = Src;
    return nullptr;
  }

  if (Op == "select") {
    skipFlags();
    Type *CondTy = parseType();
    if (!CondTy->isInteger() || CondTy->getBitWidth() != 1)
      reject(llreject::SyntaxError, "'select' condition is not i1");
    Value *C = parseValueRef(B, CondTy, &Defer, 0);
    expectTok(LLTok::Comma, "','");
    Type *TTy = parseType();
    Value *T = parseValueRef(B, TTy, &Defer, 1);
    expectTok(LLTok::Comma, "','");
    Type *FTy = parseType();
    if (FTy != TTy)
      reject(llreject::SyntaxError, "'select' arm type mismatch");
    Value *F = parseValueRef(B, FTy, &Defer, 2);
    return static_cast<Instruction *>(Builder.createSelect(C, T, F));
  }

  if (Op == "alloca") {
    skipFlags(); // inalloca is a param attr, but tolerate flags anyway
    LLType TA = parseTypeOrArray();
    if (TA.Ty->isVoid())
      reject(llreject::SyntaxError, "'alloca' of void");
    Value *Count = nullptr;
    Type *CountTy = nullptr;
    if (tok().Kind == LLTok::Comma && tok(1).Kind == LLTok::Word &&
        tok(1).Text != "align" && tok(1).Text != "addrspace") {
      advance();
      CountTy = parseType();
      if (!CountTy->isInteger())
        reject(llreject::SyntaxError, "'alloca' count is not an integer");
      Count = parseValueRef(B, CountTy, nullptr, 0);
    }
    if (TA.IsArray) {
      // Flatten [N x T] to N consecutive T slots.
      if (!Count) {
        Count = Ctx.getInt64(static_cast<int64_t>(TA.Count));
      } else if (auto *CI = dyn_cast<ConstantInt>(Count)) {
        Count = Ctx.getInt(CountTy,
                           CI->getSExtValue() *
                               static_cast<int64_t>(TA.Count));
      } else {
        Count = Builder.createMul(
            Count, Ctx.getInt(CountTy, static_cast<int64_t>(TA.Count)));
      }
    }
    return static_cast<Instruction *>(Builder.createAlloca(TA.Ty, Count));
  }

  if (Op == "load") {
    skipFlags(); // volatile
    if (isWord("atomic"))
      reject(llreject::UnsupportedInstruction, "atomic load");
    Type *Ty = parseType();
    if (Ty->isVoid())
      reject(llreject::SyntaxError, "'load' of void");
    expectTok(LLTok::Comma, "','");
    Type *PtrTy = parseType();
    if (!PtrTy->isPointer())
      reject(llreject::SyntaxError, "'load' address is not a pointer");
    Value *Ptr = parseValueRef(B, PtrTy, &Defer, 0);
    return static_cast<Instruction *>(Builder.createLoad(Ty, Ptr));
  }

  if (Op == "store") {
    skipFlags(); // volatile
    if (isWord("atomic"))
      reject(llreject::UnsupportedInstruction, "atomic store");
    Type *ValTy = parseType();
    Value *V = parseValueRef(B, ValTy, &Defer, 0);
    expectTok(LLTok::Comma, "','");
    Type *PtrTy = parseType();
    if (!PtrTy->isPointer())
      reject(llreject::SyntaxError, "'store' address is not a pointer");
    Value *Ptr = parseValueRef(B, PtrTy, &Defer, 1);
    return Builder.createStore(V, Ptr);
  }

  if (Op == "getelementptr")
    return translateGEP(B, Builder, Defer);

  if (Op == "call")
    return translateCall(B, Builder, Defer);

  if (Op == "phi") {
    skipFlags(); // fast-math flags on fp phis
    Type *Ty = parseType();
    if (Ty->isVoid())
      reject(llreject::SyntaxError, "'phi' of void");
    PhiNode *P = Builder.createPhi(Ty);
    unsigned Idx = 0;
    while (true) {
      expectTok(LLTok::LBracket, "'['");
      Value *V = parseValueRef(B, Ty, &Defer, Idx);
      expectTok(LLTok::Comma, "','");
      if (tok().Kind != LLTok::LocalId)
        fatal("expected block label in phi");
      BasicBlock *BB = getOrCreateBlock(B, tok().Text);
      advance();
      expectTok(LLTok::RBracket, "']'");
      P->addIncoming(V, BB);
      ++Idx;
      if (tok().Kind != LLTok::Comma || tok(1).Kind != LLTok::LBracket)
        break;
      advance();
    }
    return P;
  }

  if (Op == "br") {
    if (isWord("label")) {
      advance();
      if (tok().Kind != LLTok::LocalId)
        fatal("expected branch target");
      BasicBlock *T = getOrCreateBlock(B, tok().Text);
      advance();
      return Builder.createBr(T);
    }
    Type *CondTy = parseType();
    if (!CondTy->isInteger() || CondTy->getBitWidth() != 1)
      reject(llreject::SyntaxError, "'br' condition is not i1");
    Value *C = parseValueRef(B, CondTy, &Defer, 0);
    expectTok(LLTok::Comma, "','");
    if (!eatWord("label"))
      fatal("expected 'label'");
    if (tok().Kind != LLTok::LocalId)
      fatal("expected branch target");
    BasicBlock *T = getOrCreateBlock(B, tok().Text);
    advance();
    expectTok(LLTok::Comma, "','");
    if (!eatWord("label"))
      fatal("expected 'label'");
    if (tok().Kind != LLTok::LocalId)
      fatal("expected branch target");
    BasicBlock *F = getOrCreateBlock(B, tok().Text);
    advance();
    return Builder.createCondBr(C, T, F);
  }

  if (Op == "switch")
    return translateSwitch(B, Builder, Defer);

  if (Op == "ret") {
    if (isWord("void")) {
      advance();
      return Builder.createRet();
    }
    Type *Ty = parseType();
    Value *V = parseValueRef(B, Ty, &Defer, 0);
    return Builder.createRet(V);
  }

  if (Op == "unreachable")
    return Builder.createUnreachable();

  if (isKnownUnsupportedOpcode(Op))
    reject(llreject::UnsupportedInstruction, "'" + Op + "'");
  reject(llreject::SyntaxError, "unknown opcode '" + Op + "'");
}

//===----------------------------------------------------------------------===//
// getelementptr
//===----------------------------------------------------------------------===//

Instruction *LLImporter::translateGEP(Body &B, IRBuilder &Builder,
                                      DeferList &Defer) {
  while (tok().Kind == LLTok::Word && isInstFlagWord(tok().Text))
    advance();
  LLType TA = parseTypeOrArray();
  if (TA.Ty->isVoid())
    reject(llreject::SyntaxError, "'getelementptr' of void");
  expectTok(LLTok::Comma, "','");
  Type *BaseTy = parseType();
  if (!BaseTy->isPointer())
    reject(llreject::SyntaxError, "'getelementptr' base is not a pointer");
  Value *Base = parseValueRef(B, BaseTy, &Defer, 0);
  expectTok(LLTok::Comma, "','");

  auto moreIndices = [&] {
    return tok().Kind == LLTok::Comma &&
           (tok(1).Kind == LLTok::Word || tok(1).Kind == LLTok::LBracket ||
            tok(1).Kind == LLTok::Less || tok(1).Kind == LLTok::LBrace ||
            tok(1).Kind == LLTok::LocalId) &&
           !(tok(1).Kind == LLTok::Word && tok(1).Text == "align");
  };

  if (!TA.IsArray) {
    // `gep T, ptr %p, <ity> i` — maps 1:1 onto the mini single-index gep.
    Type *IdxTy = parseType();
    if (!IdxTy->isInteger())
      reject(llreject::UnsupportedType, "'getelementptr' index type");
    Value *Idx = parseValueRef(B, IdxTy, &Defer, 1);
    if (moreIndices())
      reject(llreject::MultiIndexGEP,
             "multiple indices into scalar type");
    return static_cast<Instruction *>(
        Builder.createGEP(TA.Ty, Base, Idx));
  }

  // `[N x T]` base: one index scales by N; the common `i64 0, <ity> i`
  // pair drops the leading zero; two general same-typed indices combine
  // as i0*N + i1. Forward references are refused here because the gep's
  // final index operand may be a derived mul/add, which fixups cannot
  // target.
  Type *I0Ty = parseType();
  if (!I0Ty->isInteger())
    reject(llreject::UnsupportedType, "'getelementptr' index type");
  Value *I0 = parseValueRef(B, I0Ty, nullptr, 0);
  if (!moreIndices()) {
    Value *Scaled = I0;
    if (TA.Count != 1) {
      if (auto *CI = dyn_cast<ConstantInt>(I0))
        Scaled = Ctx.getInt(I0Ty, CI->getSExtValue() *
                                      static_cast<int64_t>(TA.Count));
      else
        Scaled = Builder.createMul(
            I0, Ctx.getInt(I0Ty, static_cast<int64_t>(TA.Count)));
    }
    return static_cast<Instruction *>(
        Builder.createGEP(TA.Ty, Base, Scaled));
  }
  advance(); // ','
  Type *I1Ty = parseType();
  if (!I1Ty->isInteger())
    reject(llreject::UnsupportedType, "'getelementptr' index type");
  Value *I1 = parseValueRef(B, I1Ty, nullptr, 0);
  if (moreIndices())
    reject(llreject::MultiIndexGEP, "more than two indices");

  auto *C0 = dyn_cast<ConstantInt>(I0);
  if (C0 && C0->getSExtValue() == 0)
    return static_cast<Instruction *>(Builder.createGEP(TA.Ty, Base, I1));
  if (I0Ty != I1Ty)
    reject(llreject::MultiIndexGEP, "mixed index types");
  Value *Scaled;
  if (C0)
    Scaled = Ctx.getInt(I0Ty, C0->getSExtValue() *
                                  static_cast<int64_t>(TA.Count));
  else
    Scaled = Builder.createMul(
        I0, Ctx.getInt(I0Ty, static_cast<int64_t>(TA.Count)));
  Value *Off = Builder.createAdd(Scaled, I1);
  return static_cast<Instruction *>(Builder.createGEP(TA.Ty, Base, Off));
}

//===----------------------------------------------------------------------===//
// call
//===----------------------------------------------------------------------===//

Instruction *LLImporter::translateCall(Body &B, IRBuilder &Builder,
                                       DeferList &Defer) {
  while (tok().Kind == LLTok::Word &&
         (isInstFlagWord(tok().Text) || isCallConvWord(tok().Text)))
    advance();
  if (tok().Kind == LLTok::Int)
    advance(); // `cc 10` numbered convention
  skipParamAttrs(); // return-value attributes
  if (isWord("addrspace")) {
    advance();
    if (tok().Kind == LLTok::LParen) {
      advance();
      while (tok().Kind != LLTok::RParen && tok().Kind != LLTok::Eof)
        advance();
      expectTok(LLTok::RParen, "')'");
    }
  }

  Type *RetTy = parseType();
  if (tok().Kind == LLTok::LParen) {
    // Explicit function-type spelling `call i32 (ptr, ...) @printf(...)`:
    // scan the parameter list for an ellipsis to name the reason well.
    unsigned Depth = 1;
    bool SawEllipsis = false;
    advance();
    while (Depth && tok().Kind != LLTok::Eof) {
      if (tok().Kind == LLTok::LParen)
        ++Depth;
      else if (tok().Kind == LLTok::RParen)
        --Depth;
      else if (tok().Kind == LLTok::Ellipsis)
        SawEllipsis = true;
      advance();
    }
    if (SawEllipsis)
      reject(llreject::VarargsCall, "call through a varargs function type");
    reject(llreject::UnsupportedCallee, "function-typed call");
  }

  if (tok().Kind == LLTok::LocalId)
    reject(llreject::IndirectCall,
           "indirect call through '%" + tok().Text + "'");
  if (tok().Kind != LLTok::GlobalId)
    reject(llreject::UnsupportedCallee, "callee is not a function symbol");
  std::string Name = tok().Text;
  advance();

  auto BadIt = BadCallees.find(Name);
  if (BadIt != BadCallees.end())
    reject(BadIt->second, "call to unsupported '@" + Name + "'");
  auto FIt = FnByName.find(Name);
  if (FIt == FnByName.end())
    reject(llreject::UnsupportedCallee, "undeclared function '@" + Name + "'");
  Function *Callee = FIt->second;

  expectTok(LLTok::LParen, "'('");
  std::vector<Value *> Args;
  if (tok().Kind != LLTok::RParen) {
    while (true) {
      Type *ATy = parseType();
      skipParamAttrs();
      Value *A =
          parseValueRef(B, ATy, &Defer, static_cast<unsigned>(Args.size()));
      Args.push_back(A);
      if (tok().Kind != LLTok::Comma)
        break;
      advance();
    }
  }
  expectTok(LLTok::RParen, "')'");

  FunctionType *FTy = Callee->getFunctionType();
  bool Mismatch = RetTy != Callee->getReturnType() ||
                  Args.size() != FTy->getNumParams();
  if (!Mismatch)
    for (size_t I = 0; I < Args.size(); ++I)
      if (Args[I]->getType() != FTy->getParamType(static_cast<unsigned>(I)))
        Mismatch = true;
  if (Mismatch)
    reject(llreject::UnsupportedCallee,
           "signature mismatch calling '@" + Name + "'");

  return static_cast<Instruction *>(
      Builder.createCall(Callee, std::move(Args)));
}

//===----------------------------------------------------------------------===//
// switch (lowered to an icmp-eq/condbr chain)
//===----------------------------------------------------------------------===//

Instruction *LLImporter::translateSwitch(Body &B, IRBuilder &Builder,
                                         DeferList &Defer) {
  Type *Ty = parseType();
  if (!Ty->isInteger())
    reject(llreject::SyntaxError, "'switch' on non-integer type");
  DeferList CondDefer;
  Value *Cond = parseValueRef(B, Ty, &CondDefer, 0);
  expectTok(LLTok::Comma, "','");
  if (!eatWord("label"))
    fatal("expected 'label'");
  if (tok().Kind != LLTok::LocalId)
    fatal("expected switch default target");
  BasicBlock *Default = getOrCreateBlock(B, tok().Text);
  advance();
  expectTok(LLTok::LBracket, "'['");

  std::vector<std::pair<Constant *, BasicBlock *>> Cases;
  while (tok().Kind != LLTok::RBracket) {
    Type *CTy = parseType();
    if (CTy != Ty)
      reject(llreject::SyntaxError, "'switch' case type mismatch");
    Constant *C = parseConstantLiteral(CTy);
    expectTok(LLTok::Comma, "','");
    if (!eatWord("label"))
      fatal("expected 'label'");
    if (tok().Kind != LLTok::LocalId)
      fatal("expected switch case target");
    Cases.emplace_back(C, getOrCreateBlock(B, tok().Text));
    advance();
  }
  advance(); // ']'

  Function *F = B.PF->F;
  BasicBlock *Orig = Builder.getInsertBlock();
  if (Cases.empty()) {
    // Degenerate switch: just the default edge; no remap needed.
    Builder.createBr(Default);
    return nullptr;
  }

  Body::SwitchLower SL;
  SL.Orig = Orig;
  BasicBlock *CurBB = Orig;
  for (size_t I = 0; I < Cases.size(); ++I) {
    Builder.setInsertPoint(CurBB);
    Value *Cmp = Builder.createICmp(
        ICmpPred::EQ, Cond, Cases[I].first,
        uniqueName("sw.cmp", B.UsedValueNames));
    for (const auto &D : CondDefer)
      B.Fixups.push_back({static_cast<Instruction *>(Cmp), 0, D.second, Ty,
                          Toks[Cur ? Cur - 1 : 0].Line});
    BasicBlock *Next;
    if (I + 1 < Cases.size()) {
      Next = F->createBlock(uniqueName("sw.next", B.UsedBlockNames));
      B.Order.push_back(Next);
    } else {
      Next = Default;
    }
    Builder.createCondBr(Cmp, Cases[I].second, Next);
    SL.Edges.emplace_back(Cases[I].second, CurBB);
    if (I + 1 == Cases.size())
      SL.Edges.emplace_back(Default, CurBB);
    CurBB = Next;
  }
  B.Switches.push_back(std::move(SL));
  (void)Defer;
  return nullptr; // terminators are chained; fixups were recorded above
}
