//===- LLFrontend.h - Textual LLVM .ll subset importer ----------*- C++ -*-===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Public entry point of the `.ll`-subset importer: maps a practical subset
/// of real LLVM IR (i1/i8/i16/i32/i64, float/double, pointers, gep, phi,
/// br + switch-as-br, icmp/fcmp, binary ops, calls to known declarations,
/// globals with scalar/array initializers) onto the native mini-IR.
///
/// Unsupported constructs are rejected **per function**: the offending
/// function is demoted to a declaration and reported with a named reason
/// class (see `llreject`), while the rest of the module imports and
/// validates normally. Only malformed top-level structure fails the whole
/// module, with a line/column diagnostic.
///
/// Noise that real `clang`/`opt` output carries but the mini-IR does not
/// model — `target` lines, `source_filename`, attribute groups, metadata,
/// parameter/function attributes, `align`, `nsw`/`nuw`, fast-math flags —
/// is tolerated and dropped.
///
//===----------------------------------------------------------------------===//

#ifndef LLVMMD_FRONTEND_LLVM_LLFRONTEND_H
#define LLVMMD_FRONTEND_LLVM_LLFRONTEND_H

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace llvmmd {

class Context;
class Module;

/// The named reject-reason classes a function can be refused with. Reports
/// surface these verbatim (`unsupported_functions` accounting), so they are
/// stable strings, not an enum that would print as a number.
namespace llreject {
inline constexpr const char *VectorType = "vector-type";
inline constexpr const char *AggregateType = "aggregate-type";
inline constexpr const char *UnsupportedType = "unsupported-type";
inline constexpr const char *UnsupportedInstruction = "unsupported-instruction";
inline constexpr const char *UnsupportedPredicate = "unsupported-predicate";
inline constexpr const char *MultiIndexGEP = "multi-index-gep";
inline constexpr const char *IndirectCall = "indirect-call";
inline constexpr const char *VarargsCall = "varargs-call";
inline constexpr const char *UnsupportedCallee = "unsupported-callee";
inline constexpr const char *UnsupportedConstant = "unsupported-constant";
inline constexpr const char *SyntaxError = "syntax-error";
} // namespace llreject

/// One function the importer refused, with the reason class and a
/// human-readable detail ("fptosi", "fcmp predicate 'uno'", ...).
struct LLFunctionReject {
  std::string Function;
  std::string Reason; ///< one of the llreject:: classes
  std::string Detail;
  unsigned Line = 0; ///< 1-based source line of the offending construct
};

struct LLImportResult {
  /// The imported module; rejected functions are present as declarations
  /// so calls to them stay well-formed. Null only on a module-level error.
  std::unique_ptr<Module> M;
  /// Per-function rejections, in textual order.
  std::vector<LLFunctionReject> Rejected;
  /// Module-level diagnostic when !M.
  std::string Error;
  unsigned ErrorLine = 0;
  unsigned ErrorCol = 0;

  explicit operator bool() const { return M != nullptr; }
};

/// Imports `.ll` text. The returned module lives in \p Ctx, which must
/// outlive it. Never throws; per-function problems land in `Rejected`,
/// top-level problems in `Error`.
LLImportResult importLLModule(Context &Ctx, std::string_view Text,
                              std::string ModuleName = "module");

/// Content sniffer for format auto-detection: true when \p Text carries
/// constructs only real LLVM IR emits (target lines, attribute groups,
/// metadata, `align` suffixes, wrap flags, switch, array types, ...). The
/// mini-IR printer produces none of these, so "not LLVM-looking" text is
/// routed to the native parser.
bool looksLikeLLVMIR(std::string_view Text);

} // namespace llvmmd

#endif // LLVMMD_FRONTEND_LLVM_LLFRONTEND_H
