//===- LLLexer.cpp - Tokenizer for LLVM .ll text --------------------------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//

#include "frontend/llvm/LLLexer.h"

#include <cctype>

using namespace llvmmd;

namespace {

/// Characters legal inside an unquoted LLVM identifier: [-a-zA-Z$._0-9].
bool isLLIdentChar(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '-' ||
         C == '$' || C == '.' || C == '_';
}

/// Characters that may *start* an unquoted bare word: [a-zA-Z$._].
bool isLLWordStart(char C) {
  return std::isalpha(static_cast<unsigned char>(C)) || C == '$' ||
         C == '.' || C == '_';
}

class LexState {
public:
  LexState(std::string_view Src, std::vector<LLToken> &Out)
      : Src(Src), Out(Out) {}

  bool run(std::string &Error, unsigned &ErrLine, unsigned &ErrCol) {
    while (true) {
      skipWhitespaceAndComments();
      if (Pos >= Src.size()) {
        emit(LLTok::Eof, "");
        return true;
      }
      if (!lexOne()) {
        Error = Err;
        ErrLine = Line;
        ErrCol = col();
        return false;
      }
    }
  }

private:
  std::string_view Src;
  std::vector<LLToken> &Out;
  size_t Pos = 0;
  size_t LineStart = 0;
  unsigned Line = 1;
  std::string Err;

  unsigned col() const { return static_cast<unsigned>(Pos - LineStart) + 1; }

  void emit(LLTok Kind, std::string Text, unsigned AtCol = 0) {
    LLToken T;
    T.Kind = Kind;
    T.Text = std::move(Text);
    T.Line = Line;
    T.Col = AtCol ? AtCol : col();
    Out.push_back(std::move(T));
  }

  void newline() {
    ++Line;
    LineStart = Pos;
  }

  void skipWhitespaceAndComments() {
    while (Pos < Src.size()) {
      char C = Src[Pos];
      if (C == '\n') {
        ++Pos;
        newline();
      } else if (C == ' ' || C == '\t' || C == '\r') {
        ++Pos;
      } else if (C == ';') {
        while (Pos < Src.size() && Src[Pos] != '\n')
          ++Pos;
      } else {
        break;
      }
    }
  }

  /// Lexes the identifier characters at Pos (no sigil handling).
  std::string lexIdentTail() {
    size_t Start = Pos;
    while (Pos < Src.size() && isLLIdentChar(Src[Pos]))
      ++Pos;
    return std::string(Src.substr(Start, Pos - Start));
  }

  /// Lexes a quoted payload after the opening '"'. Returns false on an
  /// unterminated string.
  bool lexQuoted(std::string &Text) {
    while (Pos < Src.size()) {
      char C = Src[Pos];
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (C == '\n') // strings never span lines in .ll
        break;
      Text.push_back(C);
      ++Pos;
    }
    Err = "unterminated string literal";
    return false;
  }

  bool lexNumber(unsigned StartCol) {
    size_t Start = Pos;
    if (Src[Pos] == '-')
      ++Pos;
    // Hexadecimal FP literal: 0x[KLMHR]?hexdigits.
    if (Pos + 1 < Src.size() && Src[Pos] == '0' && Src[Pos + 1] == 'x') {
      Pos += 2;
      if (Pos < Src.size() &&
          (Src[Pos] == 'K' || Src[Pos] == 'L' || Src[Pos] == 'M' ||
           Src[Pos] == 'H' || Src[Pos] == 'R'))
        ++Pos;
      size_t DigitsStart = Pos;
      while (Pos < Src.size() &&
             std::isxdigit(static_cast<unsigned char>(Src[Pos])))
        ++Pos;
      if (Pos == DigitsStart) {
        Err = "malformed hexadecimal literal";
        return false;
      }
      emit(LLTok::FloatHex, std::string(Src.substr(Start, Pos - Start)),
           StartCol);
      return true;
    }
    bool IsFloat = false;
    while (Pos < Src.size() &&
           std::isdigit(static_cast<unsigned char>(Src[Pos])))
      ++Pos;
    if (Pos < Src.size() && Src[Pos] == '.') {
      IsFloat = true;
      ++Pos;
      while (Pos < Src.size() &&
             std::isdigit(static_cast<unsigned char>(Src[Pos])))
        ++Pos;
    }
    if (Pos < Src.size() && (Src[Pos] == 'e' || Src[Pos] == 'E')) {
      size_t Save = Pos;
      ++Pos;
      if (Pos < Src.size() && (Src[Pos] == '+' || Src[Pos] == '-'))
        ++Pos;
      if (Pos < Src.size() &&
          std::isdigit(static_cast<unsigned char>(Src[Pos]))) {
        IsFloat = true;
        while (Pos < Src.size() &&
               std::isdigit(static_cast<unsigned char>(Src[Pos])))
          ++Pos;
      } else {
        Pos = Save; // 'e' belonged to something else
      }
    }
    emit(IsFloat ? LLTok::Float : LLTok::Int,
         std::string(Src.substr(Start, Pos - Start)), StartCol);
    return true;
  }

  bool lexOne() {
    unsigned StartCol = col();
    char C = Src[Pos];
    switch (C) {
    case '(':
      ++Pos;
      emit(LLTok::LParen, "(", StartCol);
      return true;
    case ')':
      ++Pos;
      emit(LLTok::RParen, ")", StartCol);
      return true;
    case '{':
      ++Pos;
      emit(LLTok::LBrace, "{", StartCol);
      return true;
    case '}':
      ++Pos;
      emit(LLTok::RBrace, "}", StartCol);
      return true;
    case '[':
      ++Pos;
      emit(LLTok::LBracket, "[", StartCol);
      return true;
    case ']':
      ++Pos;
      emit(LLTok::RBracket, "]", StartCol);
      return true;
    case '<':
      ++Pos;
      emit(LLTok::Less, "<", StartCol);
      return true;
    case '>':
      ++Pos;
      emit(LLTok::Greater, ">", StartCol);
      return true;
    case ',':
      ++Pos;
      emit(LLTok::Comma, ",", StartCol);
      return true;
    case '=':
      ++Pos;
      emit(LLTok::Equals, "=", StartCol);
      return true;
    case '*':
      ++Pos;
      emit(LLTok::Star, "*", StartCol);
      return true;
    case ':':
      ++Pos;
      emit(LLTok::Colon, ":", StartCol);
      return true;
    case '%':
    case '@': {
      LLTok Kind = C == '%' ? LLTok::LocalId : LLTok::GlobalId;
      ++Pos;
      if (Pos < Src.size() && Src[Pos] == '"') {
        ++Pos;
        std::string Text;
        if (!lexQuoted(Text))
          return false;
        emit(Kind, std::move(Text), StartCol);
        return true;
      }
      emit(Kind, lexIdentTail(), StartCol);
      return true;
    }
    case '!':
      ++Pos;
      emit(LLTok::MetaId, lexIdentTail(), StartCol);
      return true;
    case '#':
      ++Pos;
      emit(LLTok::AttrId, lexIdentTail(), StartCol);
      return true;
    case '"': {
      ++Pos;
      std::string Text;
      if (!lexQuoted(Text))
        return false;
      emit(LLTok::Str, std::move(Text), StartCol);
      return true;
    }
    default:
      break;
    }
    if (C == '.') {
      if (Pos + 2 < Src.size() && Src[Pos + 1] == '.' && Src[Pos + 2] == '.') {
        Pos += 3;
        emit(LLTok::Ellipsis, "...", StartCol);
        return true;
      }
      emit(LLTok::Word, lexIdentTail(), StartCol);
      return true;
    }
    if (std::isdigit(static_cast<unsigned char>(C)) || C == '-')
      return lexNumber(StartCol);
    if (C == 'c' && Pos + 1 < Src.size() && Src[Pos + 1] == '"') {
      Pos += 2;
      std::string Text;
      if (!lexQuoted(Text))
        return false;
      emit(LLTok::CStr, std::move(Text), StartCol);
      return true;
    }
    if (isLLWordStart(C)) {
      emit(LLTok::Word, lexIdentTail(), StartCol);
      return true;
    }
    Err = std::string("unexpected character '") + C + "'";
    return false;
  }
};

int hexDigit(char C) {
  if (C >= '0' && C <= '9')
    return C - '0';
  if (C >= 'a' && C <= 'f')
    return C - 'a' + 10;
  if (C >= 'A' && C <= 'F')
    return C - 'A' + 10;
  return -1;
}

} // namespace

bool llvmmd::lexLLText(std::string_view Src, std::vector<LLToken> &Out,
                       std::string &Error, unsigned &ErrLine,
                       unsigned &ErrCol) {
  Out.clear();
  return LexState(Src, Out).run(Error, ErrLine, ErrCol);
}

std::string llvmmd::unescapeLLString(std::string_view Text) {
  std::string Out;
  Out.reserve(Text.size());
  for (size_t I = 0; I < Text.size(); ++I) {
    char C = Text[I];
    if (C == '\\' && I + 1 < Text.size()) {
      if (Text[I + 1] == '\\') {
        Out.push_back('\\');
        ++I;
        continue;
      }
      if (I + 2 < Text.size()) {
        int Hi = hexDigit(Text[I + 1]), Lo = hexDigit(Text[I + 2]);
        if (Hi >= 0 && Lo >= 0) {
          Out.push_back(static_cast<char>(Hi * 16 + Lo));
          I += 2;
          continue;
        }
      }
    }
    Out.push_back(C);
  }
  return Out;
}
