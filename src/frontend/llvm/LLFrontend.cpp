//===- LLFrontend.cpp - Module parser, post-process, public entry ---------===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//

#include "frontend/llvm/LLFrontend.h"
#include "frontend/llvm/LLImporter.h"

#include <algorithm>
#include <cctype>
#include <sstream>

using namespace llvmmd;

//===----------------------------------------------------------------------===//
// Construction / driver
//===----------------------------------------------------------------------===//

LLImporter::LLImporter(Context &Ctx, std::vector<LLToken> Tokens,
                       std::string ModuleName)
    : Ctx(Ctx), Toks(std::move(Tokens)),
      M(new Module(Ctx, std::move(ModuleName))) {}

LLImportResult LLImporter::run() {
  LLImportResult Res;
  try {
    scanTopLevel();
  } catch (const LLFatalErr &E) {
    Res.Error = E.Msg;
    Res.ErrorLine = E.Line;
    Res.ErrorCol = E.Col;
    return Res;
  }
  for (PendingFn &PF : Pending) {
    Cur = PF.BodyBegin;
    try {
      translateBody(PF);
    } catch (const LLRejectErr &E) {
      PF.F->dropBody();
      Rejected.push_back(
          {PF.F->getName(), E.Reason, E.Detail, E.Line ? E.Line : PF.DefLine});
    } catch (const LLFatalErr &E) {
      // Structural garbage inside one body is still only that function's
      // problem: per-function isolation is the contract.
      PF.F->dropBody();
      Rejected.push_back({PF.F->getName(), llreject::SyntaxError, E.Msg,
                          E.Line ? E.Line : PF.DefLine});
    }
  }
  Res.M = std::move(M);
  Res.Rejected = std::move(Rejected);
  return Res;
}

//===----------------------------------------------------------------------===//
// Token cursor
//===----------------------------------------------------------------------===//

const LLToken &LLImporter::tok(size_t Ahead) const {
  size_t I = Cur + Ahead;
  if (I >= Toks.size())
    I = Toks.size() - 1; // Eof sentinel
  return Toks[I];
}

void LLImporter::advance() {
  if (Cur + 1 < Toks.size())
    ++Cur;
}

bool LLImporter::isWord(const char *W) const {
  return tok().Kind == LLTok::Word && tok().Text == W;
}

bool LLImporter::eatWord(const char *W) {
  if (!isWord(W))
    return false;
  advance();
  return true;
}

void LLImporter::expectTok(LLTok K, const char *What) {
  if (tok().Kind != K)
    fatal(std::string("expected ") + What);
  advance();
}

void LLImporter::skipRestOfLine() {
  unsigned Line = tok().Line;
  while (tok().Kind != LLTok::Eof && tok().Line == Line)
    advance();
}

void LLImporter::skipLineTail(unsigned Line, size_t Limit) {
  while (Cur < Limit && tok().Kind != LLTok::Eof && tok().Line == Line)
    advance();
}

void LLImporter::skipTrailingOnLine() {
  if (Cur == 0)
    return;
  unsigned Line = Toks[Cur - 1].Line;
  while (tok().Kind != LLTok::Eof && tok().Line == Line)
    advance();
}

void LLImporter::fatal(std::string Msg) const {
  std::ostringstream OS;
  OS << "line " << tok().Line << ": " << Msg;
  if (tok().Kind != LLTok::Eof && !tok().Text.empty())
    OS << " (got '" << tok().Text << "')";
  else if (tok().Kind == LLTok::Eof)
    OS << " (got end of input)";
  throw LLFatalErr{OS.str(), tok().Line, tok().Col};
}

void LLImporter::reject(const char *Reason, std::string Detail) const {
  throw LLRejectErr{Reason, std::move(Detail), tok().Line};
}

//===----------------------------------------------------------------------===//
// Name sanitization
//===----------------------------------------------------------------------===//

std::string LLImporter::sanitizeName(const std::string &Name) {
  std::string Out;
  Out.reserve(Name.size());
  for (char C : Name) {
    if (std::isalnum(static_cast<unsigned char>(C)) || C == '_' || C == '.' ||
        C == '$')
      Out.push_back(C);
    else
      Out.push_back('_');
  }
  return Out;
}

std::string LLImporter::uniqueName(std::string Base,
                                   std::set<std::string> &Used) {
  if (Used.insert(Base).second)
    return Base;
  for (unsigned I = 1;; ++I) {
    std::string Cand = Base + "." + std::to_string(I);
    if (Used.insert(Cand).second)
      return Cand;
  }
}

//===----------------------------------------------------------------------===//
// Pass 1: module structure
//===----------------------------------------------------------------------===//

namespace {

/// Module/global-level keywords that carry no meaning for the mini-IR and
/// are skipped wherever they appear before the `global`/`constant` keyword
/// or a function signature.
bool isLinkageOrVisibilityWord(const std::string &W) {
  static const char *Words[] = {
      "private",      "internal",       "external",   "extern_weak",
      "linkonce",     "linkonce_odr",   "weak",       "weak_odr",
      "common",       "appending",      "available_externally",
      "dso_local",    "dso_preemptable", "hidden",    "protected",
      "default",      "dllimport",      "dllexport",  "unnamed_addr",
      "local_unnamed_addr", "externally_initialized", "thread_local",
      "addrspace",    "align",          "section",    "comdat",
      "partition",    "code_model",     "no_sanitize_address",
      "sanitize_address_dyninit"};
  for (const char *K : Words)
    if (W == K)
      return true;
  return false;
}

} // namespace

void LLImporter::scanTopLevel() {
  while (tok().Kind != LLTok::Eof) {
    const LLToken &T = tok();
    switch (T.Kind) {
    case LLTok::Word:
      if (T.Text == "target" || T.Text == "source_filename" ||
          T.Text == "module" || T.Text == "uselistorder" ||
          T.Text == "uselistorder_bb" || T.Text == "declare_comdat") {
        skipRestOfLine();
        continue;
      }
      if (T.Text == "attributes") {
        // attributes #N = { ... }
        advance();
        expectTok(LLTok::AttrId, "'#N'");
        expectTok(LLTok::Equals, "'='");
        expectTok(LLTok::LBrace, "'{'");
        unsigned Depth = 1;
        while (Depth && tok().Kind != LLTok::Eof) {
          if (tok().Kind == LLTok::LBrace)
            ++Depth;
          else if (tok().Kind == LLTok::RBrace)
            --Depth;
          advance();
        }
        continue;
      }
      if (T.Text == "declare") {
        parseFunctionHeader(/*IsDefine=*/false);
        continue;
      }
      if (T.Text == "define") {
        parseFunctionHeader(/*IsDefine=*/true);
        continue;
      }
      if (!T.Text.empty() && T.Text[0] == '$') {
        skipRestOfLine(); // $comdat = comdat any
        continue;
      }
      fatal("unexpected top-level construct");
    case LLTok::GlobalId:
      parseGlobalDef();
      continue;
    case LLTok::LocalId:
      // %struct.S = type { ... } — named types are aggregates we do not
      // model; uses inside functions reject per function via parseType.
      skipRestOfLine();
      continue;
    case LLTok::MetaId:
      skipRestOfLine(); // !0 = !{...} / !llvm.module.flags = !{...}
      continue;
    default:
      fatal("unexpected top-level token");
    }
  }
}

void LLImporter::parseGlobalDef() {
  unsigned Line = tok().Line;
  std::string OrigName = tok().Text;
  advance();
  expectTok(LLTok::Equals, "'='");

  bool IsConstant = false;
  bool IsDeclaration = false;
  while (true) {
    if (isWord("global")) {
      advance();
      break;
    }
    if (isWord("constant")) {
      IsConstant = true;
      advance();
      break;
    }
    if (tok().Kind == LLTok::Word && isLinkageOrVisibilityWord(tok().Text)) {
      if (tok().Text == "external" || tok().Text == "extern_weak")
        IsDeclaration = true;
      advance();
      // thread_local(localdynamic), addrspace(1)
      if (tok().Kind == LLTok::LParen) {
        while (tok().Kind != LLTok::RParen && tok().Kind != LLTok::Eof)
          advance();
        expectTok(LLTok::RParen, "')'");
      }
      continue;
    }
    fatal("expected 'global' or 'constant' for @" + OrigName);
  }

  // Type (one array level allowed) and initializer. Anything we cannot
  // model marks the global unsupported: functions touching it reject with
  // `unsupported-constant`, the rest of the module is unaffected.
  LLType Ty;
  try {
    Ty = parseTypeOrArray();
  } catch (const LLRejectErr &) {
    UnsupportedGlobals.insert(OrigName);
    skipRestOfLine();
    return;
  }

  Constant *Init = nullptr;
  if (!IsDeclaration && tok().Line == Line) {
    try {
      if (tok().Kind == LLTok::CStr) {
        // c"bytes": an i8 array; the flattened global keeps element 0.
        if (Ty.Ty != Ctx.getInt8Ty())
          reject(llreject::UnsupportedConstant, "c\"...\" on non-i8 global");
        std::string Bytes = unescapeLLString(tok().Text);
        advance();
        Init = Ctx.getInt(Ctx.getInt8Ty(),
                          Bytes.empty()
                              ? 0
                              : static_cast<unsigned char>(Bytes[0]));
      } else if (tok().Kind == LLTok::LBracket) {
        // [i32 1, i32 2, ...] — keep the first element (see header notes on
        // array flattening).
        advance();
        bool First = true;
        while (tok().Kind != LLTok::RBracket) {
          Type *ElemTy = parseType();
          Constant *C = parseConstantLiteral(ElemTy);
          if (First) {
            if (ElemTy != Ty.Ty)
              reject(llreject::UnsupportedConstant, "array element type");
            Init = C;
            First = false;
          }
          if (tok().Kind == LLTok::Comma) {
            advance();
            continue;
          }
          break;
        }
        expectTok(LLTok::RBracket, "']'");
        if (!Init)
          Init = zeroOf(Ty.Ty);
      } else if (tok().Kind == LLTok::Comma) {
        // No initializer, straight to ", align 4".
      } else if (isWord("zeroinitializer")) {
        advance();
        Init = zeroOf(Ty.Ty);
      } else if (tok().Kind == LLTok::GlobalId || tok().Kind == LLTok::Word ||
                 tok().Kind == LLTok::Int || tok().Kind == LLTok::Float ||
                 tok().Kind == LLTok::FloatHex) {
        Init = parseConstantLiteral(Ty.Ty);
      }
    } catch (const LLRejectErr &) {
      UnsupportedGlobals.insert(OrigName);
      skipRestOfLine();
      return;
    }
  }
  skipTrailingOnLine();

  if (GlobalByName.count(OrigName) || FnByName.count(OrigName))
    fatal("redefinition of @" + OrigName);
  std::string Name = uniqueName(sanitizeName(OrigName), UsedModuleNames);
  GlobalByName[OrigName] = M->createGlobal(Ty.Ty, Name, Init, IsConstant);
}

std::string LLImporter::peekFunctionName() const {
  unsigned Line = tok().Line;
  for (size_t I = Cur; I < Toks.size() && Toks[I].Line == Line; ++I)
    if (Toks[I].Kind == LLTok::GlobalId)
      return Toks[I].Text;
  return "<unknown>";
}

void LLImporter::parseFunctionHeader(bool IsDefine) {
  unsigned Line = tok().Line;
  std::string OrigName = peekFunctionName();
  advance(); // define / declare

  // A reject anywhere in the signature poisons the function, not the
  // module: skip the declaration (and body, for defines) and remember the
  // reason so callers reject with `unsupported-callee`.
  auto skipAfterBadSignature = [&](const char *CalleeReason) {
    BadCallees[OrigName] = CalleeReason;
    if (!IsDefine) {
      skipTrailingOnLine();
      return;
    }
    // Find the body-open brace: the first '{' that ends its line. A '{'
    // with more tokens after it on the same line is an aggregate type in
    // the signature we are skipping — consume that brace group whole.
    while (tok().Kind != LLTok::Eof) {
      if (tok().Kind == LLTok::LBrace) {
        if (tok(1).Kind == LLTok::Eof || tok(1).Line != tok().Line)
          break;
        unsigned TypeDepth = 1;
        advance();
        while (TypeDepth && tok().Kind != LLTok::Eof) {
          if (tok().Kind == LLTok::LBrace)
            ++TypeDepth;
          else if (tok().Kind == LLTok::RBrace)
            --TypeDepth;
          advance();
        }
        continue;
      }
      advance();
    }
    expectTok(LLTok::LBrace, "'{'");
    unsigned Depth = 1;
    while (Depth && tok().Kind != LLTok::Eof) {
      if (tok().Kind == LLTok::LBrace)
        ++Depth;
      else if (tok().Kind == LLTok::RBrace)
        --Depth;
      advance();
    }
  };

  Type *RetTy = nullptr;
  std::vector<Type *> Params;
  std::vector<std::string> ParamNames;
  bool IsVararg = false;
  unsigned RejLine = Line;
  try {
    // Return attributes / linkage words before the return type, including
    // parenthesized forms (dereferenceable(8)) and "align 4".
    while (tok().Kind == LLTok::Word && !atTypeStart()) {
      bool WasAlign = tok().Text == "align";
      advance();
      if (tok().Kind == LLTok::LParen) {
        while (tok().Kind != LLTok::RParen && tok().Kind != LLTok::Eof)
          advance();
        expectTok(LLTok::RParen, "')'");
      } else if (WasAlign && tok().Kind == LLTok::Int) {
        advance();
      }
    }
    RetTy = parseType();
    if (tok().Kind != LLTok::GlobalId)
      fatal("expected function name");
    advance();
    expectTok(LLTok::LParen, "'('");
    while (tok().Kind != LLTok::RParen) {
      if (tok().Kind == LLTok::Ellipsis) {
        IsVararg = true;
        advance();
        break;
      }
      Type *P = parseType();
      skipParamAttrs();
      std::string PName;
      if (tok().Kind == LLTok::LocalId) {
        PName = tok().Text;
        advance();
      }
      Params.push_back(P);
      ParamNames.push_back(PName);
      if (tok().Kind == LLTok::Comma) {
        advance();
        continue;
      }
      break;
    }
    expectTok(LLTok::RParen, "')'");
  } catch (const LLRejectErr &E) {
    RejLine = E.Line;
    skipAfterBadSignature(llreject::UnsupportedCallee);
    if (IsDefine)
      Rejected.push_back({sanitizeName(OrigName), E.Reason, E.Detail, RejLine});
    return;
  }

  if (IsVararg) {
    skipAfterBadSignature(llreject::VarargsCall);
    if (IsDefine)
      Rejected.push_back({sanitizeName(OrigName), llreject::VarargsCall,
                          "varargs signature", Line});
    return;
  }

  if (FnByName.count(OrigName) || GlobalByName.count(OrigName))
    fatal("redefinition of @" + OrigName);

  std::string Name = uniqueName(sanitizeName(OrigName), UsedModuleNames);
  Function *F = M->createFunction(Ctx.getFunctionTy(RetTy, Params), Name);
  FnByName[OrigName] = F;

  // Known libc declarations get the memory effects the optimizer's libc
  // knowledge consists of (clang carries them in attribute groups we skip).
  static const char *ReadOnlyLibc[] = {"strlen", "strcmp", "strncmp",
                                       "memcmp", "strchr", "strrchr"};
  static const char *ReadNoneLibc[] = {"abs",     "labs",    "llabs",
                                       "isdigit", "isalpha", "isupper",
                                       "islower", "toupper", "tolower"};
  for (const char *L : ReadOnlyLibc)
    if (OrigName == L)
      F->setMemoryEffect(MemoryEffect::ReadOnly);
  for (const char *L : ReadNoneLibc)
    if (OrigName == L)
      F->setMemoryEffect(MemoryEffect::ReadNone);

  if (!IsDefine) {
    // Trailer tokens on the declaration's own line(s) only — the cursor may
    // already sit on the next construct. `declare ... readonly` from our
    // own printer round-trips too.
    unsigned EndLine = Toks[Cur - 1].Line;
    while (tok().Line == EndLine && tok().Kind != LLTok::Eof) {
      if (tok().Kind == LLTok::Word && tok().Text == "readonly")
        F->setMemoryEffect(MemoryEffect::ReadOnly);
      else if (tok().Kind == LLTok::Word && tok().Text == "readnone")
        F->setMemoryEffect(MemoryEffect::ReadNone);
      advance();
    }
    return;
  }

  // Skip function attributes between ')' and '{' (#0, align 2, section
  // "...", personality, !dbg ...), then capture the body token range.
  while (tok().Kind != LLTok::LBrace && tok().Kind != LLTok::Eof)
    advance();
  expectTok(LLTok::LBrace, "'{'");
  size_t Begin = Cur;
  unsigned Depth = 1;
  while (tok().Kind != LLTok::Eof) {
    if (tok().Kind == LLTok::LBrace)
      ++Depth;
    else if (tok().Kind == LLTok::RBrace && --Depth == 0)
      break;
    advance();
  }
  if (tok().Kind == LLTok::Eof)
    fatal("unterminated function body for @" + OrigName);
  size_t End = Cur;
  advance(); // consume '}'

  PendingFn PF;
  PF.F = F;
  PF.OrigName = OrigName;
  PF.ArgNames = std::move(ParamNames);
  PF.BodyBegin = Begin;
  PF.BodyEnd = End;
  PF.DefLine = Line;
  Pending.push_back(std::move(PF));
}

//===----------------------------------------------------------------------===//
// Post-process pass
//===----------------------------------------------------------------------===//

void LLImporter::postProcessFunction(Body &B) {
  Function *F = B.PF->F;

  // Every referenced block must have been defined by a label.
  if (B.Order.size() != F->getNumBlocks()) {
    for (const auto &[Name, BB] : B.Blocks)
      if (std::find(B.Order.begin(), B.Order.end(), BB) == B.Order.end())
        throw LLRejectErr{llreject::SyntaxError,
                          "branch to undefined label '%" + Name + "'",
                          B.PF->DefLine};
    throw LLRejectErr{llreject::SyntaxError, "undefined label",
                      B.PF->DefLine};
  }

  resolveFixups(B);
  remapSwitchPhis(B);

  for (const auto &BB : F->blocks())
    if (!BB->getTerminator())
      throw LLRejectErr{llreject::SyntaxError,
                        "block '" + BB->getName() + "' has no terminator",
                        B.PF->DefLine};

  F->reorderBlocks(B.Order);
}

void LLImporter::resolveFixups(Body &B) {
  for (const auto &Fix : B.Fixups) {
    auto It = B.Locals.find(Fix.Name);
    if (It == B.Locals.end())
      throw LLRejectErr{llreject::SyntaxError,
                        "use of undefined value '%" + Fix.Name + "'",
                        Fix.Line};
    if (It->second->getType() != Fix.Ty)
      throw LLRejectErr{llreject::SyntaxError,
                        "type mismatch resolving '%" + Fix.Name + "'",
                        Fix.Line};
    Fix.I->setOperand(Fix.OpIdx, It->second);
  }
}

void LLImporter::remapSwitchPhis(Body &B) {
  for (const auto &SW : B.Switches) {
    // Group the lowered edges by target block, in case order.
    std::vector<std::pair<BasicBlock *, std::vector<BasicBlock *>>> ByTarget;
    for (const auto &[Target, Source] : SW.Edges) {
      auto It = std::find_if(ByTarget.begin(), ByTarget.end(),
                             [&](const auto &E) { return E.first == Target; });
      if (It == ByTarget.end())
        ByTarget.push_back({Target, {Source}});
      else
        It->second.push_back(Source);
    }
    for (const auto &[Target, Sources] : ByTarget) {
      for (PhiNode *P : Target->phis()) {
        int Idx = P->getBlockIndex(SW.Orig);
        if (Idx < 0)
          continue;
        Value *V = P->getIncomingValue(static_cast<unsigned>(Idx));
        P->setIncomingBlock(static_cast<unsigned>(Idx), Sources.front());
        for (size_t I = 1; I < Sources.size(); ++I)
          P->addIncoming(V, Sources[I]);
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Public entry points
//===----------------------------------------------------------------------===//

LLImportResult llvmmd::importLLModule(Context &Ctx, std::string_view Text,
                                      std::string ModuleName) {
  // Adopt the "; ModuleID = '<name>'" header when the caller did not name
  // the module, matching the native parser's convention.
  if (ModuleName == "module") {
    constexpr std::string_view Tag = "; ModuleID = '";
    size_t Pos = Text.find(Tag);
    if (Pos != std::string_view::npos) {
      size_t Start = Pos + Tag.size();
      size_t End = Text.find('\'', Start);
      if (End != std::string_view::npos)
        ModuleName = std::string(Text.substr(Start, End - Start));
    }
  }

  std::vector<LLToken> Toks;
  LLImportResult Res;
  std::string LexError;
  unsigned ErrLine = 0, ErrCol = 0;
  if (!lexLLText(Text, Toks, LexError, ErrLine, ErrCol)) {
    Res.Error = "line " + std::to_string(ErrLine) + ": " + LexError;
    Res.ErrorLine = ErrLine;
    Res.ErrorCol = ErrCol;
    return Res;
  }
  return LLImporter(Ctx, std::move(Toks), std::move(ModuleName)).run();
}

bool llvmmd::looksLikeLLVMIR(std::string_view Text) {
  // Markers real clang/opt output carries and the mini-IR printer never
  // emits. Substring checks keep sniffing O(bytes) with no parsing.
  static const char *Markers[] = {
      "target datalayout", "target triple",   "source_filename",
      "attributes #",      "!llvm.",          " dso_local ",
      " noundef",          ", align ",        " nsw ",
      " nuw ",             " inbounds ",      "zeroinitializer",
      " x i",              " x float",        " x double",
      "c\"",               " switch i",       "%struct.",
      "%union.",           "%class.",         " poison",
      " tail call ",       "local_unnamed_addr"};
  for (const char *Mk : Markers)
    if (Text.find(Mk) != std::string_view::npos)
      return true;
  return false;
}
