//===- LLLexer.h - Tokenizer for LLVM .ll text ------------------*- C++ -*-===//
//
// Part of the llvm-md project (PLDI 2011 value-graph validation repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tokenizer layer of the `.ll` importer (the l2s-style frontend split:
/// lexer -> module parser -> type/constant translator -> instruction
/// translator -> post-process). It understands the full lexical surface of
/// real `clang`/`opt` output — quoted identifiers, `c"..."` strings, hex
/// float literals, metadata (`!id`) and attribute-group (`#N`) references —
/// so the higher layers can skip what they do not model instead of choking
/// on the first `!dbg`.
///
//===----------------------------------------------------------------------===//

#ifndef LLVMMD_FRONTEND_LLVM_LLLEXER_H
#define LLVMMD_FRONTEND_LLVM_LLLEXER_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace llvmmd {

enum class LLTok : uint8_t {
  Eof,
  Word,     ///< bare keyword/identifier: define, i32, nsw, x, ...
  LocalId,  ///< %name / %"quoted" (text without the sigil, unquoted)
  GlobalId, ///< @name / @"quoted"
  MetaId,   ///< !name / !N / bare ! before { (text may be empty)
  AttrId,   ///< #N attribute group reference
  Int,      ///< decimal integer literal (possibly negative)
  Float,    ///< decimal float literal (1.5, -2.0e+01)
  FloatHex, ///< 0x[KLMHR]?hexdigits — LLVM hexadecimal FP literal
  Str,      ///< "..." string (text without quotes, escapes unprocessed)
  CStr,     ///< c"..." constant string (text without quotes)
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Less,
  Greater,
  Comma,
  Equals,
  Star,
  Colon,
  Ellipsis,
};

struct LLToken {
  LLTok Kind = LLTok::Eof;
  std::string Text;
  unsigned Line = 1; ///< 1-based
  unsigned Col = 1;  ///< 1-based
};

/// Tokenizes `.ll` text into \p Out (always terminated by an Eof token).
/// Returns false on a character-level error (unterminated string, byte that
/// starts no token), with \p Error / \p ErrLine / \p ErrCol filled in.
bool lexLLText(std::string_view Src, std::vector<LLToken> &Out,
               std::string &Error, unsigned &ErrLine, unsigned &ErrCol);

/// Interprets the escape sequences of a lexed `c"..."` / `"..."` payload
/// (`\\xx` hex pairs and `\\\\`) into raw bytes.
std::string unescapeLLString(std::string_view Text);

} // namespace llvmmd

#endif // LLVMMD_FRONTEND_LLVM_LLLEXER_H
